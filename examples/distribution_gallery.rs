//! The eight key distributions of Section 3.3, visualized.
//!
//! ```text
//! cargo run --release --example distribution_gallery [n]
//! ```
//!
//! Prints an ASCII density histogram of each distribution (32 value
//! buckets) plus the first-pass communication volume it induces for the
//! radix sort — the property each was designed to exercise.

use ccsort::algos::dist::{generate, Dist, MAX_KEY};

const BUCKETS: usize = 32;
const P: usize = 16;
const R: u32 = 8;

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(1 << 18);

    for dist in Dist::ALL {
        let keys = generate(dist, n, P, R, 42);
        // Value-space density.
        let mut hist = [0usize; BUCKETS];
        for &k in &keys {
            hist[((k as u64 * BUCKETS as u64) / MAX_KEY) as usize] += 1;
        }
        let max = *hist.iter().max().unwrap() as f64;

        // First-pass movers: keys whose first digit leaves the home range.
        let per = n / P;
        let digits_per_proc = (1usize << R) / P;
        let movers = keys
            .iter()
            .enumerate()
            .filter(|(i, k)| {
                let src = i / per;
                let dst = ((**k as usize) & ((1 << R) - 1)) / digits_per_proc.max(1);
                src != dst.min(P - 1)
            })
            .count();

        println!(
            "\n{:>8} — {} keys, first-pass movers: {:.0}%",
            dist.name(),
            n,
            100.0 * movers as f64 / n as f64
        );
        for (b, &c) in hist.iter().enumerate() {
            let bar = "#".repeat(((c as f64 / max) * 48.0).round() as usize);
            let lo = b as u64 * MAX_KEY / BUCKETS as u64;
            println!("  {lo:>10} |{bar}");
        }
    }
}
