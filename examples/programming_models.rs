//! The three programming models, on real threads.
//!
//! ```text
//! cargo run --release --example programming_models [n] [ranks]
//! ```
//!
//! Demonstrates the paper's three ways of writing the same parallel
//! program, using this crate's in-process runtimes:
//!
//! 1. **Shared address space** — rayon threads writing directly into a
//!    shared output ([`ccsort::parallel::par_radix_sort`]);
//! 2. **Message passing** — SPMD ranks exchanging histograms with
//!    `allgather` and key chunks with one message per contiguously-destined
//!    chunk ([`ccsort::parallel::msg`]);
//! 3. **Symmetric heap** — one-sided `put`/`get` with barrier epochs and
//!    receiver-initiated chunk pulls ([`ccsort::parallel::sym`]).
//!
//! All three sort the same input and must agree.

use std::time::Instant;

use ccsort::parallel::msg::{radix_sort_msg, spawn_spmd};
use ccsort::parallel::sym::radix_sort_shmem;
use ccsort::parallel::par_radix_sort;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(1 << 21);
    let ranks: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);

    // A tiny SPMD demo first: allgather of rank ids.
    println!("== mini-MPI demo: allgather over {ranks} ranks ==");
    let gathered = spawn_spmd::<usize, _, _>(ranks, |comm| {
        comm.barrier();
        comm.allgather(comm.rank() * comm.rank())
    });
    println!("rank 0 gathered squares: {:?}", gathered[0]);

    let keys: Vec<u32> = (0..n as u64)
        .map(|i| {
            let x = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            (x >> 33) as u32
        })
        .collect();
    println!("\n== sorting {n} keys under each model ==");

    let mut shared = keys.clone();
    let t = Instant::now();
    par_radix_sort(&mut shared);
    println!("{:>24}: {:>8.1} ms", "shared address space", t.elapsed().as_secs_f64() * 1e3);

    let mut mp = keys.clone();
    let t = Instant::now();
    radix_sort_msg(&mut mp, ranks, 8);
    println!("{:>24}: {:>8.1} ms", "message passing", t.elapsed().as_secs_f64() * 1e3);
    assert_eq!(mp, shared);

    let mut sh = keys.clone();
    let t = Instant::now();
    radix_sort_shmem(&mut sh, ranks, 8);
    println!("{:>24}: {:>8.1} ms", "symmetric heap (shmem)", t.elapsed().as_secs_f64() * 1e3);
    assert_eq!(sh, shared);

    println!("all three models produced identical sorted output");
}
