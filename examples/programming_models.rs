//! One sorting algorithm, three programming models, one trait.
//!
//! ```text
//! cargo run --release --example programming_models [n] [p]
//! ```
//!
//! The paper's comparison is *the same radix sort* written under CC-SAS,
//! MPI and SHMEM. After the communicator refactor that sentence is literal
//! code: [`ccsort::algos::radix::sort`] is the single skeleton
//! (histogram → combine → permute/exchange per pass), and each programming
//! model is a [`ccsort::models::Communicator`] implementation handed to it.
//! This example builds one communicator per model, runs the *identical*
//! skeleton through each on the simulated Origin 2000, and prints the
//! BUSY/LMEM/RMEM/SYNC breakdowns the paper compares — plus the two SHMEM
//! exchange directions (`get` vs `put`, §2) that the trait made nearly
//! free to add.

use ccsort::algos::costs;
use ccsort::algos::dist::{generate, Dist, KEY_BITS};
use ccsort::algos::radix;
use ccsort::machine::{Machine, MachineConfig, Placement};
use ccsort::models::{CcsasComm, Communicator, MpiComm, MpiMode, Permute, ShmemComm};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(1 << 18);
    let p: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(16);
    let r = 8;

    // Every entry is the same algorithm; only the transport differs.
    let variants: Vec<(&str, Box<dyn Communicator>)> = vec![
        ("CC-SAS (direct scatter)", Box::new(CcsasComm::new(Permute::DirectScatter, costs::comm_costs()))),
        ("CC-SAS-NEW (local buffer)", Box::new(CcsasComm::new(Permute::ContiguousCopy, costs::comm_costs()))),
        ("MPI (chunk messages)", Box::new(MpiComm::new(MpiMode::Direct, Permute::ChunkMessages, costs::comm_costs()))),
        ("MPI (coalesced, IS-style)", Box::new(MpiComm::new(MpiMode::Direct, Permute::CoalescedMessages, costs::comm_costs()))),
        ("SHMEM (receiver get)", Box::new(ShmemComm::new(Permute::ReceiverGet, costs::comm_costs()))),
        ("SHMEM (sender put)", Box::new(ShmemComm::new(Permute::SenderPut, costs::comm_costs()))),
    ];

    println!("one radix-sort skeleton x {} communicators", variants.len());
    println!("n = {n} Gauss keys, p = {p} simulated processors (machine scale 1/16)\n");
    println!(
        "{:>28} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "variant", "BUSY us", "LMEM us", "RMEM us", "SYNC us", "total ms"
    );

    let mut reference: Option<Vec<u32>> = None;
    for (name, mut comm) in variants {
        let mut m = Machine::new(MachineConfig::origin2000(p).scaled_down(16));
        let a = m.alloc(n, Placement::Partitioned { parts: p }, "keys0");
        let b = m.alloc(n, Placement::Partitioned { parts: p }, "keys1");
        let input = generate(Dist::Gauss, n, p, r, 271828);
        m.raw_mut(a).copy_from_slice(&input);

        let out = radix::sort(&mut m, comm.as_mut(), [a, b], n, r, KEY_BITS);

        // Bit-identical output across models: the skeleton owns the
        // algorithm, the communicator only moves bytes.
        let sorted = m.raw(out).to_vec();
        match &reference {
            None => {
                let mut expect = input;
                expect.sort_unstable();
                assert_eq!(sorted, expect, "{name} must sort");
                reference = Some(sorted);
            }
            Some(expect) => assert_eq!(&sorted, expect, "{name} diverged from the other models"),
        }

        let mean = {
            let mut t = ccsort::machine::TimeBreakdown::default();
            for pe in 0..p {
                t.add(&m.breakdown(pe));
            }
            t.busy /= p as f64;
            t.lmem /= p as f64;
            t.rmem /= p as f64;
            t.sync /= p as f64;
            t
        };
        println!(
            "{:>28} {:>10.0} {:>10.0} {:>10.0} {:>10.0} {:>10.2}",
            name,
            mean.busy / 1e3,
            mean.lmem / 1e3,
            mean.rmem / 1e3,
            mean.sync / 1e3,
            m.parallel_time() / 1e6
        );
    }

    println!("\nall six instantiations produced bit-identical sorted output");
}
