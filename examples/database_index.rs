//! Building a database index — the application the paper's introduction
//! motivates ("sorting ... is a core utility for database systems in
//! organizing and indexing data") — as the sorting *service*'s seed
//! workload.
//!
//! ```text
//! cargo run --release --example database_index [rows]
//! ```
//!
//! Generates a table of synthetic orders keyed by a 64-bit composite
//! (customer id in the high bits, timestamp in the low bits) with a row-id
//! payload, then builds the index two ways:
//!
//! 1. **Monolithic**: one `par_radix_sort_pairs_with` over the whole table —
//!    the shape the original example had, kept as the reference.
//! 2. **As a service**: many concurrent client threads, each responsible
//!    for a shard of customers, submit one small index-build request per
//!    customer (that customer's keys + row ids) to a shared
//!    [`SortService`]. The request-coalescing batcher merges them into
//!    shared batches; the same run with coalescing off shows what the
//!    per-request baseline costs. Both are verified against the
//!    monolithic index, byte for byte.
//!
//! Per-customer indexes ordered by customer concatenate to exactly the
//! monolithic index: the composite key puts the customer in the high
//! bits, and both paths sort stably, so equal keys keep table order.

use std::time::Instant;

use ccsort::parallel::{par_radix_sort_pairs_with, RadixSortConfig};
use ccsort::service::{ServiceConfig, SortService};

/// Pack (customer, timestamp) into one sortable key.
fn key(customer: u32, ts: u32) -> u64 {
    ((customer as u64) << 32) | ts as u64
}

fn main() {
    let rows: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(1 << 21);
    // Many customers → small per-customer requests (~128 keys at the
    // default row count): the many-small-concurrent-requests regime the
    // coalescing batcher exists for.
    let customers = 16384u32;
    let clients = 8usize;

    // Synthetic order stream: deterministic hash "random".
    let t = Instant::now();
    let table: Vec<(u64, u64)> = (0..rows as u64)
        .map(|i| {
            let h = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let customer = ((h >> 40) as u32) % customers;
            let ts = (h & 0xFFFF_FFFF) as u32;
            (key(customer, ts), i) // payload = row id
        })
        .collect();
    println!("generated {rows} orders in {:.1} ms", t.elapsed().as_secs_f64() * 1e3);

    // --- 1. the monolithic build: one big sort, the reference index. ---
    let mut mono_keys: Vec<u64> = table.iter().map(|&(k, _)| k).collect();
    let mut mono_rows: Vec<u64> = table.iter().map(|&(_, r)| r).collect();
    let t = Instant::now();
    par_radix_sort_pairs_with(&mut mono_keys, &mut mono_rows, &RadixSortConfig::default());
    println!("monolithic index build: {:.1} ms", t.elapsed().as_secs_f64() * 1e3);

    // --- 2. the service build: per-customer requests from many clients. ---
    // Bucket the table by customer once (the per-client request inputs).
    // Scanning rows in order keeps each request's duplicates in table
    // order, which is what makes the stable per-request sorts concatenate
    // to the stable monolithic one.
    let mut requests: Vec<(Vec<u64>, Vec<u64>)> =
        vec![(Vec::new(), Vec::new()); customers as usize];
    for &(k, r) in &table {
        let c = (k >> 32) as usize;
        requests[c].0.push(k);
        requests[c].1.push(r);
    }

    for coalescing in [true, false] {
        let inputs = requests.clone();
        // Coalesced batches get a wider digit (fewer passes over the big
        // batch) and a cache-resident byte cap — the same tuning the
        // committed `svcbench` grid measures.
        let batch_sort = RadixSortConfig {
            radix_bits: 11,
            sequential_cutoff: 1 << 20,
            ..RadixSortConfig::default()
        };
        let svc = SortService::start(ServiceConfig {
            coalescing,
            queue_limit: customers as usize,
            max_batch_bytes: 1 << 17,
            batch_sort: Some(batch_sort),
            ..ServiceConfig::default()
        })
        .expect("valid service config");
        let t = Instant::now();
        // Each client thread owns a contiguous shard of customers and
        // submits one index-build request per customer, then waits for
        // its replies — many small concurrent requests, the regime the
        // coalescing batcher exists for.
        let mut built: Vec<Option<(Vec<u64>, Vec<u64>)>> = vec![None; customers as usize];
        std::thread::scope(|s| {
            let svc = &svc;
            for (shard, out) in
                built.chunks_mut(customers as usize / clients).enumerate()
            {
                let base = shard * (customers as usize / clients);
                let inputs = &inputs;
                s.spawn(move || {
                    let tickets: Vec<_> = out
                        .iter()
                        .enumerate()
                        .map(|(i, _)| {
                            let (k, v) = inputs[base + i].clone();
                            svc.submit_pairs_u64(k, v).expect("queue sized to the workload")
                        })
                        .collect();
                    for (t, slot) in tickets.into_iter().zip(out.iter_mut()) {
                        let r = t.wait();
                        *slot = Some((r.keys, r.vals));
                    }
                });
            }
        });
        let ms = t.elapsed().as_secs_f64() * 1e3;
        let stats = svc.shutdown();
        println!(
            "service index build ({}): {ms:.1} ms — {} requests in {} batches (mean {:.1} req/batch)",
            if coalescing { "coalesced" } else { "baseline " },
            stats.completed,
            stats.batches,
            stats.completed as f64 / stats.batches.max(1) as f64,
        );

        // Verify: per-customer indexes concatenate to the monolithic one.
        let mut off = 0usize;
        for (c, built) in built.iter().enumerate() {
            let (k, v) = built.as_ref().expect("every customer built");
            assert_eq!(k[..], mono_keys[off..off + k.len()], "customer {c} keys diverge");
            assert_eq!(v[..], mono_rows[off..off + v.len()], "customer {c} row ids diverge");
            off += k.len();
        }
        assert_eq!(off, rows, "indexes cover the table");
    }
    println!("service-built indexes verified byte-identical to the monolithic index");

    // Range queries against the monolithic index: all orders of a
    // customer, in time order.
    let t = Instant::now();
    let mut total = 0usize;
    for customer in (0..customers).step_by(97) {
        let lo = mono_keys.partition_point(|&k| k < key(customer, 0));
        let hi = mono_keys.partition_point(|&k| k < key(customer + 1, 0));
        let orders = &mono_keys[lo..hi];
        assert!(orders.iter().all(|&k| (k >> 32) as u32 == customer));
        assert!(orders.windows(2).all(|w| (w[0] & 0xFFFF_FFFF) <= (w[1] & 0xFFFF_FFFF)));
        total += orders.len();
    }
    println!(
        "answered {} range queries covering {total} orders in {:.2} ms",
        customers.div_ceil(97),
        t.elapsed().as_secs_f64() * 1e3
    );
}
