//! Building a database index with parallel sample sort — the application
//! the paper's introduction motivates ("sorting ... is a core utility for
//! database systems in organizing and indexing data").
//!
//! ```text
//! cargo run --release --example database_index [rows]
//! ```
//!
//! Generates a table of synthetic orders, builds a sorted index over a
//! 64-bit composite key (customer id in the high bits, timestamp in the
//! low bits) with [`ccsort::parallel::par_sample_sort`], and answers range
//! queries ("all orders of customer X, oldest first") by binary search.

use std::time::Instant;

use ccsort::parallel::par_sample_sort;

/// Pack (customer, timestamp) into one sortable key.
fn key(customer: u32, ts: u32) -> u64 {
    ((customer as u64) << 32) | ts as u64
}

fn main() {
    let rows: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(1 << 21);
    let customers = 10_000u32;

    // Synthetic order stream: deterministic hash "random".
    let t = Instant::now();
    let mut index: Vec<u64> = (0..rows as u64)
        .map(|i| {
            let h = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let customer = ((h >> 40) as u32) % customers;
            let ts = (h & 0xFFFF_FFFF) as u32;
            key(customer, ts)
        })
        .collect();
    println!("generated {rows} orders in {:.1} ms", t.elapsed().as_secs_f64() * 1e3);

    let t = Instant::now();
    par_sample_sort(&mut index);
    println!("built sorted index in {:.1} ms", t.elapsed().as_secs_f64() * 1e3);
    assert!(index.windows(2).all(|w| w[0] <= w[1]));

    // Range queries: all orders of a customer, in time order.
    let t = Instant::now();
    let mut total = 0usize;
    for customer in (0..customers).step_by(97) {
        let lo = index.partition_point(|&k| k < key(customer, 0));
        let hi = index.partition_point(|&k| k < key(customer + 1, 0));
        let orders = &index[lo..hi];
        assert!(orders.iter().all(|&k| (k >> 32) as u32 == customer));
        assert!(orders.windows(2).all(|w| (w[0] & 0xFFFF_FFFF) <= (w[1] & 0xFFFF_FFFF)));
        total += orders.len();
    }
    println!(
        "answered {} range queries covering {total} orders in {:.2} ms",
        customers.div_ceil(97),
        t.elapsed().as_secs_f64() * 1e3
    );

    let sample_customer = 4242;
    let lo = index.partition_point(|&k| k < key(sample_customer, 0));
    let hi = index.partition_point(|&k| k < key(sample_customer + 1, 0));
    println!("customer {sample_customer} has {} orders; first three: {:?}",
        hi - lo,
        index[lo..(lo + 3).min(hi)].iter().map(|k| k & 0xFFFF_FFFF).collect::<Vec<_>>()
    );
}
