//! Per-phase profiling: where does each sorting program spend its time?
//!
//! ```text
//! cargo run --release --example phase_profile [n] [p]
//! ```
//!
//! Runs the paper's main programs on the simulated Origin 2000 and prints
//! each one's per-phase BUSY/LMEM/RMEM/SYNC profile — the instrumentation
//! view behind the paper's Section 4 analysis. Watch the CC-SAS radix
//! permutation phase dwarf everything else while the SHMEM version splits
//! the same work into a cheap local permutation plus a bulk exchange.

use ccsort::algos::{run_experiment, Algorithm, ExpConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(1 << 19);
    let p: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(32);

    println!("per-phase profiles, n = {n} Gauss keys, {p} simulated processors\n");
    for (alg, r) in [
        (Algorithm::RadixCcsas, 8),
        (Algorithm::RadixCcsasNew, 8),
        (Algorithm::RadixShmem, 8),
        (Algorithm::SampleShmem, 11),
    ] {
        let res = run_experiment(&ExpConfig::new(alg, n, p).radix_bits(r).scale(8));
        assert!(res.verified);
        println!("{} (total {:.2} ms):", alg.name(), res.parallel_ns / 1e6);
        println!(
            "  {:>14} {:>9} {:>9} {:>9} {:>9} {:>9}",
            "phase", "BUSY us", "LMEM us", "RMEM us", "SYNC us", "TOTAL us"
        );
        for (name, t) in &res.sections {
            if t.total() < 1e3 {
                continue;
            }
            println!(
                "  {:>14} {:>9.0} {:>9.0} {:>9.0} {:>9.0} {:>9.0}",
                name,
                t.busy / 1e3,
                t.lmem / 1e3,
                t.rmem / 1e3,
                t.sync / 1e3,
                t.total() / 1e3
            );
        }
        println!();
    }
}
