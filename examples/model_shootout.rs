//! A miniature of the paper's headline comparison (Figures 3 and 7):
//! which (algorithm, programming model) combination wins where?
//!
//! ```text
//! cargo run --release --example model_shootout [p] [scale]
//! ```
//!
//! Sweeps data-set sizes on the simulated Origin 2000 with `p` processors
//! (default 16) at machine scale `1/scale` (default 64 — small and fast;
//! use 16 for the fidelity the paper-reproduction harness uses), printing
//! speedups over the shared sequential radix-sort baseline. Watch for the
//! paper's two regimes: sample sort / CC-SAS win while the per-processor
//! data is small, radix sort / SHMEM win once it is large.

use ccsort::algos::{run_experiment, run_sequential_baseline, Algorithm, Dist, ExpConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let p: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(16);
    let scale: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(64);

    let combos: &[(Algorithm, u32)] = &[
        (Algorithm::RadixCcsas, 8),
        (Algorithm::RadixCcsasNew, 8),
        (Algorithm::RadixMpiDirect, 8),
        (Algorithm::RadixShmem, 8),
        (Algorithm::SampleCcsas, 11),
        (Algorithm::SampleMpiDirect, 11),
        (Algorithm::SampleShmem, 11),
    ];

    println!("speedups on {p} simulated processors (machine scale 1/{scale}, Gauss keys)\n");
    print!("{:>10}", "keys");
    for (alg, _) in combos {
        print!(" {:>16}", alg.name());
    }
    println!();

    for shift in [14usize, 16, 18, 20] {
        let n = 1usize << shift;
        let seq = run_sequential_baseline(n, 8, Dist::Gauss, 271828, scale, 1);
        assert!(seq.verified);
        print!("{:>10}", n);
        let mut best = (f64::MIN, "");
        for &(alg, r) in combos {
            let res =
                run_experiment(&ExpConfig::new(alg, n, p).radix_bits(r).scale(scale));
            assert!(res.verified);
            let speedup = seq.time_ns / res.parallel_ns;
            if speedup > best.0 {
                best = (speedup, alg.name());
            }
            print!(" {speedup:>16.1}");
        }
        println!("   <- best: {}", best.1);
    }
}
