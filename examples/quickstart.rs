//! Quickstart: parallel sorting on this machine.
//!
//! ```text
//! cargo run --release --example quickstart [n]
//! ```
//!
//! Sorts `n` random 32-bit keys (default 4M) three ways — the thread-
//! parallel radix sort, the thread-parallel sample sort and the standard
//! library's `sort_unstable` — verifies they agree, and prints wall-clock
//! times.

use std::time::Instant;

use ccsort::parallel::{par_radix_sort, par_sample_sort, seq_radix_sort};

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(1 << 22);

    // Deterministic pseudo-random input (splitmix-style).
    let keys: Vec<u32> = (0..n as u64)
        .map(|i| {
            let mut x = i.wrapping_add(0x9E37_79B9_7F4A_7C15);
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            (x >> 33) as u32
        })
        .collect();
    println!("sorting {n} random u32 keys with {} thread(s)", rayon::current_num_threads());

    let mut reference = keys.clone();
    let t = Instant::now();
    reference.sort_unstable();
    println!("{:>22}: {:>8.1} ms", "std sort_unstable", t.elapsed().as_secs_f64() * 1e3);

    let mut a = keys.clone();
    let t = Instant::now();
    seq_radix_sort(&mut a, 8);
    println!("{:>22}: {:>8.1} ms", "sequential radix", t.elapsed().as_secs_f64() * 1e3);
    assert_eq!(a, reference);

    let mut b = keys.clone();
    let t = Instant::now();
    par_radix_sort(&mut b);
    println!("{:>22}: {:>8.1} ms", "parallel radix", t.elapsed().as_secs_f64() * 1e3);
    assert_eq!(b, reference);

    let mut c = keys.clone();
    let t = Instant::now();
    par_sample_sort(&mut c);
    println!("{:>22}: {:>8.1} ms", "parallel sample", t.elapsed().as_secs_f64() * 1e3);
    assert_eq!(c, reference);

    println!("all outputs verified identical");
}
