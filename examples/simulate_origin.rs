//! Run one of the paper's experiments on the simulated Origin 2000.
//!
//! ```text
//! cargo run --release --example simulate_origin [algorithm] [n] [p]
//! ```
//!
//! Simulates the chosen sorting program (default: radix sort under SHMEM)
//! on `p` processors (default 16) with `n` keys (default 256K, a 1/16-scale
//! stand-in for the paper's 4M configuration), verifies the sorted output,
//! and prints the speedup over the simulated sequential baseline along
//! with the per-processor BUSY/LMEM/RMEM/SYNC breakdown — the same numbers
//! behind the paper's Figures 3, 4, 7 and 8.

use ccsort::algos::{run_experiment, run_sequential_baseline, Algorithm, Dist, ExpConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let alg = args
        .next()
        .map(|s| Algorithm::parse(&s).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        }))
        .unwrap_or(Algorithm::RadixShmem);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(1 << 18);
    let p: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(16);

    // Validate user-supplied parameters up front: a bad p or n is a usage
    // error with the offending field named, not a panic mid-simulation.
    let cfg = ExpConfig::new(alg, n, p);
    if let Err(e) = cfg.validate() {
        eprintln!("invalid configuration: {e}");
        std::process::exit(2);
    }

    println!("simulating {} on {p} processors, n = {n} Gauss keys (machine scale 1/16)", alg.name());

    let seq = run_sequential_baseline(n, 8, Dist::Gauss, 271828, 16, 1);
    assert!(seq.verified);
    println!("sequential baseline: {:>10.2} ms simulated", seq.time_ns / 1e6);

    let res = run_experiment(&cfg);
    assert!(res.verified, "output must be a sorted permutation of the input");
    println!("parallel time:       {:>10.2} ms simulated", res.parallel_ns / 1e6);
    println!("speedup:             {:>10.1}x", seq.time_ns / res.parallel_ns);

    let mean = res.mean_breakdown();
    println!("\nmean per-processor time breakdown (us):");
    println!(
        "  BUSY {:>10.0}   LMEM {:>10.0}   RMEM {:>10.0}   SYNC {:>10.0}",
        mean.busy / 1e3,
        mean.lmem / 1e3,
        mean.rmem / 1e3,
        mean.sync / 1e3
    );

    let ev0 = res.events[0];
    println!("\nprocessor 0 event counters:");
    println!(
        "  cache hits {:>10}   local misses {:>8}   remote misses {:>8}",
        ev0.cache_hits, ev0.misses_local, ev0.misses_remote
    );
    println!(
        "  invalidations {:>7}   interventions {:>7}   writebacks {:>10}",
        ev0.invalidations, ev0.interventions, ev0.writebacks
    );
    println!("  TLB misses {:>10}   messages {:>12}   bytes sent {:>10}", ev0.tlb_misses, ev0.messages, ev0.message_bytes);
}
