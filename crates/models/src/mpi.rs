//! Message-passing runtime over the simulated shared address space.
//!
//! Two implementations, mirroring Section 1 and 4.1 of the paper:
//!
//! * [`MpiMode::Staged`] — the "pure" vendor-style library. A message is
//!   copied into an internal bounce buffer in the shared address space and
//!   copied again by the receiver into its final destination. The staging
//!   copy lets the library return early (asynchrony) but roughly doubles
//!   per-message cost — the reason the SGI MPI loses badly in Figures 1–2.
//! * [`MpiMode::Direct`] — the authors' "impure" MPICH: the sender transfers
//!   straight into the receiver's address space, which is only possible
//!   because the application's communicated data structures live in the
//!   underlying shared address space.
//!
//! Both modes use a **1-deep mailbox per (sender, receiver) pair** (the
//! lock-free queue described in the paper): a sender issuing back-to-back
//! messages to the same receiver must wait until the receiver has consumed
//! the previous one. Radix sort sends up to `2^r / p` chunks to each
//! destination per pass, so this stall is exactly MPI's extra SYNC time in
//! Figure 4(c); sample sort sends one message per pair and never stalls.

use ccsort_machine::{ArrayId, Bucket, Machine, MsgToken, Placement};

use crate::cpu_copy;

/// Which MPI implementation to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MpiMode {
    /// Vendor-style library with staging copies ("SGI" in the figures).
    Staged,
    /// Direct-transfer MPICH variant ("NEW" in the figures).
    Direct,
}

#[derive(Debug)]
struct Pending {
    arrival: f64,
    seq: u64,
    len: usize,
    /// For staged mode: offset of the payload in the receiver's bounce
    /// buffer. `None` means the data is already in place (direct mode).
    bounce_off: Option<usize>,
    dst_arr: ArrayId,
    dst_off: usize,
    /// Happens-before edge from the sender: released once the payload is in
    /// place, acquired by the receiver's drain. Empty unless the machine's
    /// race detector is on.
    token: MsgToken,
}

/// The message-passing runtime. One instance serves all ranks.
pub struct Mpi {
    mode: MpiMode,
    p: usize,
    /// `mailbox_ready[dst * p + src]`: earliest time `src` may inject the
    /// next message for `dst` (1-deep per-pair buffer).
    mailbox_ready: Vec<f64>,
    /// Earliest time each receiver can consume its next inbound message:
    /// a receiver that is busy in its own permutation loop services the
    /// incoming-message queues of *all* its senders at a bounded rate, so
    /// back-to-back chunks from many senders queue up behind each other.
    consume_free: Vec<f64>,
    pending: Vec<Vec<Pending>>,
    bounce: Vec<ArrayId>,
    bounce_used: Vec<usize>,
    seq: u64,
    /// Fraction of the wire time a send stalls the sender. In both modes
    /// the sending CPU itself performs the copy (directly into the
    /// destination, or into the bounce buffer), so the transfer is fully
    /// exposed — the model's MPI/SHMEM difference comes from software
    /// overheads and the mailbox, not from magic overlap.
    send_stall_frac: f64,
    /// Cycles per element for the receiver-side staging copy.
    staged_copy_cyc: f64,
    /// Effective per-message consumption service time, as a multiple of the
    /// receive overhead: a receiver deep in its own compute loop polls the
    /// library only occasionally, so freeing a 1-deep mailbox takes several
    /// times the bare receive cost. This is the mechanism behind MPI's
    /// higher SYNC time in Figure 4(c).
    consume_service_mult: f64,
}

impl Mpi {
    /// Create the runtime. `bounce_capacity` (elements) bounds the data any
    /// single rank can have in flight towards one receiver between drains;
    /// only used in staged mode.
    pub fn new(m: &mut Machine, mode: MpiMode, bounce_capacity: usize) -> Self {
        let p = m.n_procs();
        let bounce = (0..p)
            .map(|pe| {
                let home = m.topo().node_of(pe);
                m.alloc(
                    if mode == MpiMode::Staged { bounce_capacity } else { 1 },
                    Placement::Node(home),
                    "mpi-bounce",
                )
            })
            .collect();
        Mpi {
            mode,
            p,
            mailbox_ready: vec![0.0; p * p],
            consume_free: vec![0.0; p],
            pending: (0..p).map(|_| Vec::new()).collect(),
            bounce,
            bounce_used: vec![0; p],
            seq: 0,
            send_stall_frac: 1.0,
            staged_copy_cyc: 3.0,
            consume_service_mult: if mode == MpiMode::Staged { 6.0 } else { 3.0 },
        }
    }

    /// Which implementation this runtime models.
    pub fn mode(&self) -> MpiMode {
        self.mode
    }

    /// Send `len` elements from `src_arr[src_off..]` (owned by rank
    /// `src_pe`) to position `dst_off` of `dst_arr` at rank `dst_pe`. The
    /// receiver must call [`Mpi::drain`] before reading the data.
    #[allow(clippy::too_many_arguments)]
    pub fn send(
        &mut self,
        m: &mut Machine,
        src_pe: usize,
        src_arr: ArrayId,
        src_off: usize,
        dst_pe: usize,
        dst_arr: ArrayId,
        dst_off: usize,
        len: usize,
    ) {
        if len == 0 {
            return;
        }
        if src_pe == dst_pe {
            // Self-messages degenerate to a local copy (as the real
            // programs do).
            cpu_copy(m, src_pe, src_arr, src_off, dst_arr, dst_off, len, 1.0);
            return;
        }
        let cfg = m.cfg();
        let send_ov = cfg.mpi_send_overhead_ns
            + if self.mode == MpiMode::Staged { cfg.mpi_staged_extra_ns } else { 0.0 };
        let recv_ov = cfg.mpi_recv_overhead_ns;

        // 1-deep mailbox: wait for the previous message in this pair's
        // buffer to be consumed.
        m.wait_until(src_pe, self.mailbox_ready[dst_pe * self.p + src_pe]);
        m.charge(src_pe, send_ov, Bucket::Rmem);

        let (t, bounce_off) = match self.mode {
            MpiMode::Direct => {
                let t = m.dma_copy(src_pe, src_arr, src_off, dst_arr, dst_off, len, false);
                (t, None)
            }
            MpiMode::Staged => {
                let off = self.bounce_used[dst_pe];
                assert!(
                    off + len <= m.len(self.bounce[dst_pe]),
                    "MPI bounce buffer overflow at rank {dst_pe}: capacity too small"
                );
                let t = m.dma_copy(src_pe, src_arr, src_off, self.bounce[dst_pe], off, len, false);
                self.bounce_used[dst_pe] = off + len;
                (t, Some(off))
            }
        };

        m.charge(src_pe, self.send_stall_frac * t, Bucket::Rmem);
        let arrival = m.now(src_pe) + (1.0 - self.send_stall_frac) * t;
        // The receiver consumes inbound messages (from all senders) one at
        // a time; this message's slot frees this pair's mailbox.
        let service = recv_ov * self.consume_service_mult;
        let consume = self.consume_free[dst_pe].max(arrival) + service;
        self.consume_free[dst_pe] = consume;
        self.mailbox_ready[dst_pe * self.p + src_pe] = consume;
        m.count_message(src_pe, len * 4);

        self.seq += 1;
        self.pending[dst_pe].push(Pending {
            arrival,
            seq: self.seq,
            len,
            bounce_off,
            dst_arr,
            dst_off,
            // The payload (direct destination or bounce buffer) is in place:
            // everything the sender did up to here happens-before whatever
            // the receiver does after completing this message in `drain`.
            token: m.hb_release(src_pe),
        });
    }

    /// Complete every message destined to `pe`: wait for arrival, pay the
    /// receive overhead and (in staged mode) perform the copy out of the
    /// bounce buffer into the real destination.
    pub fn drain(&mut self, m: &mut Machine, pe: usize) {
        let mut msgs = std::mem::take(&mut self.pending[pe]);
        msgs.sort_by(|a, b| a.arrival.partial_cmp(&b.arrival).unwrap().then(a.seq.cmp(&b.seq)));
        let recv_ov = m.cfg().mpi_recv_overhead_ns;
        for msg in msgs {
            m.wait_until(pe, msg.arrival);
            m.hb_acquire(pe, &msg.token);
            m.charge(pe, recv_ov, Bucket::Rmem);
            if let Some(off) = msg.bounce_off {
                cpu_copy(m, pe, self.bounce[pe], off, msg.dst_arr, msg.dst_off, msg.len, self.staged_copy_cyc);
            }
        }
        self.bounce_used[pe] = 0;
    }

    /// Number of messages currently queued for `pe` (tests/diagnostics).
    pub fn pending_for(&self, pe: usize) -> usize {
        self.pending[pe].len()
    }

    /// `MPI_Allgather`, executed by rank `pe`: gather `len` elements from
    /// every rank's `(array, offset)` contribution into `pe`'s local
    /// replica `dst` (layout: rank `j`'s block at `dst[j*len..]`).
    ///
    /// Modelled as the ring algorithm's cost: `p-1` receive+send steps, each
    /// paying both software overheads plus the (mostly exposed) wire time.
    /// This is the "expensive collective ... fixed cost that does not change
    /// with the data set size" the paper blames for MPI's poor small-set
    /// performance.
    pub fn allgather(
        &mut self,
        m: &mut Machine,
        pe: usize,
        contribs: &[(ArrayId, usize)],
        len: usize,
        dst: ArrayId,
    ) {
        assert_eq!(contribs.len(), self.p);
        for j in 0..self.p {
            let (src_arr, src_off) = contribs[j];
            if j == pe {
                crate::cpu_copy_fixed(m, pe, src_arr, src_off, dst, j * len, len, 1.0);
            } else {
                let cfg = m.cfg();
                let ov = cfg.mpi_send_overhead_ns
                    + cfg.mpi_recv_overhead_ns
                    + if self.mode == MpiMode::Staged { cfg.mpi_staged_extra_ns } else { 0.0 };
                m.charge(pe, ov, Bucket::Rmem);
                // Histograms/samples are fixed-size structures: time a
                // representative prefix, move the rest untimed.
                let k = m.fixed_prefix(len);
                let t = m.dma_copy(pe, src_arr, src_off, dst, j * len, k, true);
                m.charge(pe, t, Bucket::Rmem);
                if len > k {
                    // ccsort-lints: allow(untimed_outside_setup) -- the
                    // dma_copy above charges the scaled cost of this
                    // fixed-size transfer; the remainder moves untimed by
                    // the fixed-structure discipline.
                    m.copy_untimed(pe, src_arr, src_off + k, dst, j * len + k, len - k);
                }
                m.count_message(pe, len * 4);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccsort_machine::MachineConfig;

    fn machine(p: usize) -> Machine {
        Machine::new(MachineConfig::origin2000(p).scaled_down(16))
    }

    fn partitioned_pair(m: &mut Machine, n: usize, p: usize) -> (ArrayId, ArrayId) {
        let a = m.alloc(n, Placement::Partitioned { parts: p }, "src");
        let b = m.alloc(n, Placement::Partitioned { parts: p }, "dst");
        (a, b)
    }

    #[test]
    fn direct_send_places_data_immediately() {
        let mut m = machine(4);
        let (a, b) = partitioned_pair(&mut m, 4096, 4);
        for i in 0..1024 {
            m.raw_mut(a)[i] = i as u32;
        }
        let mut mpi = Mpi::new(&mut m, MpiMode::Direct, 0);
        mpi.send(&mut m, 0, a, 0, 1, b, 1024, 256);
        assert_eq!(m.raw(b)[1024], 0);
        assert_eq!(m.raw(b)[1279], 255);
        assert_eq!(mpi.pending_for(1), 1);
        mpi.drain(&mut m, 1);
        assert_eq!(mpi.pending_for(1), 0);
        assert_eq!(m.events(0).messages, 1);
        assert_eq!(m.events(0).message_bytes, 1024);
    }

    #[test]
    fn staged_send_lands_only_after_drain() {
        let mut m = machine(4);
        let (a, b) = partitioned_pair(&mut m, 4096, 4);
        for i in 0..256 {
            m.raw_mut(a)[i] = 7 + i as u32;
        }
        let mut mpi = Mpi::new(&mut m, MpiMode::Staged, 2048);
        mpi.send(&mut m, 0, a, 0, 2, b, 2048, 256);
        assert_eq!(m.raw(b)[2048], 0, "staged data must sit in the bounce buffer");
        mpi.drain(&mut m, 2);
        assert_eq!(m.raw(b)[2048], 7);
        assert_eq!(m.raw(b)[2303], 262);
    }

    #[test]
    fn staged_costs_more_than_direct() {
        // Compare the exposed communication (RMEM) cost: staging pays an
        // extra per-message overhead at the sender and a full copy at the
        // receiver. Spread destinations so mailbox pacing doesn't dominate.
        let rmem_for = |mode| {
            let mut m = machine(4);
            let (a, b) = partitioned_pair(&mut m, 8192, 4);
            let mut mpi = Mpi::new(&mut m, mode, 4096);
            for k in 0..9 {
                mpi.send(&mut m, 0, a, k * 128, 1 + k % 3, b, 2048 + k * 128, 128);
            }
            for pe in 1..4 {
                mpi.drain(&mut m, pe);
            }
            (0..4).map(|pe| m.breakdown(pe).rmem).sum::<f64>()
        };
        assert!(
            rmem_for(MpiMode::Staged) > 1.2 * rmem_for(MpiMode::Direct),
            "staging copies must make messages substantially more expensive"
        );
    }

    #[test]
    fn one_deep_mailbox_stalls_back_to_back_sends() {
        let mut m = machine(4);
        let (a, b) = partitioned_pair(&mut m, 8192, 4);
        let mut mpi = Mpi::new(&mut m, MpiMode::Direct, 0);
        let sync_before = m.breakdown(0).sync;
        // Ten consecutive chunks to the same receiver.
        for k in 0..10 {
            mpi.send(&mut m, 0, a, k * 64, 1, b, 2048 + k * 64, 64);
        }
        assert!(
            m.breakdown(0).sync > sync_before,
            "sender must stall on the 1-deep per-pair buffer"
        );
        // Alternating destinations: far less stall per message.
        let mut m2 = machine(4);
        let (a2, b2) = partitioned_pair(&mut m2, 8192, 4);
        let mut mpi2 = Mpi::new(&mut m2, MpiMode::Direct, 0);
        for k in 0..10 {
            mpi2.send(&mut m2, 0, a2, k * 64, 1 + (k % 3), b2, 2048 + k * 64, 64);
        }
        assert!(m2.breakdown(0).sync < m.breakdown(0).sync);
    }

    #[test]
    fn self_send_is_a_local_copy() {
        let mut m = machine(2);
        let (a, b) = partitioned_pair(&mut m, 1024, 2);
        m.raw_mut(a)[3] = 99;
        let mut mpi = Mpi::new(&mut m, MpiMode::Direct, 0);
        mpi.send(&mut m, 0, a, 0, 0, b, 0, 16);
        assert_eq!(m.raw(b)[3], 99);
        assert_eq!(m.events(0).messages, 0, "self-sends are not network messages");
    }

    #[test]
    fn allgather_replicates_all_contributions() {
        let p = 4;
        let mut m = machine(p);
        let src = m.alloc(p * 8, Placement::Partitioned { parts: p }, "contrib");
        for pe in 0..p {
            for i in 0..8 {
                m.raw_mut(src)[pe * 8 + i] = (pe * 100 + i) as u32;
            }
        }
        let dsts: Vec<ArrayId> = (0..p)
            .map(|pe| m.alloc(p * 8, Placement::Node(m.topo().node_of(pe)), "replica"))
            .collect();
        let mut mpi = Mpi::new(&mut m, MpiMode::Direct, 0);
        let contribs: Vec<(ArrayId, usize)> = (0..p).map(|j| (src, j * 8)).collect();
        for pe in 0..p {
            mpi.allgather(&mut m, pe, &contribs, 8, dsts[pe]);
        }
        m.barrier();
        for pe in 0..p {
            for j in 0..p {
                for i in 0..8 {
                    assert_eq!(m.raw(dsts[pe])[j * 8 + i], (j * 100 + i) as u32);
                }
            }
        }
        // Each rank paid for p-1 messages.
        assert_eq!(m.events(0).messages, (p - 1) as u64);
    }

    #[test]
    #[should_panic(expected = "bounce buffer overflow")]
    fn staged_bounce_overflow_is_detected() {
        let mut m = machine(2);
        let (a, b) = partitioned_pair(&mut m, 1024, 2);
        let mut mpi = Mpi::new(&mut m, MpiMode::Staged, 64);
        mpi.send(&mut m, 0, a, 0, 1, b, 512, 64);
        mpi.send(&mut m, 0, a, 64, 1, b, 576, 64); // second message overflows
    }
}

#[cfg(test)]
mod pacing_tests {
    use super::*;
    use ccsort_machine::MachineConfig;

    #[test]
    fn drain_completes_in_arrival_order_across_senders() {
        let mut m = Machine::new(MachineConfig::origin2000(4).scaled_down(16));
        let a = m.alloc(4096, Placement::Partitioned { parts: 4 }, "a");
        let b = m.alloc(4096, Placement::Partitioned { parts: 4 }, "b");
        let mut mpi = Mpi::new(&mut m, MpiMode::Direct, 0);
        // Senders 0..3 each send one message to rank 3 from different
        // starting times.
        for src in 0..3 {
            m.charge(src, 1000.0 * (3 - src) as f64, ccsort_machine::Bucket::Busy);
            mpi.send(&mut m, src, a, src * 64, 3, b, 3072 + src * 64, 64);
        }
        let before = m.now(3);
        mpi.drain(&mut m, 3);
        assert!(m.now(3) > before, "receiver must pay receive overheads");
        assert_eq!(mpi.pending_for(3), 0);
    }

    #[test]
    fn staged_mode_paces_slower_than_direct() {
        let run = |mode| {
            let mut m = Machine::new(MachineConfig::origin2000(4).scaled_down(16));
            let a = m.alloc(8192, Placement::Partitioned { parts: 4 }, "a");
            let b = m.alloc(8192, Placement::Partitioned { parts: 4 }, "b");
            let mut mpi = Mpi::new(&mut m, mode, 4096);
            for k in 0..16 {
                mpi.send(&mut m, 0, a, k * 64, 1, b, 2048 + k * 64, 64);
            }
            m.now(0)
        };
        assert!(run(MpiMode::Staged) > run(MpiMode::Direct));
    }

    #[test]
    fn messages_to_distinct_receivers_interleave_freely() {
        let mut m = Machine::new(MachineConfig::origin2000(8).scaled_down(16));
        let a = m.alloc(8192, Placement::Partitioned { parts: 8 }, "a");
        let b = m.alloc(8192, Placement::Partitioned { parts: 8 }, "b");
        let mut mpi = Mpi::new(&mut m, MpiMode::Direct, 0);
        // Round-robin over 7 receivers: each pair sees gaps, so the 1-deep
        // mailbox rarely blocks.
        let sync0 = m.breakdown(0).sync;
        for k in 0..21 {
            mpi.send(&mut m, 0, a, k * 32, 1 + k % 7, b, 1024 + k * 32, 32);
        }
        let spread_sync = m.breakdown(0).sync - sync0;

        let mut m2 = Machine::new(MachineConfig::origin2000(8).scaled_down(16));
        let a2 = m2.alloc(8192, Placement::Partitioned { parts: 8 }, "a");
        let b2 = m2.alloc(8192, Placement::Partitioned { parts: 8 }, "b");
        let mut mpi2 = Mpi::new(&mut m2, MpiMode::Direct, 0);
        for k in 0..21 {
            mpi2.send(&mut m2, 0, a2, k * 32, 1, b2, 1024 + k * 32, 32);
        }
        let focused_sync = m2.breakdown(0).sync;
        assert!(
            focused_sync > spread_sync,
            "hammering one receiver ({focused_sync}) must stall more than spreading ({spread_sync})"
        );
    }
}
