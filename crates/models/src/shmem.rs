//! SHMEM runtime: one-sided `put`/`get` over a symmetric address space.
//!
//! SHMEM (Section 1 of the paper) differs from MPI in two ways that matter
//! here: communication involves only one side (no rendezvous, no per-pair
//! mailbox, tiny software overhead), and the segmented symmetric address
//! space lets a process name remote data with a local offset plus a PE
//! number — which in this codebase is simply an offset into a partitioned
//! simulated array.
//!
//! Following the paper's observation, `get` installs the transferred lines
//! in the *initiating* processor's cache ("get has the advantage that data
//! are brought into the cache, while put doesn't deposit them in the
//! destination cache"), so data fetched with `get` is warm for the next
//! local phase.

use ccsort_machine::{ArrayId, Bucket, Machine};



/// The SHMEM runtime. Stateless beyond its tuning knobs: one-sided
/// communication needs no mailboxes.
pub struct Shmem {
    p: usize,
    /// Fraction of wire time a `put` stalls the initiator: the CPU drives
    /// the copy but its writes pipeline behind the network interface.
    put_stall_frac: f64,
}

impl Shmem {
    pub fn new(m: &Machine) -> Self {
        Shmem { p: m.n_procs(), put_stall_frac: 0.7 }
    }

    /// Number of PEs.
    pub fn n_pes(&self) -> usize {
        self.p
    }

    /// Blocking one-sided `get`, initiated by `pe`: fetch `len` elements
    /// from `src_arr[src_off..]` (typically a remote partition) into
    /// `dst_arr[dst_off..]` (typically `pe`'s own partition). The initiator
    /// stalls for the full transfer; the lines land in its cache.
    #[allow(clippy::too_many_arguments)]
    pub fn get(
        &self,
        m: &mut Machine,
        pe: usize,
        dst_arr: ArrayId,
        dst_off: usize,
        src_arr: ArrayId,
        src_off: usize,
        len: usize,
    ) {
        if len == 0 {
            return;
        }
        m.charge(pe, m.cfg().shmem_overhead_ns, Bucket::Rmem);
        let t = m.dma_copy(pe, src_arr, src_off, dst_arr, dst_off, len, true);
        m.charge(pe, t, Bucket::Rmem);
        m.count_message(pe, len * 4);
    }

    /// Same-PE `get`: the block-transfer engine doing a local memcpy.
    /// Charged to LMEM (no interconnect involved).
    #[allow(clippy::too_many_arguments)]
    pub fn get_local(
        &self,
        m: &mut Machine,
        pe: usize,
        dst_arr: ArrayId,
        dst_off: usize,
        src_arr: ArrayId,
        src_off: usize,
        len: usize,
    ) {
        if len == 0 {
            return;
        }
        m.charge(pe, m.cfg().shmem_overhead_ns, Bucket::Lmem);
        let t = m.dma_copy(pe, src_arr, src_off, dst_arr, dst_off, len, true);
        m.charge(pe, t, Bucket::Lmem);
    }

    /// One-sided `put`, initiated by `pe`: store `len` elements from
    /// `src_arr[src_off..]` into `dst_arr[dst_off..]` (typically a remote
    /// partition). Mostly pipelined; does not install in any cache.
    #[allow(clippy::too_many_arguments)]
    pub fn put(
        &self,
        m: &mut Machine,
        pe: usize,
        src_arr: ArrayId,
        src_off: usize,
        dst_arr: ArrayId,
        dst_off: usize,
        len: usize,
    ) {
        if len == 0 {
            return;
        }
        m.charge(pe, m.cfg().shmem_overhead_ns, Bucket::Rmem);
        let t = m.dma_copy(pe, src_arr, src_off, dst_arr, dst_off, len, false);
        m.charge(pe, self.put_stall_frac * t, Bucket::Rmem);
        m.count_message(pe, len * 4);
    }

    /// `shmem_fcollect`, executed by `pe`: gather `len` elements from every
    /// PE's `(array, offset)` contribution into `pe`'s local replica `dst`
    /// (PE `j`'s block at `dst[j*len..]`). Implemented as the natural
    /// receiver-initiated loop of `get`s — one-sided, so far cheaper per
    /// step than the MPI Allgather, but still a fixed cost the CC-SAS
    /// prefix tree avoids entirely.
    pub fn fcollect(
        &self,
        m: &mut Machine,
        pe: usize,
        contribs: &[(ArrayId, usize)],
        len: usize,
        dst: ArrayId,
    ) {
        assert_eq!(contribs.len(), self.p);
        for j in 0..self.p {
            let (src_arr, src_off) = contribs[j];
            if j == pe {
                crate::cpu_copy_fixed(m, pe, src_arr, src_off, dst, j * len, len, 1.0);
            } else {
                // Histograms/samples are fixed-size structures: time a
                // representative prefix, move the rest untimed.
                let k = m.fixed_prefix(len);
                self.get(m, pe, dst, j * len, src_arr, src_off, k);
                if len > k {
                    // ccsort-lints: allow(untimed_outside_setup) -- the
                    // get() above charges the scaled cost of this
                    // fixed-size transfer; the remainder moves untimed by
                    // the fixed-structure discipline.
                    m.copy_untimed(pe, src_arr, src_off + k, dst, j * len + k, len - k);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccsort_machine::{MachineConfig, Placement};

    fn machine(p: usize) -> Machine {
        Machine::new(MachineConfig::origin2000(p).scaled_down(16))
    }

    #[test]
    fn get_fetches_and_warms_cache() {
        let mut m = machine(4);
        let a = m.alloc(4096, Placement::Partitioned { parts: 4 }, "sym");
        let b = m.alloc(4096, Placement::Partitioned { parts: 4 }, "sym2");
        for i in 0..4096 {
            m.raw_mut(a)[i] = i as u32;
        }
        let sh = Shmem::new(&m);
        // PE 0 gets 256 elements from PE 3's partition into its own.
        sh.get(&mut m, 0, b, 0, a, 3072, 256);
        assert_eq!(m.raw(b)[0], 3072);
        assert_eq!(m.raw(b)[255], 3327);
        // The fetched region is in PE 0's cache: reads hit.
        let misses = m.events(0).misses();
        let mut out = vec![0u32; 256];
        m.read_run(0, b, 0, &mut out);
        assert_eq!(m.events(0).misses(), misses, "get must warm the initiator's cache");
        assert!(m.breakdown(0).rmem > 0.0);
    }

    #[test]
    fn put_does_not_warm_destination() {
        let mut m = machine(4);
        let a = m.alloc(4096, Placement::Partitioned { parts: 4 }, "sym");
        let b = m.alloc(4096, Placement::Partitioned { parts: 4 }, "sym2");
        m.raw_mut(a)[0] = 42;
        let sh = Shmem::new(&m);
        sh.put(&mut m, 0, a, 0, b, 3072, 64);
        assert_eq!(m.raw(b)[3072], 42);
        // PE 3 reading its own partition must miss (data only in memory).
        let misses = m.events(3).misses();
        let mut out = vec![0u32; 64];
        m.read_run(3, b, 3072, &mut out);
        assert!(m.events(3).misses() > misses);
    }

    #[test]
    fn get_blocks_longer_than_put() {
        let mut m = machine(4);
        let a = m.alloc(8192, Placement::Partitioned { parts: 4 }, "sym");
        let b = m.alloc(8192, Placement::Partitioned { parts: 4 }, "sym2");
        let sh = Shmem::new(&m);
        sh.get(&mut m, 0, b, 0, a, 6144, 1024);
        let t_get = m.now(0);
        sh.put(&mut m, 1, a, 2048, b, 6144, 1024);
        let t_put = m.now(1);
        assert!(t_get > t_put, "blocking get ({t_get}) vs pipelined put ({t_put})");
    }

    #[test]
    fn fcollect_replicates_everything() {
        let p = 8;
        let mut m = machine(p);
        let src = m.alloc(p * 16, Placement::Partitioned { parts: p }, "hists");
        for pe in 0..p {
            for i in 0..16 {
                m.raw_mut(src)[pe * 16 + i] = (pe * 1000 + i) as u32;
            }
        }
        let dsts: Vec<_> = (0..p)
            .map(|pe| m.alloc(p * 16, Placement::Node(m.topo().node_of(pe)), "replica"))
            .collect();
        let sh = Shmem::new(&m);
        let contribs: Vec<(ccsort_machine::ArrayId, usize)> = (0..p).map(|j| (src, j * 16)).collect();
        for pe in 0..p {
            sh.fcollect(&mut m, pe, &contribs, 16, dsts[pe]);
        }
        for pe in 0..p {
            for j in 0..p {
                for i in 0..16 {
                    assert_eq!(m.raw(dsts[pe])[j * 16 + i], (j * 1000 + i) as u32);
                }
            }
        }
        assert_eq!(m.events(0).messages, (p - 1) as u64);
    }

    #[test]
    fn shmem_collective_cheaper_than_mpi() {
        use crate::mpi::{Mpi, MpiMode};
        let p = 8;
        let len = 256;
        let shmem_time = {
            let mut m = machine(p);
            let src = m.alloc(p * len, Placement::Partitioned { parts: p }, "c");
            let dsts: Vec<_> = (0..p)
                .map(|pe| m.alloc(p * len, Placement::Node(m.topo().node_of(pe)), "r"))
                .collect();
            let sh = Shmem::new(&m);
            let contribs: Vec<_> = (0..p).map(|j| (src, j * len)).collect();
            for pe in 0..p {
                sh.fcollect(&mut m, pe, &contribs, len, dsts[pe]);
            }
            m.parallel_time()
        };
        let mpi_time = {
            let mut m = machine(p);
            let src = m.alloc(p * len, Placement::Partitioned { parts: p }, "c");
            let dsts: Vec<_> = (0..p)
                .map(|pe| m.alloc(p * len, Placement::Node(m.topo().node_of(pe)), "r"))
                .collect();
            let mut mpi = Mpi::new(&mut m, MpiMode::Direct, 0);
            let contribs: Vec<_> = (0..p).map(|j| (src, j * len)).collect();
            for pe in 0..p {
                mpi.allgather(&mut m, pe, &contribs, len, dsts[pe]);
            }
            m.parallel_time()
        };
        assert!(
            shmem_time < mpi_time,
            "SHMEM fcollect ({shmem_time}) must beat MPI allgather ({mpi_time})"
        );
    }
}

#[cfg(test)]
mod get_local_tests {
    use super::*;
    use ccsort_machine::{MachineConfig, Placement};

    #[test]
    fn get_local_charges_lmem_not_rmem() {
        let mut m = Machine::new(MachineConfig::origin2000(4).scaled_down(16));
        let a = m.alloc(4096, Placement::Partitioned { parts: 4 }, "a");
        let b = m.alloc(4096, Placement::Partitioned { parts: 4 }, "b");
        m.raw_mut(a)[0] = 5;
        let sh = Shmem::new(&m);
        sh.get_local(&mut m, 0, b, 0, a, 0, 256);
        assert_eq!(m.raw(b)[0], 5);
        let brk = m.breakdown(0);
        assert!(brk.lmem > 0.0, "local block transfer charges LMEM");
        assert_eq!(brk.rmem, 0.0, "no remote time for a same-node transfer");
    }
}
