//! The [`Communicator`] transport layer: one trait per programming model,
//! one sorting skeleton per algorithm.
//!
//! The paper's whole argument is that the *same* radix/sample algorithm
//! behaves differently under CC-SAS, MPI, and SHMEM. This module factors
//! that comparison the way BSP sorting studies do (Gerbessiotis &
//! Siniolakis): the algorithm skeleton is written once in `ccsort-algos`,
//! and everything the models do differently — histogram publication and
//! combination (prefix tree vs `MPI_Allgather` vs `shmem_fcollect`),
//! exclusive-scan-to-offsets, the key-exchange transport ([`Permute`]) and
//! the sample-sort collectives — sits behind [`Communicator`].
//!
//! Three implementations cover the paper's models:
//!
//! * [`CcsasComm`] — load/store shared memory with the SPLASH-2 binary
//!   [`PrefixTree`]; permutes with [`Permute::DirectScatter`] (the original
//!   program) or [`Permute::ContiguousCopy`] ("CC-SAS-NEW").
//! * [`MpiComm`] — two-sided messages ([`Mpi`], staged or direct mode);
//!   permutes with [`Permute::ChunkMessages`] (one message per
//!   contiguously-destined chunk) or [`Permute::CoalescedMessages`]
//!   (IS-style, one message per destination).
//! * [`ShmemComm`] — one-sided [`Shmem`]; permutes with
//!   [`Permute::ReceiverGet`] (the paper's choice: `get` installs lines in
//!   the destination cache) or [`Permute::SenderPut`] (the alternative the
//!   paper argues against — `put` deposits in no cache, so the destination
//!   pays the misses in the next pass).
//!
//! Every method reproduces, call for call, the `Machine` access sequence of
//! the hand-written variant it replaced — allocation order, timed reads,
//! busy charges, barriers — so the refactor is observable-preserving: phase
//! sections, BUSY/LMEM/RMEM/SYNC breakdowns, event counters and
//! race-detector verdicts are bit-identical to the pre-trait programs.

use ccsort_machine::{ArrayId, Machine, Placement};

use crate::mpi::{Mpi, MpiMode};
use crate::prefix::PrefixTree;
use crate::shmem::Shmem;
use crate::{cpu_copy, read_fixed, write_fixed};

/// Processes per sample-collection group in the CC-SAS sample sort.
pub const GROUP: usize = 32;

/// The four data-movement styles of the radix-sort permutation phase, plus
/// the two one-sided directions. Which style a [`Communicator`] reports
/// decides which permutation skeleton arm runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Permute {
    /// Fine-grained scattered writes straight into the (mostly remote)
    /// output array — the original CC-SAS program.
    DirectScatter,
    /// Permute into a local staging buffer, then copy each digit chunk to
    /// its destination as one contiguous streamed write — "CC-SAS-NEW".
    ContiguousCopy,
    /// Stage locally, then send each contiguously-destined chunk as a
    /// separate message — the paper's winning MPI strategy.
    ChunkMessages,
    /// Stage locally, then send one coalesced message per destination
    /// (NAS-IS style); the receiver reorganizes, paying an extra copy.
    CoalescedMessages,
    /// Stage locally; the *receiver* pulls every chunk landing in its
    /// partition with a one-sided `get` — the paper's SHMEM program.
    ReceiverGet,
    /// Stage locally; the *sender* pushes each chunk with a one-sided
    /// `put`, leaving the keys uncached at the destination.
    SenderPut,
}

/// Instruction-cost knobs the communicators charge for the work embedded in
/// their collectives (scans, redundant combines, splitter sorts, copies).
/// The algorithm crate owns the calibrated constants and passes them in, so
/// this crate needs no dependency on it.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Cycles per histogram bin for a sequential exclusive scan.
    pub scan_cyc_per_bin: f64,
    /// Cycles per entry to turn replicated histograms into offsets.
    pub offset_cyc_per_entry: f64,
    /// Cycles per element·log2(element) for a comparison sort.
    pub sort_cyc_per_cmp: f64,
    /// Extra cycles per key for a tight copy loop.
    pub copy_cyc_per_key: f64,
}

/// Exclusive prefix sum (the scan every model runs over its histograms).
pub fn exclusive_scan(v: &[u32]) -> Vec<u32> {
    let mut out = vec![0u32; v.len()];
    let mut acc = 0u32;
    for (o, &x) in out.iter_mut().zip(v) {
        *o = acc;
        acc += x;
    }
    out
}

/// Global destination offsets for every (process, digit) chunk, given all
/// local histograms: `offsets[pe][d]` is where process `pe`'s keys with
/// digit `d` start in the output array. This is the scan-to-offsets step
/// every model performs — redundantly per rank under MPI/SHMEM, through the
/// shared tree under CC-SAS.
pub fn global_offsets(hists: &[Vec<u32>]) -> Vec<Vec<u32>> {
    let p = hists.len();
    let bins = hists[0].len();
    let mut totals = vec![0u32; bins];
    for h in hists {
        for (t, &c) in totals.iter_mut().zip(h) {
            *t += c;
        }
    }
    let scan = exclusive_scan(&totals);
    let mut out = vec![vec![0u32; bins]; p];
    let mut running = scan;
    for pe in 0..p {
        out[pe].copy_from_slice(&running);
        for (r, &c) in running.iter_mut().zip(&hists[pe]) {
            *r += c;
        }
    }
    out
}

/// The all-to-all layout of the sample-sort key exchange, precomputed by
/// the skeleton (host math; the binary-search work is charged separately):
/// process `i` sends `counts[i][j]` keys from `src_off[i][j]` to
/// `dst_off[i][j]` in the receive array.
pub struct ExchangePlan {
    pub counts: Vec<Vec<u32>>,
    pub src_off: Vec<Vec<usize>>,
    pub dst_off: Vec<Vec<usize>>,
    /// Largest single receive region (sizes the MPI bounce buffers).
    pub max_region: usize,
}

/// One programming model's transport operations, as used by the radix- and
/// sample-sort skeletons in `ccsort-algos`. Methods a model does not
/// support (two-sided sends on CC-SAS, one-sided gets on MPI, ...) keep
/// their panicking defaults; the skeleton only calls the operations that
/// belong to the communicator's [`Permute`] style.
pub trait Communicator {
    /// Which permutation skeleton arm this communicator drives.
    fn style(&self) -> Permute;

    /// Human name, for panics and reports.
    fn name(&self) -> &'static str;

    /// Open a program phase. Default: a machine section boundary. The
    /// coalesced-MPI instantiation overrides this to a no-op (the historical
    /// program kept no sections and the tradeoff harness depends on that).
    fn section(&self, m: &mut Machine, name: &'static str) {
        m.section(name);
    }

    /// Allocate whatever the model needs for a radix sort of `n` keys with
    /// `bins`-way histograms, in the model's historical allocation order
    /// (allocation order decides page layout and therefore timing).
    fn setup_radix(&mut self, m: &mut Machine, n: usize, bins: usize);

    /// The local staging buffer (every style except [`Permute::DirectScatter`]).
    fn stage(&self) -> ArrayId {
        panic!("{}: no staging buffer in this permute style", self.name());
    }

    /// The coalesced-message landing buffer ([`Permute::CoalescedMessages`] only).
    fn recv_buf(&self) -> ArrayId {
        panic!("{}: no receive buffer in this permute style", self.name());
    }

    /// Publish `pe`'s local histogram (tree leaves under CC-SAS, the
    /// symmetric histogram array under MPI/SHMEM).
    fn publish_hist(&mut self, m: &mut Machine, pe: usize, hist: &[u32]);

    /// Close the publication phase. MPI/SHMEM barrier here; the CC-SAS tree
    /// does not (its accumulation opens with a barrier of its own, charged
    /// to the combine section exactly as the original program did).
    fn publish_done(&mut self, m: &mut Machine);

    /// Combine the published histograms so every process can obtain global
    /// ranks: tree accumulation, `MPI_Allgather`, or `shmem_fcollect`.
    fn combine(&mut self, m: &mut Machine, hists: &[Vec<u32>]);

    /// Perform `pe`'s timed read of the combined histogram data and return
    /// its global rank row (`ranks[d]` = where `pe`'s digit-`d` keys start
    /// in the output). Under CC-SAS this reads the tree and scans; under
    /// MPI/SHMEM it reads the local replica and charges the redundant
    /// combine, returning the precomputed `offsets[pe]`.
    fn read_ranks(
        &mut self,
        m: &mut Machine,
        pe: usize,
        hists: &[Vec<u32>],
        offsets: &[Vec<u32>],
    ) -> Vec<u32>;

    /// Two-sided send (message-passing models).
    #[allow(clippy::too_many_arguments)]
    fn send(
        &mut self,
        _m: &mut Machine,
        _src_pe: usize,
        _src_arr: ArrayId,
        _src_off: usize,
        _dst_pe: usize,
        _dst_arr: ArrayId,
        _dst_off: usize,
        _len: usize,
    ) {
        panic!("{}: two-sided messages are not part of this model", self.name());
    }

    /// Complete all inbound messages at `pe` (message-passing models).
    fn drain(&mut self, _m: &mut Machine, _pe: usize) {
        panic!("{}: two-sided messages are not part of this model", self.name());
    }

    /// One-sided `get` into `pe`'s partition (SHMEM).
    #[allow(clippy::too_many_arguments)]
    fn get(
        &mut self,
        _m: &mut Machine,
        _pe: usize,
        _dst_arr: ArrayId,
        _dst_off: usize,
        _src_arr: ArrayId,
        _src_off: usize,
        _len: usize,
    ) {
        panic!("{}: one-sided transfers are not part of this model", self.name());
    }

    /// Same-PE block transfer (SHMEM).
    #[allow(clippy::too_many_arguments)]
    fn get_local(
        &mut self,
        _m: &mut Machine,
        _pe: usize,
        _dst_arr: ArrayId,
        _dst_off: usize,
        _src_arr: ArrayId,
        _src_off: usize,
        _len: usize,
    ) {
        panic!("{}: one-sided transfers are not part of this model", self.name());
    }

    /// One-sided `put` from `pe`'s staging area into a remote partition
    /// (SHMEM; installs in no cache).
    #[allow(clippy::too_many_arguments)]
    fn put(
        &mut self,
        _m: &mut Machine,
        _pe: usize,
        _src_arr: ArrayId,
        _src_off: usize,
        _dst_arr: ArrayId,
        _dst_off: usize,
        _len: usize,
    ) {
        panic!("{}: one-sided transfers are not part of this model", self.name());
    }

    /// Sample-sort phase 3: combine the `p * s` published samples and
    /// return the `p - 1` splitters (every model computes the same values;
    /// they differ in who sorts what and what travels).
    fn select_splitters(&mut self, m: &mut Machine, samples: ArrayId, s: usize) -> Vec<u32>;

    /// Sample-sort count exchange: replicate the published `p × p` count
    /// matrix on every rank (shared reads, allgather, or fcollect).
    fn replicate_counts(&mut self, m: &mut Machine, flat_counts: ArrayId);

    /// Sample-sort phase 4: move every bucket to its destination per the
    /// plan. Contiguous remote reads under CC-SAS, send/recv under MPI,
    /// `get` under SHMEM. The skeleton supplies the closing barrier.
    fn exchange_keys(&mut self, m: &mut Machine, sorted: ArrayId, recv: ArrayId, plan: &ExchangePlan);
}

// ---------------------------------------------------------------------------
// CC-SAS
// ---------------------------------------------------------------------------

/// Load/store shared memory: histogram combination through the shared
/// binary [`PrefixTree`], splitters through delegated group collectors.
pub struct CcsasComm {
    style: Permute,
    costs: CostModel,
    bins: usize,
    tree: Option<PrefixTree>,
    stage: Option<ArrayId>,
}

impl CcsasComm {
    /// `style` must be [`Permute::DirectScatter`] (the original program) or
    /// [`Permute::ContiguousCopy`] (CC-SAS-NEW).
    pub fn new(style: Permute, costs: CostModel) -> Self {
        assert!(
            matches!(style, Permute::DirectScatter | Permute::ContiguousCopy),
            "CC-SAS permutes by direct scatter or buffered contiguous copy, not {style:?}"
        );
        CcsasComm { style, costs, bins: 0, tree: None, stage: None }
    }

    fn tree(&self) -> &PrefixTree {
        self.tree.as_ref().expect("setup_radix not called")
    }
}

impl Communicator for CcsasComm {
    fn style(&self) -> Permute {
        self.style
    }

    fn name(&self) -> &'static str {
        "CC-SAS"
    }

    fn setup_radix(&mut self, m: &mut Machine, n: usize, bins: usize) {
        let p = m.n_procs();
        self.bins = bins;
        self.tree = Some(PrefixTree::new(m, p, bins));
        if self.style == Permute::ContiguousCopy {
            // The per-process staging buffer: each process owns its
            // partition and lays its keys out grouped by digit.
            self.stage = Some(m.alloc(n, Placement::Partitioned { parts: p }, "stage"));
        }
    }

    fn stage(&self) -> ArrayId {
        self.stage.expect("DirectScatter CC-SAS has no staging buffer")
    }

    fn publish_hist(&mut self, m: &mut Machine, pe: usize, hist: &[u32]) {
        self.tree().set_local(m, pe, hist);
    }

    fn publish_done(&mut self, _m: &mut Machine) {
        // The tree accumulation opens with its own barrier.
    }

    fn combine(&mut self, m: &mut Machine, _hists: &[Vec<u32>]) {
        self.tree().accumulate(m);
    }

    fn read_ranks(
        &mut self,
        m: &mut Machine,
        pe: usize,
        _hists: &[Vec<u32>],
        _offsets: &[Vec<u32>],
    ) -> Vec<u32> {
        let bins = self.bins;
        let mut pref = vec![0u32; bins];
        let mut tot = vec![0u32; bins];
        let tree = self.tree.as_ref().expect("setup_radix not called");
        tree.read_prefix(m, pe, &mut pref);
        tree.read_totals(m, pe, &mut tot);
        m.busy_cycles_fixed(pe, self.costs.scan_cyc_per_bin * bins as f64);
        let scan = exclusive_scan(&tot);
        (0..bins).map(|d| scan[d] + pref[d]).collect()
    }

    fn select_splitters(&mut self, m: &mut Machine, samples: ArrayId, s: usize) -> Vec<u32> {
        let p = m.n_procs();
        let total = p * s;
        // Groups of up to GROUP processes; the group's first member
        // collects and sorts the group's samples into a shared array.
        let collected = m.alloc(total, Placement::Node(0), "collected-samples");
        let n_groups = p.div_ceil(GROUP);
        for g in 0..n_groups {
            let leader = g * GROUP;
            let gsize = GROUP.min(p - leader);
            let cnt = gsize * s;
            let mut buf = vec![0u32; cnt];
            read_fixed(m, leader, samples, leader * s, &mut buf);
            m.busy_cycles_fixed(
                leader,
                self.costs.sort_cyc_per_cmp * cnt as f64 * (cnt.max(2) as f64).log2(),
            );
            buf.sort_unstable();
            write_fixed(m, leader, collected, leader * s, &buf);
        }
        m.barrier();
        // The first leader merges the (sorted) group blocks and publishes
        // the splitters.
        let splitter_arr = m.alloc((p - 1).max(1), Placement::Node(0), "splitters");
        let all = {
            let mut buf = vec![0u32; total];
            read_fixed(m, 0, collected, 0, &mut buf);
            m.busy_cycles_fixed(
                0,
                self.costs.sort_cyc_per_cmp * total as f64 * (n_groups.max(2) as f64).log2(),
            );
            buf.sort_unstable();
            let spl: Vec<u32> = (1..p).map(|k| buf[k * total / p]).collect();
            if !spl.is_empty() {
                write_fixed(m, 0, splitter_arr, 0, &spl);
            }
            buf
        };
        m.barrier();
        // Everyone reads the shared splitters (fine-grained shared read).
        let mut spl = vec![0u32; (p - 1).max(1)];
        for pe in 0..p {
            if p > 1 {
                read_fixed(m, pe, splitter_arr, 0, &mut spl);
            }
        }
        m.barrier();
        (1..p).map(|k| all[k * total / p]).collect()
    }

    fn replicate_counts(&mut self, m: &mut Machine, flat_counts: ArrayId) {
        let p = m.n_procs();
        // Everyone reads the shared count matrix directly.
        for pe in 0..p {
            let mut buf = vec![0u32; p * p];
            read_fixed(m, pe, flat_counts, 0, &mut buf);
            m.busy_cycles_fixed(pe, self.costs.offset_cyc_per_entry * (p * p) as f64);
        }
    }

    fn exchange_keys(&mut self, m: &mut Machine, sorted: ArrayId, recv: ArrayId, plan: &ExchangePlan) {
        let p = m.n_procs();
        // Receiver-side remote reads: one contiguous copy per source.
        for j in 0..p {
            for i in 0..p {
                let len = plan.counts[i][j] as usize;
                if len > 0 {
                    cpu_copy(
                        m,
                        j,
                        sorted,
                        plan.src_off[i][j],
                        recv,
                        plan.dst_off[i][j],
                        len,
                        self.costs.copy_cyc_per_key,
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// MPI
// ---------------------------------------------------------------------------

/// Everything a radix pass needs under MPI, allocated once in the
/// historical order of the hand-written programs.
struct MpiRadixState {
    stage: ArrayId,
    recv_buf: Option<ArrayId>,
    hist_arr: ArrayId,
    replicas: Vec<ArrayId>,
    mpi: Mpi,
}

/// Two-sided message passing: allgathered histogram replicas, redundant
/// local combines, and per-chunk or coalesced messages.
pub struct MpiComm {
    mode: MpiMode,
    style: Permute,
    costs: CostModel,
    bins: usize,
    state: Option<MpiRadixState>,
}

impl MpiComm {
    /// `style` must be [`Permute::ChunkMessages`] or
    /// [`Permute::CoalescedMessages`].
    pub fn new(mode: MpiMode, style: Permute, costs: CostModel) -> Self {
        assert!(
            matches!(style, Permute::ChunkMessages | Permute::CoalescedMessages),
            "MPI permutes by per-chunk or coalesced messages, not {style:?}"
        );
        MpiComm { mode, style, costs, bins: 0, state: None }
    }

    fn state(&mut self) -> &mut MpiRadixState {
        self.state.as_mut().expect("setup_radix not called")
    }
}

impl Communicator for MpiComm {
    fn style(&self) -> Permute {
        self.style
    }

    fn name(&self) -> &'static str {
        match self.mode {
            MpiMode::Staged => "MPI (staged)",
            MpiMode::Direct => "MPI (direct)",
        }
    }

    fn section(&self, m: &mut Machine, name: &'static str) {
        // The coalesced program historically kept no sections (the §3.1
        // tradeoff harness reads whole-run times only).
        if self.style != Permute::CoalescedMessages {
            m.section(name);
        }
    }

    fn setup_radix(&mut self, m: &mut Machine, n: usize, bins: usize) {
        let p = m.n_procs();
        self.bins = bins;
        // Per-rank staging buffer for the local permutation.
        let stage = m.alloc(n, Placement::Partitioned { parts: p }, "stage");
        // Receive buffer: coalesced messages land here before the receiver
        // reorganizes them into the output array.
        let recv_buf = if self.style == Permute::CoalescedMessages {
            Some(m.alloc(n, Placement::Partitioned { parts: p }, "recv-buf"))
        } else {
            None
        };
        // Local histograms live in the symmetric histogram array so the
        // collective can fetch them.
        let hist_arr = m.alloc(p * bins, Placement::Partitioned { parts: p }, "hists");
        // Every rank's local replica of all histograms.
        let replicas: Vec<ArrayId> = (0..p)
            .map(|pe| {
                let home = m.topo().node_of(pe);
                m.alloc(p * bins, Placement::Node(home), "hist-replica")
            })
            .collect();
        // Worst-case inbound data per rank per pass: its own partition plus
        // chunk-boundary slack.
        let bounce_cap = n.div_ceil(p) + 2 * bins + 64;
        let mpi = Mpi::new(m, self.mode, bounce_cap);
        self.state = Some(MpiRadixState { stage, recv_buf, hist_arr, replicas, mpi });
    }

    fn stage(&self) -> ArrayId {
        self.state.as_ref().expect("setup_radix not called").stage
    }

    fn recv_buf(&self) -> ArrayId {
        self.state
            .as_ref()
            .expect("setup_radix not called")
            .recv_buf
            .expect("per-chunk MPI has no coalescing receive buffer")
    }

    fn publish_hist(&mut self, m: &mut Machine, pe: usize, hist: &[u32]) {
        let bins = self.bins;
        let hist_arr = self.state().hist_arr;
        m.busy_cycles_fixed(pe, bins as f64);
        write_fixed(m, pe, hist_arr, pe * bins, hist);
    }

    fn publish_done(&mut self, m: &mut Machine) {
        m.barrier();
    }

    fn combine(&mut self, m: &mut Machine, _hists: &[Vec<u32>]) {
        let p = m.n_procs();
        let bins = self.bins;
        let hist_arr = self.state().hist_arr;
        let contribs: Vec<(ArrayId, usize)> = (0..p).map(|j| (hist_arr, j * bins)).collect();
        for pe in 0..p {
            let replica = self.state().replicas[pe];
            self.state().mpi.allgather(m, pe, &contribs, bins, replica);
        }
        m.barrier();
    }

    fn read_ranks(
        &mut self,
        m: &mut Machine,
        pe: usize,
        _hists: &[Vec<u32>],
        offsets: &[Vec<u32>],
    ) -> Vec<u32> {
        let p = m.n_procs();
        let bins = self.bins;
        // Redundant local combine of all p histograms.
        let mut replica = vec![0u32; p * bins];
        let rep = self.state().replicas[pe];
        read_fixed(m, pe, rep, 0, &mut replica);
        m.busy_cycles_fixed(pe, self.costs.offset_cyc_per_entry * (p * bins) as f64);
        offsets[pe].clone()
    }

    #[allow(clippy::too_many_arguments)]
    fn send(
        &mut self,
        m: &mut Machine,
        src_pe: usize,
        src_arr: ArrayId,
        src_off: usize,
        dst_pe: usize,
        dst_arr: ArrayId,
        dst_off: usize,
        len: usize,
    ) {
        self.state().mpi.send(m, src_pe, src_arr, src_off, dst_pe, dst_arr, dst_off, len);
    }

    fn drain(&mut self, m: &mut Machine, pe: usize) {
        self.state().mpi.drain(m, pe);
    }

    fn select_splitters(&mut self, m: &mut Machine, samples: ArrayId, s: usize) -> Vec<u32> {
        let p = m.n_procs();
        let total = p * s;
        let mut all: Vec<u32> = Vec::new();
        let replicas: Vec<ArrayId> = (0..p)
            .map(|pe| m.alloc(total, Placement::Node(m.topo().node_of(pe)), "sample-replica"))
            .collect();
        let contribs: Vec<(ArrayId, usize)> = (0..p).map(|j| (samples, j * s)).collect();
        let mut mpi = Mpi::new(m, self.mode, 1);
        for pe in 0..p {
            mpi.allgather(m, pe, &contribs, s, replicas[pe]);
            // Redundant local sort + selection on every rank.
            let mut buf = vec![0u32; total];
            read_fixed(m, pe, replicas[pe], 0, &mut buf);
            m.busy_cycles_fixed(
                pe,
                self.costs.sort_cyc_per_cmp * total as f64 * (total.max(2) as f64).log2(),
            );
            buf.sort_unstable();
            if pe == 0 {
                all = buf;
            }
        }
        m.barrier();
        (1..p).map(|k| all[k * total / p]).collect()
    }

    fn replicate_counts(&mut self, m: &mut Machine, flat_counts: ArrayId) {
        let p = m.n_procs();
        let mut mpi = Mpi::new(m, self.mode, 1);
        let contribs: Vec<(ArrayId, usize)> = (0..p).map(|j| (flat_counts, j * p)).collect();
        for pe in 0..p {
            let replica = m.alloc(p * p, Placement::Node(m.topo().node_of(pe)), "count-replica");
            mpi.allgather(m, pe, &contribs, p, replica);
            m.busy_cycles_fixed(pe, self.costs.offset_cyc_per_entry * (p * p) as f64);
        }
    }

    fn exchange_keys(&mut self, m: &mut Machine, sorted: ArrayId, recv: ArrayId, plan: &ExchangePlan) {
        let p = m.n_procs();
        let mut mpi = Mpi::new(m, self.mode, plan.max_region + 64);
        for i in 0..p {
            for j in 0..p {
                let len = plan.counts[i][j] as usize;
                if len > 0 {
                    mpi.send(m, i, sorted, plan.src_off[i][j], j, recv, plan.dst_off[i][j], len);
                }
            }
        }
        for pe in 0..p {
            mpi.drain(m, pe);
        }
    }
}

// ---------------------------------------------------------------------------
// SHMEM
// ---------------------------------------------------------------------------

/// Everything a radix pass needs under SHMEM.
struct ShmemRadixState {
    stage: ArrayId,
    hist_arr: ArrayId,
    replicas: Vec<ArrayId>,
    shmem: Shmem,
}

/// One-sided communication on a symmetric address space: fcollected
/// histogram replicas and `get`/`put` block transfers.
pub struct ShmemComm {
    style: Permute,
    costs: CostModel,
    bins: usize,
    state: Option<ShmemRadixState>,
}

impl ShmemComm {
    /// `style` must be [`Permute::ReceiverGet`] (the paper's program) or
    /// [`Permute::SenderPut`].
    pub fn new(style: Permute, costs: CostModel) -> Self {
        assert!(
            matches!(style, Permute::ReceiverGet | Permute::SenderPut),
            "SHMEM permutes by one-sided get or put, not {style:?}"
        );
        ShmemComm { style, costs, bins: 0, state: None }
    }

    fn state(&self) -> &ShmemRadixState {
        self.state.as_ref().expect("setup_radix not called")
    }
}

impl Communicator for ShmemComm {
    fn style(&self) -> Permute {
        self.style
    }

    fn name(&self) -> &'static str {
        "SHMEM"
    }

    fn setup_radix(&mut self, m: &mut Machine, n: usize, bins: usize) {
        let p = m.n_procs();
        self.bins = bins;
        let stage = m.alloc(n, Placement::Partitioned { parts: p }, "stage");
        let hist_arr = m.alloc(p * bins, Placement::Partitioned { parts: p }, "hists");
        let replicas: Vec<ArrayId> = (0..p)
            .map(|pe| {
                let home = m.topo().node_of(pe);
                m.alloc(p * bins, Placement::Node(home), "hist-replica")
            })
            .collect();
        let shmem = Shmem::new(m);
        self.state = Some(ShmemRadixState { stage, hist_arr, replicas, shmem });
    }

    fn stage(&self) -> ArrayId {
        self.state().stage
    }

    fn publish_hist(&mut self, m: &mut Machine, pe: usize, hist: &[u32]) {
        let bins = self.bins;
        let hist_arr = self.state().hist_arr;
        m.busy_cycles_fixed(pe, bins as f64);
        write_fixed(m, pe, hist_arr, pe * bins, hist);
    }

    fn publish_done(&mut self, m: &mut Machine) {
        m.barrier();
    }

    fn combine(&mut self, m: &mut Machine, _hists: &[Vec<u32>]) {
        let p = m.n_procs();
        let bins = self.bins;
        let hist_arr = self.state().hist_arr;
        let contribs: Vec<(ArrayId, usize)> = (0..p).map(|j| (hist_arr, j * bins)).collect();
        for pe in 0..p {
            let st = self.state();
            st.shmem.fcollect(m, pe, &contribs, bins, st.replicas[pe]);
        }
        m.barrier();
    }

    fn read_ranks(
        &mut self,
        m: &mut Machine,
        pe: usize,
        _hists: &[Vec<u32>],
        offsets: &[Vec<u32>],
    ) -> Vec<u32> {
        let p = m.n_procs();
        let bins = self.bins;
        let mut replica = vec![0u32; p * bins];
        read_fixed(m, pe, self.state().replicas[pe], 0, &mut replica);
        m.busy_cycles_fixed(pe, self.costs.offset_cyc_per_entry * (p * bins) as f64);
        offsets[pe].clone()
    }

    #[allow(clippy::too_many_arguments)]
    fn get(
        &mut self,
        m: &mut Machine,
        pe: usize,
        dst_arr: ArrayId,
        dst_off: usize,
        src_arr: ArrayId,
        src_off: usize,
        len: usize,
    ) {
        self.state().shmem.get(m, pe, dst_arr, dst_off, src_arr, src_off, len);
    }

    #[allow(clippy::too_many_arguments)]
    fn get_local(
        &mut self,
        m: &mut Machine,
        pe: usize,
        dst_arr: ArrayId,
        dst_off: usize,
        src_arr: ArrayId,
        src_off: usize,
        len: usize,
    ) {
        self.state().shmem.get_local(m, pe, dst_arr, dst_off, src_arr, src_off, len);
    }

    #[allow(clippy::too_many_arguments)]
    fn put(
        &mut self,
        m: &mut Machine,
        pe: usize,
        src_arr: ArrayId,
        src_off: usize,
        dst_arr: ArrayId,
        dst_off: usize,
        len: usize,
    ) {
        self.state().shmem.put(m, pe, src_arr, src_off, dst_arr, dst_off, len);
    }

    fn select_splitters(&mut self, m: &mut Machine, samples: ArrayId, s: usize) -> Vec<u32> {
        let p = m.n_procs();
        let total = p * s;
        let mut all: Vec<u32> = Vec::new();
        let replicas: Vec<ArrayId> = (0..p)
            .map(|pe| m.alloc(total, Placement::Node(m.topo().node_of(pe)), "sample-replica"))
            .collect();
        let contribs: Vec<(ArrayId, usize)> = (0..p).map(|j| (samples, j * s)).collect();
        let shmem = Shmem::new(m);
        for pe in 0..p {
            shmem.fcollect(m, pe, &contribs, s, replicas[pe]);
            let mut buf = vec![0u32; total];
            read_fixed(m, pe, replicas[pe], 0, &mut buf);
            m.busy_cycles_fixed(
                pe,
                self.costs.sort_cyc_per_cmp * total as f64 * (total.max(2) as f64).log2(),
            );
            buf.sort_unstable();
            if pe == 0 {
                all = buf;
            }
        }
        m.barrier();
        (1..p).map(|k| all[k * total / p]).collect()
    }

    fn replicate_counts(&mut self, m: &mut Machine, flat_counts: ArrayId) {
        let p = m.n_procs();
        let shmem = Shmem::new(m);
        let contribs: Vec<(ArrayId, usize)> = (0..p).map(|j| (flat_counts, j * p)).collect();
        for pe in 0..p {
            let replica = m.alloc(p * p, Placement::Node(m.topo().node_of(pe)), "count-replica");
            shmem.fcollect(m, pe, &contribs, p, replica);
            m.busy_cycles_fixed(pe, self.costs.offset_cyc_per_entry * (p * p) as f64);
        }
    }

    fn exchange_keys(&mut self, m: &mut Machine, sorted: ArrayId, recv: ArrayId, plan: &ExchangePlan) {
        let p = m.n_procs();
        let shmem = Shmem::new(m);
        for j in 0..p {
            for i in 0..p {
                let len = plan.counts[i][j] as usize;
                if len == 0 {
                    continue;
                }
                if i == j {
                    cpu_copy(
                        m,
                        j,
                        sorted,
                        plan.src_off[i][j],
                        recv,
                        plan.dst_off[i][j],
                        len,
                        self.costs.copy_cyc_per_key,
                    );
                } else {
                    shmem.get(m, j, recv, plan.dst_off[i][j], sorted, plan.src_off[i][j], len);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn costs() -> CostModel {
        CostModel {
            scan_cyc_per_bin: 3.0,
            offset_cyc_per_entry: 3.0,
            sort_cyc_per_cmp: 12.0,
            copy_cyc_per_key: 1.0,
        }
    }

    #[test]
    fn exclusive_scan_shifts_by_one() {
        assert_eq!(exclusive_scan(&[3, 1, 4, 1]), vec![0, 3, 4, 8]);
        assert!(exclusive_scan(&[]).is_empty());
    }

    #[test]
    fn global_offsets_rank_by_digit_then_process() {
        let hists = vec![vec![2, 0, 1, 3], vec![1, 2, 0, 1]];
        let off = global_offsets(&hists);
        assert_eq!(off[0], vec![0, 3, 5, 6]);
        assert_eq!(off[1], vec![2, 3, 6, 9]);
    }

    #[test]
    fn communicators_report_their_style() {
        assert_eq!(CcsasComm::new(Permute::DirectScatter, costs()).style(), Permute::DirectScatter);
        assert_eq!(
            MpiComm::new(MpiMode::Direct, Permute::CoalescedMessages, costs()).style(),
            Permute::CoalescedMessages
        );
        assert_eq!(ShmemComm::new(Permute::SenderPut, costs()).style(), Permute::SenderPut);
    }

    #[test]
    #[should_panic(expected = "CC-SAS permutes by")]
    fn ccsas_rejects_message_styles() {
        let _ = CcsasComm::new(Permute::ChunkMessages, costs());
    }

    #[test]
    #[should_panic(expected = "not part of this model")]
    fn ccsas_has_no_two_sided_send() {
        use ccsort_machine::{MachineConfig, Placement};
        let mut m = Machine::new(MachineConfig::origin2000(2).scaled_down(16));
        let a = m.alloc(16, Placement::Node(0), "a");
        let mut c = CcsasComm::new(Permute::DirectScatter, costs());
        c.send(&mut m, 0, a, 0, 1, a, 8, 4);
    }
}
