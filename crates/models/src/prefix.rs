//! SPLASH-2-style binary prefix tree for histogram accumulation under
//! CC-SAS.
//!
//! Radix sort needs, for every processor `i` and digit value `d`, the rank
//! `prefix[i][d] = Σ_{j<i} hist[j][d]` plus the global totals
//! `total[d] = Σ_j hist[j][d]`. The CC-SAS program builds these with a
//! binary tree of partial histograms in shared memory: an up-sweep merges
//! children pairwise, a down-sweep distributes left-sibling prefixes. All
//! communication is implicit fine-grained load/store traffic — the paper
//! highlights this as the reason the CC-SAS histogram phase is much cheaper
//! than the Allgather used by the MPI and SHMEM programs (Section 4.2),
//! which is why CC-SAS radix wins for the smallest data sets.

use ccsort_machine::{ArrayId, Machine, Placement};

use crate::{read_fixed, write_fixed};

/// Cycles of instruction work per element for a merge/add step.
const MERGE_CYC_PER_ELEM: f64 = 2.0;

/// A reusable binary prefix-sum tree over `p` per-processor histograms of
/// `bins` buckets each. All node storage lives in simulated shared memory,
/// homed at the owning processor's node.
pub struct PrefixTree {
    p: usize,
    bins: usize,
    /// `sums[l][i]`: partial histogram of the subtree rooted at node `i` of
    /// level `l`. Level 0 holds the leaves (the local histograms).
    sums: Vec<Vec<ArrayId>>,
    /// `prefs[l][i]`: sum over all leaves strictly left of the subtree.
    prefs: Vec<Vec<ArrayId>>,
}

impl PrefixTree {
    /// Owner processor of node `i` at level `l` (the lowest-numbered leaf
    /// in its subtree, as in SPLASH-2).
    fn owner(l: usize, i: usize) -> usize {
        i << l
    }

    pub fn new(m: &mut Machine, p: usize, bins: usize) -> Self {
        assert!(p >= 1 && bins >= 1);
        let mut sums: Vec<Vec<ArrayId>> = Vec::new();
        let mut prefs: Vec<Vec<ArrayId>> = Vec::new();
        let mut width = p;
        let mut l = 0usize;
        loop {
            let mut level_sums = Vec::with_capacity(width);
            let mut level_prefs = Vec::with_capacity(width);
            for i in 0..width {
                let node = Self::owner(l, i).min(p - 1);
                let home = m.topo().node_of(node);
                level_sums.push(m.alloc(bins, Placement::Node(home), "prefix-sum"));
                level_prefs.push(m.alloc(bins, Placement::Node(home), "prefix-pref"));
            }
            sums.push(level_sums);
            prefs.push(level_prefs);
            if width == 1 {
                break;
            }
            width = width.div_ceil(2);
            l += 1;
        }
        PrefixTree { p, bins, sums, prefs }
    }

    /// Number of tree levels (including the leaf level).
    pub fn n_levels(&self) -> usize {
        self.sums.len()
    }

    /// Install processor `pe`'s local histogram into its leaf (a streamed
    /// write to local shared memory).
    pub fn set_local(&self, m: &mut Machine, pe: usize, hist: &[u32]) {
        assert_eq!(hist.len(), self.bins);
        m.busy_cycles_fixed(pe, hist.len() as f64);
        write_fixed(m, pe, self.sums[0][pe], 0, hist);
    }

    /// Run the up-sweep and down-sweep. Contains internal barriers: every
    /// processor must have called [`PrefixTree::set_local`] beforehand, and
    /// the caller must *not* wrap this in its own per-processor loop.
    pub fn accumulate(&self, m: &mut Machine) {
        m.barrier();
        let top = self.n_levels() - 1;

        // Up-sweep: parents gather and add their children.
        for l in 1..=top {
            let width = self.sums[l].len();
            for i in 0..width {
                let pe = Self::owner(l, i).min(self.p - 1);
                let below = self.sums[l - 1].len();
                let left = 2 * i;
                let right = 2 * i + 1;
                let mut acc = vec![0u32; self.bins];
                read_fixed(m, pe, self.sums[l - 1][left], 0, &mut acc);
                if right < below {
                    let mut rbuf = vec![0u32; self.bins];
                    read_fixed(m, pe, self.sums[l - 1][right], 0, &mut rbuf);
                    m.busy_cycles_fixed(pe, MERGE_CYC_PER_ELEM * self.bins as f64);
                    for (a, b) in acc.iter_mut().zip(&rbuf) {
                        *a = a.wrapping_add(*b);
                    }
                }
                write_fixed(m, pe, self.sums[l][i], 0, &acc);
            }
            m.barrier();
        }

        // Root prefix is zero.
        {
            let pe = 0;
            let zeros = vec![0u32; self.bins];
            write_fixed(m, pe, self.prefs[top][0], 0, &zeros);
        }
        m.barrier();

        // Down-sweep: children inherit (left) or inherit + left-sibling sum
        // (right).
        for l in (1..=top).rev() {
            let width = self.sums[l].len();
            for i in 0..width {
                let pe = Self::owner(l, i).min(self.p - 1);
                let below = self.sums[l - 1].len();
                let left = 2 * i;
                let right = 2 * i + 1;
                let mut parent_pref = vec![0u32; self.bins];
                read_fixed(m, pe, self.prefs[l][i], 0, &mut parent_pref);
                write_fixed(m, pe, self.prefs[l - 1][left], 0, &parent_pref);
                if right < below {
                    let mut left_sum = vec![0u32; self.bins];
                    read_fixed(m, pe, self.sums[l - 1][left], 0, &mut left_sum);
                    m.busy_cycles_fixed(pe, MERGE_CYC_PER_ELEM * self.bins as f64);
                    for (a, b) in parent_pref.iter_mut().zip(&left_sum) {
                        *a = a.wrapping_add(*b);
                    }
                    write_fixed(m, pe, self.prefs[l - 1][right], 0, &parent_pref);
                }
            }
            m.barrier();
        }
    }

    /// Read back `pe`'s prefix (Σ of histograms of lower-numbered
    /// processors). Local streamed read.
    pub fn read_prefix(&self, m: &mut Machine, pe: usize, out: &mut [u32]) {
        assert_eq!(out.len(), self.bins);
        read_fixed(m, pe, self.prefs[0][pe], 0, out);
    }

    /// Read the global totals from the root — for most processors this is
    /// the fine-grained remote read sharing the paper talks about.
    pub fn read_totals(&self, m: &mut Machine, pe: usize, out: &mut [u32]) {
        assert_eq!(out.len(), self.bins);
        let top = self.n_levels() - 1;
        read_fixed(m, pe, self.sums[top][0], 0, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccsort_machine::MachineConfig;

    fn check_tree(p: usize, bins: usize) {
        let mut m = Machine::new(MachineConfig::origin2000(p).scaled_down(16));
        let tree = PrefixTree::new(&mut m, p, bins);
        // Deterministic pseudo-random histograms.
        let hist = |pe: usize, d: usize| ((pe * 31 + d * 17 + 7) % 23) as u32;
        for pe in 0..p {
            let h: Vec<u32> = (0..bins).map(|d| hist(pe, d)).collect();
            tree.set_local(&mut m, pe, &h);
        }
        tree.accumulate(&mut m);
        for pe in 0..p {
            let mut pref = vec![0u32; bins];
            tree.read_prefix(&mut m, pe, &mut pref);
            for d in 0..bins {
                let expect: u32 = (0..pe).map(|j| hist(j, d)).sum();
                assert_eq!(pref[d], expect, "prefix p={p} pe={pe} d={d}");
            }
            let mut tot = vec![0u32; bins];
            tree.read_totals(&mut m, pe, &mut tot);
            for d in 0..bins {
                let expect: u32 = (0..p).map(|j| hist(j, d)).sum();
                assert_eq!(tot[d], expect, "total p={p} pe={pe} d={d}");
            }
        }
    }

    #[test]
    fn correct_for_power_of_two() {
        check_tree(8, 16);
    }

    #[test]
    fn correct_for_odd_process_counts() {
        check_tree(1, 4);
        check_tree(3, 8);
        check_tree(5, 8);
        check_tree(7, 8);
    }

    #[test]
    fn correct_for_non_power_of_two_process_counts() {
        // Both checked-in regression seeds sat at odd p; sweep the full
        // non-power-of-two range including one just under the machine size.
        for p in [3, 5, 6, 7, 63] {
            check_tree(p, 16);
        }
    }

    #[test]
    fn correct_for_non_power_of_two_bins() {
        for bins in [1, 5, 12, 24, 63] {
            check_tree(3, bins);
            check_tree(8, bins);
        }
    }

    #[test]
    fn correct_for_full_machine() {
        check_tree(64, 32);
    }

    #[test]
    fn accumulation_charges_time() {
        let p = 8;
        let mut m = Machine::new(MachineConfig::origin2000(p).scaled_down(16));
        let tree = PrefixTree::new(&mut m, p, 256);
        for pe in 0..p {
            tree.set_local(&mut m, pe, &vec![1u32; 256]);
        }
        tree.accumulate(&mut m);
        assert!(m.parallel_time() > 0.0);
        // Tree cost should be microseconds, not milliseconds: this is the
        // cheap fine-grained path the paper describes.
        assert!(m.parallel_time() < 1.0e6, "tree too slow: {} ns", m.parallel_time());
    }

    #[test]
    fn reusable_across_passes() {
        let p = 4;
        let mut m = Machine::new(MachineConfig::origin2000(p).scaled_down(16));
        let tree = PrefixTree::new(&mut m, p, 8);
        for round in 0..3u32 {
            for pe in 0..p {
                tree.set_local(&mut m, pe, &[round + pe as u32; 8]);
            }
            tree.accumulate(&mut m);
            let mut tot = vec![0u32; 8];
            tree.read_totals(&mut m, 0, &mut tot);
            let expect: u32 = (0..p as u32).map(|pe| round + pe).sum();
            assert!(tot.iter().all(|&t| t == expect), "round {round}");
        }
    }
}
