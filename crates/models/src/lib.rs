//! # ccsort-models
//!
//! The three programming-model runtimes of Shan & Singh (SC 1999), built on
//! the simulated DSM machine from `ccsort-machine`:
//!
//! * **CC-SAS** — a load/store cache-coherent shared address space. Programs
//!   use the machine's coherent accessors directly; this crate contributes
//!   the SPLASH-2-style binary [`prefix::PrefixTree`] used for histogram
//!   accumulation, whose efficient fine-grained communication is the reason
//!   CC-SAS wins at small data sets (Section 4.2 of the paper).
//! * **MPI** ([`mpi::Mpi`]) — two implementations: [`mpi::MpiMode::Staged`]
//!   models the vendor library that bounces every message through an
//!   internal buffer, and [`mpi::MpiMode::Direct`] models the authors'
//!   "impure" MPICH that transfers directly into the destination address
//!   space. Both use 1-deep per-pair mailboxes, whose back-to-back-message
//!   stall is the source of MPI's extra SYNC time (Figure 4).
//! * **SHMEM** ([`shmem::Shmem`]) — one-sided `put`/`get` on a symmetric
//!   address space, with `get` installing data in the destination cache.
//!
//! Execution model: programs are bulk-synchronous. A *phase* is a closure
//! run once per processor ([`spmd`]); [`ccsort_machine::Machine::barrier`]
//! separates phases. This sequential-per-phase schedule is semantically
//! identical to a parallel one for the sorting programs because all their
//! intra-phase writes are to disjoint locations, and it makes the whole
//! simulation deterministic.

pub mod comm;
pub mod mpi;
pub mod prefix;
pub mod shmem;

use ccsort_machine::{ArrayId, Bucket, Machine, Pattern};

pub use comm::{CcsasComm, Communicator, CostModel, ExchangePlan, MpiComm, Permute, ShmemComm};
pub use mpi::{Mpi, MpiMode};
pub use prefix::PrefixTree;
pub use shmem::Shmem;

/// Run `body` once per processor (in processor order), then barrier.
///
/// ```
/// use ccsort_machine::{Machine, MachineConfig};
/// let mut m = Machine::new(MachineConfig::origin2000(4));
/// ccsort_models::spmd(&mut m, |m, pe| m.busy_cycles(pe, 10.0 * (pe as f64 + 1.0)));
/// // All clocks aligned afterwards.
/// let t = m.now(0);
/// assert!((0..4).all(|pe| (m.now(pe) - t).abs() < 1e-9));
/// ```
pub fn spmd<F: FnMut(&mut Machine, usize)>(m: &mut Machine, mut body: F) {
    for pe in 0..m.n_procs() {
        body(m, pe);
    }
    m.barrier();
}

/// Run `body` once per processor without a trailing barrier (for phases
/// that end in a collective with its own synchronization).
pub fn spmd_nobarrier<F: FnMut(&mut Machine, usize)>(m: &mut Machine, mut body: F) {
    for pe in 0..m.n_procs() {
        body(m, pe);
    }
}

/// Timed CPU copy of `len` elements between simulated arrays, performed by
/// `pe` with streamed loads and stores plus `cyc_per_elem` cycles of
/// instruction work per element.
#[allow(clippy::too_many_arguments)]
pub fn cpu_copy(
    m: &mut Machine,
    pe: usize,
    src: ArrayId,
    src_off: usize,
    dst: ArrayId,
    dst_off: usize,
    len: usize,
    cyc_per_elem: f64,
) {
    if len == 0 {
        return;
    }
    m.touch_run(pe, src, src_off, len, false);
    m.touch_run(pe, dst, dst_off, len, true);
    m.busy_cycles(pe, cyc_per_elem * len as f64);
    // ccsort-lints: allow(untimed_outside_setup) -- the two touch_run
    // calls above charge this transfer's full memory-system cost; the
    // untimed call is only the backing-store data motion of the same copy.
    m.copy_untimed(pe, src, src_off, dst, dst_off, len);
}

/// Timed scattered read helper used where a program reads a handful of
/// shared values (splitters, flags).
pub fn read_scattered(m: &mut Machine, pe: usize, arr: ArrayId, idx: usize) -> u32 {
    m.read_pat(pe, arr, idx, Pattern::Scattered)
}

/// Batched counterpart of [`read_scattered`]: gather `idxs.len()` shared
/// values in one submission through the machine's batched scattered walk
/// (one detector dispatch and base resolution for the whole set).
pub fn gather_scattered(m: &mut Machine, pe: usize, arr: ArrayId, idxs: &[usize], out: &mut [u32]) {
    m.gather_run(pe, arr, idxs, out);
}

/// Read a *fixed-size* (n-independent) structure: the full data is
/// returned, but only a representative `1/fixed_cost_div` prefix goes
/// through the timed path, so the charged cost keeps the weight it has on
/// the full-scale machine (see `MachineConfig::scaled_down`).
pub fn read_fixed(m: &mut Machine, pe: usize, arr: ArrayId, off: usize, out: &mut [u32]) {
    if out.is_empty() {
        return;
    }
    let k = m.fixed_prefix(out.len());
    m.read_run(pe, arr, off, &mut out[..k]);
    if out.len() > k {
        let end = off + out.len();
        out[k..].copy_from_slice(&m.raw(arr)[off + k..end]);
    }
}

/// Write a fixed-size structure; cost-scaled counterpart of `write_run`.
pub fn write_fixed(m: &mut Machine, pe: usize, arr: ArrayId, off: usize, src: &[u32]) {
    if src.is_empty() {
        return;
    }
    let k = m.fixed_prefix(src.len());
    m.write_run(pe, arr, off, &src[..k]);
    if src.len() > k {
        m.raw_mut(arr)[off + k..off + src.len()].copy_from_slice(&src[k..]);
    }
}

/// Copy between fixed-size structures; cost-scaled counterpart of
/// [`cpu_copy`].
#[allow(clippy::too_many_arguments)]
pub fn cpu_copy_fixed(
    m: &mut Machine,
    pe: usize,
    src: ArrayId,
    src_off: usize,
    dst: ArrayId,
    dst_off: usize,
    len: usize,
    cyc_per_elem: f64,
) {
    if len == 0 {
        return;
    }
    let k = m.fixed_prefix(len);
    cpu_copy(m, pe, src, src_off, dst, dst_off, k, cyc_per_elem);
    if len > k {
        // ccsort-lints: allow(untimed_outside_setup) -- fixed-size
        // structure: the representative prefix above carries the scaled
        // cost (MachineConfig::scaled_down); the remainder moves untimed
        // by design.
        m.copy_untimed(pe, src, src_off + k, dst, dst_off + k, len - k);
    }
}

/// Charge pure waiting time (modelled library-internal spinning).
pub fn spin(m: &mut Machine, pe: usize, ns: f64) {
    m.charge(pe, ns, Bucket::Sync);
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccsort_machine::{MachineConfig, Placement};

    #[test]
    fn cpu_copy_moves_data_and_charges_both_sides() {
        let mut m = Machine::new(MachineConfig::origin2000(2).scaled_down(16));
        let a = m.alloc(256, Placement::Node(0), "a");
        let b = m.alloc(256, Placement::Node(0), "b");
        for i in 0..256 {
            m.raw_mut(a)[i] = i as u32;
        }
        cpu_copy(&mut m, 0, a, 64, b, 0, 128, 1.0);
        assert_eq!(m.raw(b)[0], 64);
        assert_eq!(m.raw(b)[127], 191);
        let brk = m.breakdown(0);
        assert!(brk.busy > 0.0);
        assert!(brk.lmem > 0.0);
    }

    #[test]
    fn spmd_runs_all_pes_in_order() {
        let mut m = Machine::new(MachineConfig::origin2000(8));
        let mut order = Vec::new();
        spmd(&mut m, |_, pe| order.push(pe));
        assert_eq!(order, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn spin_charges_sync() {
        let mut m = Machine::new(MachineConfig::origin2000(2));
        spin(&mut m, 0, 123.0);
        assert_eq!(m.breakdown(0).sync, 123.0);
    }
}

#[cfg(test)]
mod fixed_helper_tests {
    use super::*;
    use ccsort_machine::{MachineConfig, Placement};

    fn scaled_machine() -> Machine {
        Machine::new(MachineConfig::origin2000(2).scaled_down(16))
    }

    #[test]
    fn read_fixed_returns_full_data_but_charges_prefix() {
        let mut m = scaled_machine();
        let a = m.alloc(512, Placement::Node(0), "a");
        for i in 0..512 {
            m.raw_mut(a)[i] = i as u32;
        }
        let mut out = vec![0u32; 512];
        read_fixed(&mut m, 0, a, 0, &mut out);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i as u32));
        let fixed_time = m.now(0);
        m.read_run(1, a, 0, &mut out);
        let full_time = m.now(1);
        assert!(fixed_time < full_time, "fixed read ({fixed_time}) must charge less than full ({full_time})");
    }

    #[test]
    fn write_fixed_roundtrip() {
        let mut m = scaled_machine();
        let a = m.alloc(512, Placement::Node(0), "a");
        let src: Vec<u32> = (0..512).map(|i| i * 3).collect();
        write_fixed(&mut m, 0, a, 0, &src);
        assert_eq!(m.raw(a), &src[..]);
    }

    #[test]
    fn cpu_copy_fixed_moves_everything() {
        let mut m = scaled_machine();
        let a = m.alloc(300, Placement::Node(0), "a");
        let b = m.alloc(300, Placement::Node(0), "b");
        for i in 0..300 {
            m.raw_mut(a)[i] = 1000 + i as u32;
        }
        cpu_copy_fixed(&mut m, 0, a, 10, b, 20, 200, 1.0);
        assert_eq!(m.raw(b)[20], 1010);
        assert_eq!(m.raw(b)[219], 1209);
        assert!(m.now(0) > 0.0);
    }
}
