//! The eight key-initialisation methods of Section 3.3.
//!
//! `gauss`, `random`, `zero`, `bucket` and `stagger` come from the
//! literature (SPLASH-2 / NAS IS, Sohn & Kodama, Helman et al.); `half`,
//! `remote` and `local` were designed by the paper's authors to exercise
//! specific communication behaviour:
//!
//! * `half` — Gauss restricted to even keys: halves the number of radix-sort
//!   messages while keeping the data volume fixed.
//! * `remote` — maximises inter-process key movement: every key moves to
//!   another process in every radix pass (and exhibits high spatial locality
//!   in the local permutation, the paper's surprising 256M finding).
//! * `local` — no remote key movement at all: a process's keys stay with it
//!   in every pass.
//!
//! Keys are unsigned 31-bit integers (`MAX = 2^31`), matching the paper.
//! `generate` returns a vector whose slice `[i*n/p, (i+1)*n/p)` holds the
//! keys initially assigned to process `i`. All generators are seeded and
//! fully deterministic.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::common::part_range;

/// Exclusive upper bound on key values: 2^31.
pub const MAX_KEY: u64 = 1 << 31;
/// Number of significant key bits.
pub const KEY_BITS: u32 = 31;

/// Key distribution, Section 3.3 of the paper.
///
/// `Ord` so distributions can key deterministic `BTreeMap` memo caches
/// (`nondeterministic_iteration` lint).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Dist {
    /// NAS-IS style: each key the average of four consecutive values of
    /// `x_{k+1} = 513 x_k mod 2^46`, `x_0 = 314159265`.
    Gauss,
    /// Uniform pseudo-random in `[0, 2^31)`.
    Random,
    /// `Random`, but every tenth key is zero.
    Zero,
    /// Each process's partition split into `p` blocks; block `j` uniform in
    /// `[j*MAX/p, (j+1)*MAX/p)`.
    Bucket,
    /// Process `i` draws from key window `[w MAX/p, (w+1) MAX/p)` where
    /// `w = stagger_window(p, i)` — a permutation of the `p` windows for
    /// every `p` (see [`stagger_window`]), so no two processes collide and
    /// no window degenerates.
    Stagger,
    /// Gauss restricted to even values.
    Half,
    /// Maximal communication: alternating radix digits move keys away from
    /// and back to their home process (needs the radix size `r`).
    Remote,
    /// Zero communication: every radix digit keeps a key on its process.
    Local,
}

impl Dist {
    /// All eight methods, in the order of the paper's Figure 5.
    pub const ALL: [Dist; 8] = [
        Dist::Gauss,
        Dist::Random,
        Dist::Zero,
        Dist::Bucket,
        Dist::Stagger,
        Dist::Remote,
        Dist::Half,
        Dist::Local,
    ];

    /// Lower-case name used by the benchmark harness.
    pub fn name(&self) -> &'static str {
        match self {
            Dist::Gauss => "gauss",
            Dist::Random => "random",
            Dist::Zero => "zero",
            Dist::Bucket => "bucket",
            Dist::Stagger => "stagger",
            Dist::Half => "half",
            Dist::Remote => "remote",
            Dist::Local => "local",
        }
    }

    /// Parse a name as produced by [`Dist::name`].
    pub fn parse(s: &str) -> Option<Dist> {
        Dist::ALL.iter().copied().find(|d| d.name() == s)
    }
}

/// The NAS recurrence used by Gauss/Half.
struct NasRng {
    x: u64,
}

impl NasRng {
    const A: u64 = 513;
    const MOD_MASK: u64 = (1 << 46) - 1;

    fn new() -> Self {
        NasRng { x: 314159265 }
    }

    fn next_raw(&mut self) -> u64 {
        self.x = self.x.wrapping_mul(Self::A) & Self::MOD_MASK;
        self.x
    }

    /// One Gauss key: average of four consecutive raws, scaled to 31 bits.
    fn next_key(&mut self) -> u32 {
        let sum = self.next_raw() + self.next_raw() + self.next_raw() + self.next_raw();
        ((sum / 4) >> 15) as u32
    }
}

/// Key window drawn by process `i` under [`Dist::Stagger`]: a permutation
/// of `0..p` for every `p`.
///
/// Even `p` uses the paper's mapping — the first half of the processes take
/// the odd windows (`2i+1`), the second half the even ones (`2i-p`). For odd
/// `p` that formula collides (with `p=3`, processes 0 and 2 both land on
/// window 1), so odd `p` uses `(2i+1) mod p` instead, which cycles through
/// all `p` windows exactly when `p` is odd.
pub fn stagger_window(p: usize, i: usize) -> usize {
    debug_assert!(i < p);
    if p % 2 == 1 {
        (2 * i + 1) % p
    } else if 2 * i < p {
        2 * i + 1
    } else {
        2 * i - p
    }
}

/// Generate `n` keys for `p` processes with radix size `r` (only `Remote`
/// and `Local` depend on `r`) and the given seed (`Gauss`/`Half` are fully
/// defined by the paper's recurrence and ignore it).
///
/// Process `i`'s keys occupy `part_range(n, p, i)` — the same partition the
/// sorting programs use — so every slot is written even when `p ∤ n` (the
/// last processes absorb the remainder instead of leaving a zero-filled
/// tail).
pub fn generate(dist: Dist, n: usize, p: usize, r: u32, seed: u64) -> Vec<u32> {
    assert!(p >= 1 && n >= p, "need at least one key per process");
    assert!((1..=16).contains(&r), "radix size out of range");
    let mut keys = vec![0u32; n];
    match dist {
        Dist::Gauss => {
            let mut g = NasRng::new();
            for k in keys.iter_mut() {
                *k = g.next_key();
            }
        }
        Dist::Half => {
            let mut g = NasRng::new();
            for k in keys.iter_mut() {
                *k = g.next_key() & !1;
            }
        }
        Dist::Random => {
            let mut rng = StdRng::seed_from_u64(seed);
            for k in keys.iter_mut() {
                *k = rng.random_range(0..MAX_KEY) as u32;
            }
        }
        Dist::Zero => {
            let mut rng = StdRng::seed_from_u64(seed);
            for (i, k) in keys.iter_mut().enumerate() {
                *k = if i % 10 == 9 { 0 } else { rng.random_range(0..MAX_KEY) as u32 };
            }
        }
        Dist::Bucket => {
            let mut rng = StdRng::seed_from_u64(seed);
            for i in 0..p {
                let range = part_range(n, p, i);
                let block = range.len().div_ceil(p).max(1);
                for (idx, slot) in range.enumerate() {
                    let j = (idx / block).min(p - 1) as u64;
                    let lo = j * MAX_KEY / p as u64;
                    let hi = (j + 1) * MAX_KEY / p as u64;
                    keys[slot] = rng.random_range(lo..hi.max(lo + 1)) as u32;
                }
            }
        }
        Dist::Stagger => {
            let mut rng = StdRng::seed_from_u64(seed);
            for i in 0..p {
                let w = stagger_window(p, i) as u64;
                let lo = w * MAX_KEY / p as u64;
                let hi = (w + 1) * MAX_KEY / p as u64;
                for slot in part_range(n, p, i) {
                    keys[slot] = rng.random_range(lo..hi) as u32;
                }
            }
        }
        Dist::Remote => {
            let mut rng = StdRng::seed_from_u64(seed);
            let radix = 1u64 << r;
            for i in 0..p {
                let lo = (i as u64) * radix / p as u64;
                let hi = (((i + 1) as u64) * radix / p as u64).max(lo + 1);
                let in_len = hi - lo;
                let out_len = radix - in_len;
                for slot in part_range(n, p, i) {
                    // First digit: uniform over [0, 2^r) \ [lo, hi).
                    let first = if out_len == 0 {
                        // Degenerate (p == 1): nowhere else to go.
                        rng.random_range(0..radix)
                    } else {
                        let v = rng.random_range(0..out_len);
                        if v < lo {
                            v
                        } else {
                            v + in_len
                        }
                    };
                    // Second digit: uniform over [lo, hi).
                    let second = rng.random_range(lo..hi);
                    // Duplicate the pair upward: digits 0,2,4.. = first,
                    // digits 1,3,5.. = second.
                    let mut key: u64 = 0;
                    let mut shift = 0u32;
                    let mut odd = false;
                    while shift < KEY_BITS {
                        let d = if odd { second } else { first };
                        key |= d << shift;
                        shift += r;
                        odd = !odd;
                    }
                    keys[slot] = (key & (MAX_KEY - 1)) as u32;
                }
            }
        }
        Dist::Local => {
            let mut rng = StdRng::seed_from_u64(seed);
            let radix = 1u64 << r;
            for i in 0..p {
                let lo = (i as u64) * radix / p as u64;
                let hi = (((i + 1) as u64) * radix / p as u64).max(lo + 1);
                for slot in part_range(n, p, i) {
                    let v = rng.random_range(lo..hi);
                    // Duplicate the digit only into *full* r-bit positions:
                    // the top partial digit stays zero, so it too keeps the
                    // key on its process (digit 0's destination is the
                    // stable order, which is exactly the initial layout).
                    let mut key: u64 = 0;
                    let mut shift = 0u32;
                    while shift + r <= KEY_BITS {
                        key |= v << shift;
                        shift += r;
                    }
                    keys[slot] = (key & (MAX_KEY - 1)) as u32;
                }
            }
        }
    }
    keys
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: usize = 1 << 12;
    const P: usize = 8;
    const R: u32 = 8;

    #[test]
    fn all_keys_within_31_bits() {
        for d in Dist::ALL {
            let keys = generate(d, N, P, R, 42);
            assert_eq!(keys.len(), N);
            assert!(keys.iter().all(|&k| (k as u64) < MAX_KEY), "{d:?}");
        }
    }

    #[test]
    fn gauss_matches_nas_recurrence_prefix() {
        // First raw values of the recurrence, computed independently.
        let mut x: u64 = 314159265;
        let mut raws = Vec::new();
        for _ in 0..8 {
            x = (x * 513) & ((1 << 46) - 1);
            raws.push(x);
        }
        let expect0 = (((raws[0] + raws[1] + raws[2] + raws[3]) / 4) >> 15) as u32;
        let expect1 = (((raws[4] + raws[5] + raws[6] + raws[7]) / 4) >> 15) as u32;
        let keys = generate(Dist::Gauss, 4, 1, R, 0);
        assert_eq!(keys[0], expect0);
        assert_eq!(keys[1], expect1);
    }

    #[test]
    fn gauss_is_bell_shaped() {
        // Average of four uniforms concentrates around MAX/2: the middle
        // half of the range should hold the large majority of keys.
        let keys = generate(Dist::Gauss, 1 << 14, 1, R, 0);
        let mid = keys
            .iter()
            .filter(|&&k| (k as u64) > MAX_KEY / 4 && (k as u64) < 3 * MAX_KEY / 4)
            .count();
        assert!(mid as f64 > 0.85 * keys.len() as f64, "mid fraction {}", mid as f64 / keys.len() as f64);
    }

    #[test]
    fn zero_has_every_tenth_zero() {
        let keys = generate(Dist::Zero, 100, 4, R, 7);
        let zeros = keys.iter().filter(|&&k| k == 0).count();
        assert!(zeros >= 10, "{zeros}");
        assert_eq!(keys[9], 0);
        assert_eq!(keys[19], 0);
    }

    #[test]
    fn half_keys_are_even() {
        let keys = generate(Dist::Half, N, P, R, 0);
        assert!(keys.iter().all(|&k| k % 2 == 0));
        // And otherwise Gauss-like: same keys with the low bit cleared.
        let gauss = generate(Dist::Gauss, N, P, R, 0);
        assert!(keys.iter().zip(&gauss).all(|(&h, &g)| h == g & !1));
    }

    #[test]
    fn bucket_blocks_are_range_restricted() {
        let keys = generate(Dist::Bucket, N, P, R, 3);
        let per = N / P;
        let block = per.div_ceil(P);
        for i in 0..P {
            for j in 0..P {
                let lo = (j as u64) * MAX_KEY / P as u64;
                let hi = ((j + 1) as u64) * MAX_KEY / P as u64;
                for idx in 0..block {
                    let slot = i * per + j * block + idx;
                    if slot >= (i + 1) * per {
                        break;
                    }
                    let k = keys[slot] as u64;
                    assert!(k >= lo && k < hi, "proc {i} block {j} key {k}");
                }
            }
        }
    }

    #[test]
    fn stagger_ranges_match_formula() {
        let keys = generate(Dist::Stagger, N, P, R, 5);
        let per = N / P;
        for i in 0..P {
            let (lo_mul, hi_mul) =
                if i < P / 2 { (2 * i as u64 + 1, 2 * i as u64 + 2) } else { ((2 * i - P) as u64, (2 * i - P + 1) as u64) };
            let lo = lo_mul * MAX_KEY / P as u64;
            let hi = (hi_mul * MAX_KEY / P as u64).min(MAX_KEY);
            for slot in i * per..(i + 1) * per {
                let k = keys[slot] as u64;
                assert!(k >= lo && k < hi, "proc {i} key {k} not in [{lo},{hi})");
            }
        }
    }

    #[test]
    fn remote_first_digit_leaves_home_second_returns() {
        let keys = generate(Dist::Remote, N, P, R, 11);
        let per = N / P;
        let radix = 1u64 << R;
        for i in 0..P {
            let lo = (i as u64) * radix / P as u64;
            let hi = ((i + 1) as u64) * radix / P as u64;
            for slot in i * per..(i + 1) * per {
                let k = keys[slot] as u64;
                let d0 = k & (radix - 1);
                let d1 = (k >> R) & (radix - 1);
                assert!(!(d0 >= lo && d0 < hi), "first digit must leave process {i}");
                assert!(d1 >= lo && d1 < hi, "second digit must return to process {i}");
                // Alternation continues upward: bits 16..24 repeat digit 0.
                let d2 = (k >> (2 * R)) & (radix - 1);
                assert_eq!(d2, d0, "third digit repeats the first");
            }
        }
    }

    #[test]
    fn local_keys_never_move() {
        let keys = generate(Dist::Local, N, P, R, 13);
        let per = N / P;
        let radix = 1u64 << R;
        for i in 0..P {
            let lo = (i as u64) * radix / P as u64;
            let hi = ((i + 1) as u64) * radix / P as u64;
            for slot in i * per..(i + 1) * per {
                let k = keys[slot] as u64;
                // Every digit of the key stays in process i's digit range.
                let mut shift = 0;
                while shift + R <= KEY_BITS {
                    let d = (k >> shift) & (radix - 1);
                    assert!(d >= lo && d < hi, "proc {i} digit at {shift} = {d}");
                    shift += R;
                }
            }
        }
    }

    #[test]
    fn stagger_windows_form_a_permutation_for_every_p() {
        for p in 1..=33 {
            let mut windows: Vec<usize> = (0..p).map(|i| stagger_window(p, i)).collect();
            windows.sort_unstable();
            assert_eq!(windows, (0..p).collect::<Vec<_>>(), "p={p}");
        }
    }

    #[test]
    fn stagger_odd_p_keys_stay_in_disjoint_windows() {
        for &(n, p) in &[(1usize << 10, 3usize), (64, 7), (1 << 10, 7), (100, 5)] {
            let keys = generate(Dist::Stagger, n, p, 6, 0);
            for i in 0..p {
                let w = stagger_window(p, i) as u64;
                let lo = w * MAX_KEY / p as u64;
                let hi = (w + 1) * MAX_KEY / p as u64;
                for slot in part_range(n, p, i) {
                    let k = keys[slot] as u64;
                    assert!(
                        k >= lo && k < hi,
                        "n={n} p={p} proc {i} slot {slot} key {k} not in [{lo},{hi})"
                    );
                }
            }
        }
    }

    #[test]
    fn remainder_slots_are_covered_when_p_does_not_divide_n() {
        // n=1024, p=3: the old `per = n/p` truncation left slot 1023
        // zero-filled. Every partitioned generator must now write it with a
        // value from the last process's assigned window.
        let n = 1024;
        let p = 3;
        let keys = generate(Dist::Stagger, n, p, 6, 0);
        let w = stagger_window(p, p - 1) as u64; // process 2 -> window 2
        assert_eq!(w, 2);
        let k = keys[n - 1] as u64;
        assert!(k >= w * MAX_KEY / 3 && k < (w + 1) * MAX_KEY / 3, "tail key {k}");

        // Local: the tail slot's every full digit must be in process 2's
        // digit range, which excludes digit 0 — so the key cannot be zero.
        let r = 6;
        let radix = 1u64 << r;
        let keys = generate(Dist::Local, n, p, r, 0);
        let lo = (p as u64 - 1) * radix / p as u64;
        let k = keys[n - 1] as u64;
        assert!(k & (radix - 1) >= lo, "local tail digit {} below {lo}", k & (radix - 1));

        // Remote: the tail slot's second digit must be in process 2's range.
        let keys = generate(Dist::Remote, n, p, r, 0);
        let d1 = (keys[n - 1] as u64 >> r) & (radix - 1);
        assert!(d1 >= lo, "remote tail second digit {d1} below {lo}");
    }

    #[test]
    fn deterministic_per_seed() {
        for d in Dist::ALL {
            assert_eq!(generate(d, 1024, 4, R, 9), generate(d, 1024, 4, R, 9), "{d:?}");
        }
        // Seed changes the rand-based distributions.
        assert_ne!(generate(Dist::Random, 1024, 4, R, 1), generate(Dist::Random, 1024, 4, R, 2));
    }

    #[test]
    fn name_roundtrip() {
        for d in Dist::ALL {
            assert_eq!(Dist::parse(d.name()), Some(d));
        }
        assert_eq!(Dist::parse("nope"), None);
    }
}

#[cfg(test)]
mod statistical_tests {
    use super::*;

    const N: usize = 1 << 15;
    const P: usize = 16;

    /// Chi-squared-flavoured uniformity check on the low byte.
    fn low_byte_is_roughly_uniform(keys: &[u32]) -> bool {
        let mut counts = [0usize; 256];
        for &k in keys {
            counts[(k & 255) as usize] += 1;
        }
        let expect = keys.len() as f64 / 256.0;
        counts.iter().all(|&c| (c as f64) > expect * 0.5 && (c as f64) < expect * 1.5)
    }

    #[test]
    fn random_low_bytes_uniform() {
        assert!(low_byte_is_roughly_uniform(&generate(Dist::Random, N, P, 8, 5)));
    }

    #[test]
    fn gauss_low_bytes_uniform_but_top_concentrated() {
        let keys = generate(Dist::Gauss, N, P, 8, 0);
        assert!(low_byte_is_roughly_uniform(&keys));
        // Top 7 bits: bell-shaped, so the modal bucket holds far more than
        // uniform share.
        let mut top = [0usize; 128];
        for &k in &keys {
            top[(k >> 24) as usize] += 1;
        }
        let max = *top.iter().max().unwrap() as f64;
        assert!(max > 1.8 * (N as f64 / 128.0), "gauss top digit must concentrate: {max}");
    }

    #[test]
    fn bucket_is_globally_uniform_but_locally_sorted_by_block() {
        let keys = generate(Dist::Bucket, N, P, 8, 6);
        // Each process's partition covers the whole range in p ascending blocks.
        let per = N / P;
        let part = &keys[0..per];
        let block = per.div_ceil(P);
        for j in 1..P {
            let prev_max = part[(j - 1) * block..j * block].iter().max().unwrap();
            let cur_min = part[j * block..((j + 1) * block).min(per)].iter().min().unwrap();
            assert!(prev_max <= cur_min || (*prev_max as u64) < MAX_KEY / P as u64 * (j as u64 + 1));
        }
    }

    #[test]
    fn stagger_partitions_do_not_overlap_much() {
        let keys = generate(Dist::Stagger, N, P, 8, 7);
        let per = N / P;
        // Each partition's span is at most MAX/P wide.
        for i in 0..P {
            let part = &keys[i * per..(i + 1) * per];
            let span = *part.iter().max().unwrap() as u64 - *part.iter().min().unwrap() as u64;
            assert!(span <= MAX_KEY / P as u64, "partition {i} span {span}");
        }
    }

    #[test]
    fn zero_fraction_is_ten_percent() {
        let keys = generate(Dist::Zero, N, P, 8, 8);
        let zeros = keys.iter().filter(|&&k| k == 0).count();
        let frac = zeros as f64 / N as f64;
        assert!((0.095..0.115).contains(&frac), "zero fraction {frac}");
    }

    #[test]
    fn remote_vs_local_communication_volume() {
        // Count keys whose first-pass destination process differs from its
        // source: remote -> all of them; local -> none.
        let r = 8;
        let count_movers = |dist: Dist| {
            let keys = generate(dist, N, P, r, 9);
            let per = N / P;
            // Destination process of a key is determined by its digit rank;
            // with per-process digit ranges, digit/(2^r/P) approximates it.
            let digits_per_proc = (1usize << r) / P;
            keys.iter()
                .enumerate()
                .filter(|(i, k)| {
                    let src = i / per;
                    let dst = (**k as usize & ((1 << r) - 1)) / digits_per_proc;
                    src != dst.min(P - 1)
                })
                .count()
        };
        assert_eq!(count_movers(Dist::Local), 0);
        assert_eq!(count_movers(Dist::Remote), N);
    }
}
