//! One-call experiment runner: configure, simulate, verify, report.
//!
//! Every experiment in the paper's evaluation section reduces to "run one
//! (algorithm, model) pair on one (n, p, r, distribution) point and read
//! the clock / the per-processor breakdown". This module provides exactly
//! that, with output verification built in: an experiment whose output is
//! not a sorted permutation of its input reports `verified == false` and
//! the harness refuses to use it.

use ccsort_machine::{
    DirectoryMode, EventCounters, InterconnectKind, Machine, MachineConfig, Placement,
    ProtocolMode, TimeBreakdown, MAX_PROCS,
};
use ccsort_models::comm::{CcsasComm, Communicator, MpiComm, Permute, ShmemComm};
use ccsort_models::MpiMode;
use serde::{Deserialize, Serialize};

use crate::dist::{generate, Dist, KEY_BITS};
use crate::sample::SamplingStrategy;
use crate::{costs, radix, sample, seq};

/// Algorithm × programming-model combinations under study.
///
/// `Ord` so the variants can key deterministic `BTreeMap` memo caches
/// (`nondeterministic_iteration` lint).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Algorithm {
    RadixCcsas,
    RadixCcsasNew,
    RadixMpiStaged,
    RadixMpiDirect,
    RadixMpiCoalesced,
    RadixShmem,
    RadixShmemPut,
    SampleCcsas,
    SampleMpiStaged,
    SampleMpiDirect,
    SampleShmem,
}

impl Algorithm {
    pub const ALL: [Algorithm; 11] = [
        Algorithm::RadixCcsas,
        Algorithm::RadixCcsasNew,
        Algorithm::RadixMpiStaged,
        Algorithm::RadixMpiDirect,
        Algorithm::RadixMpiCoalesced,
        Algorithm::RadixShmem,
        Algorithm::RadixShmemPut,
        Algorithm::SampleCcsas,
        Algorithm::SampleMpiStaged,
        Algorithm::SampleMpiDirect,
        Algorithm::SampleShmem,
    ];

    /// Kebab-case name used by the `repro` harness.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::RadixCcsas => "radix-ccsas",
            Algorithm::RadixCcsasNew => "radix-ccsas-new",
            Algorithm::RadixMpiStaged => "radix-mpi-sgi",
            Algorithm::RadixMpiDirect => "radix-mpi-new",
            Algorithm::RadixMpiCoalesced => "radix-mpi-coalesced",
            Algorithm::RadixShmem => "radix-shmem",
            Algorithm::RadixShmemPut => "radix-shmem-put",
            Algorithm::SampleCcsas => "sample-ccsas",
            Algorithm::SampleMpiStaged => "sample-mpi-sgi",
            Algorithm::SampleMpiDirect => "sample-mpi-new",
            Algorithm::SampleShmem => "sample-shmem",
        }
    }

    pub fn parse(s: &str) -> Result<Algorithm, String> {
        Algorithm::ALL.iter().copied().find(|a| a.name() == s).ok_or_else(|| {
            let names: Vec<&str> = Algorithm::ALL.iter().map(|a| a.name()).collect();
            format!("unknown algorithm {s:?}; valid names: {}", names.join(", "))
        })
    }

    /// Is this a radix-sort variant (as opposed to sample sort)?
    pub fn is_radix(&self) -> bool {
        matches!(
            self,
            Algorithm::RadixCcsas
                | Algorithm::RadixCcsasNew
                | Algorithm::RadixMpiStaged
                | Algorithm::RadixMpiDirect
                | Algorithm::RadixMpiCoalesced
                | Algorithm::RadixShmem
                | Algorithm::RadixShmemPut
        )
    }

    /// The transport this algorithm instantiates its skeleton with — the
    /// (skeleton, communicator) pair IS the algorithm. Radix and sample
    /// skeletons each accept any of these; the table in
    /// [`crate::radix`] documents which pairing reproduces which program
    /// of the paper.
    pub fn communicator(&self) -> Box<dyn Communicator> {
        let costs = costs::comm_costs();
        match self {
            Algorithm::RadixCcsas => Box::new(CcsasComm::new(Permute::DirectScatter, costs)),
            Algorithm::RadixCcsasNew => Box::new(CcsasComm::new(Permute::ContiguousCopy, costs)),
            Algorithm::RadixMpiStaged => {
                Box::new(MpiComm::new(MpiMode::Staged, Permute::ChunkMessages, costs))
            }
            Algorithm::RadixMpiDirect => {
                Box::new(MpiComm::new(MpiMode::Direct, Permute::ChunkMessages, costs))
            }
            Algorithm::RadixMpiCoalesced => {
                Box::new(MpiComm::new(MpiMode::Direct, Permute::CoalescedMessages, costs))
            }
            Algorithm::RadixShmem => Box::new(ShmemComm::new(Permute::ReceiverGet, costs)),
            Algorithm::RadixShmemPut => Box::new(ShmemComm::new(Permute::SenderPut, costs)),
            Algorithm::SampleCcsas => sample::Model::Ccsas.communicator(),
            Algorithm::SampleMpiStaged => sample::Model::Mpi(MpiMode::Staged).communicator(),
            Algorithm::SampleMpiDirect => sample::Model::Mpi(MpiMode::Direct).communicator(),
            Algorithm::SampleShmem => sample::Model::Shmem.communicator(),
        }
    }
}

/// Full description of one experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExpConfig {
    pub algorithm: Algorithm,
    /// Number of keys actually simulated.
    pub n: usize,
    /// Number of processors.
    pub p: usize,
    /// Radix size in bits.
    pub radix_bits: u32,
    pub dist: Dist,
    pub seed: u64,
    /// Machine scale denominator (see `MachineConfig::scaled_down`); the
    /// paper-labelled key count is `n * scale_denom`.
    pub scale_denom: usize,
    /// Page-size multiplier: the paper runs its largest (256M-key) configs
    /// with 256 KB pages instead of 64 KB for best performance.
    pub page_mult: usize,
    /// Sampling strategy for the sample-sort variants (ignored by radix).
    pub sampling: SamplingStrategy,
    /// Warm the caches and TLBs with an untimed streaming pass over the key
    /// arrays before measuring (the paper times sorting after
    /// initialisation, so its first-pass reads are warm-ish; cold is the
    /// conservative default here).
    pub warm_caches: bool,
    /// Fault injection for the race-detector tests: skip the happens-before
    /// edge of the `k`-th global barrier (1-based) of the audited run. The
    /// barrier's timing is untouched — output and measurements are identical
    /// — but the detector sees the missing edge, exactly as if the program
    /// had forgotten that barrier. Only honoured by
    /// [`run_experiment_audited`] (the plain path has no detector).
    #[serde(default)]
    pub inject_missing_barrier: Option<usize>,
    /// The simulator's streamed-run fast path (`MachineConfig::fast_path`).
    /// On by default; turning it off forces the per-line reference walk —
    /// results are bit-identical either way (the equivalence tests assert
    /// it), only wall-clock differs.
    #[serde(default = "default_true")]
    pub fast_path: bool,
    /// Run the happens-before race detector without the rest of the audit
    /// machinery (section-boundary audits). [`run_experiment_audited`]
    /// implies it; this flag exists so benchmarks can measure the
    /// detector's cost in isolation.
    #[serde(default)]
    pub race_detector: bool,
    /// Sharer-set representation of the coherence directory
    /// ([`ccsort_machine::DirectoryMode`]). Full-map by default; the
    /// limited-pointer and coarse-vector modes exist for the directory
    /// scaling studies at large p. Sorted output is bit-identical across
    /// modes — only timing and protocol-event counts change.
    #[serde(default)]
    pub directory_mode: DirectoryMode,
    /// Interconnect wiring between routers
    /// ([`ccsort_machine::InterconnectKind`]). Hypercube by default — the
    /// machine the paper measures; the mesh and fat-tree alternatives exist
    /// for the topology ablations. Sorted output is bit-identical across
    /// kinds — only hop counts, and hence timing, change.
    #[serde(default)]
    pub interconnect: InterconnectKind,
    /// Coherence protocol for writes to shared lines
    /// ([`ccsort_machine::ProtocolMode`]). MESI-style invalidation by
    /// default; the Dragon-style update mode exists for the
    /// invalidate-vs-update ablation. Sorted output is bit-identical across
    /// modes — only protocol events and timing change.
    #[serde(default)]
    pub protocol: ProtocolMode,
}

fn default_true() -> bool {
    true
}

impl ExpConfig {
    pub fn new(algorithm: Algorithm, n: usize, p: usize) -> Self {
        ExpConfig {
            algorithm,
            n,
            p,
            radix_bits: 8,
            dist: Dist::Gauss,
            seed: 271828,
            scale_denom: 16,
            page_mult: 1,
            sampling: SamplingStrategy::default(),
            warm_caches: false,
            inject_missing_barrier: None,
            fast_path: default_true(),
            race_detector: false,
            directory_mode: DirectoryMode::FullMap,
            interconnect: InterconnectKind::Hypercube,
            protocol: ProtocolMode::Invalidate,
        }
    }

    pub fn radix_bits(mut self, r: u32) -> Self {
        self.radix_bits = r;
        self
    }

    pub fn dist(mut self, d: Dist) -> Self {
        self.dist = d;
        self
    }

    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    pub fn scale(mut self, denom: usize) -> Self {
        self.scale_denom = denom;
        self
    }

    pub fn page_mult(mut self, mult: usize) -> Self {
        self.page_mult = mult;
        self
    }

    pub fn sampling(mut self, s: SamplingStrategy) -> Self {
        self.sampling = s;
        self
    }

    pub fn warm_caches(mut self, warm: bool) -> Self {
        self.warm_caches = warm;
        self
    }

    pub fn inject_missing_barrier(mut self, nth: usize) -> Self {
        self.inject_missing_barrier = Some(nth);
        self
    }

    pub fn fast_path(mut self, on: bool) -> Self {
        self.fast_path = on;
        self
    }

    pub fn race_detector(mut self, on: bool) -> Self {
        self.race_detector = on;
        self
    }

    pub fn directory_mode(mut self, mode: DirectoryMode) -> Self {
        self.directory_mode = mode;
        self
    }

    pub fn interconnect(mut self, kind: InterconnectKind) -> Self {
        self.interconnect = kind;
        self
    }

    pub fn protocol(mut self, proto: ProtocolMode) -> Self {
        self.protocol = proto;
        self
    }

    /// Check the configuration against the machine's and the algorithms'
    /// hard limits before any simulation state is built. Pure host-side
    /// arithmetic: a valid config runs byte-identically with or without the
    /// check.
    pub fn validate(&self) -> Result<(), String> {
        if self.p == 0 {
            return Err("p = 0: need at least one processor".to_string());
        }
        if self.p > MAX_PROCS {
            return Err(format!(
                "p = {}: at most {MAX_PROCS} processors are supported (the \
                 directory scales past 64 through its sharer-set \
                 representations; see DirectoryMode)",
                self.p
            ));
        }
        // Delegate the per-mode directory, interconnect and protocol
        // constraints (pointer width, group size vs p, fat-tree arity) to
        // the machine config's own validation.
        MachineConfig::origin2000(self.p)
            .with_directory_mode(self.directory_mode)
            .with_interconnect(self.interconnect)
            .with_protocol(self.protocol)
            .validate()?;
        if self.radix_bits == 0 {
            return Err("radix_bits = 0: each pass must consume at least one bit".to_string());
        }
        if self.radix_bits > KEY_BITS {
            return Err(format!(
                "radix_bits = {} exceeds the {KEY_BITS}-bit keys; one pass \
                 would index a histogram larger than the key space",
                self.radix_bits
            ));
        }
        if self.radix_bits > 24 {
            return Err(format!(
                "radix_bits = {}: 2^{} histogram bins per processor would \
                 dwarf the keys being sorted; the harness caps r at 24",
                self.radix_bits, self.radix_bits
            ));
        }
        Ok(())
    }

    fn machine_config(&self) -> MachineConfig {
        let mut cfg = MachineConfig::origin2000(self.p).scaled_down(self.scale_denom);
        cfg.page_size *= self.page_mult.max(1);
        cfg.fast_path = self.fast_path;
        cfg.race_detector = self.race_detector;
        cfg.directory_mode = self.directory_mode;
        cfg.interconnect = self.interconnect;
        cfg.protocol = self.protocol;
        cfg
    }
}

/// Everything measured in one experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExpResult {
    pub algorithm: Algorithm,
    pub n: usize,
    pub p: usize,
    pub radix_bits: u32,
    pub dist: Dist,
    /// Parallel execution time: the slowest processor's clock, ns.
    pub parallel_ns: f64,
    /// Per-processor BUSY/LMEM/RMEM/SYNC.
    pub per_pe: Vec<TimeBreakdown>,
    /// Per-processor protocol/event counters.
    pub events: Vec<EventCounters>,
    /// Output was a sorted permutation of the input.
    pub verified: bool,
    /// Per-program-phase mean per-processor breakdowns, in execution order
    /// (e.g. histogram / combine / permute / exchange for radix sort).
    pub sections: Vec<(String, TimeBreakdown)>,
}

impl ExpResult {
    /// Machine-wide sums of the per-processor breakdowns.
    pub fn total(&self) -> TimeBreakdown {
        let mut t = TimeBreakdown::default();
        for b in &self.per_pe {
            t.add(b);
        }
        t
    }

    /// Load imbalance: the slowest processor's non-SYNC time over the mean
    /// (1.0 = perfectly balanced). SYNC is excluded because barrier waiting
    /// is the *consequence* of imbalance, not work.
    pub fn imbalance(&self) -> f64 {
        let work: Vec<f64> = self.per_pe.iter().map(|b| b.busy + b.lmem + b.rmem).collect();
        let mean = work.iter().sum::<f64>() / work.len() as f64;
        if mean <= 0.0 {
            return 1.0;
        }
        work.iter().cloned().fold(0.0_f64, f64::max) / mean
    }

    /// Mean per-processor breakdown (the bars of Figures 4 and 8).
    pub fn mean_breakdown(&self) -> TimeBreakdown {
        let mut t = self.total();
        let k = self.per_pe.len() as f64;
        t.busy /= k;
        t.lmem /= k;
        t.rmem /= k;
        t.sync /= k;
        t
    }
}

/// Run one experiment: generate keys, simulate the chosen program, verify
/// the output.
pub fn run_experiment(cfg: &ExpConfig) -> ExpResult {
    execute(cfg, false).0
}

/// Like [`run_experiment`], but with the machine-invariant audit enabled:
/// [`ccsort_machine::Machine::audit`] runs at every program `section()`
/// boundary (panicking on protocol bugs mid-run) and once more after the
/// sort, and the happens-before race detector
/// ([`ccsort_machine::RaceDetector`]) checks every timed access against the
/// program's synchronization; the final audit's violations — including one
/// line per detected race class — are returned alongside the result. An
/// empty list means every coherence, time-accounting, capacity and
/// synchronization invariant held. Slower than [`run_experiment`] — meant
/// for the conformance tooling and tests, not timing sweeps.
pub fn run_experiment_audited(cfg: &ExpConfig) -> (ExpResult, Vec<String>) {
    execute(cfg, true)
}

fn execute(cfg: &ExpConfig, audit: bool) -> (ExpResult, Vec<String>) {
    if let Err(e) = cfg.validate() {
        panic!("invalid experiment config: {e}");
    }
    let mut m = Machine::new(cfg.machine_config());
    m.set_section_audit(audit);
    if audit {
        m.set_race_detector(true);
    }
    if audit {
        if let Some(nth) = cfg.inject_missing_barrier {
            m.inject_missing_barrier(nth);
        }
    }
    let n = cfg.n;
    let p = cfg.p;
    let r = cfg.radix_bits;
    let a = m.alloc(n, Placement::Partitioned { parts: p }, "keys0");
    let b = m.alloc(n, Placement::Partitioned { parts: p }, "keys1");
    let input = generate(cfg.dist, n, p, r, cfg.seed);
    m.raw_mut(a).copy_from_slice(&input);

    if cfg.warm_caches {
        // Each process streams over its own partition (the state
        // initialisation would leave behind), then statistics reset. The
        // barrier orders the warm-up reads before the sort for the race
        // detector (initialisation is sequential on the real machine too);
        // its time charges are zeroed by the reset, so measurements are
        // unchanged.
        for pe in 0..p {
            let range = crate::common::part_range(n, p, pe);
            let mut buf = vec![0u32; range.len()];
            m.read_run(pe, a, range.start, &mut buf);
        }
        m.barrier();
        m.reset_stats();
    }

    // Every algorithm is one of two skeletons instantiated with one
    // transport; the (skeleton, communicator) pairing replaces the old
    // one-match-arm-per-program dispatch.
    let mut comm = cfg.algorithm.communicator();
    let out = if cfg.algorithm.is_radix() {
        radix::sort(&mut m, comm.as_mut(), [a, b], n, r, KEY_BITS)
    } else {
        sample::sort_with_comm(&mut m, comm.as_mut(), [a, b], n, r, KEY_BITS, cfg.sampling)
    };

    let mut expect = input;
    expect.sort_unstable();
    let verified = m.raw(out) == &expect[..];
    let mut violations = if audit { m.audit() } else { Vec::new() };
    violations.extend(m.race_reports().iter().map(|race| race.to_string()));
    if m.race_suppressed() > 0 {
        violations.push(format!(
            "{} further racy access(es) in already-reported classes",
            m.race_suppressed()
        ));
    }

    let res = ExpResult {
        algorithm: cfg.algorithm,
        n,
        p,
        radix_bits: r,
        dist: cfg.dist,
        parallel_ns: m.parallel_time(),
        per_pe: (0..p).map(|pe| m.breakdown(pe)).collect(),
        events: (0..p).map(|pe| m.events(pe)).collect(),
        verified,
        sections: m.section_profile().into_iter().map(|(n, t)| (n.to_string(), t)).collect(),
    };
    (res, violations)
}

/// Run the sequential radix-sort baseline for speedup computations
/// (Table 1). Uses the same machine scaling as the parallel experiments.
pub fn run_sequential_baseline(
    n: usize,
    radix_bits: u32,
    dist: Dist,
    seed: u64,
    scale_denom: usize,
    page_mult: usize,
) -> seq::SeqResult {
    let input = generate(dist, n, 1, radix_bits, seed);
    let mut cfg = MachineConfig::origin2000(1).scaled_down(scale_denom);
    cfg.page_size *= page_mult.max(1);
    seq::run_on(cfg, &input, radix_bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_algorithm_verifies() {
        for alg in Algorithm::ALL {
            let cfg = ExpConfig::new(alg, 4096, 8).scale(64);
            let res = run_experiment(&cfg);
            assert!(res.verified, "{alg:?} failed verification");
            assert!(res.parallel_ns > 0.0);
            assert_eq!(res.per_pe.len(), 8);
        }
    }

    #[test]
    fn results_are_deterministic() {
        let cfg = ExpConfig::new(Algorithm::RadixShmem, 2048, 4).scale(64);
        let r1 = run_experiment(&cfg);
        let r2 = run_experiment(&cfg);
        assert_eq!(r1.parallel_ns, r2.parallel_ns);
        assert_eq!(r1.per_pe, r2.per_pe);
        assert_eq!(r1.events, r2.events);
    }

    #[test]
    fn name_roundtrip() {
        for alg in Algorithm::ALL {
            assert_eq!(Algorithm::parse(alg.name()), Ok(alg));
        }
        let err = Algorithm::parse("bogosort").unwrap_err();
        assert!(err.contains("bogosort"), "error should echo the bad name: {err}");
        // The error lists every valid spelling so a typo is self-correcting.
        for alg in Algorithm::ALL {
            assert!(err.contains(alg.name()), "error should list {}: {err}", alg.name());
        }
    }

    #[test]
    fn validate_rejects_zero_processors() {
        let cfg = ExpConfig::new(Algorithm::RadixShmem, 1024, 0);
        let err = cfg.validate().unwrap_err();
        assert!(err.contains("p = 0"), "{err}");
    }

    #[test]
    fn validate_rejects_too_many_processors() {
        // p = 65 is legal now that the directory scales past one u64 word...
        assert_eq!(ExpConfig::new(Algorithm::RadixShmem, 1024, 65).validate(), Ok(()));
        // ...but the MAX_PROCS cap still holds, and the error names p.
        let cfg = ExpConfig::new(Algorithm::RadixShmem, 1024, MAX_PROCS + 1);
        let err = cfg.validate().unwrap_err();
        assert!(err.contains(&format!("p = {}", MAX_PROCS + 1)), "{err}");
    }

    #[test]
    fn validate_checks_directory_mode_against_p() {
        let bad = ExpConfig::new(Algorithm::RadixCcsas, 1024, 4)
            .directory_mode(DirectoryMode::CoarseVector(8));
        assert!(bad.validate().unwrap_err().contains("coarse-vector"));
        let good = ExpConfig::new(Algorithm::RadixCcsas, 1024, 8)
            .directory_mode(DirectoryMode::CoarseVector(8));
        assert_eq!(good.validate(), Ok(()));
    }

    #[test]
    fn validate_checks_interconnect_and_protocol() {
        let bad = ExpConfig::new(Algorithm::RadixCcsas, 1024, 64)
            .interconnect(InterconnectKind::FatTree(1));
        let err = bad.validate().unwrap_err();
        assert!(err.contains("interconnect"), "error must name the field: {err}");
        for kind in
            [InterconnectKind::Hypercube, InterconnectKind::Mesh2D, InterconnectKind::FatTree(4)]
        {
            for proto in [ProtocolMode::Invalidate, ProtocolMode::DragonUpdate] {
                let good = ExpConfig::new(Algorithm::RadixCcsas, 1024, 64)
                    .interconnect(kind)
                    .protocol(proto);
                assert_eq!(good.validate(), Ok(()), "{kind} {proto}");
            }
        }
    }

    #[test]
    fn validate_rejects_zero_radix_bits() {
        let cfg = ExpConfig::new(Algorithm::RadixCcsas, 1024, 4).radix_bits(0);
        let err = cfg.validate().unwrap_err();
        assert!(err.contains("radix_bits = 0"), "{err}");
    }

    #[test]
    fn validate_rejects_radix_wider_than_keys() {
        let cfg = ExpConfig::new(Algorithm::RadixCcsas, 1024, 4).radix_bits(33);
        let err = cfg.validate().unwrap_err();
        assert!(err.contains("33"), "{err}");
        // ... and r over the harness cap, even though it fits in the key.
        let cfg = ExpConfig::new(Algorithm::RadixCcsas, 1024, 4).radix_bits(25);
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validate_accepts_every_default_config() {
        for alg in Algorithm::ALL {
            assert_eq!(ExpConfig::new(alg, 4096, 8).validate(), Ok(()));
        }
    }

    #[test]
    #[should_panic(expected = "invalid experiment config")]
    fn run_experiment_panics_on_invalid_config() {
        run_experiment(&ExpConfig::new(Algorithm::RadixShmem, 1024, 0));
    }

    #[test]
    fn speedup_is_positive_and_finite() {
        let seq = run_sequential_baseline(4096, 8, Dist::Gauss, 271828, 64, 1);
        assert!(seq.verified);
        let par = run_experiment(&ExpConfig::new(Algorithm::RadixShmem, 4096, 8).scale(64));
        let speedup = seq.time_ns / par.parallel_ns;
        assert!(speedup.is_finite() && speedup > 0.5, "speedup {speedup}");
    }

    #[test]
    fn mean_breakdown_averages() {
        let res = run_experiment(&ExpConfig::new(Algorithm::SampleShmem, 2048, 4).scale(64));
        let mean = res.mean_breakdown();
        let total = res.total();
        assert!((mean.total() * 4.0 - total.total()).abs() < 1e-6);
    }
}

#[cfg(test)]
mod section_tests {
    use super::*;

    #[test]
    fn results_carry_phase_sections() {
        let res = run_experiment(&ExpConfig::new(Algorithm::RadixShmem, 2048, 4).scale(64));
        let names: Vec<&str> = res.sections.iter().map(|(n, _)| n.as_str()).collect();
        for expected in ["histogram", "combine", "permute", "exchange"] {
            assert!(names.contains(&expected), "missing phase {expected} in {names:?}");
        }
        // Sections partition the per-processor time.
        let section_total: f64 = res.sections.iter().map(|(_, t)| t.total()).sum();
        let mean_total = res.mean_breakdown().total();
        assert!((section_total - mean_total).abs() < 1e-3 * mean_total.max(1.0));
    }

    #[test]
    fn sample_sort_sections_differ_from_radix() {
        let res = run_experiment(&ExpConfig::new(Algorithm::SampleCcsas, 2048, 4).scale(64));
        let names: Vec<&str> = res.sections.iter().map(|(n, _)| n.as_str()).collect();
        for expected in ["local-sort-1", "sampling", "splitters", "exchange", "local-sort-2"] {
            assert!(names.contains(&expected), "missing phase {expected} in {names:?}");
        }
        // The two local sorts dominate sample sort.
        let local: f64 = res
            .sections
            .iter()
            .filter(|(n, _)| n.starts_with("local-sort"))
            .map(|(_, t)| t.total())
            .sum();
        assert!(local > 0.5 * res.mean_breakdown().total());
    }

    #[test]
    fn warm_caches_reduce_time_without_changing_output() {
        let cold = run_experiment(&ExpConfig::new(Algorithm::RadixShmem, 4096, 4).scale(64));
        let warm = run_experiment(
            &ExpConfig::new(Algorithm::RadixShmem, 4096, 4).scale(64).warm_caches(true),
        );
        assert!(cold.verified && warm.verified);
        assert!(
            warm.parallel_ns < cold.parallel_ns,
            "warm start ({}) must beat cold start ({})",
            warm.parallel_ns,
            cold.parallel_ns
        );
    }

    #[test]
    fn audited_run_matches_unaudited_and_is_clean() {
        let cfg = ExpConfig::new(Algorithm::RadixCcsas, 2048, 4).scale(64);
        let plain = run_experiment(&cfg);
        let (audited, violations) = run_experiment_audited(&cfg);
        assert!(violations.is_empty(), "audit violations: {violations:?}");
        assert!(audited.verified);
        // Auditing observes; it must not perturb the simulation.
        assert_eq!(plain.parallel_ns, audited.parallel_ns);
        assert_eq!(plain.per_pe, audited.per_pe);
    }

    #[test]
    fn coalesced_algorithm_roundtrips_by_name() {
        assert_eq!(Algorithm::parse("radix-mpi-coalesced"), Ok(Algorithm::RadixMpiCoalesced));
        assert!(Algorithm::RadixMpiCoalesced.is_radix());
        let res = run_experiment(&ExpConfig::new(Algorithm::RadixMpiCoalesced, 2048, 4).scale(64));
        assert!(res.verified);
    }

    #[test]
    fn shmem_put_algorithm_runs_under_the_driver() {
        assert_eq!(Algorithm::parse("radix-shmem-put"), Ok(Algorithm::RadixShmemPut));
        assert!(Algorithm::RadixShmemPut.is_radix());
        let res = run_experiment(&ExpConfig::new(Algorithm::RadixShmemPut, 2048, 4).scale(64));
        assert!(res.verified);
        let names: Vec<&str> = res.sections.iter().map(|(n, _)| n.as_str()).collect();
        for expected in ["histogram", "combine", "permute", "exchange"] {
            assert!(names.contains(&expected), "missing phase {expected} in {names:?}");
        }
    }
}
