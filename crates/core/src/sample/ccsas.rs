//! CC-SAS sample sort: splitter collection through shared memory by group
//! collectors, key exchange by contiguous *remote reads* (no remote writes
//! at all — the reason CC-SAS sample sort stays competitive at every size,
//! Figure 7).

use ccsort_machine::{ArrayId, Machine};

use super::Model;

/// Sort `keys[0]` (partitioned), using `keys[1]` as scratch. Returns the
/// array holding the sorted result.
pub fn sort(m: &mut Machine, keys: [ArrayId; 2], n: usize, r: u32, key_bits: u32) -> ArrayId {
    super::sort(m, Model::Ccsas, keys, n, r, key_bits)
}

#[cfg(test)]
mod tests {
    use crate::dist::Dist;
    use crate::sample::tests::run_model;
    use crate::sample::Model;

    #[test]
    fn sorts_and_is_deterministic() {
        let (mut input, out1, t1) = run_model(Model::Ccsas, 4096, 8, 11, Dist::Gauss, 77);
        let (_, out2, t2) = run_model(Model::Ccsas, 4096, 8, 11, Dist::Gauss, 77);
        input.sort_unstable();
        assert_eq!(out1, input);
        assert_eq!(out1, out2);
        assert_eq!(t1, t2, "virtual time must be bit-identical across runs");
    }

    #[test]
    fn no_remote_writes_in_exchange() {
        // CC-SAS sample sort communicates with remote reads; the writes all
        // target the process's own recv region. We can't observe "remote
        // write" directly, but invalidation counts during the whole sort
        // should be far below radix CC-SAS on the same input.
        use ccsort_machine::{Machine, MachineConfig, Placement};
        let n = 8192;
        let p = 8;
        let run = |sample: bool| {
            let mut m = Machine::new(MachineConfig::origin2000(p).scaled_down(64));
            let a = m.alloc(n, Placement::Partitioned { parts: p }, "k0");
            let b = m.alloc(n, Placement::Partitioned { parts: p }, "k1");
            let input = crate::dist::generate(Dist::Gauss, n, p, 8, 1);
            m.raw_mut(a).copy_from_slice(&input);
            if sample {
                crate::sample::ccsas::sort(&mut m, [a, b], n, 8, 31);
            } else {
                crate::radix::ccsas::sort(&mut m, [a, b], n, 8, 31);
            }
            (0..p).map(|pe| m.events(pe).invalidations).sum::<u64>()
        };
        let inv_sample = run(true);
        let inv_radix = run(false);
        assert!(
            inv_sample * 2 < inv_radix,
            "sample CC-SAS invalidations ({inv_sample}) should be well below radix CC-SAS ({inv_radix})"
        );
    }
}
