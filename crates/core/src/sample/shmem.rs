//! SHMEM sample sort: obtained from the MPI program by replacing the
//! send/receive pair in the exchange phase with a one-sided `get`
//! (Section 3.2), and `MPI_Allgather` with `shmem_fcollect`.

use ccsort_machine::{ArrayId, Machine};

use super::Model;

/// Sort `keys[0]` (partitioned / symmetric), using `keys[1]` as scratch.
/// Returns the array holding the sorted result.
pub fn sort(m: &mut Machine, keys: [ArrayId; 2], n: usize, r: u32, key_bits: u32) -> ArrayId {
    super::sort(m, Model::Shmem, keys, n, r, key_bits)
}

#[cfg(test)]
mod tests {
    use crate::dist::Dist;
    use crate::sample::tests::run_model;
    use crate::sample::Model;
    use ccsort_models::MpiMode;

    #[test]
    fn sorts_and_matches_mpi_output() {
        let (mut input, a, _) = run_model(Model::Shmem, 4096, 8, 11, Dist::Bucket, 13);
        let (_, b, _) = run_model(Model::Mpi(MpiMode::Direct), 4096, 8, 11, Dist::Bucket, 13);
        input.sort_unstable();
        assert_eq!(a, input);
        assert_eq!(a, b);
    }

    #[test]
    fn shmem_beats_mpi_on_time() {
        // One-sided exchange and cheap collectives: SHMEM sample sort must
        // be at least as fast as MPI sample sort on the same input.
        let (_, _, t_shmem) = run_model(Model::Shmem, 8192, 8, 8, Dist::Gauss, 2);
        let (_, _, t_mpi) = run_model(Model::Mpi(MpiMode::Direct), 8192, 8, 8, Dist::Gauss, 2);
        assert!(t_shmem < t_mpi, "SHMEM {t_shmem} vs MPI {t_mpi}");
    }
}
