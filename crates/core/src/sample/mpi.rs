//! MPI sample sort: samples and counts via `MPI_Allgather` (with redundant
//! local splitter computation on every rank), key exchange with exactly one
//! message per process pair — which is why sample sort suffers far less
//! than radix sort from MPI's per-message costs (Figure 2 vs Figure 1).

use ccsort_machine::{ArrayId, Machine};
use ccsort_models::MpiMode;

use super::Model;

/// Sort `keys[0]` (partitioned), using `keys[1]` as scratch, under the
/// given MPI implementation. Returns the array holding the sorted result.
pub fn sort(
    m: &mut Machine,
    mode: MpiMode,
    keys: [ArrayId; 2],
    n: usize,
    r: u32,
    key_bits: u32,
) -> ArrayId {
    super::sort(m, Model::Mpi(mode), keys, n, r, key_bits)
}

#[cfg(test)]
mod tests {
    use crate::dist::Dist;
    use crate::sample::tests::run_model;
    use crate::sample::Model;
    use ccsort_models::MpiMode;

    #[test]
    fn staged_and_direct_agree_on_output() {
        let (mut input, a, ta) = run_model(Model::Mpi(MpiMode::Direct), 4096, 8, 11, Dist::Gauss, 3);
        let (_, b, tb) = run_model(Model::Mpi(MpiMode::Staged), 4096, 8, 11, Dist::Gauss, 3);
        input.sort_unstable();
        assert_eq!(a, input);
        assert_eq!(a, b);
        assert!(tb > ta, "staged ({tb}) must be slower than direct ({ta})");
    }

    #[test]
    fn one_message_per_pair_in_exchange() {
        use ccsort_machine::{Machine, MachineConfig, Placement};
        let n = 8192;
        let p = 4;
        let mut m = Machine::new(MachineConfig::origin2000(p).scaled_down(64));
        let a = m.alloc(n, Placement::Partitioned { parts: p }, "k0");
        let b = m.alloc(n, Placement::Partitioned { parts: p }, "k1");
        let input = crate::dist::generate(Dist::Gauss, n, p, 8, 1);
        m.raw_mut(a).copy_from_slice(&input);
        crate::sample::mpi::sort(&mut m, MpiMode::Direct, [a, b], n, 8, 31);
        // Messages per rank: p-1 sample-allgather + p-1 count-allgather +
        // at most p-1 data messages.
        for pe in 0..p {
            assert!(
                m.events(pe).messages <= 3 * (p as u64 - 1),
                "pe {pe} sent {} messages",
                m.events(pe).messages
            );
        }
    }
}
