//! Parallel sample sort under the three programming models (Section 3.2).
//!
//! The five phases of the paper's program:
//!
//! 1. every process sorts its own keys locally (radix sort);
//! 2. every process selects 128 regularly-spaced sample keys;
//! 3. the samples are combined and `p-1` splitters chosen — under CC-SAS,
//!    groups of 32 processes each delegate a collector and splitters are
//!    published through shared memory; under MPI/SHMEM the samples are
//!    allgathered and every process computes the splitters redundantly;
//! 4. every process partitions its sorted keys by the splitters and an
//!    all-to-all personalized communication moves each bucket to its
//!    destination — *contiguous* blocks, one per process pair (remote
//!    *reads* under CC-SAS, `send`/`recv` under MPI, `get` under SHMEM);
//! 5. every process sorts its received keys locally.
//!
//! Sample sort thus does roughly double the local sorting work of radix
//! sort but has far better-behaved communication — the crossover the
//! paper's Table 3 maps out.
//!
//! Like radix sort, the algorithm is written once ([`sort_with_comm`])
//! against [`ccsort_models::comm::Communicator`]; the model decides how
//! splitters are selected (group collectors vs redundant allgathered
//! sorts), how counts are replicated, and what transport moves the buckets.

pub mod ccsas;
pub mod mpi;
pub mod shmem;

use ccsort_machine::{ArrayId, Machine, Placement};
use ccsort_models::comm::{Communicator, ExchangePlan, Permute};
use ccsort_models::{gather_scattered, write_fixed, CcsasComm, MpiComm, MpiMode, ShmemComm};

use crate::common::{local_radix_sort, n_passes, part_range};
use crate::costs;

/// Samples taken per process (the paper's choice).
pub const SAMPLES_PER_PE: usize = 128;
/// Processes per sample-collection group in the CC-SAS program.
pub use ccsort_models::comm::GROUP;

/// Which programming model runs the communication phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Model {
    Ccsas,
    Mpi(MpiMode),
    Shmem,
}

impl Model {
    /// The communicator instantiating this model. (Sample sort's own
    /// transport is contiguous per-pair blocks; the [`Permute`] style only
    /// selects the radix-permutation arm and is irrelevant here.)
    pub fn communicator(&self) -> Box<dyn Communicator> {
        let costs = costs::comm_costs();
        match *self {
            Model::Ccsas => Box::new(CcsasComm::new(Permute::DirectScatter, costs)),
            Model::Mpi(mode) => Box::new(MpiComm::new(mode, Permute::ChunkMessages, costs)),
            Model::Shmem => Box::new(ShmemComm::new(Permute::ReceiverGet, costs)),
        }
    }
}

/// How sample keys are chosen in phase 2 — "there are many ways to decide
/// how to sample the keys ... these affect load balance and program
/// complexity" (Section 3.2, citing Li et al.'s regular-sampling study).
/// The paper chose 128 regularly-spaced samples per process
/// ([`SamplingStrategy::default`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum SamplingStrategy {
    /// `per_pe` regularly-spaced keys from each process's sorted partition
    /// (regular sampling; the paper's choice with `per_pe = 128`).
    Regular { per_pe: usize },
    /// `per_pe` pseudo-random positions per process (seeded, deterministic).
    Random { per_pe: usize, seed: u64 },
    /// Regular sampling with `factor * p` samples per process —
    /// oversampling trades splitter-phase cost for balance.
    Oversample { factor: usize },
}

impl Default for SamplingStrategy {
    fn default() -> Self {
        SamplingStrategy::Regular { per_pe: SAMPLES_PER_PE }
    }
}

impl SamplingStrategy {
    /// Samples per process for a given processor count and partition size.
    fn per_pe(&self, p: usize, part_len: usize) -> usize {
        let want = match *self {
            SamplingStrategy::Regular { per_pe } => per_pe,
            SamplingStrategy::Random { per_pe, .. } => per_pe,
            SamplingStrategy::Oversample { factor } => factor.max(1) * p,
        };
        want.min(part_len).max(1)
    }

    /// The `k`-th sample index within a partition of `len` keys.
    fn index(&self, pe: usize, k: usize, s: usize, len: usize) -> usize {
        match *self {
            SamplingStrategy::Regular { .. } | SamplingStrategy::Oversample { .. } => k * len / s,
            SamplingStrategy::Random { seed, .. } => {
                // splitmix-style hash of (seed, pe, k): deterministic
                // pseudo-random positions.
                let mut x = seed ^ ((pe as u64) << 32) ^ k as u64;
                x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                (x ^ (x >> 31)) as usize % len
            }
        }
    }
}

/// Sort `keys[0]` (partitioned over all processors), using `keys[1]` and
/// two freshly allocated arrays as scratch. Returns the array holding the
/// fully sorted result (process regions concatenated in rank order).
pub fn sort(m: &mut Machine, model: Model, keys: [ArrayId; 2], n: usize, r: u32, key_bits: u32) -> ArrayId {
    sort_with(m, model, keys, n, r, key_bits, SamplingStrategy::default())
}

/// [`sort`], with an explicit sampling strategy.
#[allow(clippy::too_many_arguments)]
pub fn sort_with(
    m: &mut Machine,
    model: Model,
    keys: [ArrayId; 2],
    n: usize,
    r: u32,
    key_bits: u32,
    strategy: SamplingStrategy,
) -> ArrayId {
    let mut comm = model.communicator();
    sort_with_comm(m, comm.as_mut(), keys, n, r, key_bits, strategy)
}

/// The one parallel sample sort, parameterized over the programming model.
#[allow(clippy::too_many_arguments)]
pub fn sort_with_comm(
    m: &mut Machine,
    comm: &mut dyn Communicator,
    keys: [ArrayId; 2],
    n: usize,
    r: u32,
    key_bits: u32,
    strategy: SamplingStrategy,
) -> ArrayId {
    let p = m.n_procs();
    let s = strategy.per_pe(p, n / p);
    let bits = key_bits.max(1);
    let local_passes = n_passes(bits, r);

    let recv = m.alloc(n, Placement::Partitioned { parts: p }, "recv");
    let recv_scratch = m.alloc(n, Placement::Partitioned { parts: p }, "recv-scratch");
    let samples = m.alloc(p * s, Placement::Partitioned { parts: p }, "samples");

    // ------------------------------------------------------------------
    // Phase 1: local radix sort of each partition.
    // ------------------------------------------------------------------
    m.section("local-sort-1");
    for pe in 0..p {
        let range = part_range(n, p, pe);
        local_radix_sort(m, pe, keys[0], keys[1], range.start, range.len(), r, bits);
    }
    m.barrier();
    // All partitions have the same pass parity, so the sorted data is in
    // the same array everywhere.
    let sorted = if local_passes % 2 == 1 { keys[1] } else { keys[0] };

    // ------------------------------------------------------------------
    // Phase 2: regular sampling.
    // ------------------------------------------------------------------
    m.section("sampling");
    for pe in 0..p {
        let range = part_range(n, p, pe);
        let len = range.len();
        let mut local_samples = vec![0u32; s];
        m.busy_cycles_fixed(pe, costs::SELECT_CYC_PER_SAMPLE * s as f64);
        let timed = m.fixed_prefix(s);
        let idxs: Vec<usize> = (0..s).map(|k| range.start + strategy.index(pe, k, s, len)).collect();
        // Sampling is fixed-size work: time a representative prefix as one
        // batched gather; the remainder is read untimed.
        gather_scattered(m, pe, sorted, &idxs[..timed], &mut local_samples[..timed]);
        for k in timed..s {
            local_samples[k] = m.raw(sorted)[idxs[k]];
        }
        write_fixed(m, pe, samples, pe * s, &local_samples);
    }
    m.barrier();

    // ------------------------------------------------------------------
    // Phase 3: splitter selection (model-specific).
    // ------------------------------------------------------------------
    m.section("splitters");
    let splitters = comm.select_splitters(m, samples, s);
    debug_assert_eq!(splitters.len(), p - 1);

    // ------------------------------------------------------------------
    // Phase 4: partition by splitters and exchange.
    // ------------------------------------------------------------------
    // Bucket boundaries within each sorted partition (host math; the
    // binary-search instruction work is charged below). Ties on duplicated
    // splitter values are spread across the tied buckets so heavily
    // duplicated keys (e.g. the `zero` distribution) don't overload one
    // process.
    let mut bounds: Vec<Vec<usize>> = Vec::with_capacity(p);
    for pe in 0..p {
        let range = part_range(n, p, pe);
        let len = range.len();
        m.busy_cycles_fixed(
            pe,
            costs::BSEARCH_CYC_PER_STEP * (p.max(2) - 1) as f64 * (len.max(2) as f64).log2(),
        );
        let part = &m.raw(sorted)[range.clone()];
        bounds.push(splitter_bounds(part, &splitters));
    }

    // counts[i][j]: keys process i sends to process j.
    let counts: Vec<Vec<u32>> = (0..p)
        .map(|i| (0..p).map(|j| (bounds[i][j + 1] - bounds[i][j]) as u32).collect())
        .collect();

    // Exchange the counts (cheap collective, same flavour per model) and
    // compute the receive layout: region j = [rbase[j], rbase[j+1]), with
    // source i's block at rbase[j] + sum_{i'<i} counts[i'][j].
    exchange_counts(m, comm, &counts);
    let mut rbase = vec![0usize; p + 1];
    for j in 0..p {
        let inbound: u32 = (0..p).map(|i| counts[i][j]).sum();
        rbase[j + 1] = rbase[j] + inbound as usize;
    }
    debug_assert_eq!(rbase[p], n);
    let plan = ExchangePlan {
        src_off: (0..p)
            .map(|i| (0..p).map(|j| part_range(n, p, i).start + bounds[i][j]).collect())
            .collect(),
        dst_off: (0..p)
            .map(|i| {
                (0..p)
                    .map(|j| rbase[j] + (0..i).map(|i2| counts[i2][j] as usize).sum::<usize>())
                    .collect()
            })
            .collect(),
        max_region: (0..p).map(|j| rbase[j + 1] - rbase[j]).max().unwrap_or(0),
        counts,
    };

    m.section("exchange");
    comm.exchange_keys(m, sorted, recv, &plan);
    m.barrier();

    // ------------------------------------------------------------------
    // Phase 5: local sort of the received region.
    // ------------------------------------------------------------------
    m.section("local-sort-2");
    for pe in 0..p {
        let off = rbase[pe];
        let len = rbase[pe + 1] - rbase[pe];
        local_radix_sort(m, pe, recv, recv_scratch, off, len, r, bits);
    }
    m.barrier();
    if local_passes % 2 == 1 {
        recv_scratch
    } else {
        recv
    }
}

/// Bucket cut points of a sorted `part` under `splitters`, spreading keys
/// equal to a run of tied splitters evenly over the tied buckets.
///
/// A value `v` appearing as splitters `a..=b` may legally land in any of
/// buckets `a..=b+1`: buckets `a+1..=b` hold nothing but `v`, bucket `a`
/// holds keys `< v` plus `v`s, bucket `b+1` holds `v`s plus keys `> v`, and
/// the phase-5 local sorts restore order inside every bucket. Without the
/// spreading, all duplicates of a splitter value pile onto one process —
/// the paper's `zero` distribution (every tenth key zero) would overload
/// process 0 by an order of magnitude.
pub fn splitter_bounds(part: &[u32], splitters: &[u32]) -> Vec<usize> {
    let p = splitters.len() + 1;
    let len = part.len();
    let mut b = vec![0usize; p + 1];
    b[p] = len;
    let mut j = 0usize;
    while j < splitters.len() {
        let v = splitters[j];
        let mut jl = j;
        while jl + 1 < splitters.len() && splitters[jl + 1] == v {
            jl += 1;
        }
        if jl == j {
            b[j + 1] = part.partition_point(|&x| x < v);
            j += 1;
            continue;
        }
        // Tied group: splitters j..=jl all equal v; spread the run of v's
        // over buckets j..=jl+1.
        let lower = part.partition_point(|&x| x < v);
        let upper = part.partition_point(|&x| x <= v);
        let run = upper - lower;
        let slots = jl - j + 2;
        for (k, cut) in (j + 1..=jl + 1).enumerate() {
            b[cut] = lower + (k + 1) * run / slots;
        }
        j = jl + 1;
    }
    b
}

/// Exchange the per-pair key counts ahead of the all-to-all: publish every
/// row into the shared/symmetric count matrix, then replicate it through
/// the model's collective.
fn exchange_counts(m: &mut Machine, comm: &mut dyn Communicator, counts: &[Vec<u32>]) {
    let p = m.n_procs();
    if p == 1 {
        return;
    }
    let flat_count_arr = m.alloc(p * p, Placement::Partitioned { parts: p }, "counts");
    for pe in 0..p {
        m.busy_cycles_fixed(pe, p as f64);
        write_fixed(m, pe, flat_count_arr, pe * p, &counts[pe]);
    }
    m.barrier();
    comm.replicate_counts(m, flat_count_arr);
    m.barrier();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{generate, Dist, KEY_BITS};
    use ccsort_machine::MachineConfig;

    pub(crate) fn run_model(model: Model, n: usize, p: usize, r: u32, dist: Dist, seed: u64) -> (Vec<u32>, Vec<u32>, f64) {
        let mut m = Machine::new(MachineConfig::origin2000(p).scaled_down(64));
        let a = m.alloc(n, Placement::Partitioned { parts: p }, "keys0");
        let b = m.alloc(n, Placement::Partitioned { parts: p }, "keys1");
        let input = generate(dist, n, p, r, seed);
        m.raw_mut(a).copy_from_slice(&input);
        let out = sort(&mut m, model, [a, b], n, r, KEY_BITS);
        (input, m.raw(out).to_vec(), m.parallel_time())
    }

    #[test]
    fn all_models_sort_gauss() {
        for model in [Model::Ccsas, Model::Mpi(MpiMode::Direct), Model::Mpi(MpiMode::Staged), Model::Shmem] {
            let (mut input, output, t) = run_model(model, 8192, 8, 8, Dist::Gauss, 21);
            input.sort_unstable();
            assert_eq!(output, input, "{model:?}");
            assert!(t > 0.0);
        }
    }

    #[test]
    fn all_models_agree() {
        let (_, a, _) = run_model(Model::Ccsas, 4096, 4, 8, Dist::Random, 5);
        let (_, b, _) = run_model(Model::Mpi(MpiMode::Direct), 4096, 4, 8, Dist::Random, 5);
        let (_, c, _) = run_model(Model::Shmem, 4096, 4, 8, Dist::Random, 5);
        assert_eq!(a, b);
        assert_eq!(b, c);
    }

    #[test]
    fn handles_heavy_duplicates() {
        // The zero distribution concentrates ~10% of keys in one bucket.
        let (mut input, output, _) = run_model(Model::Shmem, 4096, 8, 8, Dist::Zero, 9);
        input.sort_unstable();
        assert_eq!(output, input);
    }

    #[test]
    fn handles_single_process() {
        let (mut input, output, _) = run_model(Model::Ccsas, 1024, 1, 8, Dist::Gauss, 3);
        input.sort_unstable();
        assert_eq!(output, input);
    }

    #[test]
    fn handles_more_groups_than_one() {
        // p = 64 exercises the two-group CC-SAS collection path (GROUP=32).
        let (mut input, output, _) = run_model(Model::Ccsas, 64 * 64, 64, 8, Dist::Random, 17);
        input.sort_unstable();
        assert_eq!(output, input);
    }

    #[test]
    fn skewed_distributions_sort_correctly() {
        for dist in [Dist::Bucket, Dist::Stagger, Dist::Local, Dist::Remote, Dist::Half] {
            let (mut input, output, _) = run_model(Model::Mpi(MpiMode::Direct), 4096, 8, 8, dist, 31);
            input.sort_unstable();
            assert_eq!(output, input, "{dist:?}");
        }
    }
}

#[cfg(test)]
mod strategy_tests {
    use super::*;
    use crate::dist::{generate, Dist, KEY_BITS};
    use ccsort_machine::MachineConfig;

    fn run_strategy(strategy: SamplingStrategy, dist: Dist) -> (bool, f64) {
        let n = 1 << 14;
        let p = 8;
        let mut m = Machine::new(MachineConfig::origin2000(p).scaled_down(64));
        let a = m.alloc(n, Placement::Partitioned { parts: p }, "k0");
        let b = m.alloc(n, Placement::Partitioned { parts: p }, "k1");
        let input = generate(dist, n, p, 8, 3);
        m.raw_mut(a).copy_from_slice(&input);
        let out = sort_with(&mut m, Model::Shmem, [a, b], n, 8, KEY_BITS, strategy);
        let mut expect = input;
        expect.sort_unstable();
        let ok = m.raw(out) == &expect[..];
        // Work imbalance across PEs (non-sync time max/mean).
        let work: Vec<f64> = (0..p).map(|pe| {
            let b = m.breakdown(pe);
            b.busy + b.lmem + b.rmem
        }).collect();
        let mean = work.iter().sum::<f64>() / p as f64;
        (ok, work.iter().cloned().fold(0.0_f64, f64::max) / mean)
    }

    #[test]
    fn every_strategy_sorts_every_stress_dist() {
        for strategy in [
            SamplingStrategy::Regular { per_pe: 16 },
            SamplingStrategy::Regular { per_pe: 512 },
            SamplingStrategy::Random { per_pe: 64, seed: 1 },
            SamplingStrategy::Oversample { factor: 4 },
        ] {
            for dist in [Dist::Gauss, Dist::Zero, Dist::Stagger, Dist::Local] {
                let (ok, _) = run_strategy(strategy, dist);
                assert!(ok, "{strategy:?} on {dist:?} failed");
            }
        }
    }

    #[test]
    fn regular_sampling_balances_at_least_as_well_as_random() {
        let (_, reg) = run_strategy(SamplingStrategy::Regular { per_pe: 128 }, Dist::Gauss);
        let (_, rnd) = run_strategy(SamplingStrategy::Random { per_pe: 128, seed: 1 }, Dist::Gauss);
        assert!(
            reg <= rnd * 1.05,
            "regular sampling ({reg:.3}) should balance no worse than random ({rnd:.3})"
        );
    }

    #[test]
    fn degenerate_strategies_still_work() {
        // One sample per process; oversample bigger than the partition.
        let (ok, _) = run_strategy(SamplingStrategy::Regular { per_pe: 1 }, Dist::Random);
        assert!(ok);
        let (ok2, _) = run_strategy(SamplingStrategy::Oversample { factor: 1000 }, Dist::Random);
        assert!(ok2);
    }
}
