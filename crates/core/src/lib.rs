//! # ccsort-algos
//!
//! The sorting programs of Shan & Singh, *Parallel Sorting on
//! Cache-coherent DSM Multiprocessors* (SC 1999), implemented against the
//! simulated Origin 2000 (`ccsort-machine`) through the three programming
//! model runtimes (`ccsort-models`):
//!
//! * [`radix`] — parallel radix sort in five flavours: original CC-SAS
//!   (scattered remote writes), restructured CC-SAS-NEW (local buffering),
//!   MPI (staged or direct, chunk-per-message or coalesced) and SHMEM
//!   (receiver-initiated `get`s).
//! * [`sample`] — parallel sample sort in three flavours (CC-SAS, MPI,
//!   SHMEM), with configurable sampling strategies (the paper's 128
//!   regular samples per process by default) and two local radix sorts.
//! * [`seq`] — the uniprocessor radix sort used as the speedup baseline for
//!   *both* algorithms (Table 1).
//! * [`dist`] — the eight key distributions of Section 3.3.
//! * [`driver`] — one-call experiment runner producing verified, fully
//!   deterministic results with per-processor BUSY/LMEM/RMEM/SYNC
//!   breakdowns.
//! * [`predict`] — the closed-form performance-prediction formula the
//!   paper names as future work, checked against the simulator.
//!
//! ```
//! use ccsort_algos::{run_experiment, Algorithm, ExpConfig};
//!
//! let res = run_experiment(&ExpConfig::new(Algorithm::RadixShmem, 4096, 4).scale(64));
//! assert!(res.verified);
//! assert!(res.parallel_ns > 0.0);
//! ```

pub mod common;
pub mod costs;
pub mod dist;
pub mod driver;
pub mod predict;
pub mod radix;
pub mod sample;
pub mod seq;

pub use ccsort_machine::{DirectoryMode, InterconnectKind, ProtocolMode};
pub use dist::{stagger_window, Dist, KEY_BITS, MAX_KEY};
pub use driver::{
    run_experiment, run_experiment_audited, run_sequential_baseline, Algorithm, ExpConfig,
    ExpResult,
};
pub use sample::SamplingStrategy;
