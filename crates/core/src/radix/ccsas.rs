//! The original CC-SAS radix sort (SPLASH-2 style).
//!
//! Histogram accumulation uses the shared binary prefix tree — cheap,
//! fine-grained load/store communication. The permutation writes each key
//! *directly* into its position in the (mostly remote) output array: the
//! writes are temporally interleaved across up to `2^r` destination
//! segments and therefore appear scattered. Those scattered remote writes
//! trigger a read-exclusive + invalidation + eventual writeback protocol
//! sequence per line, and the resulting controller contention is what makes
//! this program collapse for large data sets (Figure 4a).

use ccsort_machine::{ArrayId, Machine};
use ccsort_models::PrefixTree;

use crate::common::{digit, exclusive_scan, local_histogram, n_passes, part_range, BLOCK};
use crate::costs;

/// Sort the keys in `keys[0]` (partitioned over all processors), using
/// `keys[1]` as the toggle array. Returns the array holding the sorted
/// result.
pub fn sort(m: &mut Machine, keys: [ArrayId; 2], n: usize, r: u32, key_bits: u32) -> ArrayId {
    let p = m.n_procs();
    let bins = 1usize << r;
    let passes = n_passes(key_bits, r);
    let tree = PrefixTree::new(m, p, bins);
    let (mut src, mut dst) = (keys[0], keys[1]);

    for pass in 0..passes {
        // Phase 1: per-process histogram of the current digit.
        m.section("histogram");
        for pe in 0..p {
            let h = local_histogram(m, pe, src, part_range(n, p, pe), pass, r);
            tree.set_local(m, pe, &h);
        }
        // Phase 2: accumulate through the shared prefix tree (internal
        // barriers).
        m.section("combine");
        tree.accumulate(m);

        // Phase 3: read ranks and permute with direct scattered writes.
        m.section("permute");
        for pe in 0..p {
            let mut pref = vec![0u32; bins];
            let mut tot = vec![0u32; bins];
            tree.read_prefix(m, pe, &mut pref);
            tree.read_totals(m, pe, &mut tot);
            m.busy_cycles_fixed(pe, costs::SCAN_CYC_PER_BIN * bins as f64);
            let scan = exclusive_scan(&tot);
            let mut offsets: Vec<u32> = (0..bins).map(|d| scan[d] + pref[d]).collect();

            let range = part_range(n, p, pe);
            let mut buf = vec![0u32; BLOCK];
            let mut dests = vec![0usize; BLOCK];
            let mut pos = range.start;
            while pos < range.end {
                let blk = BLOCK.min(range.end - pos);
                m.read_run(pe, src, pos, &mut buf[..blk]);
                m.busy_cycles(pe, costs::PERMUTE_CYC_PER_KEY * blk as f64);
                for (i, &k) in buf[..blk].iter().enumerate() {
                    let d = digit(k, pass, r);
                    dests[i] = offsets[d] as usize;
                    offsets[d] += 1;
                }
                // The defining access of this program: fine-grained writes
                // into other processes' partitions, issued as one batch.
                m.scatter_run(pe, dst, &dests[..blk], &buf[..blk]);
                pos += blk;
            }
        }
        m.barrier();
        std::mem::swap(&mut src, &mut dst);
    }
    src
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{generate, Dist};
    use ccsort_machine::{MachineConfig, Placement};

    fn run(n: usize, p: usize, r: u32, dist: Dist) -> (Vec<u32>, Vec<u32>, f64) {
        let mut m = Machine::new(MachineConfig::origin2000(p).scaled_down(64));
        let a = m.alloc(n, Placement::Partitioned { parts: p }, "keys0");
        let b = m.alloc(n, Placement::Partitioned { parts: p }, "keys1");
        let input = generate(dist, n, p, r, 1234);
        m.raw_mut(a).copy_from_slice(&input);
        let out = sort(&mut m, [a, b], n, r, crate::dist::KEY_BITS);
        (input, m.raw(out).to_vec(), m.parallel_time())
    }

    #[test]
    fn sorts_gauss_keys() {
        let (mut input, output, t) = run(4096, 8, 8, Dist::Gauss);
        input.sort_unstable();
        assert_eq!(output, input);
        assert!(t > 0.0);
    }

    #[test]
    fn sorts_with_odd_radix_and_procs() {
        let (mut input, output, _) = run(3000, 6, 7, Dist::Random);
        input.sort_unstable();
        assert_eq!(output, input);
    }

    #[test]
    fn sorts_adversarial_distributions() {
        for dist in [Dist::Zero, Dist::Remote, Dist::Local, Dist::Stagger] {
            let (mut input, output, _) = run(2048, 8, 8, dist);
            input.sort_unstable();
            assert_eq!(output, input, "{dist:?}");
        }
    }

    #[test]
    fn single_processor_degenerates_to_sequential() {
        let (mut input, output, _) = run(1024, 1, 8, Dist::Gauss);
        input.sort_unstable();
        assert_eq!(output, input);
    }
}
