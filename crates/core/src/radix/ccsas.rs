//! The original CC-SAS radix sort (SPLASH-2 style).
//!
//! Histogram accumulation uses the shared binary prefix tree — cheap,
//! fine-grained load/store communication. The permutation writes each key
//! *directly* into its position in the (mostly remote) output array: the
//! writes are temporally interleaved across up to `2^r` destination
//! segments and therefore appear scattered. Those scattered remote writes
//! trigger a read-exclusive + invalidation + eventual writeback protocol
//! sequence per line, and the resulting controller contention is what makes
//! this program collapse for large data sets (Figure 4a).
//!
//! Instantiates the [`crate::radix::sort`] skeleton with
//! [`CcsasComm`] in [`Permute::DirectScatter`] style.

use ccsort_machine::{ArrayId, Machine};
use ccsort_models::{CcsasComm, Permute};

use crate::costs;

/// Sort the keys in `keys[0]` (partitioned over all processors), using
/// `keys[1]` as the toggle array. Returns the array holding the sorted
/// result.
pub fn sort(m: &mut Machine, keys: [ArrayId; 2], n: usize, r: u32, key_bits: u32) -> ArrayId {
    let mut comm = CcsasComm::new(Permute::DirectScatter, costs::comm_costs());
    crate::radix::sort(m, &mut comm, keys, n, r, key_bits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{generate, Dist};
    use ccsort_machine::{MachineConfig, Placement};

    fn run(n: usize, p: usize, r: u32, dist: Dist) -> (Vec<u32>, Vec<u32>, f64) {
        let mut m = Machine::new(MachineConfig::origin2000(p).scaled_down(64));
        let a = m.alloc(n, Placement::Partitioned { parts: p }, "keys0");
        let b = m.alloc(n, Placement::Partitioned { parts: p }, "keys1");
        let input = generate(dist, n, p, r, 1234);
        m.raw_mut(a).copy_from_slice(&input);
        let out = sort(&mut m, [a, b], n, r, crate::dist::KEY_BITS);
        (input, m.raw(out).to_vec(), m.parallel_time())
    }

    #[test]
    fn sorts_gauss_keys() {
        let (mut input, output, t) = run(4096, 8, 8, Dist::Gauss);
        input.sort_unstable();
        assert_eq!(output, input);
        assert!(t > 0.0);
    }

    #[test]
    fn sorts_with_odd_radix_and_procs() {
        let (mut input, output, _) = run(3000, 6, 7, Dist::Random);
        input.sort_unstable();
        assert_eq!(output, input);
    }

    #[test]
    fn sorts_adversarial_distributions() {
        for dist in [Dist::Zero, Dist::Remote, Dist::Local, Dist::Stagger] {
            let (mut input, output, _) = run(2048, 8, 8, dist);
            input.sort_unstable();
            assert_eq!(output, input, "{dist:?}");
        }
    }

    #[test]
    fn single_processor_degenerates_to_sequential() {
        let (mut input, output, _) = run(1024, 1, 8, Dist::Gauss);
        input.sort_unstable();
        assert_eq!(output, input);
    }
}
