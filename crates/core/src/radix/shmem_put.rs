//! SHMEM radix sort with sender-initiated `put` (the paper's road not
//! taken).
//!
//! Section 2 notes that on the Origin 2000 a `get` "deposits the data
//! directly in the cache of the requesting processor", while a `put` leaves
//! the destination cache untouched. The paper's SHMEM program therefore
//! uses receiver-initiated `get`s ([`crate::radix::shmem`]). This variant
//! flips the direction: after the local permutation, each *sender* walks
//! its own histogram row and `put`s every chunk into the owner's partition.
//! The exchange itself is cheaper — a sender scans only its own `2^r`
//! histogram entries instead of the whole `p x 2^r` table, and `put`
//! overlaps better at the initiator — but the keys arrive in the owner's
//! *memory*, not its cache, so the next pass's histogram sweep pays the
//! misses that `get` would have prepaid. The RMEM/LMEM shift between the
//! two variants quantifies the paper's argument for `get`.
//!
//! Instantiates the [`crate::radix::sort`] skeleton with
//! [`ShmemComm`] in [`Permute::SenderPut`] style.

use ccsort_machine::{ArrayId, Machine};
use ccsort_models::{Permute, ShmemComm};

use crate::costs;

/// Sort `keys[0]` (partitioned / symmetric), toggling with `keys[1]`.
/// Returns the array holding the sorted result.
pub fn sort(m: &mut Machine, keys: [ArrayId; 2], n: usize, r: u32, key_bits: u32) -> ArrayId {
    let mut comm = ShmemComm::new(Permute::SenderPut, costs::comm_costs());
    crate::radix::sort(m, &mut comm, keys, n, r, key_bits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{generate, Dist, KEY_BITS};
    use ccsort_machine::{MachineConfig, Placement};

    fn run(n: usize, p: usize, r: u32, dist: Dist) -> (Vec<u32>, Vec<u32>) {
        let mut m = Machine::new(MachineConfig::origin2000(p).scaled_down(64));
        let a = m.alloc(n, Placement::Partitioned { parts: p }, "keys0");
        let b = m.alloc(n, Placement::Partitioned { parts: p }, "keys1");
        let input = generate(dist, n, p, r, 55);
        m.raw_mut(a).copy_from_slice(&input);
        let out = sort(&mut m, [a, b], n, r, KEY_BITS);
        (input, m.raw(out).to_vec())
    }

    #[test]
    fn sorts_gauss_keys() {
        let (mut input, output) = run(4096, 8, 8, Dist::Gauss);
        input.sort_unstable();
        assert_eq!(output, input);
    }

    #[test]
    fn sorts_all_distributions() {
        for dist in Dist::ALL {
            let (mut input, output) = run(2048, 4, 6, dist);
            input.sort_unstable();
            assert_eq!(output, input, "{dist:?}");
        }
    }

    #[test]
    fn put_shifts_remote_time_to_local_misses() {
        // The paper's reason to prefer get (Section 2): a get installs the
        // exchanged keys in the destination cache, a put installs them
        // nowhere. Under put the exchange itself charges less remote time,
        // but the next pass's histogram sweep has to fetch its own
        // partition from memory — time the get variant never pays.
        let n = 1 << 16;
        let p = 8;
        let phases = |put: bool| {
            let mut m = Machine::new(MachineConfig::origin2000(p).scaled_down(64));
            let a = m.alloc(n, Placement::Partitioned { parts: p }, "k0");
            let b = m.alloc(n, Placement::Partitioned { parts: p }, "k1");
            let input = generate(Dist::Gauss, n, p, 8, 55);
            m.raw_mut(a).copy_from_slice(&input);
            let out = if put {
                sort(&mut m, [a, b], n, 8, KEY_BITS)
            } else {
                crate::radix::shmem::sort(&mut m, [a, b], n, 8, KEY_BITS)
            };
            let mut expect = input;
            expect.sort_unstable();
            assert_eq!(m.raw(out), &expect[..]);
            let phase = |name: &str| {
                m.section_profile()
                    .iter()
                    .find(|(s, _)| *s == name)
                    .map(|(_, t)| (t.lmem, t.rmem))
                    .unwrap_or_else(|| panic!("missing section {name}"))
            };
            (phase("exchange"), phase("histogram"))
        };
        let ((_, exch_rmem_put), (hist_lmem_put, _)) = phases(true);
        let ((_, exch_rmem_get), (hist_lmem_get, _)) = phases(false);
        assert!(
            exch_rmem_put < exch_rmem_get,
            "put must charge the exchange less remote time than get \
             (put {exch_rmem_put}, get {exch_rmem_get})"
        );
        assert!(
            hist_lmem_put > hist_lmem_get,
            "put must leave the destination cold, so the next histogram sweep \
             pays local-memory misses (put {hist_lmem_put}, get {hist_lmem_get})"
        );
    }
}
