//! The restructured CC-SAS radix sort ("CC-SAS-NEW", Section 4.2.1).
//!
//! Identical to the original CC-SAS program except in the permutation
//! phase: keys are first permuted into a *local* buffer (grouped by digit),
//! and each digit chunk is then copied to its destination as one contiguous
//! streamed write. This trades extra BUSY time (the buffering pass) for a
//! large reduction in temporally scattered remote writes and hence in
//! coherence-protocol contention — dramatically better for large data sets,
//! but *worse* than the original for the smallest (1M-key) sets where the
//! saved traffic cannot pay for the added local work.
//!
//! Instantiates the [`crate::radix::sort`] skeleton with
//! [`CcsasComm`] in [`Permute::ContiguousCopy`] style.

use ccsort_machine::{ArrayId, Machine};
use ccsort_models::{CcsasComm, Permute};

use crate::costs;

/// Sort `keys[0]` (partitioned), toggling with `keys[1]`. Returns the array
/// holding the sorted result.
pub fn sort(m: &mut Machine, keys: [ArrayId; 2], n: usize, r: u32, key_bits: u32) -> ArrayId {
    let mut comm = CcsasComm::new(Permute::ContiguousCopy, costs::comm_costs());
    crate::radix::sort(m, &mut comm, keys, n, r, key_bits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{generate, Dist, KEY_BITS};
    use ccsort_machine::{MachineConfig, Placement};

    fn run(n: usize, p: usize, r: u32, dist: Dist) -> (Vec<u32>, Vec<u32>) {
        let mut m = Machine::new(MachineConfig::origin2000(p).scaled_down(64));
        let a = m.alloc(n, Placement::Partitioned { parts: p }, "keys0");
        let b = m.alloc(n, Placement::Partitioned { parts: p }, "keys1");
        let input = generate(dist, n, p, r, 99);
        m.raw_mut(a).copy_from_slice(&input);
        let out = sort(&mut m, [a, b], n, r, KEY_BITS);
        (input, m.raw(out).to_vec())
    }

    #[test]
    fn sorts_gauss_keys() {
        let (mut input, output) = run(4096, 8, 8, Dist::Gauss);
        input.sort_unstable();
        assert_eq!(output, input);
    }

    #[test]
    fn sorts_every_distribution() {
        for dist in Dist::ALL {
            let (mut input, output) = run(2048, 4, 6, dist);
            input.sort_unstable();
            assert_eq!(output, input, "{dist:?}");
        }
    }

    #[test]
    fn agrees_with_original_ccsas_output() {
        let (_, out_new) = run(3072, 8, 8, Dist::Random);
        let mut m = Machine::new(MachineConfig::origin2000(8).scaled_down(64));
        let a = m.alloc(3072, Placement::Partitioned { parts: 8 }, "k0");
        let b = m.alloc(3072, Placement::Partitioned { parts: 8 }, "k1");
        let input = generate(Dist::Random, 3072, 8, 8, 99);
        m.raw_mut(a).copy_from_slice(&input);
        let out = crate::radix::ccsas::sort(&mut m, [a, b], 3072, 8, KEY_BITS);
        assert_eq!(out_new, m.raw(out));
    }
}
