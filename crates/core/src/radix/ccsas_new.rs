//! The restructured CC-SAS radix sort ("CC-SAS-NEW", Section 4.2.1).
//!
//! Identical to the original CC-SAS program except in the permutation
//! phase: keys are first permuted into a *local* buffer (grouped by digit),
//! and each digit chunk is then copied to its destination as one contiguous
//! streamed write. This trades extra BUSY time (the buffering pass) for a
//! large reduction in temporally scattered remote writes and hence in
//! coherence-protocol contention — dramatically better for large data sets,
//! but *worse* than the original for the smallest (1M-key) sets where the
//! saved traffic cannot pay for the added local work.

use ccsort_machine::{ArrayId, Machine, Placement};
use ccsort_models::{cpu_copy, PrefixTree};

use crate::common::{digit, exclusive_scan, local_histogram, n_passes, part_range, BLOCK};
use crate::costs;

/// Sort `keys[0]` (partitioned), toggling with `keys[1]`. Returns the array
/// holding the sorted result.
pub fn sort(m: &mut Machine, keys: [ArrayId; 2], n: usize, r: u32, key_bits: u32) -> ArrayId {
    let p = m.n_procs();
    let bins = 1usize << r;
    let passes = n_passes(key_bits, r);
    let tree = PrefixTree::new(m, p, bins);
    // The per-process staging buffer: each process owns its partition of
    // this array and lays its keys out grouped by digit.
    let stage = m.alloc(n, Placement::Partitioned { parts: p }, "stage");
    let (mut src, mut dst) = (keys[0], keys[1]);

    for pass in 0..passes {
        // Phase 1 + 2: histograms and tree accumulation, as in the original.
        m.section("histogram");
        let mut hists: Vec<Vec<u32>> = Vec::with_capacity(p);
        for pe in 0..p {
            let h = local_histogram(m, pe, src, part_range(n, p, pe), pass, r);
            tree.set_local(m, pe, &h);
            hists.push(h);
        }
        m.section("combine");
        tree.accumulate(m);

        // Phase 3: permute into the local staging buffer.
        m.section("permute");
        for pe in 0..p {
            let range = part_range(n, p, pe);
            let base = range.start;
            let mut cursors = exclusive_scan(&hists[pe]);
            let mut buf = vec![0u32; BLOCK];
            let mut dests = vec![0usize; BLOCK];
            let mut pos = range.start;
            while pos < range.end {
                let blk = BLOCK.min(range.end - pos);
                m.read_run(pe, src, pos, &mut buf[..blk]);
                m.busy_cycles(
                    pe,
                    (costs::PERMUTE_CYC_PER_KEY + costs::BUFFER_EXTRA_CYC_PER_KEY) * blk as f64,
                );
                for (i, &k) in buf[..blk].iter().enumerate() {
                    let d = digit(k, pass, r);
                    dests[i] = base + cursors[d] as usize;
                    cursors[d] += 1;
                }
                // Scattered, but *local*: cheap misses, no remote protocol
                // storm.
                m.scatter_run(pe, stage, &dests[..blk], &buf[..blk]);
                pos += blk;
            }
        }
        m.barrier();

        // Phase 4: copy each digit chunk to its (remote) destination as one
        // contiguous streamed transfer. Ranks come from the tree.
        m.section("exchange");
        for pe in 0..p {
            let mut pref = vec![0u32; bins];
            let mut tot = vec![0u32; bins];
            tree.read_prefix(m, pe, &mut pref);
            tree.read_totals(m, pe, &mut tot);
            m.busy_cycles_fixed(pe, costs::SCAN_CYC_PER_BIN * bins as f64);
            let scan = exclusive_scan(&tot);
            let base = part_range(n, p, pe).start;
            let lscan = exclusive_scan(&hists[pe]);
            for d in 0..bins {
                let len = hists[pe][d] as usize;
                if len == 0 {
                    continue;
                }
                let goff = (scan[d] + pref[d]) as usize;
                cpu_copy(
                    m,
                    pe,
                    stage,
                    base + lscan[d] as usize,
                    dst,
                    goff,
                    len,
                    costs::COPY_CYC_PER_KEY,
                );
            }
        }
        m.barrier();
        std::mem::swap(&mut src, &mut dst);
    }
    src
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{generate, Dist, KEY_BITS};
    use ccsort_machine::MachineConfig;

    fn run(n: usize, p: usize, r: u32, dist: Dist) -> (Vec<u32>, Vec<u32>) {
        let mut m = Machine::new(MachineConfig::origin2000(p).scaled_down(64));
        let a = m.alloc(n, Placement::Partitioned { parts: p }, "keys0");
        let b = m.alloc(n, Placement::Partitioned { parts: p }, "keys1");
        let input = generate(dist, n, p, r, 99);
        m.raw_mut(a).copy_from_slice(&input);
        let out = sort(&mut m, [a, b], n, r, KEY_BITS);
        (input, m.raw(out).to_vec())
    }

    #[test]
    fn sorts_gauss_keys() {
        let (mut input, output) = run(4096, 8, 8, Dist::Gauss);
        input.sort_unstable();
        assert_eq!(output, input);
    }

    #[test]
    fn sorts_every_distribution() {
        for dist in Dist::ALL {
            let (mut input, output) = run(2048, 4, 6, dist);
            input.sort_unstable();
            assert_eq!(output, input, "{dist:?}");
        }
    }

    #[test]
    fn agrees_with_original_ccsas_output() {
        let (_, out_new) = run(3072, 8, 8, Dist::Random);
        let mut m = Machine::new(MachineConfig::origin2000(8).scaled_down(64));
        let a = m.alloc(3072, Placement::Partitioned { parts: 8 }, "k0");
        let b = m.alloc(3072, Placement::Partitioned { parts: 8 }, "k1");
        let input = generate(Dist::Random, 3072, 8, 8, 99);
        m.raw_mut(a).copy_from_slice(&input);
        let out = crate::radix::ccsas::sort(&mut m, [a, b], 3072, 8, KEY_BITS);
        assert_eq!(out_new, m.raw(out));
    }
}
