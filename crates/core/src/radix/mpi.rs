//! MPI radix sort (Section 3.1, "MPI").
//!
//! Differences from CC-SAS, exactly as the paper describes them:
//!
//! 1. Histogram combination uses `MPI_Allgather` to replicate every local
//!    histogram on every rank; each rank then combines them locally (the
//!    fine-grained tree would be "very expensive" in MPI). Having the full
//!    histogram locally also makes the permutation's send parameters easy
//!    to compute.
//! 2. The permutation first writes keys into contiguous local chunks
//!    (a local permutation), then sends **each contiguously-destined chunk
//!    as a separate message** — the variant the authors measured to be
//!    faster than one-message-per-destination on this machine.
//!
//! Runs under either [`MpiMode::Staged`] (vendor-style, bounce-buffered) or
//! [`MpiMode::Direct`] (the authors' modified MPICH).
//!
//! Instantiates the [`crate::radix::sort`] skeleton with
//! [`MpiComm`] in [`Permute::ChunkMessages`] style.

use ccsort_machine::{ArrayId, Machine};
use ccsort_models::{MpiComm, MpiMode, Permute};

use crate::costs;

/// Sort `keys[0]` (partitioned), toggling with `keys[1]`. Returns the array
/// holding the sorted result.
pub fn sort(
    m: &mut Machine,
    mode: MpiMode,
    keys: [ArrayId; 2],
    n: usize,
    r: u32,
    key_bits: u32,
) -> ArrayId {
    let mut comm = MpiComm::new(mode, Permute::ChunkMessages, costs::comm_costs());
    crate::radix::sort(m, &mut comm, keys, n, r, key_bits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{generate, Dist, KEY_BITS};
    use ccsort_machine::{MachineConfig, Placement};

    fn run(mode: MpiMode, n: usize, p: usize, r: u32, dist: Dist) -> (Vec<u32>, Vec<u32>) {
        let mut m = Machine::new(MachineConfig::origin2000(p).scaled_down(64));
        let a = m.alloc(n, Placement::Partitioned { parts: p }, "keys0");
        let b = m.alloc(n, Placement::Partitioned { parts: p }, "keys1");
        let input = generate(dist, n, p, r, 7);
        m.raw_mut(a).copy_from_slice(&input);
        let out = sort(&mut m, mode, [a, b], n, r, KEY_BITS);
        (input, m.raw(out).to_vec())
    }

    #[test]
    fn direct_sorts_gauss() {
        let (mut input, output) = run(MpiMode::Direct, 4096, 8, 8, Dist::Gauss);
        input.sort_unstable();
        assert_eq!(output, input);
    }

    #[test]
    fn staged_sorts_gauss() {
        let (mut input, output) = run(MpiMode::Staged, 4096, 8, 8, Dist::Gauss);
        input.sort_unstable();
        assert_eq!(output, input);
    }

    #[test]
    fn sorts_all_distributions_direct() {
        for dist in Dist::ALL {
            let (mut input, output) = run(MpiMode::Direct, 2048, 4, 6, dist);
            input.sort_unstable();
            assert_eq!(output, input, "{dist:?}");
        }
    }

    #[test]
    fn staged_slower_than_direct() {
        let time = |mode| {
            let p = 8;
            let n = 8192;
            let mut m = Machine::new(MachineConfig::origin2000(p).scaled_down(64));
            let a = m.alloc(n, Placement::Partitioned { parts: p }, "k0");
            let b = m.alloc(n, Placement::Partitioned { parts: p }, "k1");
            let input = generate(Dist::Gauss, n, p, 8, 7);
            m.raw_mut(a).copy_from_slice(&input);
            sort(&mut m, mode, [a, b], n, 8, KEY_BITS);
            m.parallel_time()
        };
        assert!(time(MpiMode::Staged) > time(MpiMode::Direct));
    }
}
