//! MPI radix sort (Section 3.1, "MPI").
//!
//! Differences from CC-SAS, exactly as the paper describes them:
//!
//! 1. Histogram combination uses `MPI_Allgather` to replicate every local
//!    histogram on every rank; each rank then combines them locally (the
//!    fine-grained tree would be "very expensive" in MPI). Having the full
//!    histogram locally also makes the permutation's send parameters easy
//!    to compute.
//! 2. The permutation first writes keys into contiguous local chunks
//!    (a local permutation), then sends **each contiguously-destined chunk
//!    as a separate message** — the variant the authors measured to be
//!    faster than one-message-per-destination on this machine.
//!
//! Runs under either [`MpiMode::Staged`] (vendor-style, bounce-buffered) or
//! [`MpiMode::Direct`] (the authors' modified MPICH).

use ccsort_machine::{ArrayId, Machine, Placement};
use ccsort_models::{read_fixed, write_fixed, Mpi, MpiMode};

use crate::common::{digit, exclusive_scan, local_histogram, n_passes, part_range, BLOCK};
use crate::costs;
use crate::radix::{global_offsets, split_by_owner};

/// Sort `keys[0]` (partitioned), toggling with `keys[1]`. Returns the array
/// holding the sorted result.
pub fn sort(
    m: &mut Machine,
    mode: MpiMode,
    keys: [ArrayId; 2],
    n: usize,
    r: u32,
    key_bits: u32,
) -> ArrayId {
    let p = m.n_procs();
    let bins = 1usize << r;
    let passes = n_passes(key_bits, r);

    // Per-rank staging buffer for the local permutation.
    let stage = m.alloc(n, Placement::Partitioned { parts: p }, "stage");
    // Local histograms live in the symmetric histogram array so the
    // collective can fetch them.
    let hist_arr = m.alloc(p * bins, Placement::Partitioned { parts: p }, "hists");
    // Every rank's local replica of all histograms.
    let replicas: Vec<ArrayId> = (0..p)
        .map(|pe| {
            let home = m.topo().node_of(pe);
            m.alloc(p * bins, Placement::Node(home), "hist-replica")
        })
        .collect();
    // Worst-case inbound data per rank per pass: its own partition plus
    // chunk-boundary slack.
    let bounce_cap = n.div_ceil(p) + 2 * bins + 64;
    let mut mpi = Mpi::new(m, mode, bounce_cap);

    let (mut src, mut dst) = (keys[0], keys[1]);
    for pass in 0..passes {
        // Phase 1: local histograms, published into the symmetric array.
        m.section("histogram");
        let mut hists: Vec<Vec<u32>> = Vec::with_capacity(p);
        for pe in 0..p {
            let h = local_histogram(m, pe, src, part_range(n, p, pe), pass, r);
            m.busy_cycles_fixed(pe, bins as f64);
            write_fixed(m, pe, hist_arr, pe * bins, &h);
            hists.push(h);
        }
        m.barrier();

        // Phase 2: Allgather the histograms; combine redundantly on every
        // rank.
        m.section("combine");
        let contribs: Vec<(ArrayId, usize)> = (0..p).map(|j| (hist_arr, j * bins)).collect();
        for pe in 0..p {
            mpi.allgather(m, pe, &contribs, bins, replicas[pe]);
        }
        m.barrier();
        let offsets = global_offsets(&hists);

        // Phase 3: local permutation into contiguous chunks, then one send
        // per contiguously-destined piece.
        m.section("permute");
        for pe in 0..p {
            // Redundant local combine of all p histograms.
            let mut replica = vec![0u32; p * bins];
            read_fixed(m, pe, replicas[pe], 0, &mut replica);
            m.busy_cycles_fixed(pe, costs::OFFSET_CYC_PER_ENTRY * (p * bins) as f64);

            let range = part_range(n, p, pe);
            let base = range.start;
            let lscan = exclusive_scan(&hists[pe]);
            let mut cursors = lscan.clone();
            let mut buf = vec![0u32; BLOCK];
            let mut dests = vec![0usize; BLOCK];
            let mut pos = range.start;
            while pos < range.end {
                let blk = BLOCK.min(range.end - pos);
                m.read_run(pe, src, pos, &mut buf[..blk]);
                m.busy_cycles(
                    pe,
                    (costs::PERMUTE_CYC_PER_KEY + costs::BUFFER_EXTRA_CYC_PER_KEY) * blk as f64,
                );
                for (i, &k) in buf[..blk].iter().enumerate() {
                    let d = digit(k, pass, r);
                    dests[i] = base + cursors[d] as usize;
                    cursors[d] += 1;
                }
                m.scatter_run(pe, stage, &dests[..blk], &buf[..blk]);
                pos += blk;
            }

            // Send each chunk piece.
            for d in 0..bins {
                let len = hists[pe][d] as usize;
                if len == 0 {
                    continue;
                }
                let goff = offsets[pe][d] as usize;
                for piece in split_by_owner(n, p, goff, len) {
                    mpi.send(
                        m,
                        pe,
                        stage,
                        base + lscan[d] as usize + piece.src_delta,
                        piece.owner,
                        dst,
                        piece.dst_off,
                        piece.len,
                    );
                }
            }
        }
        // Phase 4: receivers complete all inbound messages.
        m.section("exchange");
        for pe in 0..p {
            mpi.drain(m, pe);
        }
        m.barrier();
        std::mem::swap(&mut src, &mut dst);
    }
    src
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{generate, Dist, KEY_BITS};
    use ccsort_machine::MachineConfig;

    fn run(mode: MpiMode, n: usize, p: usize, r: u32, dist: Dist) -> (Vec<u32>, Vec<u32>) {
        let mut m = Machine::new(MachineConfig::origin2000(p).scaled_down(64));
        let a = m.alloc(n, Placement::Partitioned { parts: p }, "keys0");
        let b = m.alloc(n, Placement::Partitioned { parts: p }, "keys1");
        let input = generate(dist, n, p, r, 7);
        m.raw_mut(a).copy_from_slice(&input);
        let out = sort(&mut m, mode, [a, b], n, r, KEY_BITS);
        (input, m.raw(out).to_vec())
    }

    #[test]
    fn direct_sorts_gauss() {
        let (mut input, output) = run(MpiMode::Direct, 4096, 8, 8, Dist::Gauss);
        input.sort_unstable();
        assert_eq!(output, input);
    }

    #[test]
    fn staged_sorts_gauss() {
        let (mut input, output) = run(MpiMode::Staged, 4096, 8, 8, Dist::Gauss);
        input.sort_unstable();
        assert_eq!(output, input);
    }

    #[test]
    fn sorts_all_distributions_direct() {
        for dist in Dist::ALL {
            let (mut input, output) = run(MpiMode::Direct, 2048, 4, 6, dist);
            input.sort_unstable();
            assert_eq!(output, input, "{dist:?}");
        }
    }

    #[test]
    fn staged_slower_than_direct() {
        let time = |mode| {
            let p = 8;
            let n = 8192;
            let mut m = Machine::new(MachineConfig::origin2000(p).scaled_down(64));
            let a = m.alloc(n, Placement::Partitioned { parts: p }, "k0");
            let b = m.alloc(n, Placement::Partitioned { parts: p }, "k1");
            let input = generate(Dist::Gauss, n, p, 8, 7);
            m.raw_mut(a).copy_from_slice(&input);
            sort(&mut m, mode, [a, b], n, 8, KEY_BITS);
            m.parallel_time()
        };
        assert!(time(MpiMode::Staged) > time(MpiMode::Direct));
    }
}
