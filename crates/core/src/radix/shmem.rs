//! SHMEM radix sort (Section 3.1, "SHMEM").
//!
//! Derived from the MPI program, with the communication simplified by
//! one-sidedness: histograms are replicated with `shmem_fcollect`, the
//! local permutation stages chunks exactly as in MPI, and then — because
//! every process has the full histogram — the *receiver* pulls each chunk
//! destined for its partition with a `get`. Only one side computes message
//! parameters, there is no per-pair mailbox to stall on, and `get` deposits
//! the keys directly in the destination processor's cache.

use ccsort_machine::{ArrayId, Machine, Placement};
use ccsort_models::{read_fixed, write_fixed, Shmem};

use crate::common::{digit, exclusive_scan, local_histogram, n_passes, part_range, BLOCK};
use crate::costs;
use crate::radix::global_offsets;

/// Sort `keys[0]` (partitioned / symmetric), toggling with `keys[1]`.
/// Returns the array holding the sorted result.
pub fn sort(m: &mut Machine, keys: [ArrayId; 2], n: usize, r: u32, key_bits: u32) -> ArrayId {
    let p = m.n_procs();
    let bins = 1usize << r;
    let passes = n_passes(key_bits, r);

    let stage = m.alloc(n, Placement::Partitioned { parts: p }, "stage");
    let hist_arr = m.alloc(p * bins, Placement::Partitioned { parts: p }, "hists");
    let replicas: Vec<ArrayId> = (0..p)
        .map(|pe| {
            let home = m.topo().node_of(pe);
            m.alloc(p * bins, Placement::Node(home), "hist-replica")
        })
        .collect();
    let shmem = Shmem::new(m);

    let (mut src, mut dst) = (keys[0], keys[1]);
    for pass in 0..passes {
        // Phase 1: local histograms, published into the symmetric array.
        m.section("histogram");
        let mut hists: Vec<Vec<u32>> = Vec::with_capacity(p);
        for pe in 0..p {
            let h = local_histogram(m, pe, src, part_range(n, p, pe), pass, r);
            m.busy_cycles_fixed(pe, bins as f64);
            write_fixed(m, pe, hist_arr, pe * bins, &h);
            hists.push(h);
        }
        m.barrier();

        // Phase 2: replicate histograms with fcollect; combine redundantly.
        m.section("combine");
        let contribs: Vec<(ArrayId, usize)> = (0..p).map(|j| (hist_arr, j * bins)).collect();
        for pe in 0..p {
            shmem.fcollect(m, pe, &contribs, bins, replicas[pe]);
        }
        m.barrier();
        let offsets = global_offsets(&hists);
        let lscans: Vec<Vec<u32>> = hists.iter().map(|h| exclusive_scan(h)).collect();

        // Phase 3: local permutation into contiguous staged chunks.
        m.section("permute");
        for pe in 0..p {
            let mut replica = vec![0u32; p * bins];
            read_fixed(m, pe, replicas[pe], 0, &mut replica);
            m.busy_cycles_fixed(pe, costs::OFFSET_CYC_PER_ENTRY * (p * bins) as f64);

            let range = part_range(n, p, pe);
            let base = range.start;
            let mut cursors = lscans[pe].clone();
            let mut buf = vec![0u32; BLOCK];
            let mut dests = vec![0usize; BLOCK];
            let mut pos = range.start;
            while pos < range.end {
                let blk = BLOCK.min(range.end - pos);
                m.read_run(pe, src, pos, &mut buf[..blk]);
                m.busy_cycles(
                    pe,
                    (costs::PERMUTE_CYC_PER_KEY + costs::BUFFER_EXTRA_CYC_PER_KEY) * blk as f64,
                );
                for (i, &k) in buf[..blk].iter().enumerate() {
                    let d = digit(k, pass, r);
                    dests[i] = base + cursors[d] as usize;
                    cursors[d] += 1;
                }
                m.scatter_run(pe, stage, &dests[..blk], &buf[..blk]);
                pos += blk;
            }
        }
        m.barrier();

        // Phase 4: receiver-initiated communication. Each process walks the
        // (replicated) histogram table and `get`s every chunk piece that
        // lands in its own partition of the output array.
        m.section("exchange");
        for pe in 0..p {
            let my = part_range(n, p, pe);
            // Scanning the p*2^r table is real (cheap) work on each rank.
            m.busy_cycles_fixed(pe, 0.5 * (p * bins) as f64);
            for j in 0..p {
                let src_base = part_range(n, p, j).start;
                for d in 0..bins {
                    let len = hists[j][d] as usize;
                    if len == 0 {
                        continue;
                    }
                    let goff = offsets[j][d] as usize;
                    let s = goff.max(my.start);
                    let e = (goff + len).min(my.end);
                    if s >= e {
                        continue;
                    }
                    let src_off = src_base + lscans[j][d] as usize + (s - goff);
                    if j == pe {
                        // Self-chunks move with a local block transfer.
                        shmem.get_local(m, pe, dst, s, stage, src_off, e - s);
                    } else {
                        shmem.get(m, pe, dst, s, stage, src_off, e - s);
                    }
                }
            }
        }
        m.barrier();
        std::mem::swap(&mut src, &mut dst);
    }
    src
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{generate, Dist, KEY_BITS};
    use ccsort_machine::MachineConfig;

    fn run(n: usize, p: usize, r: u32, dist: Dist) -> (Vec<u32>, Vec<u32>) {
        let mut m = Machine::new(MachineConfig::origin2000(p).scaled_down(64));
        let a = m.alloc(n, Placement::Partitioned { parts: p }, "keys0");
        let b = m.alloc(n, Placement::Partitioned { parts: p }, "keys1");
        let input = generate(dist, n, p, r, 55);
        m.raw_mut(a).copy_from_slice(&input);
        let out = sort(&mut m, [a, b], n, r, KEY_BITS);
        (input, m.raw(out).to_vec())
    }

    #[test]
    fn sorts_gauss_keys() {
        let (mut input, output) = run(4096, 8, 8, Dist::Gauss);
        input.sort_unstable();
        assert_eq!(output, input);
    }

    #[test]
    fn sorts_all_distributions() {
        for dist in Dist::ALL {
            let (mut input, output) = run(2048, 4, 6, dist);
            input.sort_unstable();
            assert_eq!(output, input, "{dist:?}");
        }
    }

    #[test]
    fn local_distribution_sends_no_messages() {
        let p = 8;
        let n = 4096;
        let r = 8;
        let mut m = Machine::new(MachineConfig::origin2000(p).scaled_down(64));
        let a = m.alloc(n, Placement::Partitioned { parts: p }, "k0");
        let b = m.alloc(n, Placement::Partitioned { parts: p }, "k1");
        let input = generate(Dist::Local, n, p, r, 55);
        m.raw_mut(a).copy_from_slice(&input);
        sort(&mut m, [a, b], n, r, KEY_BITS);
        // Permutation messages: only the fcollect messages remain (p-1 per
        // rank per pass, plus nothing from the key exchange).
        let passes = n_passes(KEY_BITS, r) as u64;
        for pe in 0..p {
            assert_eq!(
                m.events(pe).messages,
                (p as u64 - 1) * passes,
                "pe {pe}: local distribution must move no keys between processes"
            );
        }
    }

    #[test]
    fn remote_distribution_moves_everything() {
        let p = 4;
        let n = 2048;
        let r = 8;
        let bytes_for = |dist: Dist| {
            let mut m = Machine::new(MachineConfig::origin2000(p).scaled_down(64));
            let a = m.alloc(n, Placement::Partitioned { parts: p }, "k0");
            let b = m.alloc(n, Placement::Partitioned { parts: p }, "k1");
            let input = generate(dist, n, p, r, 55);
            m.raw_mut(a).copy_from_slice(&input);
            sort(&mut m, [a, b], n, r, KEY_BITS);
            (0..p).map(|pe| m.events(pe).message_bytes).sum::<u64>()
        };
        // Local moves no keys (its messages are the fcollect only); remote
        // moves every key in every pass, so the difference must be at least
        // the full data volume.
        let remote = bytes_for(Dist::Remote);
        let local = bytes_for(Dist::Local);
        assert!(
            remote >= local + (n * 4) as u64,
            "remote ({remote}) must move far more bytes than local ({local})"
        );
    }
}
