//! SHMEM radix sort (Section 3.1, "SHMEM").
//!
//! Derived from the MPI program, with the communication simplified by
//! one-sidedness: histograms are replicated with `shmem_fcollect`, the
//! local permutation stages chunks exactly as in MPI, and then — because
//! every process has the full histogram — the *receiver* pulls each chunk
//! destined for its partition with a `get`. Only one side computes message
//! parameters, there is no per-pair mailbox to stall on, and `get` deposits
//! the keys directly in the destination processor's cache.
//!
//! Instantiates the [`crate::radix::sort`] skeleton with
//! [`ShmemComm`] in [`Permute::ReceiverGet`] style. See
//! [`crate::radix::shmem_put`] for the sender-initiated `put` alternative.

use ccsort_machine::{ArrayId, Machine};
use ccsort_models::{Permute, ShmemComm};

use crate::costs;

/// Sort `keys[0]` (partitioned / symmetric), toggling with `keys[1]`.
/// Returns the array holding the sorted result.
pub fn sort(m: &mut Machine, keys: [ArrayId; 2], n: usize, r: u32, key_bits: u32) -> ArrayId {
    let mut comm = ShmemComm::new(Permute::ReceiverGet, costs::comm_costs());
    crate::radix::sort(m, &mut comm, keys, n, r, key_bits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::n_passes;
    use crate::dist::{generate, Dist, KEY_BITS};
    use ccsort_machine::{MachineConfig, Placement};

    fn run(n: usize, p: usize, r: u32, dist: Dist) -> (Vec<u32>, Vec<u32>) {
        let mut m = Machine::new(MachineConfig::origin2000(p).scaled_down(64));
        let a = m.alloc(n, Placement::Partitioned { parts: p }, "keys0");
        let b = m.alloc(n, Placement::Partitioned { parts: p }, "keys1");
        let input = generate(dist, n, p, r, 55);
        m.raw_mut(a).copy_from_slice(&input);
        let out = sort(&mut m, [a, b], n, r, KEY_BITS);
        (input, m.raw(out).to_vec())
    }

    #[test]
    fn sorts_gauss_keys() {
        let (mut input, output) = run(4096, 8, 8, Dist::Gauss);
        input.sort_unstable();
        assert_eq!(output, input);
    }

    #[test]
    fn sorts_all_distributions() {
        for dist in Dist::ALL {
            let (mut input, output) = run(2048, 4, 6, dist);
            input.sort_unstable();
            assert_eq!(output, input, "{dist:?}");
        }
    }

    #[test]
    fn local_distribution_sends_no_messages() {
        let p = 8;
        let n = 4096;
        let r = 8;
        let mut m = Machine::new(MachineConfig::origin2000(p).scaled_down(64));
        let a = m.alloc(n, Placement::Partitioned { parts: p }, "k0");
        let b = m.alloc(n, Placement::Partitioned { parts: p }, "k1");
        let input = generate(Dist::Local, n, p, r, 55);
        m.raw_mut(a).copy_from_slice(&input);
        sort(&mut m, [a, b], n, r, KEY_BITS);
        // Permutation messages: only the fcollect messages remain (p-1 per
        // rank per pass, plus nothing from the key exchange).
        let passes = n_passes(KEY_BITS, r) as u64;
        for pe in 0..p {
            assert_eq!(
                m.events(pe).messages,
                (p as u64 - 1) * passes,
                "pe {pe}: local distribution must move no keys between processes"
            );
        }
    }

    #[test]
    fn remote_distribution_moves_everything() {
        let p = 4;
        let n = 2048;
        let r = 8;
        let bytes_for = |dist: Dist| {
            let mut m = Machine::new(MachineConfig::origin2000(p).scaled_down(64));
            let a = m.alloc(n, Placement::Partitioned { parts: p }, "k0");
            let b = m.alloc(n, Placement::Partitioned { parts: p }, "k1");
            let input = generate(dist, n, p, r, 55);
            m.raw_mut(a).copy_from_slice(&input);
            sort(&mut m, [a, b], n, r, KEY_BITS);
            (0..p).map(|pe| m.events(pe).message_bytes).sum::<u64>()
        };
        // Local moves no keys (its messages are the fcollect only); remote
        // moves every key in every pass, so the difference must be at least
        // the full data volume.
        let remote = bytes_for(Dist::Remote);
        let local = bytes_for(Dist::Local);
        assert!(
            remote >= local + (n * 4) as u64,
            "remote ({remote}) must move far more bytes than local ({local})"
        );
    }
}
