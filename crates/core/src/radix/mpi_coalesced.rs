//! The *other* MPI radix-sort communication strategy of Section 3.1.
//!
//! "An interesting question is how to send the data. One possibility is for
//! process i to send only one message to each other process j, containing
//! all its chunks of keys that are destined for j. Processor j will then
//! reorganize the data chunks to their correct positions ... This is
//! similar to the algorithm used in the NAS parallel application IS.
//! Another method is for a process to send each contiguously-destined chunk
//! of keys directly as a separate message ... Our experiments show that the
//! latter performs better than the former on this machine."
//!
//! [`crate::radix::mpi`] implements the chunk-per-message winner; this
//! module implements the IS-style coalesced alternative — one message per
//! (source, destination) pair carrying all chunks, which the receiver then
//! reorganizes into place (paying an extra copy per key) — so the paper's
//! implementation-tradeoff experiment can be rerun (`repro tradeoff`).

use ccsort_machine::{ArrayId, Machine, Placement};
use ccsort_models::{cpu_copy, read_fixed, write_fixed, Mpi, MpiMode};

use crate::common::{digit, exclusive_scan, local_histogram, n_passes, part_range, BLOCK};
use crate::costs;
use crate::radix::{global_offsets, split_by_owner, ChunkPiece};

/// Sort `keys[0]` (partitioned), toggling with `keys[1]`, sending **one
/// coalesced message per destination** per pass. Returns the array holding
/// the sorted result.
pub fn sort(
    m: &mut Machine,
    mode: MpiMode,
    keys: [ArrayId; 2],
    n: usize,
    r: u32,
    key_bits: u32,
) -> ArrayId {
    let p = m.n_procs();
    let bins = 1usize << r;
    let passes = n_passes(key_bits, r);

    let stage = m.alloc(n, Placement::Partitioned { parts: p }, "stage");
    // Receive buffer: coalesced messages land here before the receiver
    // reorganizes them into the output array (the extra copy that makes
    // this variant lose).
    let recv_buf = m.alloc(n, Placement::Partitioned { parts: p }, "recv-buf");
    let hist_arr = m.alloc(p * bins, Placement::Partitioned { parts: p }, "hists");
    let replicas: Vec<ArrayId> = (0..p)
        .map(|pe| {
            let home = m.topo().node_of(pe);
            m.alloc(p * bins, Placement::Node(home), "hist-replica")
        })
        .collect();
    let bounce_cap = n.div_ceil(p) + 2 * bins + 64;
    let mut mpi = Mpi::new(m, mode, bounce_cap);

    let (mut src, mut dst) = (keys[0], keys[1]);
    for pass in 0..passes {
        // Phases 1 and 2 are identical to the chunk-per-message program.
        let mut hists: Vec<Vec<u32>> = Vec::with_capacity(p);
        for pe in 0..p {
            let h = local_histogram(m, pe, src, part_range(n, p, pe), pass, r);
            m.busy_cycles_fixed(pe, bins as f64);
            write_fixed(m, pe, hist_arr, pe * bins, &h);
            hists.push(h);
        }
        m.barrier();
        let contribs: Vec<(ArrayId, usize)> = (0..p).map(|j| (hist_arr, j * bins)).collect();
        for pe in 0..p {
            mpi.allgather(m, pe, &contribs, bins, replicas[pe]);
        }
        m.barrier();
        let offsets = global_offsets(&hists);

        // Phase 3: local permutation (as before), then assemble each
        // destination's pieces *contiguously in the stage* — they already
        // are, in digit order — and send one message per destination.
        // pieces[src_pe][dst_pe] = list of (stage offset, output offset, len)
        let mut all_pieces: Vec<Vec<Vec<ChunkPiece>>> = vec![vec![Vec::new(); p]; p];
        for pe in 0..p {
            let mut replica = vec![0u32; p * bins];
            read_fixed(m, pe, replicas[pe], 0, &mut replica);
            m.busy_cycles_fixed(pe, costs::OFFSET_CYC_PER_ENTRY * (p * bins) as f64);

            let range = part_range(n, p, pe);
            let base = range.start;
            let lscan = exclusive_scan(&hists[pe]);
            let mut cursors = lscan.clone();
            let mut buf = vec![0u32; BLOCK];
            let mut dests = vec![0usize; BLOCK];
            let mut pos = range.start;
            while pos < range.end {
                let blk = BLOCK.min(range.end - pos);
                m.read_run(pe, src, pos, &mut buf[..blk]);
                m.busy_cycles(
                    pe,
                    (costs::PERMUTE_CYC_PER_KEY + costs::BUFFER_EXTRA_CYC_PER_KEY) * blk as f64,
                );
                for (i, &k) in buf[..blk].iter().enumerate() {
                    let d = digit(k, pass, r);
                    dests[i] = base + cursors[d] as usize;
                    cursors[d] += 1;
                }
                m.scatter_run(pe, stage, &dests[..blk], &buf[..blk]);
                pos += blk;
            }

            for d in 0..bins {
                let len = hists[pe][d] as usize;
                if len == 0 {
                    continue;
                }
                let goff = offsets[pe][d] as usize;
                for mut piece in split_by_owner(n, p, goff, len) {
                    // Remember where in the stage this piece starts.
                    piece.src_delta += base + lscan[d] as usize;
                    all_pieces[pe][piece.owner].push(piece);
                }
            }
        }

        // One coalesced message per (src, dst) pair. Because the global
        // offsets grow monotonically with the digit, a sender's chunks for
        // a given destination sit *contiguously* in its digit-ordered
        // stage, so the whole bundle ships as a single transfer — exactly
        // the IS-style scheme.
        let mut recv_cursor: Vec<usize> = (0..p).map(|j| part_range(n, p, j).start).collect();
        let mut landing: Vec<Vec<(usize, usize, usize)>> = vec![Vec::new(); p]; // (buf_off, dst_off, len)
        for pe in 0..p {
            for j in 0..p {
                let pieces = &all_pieces[pe][j];
                let total: usize = pieces.iter().map(|c| c.len).sum();
                if total == 0 {
                    continue;
                }
                let stage_start = pieces[0].src_delta;
                debug_assert!(
                    pieces.windows(2).all(|w| w[0].src_delta + w[0].len <= w[1].src_delta),
                    "pieces must be in increasing stage order"
                );
                mpi.send(m, pe, stage, stage_start, j, recv_buf, recv_cursor[j], total);
                // Record where each chunk landed so the receiver can place it.
                let mut buf_off = recv_cursor[j];
                for piece in pieces {
                    // Account for any gap between pieces in the stage (keys
                    // of interleaved digits destined elsewhere) — the send
                    // shipped a contiguous run, so re-place per piece from
                    // its true stage position.
                    m.copy_untimed(pe, stage, piece.src_delta, recv_buf, buf_off, piece.len);
                    landing[j].push((buf_off, piece.dst_off, piece.len));
                    buf_off += piece.len;
                }
                recv_cursor[j] = buf_off;
            }
        }
        for pe in 0..p {
            mpi.drain(m, pe);
        }
        m.barrier();

        // Phase 4 (the cost of coalescing): the receiver reorganizes the
        // chunks from its recv buffer into their true positions.
        for pe in 0..p {
            for &(buf_off, dst_off, len) in &landing[pe] {
                cpu_copy(m, pe, recv_buf, buf_off, dst, dst_off, len, costs::COPY_CYC_PER_KEY);
            }
        }
        m.barrier();
        std::mem::swap(&mut src, &mut dst);
    }
    src
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{generate, Dist, KEY_BITS};
    use ccsort_machine::MachineConfig;

    fn run(n: usize, p: usize, r: u32, dist: Dist) -> (Vec<u32>, Vec<u32>, f64) {
        let mut m = Machine::new(MachineConfig::origin2000(p).scaled_down(64));
        let a = m.alloc(n, Placement::Partitioned { parts: p }, "k0");
        let b = m.alloc(n, Placement::Partitioned { parts: p }, "k1");
        let input = generate(dist, n, p, r, 77);
        m.raw_mut(a).copy_from_slice(&input);
        let out = sort(&mut m, MpiMode::Direct, [a, b], n, r, KEY_BITS);
        (input, m.raw(out).to_vec(), m.parallel_time())
    }

    #[test]
    fn coalesced_sorts_gauss() {
        let (mut input, output, _) = run(4096, 8, 8, Dist::Gauss);
        input.sort_unstable();
        assert_eq!(output, input);
    }

    #[test]
    fn coalesced_sorts_all_distributions() {
        for dist in Dist::ALL {
            let (mut input, output, _) = run(2048, 4, 6, dist);
            input.sort_unstable();
            assert_eq!(output, input, "{dist:?}");
        }
    }

    #[test]
    fn coalesced_pays_the_reorganization_copy() {
        // The paper found chunk-per-message faster on the Origin 2000 — in
        // the regime it measured, with a lot of data per processor, where
        // the receiver-side reorganization copy dwarfs the per-message
        // overheads. (With little data per processor the tradeoff genuinely
        // flips: overheads dominate and coalescing wins.)
        let n = 1 << 20;
        let p = 16;
        let scale = 16;
        let time_of = |coalesced: bool| {
            let mut m = Machine::new(MachineConfig::origin2000(p).scaled_down(scale));
            let a = m.alloc(n, Placement::Partitioned { parts: p }, "k0");
            let b = m.alloc(n, Placement::Partitioned { parts: p }, "k1");
            let input = generate(Dist::Gauss, n, p, 8, 77);
            m.raw_mut(a).copy_from_slice(&input);
            let out = if coalesced {
                sort(&mut m, MpiMode::Direct, [a, b], n, 8, KEY_BITS)
            } else {
                crate::radix::mpi::sort(&mut m, MpiMode::Direct, [a, b], n, 8, KEY_BITS)
            };
            let mut expect = input;
            expect.sort_unstable();
            assert_eq!(m.raw(out), &expect[..]);
            m.parallel_time()
        };
        let t_coalesced = time_of(true);
        let t_chunked = time_of(false);
        assert!(
            t_coalesced > t_chunked,
            "coalesced ({t_coalesced}) must lose to chunk-per-message ({t_chunked}) as in the paper"
        );
    }
}
