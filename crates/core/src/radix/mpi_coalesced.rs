//! The *other* MPI radix-sort communication strategy of Section 3.1.
//!
//! "An interesting question is how to send the data. One possibility is for
//! process i to send only one message to each other process j, containing
//! all its chunks of keys that are destined for j. Processor j will then
//! reorganize the data chunks to their correct positions ... This is
//! similar to the algorithm used in the NAS parallel application IS.
//! Another method is for a process to send each contiguously-destined chunk
//! of keys directly as a separate message ... Our experiments show that the
//! latter performs better than the former on this machine."
//!
//! [`crate::radix::mpi`] implements the chunk-per-message winner; this
//! module implements the IS-style coalesced alternative — one message per
//! (source, destination) pair carrying all chunks, which the receiver then
//! reorganizes into place (paying an extra copy per key) — so the paper's
//! implementation-tradeoff experiment can be rerun (`repro tradeoff`).
//!
//! Instantiates the [`crate::radix::sort`] skeleton with
//! [`MpiComm`] in [`Permute::CoalescedMessages`] style.

use ccsort_machine::{ArrayId, Machine};
use ccsort_models::{MpiComm, MpiMode, Permute};

use crate::costs;

/// Sort `keys[0]` (partitioned), toggling with `keys[1]`, sending **one
/// coalesced message per destination** per pass. Returns the array holding
/// the sorted result.
pub fn sort(
    m: &mut Machine,
    mode: MpiMode,
    keys: [ArrayId; 2],
    n: usize,
    r: u32,
    key_bits: u32,
) -> ArrayId {
    let mut comm = MpiComm::new(mode, Permute::CoalescedMessages, costs::comm_costs());
    crate::radix::sort(m, &mut comm, keys, n, r, key_bits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{generate, Dist, KEY_BITS};
    use ccsort_machine::{MachineConfig, Placement};

    fn run(n: usize, p: usize, r: u32, dist: Dist) -> (Vec<u32>, Vec<u32>, f64) {
        let mut m = Machine::new(MachineConfig::origin2000(p).scaled_down(64));
        let a = m.alloc(n, Placement::Partitioned { parts: p }, "k0");
        let b = m.alloc(n, Placement::Partitioned { parts: p }, "k1");
        let input = generate(dist, n, p, r, 77);
        m.raw_mut(a).copy_from_slice(&input);
        let out = sort(&mut m, MpiMode::Direct, [a, b], n, r, KEY_BITS);
        (input, m.raw(out).to_vec(), m.parallel_time())
    }

    #[test]
    fn coalesced_sorts_gauss() {
        let (mut input, output, _) = run(4096, 8, 8, Dist::Gauss);
        input.sort_unstable();
        assert_eq!(output, input);
    }

    #[test]
    fn coalesced_sorts_all_distributions() {
        for dist in Dist::ALL {
            let (mut input, output, _) = run(2048, 4, 6, dist);
            input.sort_unstable();
            assert_eq!(output, input, "{dist:?}");
        }
    }

    #[test]
    fn coalesced_pays_the_reorganization_copy() {
        // The paper found chunk-per-message faster on the Origin 2000 — in
        // the regime it measured, with a lot of data per processor, where
        // the receiver-side reorganization copy dwarfs the per-message
        // overheads. (With little data per processor the tradeoff genuinely
        // flips: overheads dominate and coalescing wins.)
        let n = 1 << 20;
        let p = 16;
        let scale = 16;
        let time_of = |coalesced: bool| {
            let mut m = Machine::new(MachineConfig::origin2000(p).scaled_down(scale));
            let a = m.alloc(n, Placement::Partitioned { parts: p }, "k0");
            let b = m.alloc(n, Placement::Partitioned { parts: p }, "k1");
            let input = generate(Dist::Gauss, n, p, 8, 77);
            m.raw_mut(a).copy_from_slice(&input);
            let out = if coalesced {
                sort(&mut m, MpiMode::Direct, [a, b], n, 8, KEY_BITS)
            } else {
                crate::radix::mpi::sort(&mut m, MpiMode::Direct, [a, b], n, 8, KEY_BITS)
            };
            let mut expect = input;
            expect.sort_unstable();
            assert_eq!(m.raw(out), &expect[..]);
            m.parallel_time()
        };
        let t_coalesced = time_of(true);
        let t_chunked = time_of(false);
        assert!(
            t_coalesced > t_chunked,
            "coalesced ({t_coalesced}) must lose to chunk-per-message ({t_chunked}) as in the paper"
        );
    }
}
