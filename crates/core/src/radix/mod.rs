//! Parallel radix sort under the three programming models (Section 3.1).
//!
//! The algorithm is written **once**, in [`sort`]: for each `r`-bit digit,
//! (1) every process histograms its assigned keys, (2) local histograms are
//! combined into global ranks, (3) every process permutes its keys into the
//! output array — an all-to-all personalized communication — and the arrays
//! swap roles. Everything the programming models do differently lives
//! behind [`ccsort_models::comm::Communicator`]; the per-model modules
//! below are one-line instantiations of the skeleton:
//!
//! | variant | communicator | histogram combine | permutation ([`Permute`]) |
//! |---|---|---|---|
//! | [`ccsas`] | `CcsasComm` | shared binary prefix tree | `DirectScatter`: fine-grained scattered remote writes |
//! | [`ccsas_new`] | `CcsasComm` | shared binary prefix tree | `ContiguousCopy`: local buffering + contiguous remote copies |
//! | [`mpi`] | `MpiComm` | `MPI_Allgather` + redundant local combine | `ChunkMessages`: one message per contiguously-destined chunk |
//! | [`mpi_coalesced`] | `MpiComm` | `MPI_Allgather` + redundant local combine | `CoalescedMessages`: one message per destination (IS-style), receiver reorganizes |
//! | [`shmem`] | `ShmemComm` | `shmem_fcollect` + redundant local combine | `ReceiverGet`: receiver-initiated `get` per chunk |
//! | [`shmem_put`] | `ShmemComm` | `shmem_fcollect` + redundant local combine | `SenderPut`: sender-initiated `put` per chunk |
//!
//! Each skeleton arm reproduces the machine-call sequence of the
//! hand-written program it replaced, so times, breakdowns and event counts
//! are bit-identical to the pre-refactor variants.

pub mod ccsas;
pub mod ccsas_new;
pub mod mpi;
pub mod mpi_coalesced;
pub mod shmem;
pub mod shmem_put;

use ccsort_machine::{ArrayId, Machine};
use ccsort_models::comm::{Communicator, Permute};
use ccsort_models::cpu_copy;

use crate::common::{digit, exclusive_scan, local_histogram, n_passes, owner_of, part_range, BLOCK};
use crate::costs;

pub use ccsort_models::comm::global_offsets;

/// A contiguous piece of one process's digit chunk, destined for a single
/// owner's partition of the output array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkPiece {
    /// Receiving process.
    pub owner: usize,
    /// Global element offset in the output array.
    pub dst_off: usize,
    /// Offset of this piece within the source chunk.
    pub src_delta: usize,
    /// Piece length in elements.
    pub len: usize,
}

/// Split the chunk `[goff, goff+len)` of the output array along partition
/// boundaries. Radix chunks usually land inside one partition, but a chunk
/// straddling a boundary becomes one message per owner (the paper's MPI
/// program sends "each contiguously-destined chunk of keys directly as a
/// separate message").
pub fn split_by_owner(n: usize, p: usize, goff: usize, len: usize) -> Vec<ChunkPiece> {
    let mut out = Vec::new();
    let mut start = goff;
    let end = goff + len;
    while start < end {
        let owner = owner_of(n, p, start);
        let part_end = part_range(n, p, owner).end;
        let piece = end.min(part_end) - start;
        out.push(ChunkPiece { owner, dst_off: start, src_delta: start - goff, len: piece });
        start += piece;
    }
    out
}

/// One blocked pass over `pe`'s partition of `src`: read a block, compute
/// each key's destination (`dest_base + cursors[digit]`, post-incrementing
/// the cursor), and issue the writes as one scattered batch into `target`.
/// This inner loop is shared by every permutation style; they differ in the
/// target array, the cursor origin and the per-key instruction cost.
#[allow(clippy::too_many_arguments)]
fn blocked_permute(
    m: &mut Machine,
    pe: usize,
    src: ArrayId,
    target: ArrayId,
    n: usize,
    p: usize,
    cursors: &mut [u32],
    dest_base: usize,
    cyc_per_key: f64,
    pass: u32,
    r: u32,
) {
    let range = part_range(n, p, pe);
    let mut buf = vec![0u32; BLOCK];
    let mut dests = vec![0usize; BLOCK];
    let mut pos = range.start;
    while pos < range.end {
        let blk = BLOCK.min(range.end - pos);
        m.read_run(pe, src, pos, &mut buf[..blk]);
        m.busy_cycles(pe, cyc_per_key * blk as f64);
        for (i, &k) in buf[..blk].iter().enumerate() {
            let d = digit(k, pass, r);
            dests[i] = dest_base + cursors[d] as usize;
            cursors[d] += 1;
        }
        m.scatter_run(pe, target, &dests[..blk], &buf[..blk]);
        pos += blk;
    }
}

/// The one parallel radix sort, parameterized over the programming model.
///
/// Sorts the keys in `keys[0]` (partitioned over all processors), using
/// `keys[1]` as the toggle array. Returns the array holding the sorted
/// result. The communicator decides how histograms are published and
/// combined and which [`Permute`] arm moves the keys.
pub fn sort(
    m: &mut Machine,
    comm: &mut dyn Communicator,
    keys: [ArrayId; 2],
    n: usize,
    r: u32,
    key_bits: u32,
) -> ArrayId {
    let p = m.n_procs();
    let bins = 1usize << r;
    let passes = n_passes(key_bits, r);
    comm.setup_radix(m, n, bins);

    let (mut src, mut dst) = (keys[0], keys[1]);
    for pass in 0..passes {
        // Phase 1: per-process histogram of the current digit, published
        // through the model (tree leaves or the symmetric histogram array).
        comm.section(m, "histogram");
        let mut hists: Vec<Vec<u32>> = Vec::with_capacity(p);
        for pe in 0..p {
            let h = local_histogram(m, pe, src, part_range(n, p, pe), pass, r);
            comm.publish_hist(m, pe, &h);
            hists.push(h);
        }
        comm.publish_done(m);

        // Phase 2: combine into global ranks (tree accumulation, Allgather
        // or fcollect — with the model's own synchronization).
        comm.section(m, "combine");
        comm.combine(m, &hists);
        // The replicating models compute every rank's offsets redundantly;
        // the tree models read ranks from the tree instead.
        let offsets = match comm.style() {
            Permute::DirectScatter | Permute::ContiguousCopy => Vec::new(),
            _ => global_offsets(&hists),
        };

        // Phase 3 (and 4, where the style has one): move the keys.
        match comm.style() {
            Permute::DirectScatter => {
                comm.section(m, "permute");
                for pe in 0..p {
                    let mut cursors = comm.read_ranks(m, pe, &hists, &offsets);
                    // The defining access of the original CC-SAS program:
                    // fine-grained writes straight into other processes'
                    // partitions.
                    blocked_permute(
                        m,
                        pe,
                        src,
                        dst,
                        n,
                        p,
                        &mut cursors,
                        0,
                        costs::PERMUTE_CYC_PER_KEY,
                        pass,
                        r,
                    );
                }
            }

            Permute::ContiguousCopy => {
                // Permute into the local staging buffer (scattered but
                // *local*: cheap misses, no remote protocol storm)...
                comm.section(m, "permute");
                let stage = comm.stage();
                for pe in 0..p {
                    let base = part_range(n, p, pe).start;
                    let mut cursors = exclusive_scan(&hists[pe]);
                    blocked_permute(
                        m,
                        pe,
                        src,
                        stage,
                        n,
                        p,
                        &mut cursors,
                        base,
                        costs::PERMUTE_CYC_PER_KEY + costs::BUFFER_EXTRA_CYC_PER_KEY,
                        pass,
                        r,
                    );
                }
                m.barrier();
                // ...then copy each digit chunk to its (remote) destination
                // as one contiguous streamed transfer.
                comm.section(m, "exchange");
                for pe in 0..p {
                    let ranks = comm.read_ranks(m, pe, &hists, &offsets);
                    let base = part_range(n, p, pe).start;
                    let lscan = exclusive_scan(&hists[pe]);
                    for d in 0..bins {
                        let len = hists[pe][d] as usize;
                        if len == 0 {
                            continue;
                        }
                        cpu_copy(
                            m,
                            pe,
                            stage,
                            base + lscan[d] as usize,
                            dst,
                            ranks[d] as usize,
                            len,
                            costs::COPY_CYC_PER_KEY,
                        );
                    }
                }
            }

            Permute::ChunkMessages => {
                comm.section(m, "permute");
                let stage = comm.stage();
                for pe in 0..p {
                    comm.read_ranks(m, pe, &hists, &offsets);
                    let base = part_range(n, p, pe).start;
                    let lscan = exclusive_scan(&hists[pe]);
                    let mut cursors = lscan.clone();
                    blocked_permute(
                        m,
                        pe,
                        src,
                        stage,
                        n,
                        p,
                        &mut cursors,
                        base,
                        costs::PERMUTE_CYC_PER_KEY + costs::BUFFER_EXTRA_CYC_PER_KEY,
                        pass,
                        r,
                    );
                    // Send each contiguously-destined chunk piece.
                    for d in 0..bins {
                        let len = hists[pe][d] as usize;
                        if len == 0 {
                            continue;
                        }
                        let goff = offsets[pe][d] as usize;
                        for piece in split_by_owner(n, p, goff, len) {
                            comm.send(
                                m,
                                pe,
                                stage,
                                base + lscan[d] as usize + piece.src_delta,
                                piece.owner,
                                dst,
                                piece.dst_off,
                                piece.len,
                            );
                        }
                    }
                }
                // Receivers complete all inbound messages.
                comm.section(m, "exchange");
                for pe in 0..p {
                    comm.drain(m, pe);
                }
            }

            Permute::CoalescedMessages => {
                // Local permutation (as in ChunkMessages), but record every
                // piece instead of sending it:
                // all_pieces[src_pe][dst_pe] = pieces bound for dst_pe.
                let stage = comm.stage();
                let recv_buf = comm.recv_buf();
                let mut all_pieces: Vec<Vec<Vec<ChunkPiece>>> = vec![vec![Vec::new(); p]; p];
                for pe in 0..p {
                    comm.read_ranks(m, pe, &hists, &offsets);
                    let base = part_range(n, p, pe).start;
                    let lscan = exclusive_scan(&hists[pe]);
                    let mut cursors = lscan.clone();
                    blocked_permute(
                        m,
                        pe,
                        src,
                        stage,
                        n,
                        p,
                        &mut cursors,
                        base,
                        costs::PERMUTE_CYC_PER_KEY + costs::BUFFER_EXTRA_CYC_PER_KEY,
                        pass,
                        r,
                    );
                    for d in 0..bins {
                        let len = hists[pe][d] as usize;
                        if len == 0 {
                            continue;
                        }
                        let goff = offsets[pe][d] as usize;
                        for mut piece in split_by_owner(n, p, goff, len) {
                            // Remember where in the stage this piece starts.
                            piece.src_delta += base + lscan[d] as usize;
                            all_pieces[pe][piece.owner].push(piece);
                        }
                    }
                }

                // One coalesced message per (src, dst) pair. Because the
                // global offsets grow monotonically with the digit, a
                // sender's chunks for a given destination sit *contiguously*
                // in its digit-ordered stage, so the whole bundle ships as a
                // single transfer — exactly the IS-style scheme.
                let mut recv_cursor: Vec<usize> =
                    (0..p).map(|j| part_range(n, p, j).start).collect();
                let mut landing: Vec<Vec<(usize, usize, usize)>> = vec![Vec::new(); p]; // (buf_off, dst_off, len)
                for pe in 0..p {
                    for j in 0..p {
                        let pieces = &all_pieces[pe][j];
                        let total: usize = pieces.iter().map(|c| c.len).sum();
                        if total == 0 {
                            continue;
                        }
                        let stage_start = pieces[0].src_delta;
                        debug_assert!(
                            pieces.windows(2).all(|w| w[0].src_delta + w[0].len <= w[1].src_delta),
                            "pieces must be in increasing stage order"
                        );
                        comm.send(m, pe, stage, stage_start, j, recv_buf, recv_cursor[j], total);
                        // Record where each chunk landed so the receiver can
                        // place it.
                        let mut buf_off = recv_cursor[j];
                        for piece in pieces {
                            // Account for any gap between pieces in the
                            // stage (keys of interleaved digits destined
                            // elsewhere) — the send shipped a contiguous
                            // run, so re-place per piece from its true stage
                            // position.
                            // ccsort-lints: allow(untimed_outside_setup) --
                            // the comm.send() above shipped and charged the
                            // whole contiguous run; this re-places pieces
                            // of already-paid-for data at their true
                            // receiver offsets.
                            m.copy_untimed(pe, stage, piece.src_delta, recv_buf, buf_off, piece.len);
                            landing[j].push((buf_off, piece.dst_off, piece.len));
                            buf_off += piece.len;
                        }
                        recv_cursor[j] = buf_off;
                    }
                }
                for pe in 0..p {
                    comm.drain(m, pe);
                }
                m.barrier();

                // The cost of coalescing: the receiver reorganizes the
                // chunks from its recv buffer into their true positions.
                for pe in 0..p {
                    for &(buf_off, dst_off, len) in &landing[pe] {
                        cpu_copy(m, pe, recv_buf, buf_off, dst, dst_off, len, costs::COPY_CYC_PER_KEY);
                    }
                }
            }

            Permute::ReceiverGet | Permute::SenderPut => {
                let stage = comm.stage();
                let lscans: Vec<Vec<u32>> = hists.iter().map(|h| exclusive_scan(h)).collect();
                // Local permutation into contiguous staged chunks.
                comm.section(m, "permute");
                for pe in 0..p {
                    comm.read_ranks(m, pe, &hists, &offsets);
                    let base = part_range(n, p, pe).start;
                    let mut cursors = lscans[pe].clone();
                    blocked_permute(
                        m,
                        pe,
                        src,
                        stage,
                        n,
                        p,
                        &mut cursors,
                        base,
                        costs::PERMUTE_CYC_PER_KEY + costs::BUFFER_EXTRA_CYC_PER_KEY,
                        pass,
                        r,
                    );
                }
                m.barrier();
                comm.section(m, "exchange");
                if comm.style() == Permute::ReceiverGet {
                    // Receiver-initiated: each process walks the
                    // (replicated) histogram table and `get`s every chunk
                    // piece that lands in its own partition of the output.
                    for pe in 0..p {
                        let my = part_range(n, p, pe);
                        // Scanning the p*2^r table is real (cheap) work.
                        m.busy_cycles_fixed(pe, 0.5 * (p * bins) as f64);
                        for j in 0..p {
                            let src_base = part_range(n, p, j).start;
                            for d in 0..bins {
                                let len = hists[j][d] as usize;
                                if len == 0 {
                                    continue;
                                }
                                let goff = offsets[j][d] as usize;
                                let s = goff.max(my.start);
                                let e = (goff + len).min(my.end);
                                if s >= e {
                                    continue;
                                }
                                let src_off = src_base + lscans[j][d] as usize + (s - goff);
                                if j == pe {
                                    // Self-chunks move with a local block
                                    // transfer.
                                    comm.get_local(m, pe, dst, s, stage, src_off, e - s);
                                } else {
                                    comm.get(m, pe, dst, s, stage, src_off, e - s);
                                }
                            }
                        }
                    }
                } else {
                    // Sender-initiated: each process walks only its own
                    // histogram row and `put`s each chunk piece into the
                    // owner's partition. Half the table scan of the get
                    // version — but `put` installs the keys in *no* cache,
                    // so the owner pays the misses in the next pass.
                    for pe in 0..p {
                        m.busy_cycles_fixed(pe, 0.5 * bins as f64);
                        let base = part_range(n, p, pe).start;
                        for d in 0..bins {
                            let len = hists[pe][d] as usize;
                            if len == 0 {
                                continue;
                            }
                            let goff = offsets[pe][d] as usize;
                            for piece in split_by_owner(n, p, goff, len) {
                                let src_off = base + lscans[pe][d] as usize + piece.src_delta;
                                if piece.owner == pe {
                                    comm.get_local(m, pe, dst, piece.dst_off, stage, src_off, piece.len);
                                } else {
                                    comm.put(m, pe, stage, src_off, dst, piece.dst_off, piece.len);
                                }
                            }
                        }
                    }
                }
            }
        }
        m.barrier();
        std::mem::swap(&mut src, &mut dst);
    }
    src
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offsets_are_ranked_by_digit_then_process() {
        // p=2, bins=4
        let hists = vec![vec![2, 0, 1, 3], vec![1, 2, 0, 1]];
        let off = global_offsets(&hists);
        // digit 0: total 3 -> starts at 0; pe0 at 0, pe1 at 2.
        assert_eq!(off[0][0], 0);
        assert_eq!(off[1][0], 2);
        // digit 1: starts at 3; pe0 has none -> both at 3, pe1 at 3.
        assert_eq!(off[0][1], 3);
        assert_eq!(off[1][1], 3);
        // digit 2: starts at 5.
        assert_eq!(off[0][2], 5);
        assert_eq!(off[1][2], 6);
        // digit 3: starts at 6.
        assert_eq!(off[0][3], 6);
        assert_eq!(off[1][3], 9);
    }

    #[test]
    fn split_within_one_partition() {
        // n=100, p=4: partitions of 25.
        let pieces = split_by_owner(100, 4, 30, 10);
        assert_eq!(pieces, vec![ChunkPiece { owner: 1, dst_off: 30, src_delta: 0, len: 10 }]);
    }

    #[test]
    fn split_across_boundaries() {
        let pieces = split_by_owner(100, 4, 20, 40);
        assert_eq!(
            pieces,
            vec![
                ChunkPiece { owner: 0, dst_off: 20, src_delta: 0, len: 5 },
                ChunkPiece { owner: 1, dst_off: 25, src_delta: 5, len: 25 },
                ChunkPiece { owner: 2, dst_off: 50, src_delta: 30, len: 10 },
            ]
        );
        // Pieces tile the chunk.
        let total: usize = pieces.iter().map(|c| c.len).sum();
        assert_eq!(total, 40);
    }

    #[test]
    fn split_empty_chunk() {
        assert!(split_by_owner(100, 4, 50, 0).is_empty());
    }

    #[test]
    fn split_with_uneven_partitions() {
        // n=10, p=3: partitions [0,3), [3,6), [6,10).
        let pieces = split_by_owner(10, 3, 2, 6);
        let total: usize = pieces.iter().map(|c| c.len).sum();
        assert_eq!(total, 6);
        assert_eq!(pieces[0].owner, 0);
        assert_eq!(pieces.last().unwrap().owner, 2);
    }
}
