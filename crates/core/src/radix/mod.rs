//! Parallel radix sort under the three programming models (Section 3.1).
//!
//! All four variants share the iterative structure of the SPLASH-2 program:
//! for each `r`-bit digit, (1) every process histograms its assigned keys,
//! (2) local histograms are combined into global ranks, (3) every process
//! permutes its keys into the output array — an all-to-all personalized
//! communication — and the arrays swap roles. They differ exactly where the
//! paper says they differ:
//!
//! | variant | histogram combine | permutation communication |
//! |---|---|---|
//! | [`ccsas`] | shared binary prefix tree | fine-grained scattered remote writes |
//! | [`ccsas_new`] | shared binary prefix tree | local buffering + contiguous remote copies |
//! | [`mpi`] | `MPI_Allgather` + redundant local combine | one message per contiguously-destined chunk |
//! | [`mpi_coalesced`] | `MPI_Allgather` + redundant local combine | one message per destination (IS-style), receiver reorganizes |
//! | [`shmem`] | `shmem_fcollect` + redundant local combine | receiver-initiated `get` per chunk |

pub mod ccsas;
pub mod ccsas_new;
pub mod mpi;
pub mod mpi_coalesced;
pub mod shmem;

use crate::common::{owner_of, part_range};

/// Global destination offsets for every (process, digit) chunk, given all
/// local histograms: `offsets[pe][d]` is where process `pe`'s keys with
/// digit `d` start in the output array.
pub fn global_offsets(hists: &[Vec<u32>]) -> Vec<Vec<u32>> {
    let p = hists.len();
    let bins = hists[0].len();
    let mut totals = vec![0u32; bins];
    for h in hists {
        for (t, &c) in totals.iter_mut().zip(h) {
            *t += c;
        }
    }
    let scan = crate::common::exclusive_scan(&totals);
    let mut out = vec![vec![0u32; bins]; p];
    let mut running = scan;
    for pe in 0..p {
        out[pe].copy_from_slice(&running);
        for (r, &c) in running.iter_mut().zip(&hists[pe]) {
            *r += c;
        }
    }
    out
}

/// A contiguous piece of one process's digit chunk, destined for a single
/// owner's partition of the output array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkPiece {
    /// Receiving process.
    pub owner: usize,
    /// Global element offset in the output array.
    pub dst_off: usize,
    /// Offset of this piece within the source chunk.
    pub src_delta: usize,
    /// Piece length in elements.
    pub len: usize,
}

/// Split the chunk `[goff, goff+len)` of the output array along partition
/// boundaries. Radix chunks usually land inside one partition, but a chunk
/// straddling a boundary becomes one message per owner (the paper's MPI
/// program sends "each contiguously-destined chunk of keys directly as a
/// separate message").
pub fn split_by_owner(n: usize, p: usize, goff: usize, len: usize) -> Vec<ChunkPiece> {
    let mut out = Vec::new();
    let mut start = goff;
    let end = goff + len;
    while start < end {
        let owner = owner_of(n, p, start);
        let part_end = part_range(n, p, owner).end;
        let piece = end.min(part_end) - start;
        out.push(ChunkPiece { owner, dst_off: start, src_delta: start - goff, len: piece });
        start += piece;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offsets_are_ranked_by_digit_then_process() {
        // p=2, bins=4
        let hists = vec![vec![2, 0, 1, 3], vec![1, 2, 0, 1]];
        let off = global_offsets(&hists);
        // digit 0: total 3 -> starts at 0; pe0 at 0, pe1 at 2.
        assert_eq!(off[0][0], 0);
        assert_eq!(off[1][0], 2);
        // digit 1: starts at 3; pe0 has none -> both at 3, pe1 at 3.
        assert_eq!(off[0][1], 3);
        assert_eq!(off[1][1], 3);
        // digit 2: starts at 5.
        assert_eq!(off[0][2], 5);
        assert_eq!(off[1][2], 6);
        // digit 3: starts at 6.
        assert_eq!(off[0][3], 6);
        assert_eq!(off[1][3], 9);
    }

    #[test]
    fn split_within_one_partition() {
        // n=100, p=4: partitions of 25.
        let pieces = split_by_owner(100, 4, 30, 10);
        assert_eq!(pieces, vec![ChunkPiece { owner: 1, dst_off: 30, src_delta: 0, len: 10 }]);
    }

    #[test]
    fn split_across_boundaries() {
        let pieces = split_by_owner(100, 4, 20, 40);
        assert_eq!(
            pieces,
            vec![
                ChunkPiece { owner: 0, dst_off: 20, src_delta: 0, len: 5 },
                ChunkPiece { owner: 1, dst_off: 25, src_delta: 5, len: 25 },
                ChunkPiece { owner: 2, dst_off: 50, src_delta: 30, len: 10 },
            ]
        );
        // Pieces tile the chunk.
        let total: usize = pieces.iter().map(|c| c.len).sum();
        assert_eq!(total, 40);
    }

    #[test]
    fn split_empty_chunk() {
        assert!(split_by_owner(100, 4, 50, 0).is_empty());
    }

    #[test]
    fn split_with_uneven_partitions() {
        // n=10, p=3: partitions [0,3), [3,6), [6,10).
        let pieces = split_by_owner(10, 3, 2, 6);
        let total: usize = pieces.iter().map(|c| c.len).sum();
        assert_eq!(total, 6);
        assert_eq!(pieces[0].owner, 0);
        assert_eq!(pieces.last().unwrap().owner, 2);
    }
}
