//! Instruction-cost constants (cycles) for the simulated sorting programs.
//!
//! These model the BUSY component of the paper's time breakdown: the
//! per-element instruction work of each inner loop, assuming no memory
//! stalls (stalls are produced by the machine model). They were calibrated
//! so that the simulated sequential radix sort of Gauss keys lands in the
//! regime of the paper's Table 1 (~1.6 s for 1M keys at full scale, i.e.
//! on the order of 400 ns/key/pass including memory time on a 195 MHz
//! R10000 running unoptimised SPLASH-2-style code).

/// Histogram loop: load key, shift/mask, load count, add, store.
pub const HIST_CYC_PER_KEY: f64 = 14.0;

/// Permutation loop: load key, shift/mask, load offset, increment, store
/// offset, store key (address generation + write-buffer pressure).
pub const PERMUTE_CYC_PER_KEY: f64 = 26.0;

/// Extra work per key for locally buffered permutation (CC-SAS-NEW, MPI and
/// SHMEM all buffer before communicating): one extra load/store pair plus
/// chunk bookkeeping. This is the "increase in local work or BUSY time (for
/// buffering)" that makes CC-SAS-NEW slower than the original for the 1M
/// data set (Section 4.2.1).
pub const BUFFER_EXTRA_CYC_PER_KEY: f64 = 10.0;

/// Straight copy loops (chunk copy-out, staged-receive copies): an
/// unrolled load/store pair per word.
pub const COPY_CYC_PER_KEY: f64 = 1.0;

/// Per-bin work for scanning histograms / computing offsets.
pub const SCAN_CYC_PER_BIN: f64 = 3.0;

/// Per-(process, bin) entry work when every process redundantly combines
/// all p local histograms after an Allgather (the MPI/SHMEM path).
pub const OFFSET_CYC_PER_ENTRY: f64 = 3.0;

/// Comparison-sort cost per element per log2(elements) — used for sorting
/// sample keys in sample sort.
pub const SORT_CYC_PER_CMP: f64 = 12.0;

/// Per-probe cost of a binary-search step when locating splitter
/// boundaries in a sorted partition.
pub const BSEARCH_CYC_PER_STEP: f64 = 8.0;

/// Per-sample selection cost (strided read bookkeeping).
pub const SELECT_CYC_PER_SAMPLE: f64 = 6.0;

/// The calibrated constants above, packaged for the model-independent
/// [`ccsort_models::comm::Communicator`] layer (which charges scan, offset,
/// splitter-sort and copy work inside its collectives).
pub fn comm_costs() -> ccsort_models::comm::CostModel {
    ccsort_models::comm::CostModel {
        scan_cyc_per_bin: SCAN_CYC_PER_BIN,
        offset_cyc_per_entry: OFFSET_CYC_PER_ENTRY,
        sort_cyc_per_cmp: SORT_CYC_PER_CMP,
        copy_cyc_per_key: COPY_CYC_PER_KEY,
    }
}
