//! The uniprocessor radix sort used as the speedup baseline (Table 1).
//!
//! The paper measures speedups for *both* algorithms against the same
//! sequential radix sorting program (sample sorting on one processor is a
//! single local radix sort anyway). This module runs that program on a
//! one-processor configuration of the simulated machine, so baseline and
//! parallel runs share every machine parameter — including the cache and
//! TLB capacity effects that make large-data-set speedups superlinear.

use ccsort_machine::{Machine, MachineConfig, Placement, TimeBreakdown};

use crate::common::local_radix_sort;
use crate::dist::KEY_BITS;

/// Result of a sequential baseline run.
#[derive(Debug, Clone)]
pub struct SeqResult {
    /// Total simulated time in ns.
    pub time_ns: f64,
    /// BUSY/LMEM/RMEM/SYNC split.
    pub breakdown: TimeBreakdown,
    /// Whether the output was verified sorted.
    pub verified: bool,
}

/// Sort `input` on a single simulated processor with an `r`-bit radix and
/// return the timing. `cfg` must have `n_procs == 1`.
pub fn run_on(cfg: MachineConfig, input: &[u32], r: u32) -> SeqResult {
    assert_eq!(cfg.n_procs, 1, "the sequential baseline runs on one processor");
    let n = input.len();
    let mut m = Machine::new(cfg);
    let a = m.alloc(n, Placement::Node(0), "keys0");
    let b = m.alloc(n, Placement::Node(0), "keys1");
    m.raw_mut(a).copy_from_slice(input);
    let out = local_radix_sort(&mut m, 0, a, b, 0, n, r, KEY_BITS);
    let sorted = m.raw(out);
    let verified = sorted.windows(2).all(|w| w[0] <= w[1]);
    SeqResult { time_ns: m.now(0), breakdown: m.breakdown(0), verified }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{generate, Dist};

    #[test]
    fn baseline_sorts_and_accounts_time() {
        let input = generate(Dist::Gauss, 4096, 1, 8, 0);
        let cfg = MachineConfig::origin2000(1).scaled_down(64);
        let res = run_on(cfg, &input, 8);
        assert!(res.verified);
        assert!(res.time_ns > 0.0);
        assert!(res.breakdown.busy > 0.0);
        assert!(res.breakdown.rmem == 0.0, "one node: no remote memory");
        assert_eq!(res.breakdown.sync, 0.0);
    }

    #[test]
    fn more_keys_take_longer_superlinearly_eventually() {
        let cfg = MachineConfig::origin2000(1).scaled_down(64);
        let t = |n: usize| {
            let input = generate(Dist::Gauss, n, 1, 8, 0);
            run_on(cfg.clone(), &input, 8).time_ns
        };
        let t1 = t(1 << 12);
        let t4 = t(1 << 14);
        assert!(t4 > 3.5 * t1, "4x keys should cost at least ~4x: {t1} -> {t4}");
    }

    #[test]
    fn fewer_passes_with_bigger_radix_help_large_sets() {
        let cfg = MachineConfig::origin2000(1).scaled_down(64);
        let input = generate(Dist::Gauss, 1 << 14, 1, 8, 0);
        let t8 = run_on(cfg.clone(), &input, 8).time_ns; // 4 passes
        let t11 = run_on(cfg, &input, 11).time_ns; // 3 passes
        // Not asserting direction strongly (bin count matters too), only
        // that both verify and are in a sane ratio.
        assert!(t11 < t8 * 1.5 && t8 < t11 * 2.5);
    }
}
