//! Analytic performance prediction — the paper's stated future work.
//!
//! Section 5 closes with: "Future work will include ... developing a
//! formula (based on profiles) to predict performance for each programming
//! model." This module is that formula for parallel radix sort: a
//! closed-form cost model over the same machine parameters the simulator
//! uses, decomposed the same way the paper's breakdowns are (busy, local
//! memory, remote communication, collectives, synchronization).
//!
//! The prediction is deliberately *independent* of the execution-driven
//! simulator — it never runs the program — so comparing the two (see
//! `tests/prediction.rs` and `repro`'s `predict` artefact) checks that the
//! simulated behaviour follows from the machine parameters rather than
//! from incidental implementation detail. Agreement is expected to be
//! loose (the formula ignores cache reuse subtleties and load imbalance)
//! but the *model ordering* at a given size must match.

use ccsort_machine::MachineConfig;
use serde::{Deserialize, Serialize};

use crate::common::n_passes;
use crate::costs;
use crate::dist::KEY_BITS;

/// Programming model to predict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PredictModel {
    Ccsas,
    CcsasNew,
    Mpi,
    Shmem,
}

impl PredictModel {
    pub const ALL: [PredictModel; 4] =
        [PredictModel::Ccsas, PredictModel::CcsasNew, PredictModel::Mpi, PredictModel::Shmem];

    pub fn name(&self) -> &'static str {
        match self {
            PredictModel::Ccsas => "ccsas",
            PredictModel::CcsasNew => "ccsas-new",
            PredictModel::Mpi => "mpi",
            PredictModel::Shmem => "shmem",
        }
    }
}

/// Predicted per-processor time, decomposed like the paper's breakdowns
/// (ns, for the whole sort).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct Prediction {
    pub busy: f64,
    pub local_mem: f64,
    pub remote: f64,
    pub collectives: f64,
    pub sync: f64,
}

impl Prediction {
    pub fn total(&self) -> f64 {
        self.busy + self.local_mem + self.remote + self.collectives + self.sync
    }
}

/// Predict the parallel radix-sort execution time for one model on the
/// machine described by `cfg` (which should already be `scaled_down` the
/// same way the simulation to compare against is).
pub fn predict_radix(cfg: &MachineConfig, model: PredictModel, n: usize, p: usize, r: u32) -> Prediction {
    let passes = n_passes(KEY_BITS, r) as f64;
    let bins = (1usize << r) as f64;
    let keys_pp = (n as f64) / (p as f64);
    let lines_pp = keys_pp * 4.0 / cfg.l2.line as f64;
    let cyc = cfg.cycle_ns;
    let fix = cfg.fixed_cost_div;

    // Average memory latencies.
    let local = cfg.mem_local_ns;
    // Mean over nodes of the remote latency (2 average hops).
    let remote = cfg.mem_local_ns + cfg.remote_base_ns + 2.0 * cfg.hop_ns;

    let mut pr = Prediction::default();

    // ---- per-pass local work common to all models ----
    // Histogram sweep + permutation loop.
    let mut busy_per_key = costs::HIST_CYC_PER_KEY + costs::PERMUTE_CYC_PER_KEY;
    if model != PredictModel::Ccsas {
        busy_per_key += costs::BUFFER_EXTRA_CYC_PER_KEY;
    }
    pr.busy = passes * keys_pp * busy_per_key * cyc;
    // Offset computation: tree-based models scan 2^r bins; collective
    // models redundantly combine p histograms.
    let offset_entries = match model {
        PredictModel::Ccsas | PredictModel::CcsasNew => bins * costs::SCAN_CYC_PER_BIN,
        PredictModel::Mpi | PredictModel::Shmem => p as f64 * bins * costs::OFFSET_CYC_PER_ENTRY,
    };
    pr.busy += passes * offset_entries * cyc / fix;

    // Streamed input reads (histogram + permutation sweeps).
    pr.local_mem = passes * 2.0 * lines_pp * (cfg.read_stall_streamed * local + cfg.l2_hit_ns);

    // TLB cost of the scattered permutation: if the active pages (one per
    // digit segment, plus the input stream) exceed the TLB, nearly every
    // scattered write refills.
    let write_span_bytes = match model {
        // CC-SAS writes across the whole global output array.
        PredictModel::Ccsas => (n as f64) * 4.0,
        // Buffered models write a contiguous local staging partition.
        _ => keys_pp * 4.0,
    };
    // Cursor pages actively touched by the scattered writes: one per page
    // of the written span, capped by the number of digit segments.
    let active_pages = (write_span_bytes / cfg.page_size as f64).min(bins);
    let tlb_miss_frac = if active_pages > cfg.tlb_entries as f64 { 1.0 } else { 0.05 };
    pr.local_mem += passes * keys_pp * tlb_miss_frac * cfg.tlb_miss_ns;

    // Scattered staging writes (local for buffered models).
    if model != PredictModel::Ccsas {
        pr.local_mem += passes * lines_pp * (cfg.write_stall_scattered * local + cfg.l2_hit_ns);
    }

    // ---- communication ----
    let msgs_pp = bins; // one chunk per digit per pass
    let bytes_pp = keys_pp * 4.0;
    match model {
        PredictModel::Ccsas => {
            // Fine-grained remote writes with NACK/retry storms.
            pr.remote = passes * lines_pp * cfg.write_stall_scattered_remote * remote;
        }
        PredictModel::CcsasNew => {
            // Contiguous coherent copy-out: streamed remote writes + local
            // re-read of the staging buffer.
            pr.remote = passes
                * lines_pp
                * (cfg.write_stall_streamed * remote + cfg.read_stall_streamed * local + 2.0 * cfg.l2_hit_ns);
            pr.busy += passes * keys_pp * costs::COPY_CYC_PER_KEY * cyc;
        }
        PredictModel::Mpi => {
            pr.remote = passes
                * (msgs_pp * (cfg.mpi_send_overhead_ns + cfg.mpi_recv_overhead_ns + remote / fix)
                    + bytes_pp / cfg.link_bw_bytes_per_ns);
            // 1-deep mailbox pacing: the receiver services p inbound queues.
            let consume = 3.0 * cfg.mpi_recv_overhead_ns;
            pr.sync += passes * (msgs_pp * consume - bytes_pp / cfg.link_bw_bytes_per_ns).max(0.0) * 0.5;
        }
        PredictModel::Shmem => {
            pr.remote = passes
                * (msgs_pp * (cfg.shmem_overhead_ns + remote / fix) + bytes_pp / cfg.link_bw_bytes_per_ns);
        }
    }

    // ---- histogram combine collectives ----
    let hist_bytes = bins * 4.0 / fix;
    match model {
        PredictModel::Ccsas | PredictModel::CcsasNew => {
            // log2(p) up + down tree levels of bins-sized merges.
            let levels = (p.max(2) as f64).log2().ceil();
            pr.collectives = passes
                * 2.0
                * levels
                * (hist_bytes / cfg.l2.line as f64) // lines per merge
                * (cfg.read_stall_streamed * remote + cfg.write_stall_streamed * local);
        }
        PredictModel::Mpi => {
            pr.collectives = passes
                * (p as f64 - 1.0)
                * (cfg.mpi_send_overhead_ns
                    + cfg.mpi_recv_overhead_ns
                    + remote / fix
                    + hist_bytes / cfg.link_bw_bytes_per_ns);
        }
        PredictModel::Shmem => {
            pr.collectives = passes
                * (p as f64 - 1.0)
                * (cfg.shmem_overhead_ns + remote / fix + hist_bytes / cfg.link_bw_bytes_per_ns);
        }
    }

    // ---- barriers ----
    let levels = (p.max(2) as f64).log2().ceil();
    let barrier = cfg.barrier_base_ns + 2.0 * levels * cfg.barrier_level_ns;
    let barriers_per_pass = match model {
        // Tree accumulation barriers dominate for the CC-SAS programs.
        PredictModel::Ccsas | PredictModel::CcsasNew => 2.0 * levels + 4.0,
        PredictModel::Mpi => 4.0,
        PredictModel::Shmem => 5.0,
    };
    pr.sync += passes * barriers_per_pass * barrier;

    pr
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(p: usize, scale: usize) -> MachineConfig {
        MachineConfig::origin2000(p).scaled_down(scale)
    }

    #[test]
    fn predictions_are_positive_and_finite() {
        for model in PredictModel::ALL {
            let pr = predict_radix(&cfg(64, 16), model, 1 << 20, 64, 8);
            assert!(pr.total().is_finite() && pr.total() > 0.0, "{model:?}");
            assert!(pr.busy > 0.0);
        }
    }

    #[test]
    fn predicts_shmem_beats_ccsas_at_large_sizes() {
        let c = cfg(64, 16);
        let shmem = predict_radix(&c, PredictModel::Shmem, 1 << 22, 64, 8).total();
        let ccsas = predict_radix(&c, PredictModel::Ccsas, 1 << 22, 64, 8).total();
        assert!(shmem < ccsas, "shmem {shmem} vs ccsas {ccsas}");
    }

    #[test]
    fn predicts_ccsas_wins_small_sizes() {
        let c = cfg(64, 1);
        let shmem = predict_radix(&c, PredictModel::Shmem, 1 << 20, 64, 8).total();
        let ccsas = predict_radix(&c, PredictModel::Ccsas, 1 << 20, 64, 8).total();
        let mpi = predict_radix(&c, PredictModel::Mpi, 1 << 20, 64, 8).total();
        assert!(ccsas < mpi, "ccsas {ccsas} must beat mpi {mpi} at 1M");
        let _ = shmem;
    }

    #[test]
    fn more_keys_cost_more() {
        let c = cfg(32, 16);
        for model in PredictModel::ALL {
            let small = predict_radix(&c, model, 1 << 18, 32, 8).total();
            let large = predict_radix(&c, model, 1 << 21, 32, 8).total();
            assert!(large > 2.0 * small, "{model:?}: {small} -> {large}");
        }
    }
}
