//! Shared building blocks of the simulated sorting programs: digit
//! arithmetic, partitioning, timed local histogram and the timed local
//! (uniprocessor) radix sort used as a subroutine by sample sort and as the
//! sequential baseline.

use ccsort_machine::{ArrayId, Machine};

use crate::costs;
use crate::dist::KEY_BITS;

/// Scratch-block size (elements) for streamed sweeps: large enough to
/// amortise per-block overhead, small enough to stay cache-resident.
pub const BLOCK: usize = 4096;

/// Number of radix passes needed to sort keys of `max_bits` significant
/// bits with an `r`-bit digit.
pub fn n_passes(max_bits: u32, r: u32) -> u32 {
    assert!(r >= 1);
    max_bits.max(1).div_ceil(r)
}

/// Default pass count for full-range 31-bit keys.
pub fn default_passes(r: u32) -> u32 {
    n_passes(KEY_BITS, r)
}

/// The `pass`-th `r`-bit digit of `key`, counting from the least
/// significant bit.
#[inline]
pub fn digit(key: u32, pass: u32, r: u32) -> usize {
    ((key >> (pass * r)) & ((1u32 << r) - 1)) as usize
}

/// Number of significant bits in the largest of `keys` (0 for all-zero
/// input, where a single pass suffices).
pub fn max_bits(keys: &[u32]) -> u32 {
    let max = keys.iter().copied().max().unwrap_or(0);
    32 - max.leading_zeros()
}

/// Half-open element range of process `i`'s partition of an `n`-element
/// array split over `p` processes.
#[inline]
pub fn part_range(n: usize, p: usize, i: usize) -> std::ops::Range<usize> {
    (i * n / p)..((i + 1) * n / p)
}

/// Owning process of global element index `idx` under [`part_range`]
/// partitioning.
#[inline]
pub fn owner_of(n: usize, p: usize, idx: usize) -> usize {
    // Inverse of part_range: smallest i with (i+1)*n/p > idx.
    let mut i = (idx * p) / n.max(1);
    while i + 1 < p && part_range(n, p, i + 1).start <= idx {
        i += 1;
    }
    while i > 0 && part_range(n, p, i).start > idx {
        i -= 1;
    }
    i
}

/// Exclusive prefix scan.
pub fn exclusive_scan(v: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(v.len());
    let mut acc = 0u32;
    for &x in v {
        out.push(acc);
        acc = acc.wrapping_add(x);
    }
    out
}

/// Timed histogram of the `pass`-th digit over `arr[range]`, executed by
/// `pe` as a streamed sweep. Returns the (host-side private) histogram.
pub fn local_histogram(
    m: &mut Machine,
    pe: usize,
    arr: ArrayId,
    range: std::ops::Range<usize>,
    pass: u32,
    r: u32,
) -> Vec<u32> {
    let bins = 1usize << r;
    let mut hist = vec![0u32; bins];
    let mut buf = vec![0u32; BLOCK];
    let mut off = range.start;
    while off < range.end {
        let len = BLOCK.min(range.end - off);
        buf.truncate(len);
        m.read_run(pe, arr, off, &mut buf[..len]);
        m.busy_cycles(pe, costs::HIST_CYC_PER_KEY * len as f64);
        for &k in &buf[..len] {
            hist[digit(k, pass, r)] += 1;
        }
        buf.resize(BLOCK, 0);
        off += len;
    }
    hist
}

/// Timed local LSD radix sort of `arr_a[off..off+len]`, using
/// `arr_b[off..off+len]` as the toggle buffer — the local sorts inside
/// sample sort and the uniprocessor baseline. Returns the array holding the
/// sorted result (`arr_a` or `arr_b`).
///
/// Each pass is a streamed histogram sweep, a (cheap, in-cache) offset scan
/// and a permutation whose writes are *scattered* within the local range —
/// exactly the access pattern whose TLB and cache behaviour drives the
/// paper's large-data-set effects.
#[allow(clippy::too_many_arguments)]
pub fn local_radix_sort(
    m: &mut Machine,
    pe: usize,
    arr_a: ArrayId,
    arr_b: ArrayId,
    off: usize,
    len: usize,
    r: u32,
    key_bits: u32,
) -> ArrayId {
    if len == 0 {
        return arr_a;
    }
    let passes = n_passes(key_bits, r);
    let bins = 1usize << r;
    let (mut src, mut dst) = (arr_a, arr_b);
    let mut buf = vec![0u32; BLOCK];
    let mut dests = vec![0usize; BLOCK];
    for pass in 0..passes {
        let hist = local_histogram(m, pe, src, off..off + len, pass, r);
        m.busy_cycles(pe, costs::SCAN_CYC_PER_BIN * bins as f64);
        let mut offsets = exclusive_scan(&hist);
        let mut pos = off;
        while pos < off + len {
            let blk = BLOCK.min(off + len - pos);
            m.read_run(pe, src, pos, &mut buf[..blk]);
            m.busy_cycles(pe, costs::PERMUTE_CYC_PER_KEY * blk as f64);
            for i in 0..blk {
                let d = digit(buf[i], pass, r);
                dests[i] = off + offsets[d] as usize;
                offsets[d] += 1;
            }
            m.scatter_run(pe, dst, &dests[..blk], &buf[..blk]);
            pos += blk;
        }
        std::mem::swap(&mut src, &mut dst);
    }
    src
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccsort_machine::{MachineConfig, Placement};

    #[test]
    fn pass_counts_match_paper() {
        // Section 4.2.3: radix 7 -> 5 passes, radix 8 -> 4, radix 11/12 -> 3.
        assert_eq!(default_passes(7), 5);
        assert_eq!(default_passes(8), 4);
        assert_eq!(default_passes(11), 3);
        assert_eq!(default_passes(12), 3);
        assert_eq!(default_passes(6), 6);
        assert_eq!(n_passes(0, 8), 1);
    }

    #[test]
    fn digit_extraction() {
        let k = 0b101_1100_0011u32;
        assert_eq!(digit(k, 0, 4), 0b0011);
        assert_eq!(digit(k, 1, 4), 0b1100);
        assert_eq!(digit(k, 2, 4), 0b101);
        assert_eq!(digit(u32::MAX, 0, 11), (1 << 11) - 1);
    }

    #[test]
    fn partitions_cover_exactly() {
        for &(n, p) in &[(100usize, 7usize), (64, 64), (1 << 16, 48), (13, 13)] {
            let mut total = 0;
            for i in 0..p {
                let range = part_range(n, p, i);
                total += range.len();
                if i > 0 {
                    assert_eq!(part_range(n, p, i - 1).end, range.start);
                }
                for idx in range.clone() {
                    assert_eq!(owner_of(n, p, idx), i, "n={n} p={p} idx={idx}");
                }
            }
            assert_eq!(total, n);
        }
    }

    #[test]
    fn scan_is_exclusive() {
        assert_eq!(exclusive_scan(&[3, 0, 2, 5]), vec![0, 3, 3, 5]);
        assert_eq!(exclusive_scan(&[]), Vec::<u32>::new());
    }

    #[test]
    fn max_bits_examples() {
        assert_eq!(max_bits(&[0]), 0);
        assert_eq!(max_bits(&[1]), 1);
        assert_eq!(max_bits(&[255]), 8);
        assert_eq!(max_bits(&[1 << 30]), 31);
    }

    #[test]
    fn histogram_counts_digits() {
        let mut m = Machine::new(MachineConfig::origin2000(1).scaled_down(16));
        let a = m.alloc(256, Placement::Node(0), "a");
        for i in 0..256 {
            m.raw_mut(a)[i] = (i % 16) as u32;
        }
        let h = local_histogram(&mut m, 0, a, 0..256, 0, 4);
        assert_eq!(h, vec![16u32; 16]);
        // Second digit of all keys is 0.
        let h2 = local_histogram(&mut m, 0, a, 0..256, 1, 4);
        assert_eq!(h2[0], 256);
        assert!(m.breakdown(0).busy > 0.0);
    }

    #[test]
    fn local_radix_sorts() {
        let mut m = Machine::new(MachineConfig::origin2000(1).scaled_down(16));
        let n = 5000;
        let a = m.alloc(n, Placement::Node(0), "a");
        let b = m.alloc(n, Placement::Node(0), "b");
        // Deterministic scrambled input.
        let input: Vec<u32> = (0..n).map(|i| ((i * 2654435761usize) % (1 << 31)) as u32).collect();
        m.raw_mut(a).copy_from_slice(&input);
        let result = local_radix_sort(&mut m, 0, a, b, 0, n, 8, 31);
        let mut expect = input.clone();
        expect.sort_unstable();
        assert_eq!(m.raw(result), &expect[..]);
    }

    #[test]
    fn local_radix_respects_subrange() {
        let mut m = Machine::new(MachineConfig::origin2000(1).scaled_down(16));
        let a = m.alloc(100, Placement::Node(0), "a");
        let b = m.alloc(100, Placement::Node(0), "b");
        for i in 0..100 {
            m.raw_mut(a)[i] = (99 - i) as u32;
        }
        let result = local_radix_sort(&mut m, 0, a, b, 10, 50, 4, 7);
        // [10, 60) sorted, rest of `a` untouched.
        let vals: Vec<u32> = m.raw(result)[10..60].to_vec();
        let mut expect: Vec<u32> = (0..100u32).map(|i| 99 - i).collect::<Vec<_>>()[10..60].to_vec();
        expect.sort_unstable();
        assert_eq!(vals, expect);
        assert_eq!(m.raw(a)[0], 99);
        assert_eq!(m.raw(a)[99], 0);
    }

    #[test]
    fn odd_pass_count_lands_in_b() {
        let mut m = Machine::new(MachineConfig::origin2000(1).scaled_down(16));
        let a = m.alloc(64, Placement::Node(0), "a");
        let b = m.alloc(64, Placement::Node(0), "b");
        let result = local_radix_sort(&mut m, 0, a, b, 0, 64, 11, 31); // 3 passes
        assert_eq!(result, b);
        let r2 = local_radix_sort(&mut m, 0, a, b, 0, 64, 8, 31); // 4 passes
        assert_eq!(r2, a);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn owner_of_inverts_part_range(n in 1usize..10_000, p in 1usize..64, idx in 0usize..10_000) {
            prop_assume!(idx < n && p <= n);
            let owner = owner_of(n, p, idx);
            let range = part_range(n, p, owner);
            prop_assert!(range.contains(&idx), "idx {idx} not in {range:?} of owner {owner}");
        }

        #[test]
        fn exclusive_scan_matches_definition(v in proptest::collection::vec(0u32..1000, 0..200)) {
            let scan = exclusive_scan(&v);
            let mut acc = 0u32;
            for (i, &x) in v.iter().enumerate() {
                prop_assert_eq!(scan[i], acc);
                acc += x;
            }
        }

        #[test]
        fn digits_reassemble_the_key(key in any::<u32>(), r in 1u32..=16) {
            let passes = n_passes(32, r);
            let mut rebuilt: u64 = 0;
            for pass in 0..passes {
                rebuilt |= (digit(key, pass, r) as u64) << (pass * r);
            }
            prop_assert_eq!(rebuilt as u32, key);
        }
    }
}
