//! Per-processor time accounting and protocol event counters.
//!
//! The paper divides per-processor execution time into four categories
//! (Section 4): BUSY (instruction execution assuming no stalls), LMEM
//! (stalls on local memory), RMEM (stalls communicating remote data) and
//! SYNC (time at synchronization events). [`TimeBreakdown`] mirrors that
//! split exactly so the Figure 4 / Figure 8 breakdowns can be read straight
//! out of the simulator.

use serde::{Deserialize, Serialize};

/// Which bucket a charge of simulated time falls into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Bucket {
    /// CPU busy executing instructions.
    Busy,
    /// Stalled on the local memory system (cache misses to local memory, TLB).
    Lmem,
    /// Stalled communicating remote data.
    Rmem,
    /// Waiting at synchronization events (barriers, message rendezvous).
    Sync,
}

/// Per-processor virtual time, split by bucket. All values in nanoseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TimeBreakdown {
    pub busy: f64,
    pub lmem: f64,
    pub rmem: f64,
    pub sync: f64,
}

impl TimeBreakdown {
    /// Total virtual time.
    pub fn total(&self) -> f64 {
        self.busy + self.lmem + self.rmem + self.sync
    }

    /// Combined memory stall time (the paper reports MEM = LMEM + RMEM for
    /// CC-SAS where the tools cannot separate them).
    pub fn mem(&self) -> f64 {
        self.lmem + self.rmem
    }

    /// Add `ns` to the given bucket.
    pub fn charge(&mut self, bucket: Bucket, ns: f64) {
        debug_assert!(ns >= 0.0, "negative time charge: {ns}");
        match bucket {
            Bucket::Busy => self.busy += ns,
            Bucket::Lmem => self.lmem += ns,
            Bucket::Rmem => self.rmem += ns,
            Bucket::Sync => self.sync += ns,
        }
    }

    /// Element-wise sum.
    pub fn add(&mut self, other: &TimeBreakdown) {
        self.busy += other.busy;
        self.lmem += other.lmem;
        self.rmem += other.rmem;
        self.sync += other.sync;
    }
}

/// Counters for memory-system and coherence-protocol events, per processor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventCounters {
    /// Line touches that hit in the first-level cache (free).
    pub l1_hits: u64,
    /// Line touches that missed L1 but hit in the L2 cache.
    pub cache_hits: u64,
    /// Line touches that missed and were satisfied from local memory.
    pub misses_local: u64,
    /// Line touches that missed and were satisfied from a remote node.
    pub misses_remote: u64,
    /// Misses that required a cache-to-cache intervention.
    pub interventions: u64,
    /// Invalidation messages sent on our behalf (writes to shared lines).
    pub invalidations: u64,
    /// Ownership upgrades (write hit on a Shared line).
    pub upgrades: u64,
    /// Update messages multicast to sharers (Dragon-style update protocol;
    /// always zero under the default invalidate protocol).
    pub updates: u64,
    /// Dirty lines written back on eviction.
    pub writebacks: u64,
    /// TLB misses.
    pub tlb_misses: u64,
    /// Explicit messages sent (MPI sends, SHMEM puts/gets).
    pub messages: u64,
    /// Bytes moved by explicit messages.
    pub message_bytes: u64,
}

impl EventCounters {
    /// Total line touches that reached the cache hierarchy.
    pub fn touches(&self) -> u64 {
        self.l1_hits + self.cache_hits + self.misses_local + self.misses_remote
    }

    /// Total misses.
    pub fn misses(&self) -> u64 {
        self.misses_local + self.misses_remote
    }

    /// Element-wise sum.
    pub fn add(&mut self, o: &EventCounters) {
        self.l1_hits += o.l1_hits;
        self.cache_hits += o.cache_hits;
        self.misses_local += o.misses_local;
        self.misses_remote += o.misses_remote;
        self.interventions += o.interventions;
        self.invalidations += o.invalidations;
        self.upgrades += o.upgrades;
        self.updates += o.updates;
        self.writebacks += o.writebacks;
        self.tlb_misses += o.tlb_misses;
        self.messages += o.messages;
        self.message_bytes += o.message_bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_routes_to_bucket() {
        let mut t = TimeBreakdown::default();
        t.charge(Bucket::Busy, 10.0);
        t.charge(Bucket::Lmem, 20.0);
        t.charge(Bucket::Rmem, 30.0);
        t.charge(Bucket::Sync, 40.0);
        assert_eq!(t.busy, 10.0);
        assert_eq!(t.lmem, 20.0);
        assert_eq!(t.rmem, 30.0);
        assert_eq!(t.sync, 40.0);
        assert_eq!(t.total(), 100.0);
        assert_eq!(t.mem(), 50.0);
    }

    #[test]
    fn add_accumulates() {
        let mut a = TimeBreakdown { busy: 1.0, lmem: 2.0, rmem: 3.0, sync: 4.0 };
        let b = a;
        a.add(&b);
        assert_eq!(a.total(), 20.0);

        let mut c = EventCounters::default();
        let d = EventCounters { cache_hits: 5, misses_local: 1, misses_remote: 2, ..Default::default() };
        c.add(&d);
        c.add(&d);
        assert_eq!(c.cache_hits, 10);
        assert_eq!(c.touches(), 16);
        assert_eq!(c.misses(), 6);
    }
}
