//! Simulated physical address space: array allocation, page placement and
//! real backing stores.
//!
//! Arrays live in one linear simulated address space so cache lines and
//! pages have global identities. Every array carries a real `Vec<u32>`
//! backing store — the sorting algorithms running on the simulator really
//! sort, and tests verify the output, so the simulator cannot "cheat" by
//! only accounting time.
//!
//! Placement policies mirror what the paper's programs do: partitioned
//! arrays give each process's partition a home on that process's node
//! (first-touch behaviour of the SPLASH-2/SHMEM programs), interleaved
//! arrays spread pages round-robin, and node-local arrays model private or
//! master-allocated data.

use crate::config::MachineConfig;
use crate::topology::Topology;

/// Identifier of a simulated array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArrayId(pub(crate) usize);

/// Where the pages of an array are homed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// All pages on one node.
    Node(usize),
    /// Array split into `parts` equal contiguous partitions; partition `i`
    /// is homed on the node of processor `i` (symmetric / first-touch
    /// layout). `parts` is the number of processes.
    Partitioned { parts: usize },
    /// Pages distributed round-robin across all nodes.
    Interleaved,
}

#[derive(Debug, Clone)]
pub(crate) struct SimArray {
    pub base: u64,
    pub data: Vec<u32>,
    pub name: &'static str,
}

/// The linear simulated address space holding all arrays.
#[derive(Debug, Clone)]
pub struct AddressSpace {
    arrays: Vec<SimArray>,
    /// Home node per page, indexed by page number.
    page_homes: Vec<u16>,
    next: u64,
    page_size: u64,
    line_shift: u32,
    page_shift: u32,
}

impl AddressSpace {
    pub fn new(cfg: &MachineConfig) -> Self {
        AddressSpace {
            arrays: Vec::new(),
            page_homes: Vec::new(),
            next: 0,
            page_size: cfg.page_size as u64,
            line_shift: cfg.line_shift(),
            page_shift: cfg.page_shift(),
        }
    }

    /// Allocate `len` `u32` elements with the given placement. Allocation is
    /// page-aligned so arrays never share a page (and therefore never share
    /// a cache line — the paper reports false sharing is negligible for
    /// these programs, and page alignment of partitions keeps it that way).
    pub fn alloc(
        &mut self,
        len: usize,
        placement: Placement,
        name: &'static str,
        topo: &Topology,
    ) -> ArrayId {
        let base = self.next;
        let bytes = (len.max(1) * 4) as u64;
        let pages = bytes.div_ceil(self.page_size);
        self.next += pages * self.page_size;

        let first_page = base >> self.page_shift;
        let n_nodes = topo.n_nodes();
        for p in 0..pages {
            let home = match placement {
                Placement::Node(n) => {
                    assert!(n < n_nodes, "placement node {n} out of range");
                    n
                }
                Placement::Interleaved => ((first_page + p) as usize) % n_nodes,
                Placement::Partitioned { parts } => {
                    // Which partition does the *start* of this page fall in?
                    let elems_per_part = len.div_ceil(parts);
                    let byte_off = p * self.page_size;
                    let elem = (byte_off / 4) as usize;
                    let part = (elem / elems_per_part.max(1)).min(parts - 1);
                    topo.node_of(part)
                }
            };
            debug_assert_eq!(self.page_homes.len() as u64, first_page + p);
            self.page_homes.push(home as u16);
        }

        let id = ArrayId(self.arrays.len());
        self.arrays.push(SimArray { base, data: vec![0; len], name });
        id
    }

    /// Simulated byte address of element `idx` of `arr`.
    #[inline]
    pub fn addr_of(&self, arr: ArrayId, idx: usize) -> u64 {
        debug_assert!(idx < self.arrays[arr.0].data.len(), "index {idx} out of bounds for {}", self.arrays[arr.0].name);
        self.arrays[arr.0].base + (idx as u64) * 4
    }

    /// Global line index of a byte address.
    #[inline]
    pub fn line_of(&self, addr: u64) -> u64 {
        addr >> self.line_shift
    }

    /// Page number of a byte address.
    #[inline]
    pub fn page_of(&self, addr: u64) -> u64 {
        addr >> self.page_shift
    }

    /// Home node of the page containing `addr`.
    #[inline]
    pub fn home_of(&self, addr: u64) -> usize {
        self.page_homes[(addr >> self.page_shift) as usize] as usize
    }

    /// Home node of the page containing a line (lines never span pages).
    #[inline]
    pub fn home_of_line(&self, line: u64) -> usize {
        self.page_homes[((line << self.line_shift) >> self.page_shift) as usize] as usize
    }

    /// Total number of allocated lines (sizes the directory).
    pub fn total_lines(&self) -> u64 {
        self.next >> self.line_shift
    }

    /// Element count of an array.
    #[inline]
    pub fn len(&self, arr: ArrayId) -> usize {
        self.arrays[arr.0].data.len()
    }

    /// Program-visible name of an array (as passed to [`AddressSpace::alloc`]).
    #[inline]
    pub fn name(&self, arr: ArrayId) -> &'static str {
        self.arrays[arr.0].name
    }

    /// True if the array has no elements.
    pub fn is_empty(&self, arr: ArrayId) -> bool {
        self.len(arr) == 0
    }

    #[inline]
    pub fn get(&self, arr: ArrayId, idx: usize) -> u32 {
        self.arrays[arr.0].data[idx]
    }

    #[inline]
    pub fn set(&mut self, arr: ArrayId, idx: usize, v: u32) {
        self.arrays[arr.0].data[idx] = v;
    }

    /// Borrow a slice of an array's backing store.
    #[inline]
    pub fn slice(&self, arr: ArrayId, range: std::ops::Range<usize>) -> &[u32] {
        &self.arrays[arr.0].data[range]
    }

    /// Mutably borrow a slice of an array's backing store.
    #[inline]
    pub fn slice_mut(&mut self, arr: ArrayId, range: std::ops::Range<usize>) -> &mut [u32] {
        &mut self.arrays[arr.0].data[range]
    }

    /// Copy between two arrays (or within one) without any time accounting;
    /// used by DMA primitives which charge time separately.
    pub fn copy(
        &mut self,
        src: ArrayId,
        src_off: usize,
        dst: ArrayId,
        dst_off: usize,
        len: usize,
    ) {
        if src.0 == dst.0 {
            let a = &mut self.arrays[src.0].data;
            a.copy_within(src_off..src_off + len, dst_off);
        } else {
            // Split borrows: indices differ.
            let (lo, hi, flip) = if src.0 < dst.0 { (src.0, dst.0, false) } else { (dst.0, src.0, true) };
            let (left, right) = self.arrays.split_at_mut(hi);
            let (a, b) = (&mut left[lo].data, &mut right[0].data);
            if flip {
                a[dst_off..dst_off + len].copy_from_slice(&b[src_off..src_off + len]);
            } else {
                b[dst_off..dst_off + len].copy_from_slice(&a[src_off..src_off + len]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;

    fn space() -> (AddressSpace, Topology) {
        let cfg = MachineConfig::origin2000(64);
        (AddressSpace::new(&cfg), Topology::new(&cfg))
    }

    #[test]
    fn allocations_are_page_aligned_and_disjoint() {
        let (mut s, t) = space();
        let a = s.alloc(100, Placement::Node(0), "a", &t);
        let b = s.alloc(100, Placement::Node(1), "b", &t);
        assert_eq!(s.addr_of(a, 0) % 65536, 0);
        assert_eq!(s.addr_of(b, 0) % 65536, 0);
        assert!(s.addr_of(b, 0) >= s.addr_of(a, 99) + 4);
        assert_eq!(s.home_of(s.addr_of(a, 0)), 0);
        assert_eq!(s.home_of(s.addr_of(b, 0)), 1);
    }

    #[test]
    fn partitioned_homes_follow_processes() {
        let (mut s, t) = space();
        // 64 partitions of 16K elements = 64 KB each = one page each.
        let n = 64 * 16384;
        let a = s.alloc(n, Placement::Partitioned { parts: 64 }, "keys", &t);
        for pe in 0..64usize {
            let first = pe * 16384;
            let addr = s.addr_of(a, first);
            assert_eq!(s.home_of(addr), pe / 2, "partition {pe}");
        }
    }

    #[test]
    fn interleaved_spreads_pages() {
        let (mut s, t) = space();
        let elems_per_page = 65536 / 4;
        let a = s.alloc(elems_per_page * 8, Placement::Interleaved, "x", &t);
        let mut homes = std::collections::HashSet::new();
        for p in 0..8 {
            homes.insert(s.home_of(s.addr_of(a, p * elems_per_page)));
        }
        assert_eq!(homes.len(), 8);
    }

    #[test]
    fn data_roundtrip_and_copy() {
        let (mut s, t) = space();
        let a = s.alloc(16, Placement::Node(0), "a", &t);
        let b = s.alloc(16, Placement::Node(0), "b", &t);
        for i in 0..16 {
            s.set(a, i, (i * i) as u32);
        }
        s.copy(a, 4, b, 0, 8);
        assert_eq!(s.get(b, 0), 16);
        assert_eq!(s.get(b, 7), 121);
        // Overlapping copy within one array.
        s.copy(a, 0, a, 8, 8);
        assert_eq!(s.get(a, 8), 0);
        assert_eq!(s.get(a, 15), 49);
        // Reversed direction across arrays.
        s.copy(b, 0, a, 0, 4);
        assert_eq!(s.get(a, 0), 16);
    }

    #[test]
    fn lines_and_pages() {
        let (mut s, t) = space();
        let a = s.alloc(1024, Placement::Node(3), "a", &t);
        let addr = s.addr_of(a, 32); // 128 bytes in -> line 1 of the array
        assert_eq!(s.line_of(addr), s.line_of(s.addr_of(a, 0)) + 1);
        assert_eq!(s.home_of_line(s.line_of(addr)), 3);
        assert!(s.total_lines() >= 512);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::config::MachineConfig;
    use proptest::prelude::*;

    proptest! {
        /// Every element of every allocation has a well-defined home node
        /// and a line/page consistent with its address.
        #[test]
        fn allocation_geometry_is_consistent(
            lens in proptest::collection::vec(1usize..5000, 1..6),
            parts in 1usize..16,
        ) {
            let cfg = MachineConfig::origin2000(16);
            let topo = Topology::new(&cfg);
            let mut s = AddressSpace::new(&cfg);
            let ids: Vec<ArrayId> = lens
                .iter()
                .enumerate()
                .map(|(i, &len)| {
                    let placement = match i % 3 {
                        0 => Placement::Node(i % topo.n_nodes()),
                        1 => Placement::Interleaved,
                        _ => Placement::Partitioned { parts },
                    };
                    s.alloc(len, placement, "arr", &topo)
                })
                .collect();
            for (id, &len) in ids.iter().zip(&lens) {
                for idx in [0, len / 2, len - 1] {
                    let addr = s.addr_of(*id, idx);
                    let line = s.line_of(addr);
                    prop_assert_eq!(s.home_of(addr), s.home_of_line(line));
                    prop_assert!(s.home_of(addr) < topo.n_nodes());
                    prop_assert!(line < s.total_lines());
                    prop_assert_eq!(s.page_of(addr), addr >> cfg.page_shift());
                }
            }
            // Arrays never overlap: last address of one < first of the next.
            for w in ids.windows(2) {
                let (a, b) = (w[0], w[1]);
                prop_assert!(s.addr_of(a, s.len(a) - 1) < s.addr_of(b, 0));
            }
        }
    }
}
