//! FastTrack-style happens-before data-race detector for simulated
//! programs.
//!
//! The simulator executes bulk-synchronously — processors run one at a time
//! between barriers — so a program that is missing a synchronization edge
//! still produces deterministic, often *correct-looking* output, while its
//! BUSY/LMEM/RMEM/SYNC breakdowns silently stop corresponding to any legal
//! parallel execution. This module makes the synchronization discipline
//! itself machine-checked: every timed access is checked against a
//! happens-before order built from the programs' actual sync operations.
//!
//! The algorithm is FastTrack (Flanagan & Freund, PLDI 2009) adapted to the
//! machine's sync vocabulary:
//!
//! * each PE carries a vector clock `vc[pe]`, incremented at sync points;
//! * each array element carries an epoch-compressed last-writer `(clock,
//!   pe)` and last-reader state, escalated to a full read vector clock only
//!   when reads are genuinely concurrent (the common same-epoch and
//!   ordered-read cases stay O(1));
//! * [`RaceDetector::barrier`] joins all clocks (everything before the
//!   barrier happens-before everything after), [`RaceDetector::barrier_subset`]
//!   joins a subset, and release/acquire tokens
//!   ([`RaceDetector::release`]/[`RaceDetector::acquire`]) carry the edge a
//!   completed message send creates from sender to receiver.
//!
//! Granularity is the array *element*, not the cache line: the detector
//! reports program-level races, and element granularity cannot produce the
//! false-sharing false positives a line-granular tracker would (two PEs
//! legitimately writing disjoint elements of one line).
//!
//! Deliberate non-edges: `Machine::wait_until` and phase resolution
//! (`Machine::resolve_phase`) order *virtual time*, not memory — a program
//! that relies on them for data transfer is exactly the kind of bug this
//! detector exists to catch. The message-completion edge the MPI runtime
//! really does provide is modelled explicitly with release/acquire tokens.

// BTreeSet, not HashSet: the report-dedup key set is insert-only today,
// but everything the detector touches feeds deterministic, replayable
// artefacts; deterministic-by-type removes the footgun outright
// (`nondeterministic_iteration` lint).
use std::collections::BTreeSet;
use std::fmt;

/// Cap on fully-recorded reports; beyond this only a count is kept.
pub const MAX_REPORTS: usize = 64;

/// How two unordered accesses conflicted.
///
/// `Ord` so report-class keys live in a deterministic `BTreeSet`
/// (`nondeterministic_iteration` lint).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RaceKind {
    /// Two writes with no happens-before edge between them.
    WriteWrite,
    /// A write, then a read not ordered after it.
    WriteThenRead,
    /// A read, then a write not ordered after it.
    ReadThenWrite,
}

impl RaceKind {
    fn label(self) -> &'static str {
        match self {
            RaceKind::WriteWrite => "write-write",
            RaceKind::WriteThenRead => "write-read",
            RaceKind::ReadThenWrite => "read-write",
        }
    }
}

/// One detected data race. `prev_pe` made the earlier conflicting access,
/// `pe` the current one; `section` is the program's `section()` label at
/// detection time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceReport {
    pub kind: RaceKind,
    pub prev_pe: usize,
    pub pe: usize,
    pub array: &'static str,
    pub index: usize,
    pub section: &'static str,
}

impl fmt::Display for RaceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "data race ({}) on {}[{}]: pe {} then pe {} with no happens-before edge, in section {:?}",
            self.kind.label(),
            self.array,
            self.index,
            self.prev_pe,
            self.pe,
            self.section
        )
    }
}

/// Epoch: `(clock, pe)` compressed into the common FastTrack representation.
/// `clk == 0` is the bottom element (no access recorded).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Epoch {
    clk: u32,
    pe: u32,
}

#[derive(Debug, Clone, Default)]
struct VarState {
    w: Epoch,
    /// Last read epoch; meaningful only while `rvc` is `None`.
    r: Epoch,
    /// Escalated read state: per-PE clock of the last read, used once two
    /// concurrent reads coexist.
    rvc: Option<Box<[u32]>>,
}

/// A release token: snapshot of the sender's vector clock at the moment a
/// message's data became visible. Passing it to [`RaceDetector::acquire`]
/// (via [`crate::Machine::hb_acquire`]) installs the sender→receiver edge.
/// The payload is `None` when the detector is disabled, making the token
/// free to create and carry on the hot path.
#[derive(Debug, Clone, Default)]
pub struct MsgToken(pub(crate) Option<Box<[u32]>>);

/// The detector. Owned by [`crate::Machine`] when
/// `MachineConfig::race_detector` (or [`crate::Machine::set_race_detector`])
/// turns it on; all methods are driven from the machine's access and sync
/// paths.
#[derive(Debug, Clone)]
pub struct RaceDetector {
    p: usize,
    vc: Vec<Vec<u32>>,
    /// Per-array, per-element FastTrack state, indexed by `ArrayId.0`.
    /// Arrays are registered lazily on first access.
    vars: Vec<Vec<VarState>>,
    reports: Vec<RaceReport>,
    /// One report per (kind, prev_pe, pe, array) is recorded in full; the
    /// rest of that class only counts into `suppressed` (a racing loop
    /// would otherwise flood the output with one report per element).
    seen: BTreeSet<(RaceKind, usize, usize, usize)>,
    suppressed: u64,
    /// Global barriers observed so far (for fault injection).
    barriers_seen: usize,
    /// When `Some(k)`, the `k`-th subsequent global barrier (1-based) skips
    /// its happens-before join — the timing side is untouched, so the run's
    /// measurements and output are identical; only the detector sees the
    /// missing edge. Mirrors `Machine::inject_stale_sharer`: exists so tests
    /// can prove the detector fires on a planted missing-barrier bug.
    inject_skip_barrier: Option<usize>,
    /// Use the bulk group-at-a-time range paths (the default). Off, every
    /// range access runs the original scalar per-element FastTrack loop with
    /// eager full-array state allocation — the pre-optimization cost model,
    /// kept selectable so `MachineConfig::fast_path = false` reproduces it
    /// and benchmarks can measure the batching itself. Reports are
    /// identical either way (see the differential test).
    batch: bool,
}

impl RaceDetector {
    pub fn new(p: usize) -> Self {
        let vc = (0..p)
            .map(|pe| {
                let mut v = vec![0u32; p];
                v[pe] = 1;
                v
            })
            .collect();
        RaceDetector {
            p,
            vc,
            vars: Vec::new(),
            reports: Vec::new(),
            seen: BTreeSet::new(),
            suppressed: 0,
            barriers_seen: 0,
            inject_skip_barrier: None,
            batch: true,
        }
    }

    /// Select bulk (`true`, default) or scalar per-element (`false`) range
    /// processing. Purely a host-cost knob: detection results are identical.
    pub fn set_batching(&mut self, on: bool) {
        self.batch = on;
    }

    /// Races recorded so far (deduplicated per (kind, PEs, array) class).
    pub fn reports(&self) -> &[RaceReport] {
        &self.reports
    }

    /// Racy accesses beyond the recorded reports (same class or past the
    /// report cap).
    pub fn suppressed(&self) -> u64 {
        self.suppressed
    }

    /// Arm the missing-barrier fault injection: the `nth` subsequent global
    /// barrier (1-based) will not create its happens-before edge.
    pub fn inject_missing_barrier(&mut self, nth: usize) {
        assert!(nth >= 1, "barrier injection index is 1-based");
        self.inject_skip_barrier = Some(self.barriers_seen + nth);
    }

    fn ensure(&mut self, arr: usize, len: usize) {
        if self.vars.len() <= arr {
            self.vars.resize_with(arr + 1, Vec::new);
        }
        if self.vars[arr].len() < len {
            self.vars[arr].resize_with(len, VarState::default);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn report(
        &mut self,
        kind: RaceKind,
        prev_pe: usize,
        pe: usize,
        arr: usize,
        name: &'static str,
        index: usize,
        section: &'static str,
    ) {
        if self.reports.len() >= MAX_REPORTS || !self.seen.insert((kind, prev_pe, pe, arr)) {
            self.suppressed += 1;
            return;
        }
        self.reports.push(RaceReport { kind, prev_pe, pe, array: name, index, section });
    }

    /// Record a range access `[off, off + n)` by `pe` on array `arr` (with
    /// `len` total elements, documenting the array's bound).
    ///
    /// Streamed runs dominate the detector's workload, and after the first
    /// pass over an array their per-element states are uniform over long
    /// stretches (same last-writer epoch, same last-reader epoch). The bulk
    /// paths below exploit that: maximal subranges with identical
    /// epoch-compressed state get *one* happens-before check and a bulk
    /// state fill, so the cost is O(state groups) instead of O(elements) of
    /// full FastTrack logic. Element state is also allocated lazily up to
    /// the touched prefix only, not pre-sized to the full array.
    #[allow(clippy::too_many_arguments)]
    pub fn range_access(
        &mut self,
        pe: usize,
        arr: usize,
        len: usize,
        name: &'static str,
        off: usize,
        n: usize,
        write: bool,
        section: &'static str,
    ) {
        if n == 0 {
            return;
        }
        debug_assert!(off + n <= len, "access [{off}, {}) outside array of {len}", off + n);
        if !self.batch {
            // Reference path: eager full-length allocation, scalar loop.
            self.ensure(arr, len);
            for idx in off..off + n {
                if write {
                    self.write(pe, arr, name, idx, section);
                } else {
                    self.read(pe, arr, name, idx, section);
                }
            }
            return;
        }
        self.ensure(arr, off + n);
        if n == 1 {
            if write {
                self.write(pe, arr, name, off, section);
            } else {
                self.read(pe, arr, name, off, section);
            }
        } else if write {
            self.write_range(pe, arr, name, off, n, section);
        } else {
            self.read_range(pe, arr, name, off, n, section);
        }
    }

    /// Record a scattered access sequence: `pe` touches `arr[idxs[k]]` in
    /// submission order. Behaviourally identical to one
    /// [`RaceDetector::range_access`] of length 1 per index (asserted by the
    /// differential test below), but with the bound/registration work done
    /// once and the per-element FastTrack transition specialised for the
    /// dominant no-race cases (mirroring the streamed range batching).
    #[allow(clippy::too_many_arguments)]
    pub fn scatter_access(
        &mut self,
        pe: usize,
        arr: usize,
        len: usize,
        name: &'static str,
        idxs: &[usize],
        write: bool,
        section: &'static str,
    ) {
        if idxs.is_empty() {
            return;
        }
        debug_assert!(
            idxs.iter().all(|&idx| idx < len),
            "scattered access outside array of {len}"
        );
        if !self.batch {
            // Reference path: eager full-length allocation, scalar loop.
            self.ensure(arr, len);
            for &idx in idxs {
                if write {
                    self.write(pe, arr, name, idx, section);
                } else {
                    self.read(pe, arr, name, idx, section);
                }
            }
            return;
        }
        // Lazy allocation up to the touched prefix, like the range path.
        let max = idxs.iter().copied().max().unwrap_or(0);
        self.ensure(arr, max + 1);
        if write {
            self.write_indices(pe, arr, name, idxs, section);
        } else {
            self.read_indices(pe, arr, name, idxs, section);
        }
    }

    /// Bulk scattered-write path; behaviourally identical to calling
    /// [`Self::write`] per index. The epoch and the per-PE clock row are
    /// hoisted out of the loop, and the common transitions — same-epoch
    /// repeat, and race-free overwrite of an unescalated element — run
    /// inline; anything potentially racing (or holding a read vector) falls
    /// back to the scalar path, which owns all reporting.
    fn write_indices(
        &mut self,
        pe: usize,
        arr: usize,
        name: &'static str,
        idxs: &[usize],
        section: &'static str,
    ) {
        let own = self.vc[pe][pe];
        let wnew = Epoch { clk: own, pe: pe as u32 };
        let n = idxs.len();
        let mut i = 0;
        while i < n {
            let mut pending = false;
            {
                let vars = &mut self.vars[arr];
                let vc = &self.vc[pe];
                while i < n {
                    let x = &mut vars[idxs[i]];
                    // Same-epoch write: already recorded (and, exactly like
                    // the scalar path, the read history is left untouched).
                    if x.w == wnew {
                        i += 1;
                        continue;
                    }
                    let ww_race =
                        x.w.clk > 0 && x.w.pe as usize != pe && x.w.clk > vc[x.w.pe as usize];
                    let rw_risk = x.rvc.is_some()
                        || (x.r.clk > 0 && x.r.pe as usize != pe && x.r.clk > vc[x.r.pe as usize]);
                    if ww_race || rw_risk {
                        pending = true;
                        break;
                    }
                    x.w = wnew;
                    x.r = Epoch::default();
                    i += 1;
                }
            }
            if pending {
                self.write(pe, arr, name, idxs[i], section);
                i += 1;
            }
        }
    }

    /// Bulk scattered-read path; behaviourally identical to calling
    /// [`Self::read`] per index. Same-epoch repeats and ordered reads run
    /// inline; write-read races, escalated elements and concurrent-reader
    /// escalation fall back to the scalar path.
    fn read_indices(
        &mut self,
        pe: usize,
        arr: usize,
        name: &'static str,
        idxs: &[usize],
        section: &'static str,
    ) {
        let own = self.vc[pe][pe];
        let rnew = Epoch { clk: own, pe: pe as u32 };
        let n = idxs.len();
        let mut i = 0;
        while i < n {
            let mut pending = false;
            {
                let vars = &mut self.vars[arr];
                let vc = &self.vc[pe];
                while i < n {
                    let x = &mut vars[idxs[i]];
                    // Same-epoch read: already recorded.
                    if x.rvc.is_none() && x.r == rnew {
                        i += 1;
                        continue;
                    }
                    let wr_race =
                        x.w.clk > 0 && x.w.pe as usize != pe && x.w.clk > vc[x.w.pe as usize];
                    if wr_race || x.rvc.is_some() {
                        pending = true;
                        break;
                    }
                    if x.r.clk == 0 || x.r.pe as usize == pe || x.r.clk <= vc[x.r.pe as usize] {
                        // Previous read happens-before this one.
                        x.r = rnew;
                        i += 1;
                    } else {
                        // Concurrent readers: escalate via the scalar path.
                        pending = true;
                        break;
                    }
                }
            }
            if pending {
                self.read(pe, arr, name, idxs[i], section);
                i += 1;
            }
        }
    }

    /// Scan forward from `i` (exclusive) to `end` for the maximal run of
    /// elements sharing the epoch-compressed state `(gw, gr, rvc=None)`.
    fn group_end(&self, arr: usize, i: usize, end: usize, gw: Epoch, gr: Epoch) -> usize {
        let mut j = i + 1;
        while j < end {
            let x = &self.vars[arr][j];
            if x.rvc.is_some() || x.w != gw || x.r != gr {
                break;
            }
            j += 1;
        }
        j
    }

    /// Bulk write path; behaviourally identical to calling [`Self::write`]
    /// per element (asserted by the differential test below). A racing
    /// group of `k` elements reports once and suppresses `k - 1`: exactly
    /// what `k` scalar calls do, since the first call either records the
    /// class or suppresses it and the repeats always hit the `seen` set.
    fn write_range(
        &mut self,
        pe: usize,
        arr: usize,
        name: &'static str,
        off: usize,
        n: usize,
        section: &'static str,
    ) {
        let own = self.vc[pe][pe];
        let end = off + n;
        let mut i = off;
        while i < end {
            let x = &self.vars[arr][i];
            if x.rvc.is_some() {
                // Escalated read vectors are rare; scalar path.
                self.write(pe, arr, name, i, section);
                i += 1;
                continue;
            }
            let (gw, gr) = (x.w, x.r);
            let j = self.group_end(arr, i, end, gw, gr);
            let k = (j - i) as u64;
            // Same-epoch write: the whole group is already recorded.
            if gw.clk == own && gw.pe as usize == pe {
                i = j;
                continue;
            }
            if gw.clk > 0 && gw.pe as usize != pe && gw.clk > self.vc[pe][gw.pe as usize] {
                self.report(RaceKind::WriteWrite, gw.pe as usize, pe, arr, name, i, section);
                self.suppressed += k - 1;
            }
            if gr.clk > 0 && gr.pe as usize != pe && gr.clk > self.vc[pe][gr.pe as usize] {
                self.report(RaceKind::ReadThenWrite, gr.pe as usize, pe, arr, name, i, section);
                self.suppressed += k - 1;
            }
            let wnew = Epoch { clk: own, pe: pe as u32 };
            for x in &mut self.vars[arr][i..j] {
                x.w = wnew;
                x.r = Epoch::default();
            }
            i = j;
        }
    }

    /// Bulk read path; behaviourally identical to calling [`Self::read`]
    /// per element.
    fn read_range(
        &mut self,
        pe: usize,
        arr: usize,
        name: &'static str,
        off: usize,
        n: usize,
        section: &'static str,
    ) {
        let own = self.vc[pe][pe];
        let end = off + n;
        let mut i = off;
        while i < end {
            let x = &self.vars[arr][i];
            if x.rvc.is_some() {
                self.read(pe, arr, name, i, section);
                i += 1;
                continue;
            }
            let (gw, gr) = (x.w, x.r);
            let j = self.group_end(arr, i, end, gw, gr);
            let k = (j - i) as u64;
            // Same-epoch read: already recorded.
            if gr.clk == own && gr.pe as usize == pe {
                i = j;
                continue;
            }
            // Write-read race: report once and leave the state untouched
            // (the write already dominates these elements), as the scalar
            // path does.
            if gw.clk > 0 && gw.pe as usize != pe && gw.clk > self.vc[pe][gw.pe as usize] {
                self.report(RaceKind::WriteThenRead, gw.pe as usize, pe, arr, name, i, section);
                self.suppressed += k - 1;
                i = j;
                continue;
            }
            if gr.clk == 0 || gr.pe as usize == pe || gr.clk <= self.vc[pe][gr.pe as usize] {
                // Previous read happens-before this one: stay exclusive.
                let rnew = Epoch { clk: own, pe: pe as u32 };
                for x in &mut self.vars[arr][i..j] {
                    x.r = rnew;
                }
            } else {
                // Two concurrent readers: escalate each element.
                for x in &mut self.vars[arr][i..j] {
                    let mut rv = vec![0u32; self.p].into_boxed_slice();
                    rv[gr.pe as usize] = gr.clk;
                    rv[pe] = own;
                    x.rvc = Some(rv);
                }
            }
            i = j;
        }
    }

    fn read(&mut self, pe: usize, arr: usize, name: &'static str, idx: usize, section: &'static str) {
        let own = self.vc[pe][pe];
        let x = &mut self.vars[arr][idx];
        // Same-epoch read: already recorded.
        if x.rvc.is_none() && x.r.clk == own && x.r.pe as usize == pe {
            return;
        }
        // Write-read race: last write not ordered before this read.
        if x.w.clk > 0 && x.w.pe as usize != pe && x.w.clk > self.vc[pe][x.w.pe as usize] {
            let prev = x.w.pe as usize;
            self.report(RaceKind::WriteThenRead, prev, pe, arr, name, idx, section);
            return; // leave state; the write already dominates this element
        }
        let x = &mut self.vars[arr][idx];
        match &mut x.rvc {
            Some(rv) => rv[pe] = own,
            None => {
                if x.r.clk == 0
                    || x.r.pe as usize == pe
                    || x.r.clk <= self.vc[pe][x.r.pe as usize]
                {
                    // Previous read happens-before this one: stay exclusive.
                    x.r = Epoch { clk: own, pe: pe as u32 };
                } else {
                    // Two concurrent readers: escalate to a read vector.
                    let mut rv = vec![0u32; self.p].into_boxed_slice();
                    rv[x.r.pe as usize] = x.r.clk;
                    rv[pe] = own;
                    x.rvc = Some(rv);
                }
            }
        }
    }

    fn write(&mut self, pe: usize, arr: usize, name: &'static str, idx: usize, section: &'static str) {
        let own = self.vc[pe][pe];
        let x = &self.vars[arr][idx];
        // Same-epoch write: already recorded.
        if x.w.clk == own && x.w.pe as usize == pe {
            return;
        }
        // Write-write race.
        if x.w.clk > 0 && x.w.pe as usize != pe && x.w.clk > self.vc[pe][x.w.pe as usize] {
            let prev = x.w.pe as usize;
            self.report(RaceKind::WriteWrite, prev, pe, arr, name, idx, section);
        }
        // Read-write races.
        match &self.vars[arr][idx].rvc {
            Some(rv) => {
                let racers: Vec<usize> = (0..self.p)
                    .filter(|&u| u != pe && rv[u] > self.vc[pe][u])
                    .collect();
                for prev in racers {
                    self.report(RaceKind::ReadThenWrite, prev, pe, arr, name, idx, section);
                }
            }
            None => {
                let r = self.vars[arr][idx].r;
                if r.clk > 0 && r.pe as usize != pe && r.clk > self.vc[pe][r.pe as usize] {
                    self.report(RaceKind::ReadThenWrite, r.pe as usize, pe, arr, name, idx, section);
                }
            }
        }
        let x = &mut self.vars[arr][idx];
        x.w = Epoch { clk: own, pe: pe as u32 };
        // The write supersedes the read history: later conflicting accesses
        // will race with the write epoch if unordered.
        x.r = Epoch::default();
        x.rvc = None;
    }

    /// Global barrier: join every clock (unless fault injection skips this
    /// one), then advance each PE into a fresh epoch.
    pub fn barrier(&mut self) {
        self.barriers_seen += 1;
        if self.inject_skip_barrier == Some(self.barriers_seen) {
            self.inject_skip_barrier = None;
            return;
        }
        let mut mx = vec![0u32; self.p];
        for pe in 0..self.p {
            for (m, &c) in mx.iter_mut().zip(&self.vc[pe]) {
                *m = (*m).max(c);
            }
        }
        for pe in 0..self.p {
            self.vc[pe].copy_from_slice(&mx);
            self.vc[pe][pe] += 1;
        }
    }

    /// Barrier over a subset of PEs: join their clocks among themselves.
    pub fn barrier_subset(&mut self, pes: &[usize]) {
        let mut mx = vec![0u32; self.p];
        for &pe in pes {
            for (m, &c) in mx.iter_mut().zip(&self.vc[pe]) {
                *m = (*m).max(c);
            }
        }
        for &pe in pes {
            self.vc[pe].copy_from_slice(&mx);
            self.vc[pe][pe] += 1;
        }
    }

    /// Release: snapshot `pe`'s clock (the token a completed message hands
    /// to its receiver) and advance `pe` into a fresh epoch so its later
    /// accesses are not covered by the token.
    pub fn release(&mut self, pe: usize) -> Box<[u32]> {
        let snap = self.vc[pe].clone().into_boxed_slice();
        self.vc[pe][pe] += 1;
        snap
    }

    /// Acquire: join a release token into `pe`'s clock.
    pub fn acquire(&mut self, pe: usize, token: &[u32]) {
        for (c, &t) in self.vc[pe].iter_mut().zip(token) {
            *c = (*c).max(t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEC: &str = "(test)";

    fn acc(d: &mut RaceDetector, pe: usize, idx: usize, write: bool) {
        d.range_access(pe, 0, 64, "a", idx, 1, write, SEC);
    }

    #[test]
    fn disjoint_writes_are_clean() {
        let mut d = RaceDetector::new(4);
        for pe in 0..4 {
            acc(&mut d, pe, pe, true);
        }
        d.barrier();
        for pe in 0..4 {
            acc(&mut d, pe, (pe + 1) % 4, true);
        }
        assert!(d.reports().is_empty(), "{:?}", d.reports());
    }

    #[test]
    fn unordered_write_write_is_a_race() {
        let mut d = RaceDetector::new(2);
        acc(&mut d, 0, 5, true);
        acc(&mut d, 1, 5, true);
        assert_eq!(d.reports().len(), 1);
        let r = &d.reports()[0];
        assert_eq!(r.kind, RaceKind::WriteWrite);
        assert_eq!((r.prev_pe, r.pe, r.index), (0, 1, 5));
    }

    #[test]
    fn barrier_orders_write_then_read() {
        let mut d = RaceDetector::new(2);
        acc(&mut d, 0, 7, true);
        d.barrier();
        acc(&mut d, 1, 7, false);
        assert!(d.reports().is_empty());
    }

    #[test]
    fn missing_barrier_write_then_read_races() {
        let mut d = RaceDetector::new(2);
        acc(&mut d, 0, 7, true);
        acc(&mut d, 1, 7, false);
        assert_eq!(d.reports()[0].kind, RaceKind::WriteThenRead);
    }

    #[test]
    fn concurrent_reads_are_clean_but_unordered_writer_races_with_both() {
        let mut d = RaceDetector::new(3);
        acc(&mut d, 0, 3, false);
        acc(&mut d, 1, 3, false);
        assert!(d.reports().is_empty(), "concurrent reads are not a race");
        acc(&mut d, 2, 3, true);
        let kinds: Vec<RaceKind> = d.reports().iter().map(|r| r.kind).collect();
        assert_eq!(kinds, vec![RaceKind::ReadThenWrite, RaceKind::ReadThenWrite]);
    }

    #[test]
    fn release_acquire_carries_the_edge() {
        let mut d = RaceDetector::new(2);
        acc(&mut d, 0, 9, true);
        let tok = d.release(0);
        d.acquire(1, &tok);
        acc(&mut d, 1, 9, false);
        assert!(d.reports().is_empty(), "{:?}", d.reports());
        // Without the acquire the same pattern races.
        let mut d2 = RaceDetector::new(2);
        acc(&mut d2, 0, 9, true);
        let _tok = d2.release(0);
        acc(&mut d2, 1, 9, false);
        assert_eq!(d2.reports().len(), 1);
    }

    #[test]
    fn release_does_not_cover_later_writes() {
        let mut d = RaceDetector::new(2);
        let tok = d.release(0);
        acc(&mut d, 0, 4, true); // after the release snapshot
        d.acquire(1, &tok);
        acc(&mut d, 1, 4, false);
        assert_eq!(d.reports().len(), 1, "token must not cover post-release writes");
    }

    #[test]
    fn subset_barrier_orders_only_the_subset() {
        let mut d = RaceDetector::new(4);
        acc(&mut d, 0, 1, true);
        acc(&mut d, 3, 2, true);
        d.barrier_subset(&[0, 1]);
        acc(&mut d, 1, 1, false); // ordered via the subset barrier
        acc(&mut d, 2, 2, false); // NOT ordered after pe 3's write
        assert_eq!(d.reports().len(), 1);
        assert_eq!(d.reports()[0].prev_pe, 3);
        assert_eq!(d.reports()[0].pe, 2);
    }

    #[test]
    fn injected_missing_barrier_skips_exactly_one_join() {
        let mut d = RaceDetector::new(2);
        d.inject_missing_barrier(2);
        acc(&mut d, 0, 0, true);
        d.barrier(); // 1st: real
        acc(&mut d, 1, 0, false);
        assert!(d.reports().is_empty());
        acc(&mut d, 0, 1, true);
        d.barrier(); // 2nd: skipped
        acc(&mut d, 1, 1, false);
        assert_eq!(d.reports().len(), 1, "the skipped barrier must expose the race");
        acc(&mut d, 0, 2, true);
        d.barrier(); // 3rd: real again
        acc(&mut d, 1, 2, false);
        assert_eq!(d.reports().len(), 1, "later barriers must work normally");
    }

    #[test]
    fn reports_are_deduplicated_per_class_and_counted() {
        let mut d = RaceDetector::new(2);
        for idx in 0..10 {
            acc(&mut d, 0, idx, true);
            acc(&mut d, 1, idx, true);
        }
        assert_eq!(d.reports().len(), 1, "one report per (kind, pes, array) class");
        assert_eq!(d.suppressed(), 9);
    }

    #[test]
    fn bulk_racing_run_reports_once_and_counts_rest() {
        let mut d = RaceDetector::new(2);
        d.range_access(0, 0, 64, "a", 0, 10, true, SEC);
        d.range_access(1, 0, 64, "a", 0, 10, true, SEC);
        assert_eq!(d.reports().len(), 1, "one report per (kind, pes, array) class");
        assert_eq!(d.suppressed(), 9);
    }

    /// The bulk range paths must be observationally identical to the scalar
    /// per-element paths: drive two detectors with the same pseudo-random
    /// schedule of ranged accesses, barriers and release/acquire edges —
    /// one taking the bulk path, the other element-by-element — and require
    /// identical reports and suppression counts throughout.
    #[test]
    fn bulk_range_matches_elementwise_reference() {
        let mut bulk = RaceDetector::new(4);
        let mut elem = RaceDetector::new(4);
        let mut x = 0xDEAD_BEEFu64;
        let mut rng = |m: usize| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (x >> 33) as usize % m
        };
        for _ in 0..600 {
            let pe = rng(4);
            match rng(10) {
                0 => {
                    bulk.barrier();
                    elem.barrier();
                }
                1 => {
                    let sub: &[usize] = if rng(2) == 0 { &[0, 1] } else { &[1, 2, 3] };
                    bulk.barrier_subset(sub);
                    elem.barrier_subset(sub);
                }
                2 => {
                    let to = rng(4);
                    let tb = bulk.release(pe);
                    let te = elem.release(pe);
                    bulk.acquire(to, &tb);
                    elem.acquire(to, &te);
                }
                _ => {
                    let off = rng(60);
                    let n = 1 + rng(64 - off);
                    let write = rng(2) == 0;
                    bulk.range_access(pe, 0, 64, "a", off, n, write, SEC);
                    for idx in off..off + n {
                        elem.range_access(pe, 0, 64, "a", idx, 1, write, SEC);
                    }
                }
            }
            assert_eq!(bulk.reports(), elem.reports());
            assert_eq!(bulk.suppressed(), elem.suppressed());
        }
        assert!(bulk.suppressed() > 0, "schedule should have exercised dedup");
    }

    /// The bulk scattered-index path must be observationally identical to
    /// the scalar per-element path, like the range paths above: same
    /// pseudo-random schedule of scattered batches (with duplicate indices),
    /// ranges, barriers and release/acquire edges through a batching and a
    /// scalar detector, identical reports and counts throughout.
    #[test]
    fn scatter_matches_elementwise_reference() {
        let mut bulk = RaceDetector::new(4);
        let mut elem = RaceDetector::new(4);
        elem.set_batching(false);
        let mut x = 0xFEED_C0DEu64;
        let mut rng = |m: usize| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (x >> 33) as usize % m
        };
        for _ in 0..600 {
            let pe = rng(4);
            match rng(10) {
                0 => {
                    bulk.barrier();
                    elem.barrier();
                }
                1 => {
                    let sub: &[usize] = if rng(2) == 0 { &[0, 1] } else { &[1, 2, 3] };
                    bulk.barrier_subset(sub);
                    elem.barrier_subset(sub);
                }
                2 => {
                    let to = rng(4);
                    let tb = bulk.release(pe);
                    let te = elem.release(pe);
                    bulk.acquire(to, &tb);
                    elem.acquire(to, &te);
                }
                3 => {
                    let off = rng(60);
                    let n = 1 + rng(64 - off);
                    let write = rng(2) == 0;
                    bulk.range_access(pe, 0, 64, "a", off, n, write, SEC);
                    elem.range_access(pe, 0, 64, "a", off, n, write, SEC);
                }
                _ => {
                    let n = 1 + rng(24);
                    // Duplicates on purpose: scatters revisit indices.
                    let idxs: Vec<usize> = (0..n).map(|_| rng(64)).collect();
                    let write = rng(2) == 0;
                    bulk.scatter_access(pe, 0, 64, "a", &idxs, write, SEC);
                    elem.scatter_access(pe, 0, 64, "a", &idxs, write, SEC);
                }
            }
            assert_eq!(bulk.reports(), elem.reports());
            assert_eq!(bulk.suppressed(), elem.suppressed());
        }
        assert!(bulk.suppressed() > 0, "schedule should have exercised dedup");
    }

    #[test]
    fn display_names_the_parties() {
        let mut d = RaceDetector::new(2);
        d.range_access(0, 0, 64, "hists", 12, 1, true, "combine");
        d.range_access(1, 0, 64, "hists", 12, 1, true, "combine");
        let msg = d.reports()[0].to_string();
        assert!(msg.contains("write-write") && msg.contains("hists[12]"), "{msg}");
        assert!(msg.contains("pe 0") && msg.contains("pe 1") && msg.contains("combine"), "{msg}");
    }
}
