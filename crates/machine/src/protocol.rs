//! Coherence-protocol layer: the directory transitions below the L2 tag
//! probe, dispatched on [`crate::config::ProtocolMode`].
//!
//! `Machine::touch_line_post_l2` hands every upgrade and miss here; the Hit
//! arm (an L1 refill from L2) is protocol-independent. Two implementations:
//!
//! * `Machine::post_l2_invalidate` — the MESI-style invalidate protocol
//!   of the SGI Origin 2000 the paper measures. This is the pre-seam body
//!   moved verbatim, so the default configuration is bit-exact against
//!   `results/golden_quick.txt` by construction.
//! * `Machine::post_l2_dragon` — a Dragon-style update protocol: writes
//!   to shared lines multicast the new data to the sharers instead of
//!   invalidating them, so readers keep hitting in their caches and the
//!   writer pays per-write update traffic.
//!
//! # Dragon transition table
//!
//! Indexed by the L2 probe result and the directory state seen by the
//! requester (`—` = same as the invalidate protocol):
//!
//! | probe / dir state     | read                         | write                                                        |
//! |-----------------------|------------------------------|--------------------------------------------------------------|
//! | Hit                   | —                            | — (a Hit on a write means the copy was already exclusive)    |
//! | UpgradeNeeded         | n/a (reads never upgrade)    | multicast update to sharers; line **stays Shared** everywhere |
//! | Miss, Unowned         | — (install Exclusive)        | — (install Modified, dir Exclusive)                           |
//! | Miss, Shared          | — (join sharers)             | multicast update; join sharers; install **Shared**            |
//! | Miss, Exclusive(self) | — (stale-self, reinstall)    | —                                                             |
//! | Miss, Exclusive(o)    | — (intervention, downgrade)  | intervention; owner **downgrades** (keeps a Shared copy, one update); both become sharers; install **Shared** |
//!
//! Because a written-shared line stays Shared in the writer's caches, every
//! subsequent write re-enters this slow path (the L1/L2 write probes return
//! `UpgradeNeeded` on Shared lines and the fast-path sweeps stop there —
//! see `Cache::probe`/`sweep_hits`), which is exactly Dragon's cost shape:
//! one update transaction per write to actively-shared data. The fast paths
//! therefore need no Dragon-specific logic to stay exact, and the debug
//! `equiv_reference` sampler covers the mode unchanged.
//!
//! Latency and occupancy use the same knobs as invalidation (an update
//! message occupies the home controller for `ctrl_occ_ns` like an
//! invalidation does; the stall fractions are identical), so mode
//! differences in simulated time come from the protocol's *behaviour* —
//! update multicasts on every write versus invalidation misses on the next
//! read — not from different constants.

use crate::cache::{LineState, Probe};
use crate::directory::DirState;
use crate::machine::{Machine, Pattern};
use crate::stats::Bucket;

impl Machine {
    /// MESI-style invalidate transitions (the bit-exact default). This is
    /// the original `touch_line_post_l2` body, moved verbatim behind the
    /// protocol seam.
    pub(crate) fn post_l2_invalidate(
        &mut self,
        pe: usize,
        line: u64,
        write: bool,
        pat: Pattern,
        probe: Probe,
    ) {
        let home = self.mem.home_of_line(line);
        let my_node = self.node_of[pe];

        match probe {
            Probe::Hit(state) => {
                self.pes[pe].ev.cache_hits += 1;
                // L1 refill from L2 (no protocol action); the probe already
                // carries the post-access state, sparing a second tag walk.
                self.pes[pe].l1.install(line, state);
                self.charge(pe, self.cfg.l2_hit_ns, Bucket::Lmem);
            }
            Probe::UpgradeNeeded => {
                // Write hit on a Shared line: invalidate the other sharers
                // (every *potential* sharer, under an imprecise directory
                // mode — the over-targeted invalidations are charged below
                // exactly like real ones).
                let (dir, pes) = (&self.dir, &mut self.pes);
                let n_inv = dir.for_each_target(line, Some(pe), |other| {
                    pes[other].invalidate_all(line);
                });
                self.dir.set_exclusive(line, pe);
                self.pes[pe].cache.upgrade(line);
                self.pes[pe].l1.upgrade(line);
                self.pes[pe].ev.upgrades += 1;
                self.pes[pe].ev.invalidations += n_inv;
                let occ = self.cfg.ctrl_occ_ns * (1.0 + n_inv as f64);
                self.traffic.add(pe, home, occ, 1 + n_inv, 1);
                let lat = self.topo.mem_latency(pe, home);
                let frac = self.write_frac(pat);
                let bucket = if home == my_node { Bucket::Lmem } else { Bucket::Rmem };
                self.charge(pe, frac * lat, bucket);
            }
            Probe::Miss { victim } => {
                // Evict first so the directory stays precise (L1 inclusion:
                // the victim leaves L1 too).
                if let Some(v) = victim {
                    self.pes[pe].l1.invalidate(v.line);
                    let evicted = self.pes[pe].cache.invalidate(v.line);
                    debug_assert_eq!(evicted, v.dirty);
                    self.dir.remove_sharer(v.line, pe);
                    if v.dirty {
                        let vhome = self.mem.home_of_line(v.line);
                        self.pes[pe].ev.writebacks += 1;
                        // The writeback doesn't stall the processor but its
                        // transactions occupy the victim's home controller.
                        self.traffic.add(pe, vhome, self.cfg.ctrl_occ_ns + self.cfg.data_occ_ns, 1, 0);
                    }
                }

                let mut lat = self.topo.mem_latency(pe, home);
                let mut remote = home != my_node;
                let mut occ = self.cfg.ctrl_occ_ns + self.cfg.data_occ_ns;
                let mut txns: u64 = 1;

                match self.dir.state(line) {
                    DirState::Unowned => {
                        if write {
                            self.dir.set_exclusive(line, pe);
                        } else {
                            // MESI: a read with no other sharers installs
                            // Exclusive (clean).
                            self.dir.set_exclusive(line, pe);
                        }
                    }
                    DirState::Shared => {
                        if write {
                            let (dir, pes) = (&self.dir, &mut self.pes);
                            let n_inv = dir.for_each_target(line, Some(pe), |other| {
                                pes[other].invalidate_all(line);
                            });
                            self.pes[pe].ev.invalidations += n_inv;
                            occ += self.cfg.ctrl_occ_ns * n_inv as f64;
                            txns += n_inv;
                            self.dir.set_exclusive(line, pe);
                        } else {
                            self.dir.add_sharer(line, pe);
                        }
                    }
                    DirState::Exclusive(owner) => {
                        let owner = owner as usize;
                        if owner == pe {
                            // Stale self-ownership cannot occur with precise
                            // eviction notifications; treat as Unowned.
                            self.dir.set_exclusive(line, pe);
                        } else {
                            // Cache-to-cache intervention through the home.
                            let owner_node = self.node_of[owner];
                            lat += self.cfg.intervention_ns
                                + f64::from(self.topo.hops(home, owner_node)) * self.cfg.hop_ns;
                            remote = remote || owner_node != my_node;
                            self.pes[pe].ev.interventions += 1;
                            // Forwarded request + transfer occupy the owner's
                            // node controller as well as the home.
                            occ += self.cfg.ctrl_occ_ns;
                            txns += 1;
                            self.traffic
                                .add(pe, owner_node, self.cfg.ctrl_occ_ns + self.cfg.data_occ_ns, 1, 1);
                            if write {
                                self.pes[owner].invalidate_all(line);
                                self.pes[pe].ev.invalidations += 1;
                                self.dir.set_exclusive(line, pe);
                            } else {
                                self.pes[owner].downgrade_all(line);
                                self.dir.add_sharer(line, owner);
                                self.dir.add_sharer(line, pe);
                            }
                        }
                    }
                }

                self.traffic.add(pe, home, occ, txns, 1);
                let frac = if write {
                    if remote && pat == Pattern::Scattered {
                        self.cfg.write_stall_scattered_remote
                    } else {
                        self.write_frac(pat)
                    }
                } else {
                    self.read_frac(pat)
                };
                let bucket = if remote { Bucket::Rmem } else { Bucket::Lmem };
                self.charge(pe, frac * lat + self.cfg.l2_hit_ns, bucket);
                if remote {
                    self.pes[pe].ev.misses_remote += 1;
                } else {
                    self.pes[pe].ev.misses_local += 1;
                }

                let state = if write {
                    LineState::Modified
                } else if matches!(self.dir.state(line), DirState::Shared) {
                    LineState::Shared
                } else {
                    LineState::Exclusive
                };
                let leftover = self.pes[pe].cache.install(line, state);
                debug_assert!(leftover.is_none(), "probe already freed a way");
                if let Some(v1) = self.pes[pe].l1.install(line, state) {
                    // L1 victims are silently dropped: L2 still holds the
                    // line (inclusive hierarchy), so no state is lost.
                    let _ = v1;
                }
            }
        }
        // The hint is only exact when the line actually sits in L1: the
        // UpgradeNeeded arm can run with the line held in L2 alone (its L1
        // copy was evicted earlier), in which case `l1.upgrade` is a no-op
        // and a repeat touch must still pay the L1-miss L2-refill charge.
        let s = &mut self.pes[pe];
        if s.l1.state(line).is_some() {
            s.hint_line = line;
            s.hint_write = write;
        } else {
            s.hint_line = u64::MAX;
        }
    }

    /// Dragon-style update transitions (see the module-level table). The
    /// control flow mirrors [`Machine::post_l2_invalidate`] arm for arm;
    /// only the write-to-shared transitions differ.
    pub(crate) fn post_l2_dragon(
        &mut self,
        pe: usize,
        line: u64,
        write: bool,
        pat: Pattern,
        probe: Probe,
    ) {
        let home = self.mem.home_of_line(line);
        let my_node = self.node_of[pe];

        match probe {
            Probe::Hit(state) => {
                self.pes[pe].ev.cache_hits += 1;
                self.pes[pe].l1.install(line, state);
                self.charge(pe, self.cfg.l2_hit_ns, Bucket::Lmem);
            }
            Probe::UpgradeNeeded => {
                // Write hit on a Shared line: multicast the new data to the
                // other (potential) sharers. Nobody loses their copy and
                // the line stays Shared — including in this PE's caches, so
                // the next write walks this path again and pays the next
                // update. The home transaction plus one update per sharer
                // occupy the home controller like the invalidation multicast
                // would.
                let n_upd = self.dir.for_each_target(line, Some(pe), |_| {});
                self.pes[pe].ev.updates += n_upd;
                let occ = self.cfg.ctrl_occ_ns * (1.0 + n_upd as f64);
                self.traffic.add(pe, home, occ, 1 + n_upd, 1);
                let lat = self.topo.mem_latency(pe, home);
                let frac = self.write_frac(pat);
                let bucket = if home == my_node { Bucket::Lmem } else { Bucket::Rmem };
                self.charge(pe, frac * lat, bucket);
            }
            Probe::Miss { victim } => {
                // Eviction handling is protocol-independent.
                if let Some(v) = victim {
                    self.pes[pe].l1.invalidate(v.line);
                    let evicted = self.pes[pe].cache.invalidate(v.line);
                    debug_assert_eq!(evicted, v.dirty);
                    self.dir.remove_sharer(v.line, pe);
                    if v.dirty {
                        let vhome = self.mem.home_of_line(v.line);
                        self.pes[pe].ev.writebacks += 1;
                        self.traffic.add(pe, vhome, self.cfg.ctrl_occ_ns + self.cfg.data_occ_ns, 1, 0);
                    }
                }

                let mut lat = self.topo.mem_latency(pe, home);
                let mut remote = home != my_node;
                let mut occ = self.cfg.ctrl_occ_ns + self.cfg.data_occ_ns;
                let mut txns: u64 = 1;

                match self.dir.state(line) {
                    DirState::Unowned => {
                        // No sharers: both protocols install the line
                        // exclusively (Dragon's E/M states).
                        self.dir.set_exclusive(line, pe);
                    }
                    DirState::Shared => {
                        if write {
                            // Write miss on a shared line: fetch the line,
                            // multicast the update, and *join* the sharer
                            // set instead of claiming ownership.
                            let n_upd = self.dir.for_each_target(line, Some(pe), |_| {});
                            self.pes[pe].ev.updates += n_upd;
                            occ += self.cfg.ctrl_occ_ns * n_upd as f64;
                            txns += n_upd;
                            self.dir.add_sharer(line, pe);
                        } else {
                            self.dir.add_sharer(line, pe);
                        }
                    }
                    DirState::Exclusive(owner) => {
                        let owner = owner as usize;
                        if owner == pe {
                            self.dir.set_exclusive(line, pe);
                        } else {
                            // Cache-to-cache intervention through the home —
                            // same latency shape as invalidate.
                            let owner_node = self.node_of[owner];
                            lat += self.cfg.intervention_ns
                                + f64::from(self.topo.hops(home, owner_node)) * self.cfg.hop_ns;
                            remote = remote || owner_node != my_node;
                            self.pes[pe].ev.interventions += 1;
                            occ += self.cfg.ctrl_occ_ns;
                            txns += 1;
                            self.traffic
                                .add(pe, owner_node, self.cfg.ctrl_occ_ns + self.cfg.data_occ_ns, 1, 1);
                            if write {
                                // Dragon: the owner keeps a Shared copy and
                                // receives the written data as one update;
                                // both processors end up sharers.
                                self.pes[owner].downgrade_all(line);
                                self.pes[pe].ev.updates += 1;
                                self.dir.add_sharer(line, owner);
                                self.dir.add_sharer(line, pe);
                            } else {
                                self.pes[owner].downgrade_all(line);
                                self.dir.add_sharer(line, owner);
                                self.dir.add_sharer(line, pe);
                            }
                        }
                    }
                }

                self.traffic.add(pe, home, occ, txns, 1);
                let frac = if write {
                    if remote && pat == Pattern::Scattered {
                        self.cfg.write_stall_scattered_remote
                    } else {
                        self.write_frac(pat)
                    }
                } else {
                    self.read_frac(pat)
                };
                let bucket = if remote { Bucket::Rmem } else { Bucket::Lmem };
                self.charge(pe, frac * lat + self.cfg.l2_hit_ns, bucket);
                if remote {
                    self.pes[pe].ev.misses_remote += 1;
                } else {
                    self.pes[pe].ev.misses_local += 1;
                }

                // Install state: a write only takes Modified when the
                // directory granted exclusivity; a written-shared line is
                // installed Shared (Dragon's Sm, minus the owner bit — the
                // memory at home is kept current by the updates, so any
                // sharer's eviction is clean).
                let state = if matches!(self.dir.state(line), DirState::Shared) {
                    LineState::Shared
                } else if write {
                    LineState::Modified
                } else {
                    LineState::Exclusive
                };
                let leftover = self.pes[pe].cache.install(line, state);
                debug_assert!(leftover.is_none(), "probe already freed a way");
                if let Some(v1) = self.pes[pe].l1.install(line, state) {
                    let _ = v1;
                }
            }
        }
        // Hint tail: same residency rule as the invalidate protocol, but
        // `hint_write` additionally requires the installed copy to be
        // Modified — a written-shared line must send every repeat write
        // down the slow path so it pays its update transaction
        // (`debug_assert_hint` enforces exactly this invariant).
        let s = &mut self.pes[pe];
        match s.l1.state(line) {
            Some(st) => {
                s.hint_line = line;
                s.hint_write = write && st == LineState::Modified;
            }
            None => s.hint_line = u64::MAX,
        }
    }
}
