//! Machine configuration and the SGI Origin 2000 preset.
//!
//! All structural parameters (cache geometry, page size, latencies,
//! controller occupancies) live here so that a single struct defines the
//! simulated platform. The values of [`MachineConfig::origin2000`] come from
//! Section 2 of Shan & Singh (SC 1999) and the Origin 2000 performance
//! tuning guide they cite: 195 MHz R10000 processors, two per node, a
//! unified 4 MB 2-way L2 with 128-byte lines, 16 KB default pages (the paper
//! runs with 64 KB and 256 KB pages), a hypercube of 16 routers, 313 ns
//! local read latency, ~796 ns average remote latency, ~1010 ns worst case,
//! and roughly +100 ns per router hop.

use serde::{Deserialize, Serialize};

/// Hard cap on the processor count. Far beyond the 64-processor Origin 2000
/// of the paper; large enough for the p = 128/256 directory-scaling studies
/// while keeping `u16` processor ids comfortable.
pub const MAX_PROCS: usize = 1024;

/// Sharer-set representation of the coherence directory
/// (see [`crate::Directory`]).
///
/// `FullMap` is the bit-exact default — one presence bit per processor, the
/// Origin 2000's own format. `LimitedPointer(i)` is Dir-i-B: `i` processor
/// pointers per entry; an overflowing entry degrades to broadcast
/// invalidation (every processor charged). `CoarseVector(k)` keeps one bit
/// per group of `k` consecutive processors; invalidations over-target the
/// whole group. The imprecise modes trade directory memory for extra
/// invalidation traffic and controller occupancy — the classic
/// directory-scaling trade-off this simulator charges through its existing
/// contention model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum DirectoryMode {
    /// One presence bit per processor; always precise.
    #[default]
    FullMap,
    /// Dir-i-B: `i` pointers, broadcast on overflow.
    LimitedPointer(usize),
    /// One presence bit per group of `k` consecutive processors.
    CoarseVector(usize),
}

impl std::fmt::Display for DirectoryMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DirectoryMode::FullMap => write!(f, "full-map"),
            DirectoryMode::LimitedPointer(i) => write!(f, "limited-pointer({i})"),
            DirectoryMode::CoarseVector(k) => write!(f, "coarse-vector({k})"),
        }
    }
}

/// Interconnect wiring of the routers (see [`crate::Topology`]).
///
/// `Hypercube` is the bit-exact default — the Origin 2000's own fabric,
/// where the hop count between two routers is the Hamming distance of
/// their ids. `Mesh2D` arranges the routers row-major on a
/// `ceil(sqrt(R))`-wide 2-D grid with dimension-ordered (XY) routing, the
/// AP1000/torus-style fabric of the Weaver & Lynes sorting study.
/// `FatTree(k)` hangs the routers off a complete `k`-ary switch tree
/// (leaves only; CM-5 style) — a message climbs to the lowest common
/// ancestor and back down, so the hop count is twice that level. All
/// three expose the same `hops`-based latency interface; only the hop
/// counts (and hence remote latencies and contention windows) differ.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum InterconnectKind {
    /// Router hops = Hamming distance of router ids (Origin 2000).
    #[default]
    Hypercube,
    /// Row-major 2-D mesh, XY routing: hops = Manhattan distance.
    Mesh2D,
    /// Complete `k`-ary fat tree over the routers: hops = 2 × levels to
    /// the lowest common ancestor.
    FatTree(usize),
}

impl std::fmt::Display for InterconnectKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InterconnectKind::Hypercube => write!(f, "hypercube"),
            InterconnectKind::Mesh2D => write!(f, "mesh"),
            InterconnectKind::FatTree(k) => write!(f, "fat-tree({k})"),
        }
    }
}

/// Coherence protocol the directory runs on a remote write (see
/// `crates/machine/src/protocol.rs`).
///
/// `Invalidate` is the bit-exact default: MESI semantics, where a write to
/// a line with other sharers invalidates every copy and takes the line
/// exclusive. `DragonUpdate` is a Dragon-style update protocol: a write to
/// a shared line instead *multicasts the new data* to every sharer — the
/// copies stay valid and the line stays Shared, so readers never re-miss,
/// but **every** write to a shared line pays an update multicast (charged
/// through `ctrl_occ_ns` and the phase contention model). The classic
/// trade: invalidation misses versus update traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ProtocolMode {
    /// MESI-style write-invalidate (Origin 2000's protocol).
    #[default]
    Invalidate,
    /// Dragon-style write-update: shared lines stay shared; writes
    /// multicast the data to all sharers.
    DragonUpdate,
}

impl std::fmt::Display for ProtocolMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolMode::Invalidate => write!(f, "invalidate"),
            ProtocolMode::DragonUpdate => write!(f, "dragon-update"),
        }
    }
}

/// Geometry of a set-associative cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheGeom {
    /// Total capacity in bytes.
    pub size: usize,
    /// Associativity (ways per set).
    pub assoc: usize,
    /// Line size in bytes (power of two).
    pub line: usize,
}

impl CacheGeom {
    /// Number of sets. Panics if the geometry is degenerate.
    pub fn sets(&self) -> usize {
        assert!(self.line.is_power_of_two(), "line size must be a power of two");
        let lines = self.size / self.line;
        assert!(lines.is_multiple_of(self.assoc), "capacity must be a whole number of ways");
        let sets = lines / self.assoc;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        sets
    }

    /// Total number of lines the cache can hold.
    pub fn lines(&self) -> usize {
        self.size / self.line
    }
}

/// Full description of the simulated CC-NUMA machine.
///
/// Time is measured in nanoseconds (`f64`). The simulation is deterministic:
/// nothing in it consults the host clock or unseeded randomness.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Number of processors (PEs), up to [`MAX_PROCS`]. The directory's
    /// sharer-set representation ([`MachineConfig::directory_mode`]) decides
    /// how such a machine tracks sharers; the full-map default simply grows
    /// its bit-vector past one 64-bit word.
    pub n_procs: usize,
    /// Processors per node (Origin 2000: 2).
    pub procs_per_node: usize,
    /// Nodes per router (Origin 2000: 2, giving 16 routers for 32 nodes).
    pub nodes_per_router: usize,

    /// First-level data cache, modelled at the same line granularity as L2
    /// but *line-count matched* to the R10000's 32 KB / 32 B-line L1D
    /// (1024 lines, 2-way): what matters for the sorting kernels is how
    /// many distinct cursor lines stay in the nearest cache. Hits are free
    /// (folded into BUSY); an L1 miss that hits L2 pays `l2_hit_ns`.
    pub l1: CacheGeom,
    /// Unified second-level cache, the coherence point (Origin: 4 MB, 2-way, 128 B lines).
    pub l2: CacheGeom,
    /// Virtual memory page size in bytes (the paper uses 64 KB for 1M-64M keys
    /// and 256 KB for 256M keys).
    pub page_size: usize,
    /// Number of TLB entries per processor (R10000: 64).
    pub tlb_entries: usize,

    /// Nanoseconds per processor cycle (195 MHz -> ~5.128 ns).
    pub cycle_ns: f64,
    /// Cost charged for an L2 hit on a line touch.
    pub l2_hit_ns: f64,
    /// Uncontended latency of a local memory fetch (first word): 313 ns.
    pub mem_local_ns: f64,
    /// Fixed extra latency for any remote fetch before per-hop costs.
    pub remote_base_ns: f64,
    /// Extra latency per router hop: ~100 ns.
    pub hop_ns: f64,
    /// Extra latency when a miss requires a cache-to-cache intervention.
    pub intervention_ns: f64,
    /// Cost of a TLB refill (software-loaded TLB on MIPS).
    pub tlb_miss_ns: f64,

    /// Memory/directory controller occupancy per protocol transaction
    /// (request, invalidation, acknowledgement, writeback, ...).
    pub ctrl_occ_ns: f64,
    /// Controller occupancy for moving one cache line of data.
    pub data_occ_ns: f64,
    /// Point-to-point link bandwidth in bytes per nanosecond (1.6 GB/s total
    /// both directions -> 0.8 GB/s per direction = 0.8 B/ns).
    pub link_bw_bytes_per_ns: f64,

    /// Fraction of a miss round-trip a *demand read* in a streamed sweep
    /// stalls the processor (hardware prefetch / out-of-order overlap hides
    /// the rest).
    pub read_stall_streamed: f64,
    /// Fraction of a miss round-trip a *scattered* read stalls the processor.
    pub read_stall_scattered: f64,
    /// Fraction of a miss round-trip a streamed (contiguous) write stalls the
    /// processor. The write buffer pipelines back-to-back lines, but a
    /// coherent store stream still pays read-exclusive round trips — a CPU
    /// copy into remote memory is several times slower than the hardware
    /// block-transfer engine behind SHMEM put/get.
    pub write_stall_streamed: f64,
    /// Fraction of a miss round-trip a scattered write stalls the processor:
    /// each write targets a new line, exhausting the MSHRs, and interleaved
    /// dependent reads prevent overlap (Section 4.2 of the paper).
    pub write_stall_scattered: f64,
    /// Effective round-trips for a scattered write miss to a *remote* home.
    /// Under the all-to-all fine-grained writes of the CC-SAS radix
    /// permutation, requests constantly hit directory entries with pending
    /// transactions (read-exclusive + invalidation + acknowledgement +
    /// writeback chains from 63 other writers) and are NACKed and retried —
    /// the protocol interference the paper blames for the CC-SAS collapse.
    /// Values > 1 model the retry storms.
    pub write_stall_scattered_remote: f64,

    /// Software overhead of an MPI send (per message, at the sender).
    pub mpi_send_overhead_ns: f64,
    /// Software overhead of an MPI receive (per message, at the receiver).
    pub mpi_recv_overhead_ns: f64,
    /// Extra per-message overhead of the staged (vendor-style) MPI path:
    /// buffer management, queue manipulation.
    pub mpi_staged_extra_ns: f64,
    /// Software overhead of a SHMEM put/get (one-sided, much cheaper).
    pub shmem_overhead_ns: f64,
    /// Base cost of a barrier plus the per-tree-level cost (a barrier over P
    /// processors costs `base + 2 * ceil(log2 P) * level`).
    pub barrier_base_ns: f64,
    pub barrier_level_ns: f64,

    /// Utilisation cap for the contention model: a controller asked for more
    /// than this fraction of a phase becomes the bottleneck and stretches
    /// the phase.
    pub rho_cap: f64,

    /// Physically indexed caches: hash the page frame into the set index,
    /// modelling the OS's scattered physical page allocation. Disable only
    /// for ablation studies — a purely virtually-indexed model lets
    /// page-aligned power-of-two strides alias pathologically.
    pub physical_cache_indexing: bool,

    /// Cost divisor for *fixed-size* (n-independent) work, set by
    /// [`MachineConfig::scaled_down`]. Structures of size Θ(p·2^r) — local
    /// histograms, their collectives, the prefix tree, sample/count tables —
    /// don't shrink when the data set shrinks, so on a 1/denom data set
    /// their costs must be divided by denom to keep the same weight
    /// relative to the Θ(n) work that the paper measured.
    pub fixed_cost_div: f64,

    /// Enable the FastTrack happens-before race detector
    /// ([`crate::RaceDetector`]): every timed access is checked against the
    /// happens-before order built from the program's barriers and message
    /// completions. Off by default — the audited paths (driver audits, the
    /// conformance oracle) turn it on; timing runs keep the hot path free.
    #[serde(default)]
    pub race_detector: bool,

    /// Enable the streamed-run fast path in `touch_run` (per-page TLB
    /// batching plus a per-PE last-line hint that short-circuits repeated
    /// touches) and the scattered batch walk in `touch_batch` /
    /// `scatter_run` / `gather_run` (one base/detector resolution per batch,
    /// same-page TLB skip, flattened single-pass L1→L2 probing with the hit
    /// arms inlined). Also selects the race detector's bulk range *and*
    /// scattered-index processing (group-at-a-time happens-before checks
    /// with lazy state allocation). Provably bit-identical to the per-line
    /// protocol walk and the scalar per-element detector (debug builds
    /// assert the former on sampled runs; differential tests cover the
    /// latter); disable only to measure the optimizations themselves or
    /// to force the reference paths in equivalence tests.
    #[serde(default = "default_true")]
    pub fast_path: bool,

    /// Sharer-set representation of the coherence directory. The default
    /// full-map is bit-exact with the pre-existing `u64` bitmask behaviour
    /// for p <= 64; limited-pointer and coarse-vector model the directory
    /// organisations machines use to scale past that.
    #[serde(default)]
    pub directory_mode: DirectoryMode,

    /// Router interconnect wiring. The hypercube default is bit-exact with
    /// the pre-existing hardwired topology; mesh and fat-tree change only
    /// hop counts (and everything priced off them).
    #[serde(default)]
    pub interconnect: InterconnectKind,

    /// Coherence protocol for writes to lines with other sharers. The
    /// invalidate default is bit-exact with the pre-existing MESI walk;
    /// Dragon-update trades invalidation misses for update traffic.
    #[serde(default)]
    pub protocol: ProtocolMode,
}

fn default_true() -> bool {
    true
}

impl MachineConfig {
    /// The SGI Origin 2000 used in the paper, at full scale. Processor
    /// counts past the real machine's 64 extrapolate the same node/router
    /// structure (useful for the directory-scaling studies); counts beyond
    /// [`MAX_PROCS`] are rejected by [`MachineConfig::validate`].
    pub fn origin2000(n_procs: usize) -> Self {
        MachineConfig {
            n_procs,
            procs_per_node: 2,
            nodes_per_router: 2,
            l1: CacheGeom { size: 1024 * 128, assoc: 2, line: 128 },
            l2: CacheGeom { size: 4 << 20, assoc: 2, line: 128 },
            page_size: 64 << 10,
            tlb_entries: 64,
            cycle_ns: 1000.0 / 195.0,
            l2_hit_ns: 10.0 * (1000.0 / 195.0),
            mem_local_ns: 313.0,
            remote_base_ns: 300.0,
            hop_ns: 100.0,
            intervention_ns: 250.0,
            tlb_miss_ns: 550.0,
            ctrl_occ_ns: 220.0,
            data_occ_ns: 90.0,
            link_bw_bytes_per_ns: 0.8,
            read_stall_streamed: 0.30,
            read_stall_scattered: 1.0,
            write_stall_streamed: 0.30,
            write_stall_scattered: 0.75,
            write_stall_scattered_remote: 2.2,
            mpi_send_overhead_ns: 6_000.0,
            mpi_recv_overhead_ns: 6_000.0,
            mpi_staged_extra_ns: 10_000.0,
            shmem_overhead_ns: 1_500.0,
            barrier_base_ns: 2_000.0,
            barrier_level_ns: 600.0,
            rho_cap: 0.95,
            physical_cache_indexing: true,
            fixed_cost_div: 1.0,
            race_detector: false,
            fast_path: default_true(),
            directory_mode: DirectoryMode::FullMap,
            interconnect: InterconnectKind::Hypercube,
            protocol: ProtocolMode::Invalidate,
        }
    }

    /// Builder-style selection of the directory's sharer-set representation.
    pub fn with_directory_mode(mut self, mode: DirectoryMode) -> Self {
        self.directory_mode = mode;
        self
    }

    /// Builder-style selection of the router interconnect.
    pub fn with_interconnect(mut self, kind: InterconnectKind) -> Self {
        self.interconnect = kind;
        self
    }

    /// Builder-style selection of the coherence protocol.
    pub fn with_protocol(mut self, proto: ProtocolMode) -> Self {
        self.protocol = proto;
        self
    }

    /// Scale the machine down by `1/denom` for running data sets of
    /// `n/denom` keys in place of `n`-key full-scale runs.
    ///
    /// Two families of parameters scale:
    ///
    /// * **capacities** (cache size, TLB reach, page size) — so every
    ///   dataset-to-capacity ratio, and hence every capacity-driven
    ///   crossover (superlinear speedups, TLB blow-ups), appears at the
    ///   same *paper-labelled* size;
    /// * **fixed per-event software costs** (per-message overheads, barrier
    ///   costs) — these don't shrink with `n` on the real machine, so on a
    ///   `1/denom` data set they must shrink by `denom` to keep the same
    ///   overhead-to-work ratio the paper saw (message *counts* are
    ///   n-independent: `p * 2^r` per radix pass).
    ///
    /// Per-line and per-access costs (latencies, occupancies) stay fixed:
    /// their event counts are proportional to `n` and scale automatically.
    pub fn scaled_down(mut self, denom: usize) -> Self {
        assert!(denom.is_power_of_two(), "scale denominator must be a power of two");
        if denom == 1 {
            return self;
        }
        let d = denom as f64;
        self.l2.size = (self.l2.size / denom).max(self.l2.line * self.l2.assoc * 2);
        self.l1.size = (self.l1.size / denom).max(self.l1.line * self.l1.assoc * 2);
        // TLB reach scales through the page size alone (entry count is a
        // structural property): reach = entries * page/denom = full/denom.
        // Keep at least 16 lines per page.
        self.page_size = (self.page_size / denom).max(self.l2.line * 16);
        // Fixed per-event software costs.
        self.mpi_send_overhead_ns /= d;
        self.mpi_recv_overhead_ns /= d;
        self.mpi_staged_extra_ns /= d;
        self.shmem_overhead_ns /= d;
        self.barrier_base_ns /= d;
        self.barrier_level_ns /= d;
        self.fixed_cost_div = d;
        self
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.n_procs.div_ceil(self.procs_per_node)
    }

    /// Number of routers.
    pub fn n_routers(&self) -> usize {
        self.n_nodes().div_ceil(self.nodes_per_router)
    }

    /// Log2 of the line size.
    pub fn line_shift(&self) -> u32 {
        self.l2.line.trailing_zeros()
    }

    /// Log2 of the page size.
    pub fn page_shift(&self) -> u32 {
        assert!(self.page_size.is_power_of_two());
        self.page_size.trailing_zeros()
    }

    /// Sanity-check invariants, naming the offending field in the error.
    /// [`crate::Machine::new`] panics on violations; fallible entry points
    /// ([`crate::Machine::try_new`], config-file loaders) surface the
    /// message instead.
    pub fn validate(&self) -> Result<(), String> {
        fn check(ok: bool, what: impl FnOnce() -> String) -> Result<(), String> {
            if ok {
                Ok(())
            } else {
                Err(what())
            }
        }
        check(
            (1..=MAX_PROCS).contains(&self.n_procs),
            || format!("n_procs: {} outside 1..={MAX_PROCS}", self.n_procs),
        )?;
        check(self.procs_per_node >= 1, || {
            format!("procs_per_node: {} must be >= 1", self.procs_per_node)
        })?;
        check(self.nodes_per_router >= 1, || {
            format!("nodes_per_router: {} must be >= 1", self.nodes_per_router)
        })?;
        check(self.page_size >= self.l2.line, || {
            format!(
                "page_size: {} smaller than the l2.line of {}",
                self.page_size, self.l2.line
            )
        })?;
        check(self.page_size.is_power_of_two(), || {
            format!("page_size: {} must be a power of two", self.page_size)
        })?;
        check(self.l2.line.is_power_of_two(), || {
            format!("l2.line: {} must be a power of two", self.l2.line)
        })?;
        check(self.l1.line == self.l2.line, || {
            format!(
                "l1.line: {} must equal l2.line ({}): levels share the line granularity",
                self.l1.line, self.l2.line
            )
        })?;
        for (name, geom) in [("l1", &self.l1), ("l2", &self.l2)] {
            let lines = geom.size / geom.line;
            check(lines > 0 && lines.is_multiple_of(geom.assoc), || {
                format!("{name}: capacity must be a whole number of ways")
            })?;
            check((lines / geom.assoc).is_power_of_two(), || {
                format!("{name}: set count must be a power of two")
            })?;
        }
        check(self.rho_cap > 0.0 && self.rho_cap < 1.0, || {
            format!("rho_cap: {} outside (0, 1)", self.rho_cap)
        })?;
        check(self.link_bw_bytes_per_ns > 0.0, || {
            format!("link_bw_bytes_per_ns: {} must be positive", self.link_bw_bytes_per_ns)
        })?;
        check(self.fixed_cost_div >= 1.0, || {
            format!("fixed_cost_div: {} must be >= 1", self.fixed_cost_div)
        })?;
        match self.directory_mode {
            DirectoryMode::FullMap => {}
            DirectoryMode::LimitedPointer(i) => {
                check((1..=64).contains(&i), || {
                    format!("directory_mode: limited-pointer width {i} outside 1..=64")
                })?;
            }
            DirectoryMode::CoarseVector(k) => {
                check((1..=self.n_procs).contains(&k), || {
                    format!(
                        "directory_mode: coarse-vector group size {k} outside 1..={}",
                        self.n_procs
                    )
                })?;
            }
        }
        if let InterconnectKind::FatTree(k) = self.interconnect {
            // Arity 1 would make every "tree" level a chain of unary
            // switches with no common-ancestor structure, and an arity past
            // the largest possible router count (MAX_PROCS processors, two
            // per node, two nodes per router) is a typo. The range is a
            // constant on purpose: an arity wider than the machine's actual
            // router count is a valid (flat, single-switch) tree, so small
            // test machines accept the same arities the big ones do.
            const MAX_ARITY: usize = MAX_PROCS / 4;
            check((2..=MAX_ARITY).contains(&k), || {
                format!("interconnect: fat-tree arity {k} outside 2..={MAX_ARITY}")
            })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn origin_geometry() {
        let c = MachineConfig::origin2000(64);
        assert_eq!(c.n_nodes(), 32);
        assert_eq!(c.n_routers(), 16);
        assert_eq!(c.l2.sets(), 16384);
        assert_eq!(c.l2.lines(), 32768);
        assert_eq!(c.line_shift(), 7);
        c.validate().unwrap();
    }

    #[test]
    fn odd_proc_counts_round_up_nodes() {
        let c = MachineConfig::origin2000(3);
        assert_eq!(c.n_nodes(), 2);
        assert_eq!(c.n_routers(), 1);
        let c1 = MachineConfig::origin2000(1);
        assert_eq!(c1.n_nodes(), 1);
        assert_eq!(c1.n_routers(), 1);
    }

    #[test]
    fn scaling_preserves_ratios() {
        let full = MachineConfig::origin2000(64);
        let s = full.clone().scaled_down(16);
        assert_eq!(s.l2.size, full.l2.size / 16);
        assert_eq!(s.tlb_entries, full.tlb_entries); // reach scales via page size
        assert!((s.shmem_overhead_ns - full.shmem_overhead_ns / 16.0).abs() < 1e-9);
        assert_eq!(s.l2.line, full.l2.line);
        s.validate().unwrap();
    }

    #[test]
    fn scale_one_is_identity() {
        let full = MachineConfig::origin2000(64);
        let s = full.clone().scaled_down(1);
        assert_eq!(s.l2.size, full.l2.size);
        assert_eq!(s.tlb_entries, full.tlb_entries);
    }

    #[test]
    fn too_many_procs_rejected_with_field_name() {
        // p = 65 used to be the hard u64-bitmask wall; now any mode scales
        // past it and only the MAX_PROCS cap rejects, naming the field.
        MachineConfig::origin2000(65).validate().unwrap();
        let err = MachineConfig::origin2000(MAX_PROCS + 1).validate().unwrap_err();
        assert!(err.contains("n_procs"), "error must name the field: {err}");
    }

    #[test]
    fn validate_names_offending_field() {
        let mut c = MachineConfig::origin2000(8);
        c.rho_cap = 1.5;
        let err = c.validate().unwrap_err();
        assert!(err.contains("rho_cap"), "error must name the field: {err}");

        let mut c = MachineConfig::origin2000(8);
        c.page_size = 100;
        assert!(c.validate().unwrap_err().contains("page_size"));

        let mut c = MachineConfig::origin2000(8);
        c.directory_mode = DirectoryMode::LimitedPointer(0);
        assert!(c.validate().unwrap_err().contains("limited-pointer"));

        let mut c = MachineConfig::origin2000(8);
        c.directory_mode = DirectoryMode::CoarseVector(9);
        assert!(c.validate().unwrap_err().contains("coarse-vector"));
        c.directory_mode = DirectoryMode::CoarseVector(8);
        c.validate().unwrap();
    }

    #[test]
    fn large_machines_validate_in_all_modes() {
        for mode in [
            DirectoryMode::FullMap,
            DirectoryMode::LimitedPointer(8),
            DirectoryMode::CoarseVector(4),
        ] {
            let c = MachineConfig::origin2000(256).with_directory_mode(mode);
            c.validate().unwrap_or_else(|e| panic!("{mode}: {e}"));
            assert_eq!(c.n_nodes(), 128);
            assert_eq!(c.n_routers(), 64);
        }
    }

    #[test]
    fn fat_tree_arity_validated_with_field_name() {
        let mut c = MachineConfig::origin2000(64);
        c.interconnect = InterconnectKind::FatTree(1);
        let err = c.validate().unwrap_err();
        assert!(err.contains("interconnect"), "error must name the field: {err}");
        assert!(err.contains("fat-tree"), "{err}");
        c.interconnect = InterconnectKind::FatTree(999);
        assert!(c.validate().unwrap_err().contains("fat-tree"));
        c.interconnect = InterconnectKind::FatTree(4);
        c.validate().unwrap();
        c.interconnect = InterconnectKind::Mesh2D;
        c.validate().unwrap();
    }

    #[test]
    fn interconnect_and_protocol_default_and_display() {
        let c = MachineConfig::origin2000(8);
        assert_eq!(c.interconnect, InterconnectKind::Hypercube);
        assert_eq!(c.protocol, ProtocolMode::Invalidate);
        assert_eq!(InterconnectKind::Hypercube.to_string(), "hypercube");
        assert_eq!(InterconnectKind::Mesh2D.to_string(), "mesh");
        assert_eq!(InterconnectKind::FatTree(4).to_string(), "fat-tree(4)");
        assert_eq!(ProtocolMode::Invalidate.to_string(), "invalidate");
        assert_eq!(ProtocolMode::DragonUpdate.to_string(), "dragon-update");
        // The enum `Default` impls back the `#[serde(default)]` attributes,
        // so configs serialized before these fields existed deserialize to
        // the bit-exact default machine.
        assert_eq!(InterconnectKind::default(), InterconnectKind::Hypercube);
        assert_eq!(ProtocolMode::default(), ProtocolMode::Invalidate);
        // And the fields do appear when a config is serialized.
        let json = serde_json::to_string(&c).unwrap();
        assert!(json.contains("interconnect"), "{json}");
        assert!(json.contains("protocol"), "{json}");
    }

    #[test]
    fn latency_constants_match_paper() {
        let c = MachineConfig::origin2000(64);
        // Local 313 ns; max remote approx 1010 ns = local + base + 4 hops.
        assert!((c.mem_local_ns - 313.0).abs() < 1e-9);
        let max_remote = c.mem_local_ns + c.remote_base_ns + 4.0 * c.hop_ns;
        assert!((max_remote - 1013.0).abs() < 1.0);
    }
}
