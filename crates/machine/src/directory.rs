//! Full-map directory for the invalidation-based coherence protocol.
//!
//! One entry per cache line in the simulated address space. With at most 64
//! processors a full bit-vector sharer set fits in a `u64`, exactly like the
//! Origin 2000's own directory format for machines of this size.

/// Directory state of a line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirState {
    /// No cache holds the line.
    Unowned,
    /// One or more caches hold the line in Shared state.
    Shared,
    /// Exactly one cache holds the line in Exclusive/Modified state.
    Exclusive(u8),
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    sharers: u64,
    owner: u8,
    state: u8, // 0 = Unowned, 1 = Shared, 2 = Exclusive
}

const UNOWNED: u8 = 0;
const SHARED: u8 = 1;
const EXCLUSIVE: u8 = 2;

/// The directory: line index -> coherence metadata.
#[derive(Debug, Clone)]
pub struct Directory {
    entries: Vec<Entry>,
    /// Count of lines not in Unowned state, maintained incrementally by the
    /// state transitions so [`Directory::owned_lines`] does not have to scan
    /// every entry (it is called from diagnostics/audit paths that would
    /// otherwise pay O(total lines) per call).
    owned: usize,
}

impl Directory {
    pub fn new(total_lines: u64) -> Self {
        Directory {
            entries: vec![Entry { sharers: 0, owner: 0, state: UNOWNED }; total_lines as usize],
            owned: 0,
        }
    }

    /// Grow to cover at least `total_lines` lines (after new allocations).
    pub fn ensure(&mut self, total_lines: u64) {
        if total_lines as usize > self.entries.len() {
            self.entries.resize(total_lines as usize, Entry { sharers: 0, owner: 0, state: UNOWNED });
        }
    }

    #[inline]
    pub fn state(&self, line: u64) -> DirState {
        let e = &self.entries[line as usize];
        match e.state {
            UNOWNED => DirState::Unowned,
            SHARED => DirState::Shared,
            _ => DirState::Exclusive(e.owner),
        }
    }

    /// Sharer set (meaningful in Shared state; possibly imprecise — silent
    /// evictions leave stale bits, just like a real coarse directory).
    #[inline]
    pub fn sharers(&self, line: u64) -> u64 {
        self.entries[line as usize].sharers
    }

    /// Record that `pe` obtained a Shared copy.
    #[inline]
    pub fn add_sharer(&mut self, line: u64, pe: usize) {
        let e = &mut self.entries[line as usize];
        if e.state == UNOWNED {
            self.owned += 1;
        }
        e.sharers |= 1 << pe;
        e.state = SHARED;
    }

    /// Record that `pe` obtained exclusive ownership.
    #[inline]
    pub fn set_exclusive(&mut self, line: u64, pe: usize) {
        let e = &mut self.entries[line as usize];
        if e.state == UNOWNED {
            self.owned += 1;
        }
        e.sharers = 1 << pe;
        e.owner = pe as u8;
        e.state = EXCLUSIVE;
    }

    /// Record that the line left all caches (writeback of the only copy, or
    /// invalidation broadcast finished with no new owner).
    #[inline]
    pub fn set_unowned(&mut self, line: u64) {
        let e = &mut self.entries[line as usize];
        if e.state != UNOWNED {
            self.owned -= 1;
        }
        e.sharers = 0;
        e.state = UNOWNED;
    }

    /// Remove `pe` from the sharer set (eviction notification / writeback).
    /// Downgrades to Unowned when the last sharer leaves.
    #[inline]
    pub fn remove_sharer(&mut self, line: u64, pe: usize) {
        let e = &mut self.entries[line as usize];
        e.sharers &= !(1 << pe);
        if e.sharers == 0 {
            if e.state != UNOWNED {
                self.owned -= 1;
            }
            e.state = UNOWNED;
        } else if e.state == EXCLUSIVE {
            e.state = SHARED;
        }
    }

    /// Sharers other than `pe` (the set a write by `pe` must invalidate).
    #[inline]
    pub fn other_sharers(&self, line: u64, pe: usize) -> u64 {
        self.entries[line as usize].sharers & !(1 << pe)
    }

    /// Number of lines not in Unowned state (diagnostics/tests). O(1): the
    /// count is maintained by the transitions above; debug builds check it
    /// against the full scan.
    pub fn owned_lines(&self) -> usize {
        debug_assert_eq!(
            self.owned,
            self.entries.iter().filter(|e| e.state != UNOWNED).count(),
            "owned-line counter drifted from the entry states"
        );
        self.owned
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle() {
        let mut d = Directory::new(8);
        assert_eq!(d.state(3), DirState::Unowned);
        d.add_sharer(3, 5);
        assert_eq!(d.state(3), DirState::Shared);
        d.add_sharer(3, 9);
        assert_eq!(d.sharers(3), (1 << 5) | (1 << 9));
        assert_eq!(d.other_sharers(3, 5), 1 << 9);
        d.set_exclusive(3, 9);
        assert_eq!(d.state(3), DirState::Exclusive(9));
        assert_eq!(d.sharers(3), 1 << 9);
        d.remove_sharer(3, 9);
        assert_eq!(d.state(3), DirState::Unowned);
    }

    #[test]
    fn exclusive_owner_eviction_with_stale_sharer() {
        let mut d = Directory::new(4);
        d.add_sharer(0, 1);
        d.add_sharer(0, 2);
        d.remove_sharer(0, 1);
        assert_eq!(d.state(0), DirState::Shared);
        d.remove_sharer(0, 2);
        assert_eq!(d.state(0), DirState::Unowned);
    }

    #[test]
    fn owned_lines_counter_tracks_transitions() {
        let mut d = Directory::new(8);
        assert_eq!(d.owned_lines(), 0);
        d.add_sharer(0, 1);
        d.add_sharer(0, 2); // already owned: no double count
        d.set_exclusive(1, 3);
        d.set_exclusive(1, 4); // exclusive -> exclusive: no double count
        assert_eq!(d.owned_lines(), 2);
        d.remove_sharer(0, 1);
        assert_eq!(d.owned_lines(), 2, "line 0 still has a sharer");
        d.remove_sharer(0, 2);
        assert_eq!(d.owned_lines(), 1, "last sharer left");
        d.remove_sharer(0, 2); // removing from an unowned line: no underflow
        assert_eq!(d.owned_lines(), 1);
        d.set_unowned(1);
        assert_eq!(d.owned_lines(), 0);
        d.set_unowned(1); // repeat: no underflow
        assert_eq!(d.owned_lines(), 0);
    }

    #[test]
    fn ensure_grows() {
        let mut d = Directory::new(2);
        d.ensure(10);
        assert_eq!(d.state(9), DirState::Unowned);
        d.set_exclusive(9, 63);
        assert_eq!(d.state(9), DirState::Exclusive(63));
        // ensure() never shrinks.
        d.ensure(4);
        assert_eq!(d.state(9), DirState::Exclusive(63));
    }
}
