//! Directory for the invalidation-based coherence protocol, with pluggable
//! sharer-set representations.
//!
//! One entry per cache line in the simulated address space. The
//! representation of an entry's sharer set is selected by
//! [`DirectoryMode`]:
//!
//! * [`DirectoryMode::FullMap`] — a full bit-vector with one bit per
//!   processor, exactly the Origin 2000's own directory format for machines
//!   up to 64 processors (where it fits in a single `u64` word) and the
//!   bit-exact default. Larger machines use as many 64-bit words as needed.
//! * [`DirectoryMode::LimitedPointer`] — Dir-i-B: `i` processor pointers
//!   per entry. When an `(i+1)`-th sharer arrives the entry *overflows* and
//!   degrades to broadcast: a later write must invalidate every processor
//!   (except the writer), because the directory no longer knows who holds
//!   the line. The entry reverts to a precise state when the line returns
//!   to a single owner (`set_exclusive`) or leaves all caches
//!   (`set_unowned`).
//! * [`DirectoryMode::CoarseVector`] — one bit per group of `k`
//!   consecutive processors (Dir-k-CV). Invalidations over-target the whole
//!   group of any marked bit.
//!
//! Whatever the representation, the invariant the rest of the machine (and
//! [`crate::Machine::audit`]) relies on is **conservative superset**: the
//! set of processors the directory would target with invalidations always
//! includes every processor actually caching the line. Imprecise
//! representations (and silent evictions, in every mode) may over-target —
//! that is the modelled cost, charged through the controller-occupancy
//! path — but they never under-target.

use crate::config::DirectoryMode;

/// Directory state of a line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirState {
    /// No cache holds the line.
    Unowned,
    /// One or more caches hold the line in Shared state.
    Shared,
    /// Exactly one cache holds the line in Exclusive/Modified state.
    Exclusive(u16),
}

const UNOWNED: u8 = 0;
const SHARED: u8 = 1;
const EXCLUSIVE: u8 = 2;

/// Sentinel in the limited-pointer `count` array: the entry has overflowed
/// and the sharer set is "potentially everyone" (broadcast on invalidate).
const OVERFLOW: u8 = u8::MAX;

/// Per-mode storage for the sharer sets, flattened into contiguous arrays
/// (no per-entry allocation).
#[derive(Debug, Clone)]
enum Repr {
    /// Full-map or coarse-vector bits, `words_per_line` words per entry.
    /// For `FullMap` a bit is a processor; for `CoarseVector(k)` a bit is a
    /// group of `k` consecutive processors.
    Bits { words_per_line: usize, bits: Vec<u64> },
    /// Limited-pointer slots: `slots` pointers per entry, kept sorted
    /// ascending; `count[line]` is the number in use, or [`OVERFLOW`].
    Ptrs { slots: usize, ptrs: Vec<u16>, count: Vec<u8> },
}

/// The directory: line index -> coherence metadata.
#[derive(Debug, Clone)]
pub struct Directory {
    mode: DirectoryMode,
    n_procs: usize,
    repr: Repr,
    state: Vec<u8>,
    owner: Vec<u16>,
    /// Count of lines not in Unowned state, maintained incrementally by the
    /// state transitions so [`Directory::owned_lines`] does not have to scan
    /// every entry (it is called from diagnostics/audit paths that would
    /// otherwise pay O(total lines) per call).
    owned: usize,
}

impl Directory {
    pub fn new(mode: DirectoryMode, n_procs: usize, total_lines: u64) -> Self {
        let n = total_lines as usize;
        let repr = match mode {
            DirectoryMode::FullMap => {
                let words_per_line = n_procs.div_ceil(64).max(1);
                Repr::Bits { words_per_line, bits: vec![0; n * words_per_line] }
            }
            DirectoryMode::CoarseVector(k) => {
                assert!(k >= 1, "coarse-vector group size must be >= 1");
                let groups = n_procs.div_ceil(k).max(1);
                let words_per_line = groups.div_ceil(64);
                Repr::Bits { words_per_line, bits: vec![0; n * words_per_line] }
            }
            DirectoryMode::LimitedPointer(i) => {
                assert!((1..=64).contains(&i), "limited-pointer width must be in 1..=64");
                Repr::Ptrs { slots: i, ptrs: vec![0; n * i], count: vec![0; n] }
            }
        };
        Directory {
            mode,
            n_procs,
            repr,
            state: vec![UNOWNED; n],
            owner: vec![0; n],
            owned: 0,
        }
    }

    /// Bit-exact shorthand for the classic p <= 64 full-map directory.
    pub fn full_map(n_procs: usize, total_lines: u64) -> Self {
        Directory::new(DirectoryMode::FullMap, n_procs, total_lines)
    }

    /// The representation this directory was built with.
    pub fn mode(&self) -> DirectoryMode {
        self.mode
    }

    /// Grow to cover at least `total_lines` lines (after new allocations).
    pub fn ensure(&mut self, total_lines: u64) {
        let n = total_lines as usize;
        if n <= self.state.len() {
            return;
        }
        self.state.resize(n, UNOWNED);
        self.owner.resize(n, 0);
        match &mut self.repr {
            Repr::Bits { words_per_line, bits } => bits.resize(n * *words_per_line, 0),
            Repr::Ptrs { slots, ptrs, count } => {
                ptrs.resize(n * *slots, 0);
                count.resize(n, 0);
            }
        }
    }

    #[inline]
    pub fn state(&self, line: u64) -> DirState {
        let l = line as usize;
        match self.state[l] {
            UNOWNED => DirState::Unowned,
            SHARED => DirState::Shared,
            _ => DirState::Exclusive(self.owner[l]),
        }
    }

    /// For `CoarseVector(k)`: the group index of `pe`. 0 otherwise.
    #[inline]
    fn group_of(&self, pe: usize) -> usize {
        match self.mode {
            DirectoryMode::CoarseVector(k) => pe / k,
            _ => 0,
        }
    }

    /// Conservative membership: `true` when the directory would target `pe`
    /// with an invalidation of `line` — i.e. `pe` *may* hold a copy. Exact
    /// for `FullMap`; over-approximate for overflowed limited-pointer
    /// entries (everyone) and coarse groups (all `k` processors of a marked
    /// group). This is the membership test audits must use: a cached copy
    /// outside this set is a protocol bug in every mode.
    #[inline]
    pub fn is_sharer(&self, line: u64, pe: usize) -> bool {
        let l = line as usize;
        match &self.repr {
            Repr::Bits { words_per_line, bits } => {
                let bit = match self.mode {
                    DirectoryMode::CoarseVector(_) => self.group_of(pe),
                    _ => pe,
                };
                bits[l * words_per_line + bit / 64] & (1u64 << (bit % 64)) != 0
            }
            Repr::Ptrs { slots, ptrs, count } => {
                if count[l] == OVERFLOW {
                    return true;
                }
                let used = count[l] as usize;
                ptrs[l * slots..l * slots + used].contains(&(pe as u16))
            }
        }
    }

    /// Low 64 bits of the full-map sharer word (diagnostics and the legacy
    /// unit tests; meaningful for `FullMap` with p <= 64 only — other modes
    /// synthesize the word from their representation, truncated to 64 PEs).
    pub fn sharers(&self, line: u64) -> u64 {
        let mut word = 0u64;
        self.for_each_target(line, None, |pe| {
            if pe < 64 {
                word |= 1u64 << pe;
            }
        });
        word
    }

    /// Record that `pe` obtained a Shared copy.
    #[inline]
    pub fn add_sharer(&mut self, line: u64, pe: usize) {
        let l = line as usize;
        if self.state[l] == UNOWNED {
            self.owned += 1;
        }
        self.state[l] = SHARED;
        match &mut self.repr {
            Repr::Bits { words_per_line, bits } => {
                let bit = match self.mode {
                    DirectoryMode::CoarseVector(k) => pe / k,
                    _ => pe,
                };
                bits[l * *words_per_line + bit / 64] |= 1u64 << (bit % 64);
            }
            Repr::Ptrs { slots, ptrs, count } => {
                if count[l] == OVERFLOW {
                    return;
                }
                let used = count[l] as usize;
                let slice = &mut ptrs[l * *slots..(l + 1) * *slots];
                let pe16 = pe as u16;
                match slice[..used].binary_search(&pe16) {
                    Ok(_) => {}
                    Err(pos) => {
                        if used == *slots {
                            // Dir-i-B overflow: the (i+1)-th sharer degrades
                            // the entry to broadcast.
                            count[l] = OVERFLOW;
                        } else {
                            slice.copy_within(pos..used, pos + 1);
                            slice[pos] = pe16;
                            count[l] = (used + 1) as u8;
                        }
                    }
                }
            }
        }
    }

    /// Record that `pe` obtained exclusive ownership. Always reverts the
    /// entry to a precise single-pointer set (in every representation the
    /// preceding invalidations emptied all other caches).
    #[inline]
    pub fn set_exclusive(&mut self, line: u64, pe: usize) {
        let l = line as usize;
        if self.state[l] == UNOWNED {
            self.owned += 1;
        }
        self.state[l] = EXCLUSIVE;
        self.owner[l] = pe as u16;
        match &mut self.repr {
            Repr::Bits { words_per_line, bits } => {
                let w = l * *words_per_line;
                bits[w..w + *words_per_line].fill(0);
                let bit = match self.mode {
                    DirectoryMode::CoarseVector(k) => pe / k,
                    _ => pe,
                };
                bits[w + bit / 64] = 1u64 << (bit % 64);
            }
            Repr::Ptrs { slots, ptrs, count } => {
                ptrs[l * *slots] = pe as u16;
                count[l] = 1;
            }
        }
    }

    /// Record that the line left all caches (writeback of the only copy, or
    /// invalidation broadcast finished with no new owner). Reverts any
    /// overflow/coarse imprecision.
    #[inline]
    pub fn set_unowned(&mut self, line: u64) {
        let l = line as usize;
        if self.state[l] != UNOWNED {
            self.owned -= 1;
        }
        self.state[l] = UNOWNED;
        match &mut self.repr {
            Repr::Bits { words_per_line, bits } => {
                let w = l * *words_per_line;
                bits[w..w + *words_per_line].fill(0);
            }
            Repr::Ptrs { count, .. } => count[l] = 0,
        }
    }

    /// Remove `pe` from the sharer set (eviction notification / writeback).
    /// Downgrades to Unowned when the representation can prove the last
    /// sharer left. Imprecise representations may be unable to remove:
    /// an overflowed limited-pointer entry stays broadcast, and a coarse
    /// group bit stays set while *any* processor of the group may hold the
    /// line — stale over-targeting, exactly like the real hardware.
    #[inline]
    pub fn remove_sharer(&mut self, line: u64, pe: usize) {
        let l = line as usize;
        let mut now_empty = false;
        match &mut self.repr {
            Repr::Bits { words_per_line, bits } => {
                let w = l * *words_per_line;
                let words = &mut bits[w..w + *words_per_line];
                match self.mode {
                    DirectoryMode::CoarseVector(_) => {
                        // A group bit covers k processors; clearing it on one
                        // eviction would under-target the others. Only an
                        // exclusive owner's eviction is provably the last.
                        if self.state[l] == EXCLUSIVE && self.owner[l] == pe as u16 {
                            words.fill(0);
                            now_empty = true;
                        }
                    }
                    _ => {
                        words[pe / 64] &= !(1u64 << (pe % 64));
                        now_empty = words.iter().all(|&w| w == 0);
                    }
                }
            }
            Repr::Ptrs { slots, ptrs, count } => {
                if count[l] != OVERFLOW {
                    let used = count[l] as usize;
                    let slice = &mut ptrs[l * *slots..(l + 1) * *slots];
                    if let Ok(pos) = slice[..used].binary_search(&(pe as u16)) {
                        slice.copy_within(pos + 1..used, pos);
                        count[l] = (used - 1) as u8;
                    }
                    now_empty = count[l] == 0;
                }
            }
        }
        if now_empty {
            if self.state[l] != UNOWNED {
                self.owned -= 1;
            }
            self.state[l] = UNOWNED;
        } else if self.state[l] == EXCLUSIVE {
            self.state[l] = SHARED;
        }
    }

    /// Shrink the sharer set to (at most) `{pe}` after every other
    /// potential holder was invalidated, keeping the state byte otherwise
    /// unchanged (used by un-timed staging copies). For `FullMap` this is
    /// bit-exact with removing each other sharer in turn; imprecise
    /// representations keep the minimal representable superset of `{pe}`.
    pub fn retain_only(&mut self, line: u64, pe: usize) {
        let l = line as usize;
        let mut now_empty = false;
        match &mut self.repr {
            Repr::Bits { words_per_line, bits } => {
                let bit = match self.mode {
                    DirectoryMode::CoarseVector(k) => pe / k,
                    _ => pe,
                };
                let w = l * *words_per_line;
                let words = &mut bits[w..w + *words_per_line];
                let keep = words[bit / 64] & (1u64 << (bit % 64));
                words.fill(0);
                words[bit / 64] = keep;
                now_empty = keep == 0;
            }
            Repr::Ptrs { slots, ptrs, count } => {
                let was_member = count[l] == OVERFLOW
                    || ptrs[l * *slots..l * *slots + count[l] as usize].contains(&(pe as u16));
                if was_member {
                    ptrs[l * *slots] = pe as u16;
                    count[l] = 1;
                } else {
                    count[l] = 0;
                    now_empty = true;
                }
            }
        }
        if now_empty {
            if self.state[l] != UNOWNED {
                self.owned -= 1;
            }
            self.state[l] = UNOWNED;
        } else if self.state[l] == EXCLUSIVE && self.owner[l] != pe as u16 {
            self.state[l] = SHARED;
        }
    }

    /// Visit every invalidation target of `line` except `exclude`, in
    /// ascending processor order (the order the bit-scan of the classic
    /// full-map word produced, preserved in every mode so runs are
    /// deterministic). Returns the number of targets visited — for
    /// imprecise representations this is the *charged* invalidation count,
    /// including over-targeted processors that hold no copy.
    #[inline]
    pub fn for_each_target(
        &self,
        line: u64,
        exclude: Option<usize>,
        mut f: impl FnMut(usize),
    ) -> u64 {
        let l = line as usize;
        let mut n = 0u64;
        match &self.repr {
            Repr::Bits { words_per_line, bits } => {
                let words = &bits[l * words_per_line..(l + 1) * words_per_line];
                match self.mode {
                    DirectoryMode::CoarseVector(k) => {
                        for (wi, &word) in words.iter().enumerate() {
                            let mut w = word;
                            while w != 0 {
                                let g = wi * 64 + w.trailing_zeros() as usize;
                                w &= w - 1;
                                let hi = ((g + 1) * k).min(self.n_procs);
                                for pe in g * k..hi {
                                    if Some(pe) != exclude {
                                        f(pe);
                                        n += 1;
                                    }
                                }
                            }
                        }
                    }
                    _ => {
                        for (wi, &word) in words.iter().enumerate() {
                            let mut w = word;
                            if let Some(x) = exclude {
                                if x / 64 == wi {
                                    w &= !(1u64 << (x % 64));
                                }
                            }
                            while w != 0 {
                                let pe = wi * 64 + w.trailing_zeros() as usize;
                                w &= w - 1;
                                f(pe);
                                n += 1;
                            }
                        }
                    }
                }
            }
            Repr::Ptrs { slots, ptrs, count } => {
                if count[l] == OVERFLOW {
                    // Broadcast: the directory lost track, so a write must
                    // invalidate every processor it cannot rule out.
                    for pe in 0..self.n_procs {
                        if Some(pe) != exclude {
                            f(pe);
                            n += 1;
                        }
                    }
                } else {
                    for &p in &ptrs[l * slots..l * slots + count[l] as usize] {
                        let pe = p as usize;
                        if Some(pe) != exclude {
                            f(pe);
                            n += 1;
                        }
                    }
                }
            }
        }
        n
    }

    /// Number of invalidations a write by `pe` to `line` would charge
    /// (targets excluding `pe`), without visiting them.
    pub fn target_count(&self, line: u64, exclude: Option<usize>) -> u64 {
        self.for_each_target(line, exclude, |_| {})
    }

    /// Whether the entry currently tracks its sharers precisely (always for
    /// `FullMap`; `false` once a limited-pointer entry has overflowed; for
    /// `CoarseVector` only single-owner/empty entries are provably precise).
    pub fn is_precise(&self, line: u64) -> bool {
        let l = line as usize;
        match &self.repr {
            Repr::Bits { .. } => match self.mode {
                DirectoryMode::CoarseVector(k) => k == 1 || self.state[l] != SHARED,
                _ => true,
            },
            Repr::Ptrs { count, .. } => count[l] != OVERFLOW,
        }
    }

    /// Representation-level invariants of one entry, for
    /// [`crate::Machine::audit`]: no sharer bit / pointer / group may refer
    /// to a processor at or beyond the processor count, pointer slots must
    /// be sorted and unique, and an Exclusive entry's set must be exactly
    /// its owner. Returns a violation description, or `None`.
    pub fn audit_entry(&self, line: u64) -> Option<String> {
        let l = line as usize;
        match &self.repr {
            Repr::Bits { words_per_line, bits } => {
                let words = &bits[l * words_per_line..(l + 1) * words_per_line];
                let units = match self.mode {
                    DirectoryMode::CoarseVector(k) => self.n_procs.div_ceil(k),
                    _ => self.n_procs,
                };
                for (wi, &w) in words.iter().enumerate() {
                    let hi = units.saturating_sub(wi * 64).min(64);
                    let ghost = if hi == 64 { 0 } else { w >> hi };
                    if ghost != 0 {
                        return Some(format!(
                            "line {line}: directory sharer bits beyond processor count ({ghost:#x} << {units})"
                        ));
                    }
                }
            }
            Repr::Ptrs { slots, ptrs, count } => {
                if count[l] == OVERFLOW {
                    return None;
                }
                let used = count[l] as usize;
                if used > *slots {
                    return Some(format!(
                        "line {line}: limited-pointer count {used} exceeds {slots} slots"
                    ));
                }
                let slice = &ptrs[l * slots..l * slots + used];
                if slice.iter().any(|&p| p as usize >= self.n_procs) {
                    return Some(format!(
                        "line {line}: limited-pointer slot beyond processor count ({slice:?})"
                    ));
                }
                if slice.windows(2).any(|w| w[0] >= w[1]) {
                    return Some(format!(
                        "line {line}: limited-pointer slots unsorted/duplicated ({slice:?})"
                    ));
                }
            }
        }
        if self.state[l] == EXCLUSIVE {
            let owner = self.owner[l] as usize;
            if owner >= self.n_procs {
                return Some(format!(
                    "line {line}: exclusive owner {owner} beyond processor count"
                ));
            }
            if !self.is_sharer(line, owner) {
                return Some(format!(
                    "line {line}: exclusive owner {owner} missing from its own sharer set"
                ));
            }
        }
        None
    }

    /// Number of lines not in Unowned state (diagnostics/tests). O(1): the
    /// count is maintained by the transitions above; debug builds check it
    /// against the full scan.
    pub fn owned_lines(&self) -> usize {
        debug_assert_eq!(
            self.owned,
            self.state.iter().filter(|&&s| s != UNOWNED).count(),
            "owned-line counter drifted from the entry states"
        );
        self.owned
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn targets(d: &Directory, line: u64, exclude: Option<usize>) -> Vec<usize> {
        let mut v = Vec::new();
        d.for_each_target(line, exclude, |pe| v.push(pe));
        v
    }

    #[test]
    fn lifecycle() {
        let mut d = Directory::full_map(16, 8);
        assert_eq!(d.state(3), DirState::Unowned);
        d.add_sharer(3, 5);
        assert_eq!(d.state(3), DirState::Shared);
        d.add_sharer(3, 9);
        assert_eq!(d.sharers(3), (1 << 5) | (1 << 9));
        assert_eq!(targets(&d, 3, Some(5)), vec![9]);
        d.set_exclusive(3, 9);
        assert_eq!(d.state(3), DirState::Exclusive(9));
        assert_eq!(d.sharers(3), 1 << 9);
        d.remove_sharer(3, 9);
        assert_eq!(d.state(3), DirState::Unowned);
    }

    #[test]
    fn exclusive_owner_eviction_with_stale_sharer() {
        let mut d = Directory::full_map(4, 4);
        d.add_sharer(0, 1);
        d.add_sharer(0, 2);
        d.remove_sharer(0, 1);
        assert_eq!(d.state(0), DirState::Shared);
        d.remove_sharer(0, 2);
        assert_eq!(d.state(0), DirState::Unowned);
    }

    #[test]
    fn owned_lines_counter_tracks_transitions() {
        let mut d = Directory::full_map(8, 8);
        assert_eq!(d.owned_lines(), 0);
        d.add_sharer(0, 1);
        d.add_sharer(0, 2); // already owned: no double count
        d.set_exclusive(1, 3);
        d.set_exclusive(1, 4); // exclusive -> exclusive: no double count
        assert_eq!(d.owned_lines(), 2);
        d.remove_sharer(0, 1);
        assert_eq!(d.owned_lines(), 2, "line 0 still has a sharer");
        d.remove_sharer(0, 2);
        assert_eq!(d.owned_lines(), 1, "last sharer left");
        d.remove_sharer(0, 2); // removing from an unowned line: no underflow
        assert_eq!(d.owned_lines(), 1);
        d.set_unowned(1);
        assert_eq!(d.owned_lines(), 0);
        d.set_unowned(1); // repeat: no underflow
        assert_eq!(d.owned_lines(), 0);
    }

    #[test]
    fn ensure_grows() {
        let mut d = Directory::full_map(64, 2);
        d.ensure(10);
        assert_eq!(d.state(9), DirState::Unowned);
        d.set_exclusive(9, 63);
        assert_eq!(d.state(9), DirState::Exclusive(63));
        // ensure() never shrinks.
        d.ensure(4);
        assert_eq!(d.state(9), DirState::Exclusive(63));
    }

    #[test]
    fn full_map_past_64_procs_uses_more_words() {
        let mut d = Directory::full_map(256, 4);
        d.add_sharer(0, 3);
        d.add_sharer(0, 64);
        d.add_sharer(0, 200);
        d.add_sharer(0, 255);
        assert!(d.is_sharer(0, 200));
        assert!(!d.is_sharer(0, 201));
        assert_eq!(targets(&d, 0, Some(64)), vec![3, 200, 255]);
        assert_eq!(d.target_count(0, None), 4);
        d.remove_sharer(0, 3);
        d.remove_sharer(0, 64);
        d.remove_sharer(0, 200);
        assert_eq!(d.state(0), DirState::Shared);
        d.remove_sharer(0, 255);
        assert_eq!(d.state(0), DirState::Unowned);
        assert!(d.audit_entry(0).is_none());
    }

    #[test]
    fn limited_pointer_overflow_broadcasts_and_reverts() {
        let mut d = Directory::new(DirectoryMode::LimitedPointer(2), 8, 4);
        d.add_sharer(0, 5);
        d.add_sharer(0, 1);
        assert!(d.is_precise(0));
        assert_eq!(targets(&d, 0, None), vec![1, 5], "pointers stay sorted");
        // Third sharer overflows the two pointer slots -> broadcast.
        d.add_sharer(0, 3);
        assert!(!d.is_precise(0));
        assert!(d.is_sharer(0, 7), "overflow is conservative: everyone may hold");
        assert_eq!(targets(&d, 0, Some(3)), vec![0, 1, 2, 4, 5, 6, 7]);
        assert_eq!(d.target_count(0, Some(3)), 7);
        // Evictions cannot shrink an overflowed set...
        d.remove_sharer(0, 1);
        assert!(!d.is_precise(0));
        assert_eq!(d.state(0), DirState::Shared);
        // ...but regaining a single owner reverts it to precise.
        d.set_exclusive(0, 3);
        assert!(d.is_precise(0));
        assert_eq!(d.state(0), DirState::Exclusive(3));
        assert_eq!(targets(&d, 0, None), vec![3]);
        d.set_unowned(0);
        assert_eq!(d.state(0), DirState::Unowned);
        assert_eq!(d.target_count(0, None), 0);
        assert!(d.audit_entry(0).is_none());
    }

    #[test]
    fn limited_pointer_precise_below_width() {
        let mut d = Directory::new(DirectoryMode::LimitedPointer(3), 16, 2);
        d.add_sharer(1, 9);
        d.add_sharer(1, 4);
        d.add_sharer(1, 9); // re-add: no duplicate slot
        assert_eq!(targets(&d, 1, None), vec![4, 9]);
        d.remove_sharer(1, 4);
        assert_eq!(targets(&d, 1, None), vec![9]);
        d.remove_sharer(1, 9);
        assert_eq!(d.state(1), DirState::Unowned);
        assert!(d.audit_entry(1).is_none());
    }

    #[test]
    fn coarse_vector_targets_whole_groups() {
        let mut d = Directory::new(DirectoryMode::CoarseVector(4), 16, 2);
        d.add_sharer(0, 5); // group 1 = PEs 4..8
        d.add_sharer(0, 14); // group 3 = PEs 12..16
        assert!(d.is_sharer(0, 7), "whole group is targeted");
        assert!(!d.is_sharer(0, 8));
        assert_eq!(targets(&d, 0, Some(5)), vec![4, 6, 7, 12, 13, 14, 15]);
        assert_eq!(d.target_count(0, Some(5)), 7);
        // A plain eviction cannot clear the group bit (others may hold)...
        d.remove_sharer(0, 5);
        assert!(d.is_sharer(0, 5), "group bit stays: stale over-targeting");
        // ...but an exclusive owner's eviction is provably the last copy.
        d.set_exclusive(0, 14);
        assert_eq!(targets(&d, 0, None), vec![12, 13, 14, 15]);
        d.remove_sharer(0, 14);
        assert_eq!(d.state(0), DirState::Unowned);
        assert_eq!(d.target_count(0, None), 0);
        assert!(d.audit_entry(0).is_none());
    }

    #[test]
    fn coarse_vector_ragged_last_group() {
        // 10 PEs with k = 4: groups {0..4}, {4..8}, {8..10} (ragged).
        let mut d = Directory::new(DirectoryMode::CoarseVector(4), 10, 1);
        d.add_sharer(0, 9);
        assert_eq!(targets(&d, 0, None), vec![8, 9], "last group is clamped to n_procs");
        assert!(d.audit_entry(0).is_none());
    }

    #[test]
    fn retain_only_matches_per_sharer_removal() {
        let mut d = Directory::full_map(8, 2);
        d.add_sharer(0, 1);
        d.add_sharer(0, 5);
        d.add_sharer(0, 6);
        d.retain_only(0, 5);
        assert_eq!(d.sharers(0), 1 << 5);
        assert_eq!(d.state(0), DirState::Shared);
        d.retain_only(0, 2); // 2 never held it -> empty
        assert_eq!(d.state(0), DirState::Unowned);
        // Exclusive-by-pe is untouched; exclusive-by-other collapses.
        d.set_exclusive(1, 3);
        d.retain_only(1, 3);
        assert_eq!(d.state(1), DirState::Exclusive(3));
        d.retain_only(1, 4);
        assert_eq!(d.state(1), DirState::Unowned);
    }

    #[test]
    fn audit_entry_flags_ghost_bits() {
        // 10 PEs in one word: bits 10..64 must be zero. Forge one via
        // add_sharer with an out-of-range pe (the machine never does this).
        let mut d = Directory::full_map(10, 1);
        d.add_sharer(0, 12);
        assert!(d.audit_entry(0).is_some());
    }
}
