//! Interconnect topology: processors on nodes, nodes on routers, routers
//! wired by a pluggable interconnect ([`InterconnectKind`]).
//!
//! The Origin 2000 in the paper has 64 processors in 32 nodes (two per
//! node); each pair of nodes shares a router, and the 16 routers form a
//! 4-dimensional hypercube. Read latency grows by roughly 100 ns per router
//! hop (Section 2). The hop count between two routers in a hypercube is the
//! Hamming distance of their identifiers — the bit-exact default. The mesh
//! and fat-tree alternatives keep the node/router structure and the
//! per-hop latency model and change only how router-to-router hop counts
//! are computed, so every downstream cost (remote latency, intervention
//! forwarding, contention windows) prices the new fabric automatically.

use crate::config::{InterconnectKind, MachineConfig};

/// Static topology derived from a [`MachineConfig`].
#[derive(Debug, Clone)]
pub struct Topology {
    kind: InterconnectKind,
    procs_per_node: usize,
    nodes_per_router: usize,
    n_nodes: usize,
    n_routers: usize,
    /// Mesh grid width: smallest W with W² ≥ routers (row-major ids).
    mesh_width: usize,
    mem_local_ns: f64,
    remote_base_ns: f64,
    hop_ns: f64,
    /// Per-node average memory latency over all homes, precomputed at
    /// construction (a processor's average depends only on its node).
    /// [`Topology::avg_latency`] serves lookups from here; debug builds
    /// re-derive the on-demand value and assert equality.
    avg_ns: Vec<f64>,
}

impl Topology {
    pub fn new(cfg: &MachineConfig) -> Self {
        let n_routers = cfg.n_routers();
        let mut mesh_width = 1usize;
        while mesh_width * mesh_width < n_routers {
            mesh_width += 1;
        }
        let mut t = Topology {
            kind: cfg.interconnect,
            procs_per_node: cfg.procs_per_node,
            nodes_per_router: cfg.nodes_per_router,
            n_nodes: cfg.n_nodes(),
            n_routers,
            mesh_width,
            mem_local_ns: cfg.mem_local_ns,
            remote_base_ns: cfg.remote_base_ns,
            hop_ns: cfg.hop_ns,
            avg_ns: Vec::new(),
        };
        // Precompute the per-node latency averages (O(nodes²) once, ≤ 512²
        // at MAX_PROCS — cheap next to building the caches). The loop body
        // is the exact on-demand computation, so the table entry and the
        // recomputed value are the same f64, not merely close.
        t.avg_ns = (0..t.n_nodes).map(|node| t.avg_latency_uncached(node)).collect();
        t
    }

    /// Node hosting processor `pe`.
    #[inline]
    pub fn node_of(&self, pe: usize) -> usize {
        pe / self.procs_per_node
    }

    /// Router attached to `node`.
    #[inline]
    pub fn router_of(&self, node: usize) -> usize {
        node / self.nodes_per_router
    }

    /// Number of nodes in the machine.
    #[inline]
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// The interconnect wiring this topology routes over.
    #[inline]
    pub fn kind(&self) -> InterconnectKind {
        self.kind
    }

    /// Router hops between two nodes: 0 if they share a router, otherwise
    /// the fabric's shortest-route length between their routers.
    ///
    /// **Hypercube** (default): the Hamming distance of the router ids.
    /// This stays exact for *partial* hypercubes — machines whose router
    /// count R is not a power of two, so ids occupy the contiguous range
    /// [0, R) rather than a full cube. A shortest route of exactly
    /// Hamming-distance length always exists through present routers:
    /// first clear the bits of `a \ b` (each step only lowers the id, so
    /// every intermediate is < a < R), then set the bits of `b \ a` (every
    /// intermediate is a submask of b plus `a ∧ b`, hence <= b < R). The
    /// partial-hypercube tests below check this against BFS.
    ///
    /// **Mesh2D**: routers sit row-major on a W-wide grid (W = ⌈√R⌉), and
    /// XY routing gives the Manhattan distance. Exact on ragged grids too:
    /// with ids [0, R) row-major, the bottom row is the only partial one
    /// and is a prefix of its columns, so routing horizontally in the
    /// *upper* endpoint's row first and then vertically down the
    /// destination column only ever crosses present routers.
    ///
    /// **FatTree(k)**: routers are the leaves of a complete k-ary switch
    /// tree; a message climbs to the lowest common ancestor and back down,
    /// so the hop count is 2ℓ where ℓ is the smallest level at which
    /// `a / k^ℓ == b / k^ℓ`. Verified against BFS over the explicit switch
    /// graph below.
    #[inline]
    pub fn hops(&self, node_a: usize, node_b: usize) -> u32 {
        let ra = self.router_of(node_a);
        let rb = self.router_of(node_b);
        match self.kind {
            InterconnectKind::Hypercube => (ra ^ rb).count_ones(),
            InterconnectKind::Mesh2D => {
                let w = self.mesh_width;
                let (xa, ya) = (ra % w, ra / w);
                let (xb, yb) = (rb % w, rb / w);
                (xa.abs_diff(xb) + ya.abs_diff(yb)) as u32
            }
            InterconnectKind::FatTree(k) => {
                let (mut a, mut b) = (ra, rb);
                let mut level = 0u32;
                while a != b {
                    a /= k;
                    b /= k;
                    level += 1;
                }
                2 * level
            }
        }
    }

    /// Uncontended latency for processor `pe` to fetch a line homed at
    /// `home` (first-word latency; matches the paper's 313 / ~796 / ~1010 ns
    /// local / average / worst-case numbers for the 64-processor machine).
    #[inline]
    pub fn mem_latency(&self, pe: usize, home: usize) -> f64 {
        let n = self.node_of(pe);
        if n == home {
            self.mem_local_ns
        } else {
            self.mem_local_ns + self.remote_base_ns + f64::from(self.hops(n, home)) * self.hop_ns
        }
    }

    /// Latency between two *nodes* (used for forwarded interventions and
    /// message transfers).
    #[inline]
    pub fn node_latency(&self, from: usize, to: usize) -> f64 {
        if from == to {
            self.mem_local_ns
        } else {
            self.mem_local_ns + self.remote_base_ns + f64::from(self.hops(from, to)) * self.hop_ns
        }
    }

    /// Average memory latency from `pe` over all nodes, weighted uniformly
    /// (the ~796 ns figure). Served from the table precomputed at
    /// construction; debug builds re-derive the on-demand value and assert
    /// the table entry is identical.
    #[inline]
    pub fn avg_latency(&self, pe: usize) -> f64 {
        let node = self.node_of(pe);
        let cached = self.avg_ns[node];
        debug_assert_eq!(
            cached,
            self.avg_latency_uncached(node),
            "avg_latency table stale for node {node}"
        );
        cached
    }

    /// The on-demand O(nodes) average the table replaces: explicit
    /// left-to-right accumulation, because f64 addition is not associative
    /// and the lint suite (`float_reassociation`) requires time sums in
    /// this crate to pin their order syntactically rather than through
    /// `Iterator::sum`'s implementation detail. `node` is the *node* id
    /// (averages are per-node; every PE of a node shares one).
    fn avg_latency_uncached(&self, node: usize) -> f64 {
        let pe = node * self.procs_per_node;
        let mut total = 0.0_f64;
        for h in 0..self.n_nodes {
            total += self.mem_latency(pe, h);
        }
        total / self.n_nodes as f64
    }

    /// Number of routers (diagnostics/tests).
    #[inline]
    pub fn n_routers(&self) -> usize {
        self.n_routers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;

    fn topo64() -> Topology {
        Topology::new(&MachineConfig::origin2000(64))
    }

    #[test]
    fn placement() {
        let t = topo64();
        assert_eq!(t.node_of(0), 0);
        assert_eq!(t.node_of(1), 0);
        assert_eq!(t.node_of(2), 1);
        assert_eq!(t.node_of(63), 31);
        assert_eq!(t.router_of(0), 0);
        assert_eq!(t.router_of(1), 0);
        assert_eq!(t.router_of(2), 1);
        assert_eq!(t.router_of(31), 15);
    }

    #[test]
    fn hypercube_hops() {
        let t = topo64();
        // Same router.
        assert_eq!(t.hops(0, 1), 0);
        // Routers 0 and 15 differ in 4 bits -> 4 hops.
        assert_eq!(t.hops(0, 31), 4);
        // Routers 0 and 1 -> 1 hop (nodes 0 and 2).
        assert_eq!(t.hops(0, 2), 1);
        // Symmetry.
        for a in 0..32 {
            for b in 0..32 {
                assert_eq!(t.hops(a, b), t.hops(b, a));
            }
        }
    }

    #[test]
    fn latencies_match_paper() {
        let t = topo64();
        assert!((t.mem_latency(0, 0) - 313.0).abs() < 1e-9);
        // Worst case: 4 hops -> 313 + 300 + 400 = 1013 (paper: ~1010).
        let worst = (0..32).map(|h| t.mem_latency(0, h)).fold(0.0_f64, f64::max);
        assert!((worst - 1013.0).abs() < 1e-9);
        // Average over local + all remote: paper says ~796.
        let avg = t.avg_latency(0);
        assert!((avg - 796.0).abs() < 60.0, "avg latency {avg} too far from 796");
    }

    #[test]
    fn avg_latency_table_matches_on_demand_everywhere() {
        for p in [1usize, 3, 12, 64, 256] {
            for kind in
                [InterconnectKind::Hypercube, InterconnectKind::Mesh2D, InterconnectKind::FatTree(4)]
            {
                let t = Topology::new(&MachineConfig::origin2000(p).with_interconnect(kind));
                for pe in 0..p {
                    let cached = t.avg_latency(pe);
                    let on_demand = t.avg_latency_uncached(t.node_of(pe));
                    assert_eq!(cached, on_demand, "p={p} {kind} pe={pe}");
                }
            }
        }
    }

    #[test]
    fn triangle_inequality_holds_for_hops() {
        for kind in
            [InterconnectKind::Hypercube, InterconnectKind::Mesh2D, InterconnectKind::FatTree(2)]
        {
            let t = Topology::new(&MachineConfig::origin2000(64).with_interconnect(kind));
            for a in 0..32 {
                for b in 0..32 {
                    for c in 0..32 {
                        assert!(
                            t.hops(a, c) <= t.hops(a, b) + t.hops(b, c),
                            "{kind}: triangle violated at {a},{b},{c}"
                        );
                    }
                }
            }
        }
    }

    /// Shortest-path hop count over a partial hypercube with `routers`
    /// present routers (ids [0, routers)), where an edge joins two present
    /// routers differing in exactly one bit.
    fn bfs_hops(routers: usize, from: usize, to: usize) -> u32 {
        let bits = usize::BITS - (routers - 1).leading_zeros();
        let mut dist = vec![u32::MAX; routers];
        let mut queue = std::collections::VecDeque::from([from]);
        dist[from] = 0;
        while let Some(r) = queue.pop_front() {
            for bit in 0..bits {
                let next = r ^ (1 << bit);
                if next < routers && dist[next] == u32::MAX {
                    dist[next] = dist[r] + 1;
                    queue.push_back(next);
                }
            }
        }
        dist[to]
    }

    /// The Hamming-distance claim behind [`Topology::hops`] must hold on
    /// partial hypercubes too: with a contiguous id range [0, R) for
    /// non-power-of-two R, a shortest route of exactly Hamming-distance
    /// length exists through present routers. Checked exhaustively against
    /// BFS for every router pair at several ragged sizes.
    #[test]
    fn partial_hypercube_hamming_distance_is_reachable() {
        for routers in [3usize, 5, 6, 7, 11, 12, 13] {
            for a in 0..routers {
                for b in 0..routers {
                    let hamming = (a ^ b).count_ones();
                    assert_eq!(
                        bfs_hops(routers, a, b),
                        hamming,
                        "routers={routers} {a}->{b}: claimed shortest route absent"
                    );
                }
            }
        }
    }

    /// End to end on a non-power-of-two machine: p = 12 gives 6 nodes on
    /// 3 routers (a ragged half of a 2-cube), and node-level hop counts
    /// must agree with BFS over the present routers.
    #[test]
    fn partial_hypercube_machine_hops_match_bfs() {
        let cfg = MachineConfig::origin2000(12);
        cfg.validate().unwrap();
        let t = Topology::new(&cfg);
        assert_eq!(t.n_nodes(), 6);
        let routers = 3;
        for a in 0..t.n_nodes() {
            for b in 0..t.n_nodes() {
                let (ra, rb) = (t.router_of(a), t.router_of(b));
                assert!(ra < routers && rb < routers);
                assert_eq!(t.hops(a, b), bfs_hops(routers, ra, rb), "nodes {a}->{b}");
            }
        }
        // Router 1 and 2 differ in two bits (01 vs 10): the 2-hop route
        // must pass through a present router — 0 (00) works, 3 (11) is
        // absent — and `hops` must charge exactly those 2 hops.
        assert_eq!(t.hops(2, 4), 2);
    }

    /// Shortest-path hop count over a ragged 2-D mesh: `routers` present,
    /// ids [0, routers) row-major on a `width`-wide grid, edges between
    /// 4-neighbours that are both present.
    fn bfs_mesh_hops(routers: usize, width: usize, from: usize, to: usize) -> u32 {
        let mut dist = vec![u32::MAX; routers];
        let mut queue = std::collections::VecDeque::from([from]);
        dist[from] = 0;
        while let Some(r) = queue.pop_front() {
            let (x, y) = (r % width, r / width);
            let mut push = |nx: usize, ny: usize| {
                let next = ny * width + nx;
                if next < routers && dist[next] == u32::MAX {
                    dist[next] = dist[r] + 1;
                    queue.push_back(next);
                }
            };
            if x > 0 {
                push(x - 1, y);
            }
            if x + 1 < width {
                push(x + 1, y);
            }
            if y > 0 {
                push(x, y - 1);
            }
            push(x, y + 1);
        }
        dist[to]
    }

    /// The Manhattan-distance claim behind the mesh arm of
    /// [`Topology::hops`] must hold on ragged grids (router counts that
    /// don't fill the W×W square): checked exhaustively against BFS. The
    /// route exists because the partial bottom row is a column prefix —
    /// go horizontal in the upper endpoint's (full) row first, then
    /// vertical down the destination column.
    #[test]
    fn mesh_manhattan_distance_is_reachable() {
        for routers in [2usize, 3, 5, 6, 7, 11, 12, 13, 16] {
            let mut width = 1;
            while width * width < routers {
                width += 1;
            }
            for a in 0..routers {
                for b in 0..routers {
                    let manhattan = ((a % width).abs_diff(b % width)
                        + (a / width).abs_diff(b / width)) as u32;
                    assert_eq!(
                        bfs_mesh_hops(routers, width, a, b),
                        manhattan,
                        "routers={routers} w={width} {a}->{b}: claimed shortest route absent"
                    );
                }
            }
        }
    }

    /// End to end: mesh machine hop counts match BFS over the explicit
    /// grid graph, including a ragged-grid size (p = 52 → 13 routers on a
    /// 4-wide grid with a 1-router bottom row).
    #[test]
    fn mesh_machine_hops_match_bfs() {
        for p in [52usize, 64] {
            let cfg = MachineConfig::origin2000(p).with_interconnect(InterconnectKind::Mesh2D);
            cfg.validate().unwrap();
            let t = Topology::new(&cfg);
            let routers = cfg.n_routers();
            let mut width = 1;
            while width * width < routers {
                width += 1;
            }
            for a in 0..t.n_nodes() {
                for b in 0..t.n_nodes() {
                    assert_eq!(
                        t.hops(a, b),
                        bfs_mesh_hops(routers, width, t.router_of(a), t.router_of(b)),
                        "p={p} nodes {a}->{b}"
                    );
                }
            }
        }
    }

    /// Shortest-path hop count through an explicit complete k-ary switch
    /// tree over `routers` leaves: graph nodes are (level, id) with leaf
    /// level 0; an edge joins (l, i) and (l+1, i/k).
    fn bfs_fat_tree_hops(routers: usize, k: usize, from: usize, to: usize) -> u32 {
        // Number of levels until everything collapses to one switch.
        let mut levels = 0usize;
        let mut span = routers;
        while span > 1 {
            span = span.div_ceil(k);
            levels += 1;
        }
        let width: Vec<usize> = (0..=levels)
            .map(|l| {
                let mut w = routers;
                for _ in 0..l {
                    w = w.div_ceil(k);
                }
                w
            })
            .collect();
        let offset: Vec<usize> =
            width.iter().scan(0, |acc, &w| {
                let o = *acc;
                *acc += w;
                Some(o)
            }).collect();
        let total: usize = width.iter().sum();
        let mut dist = vec![u32::MAX; total];
        let mut queue = std::collections::VecDeque::from([offset[0] + from]);
        dist[offset[0] + from] = 0;
        while let Some(v) = queue.pop_front() {
            let level = (0..=levels).rfind(|&l| v >= offset[l]).unwrap();
            let id = v - offset[level];
            let mut push = |u: usize| {
                if dist[u] == u32::MAX {
                    dist[u] = dist[v] + 1;
                    queue.push_back(u);
                }
            };
            if level < levels {
                push(offset[level + 1] + id / k);
            }
            if level > 0 {
                for c in 0..k {
                    let child = id * k + c;
                    if child < width[level - 1] {
                        push(offset[level - 1] + child);
                    }
                }
            }
        }
        dist[offset[0] + to]
    }

    /// The 2×(levels-to-common-ancestor) claim behind the fat-tree arm of
    /// [`Topology::hops`]: checked exhaustively against BFS over the
    /// explicit switch graph for several arities and leaf counts
    /// (including counts that leave the top levels ragged).
    #[test]
    fn fat_tree_ancestor_distance_matches_bfs() {
        for k in [2usize, 3, 4] {
            for routers in [2usize, 3, 5, 7, 8, 11, 16] {
                for a in 0..routers {
                    for b in 0..routers {
                        let mut x = a;
                        let mut y = b;
                        let mut level = 0u32;
                        while x != y {
                            x /= k;
                            y /= k;
                            level += 1;
                        }
                        assert_eq!(
                            bfs_fat_tree_hops(routers, k, a, b),
                            2 * level,
                            "k={k} routers={routers} {a}->{b}"
                        );
                    }
                }
            }
        }
    }

    /// End to end: fat-tree machine hop counts match the BFS graph, and
    /// far-apart routers pay deeper common ancestors.
    #[test]
    fn fat_tree_machine_hops_match_bfs() {
        let cfg = MachineConfig::origin2000(64).with_interconnect(InterconnectKind::FatTree(4));
        cfg.validate().unwrap();
        let t = Topology::new(&cfg);
        let routers = cfg.n_routers();
        for a in 0..t.n_nodes() {
            for b in 0..t.n_nodes() {
                assert_eq!(
                    t.hops(a, b),
                    bfs_fat_tree_hops(routers, 4, t.router_of(a), t.router_of(b)),
                    "nodes {a}->{b}"
                );
            }
        }
        // Same 4-ary subtree: 2 hops; different subtrees: 4 hops.
        assert_eq!(t.hops(0, 2), 2); // routers 0 and 1
        assert_eq!(t.hops(0, 8 * 2), 4); // routers 0 and 8
    }

    /// Paper-shape sanity: at equal p, the mesh's Θ(√R) distances dominate
    /// the hypercube's Θ(log R) ones in the aggregate — larger diameter and
    /// larger all-pairs mean. (Pairwise domination is false by design:
    /// row-adjacent routers like 1 and 2 are 1 mesh hop but 2 cube hops.)
    #[test]
    fn mesh_hops_dominate_hypercube_hops() {
        for p in [64usize, 256] {
            let cube = Topology::new(&MachineConfig::origin2000(p));
            let mesh = Topology::new(
                &MachineConfig::origin2000(p).with_interconnect(InterconnectKind::Mesh2D),
            );
            let nodes = cube.n_nodes();
            let (mut cube_sum, mut mesh_sum) = (0u64, 0u64);
            let (mut cube_max, mut mesh_max) = (0u32, 0u32);
            for a in 0..nodes {
                for b in 0..nodes {
                    cube_sum += u64::from(cube.hops(a, b));
                    mesh_sum += u64::from(mesh.hops(a, b));
                    cube_max = cube_max.max(cube.hops(a, b));
                    mesh_max = mesh_max.max(mesh.hops(a, b));
                }
            }
            assert!(
                mesh_sum > cube_sum,
                "p={p}: mesh all-pairs hops {mesh_sum} must exceed hypercube {cube_sum}"
            );
            assert!(
                mesh_max > cube_max,
                "p={p}: mesh diameter {mesh_max} must exceed hypercube {cube_max}"
            );
        }
    }
}
