//! Interconnect topology: processors on nodes, nodes on routers, routers in
//! a hypercube.
//!
//! The Origin 2000 in the paper has 64 processors in 32 nodes (two per
//! node); each pair of nodes shares a router, and the 16 routers form a
//! 4-dimensional hypercube. Read latency grows by roughly 100 ns per router
//! hop (Section 2). The hop count between two routers in a hypercube is the
//! Hamming distance of their identifiers.

use crate::config::MachineConfig;

/// Static topology derived from a [`MachineConfig`].
#[derive(Debug, Clone)]
pub struct Topology {
    procs_per_node: usize,
    nodes_per_router: usize,
    n_nodes: usize,
    mem_local_ns: f64,
    remote_base_ns: f64,
    hop_ns: f64,
}

impl Topology {
    pub fn new(cfg: &MachineConfig) -> Self {
        Topology {
            procs_per_node: cfg.procs_per_node,
            nodes_per_router: cfg.nodes_per_router,
            n_nodes: cfg.n_nodes(),
            mem_local_ns: cfg.mem_local_ns,
            remote_base_ns: cfg.remote_base_ns,
            hop_ns: cfg.hop_ns,
        }
    }

    /// Node hosting processor `pe`.
    #[inline]
    pub fn node_of(&self, pe: usize) -> usize {
        pe / self.procs_per_node
    }

    /// Router attached to `node`.
    #[inline]
    pub fn router_of(&self, node: usize) -> usize {
        node / self.nodes_per_router
    }

    /// Number of nodes in the machine.
    #[inline]
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Router hops between two nodes: 0 if they share a router, otherwise
    /// the Hamming distance between router ids (hypercube routing).
    ///
    /// This stays exact for *partial* hypercubes — machines whose router
    /// count R is not a power of two, so ids occupy the contiguous range
    /// [0, R) rather than a full cube. A shortest route of exactly
    /// Hamming-distance length always exists through present routers:
    /// first clear the bits of `a \ b` (each step only lowers the id, so
    /// every intermediate is < a < R), then set the bits of `b \ a` (every
    /// intermediate is a submask of b plus `a ∧ b`, hence <= b < R). The
    /// partial-hypercube tests below check this against BFS.
    #[inline]
    pub fn hops(&self, node_a: usize, node_b: usize) -> u32 {
        let ra = self.router_of(node_a);
        let rb = self.router_of(node_b);
        (ra ^ rb).count_ones()
    }

    /// Uncontended latency for processor `pe` to fetch a line homed at
    /// `home` (first-word latency; matches the paper's 313 / ~796 / ~1010 ns
    /// local / average / worst-case numbers for the 64-processor machine).
    #[inline]
    pub fn mem_latency(&self, pe: usize, home: usize) -> f64 {
        let n = self.node_of(pe);
        if n == home {
            self.mem_local_ns
        } else {
            self.mem_local_ns + self.remote_base_ns + f64::from(self.hops(n, home)) * self.hop_ns
        }
    }

    /// Latency between two *nodes* (used for forwarded interventions and
    /// message transfers).
    #[inline]
    pub fn node_latency(&self, from: usize, to: usize) -> f64 {
        if from == to {
            self.mem_local_ns
        } else {
            self.mem_local_ns + self.remote_base_ns + f64::from(self.hops(from, to)) * self.hop_ns
        }
    }

    /// Average memory latency from `pe` over all nodes, weighted uniformly.
    /// Used only in tests/diagnostics to confirm the ~796 ns figure.
    pub fn avg_latency(&self, pe: usize) -> f64 {
        // Explicit left-to-right accumulation: f64 addition is not
        // associative, and the lint suite (`float_reassociation`) requires
        // time sums in this crate to pin their order syntactically rather
        // than through `Iterator::sum`'s implementation detail.
        let mut total = 0.0_f64;
        for h in 0..self.n_nodes {
            total += self.mem_latency(pe, h);
        }
        total / self.n_nodes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;

    fn topo64() -> Topology {
        Topology::new(&MachineConfig::origin2000(64))
    }

    #[test]
    fn placement() {
        let t = topo64();
        assert_eq!(t.node_of(0), 0);
        assert_eq!(t.node_of(1), 0);
        assert_eq!(t.node_of(2), 1);
        assert_eq!(t.node_of(63), 31);
        assert_eq!(t.router_of(0), 0);
        assert_eq!(t.router_of(1), 0);
        assert_eq!(t.router_of(2), 1);
        assert_eq!(t.router_of(31), 15);
    }

    #[test]
    fn hypercube_hops() {
        let t = topo64();
        // Same router.
        assert_eq!(t.hops(0, 1), 0);
        // Routers 0 and 15 differ in 4 bits -> 4 hops.
        assert_eq!(t.hops(0, 31), 4);
        // Routers 0 and 1 -> 1 hop (nodes 0 and 2).
        assert_eq!(t.hops(0, 2), 1);
        // Symmetry.
        for a in 0..32 {
            for b in 0..32 {
                assert_eq!(t.hops(a, b), t.hops(b, a));
            }
        }
    }

    #[test]
    fn latencies_match_paper() {
        let t = topo64();
        assert!((t.mem_latency(0, 0) - 313.0).abs() < 1e-9);
        // Worst case: 4 hops -> 313 + 300 + 400 = 1013 (paper: ~1010).
        let worst = (0..32).map(|h| t.mem_latency(0, h)).fold(0.0_f64, f64::max);
        assert!((worst - 1013.0).abs() < 1e-9);
        // Average over local + all remote: paper says ~796.
        let avg = t.avg_latency(0);
        assert!((avg - 796.0).abs() < 60.0, "avg latency {avg} too far from 796");
    }

    #[test]
    fn triangle_inequality_holds_for_hops() {
        let t = topo64();
        for a in 0..32 {
            for b in 0..32 {
                for c in 0..32 {
                    assert!(t.hops(a, c) <= t.hops(a, b) + t.hops(b, c));
                }
            }
        }
    }

    /// Shortest-path hop count over a partial hypercube with `routers`
    /// present routers (ids [0, routers)), where an edge joins two present
    /// routers differing in exactly one bit.
    fn bfs_hops(routers: usize, from: usize, to: usize) -> u32 {
        let bits = usize::BITS - (routers - 1).leading_zeros();
        let mut dist = vec![u32::MAX; routers];
        let mut queue = std::collections::VecDeque::from([from]);
        dist[from] = 0;
        while let Some(r) = queue.pop_front() {
            for bit in 0..bits {
                let next = r ^ (1 << bit);
                if next < routers && dist[next] == u32::MAX {
                    dist[next] = dist[r] + 1;
                    queue.push_back(next);
                }
            }
        }
        dist[to]
    }

    /// The Hamming-distance claim behind [`Topology::hops`] must hold on
    /// partial hypercubes too: with a contiguous id range [0, R) for
    /// non-power-of-two R, a shortest route of exactly Hamming-distance
    /// length exists through present routers. Checked exhaustively against
    /// BFS for every router pair at several ragged sizes.
    #[test]
    fn partial_hypercube_hamming_distance_is_reachable() {
        for routers in [3usize, 5, 6, 7, 11, 12, 13] {
            for a in 0..routers {
                for b in 0..routers {
                    let hamming = (a ^ b).count_ones();
                    assert_eq!(
                        bfs_hops(routers, a, b),
                        hamming,
                        "routers={routers} {a}->{b}: claimed shortest route absent"
                    );
                }
            }
        }
    }

    /// End to end on a non-power-of-two machine: p = 12 gives 6 nodes on
    /// 3 routers (a ragged half of a 2-cube), and node-level hop counts
    /// must agree with BFS over the present routers.
    #[test]
    fn partial_hypercube_machine_hops_match_bfs() {
        let cfg = MachineConfig::origin2000(12);
        cfg.validate().unwrap();
        let t = Topology::new(&cfg);
        assert_eq!(t.n_nodes(), 6);
        let routers = 3;
        for a in 0..t.n_nodes() {
            for b in 0..t.n_nodes() {
                let (ra, rb) = (t.router_of(a), t.router_of(b));
                assert!(ra < routers && rb < routers);
                assert_eq!(t.hops(a, b), bfs_hops(routers, ra, rb), "nodes {a}->{b}");
            }
        }
        // Router 1 and 2 differ in two bits (01 vs 10): the 2-hop route
        // must pass through a present router — 0 (00) works, 3 (11) is
        // absent — and `hops` must charge exactly those 2 hops.
        assert_eq!(t.hops(2, 4), 2);
    }
}
