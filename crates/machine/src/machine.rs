//! The simulated machine: processors with caches and TLBs, a directory
//! protocol over a shared address space, and per-processor virtual time.
//!
//! The machine is driven by the programming-model runtimes (crate
//! `ccsort-models`): they translate loads/stores/messages into line touches,
//! DMA transfers and explicit time charges. Execution is bulk-synchronous —
//! processors run one at a time between barriers, which is semantically
//! equivalent to parallel execution for the sorting programs because all
//! their intra-phase writes target disjoint locations — and completely
//! deterministic.

use crate::cache::{Cache, LineState, Probe};
use crate::config::{MachineConfig, ProtocolMode};
use crate::contention::{Delay, PhaseTraffic};
use crate::directory::{Directory, DirState};
use crate::memory::{AddressSpace, ArrayId, Placement};
use crate::race::{MsgToken, RaceDetector, RaceReport};
use crate::stats::{Bucket, EventCounters, TimeBreakdown};
use crate::tlb::Tlb;
use crate::topology::Topology;

/// Spatial/temporal character of an access stream; selects how much of a
/// miss round-trip stalls the processor (see `MachineConfig`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pattern {
    /// Contiguous sweep: hardware prefetching and the write buffer pipeline
    /// back-to-back line misses.
    Streamed,
    /// Fine-grained scattered accesses: every miss is exposed.
    Scattered,
}

#[derive(Debug, Clone)]
pub(crate) struct PeState {
    pub(crate) l1: Cache,
    pub(crate) cache: Cache,
    pub(crate) tlb: Tlb,
    pub(crate) time: f64,
    pub(crate) brk: TimeBreakdown,
    pub(crate) ev: EventCounters,
    /// Fast-path hint: the line this PE touched most recently via
    /// `touch_line` (`u64::MAX` = none). While the hint stands, the line is
    /// the MRU entry of its L1 set and its page is the TLB's `last` page, so
    /// a repeat touch can skip the whole protocol walk (see `touch_line` for
    /// the exactness argument). Cleared whenever an action outside this PE's
    /// own `touch_line` flow changes the line's cache state.
    pub(crate) hint_line: u64,
    /// Whether the hinted line was last touched by a *write* (L1 and L2 both
    /// Modified and MRU). Required for a repeat write to take the fast path;
    /// a read-established hint must send the next write down the slow path
    /// (its L2 stamp/state update is observable).
    pub(crate) hint_write: bool,
}

impl PeState {
    /// Invalidate a line at every level; returns whether the L2 copy was
    /// dirty.
    pub(crate) fn invalidate_all(&mut self, line: u64) -> bool {
        if line == self.hint_line {
            self.hint_line = u64::MAX;
        }
        self.l1.invalidate(line);
        self.cache.invalidate(line)
    }

    /// Downgrade a line to Shared at every level; returns whether the L2
    /// copy was dirty.
    pub(crate) fn downgrade_all(&mut self, line: u64) -> bool {
        if line == self.hint_line {
            // Reads may still fast-path a Shared line; writes no longer can.
            self.hint_write = false;
        }
        self.l1.downgrade(line);
        self.cache.downgrade(line)
    }
}

/// The simulated CC-NUMA multiprocessor.
#[derive(Debug, Clone)]
pub struct Machine {
    pub(crate) cfg: MachineConfig,
    pub(crate) topo: Topology,
    pub(crate) mem: AddressSpace,
    pub(crate) dir: Directory,
    pub(crate) pes: Vec<PeState>,
    pub(crate) traffic: PhaseTraffic,
    phase_start: Vec<f64>,
    pub(crate) node_of: Vec<usize>,
    line_shift: u32,
    page_shift: u32,
    /// Program-declared sections for per-phase profiling: every time charge
    /// is also attributed to the current section (the paper's
    /// "program/library instrumentation").
    sections: Vec<(&'static str, Vec<TimeBreakdown>)>,
    cur_section: usize,
    /// When set, [`Machine::audit`] runs at every [`Machine::section`]
    /// boundary and panics on the first violation (opt-in; see
    /// [`Machine::set_section_audit`]).
    section_audit: bool,
    /// Happens-before race detector; `None` keeps every access path free of
    /// detector work (see `MachineConfig::race_detector`).
    race: Option<RaceDetector>,
    /// Scratch buffers reused by `resolve_phase`, so phase resolution does
    /// not allocate on the hot path (one pair for the machine's lifetime).
    resolve_elapsed: Vec<f64>,
    resolve_delays: Vec<Delay>,
    /// Debug-build sampling counter for the fast-path equivalence check:
    /// every `EQUIV_SAMPLE_PERIOD`-th `touch_run` replays the legacy
    /// per-line path on a clone of the machine and asserts identical
    /// times, breakdowns, counters and phase traffic.
    #[cfg(debug_assertions)]
    equiv_tick: u64,
}

/// Sampling period of the debug fast-path equivalence check (one full
/// machine clone per sampled run, so keep it sparse).
#[cfg(debug_assertions)]
const EQUIV_SAMPLE_PERIOD: u64 = 256;

impl Machine {
    /// Build a machine, panicking on an invalid configuration (the message
    /// names the offending field). Fallible callers — config-file loaders,
    /// CLI replay — use [`Machine::try_new`] instead.
    pub fn new(cfg: MachineConfig) -> Self {
        Machine::try_new(cfg).unwrap_or_else(|e| panic!("invalid MachineConfig: {e}"))
    }

    /// Build a machine, returning the validation error instead of panicking.
    pub fn try_new(cfg: MachineConfig) -> Result<Self, String> {
        cfg.validate()?;
        let topo = Topology::new(&cfg);
        let mem = AddressSpace::new(&cfg);
        let sets = cfg.l2.sets();
        let l1_sets = cfg.l1.sets();
        let lines_per_page = cfg.page_size / cfg.l2.line;
        let pes: Vec<PeState> = (0..cfg.n_procs)
            .map(|_pe| PeState {
                l1: if cfg.physical_cache_indexing {
                    Cache::physically_indexed(l1_sets, cfg.l1.assoc, lines_per_page)
                } else {
                    Cache::new(l1_sets, cfg.l1.assoc)
                },
                cache: if cfg.physical_cache_indexing {
                    Cache::physically_indexed(sets, cfg.l2.assoc, lines_per_page)
                } else {
                    Cache::new(sets, cfg.l2.assoc)
                },
                tlb: Tlb::new(cfg.tlb_entries),
                time: 0.0,
                brk: TimeBreakdown::default(),
                ev: EventCounters::default(),
                hint_line: u64::MAX,
                hint_write: false,
            })
            .collect();
        let node_of = (0..cfg.n_procs).map(|pe| topo.node_of(pe)).collect();
        let n_nodes = cfg.n_nodes();
        let n_procs = cfg.n_procs;
        Ok(Machine {
            line_shift: cfg.line_shift(),
            page_shift: cfg.page_shift(),
            traffic: PhaseTraffic::new(n_procs, n_nodes),
            phase_start: vec![0.0; n_procs],
            dir: Directory::new(cfg.directory_mode, n_procs, 0),
            sections: vec![("(untagged)", vec![TimeBreakdown::default(); n_procs])],
            cur_section: 0,
            section_audit: false,
            race: if cfg.race_detector {
                let mut det = RaceDetector::new(n_procs);
                det.set_batching(cfg.fast_path);
                Some(det)
            } else {
                None
            },
            resolve_elapsed: Vec::new(),
            resolve_delays: Vec::new(),
            cfg,
            topo,
            mem,
            pes,
            node_of,
            #[cfg(debug_assertions)]
            equiv_tick: 0,
        })
    }

    /// The machine's configuration.
    pub fn cfg(&self) -> &MachineConfig {
        &self.cfg
    }

    /// The interconnect topology.
    pub fn topo(&self) -> &Topology {
        &self.topo
    }

    /// Number of processors.
    pub fn n_procs(&self) -> usize {
        self.cfg.n_procs
    }

    // ------------------------------------------------------------------
    // Allocation and raw data access
    // ------------------------------------------------------------------

    /// Allocate a simulated array of `len` u32 elements.
    pub fn alloc(&mut self, len: usize, placement: Placement, name: &'static str) -> ArrayId {
        let id = self.mem.alloc(len, placement, name, &self.topo);
        self.dir.ensure(self.mem.total_lines());
        id
    }

    /// Element count of an array.
    pub fn len(&self, arr: ArrayId) -> usize {
        self.mem.len(arr)
    }

    /// Raw (un-timed) view of an array's contents — for verification and
    /// host-side staging only; simulated code must use the timed accessors.
    pub fn raw(&self, arr: ArrayId) -> &[u32] {
        self.mem.slice(arr, 0..self.mem.len(arr))
    }

    /// Raw (un-timed) mutable view — for initialising inputs.
    pub fn raw_mut(&mut self, arr: ArrayId) -> &mut [u32] {
        let n = self.mem.len(arr);
        self.mem.slice_mut(arr, 0..n)
    }

    /// Un-timed data copy between arrays, initiated by `pe`. For runtime
    /// internals that charge the time of the copy separately (e.g. a staged
    /// MPI receive charges `touch_run` + busy cycles and then moves the
    /// bytes with this) and for the un-timed tails of fixed-cost-scaled
    /// structure traversals (`*_fixed` in `ccsort-models`).
    ///
    /// Although no time is charged, the copy does mutate the backing store,
    /// so any *other* processor's cached copy of a destination line becomes
    /// stale — a later timed read there would be accounted as a hit while
    /// returning data the modelled hardware could never have delivered to
    /// that cache. To keep the coherence state honest this invalidates every
    /// destination-line copy cached by a processor other than `pe` (the
    /// initiator's own copy stays: `pe` performed the writes, so its cache
    /// holding the line in Modified state is exactly right). No traffic or
    /// latency is charged — at the runtime call sites the same ranges are
    /// covered by timed protocol operations (`touch_run`/`dma_copy`) and no
    /// foreign copies exist; this is a safety net for the scaled-model tails
    /// where boundary lines can linger in other caches from earlier phases.
    ///
    /// The race detector deliberately does *not* treat this as an access:
    /// like `raw`/`raw_mut` it is simulator staging, and the program-level
    /// access it stands in for is always covered by a timed operation on the
    /// same range (or, for `*_fixed` tails, by the timed prefix that
    /// represents the whole traversal under fixed-cost scaling).
    pub fn copy_untimed(
        &mut self,
        pe: usize,
        src: ArrayId,
        src_off: usize,
        dst: ArrayId,
        dst_off: usize,
        len: usize,
    ) {
        if len == 0 {
            return;
        }
        self.mem.copy(src, src_off, dst, dst_off, len);
        let d_first = self.mem.addr_of(dst, dst_off) >> self.line_shift;
        let d_last = self.mem.addr_of(dst, dst_off + len - 1) >> self.line_shift;
        for line in d_first..=d_last {
            let (dir, pes) = (&self.dir, &mut self.pes);
            dir.for_each_target(line, Some(pe), |other| {
                pes[other].invalidate_all(line);
            });
            self.dir.retain_only(line, pe);
        }
        #[cfg(debug_assertions)]
        for q in 0..self.cfg.n_procs {
            self.debug_assert_hint(q, "copy_untimed exit");
        }
    }

    // ------------------------------------------------------------------
    // Time accounting
    // ------------------------------------------------------------------

    /// Current virtual time of `pe` in ns.
    pub fn now(&self, pe: usize) -> f64 {
        self.pes[pe].time
    }

    /// Per-bucket time breakdown of `pe`.
    pub fn breakdown(&self, pe: usize) -> TimeBreakdown {
        self.pes[pe].brk
    }

    /// Event counters of `pe`.
    pub fn events(&self, pe: usize) -> EventCounters {
        self.pes[pe].ev
    }

    /// Advance `pe`'s clock by `ns`, attributing it to `bucket` (and to the
    /// current profiling section).
    #[inline]
    pub fn charge(&mut self, pe: usize, ns: f64, bucket: Bucket) {
        let s = &mut self.pes[pe];
        s.time += ns;
        s.brk.charge(bucket, ns);
        self.sections[self.cur_section].1[pe].charge(bucket, ns);
    }

    /// Declare the current program section for per-phase profiling; charges
    /// accumulate under the most recent `section` call. Re-using a name
    /// resumes its accumulator (so per-pass phases aggregate naturally).
    pub fn section(&mut self, name: &'static str) {
        if self.section_audit {
            let errs = self.audit();
            assert!(
                errs.is_empty(),
                "machine audit failed leaving section {:?} (entering {name:?}):\n  {}",
                self.sections[self.cur_section].0,
                errs.join("\n  ")
            );
        }
        if let Some(i) = self.sections.iter().position(|(n, _)| *n == name) {
            self.cur_section = i;
        } else {
            self.sections.push((name, vec![TimeBreakdown::default(); self.cfg.n_procs]));
            self.cur_section = self.sections.len() - 1;
        }
    }

    /// Per-section mean per-processor breakdowns, in first-use order.
    pub fn section_profile(&self) -> Vec<(&'static str, TimeBreakdown)> {
        let k = self.cfg.n_procs as f64;
        self.sections
            .iter()
            .map(|(name, per_pe)| {
                let mut t = TimeBreakdown::default();
                for b in per_pe {
                    t.add(b);
                }
                t.busy /= k;
                t.lmem /= k;
                t.rmem /= k;
                t.sync /= k;
                (*name, t)
            })
            .collect()
    }

    /// Charge `cycles` of instruction execution.
    #[inline]
    pub fn busy_cycles(&mut self, pe: usize, cycles: f64) {
        self.charge(pe, cycles * self.cfg.cycle_ns, Bucket::Busy);
    }

    /// Charge instruction work on a *fixed-size* (n-independent) structure:
    /// divided by the machine's `fixed_cost_div` so its weight relative to
    /// Θ(n) work matches the full-scale machine (see `MachineConfig`).
    #[inline]
    pub fn busy_cycles_fixed(&mut self, pe: usize, cycles: f64) {
        self.charge(pe, cycles * self.cfg.cycle_ns / self.cfg.fixed_cost_div, Bucket::Busy);
    }

    /// The fixed-size-work cost divisor (1 at full scale).
    #[inline]
    pub fn fixed_div(&self) -> f64 {
        self.cfg.fixed_cost_div
    }

    /// Number of elements of a fixed-size structure to run through the
    /// *timed* path so that the charged cost is `1/fixed_cost_div` of the
    /// full traversal (at least 1).
    #[inline]
    pub fn fixed_prefix(&self, len: usize) -> usize {
        ((len as f64 / self.cfg.fixed_cost_div).ceil() as usize).clamp(1, len.max(1))
    }

    /// Record an explicit message (MPI / SHMEM) for the counters.
    pub fn count_message(&mut self, pe: usize, bytes: usize) {
        let s = &mut self.pes[pe];
        s.ev.messages += 1;
        s.ev.message_bytes += bytes as u64;
    }

    // ------------------------------------------------------------------
    // Coherent loads and stores
    // ------------------------------------------------------------------

    /// Feed a timed range access to the race detector (no-op when off).
    #[inline]
    fn race_access(&mut self, pe: usize, arr: ArrayId, off: usize, n: usize, write: bool) {
        if let Some(det) = self.race.as_mut() {
            let section = self.sections[self.cur_section].0;
            det.range_access(pe, arr.0, self.mem.len(arr), self.mem.name(arr), off, n, write, section);
        }
    }

    /// Feed a timed scattered index batch to the race detector (no-op when
    /// off): one array/length/section resolution for the whole slice.
    #[inline]
    fn race_access_indices(&mut self, pe: usize, arr: ArrayId, idxs: &[usize], write: bool) {
        if let Some(det) = self.race.as_mut() {
            let section = self.sections[self.cur_section].0;
            det.scatter_access(pe, arr.0, self.mem.len(arr), self.mem.name(arr), idxs, write, section);
        }
    }

    /// Debug invariant behind the repeat-touch fast path: whenever a hint is
    /// set, the hinted line is resident in the PE's L1 (and Modified there
    /// if `hint_write`). Checked at the boundaries of every operation that
    /// can move lines, so a violation is pinned to the operation that
    /// introduced it rather than to the much later touch that trips on it.
    #[cfg(debug_assertions)]
    fn debug_assert_hint(&self, pe: usize, site: &str) {
        let s = &self.pes[pe];
        if s.hint_line != u64::MAX {
            let st = s.l1.state(s.hint_line);
            assert!(
                st.is_some(),
                "hint invariant broken at {site}: pe {pe} hint line {} not in L1",
                s.hint_line
            );
            if s.hint_write {
                assert!(
                    matches!(st, Some(LineState::Modified)),
                    "hint invariant broken at {site}: pe {pe} line {} hint_write but L1 {st:?}",
                    s.hint_line
                );
            }
        }
    }

    /// Timed scattered read of one element.
    #[inline]
    pub fn read_at(&mut self, pe: usize, arr: ArrayId, idx: usize) -> u32 {
        self.race_access(pe, arr, idx, 1, false);
        let addr = self.mem.addr_of(arr, idx);
        self.touch_line(pe, addr >> self.line_shift, false, Pattern::Scattered);
        self.mem.get(arr, idx)
    }

    /// Timed scattered write of one element.
    #[inline]
    pub fn write_at(&mut self, pe: usize, arr: ArrayId, idx: usize, v: u32) {
        self.race_access(pe, arr, idx, 1, true);
        let addr = self.mem.addr_of(arr, idx);
        self.touch_line(pe, addr >> self.line_shift, true, Pattern::Scattered);
        self.mem.set(arr, idx, v);
    }

    /// Timed read with an explicit access pattern.
    #[inline]
    pub fn read_pat(&mut self, pe: usize, arr: ArrayId, idx: usize, pat: Pattern) -> u32 {
        self.race_access(pe, arr, idx, 1, false);
        let addr = self.mem.addr_of(arr, idx);
        self.touch_line(pe, addr >> self.line_shift, false, pat);
        self.mem.get(arr, idx)
    }

    /// Timed write with an explicit access pattern.
    #[inline]
    pub fn write_pat(&mut self, pe: usize, arr: ArrayId, idx: usize, v: u32, pat: Pattern) {
        self.race_access(pe, arr, idx, 1, true);
        let addr = self.mem.addr_of(arr, idx);
        self.touch_line(pe, addr >> self.line_shift, true, pat);
        self.mem.set(arr, idx, v);
    }

    /// Timed sequential read of `out.len()` elements starting at `off` into
    /// `out`. Each line is touched once with the streamed pattern; per-
    /// element CPU work is the caller's to charge via `busy_cycles`.
    pub fn read_run(&mut self, pe: usize, arr: ArrayId, off: usize, out: &mut [u32]) {
        if out.is_empty() {
            return;
        }
        self.touch_run(pe, arr, off, out.len(), false);
        out.copy_from_slice(self.mem.slice(arr, off..off + out.len()));
    }

    /// Timed sequential write of `src` into the array starting at `off`.
    pub fn write_run(&mut self, pe: usize, arr: ArrayId, off: usize, src: &[u32]) {
        if src.is_empty() {
            return;
        }
        self.touch_run(pe, arr, off, src.len(), true);
        self.mem.slice_mut(arr, off..off + src.len()).copy_from_slice(src);
    }

    /// Timed scattered gather: read the elements `arr[idxs[k]]` in
    /// submission order into `out`. Observationally identical to one
    /// [`Machine::read_at`] per index, but batched end-to-end: one `addr_of`
    /// base resolution and one race-detector array/section lookup for the
    /// whole slice, and a flattened per-element walk (see
    /// [`Machine::touch_batch`]).
    pub fn gather_run(&mut self, pe: usize, arr: ArrayId, idxs: &[usize], out: &mut [u32]) {
        assert_eq!(idxs.len(), out.len(), "gather_run: index/output length mismatch");
        if idxs.is_empty() {
            return;
        }
        if !self.cfg.fast_path {
            // Reference: literally one `read_at` per element — per-element
            // detector call, address resolution, walk and data move, exactly
            // the sequence the call sites ran before the batched engine.
            for (v, &idx) in out.iter_mut().zip(idxs) {
                *v = self.read_at(pe, arr, idx);
            }
            return;
        }
        let len = self.mem.len(arr);
        assert!(idxs.iter().all(|&idx| idx < len), "gather_run: index out of bounds");
        // The walk is throughput-bound on the host, so the data move is
        // fused into it (one traversal of `idxs`, no per-element bounds
        // checks — every index was validated above). The walk never touches
        // backing stores, so reading the array data from inside it is
        // sound; raw pointers sidestep the borrow of `self` the walk holds.
        let data = self.mem.slice(arr, 0..len).as_ptr();
        let out_ptr = out.as_mut_ptr();
        self.batch_walk::<false, _>(pe, arr, idxs, Pattern::Scattered, |k, idx| {
            // SAFETY: `idx < len` was asserted for the whole batch above;
            // `k < idxs.len() == out.len()`; `out` is exclusively borrowed
            // and disjoint from the machine; the walk does not mutate the
            // backing store `data` points into.
            unsafe { *out_ptr.add(k) = *data.add(idx) };
        });
    }

    /// Timed scattered scatter: write `vals[k]` to `arr[idxs[k]]` in
    /// submission order (duplicate indices keep last-write-wins semantics).
    /// Observationally identical to one [`Machine::write_at`] per index;
    /// see [`Machine::gather_run`] for what the batching amortizes.
    pub fn scatter_run(&mut self, pe: usize, arr: ArrayId, idxs: &[usize], vals: &[u32]) {
        assert_eq!(idxs.len(), vals.len(), "scatter_run: index/value length mismatch");
        if idxs.is_empty() {
            return;
        }
        if !self.cfg.fast_path {
            // Reference: literally one `write_at` per element (see
            // `gather_run`). Duplicate indices keep last-write-wins order.
            for (&idx, &v) in idxs.iter().zip(vals) {
                self.write_at(pe, arr, idx, v);
            }
            return;
        }
        let len = self.mem.len(arr);
        assert!(idxs.iter().all(|&idx| idx < len), "scatter_run: index out of bounds");
        // Fused walk + data move; see `gather_run`.
        let data = self.mem.slice_mut(arr, 0..len).as_mut_ptr();
        let vals_ptr = vals.as_ptr();
        self.batch_walk::<true, _>(pe, arr, idxs, Pattern::Scattered, |k, idx| {
            // SAFETY: `idx < len` was asserted for the whole batch above;
            // `k < idxs.len() == vals.len()`; the walk neither reads nor
            // writes the backing store `data` points into, so the store
            // cannot alias any state the walk holds borrowed.
            unsafe { *data.add(idx) = *vals_ptr.add(k) };
        });
    }

    /// Touch the lines of `arr[idxs[k]]` in submission order with pattern
    /// `pat`, without moving data.
    ///
    /// With `MachineConfig::fast_path` on (the default) the batch runs a
    /// flattened single-pass walk: the race detector gets the whole index
    /// slice in one call, the array base is resolved once, repeats of the
    /// hinted line skip the walk, same-page neighbours skip the TLB access
    /// (a `last`-page hit is pure in the reference walk), and each element
    /// performs exactly one L1 and at most one L2 tag probe with the common
    /// hit arms inlined; only upgrades and misses take the heavyweight
    /// directory path. Everything observable — f64 time in accumulation
    /// order, breakdowns, sections, event counters, phase traffic, race
    /// verdicts — is bit-identical to the per-element reference sequence,
    /// which `fast_path = false` still runs literally (interleaved
    /// per-element detector calls and `touch_line_ref` walks). Debug builds
    /// replay sampled batches through the reference walk on a clone and
    /// assert equivalence, mirroring `touch_run`.
    pub fn touch_batch(&mut self, pe: usize, arr: ArrayId, idxs: &[usize], write: bool, pat: Pattern) {
        if write {
            self.batch_walk::<true, _>(pe, arr, idxs, pat, |_, _| {});
        } else {
            self.batch_walk::<false, _>(pe, arr, idxs, pat, |_, _| {});
        }
    }

    /// The engine behind [`Machine::touch_batch`], [`Machine::gather_run`]
    /// and [`Machine::scatter_run`]: the batched walk with a caller-supplied
    /// per-element data move `mv(k, idxs[k])`, invoked exactly once per
    /// element in submission order (fused into the walk loop so a batch
    /// traverses `idxs` once). The move must not touch simulator state.
    fn batch_walk<const WRITE: bool, F: FnMut(usize, usize)>(
        &mut self,
        pe: usize,
        arr: ArrayId,
        idxs: &[usize],
        pat: Pattern,
        mut mv: F,
    ) {
        if idxs.is_empty() {
            return;
        }
        #[cfg(debug_assertions)]
        self.debug_assert_hint(pe, "touch_batch entry");
        debug_assert!(
            idxs.iter().all(|&idx| idx < self.mem.len(arr)),
            "touch_batch: index out of bounds"
        );
        // Element addresses are linear (`base + 4*idx`), so one `addr_of`
        // resolution pins the whole batch.
        let base = self.mem.addr_of(arr, 0);

        if !self.cfg.fast_path {
            // Reference path: literally the per-element `read_at`/`write_at`
            // sequence (detector call interleaved with each walk and move).
            for (k, &idx) in idxs.iter().enumerate() {
                self.race_access(pe, arr, idx, 1, WRITE);
                self.touch_line_ref(pe, (base + 4 * idx as u64) >> self.line_shift, WRITE, pat);
                mv(k, idx);
            }
            return;
        }

        // Detector state is disjoint from timing state, so feeding the whole
        // batch first is observationally identical to interleaving.
        self.race_access_indices(pe, arr, idxs, WRITE);

        #[cfg(debug_assertions)]
        let reference = self.equiv_reference_batch(pe, base, idxs, WRITE, pat);

        let page_lines_shift = self.page_shift - self.line_shift;
        let line_shift = self.line_shift;
        let l2_hit_ns = self.cfg.l2_hit_ns;
        let tlb_miss_ns = self.cfg.tlb_miss_ns;
        let cur_section = self.cur_section;
        // Last page this batch ran a TLB access for: a repeat would hit the
        // TLB's pure `last`-page check, so skipping it is exact. (Hint hits
        // skip the TLB in the reference walk too, so they don't update it.)
        let mut prev_page = u64::MAX;
        // Set-index frame hash of `prev_page` (see `Cache::frame_of`);
        // initialized on the first element, which always misses `prev_page`.
        let mut prev_frame = 0u64;
        // Batch-local table of pages verified TLB-resident since the last
        // in-batch TLB miss (direct-mapped, generation-stamped so a miss
        // invalidates it in O(1)). Skipping the TLB access for such a page
        // is exact: a hit would only set the referenced bit — already set
        // by the access that put the page in this table, and only misses
        // clear referenced bits (no other PE runs mid-batch) — and refresh
        // `last`, whose value is unobservable whenever the invariant
        // "page == last implies its referenced bit is set" holds, which
        // every reachable TLB state satisfies. This removes the per-element
        // page-table lookup that dominates the warm scattered walk.
        const SEEN_PAGES: usize = 64;
        let mut seen_pages = [0u64; SEEN_PAGES]; // page + 1; 0 = empty
        let mut i = 0;
        while i < idxs.len() {
            // Tight loop over the remaining indices with the borrows
            // hoisted; falls out only for the heavyweight upgrade/miss
            // protocol path.
            let mut slow: Option<(usize, u64, Probe)> = None;
            {
                let s = &mut self.pes[pe];
                let sec = &mut self.sections[cur_section].1[pe];
                // Hoist every loop-carried scalar into a stack local and
                // write it back once per tight loop: the data-move closure
                // carries raw pointers, so state living behind `s` would
                // otherwise be spilled and reloaded every element. The
                // operation *sequence* on each value is unchanged (the f64
                // accumulations in particular run in the same order on the
                // same values), so this is bit-exact; only the residency
                // changes.
                let mut hint_line = s.hint_line;
                let mut hint_write = s.hint_write;
                let mut l1_hits = s.ev.l1_hits;
                let mut tlb_misses = s.ev.tlb_misses;
                let mut cache_hits = s.ev.cache_hits;
                let mut time = s.time;
                let mut brk_lmem = s.brk.lmem;
                let mut sec_lmem = sec.lmem;
                let mut l1_clock = s.l1.walk_clock();
                let mut l2_clock = s.cache.walk_clock();
                let rest = &idxs[i..];
                for (j, &idx) in rest.iter().enumerate() {
                    // Data move first: every element moves data exactly once
                    // regardless of which walk arm it takes (including the
                    // element that breaks to the protocol path below).
                    mv(i + j, idx);
                    let line = (base + 4 * idx as u64) >> line_shift;
                    // Repeat of the hinted line: the whole walk is a no-op
                    // apart from the counter (see `touch_line`).
                    if hint_line == line && (!WRITE || hint_write) {
                        l1_hits += 1;
                        continue;
                    }
                    let page = line >> page_lines_shift;
                    if page != prev_page {
                        prev_page = page;
                        // L1 and L2 are physically indexed with the same
                        // page geometry, so one frame hash serves both
                        // probes for every line on this page.
                        prev_frame = Cache::frame_of(page);
                        let slot = (page as usize) & (SEEN_PAGES - 1);
                        if seen_pages[slot] != page + 1 {
                            if s.tlb.access(page) {
                                seen_pages[slot] = page + 1;
                            } else {
                                // In-batch miss: the clock hand may have
                                // cleared referenced bits — drop the table
                                // (misses are rare; the clear is 512 B).
                                seen_pages = [0u64; SEEN_PAGES];
                                seen_pages[slot] = page + 1;
                                tlb_misses += 1;
                                // Inlined `charge`: same f64 accumulation
                                // order (all walk charges are Lmem).
                                time += tlb_miss_ns;
                                brk_lmem += tlb_miss_ns;
                                sec_lmem += tlb_miss_ns;
                            }
                        }
                    }
                    // L1 filter (identical to `touch_line_post_tlb`, with
                    // the probe force-inlined; see `Cache::probe_fast_ext`).
                    if let Probe::Hit(_) = s.l1.probe_fast_ext(line, prev_frame, WRITE, &mut l1_clock) {
                        if WRITE {
                            s.cache.probe_fast_ext(line, prev_frame, true, &mut l2_clock);
                        }
                        l1_hits += 1;
                        hint_line = line;
                        hint_write = WRITE;
                        continue;
                    }
                    // One L2 tag probe; the Hit arm of `touch_line_post_l2`
                    // inlined (refill + charge + hint).
                    match s.cache.probe_fast_ext(line, prev_frame, WRITE, &mut l2_clock) {
                        Probe::Hit(state) => {
                            cache_hits += 1;
                            s.l1.install_fast(line, prev_frame, state, &mut l1_clock);
                            time += l2_hit_ns;
                            brk_lmem += l2_hit_ns;
                            sec_lmem += l2_hit_ns;
                            hint_line = line;
                            hint_write = WRITE;
                        }
                        probe => {
                            slow = Some((j, line, probe));
                            break;
                        }
                    }
                }
                // Write the localized state back before the slow path (the
                // reference protocol below reads and updates all of it).
                s.hint_line = hint_line;
                s.hint_write = hint_write;
                s.ev.l1_hits = l1_hits;
                s.ev.tlb_misses = tlb_misses;
                s.ev.cache_hits = cache_hits;
                s.time = time;
                s.brk.lmem = brk_lmem;
                sec.lmem = sec_lmem;
                s.l1.set_walk_clock(l1_clock);
                s.cache.set_walk_clock(l2_clock);
            }
            match slow {
                Some((j, line, probe)) => {
                    i += j + 1;
                    self.touch_line_post_l2(pe, line, WRITE, pat, probe);
                }
                None => i = idxs.len(),
            }
        }

        #[cfg(debug_assertions)]
        if let Some(reference) = reference {
            self.assert_equiv(pe, &reference);
        }
        #[cfg(debug_assertions)]
        self.debug_assert_hint(pe, "touch_batch exit");
    }

    /// Touch every line of `[off, off+len)` with the streamed pattern
    /// without moving data (used when the data is staged separately).
    ///
    /// With `MachineConfig::fast_path` on (the default), the run is walked
    /// page-by-page: one TLB access per page instead of one per line
    /// (within-page repeats are `last`-page no-ops in the per-line walk),
    /// the last/first line addresses are derived arithmetically from a
    /// single `addr_of` resolution, and repeat touches of the PE's hinted
    /// line skip the protocol walk entirely. Debug builds assert on sampled
    /// runs that this is bit-identical to the per-line reference path.
    pub fn touch_run(&mut self, pe: usize, arr: ArrayId, off: usize, len: usize, write: bool) {
        if len == 0 {
            return;
        }
        #[cfg(debug_assertions)]
        self.debug_assert_hint(pe, "touch_run entry");
        self.race_access(pe, arr, off, len, write);
        // Element addresses are linear (`base + 4*idx`), so one `addr_of`
        // resolution pins the whole run.
        let first_addr = self.mem.addr_of(arr, off);
        let first = first_addr >> self.line_shift;
        let last = (first_addr + 4 * (len as u64 - 1)) >> self.line_shift;
        debug_assert_eq!(last, self.mem.addr_of(arr, off + len - 1) >> self.line_shift);

        if !self.cfg.fast_path {
            for line in first..=last {
                self.touch_line_ref(pe, line, write, Pattern::Streamed);
            }
            #[cfg(debug_assertions)]
            self.debug_assert_hint(pe, "touch_run slow exit");
            return;
        }

        #[cfg(debug_assertions)]
        let reference = self.equiv_reference(pe, first, last, write);

        let page_lines_shift = self.page_shift - self.line_shift;
        let mut line = first;
        // Sweep-attempt backoff. The bulk sweeps below are bitwise
        // identical to the per-line walk *whenever* they are attempted, so
        // the attempt policy is purely a host-time concern: on a cold
        // stream (every line missing both caches) each attempt is two
        // wasted tag scans per line. After `COLD_BACKOFF` consecutive
        // fall-throughs to the heavyweight path we stop probing and only
        // re-probe on every 16th line to detect a warm suffix.
        const COLD_BACKOFF: u32 = 2;
        let mut cold_streak: u32 = 0;
        while line <= last {
            let page = line >> page_lines_shift;
            let end = (((page + 1) << page_lines_shift) - 1).min(last);
            // One TLB access covers every line of this page: in the per-line
            // reference walk, all touches after the first hit the TLB's
            // `last`-page check and change nothing.
            if !self.pes[pe].tlb.access(page) {
                self.pes[pe].ev.tlb_misses += 1;
                self.charge(pe, self.cfg.tlb_miss_ns, Bucket::Lmem);
            }
            while line <= end {
                if cold_streak < COLD_BACKOFF || line & 15 == 0 {
                    // Bulk warm-sweep: the longest prefix of consecutive L1
                    // hits is processed inside one tight cache loop, with
                    // state, stamp and clock effects bitwise identical to the
                    // per-line walk (see `Cache::sweep_hits`). Warm streamed
                    // re-reads never leave this branch.
                    let s = &mut self.pes[pe];
                    let swept = s.l1.sweep_hits(line, end, write);
                    if swept > 0 {
                        cold_streak = 0;
                        let last_hit = line + swept - 1;
                        if write {
                            s.cache.sweep_keep_in_step(line, last_hit);
                        }
                        s.ev.l1_hits += swept;
                        s.hint_line = last_hit;
                        s.hint_write = write;
                        line += swept;
                        if line > end {
                            break;
                        }
                    }
                    // Next line misses L1: bulk-refill consecutive L2 hits
                    // (again bitwise identical to the per-line walk; see
                    // `cache::sweep_l2_refill`), charging per line to keep the
                    // f64 accumulation order of the reference path.
                    let s = &mut self.pes[pe];
                    let refilled =
                        crate::cache::sweep_l2_refill(&mut s.l1, &mut s.cache, line, end, write);
                    if refilled > 0 {
                        cold_streak = 0;
                        s.ev.cache_hits += refilled;
                        let last_hit = line + refilled - 1;
                        s.hint_line = last_hit;
                        s.hint_write = write;
                        // Inlined per-line `charge` with the borrows hoisted:
                        // same f64 accumulation sequence as the per-line walk.
                        let l2_hit_ns = self.cfg.l2_hit_ns;
                        let sec = &mut self.sections[self.cur_section].1[pe];
                        for _ in 0..refilled {
                            s.time += l2_hit_ns;
                            s.brk.charge(Bucket::Lmem, l2_hit_ns);
                            sec.charge(Bucket::Lmem, l2_hit_ns);
                        }
                        line += refilled;
                        if line > end {
                            break;
                        }
                        // The stopping line may itself be L1-resident (lines
                        // already cached from earlier activity): let the hit
                        // sweep reconsider it before the heavyweight path.
                        continue;
                    }
                }
                // Stopping line: the full L2/directory walk.
                self.touch_line_post_tlb(pe, line, write, Pattern::Streamed);
                cold_streak = cold_streak.saturating_add(1);
                line += 1;
            }
        }

        #[cfg(debug_assertions)]
        if let Some(reference) = reference {
            self.assert_equiv(pe, &reference);
        }
        #[cfg(debug_assertions)]
        self.debug_assert_hint(pe, "touch_run exit");
    }

    /// Debug-build sampling for the fast-path equivalence assertion: every
    /// `EQUIV_SAMPLE_PERIOD`-th streamed run, clone the machine and replay
    /// the run through the legacy per-line path on the clone.
    #[cfg(debug_assertions)]
    fn equiv_reference(&mut self, pe: usize, first: u64, last: u64, write: bool) -> Option<Machine> {
        self.equiv_tick = self.equiv_tick.wrapping_add(1);
        if !self.equiv_tick.is_multiple_of(EQUIV_SAMPLE_PERIOD) {
            return None;
        }
        let mut reference = self.clone();
        for line in first..=last {
            reference.touch_line_ref(pe, line, write, Pattern::Streamed);
        }
        Some(reference)
    }

    /// Sampled debug equivalence for `touch_batch`: replay the index batch
    /// through the per-element reference walk on a clone (taken after the
    /// detector call, which both sides share) and compare observables.
    #[cfg(debug_assertions)]
    fn equiv_reference_batch(
        &mut self,
        pe: usize,
        base: u64,
        idxs: &[usize],
        write: bool,
        pat: Pattern,
    ) -> Option<Machine> {
        self.equiv_tick = self.equiv_tick.wrapping_add(1);
        if !self.equiv_tick.is_multiple_of(EQUIV_SAMPLE_PERIOD) {
            return None;
        }
        let mut reference = self.clone();
        for &idx in idxs {
            reference.touch_line_ref(pe, (base + 4 * idx as u64) >> self.line_shift, write, pat);
        }
        Some(reference)
    }

    /// Assert that the fast path left `pe` with exactly the observable state
    /// the per-line reference path produces. Cache stamps and clock values
    /// may legitimately differ (the fast path skips re-stamping MRU lines,
    /// which preserves every LRU *order*), so the comparison covers the
    /// simulation's outputs: time, breakdowns, event counters and the phase
    /// traffic fed to the contention model.
    #[cfg(debug_assertions)]
    fn assert_equiv(&self, pe: usize, reference: &Machine) {
        assert_eq!(
            self.pes[pe].time, reference.pes[pe].time,
            "fast path diverged from reference on pe {pe}: time"
        );
        assert_eq!(
            self.pes[pe].brk, reference.pes[pe].brk,
            "fast path diverged from reference on pe {pe}: breakdown"
        );
        assert_eq!(
            self.pes[pe].ev, reference.pes[pe].ev,
            "fast path diverged from reference on pe {pe}: events"
        );
        assert_eq!(
            self.traffic, reference.traffic,
            "fast path diverged from reference on pe {pe}: phase traffic"
        );
    }

    /// The per-line reference path: exactly the pre-fast-path `touch_line`.
    /// Used when `MachineConfig::fast_path` is off and by the debug
    /// equivalence sampler; never consults the hint.
    fn touch_line_ref(&mut self, pe: usize, line: u64, write: bool, pat: Pattern) {
        let page = (line << self.line_shift) >> self.page_shift;
        if !self.pes[pe].tlb.access(page) {
            self.pes[pe].ev.tlb_misses += 1;
            self.charge(pe, self.cfg.tlb_miss_ns, Bucket::Lmem);
        }
        self.touch_line_post_tlb(pe, line, write, pat);
    }

    /// The full coherence path for one line touch.
    ///
    /// Fast path: if `line` is the PE's hinted line (its most recent touch),
    /// the whole walk below is a no-op apart from the `l1_hits` counter.
    /// Exactness: the hint guarantees (a) the line's page is the TLB's
    /// `last` page, so the TLB access would hit without touching any state;
    /// (b) the line is resident and MRU in its L1 set (every `touch_line`
    /// exit leaves it so), so the L1 probe would hit and its re-stamp of an
    /// already-MRU line cannot change any future LRU decision; (c) for
    /// writes, `hint_write` additionally guarantees L1 and L2 both hold the
    /// line Modified and MRU, so the L2 keep-in-step probe is equally a
    /// relative no-op. Anything that breaks these guarantees from outside
    /// the PE's own touch flow (coherence invalidations/downgrades, DMA
    /// installs, fault injection) clears the hint.
    fn touch_line(&mut self, pe: usize, line: u64, write: bool, pat: Pattern) {
        #[cfg(debug_assertions)]
        self.debug_assert_hint(pe, "touch_line entry");
        if self.cfg.fast_path {
            let s = &self.pes[pe];
            if s.hint_line == line && (!write || s.hint_write) {
                self.pes[pe].ev.l1_hits += 1;
                return;
            }
        }
        self.touch_line_ref(pe, line, write, pat);
        #[cfg(debug_assertions)]
        self.debug_assert_hint(pe, "touch_line exit");
    }

    /// Everything after the TLB: L1 filter, L2 probe, directory protocol.
    /// Leaves the hint pointing at `line`.
    fn touch_line_post_tlb(&mut self, pe: usize, line: u64, write: bool, pat: Pattern) {
        // L1 filter: a hit here is free (folded into BUSY); an upgrade or
        // miss falls through to the L2/directory path below, which keeps
        // the two levels' states consistent.
        if let Probe::Hit(_) = self.pes[pe].l1.probe(line, write) {
            if write {
                // Keep the L2 state in step with the silently-promoted L1.
                self.pes[pe].cache.probe(line, true);
            }
            self.pes[pe].ev.l1_hits += 1;
            let s = &mut self.pes[pe];
            s.hint_line = line;
            s.hint_write = write;
            return;
        }
        self.touch_line_post_l1(pe, line, write, pat);
    }

    /// The walk below the L1: one L2 tag probe, then the directory protocol.
    fn touch_line_post_l1(&mut self, pe: usize, line: u64, write: bool, pat: Pattern) {
        let probe = self.pes[pe].cache.probe(line, write);
        self.touch_line_post_l2(pe, line, write, pat, probe);
    }

    /// The walk below the L2 tag probe: protocol action, traffic, stall
    /// charge, refill and hint update for an already-performed `probe`.
    /// Split out so `touch_batch` can run the probe inside its tight loop
    /// (inlining the common Hit arm) and hand only upgrades/misses here —
    /// every line still gets exactly one L2 tag walk.
    ///
    /// The transitions themselves live in [`crate::protocol`]: this is the
    /// coherence-protocol seam, dispatched on `MachineConfig::protocol`.
    /// The invalidate arm is the verbatim pre-seam body, so the default
    /// configuration executes the identical instruction stream.
    fn touch_line_post_l2(&mut self, pe: usize, line: u64, write: bool, pat: Pattern, probe: Probe) {
        match self.cfg.protocol {
            ProtocolMode::Invalidate => self.post_l2_invalidate(pe, line, write, pat, probe),
            ProtocolMode::DragonUpdate => self.post_l2_dragon(pe, line, write, pat, probe),
        }
    }

    #[inline]
    pub(crate) fn read_frac(&self, pat: Pattern) -> f64 {
        match pat {
            Pattern::Streamed => self.cfg.read_stall_streamed,
            Pattern::Scattered => self.cfg.read_stall_scattered,
        }
    }

    #[inline]
    pub(crate) fn write_frac(&self, pat: Pattern) -> f64 {
        match pat {
            Pattern::Streamed => self.cfg.write_stall_streamed,
            Pattern::Scattered => self.cfg.write_stall_scattered,
        }
    }

    // ------------------------------------------------------------------
    // Bulk (message) transfers
    // ------------------------------------------------------------------

    /// Move `len` elements from `src` to `dst` as one explicit transfer
    /// (the data path of an MPI message or a SHMEM put/get), initiated by
    /// `pe`. Returns the estimated transfer time in ns; the *caller* decides
    /// how much of it stalls the processor and charges it, because that
    /// depends on the programming model (a blocking `get` waits for all of
    /// it, a pipelined `put`/send hides most of it).
    ///
    /// Coherence side effects: modified source lines are flushed to memory
    /// (downgraded to Shared), all cached copies of destination lines are
    /// invalidated, and — if `install_dst` — the destination lines land in
    /// `pe`'s own cache in Modified state, modelling the paper's observation
    /// that "get has the advantage that data are brought into the cache,
    /// while put doesn't deposit them in the destination cache".
    #[allow(clippy::too_many_arguments)]
    pub fn dma_copy(
        &mut self,
        pe: usize,
        src: ArrayId,
        src_off: usize,
        dst: ArrayId,
        dst_off: usize,
        len: usize,
        install_dst: bool,
    ) -> f64 {
        if len == 0 {
            return 0.0;
        }
        #[cfg(debug_assertions)]
        self.debug_assert_hint(pe, "dma_copy entry");
        // The installs below reshuffle the initiator's L2 sets behind the
        // hint's back; drop it rather than reason about overlap.
        self.pes[pe].hint_line = u64::MAX;
        self.race_access(pe, src, src_off, len, false);
        self.race_access(pe, dst, dst_off, len, true);
        self.mem.copy(src, src_off, dst, dst_off, len);
        let bytes = (len * 4) as f64;

        // Source side: flush dirty lines out of whichever cache owns them.
        let s_first = self.mem.addr_of(src, src_off) >> self.line_shift;
        let s_last = self.mem.addr_of(src, src_off + len - 1) >> self.line_shift;
        let src_home = self.mem.home_of_line(s_first);
        let mut flush_txns: u64 = 0;
        for line in s_first..=s_last {
            if let DirState::Exclusive(owner) = self.dir.state(line) {
                self.pes[owner as usize].downgrade_all(line);
                self.dir.add_sharer(line, owner as usize);
                flush_txns += 1;
            }
        }
        let n_src_lines = (s_last - s_first + 1) as f64;
        self.traffic.add(
            pe,
            src_home,
            n_src_lines * self.cfg.data_occ_ns + flush_txns as f64 * self.cfg.ctrl_occ_ns,
            (s_last - s_first + 1) + flush_txns,
            0,
        );

        // Destination side: invalidate stale copies, optionally install.
        let d_first = self.mem.addr_of(dst, dst_off) >> self.line_shift;
        let d_last = self.mem.addr_of(dst, dst_off + len - 1) >> self.line_shift;
        let dst_home = self.mem.home_of_line(d_first);
        let mut inv_txns: u64 = 0;
        for line in d_first..=d_last {
            let (dir, pes) = (&self.dir, &mut self.pes);
            inv_txns += dir.for_each_target(line, None, |other| {
                pes[other].invalidate_all(line);
            });
            if install_dst {
                self.dir.set_exclusive(line, pe);
                if let Some(v) = self.pes[pe].cache.install(line, LineState::Modified) {
                    self.pes[pe].l1.invalidate(v.line);
                    self.dir.remove_sharer(v.line, pe);
                    if v.dirty {
                        let vhome = self.mem.home_of_line(v.line);
                        self.pes[pe].ev.writebacks += 1;
                        self.traffic.add(pe, vhome, self.cfg.ctrl_occ_ns + self.cfg.data_occ_ns, 1, 0);
                    }
                }
            } else {
                self.dir.set_unowned(line);
            }
        }
        self.pes[pe].ev.invalidations += inv_txns;
        let n_dst_lines = (d_last - d_first + 1) as f64;
        self.traffic.add(
            pe,
            dst_home,
            n_dst_lines * self.cfg.data_occ_ns + inv_txns as f64 * self.cfg.ctrl_occ_ns,
            (d_last - d_first + 1) + inv_txns,
            0,
        );

        // Transfer time: wire latency plus serialized bandwidth. The
        // per-message latency is a *fixed* cost — explicit-message counts
        // are n-independent (p * 2^r per radix pass) — so like the other
        // per-message costs it is divided by the machine scale to keep its
        // weight relative to the Θ(n) work (see `MachineConfig`).
        let lat = self.topo.node_latency(src_home, dst_home);
        #[cfg(debug_assertions)]
        for q in 0..self.cfg.n_procs {
            self.debug_assert_hint(q, "dma_copy exit");
        }
        lat / self.cfg.fixed_cost_div + bytes / self.cfg.link_bw_bytes_per_ns
    }

    // ------------------------------------------------------------------
    // Phases and barriers
    // ------------------------------------------------------------------

    /// Resolve accumulated contention for the current phase and charge the
    /// resulting stall time. Called by `barrier`; exposed for runtimes that
    /// need a resolution point without a barrier.
    pub fn resolve_phase(&mut self) {
        if self.traffic.is_empty() {
            return;
        }
        // Scratch buffers are moved out for the duration (charge below needs
        // `&mut self`) and put back; no per-phase allocation.
        let mut elapsed = std::mem::take(&mut self.resolve_elapsed);
        elapsed.clear();
        elapsed.extend((0..self.cfg.n_procs).map(|pe| self.pes[pe].time - self.phase_start[pe]));
        let mut delays = std::mem::take(&mut self.resolve_delays);
        self.traffic.resolve_into(&elapsed, &self.node_of, self.cfg.rho_cap, &mut delays);
        for (pe, d) in delays.iter().enumerate() {
            if d.lmem > 0.0 {
                self.charge(pe, d.lmem, Bucket::Lmem);
            }
            if d.rmem > 0.0 {
                self.charge(pe, d.rmem, Bucket::Rmem);
            }
        }
        self.resolve_elapsed = elapsed;
        self.resolve_delays = delays;
        self.traffic.reset();
        for pe in 0..self.cfg.n_procs {
            self.phase_start[pe] = self.pes[pe].time;
        }
    }

    /// Global barrier: resolve the phase's contention, align all clocks to
    /// the maximum and charge the waiting time (plus the barrier's own cost)
    /// as SYNC.
    pub fn barrier(&mut self) {
        if let Some(det) = self.race.as_mut() {
            det.barrier();
        }
        self.resolve_phase();
        let t_max = (0..self.cfg.n_procs).map(|pe| self.pes[pe].time).fold(0.0_f64, f64::max);
        let levels = (self.cfg.n_procs.max(2) as f64).log2().ceil();
        let cost = self.cfg.barrier_base_ns + 2.0 * levels * self.cfg.barrier_level_ns;
        for pe in 0..self.cfg.n_procs {
            let wait = t_max - self.pes[pe].time;
            self.charge(pe, wait + cost, Bucket::Sync);
            self.phase_start[pe] = self.pes[pe].time;
        }
    }

    /// Align a subset of processors (used by group-local synchronization in
    /// sample sort). Does not resolve global contention.
    pub fn barrier_subset(&mut self, pes: &[usize]) {
        if let Some(det) = self.race.as_mut() {
            det.barrier_subset(pes);
        }
        let t_max = pes.iter().map(|&pe| self.pes[pe].time).fold(0.0_f64, f64::max);
        let levels = (pes.len().max(2) as f64).log2().ceil();
        let cost = self.cfg.barrier_base_ns + 2.0 * levels * self.cfg.barrier_level_ns;
        for &pe in pes {
            let wait = t_max - self.pes[pe].time;
            self.charge(pe, wait + cost, Bucket::Sync);
        }
    }

    /// Make `pe` wait until at least time `t` (message arrival, rendezvous);
    /// waiting time is SYNC.
    ///
    /// Deliberately *not* a happens-before edge: waiting for a virtual
    /// timestamp orders clocks, not memory. The memory edge a completed
    /// message provides is modelled explicitly — the producer calls
    /// [`Machine::hb_release`] when the data is in place and the consumer
    /// joins the token with [`Machine::hb_acquire`].
    pub fn wait_until(&mut self, pe: usize, t: f64) {
        let now = self.pes[pe].time;
        if t > now {
            self.charge(pe, t - now, Bucket::Sync);
        }
    }

    /// Release half of a message edge: snapshot `pe`'s happens-before state
    /// into a token the consumer can [`Machine::hb_acquire`]. Free (and the
    /// token empty) when the race detector is off.
    pub fn hb_release(&mut self, pe: usize) -> MsgToken {
        MsgToken(self.race.as_mut().map(|det| det.release(pe)))
    }

    /// Acquire half of a message edge: order everything the producer did
    /// before its [`Machine::hb_release`] before `pe`'s subsequent accesses.
    pub fn hb_acquire(&mut self, pe: usize, token: &MsgToken) {
        if let (Some(det), Some(clock)) = (self.race.as_mut(), token.0.as_deref()) {
            det.acquire(pe, clock);
        }
    }

    /// Zero all clocks, breakdowns, counters, section profiles and pending
    /// phase traffic, *keeping cache, TLB and directory state*. This is the
    /// warm-cache measurement methodology: run a warm-up pass, reset the
    /// statistics, measure the real pass — as hardware-counter studies on
    /// the real machine (including the paper's) effectively do by timing
    /// after initialisation.
    pub fn reset_stats(&mut self) {
        for pe in self.pes.iter_mut() {
            pe.time = 0.0;
            pe.brk = TimeBreakdown::default();
            pe.ev = EventCounters::default();
        }
        self.phase_start.fill(0.0);
        self.traffic.reset();
        self.sections = vec![("(untagged)", vec![TimeBreakdown::default(); self.cfg.n_procs])];
        self.cur_section = 0;
    }

    /// Longest per-processor total time — the parallel execution time.
    pub fn parallel_time(&self) -> f64 {
        (0..self.cfg.n_procs).map(|pe| self.pes[pe].time).fold(0.0_f64, f64::max)
    }

    /// Check the machine's coherence invariants; returns a list of
    /// violations (empty = consistent). Used by the property-based tests —
    /// any sequence of operations must leave caches and directory agreeing:
    ///
    /// 1. a line cached Modified/Exclusive anywhere is Exclusive-owned by
    ///    exactly that processor in the directory;
    /// 2. a line cached Shared is in the directory's sharer set;
    /// 3. a directory-Exclusive line is cached by its owner and nobody else;
    /// 4. no line is Modified in two caches.
    pub fn check_coherence(&self) -> Vec<String> {
        use crate::cache::LineState;
        use crate::directory::DirState;
        let mut errs = Vec::new();
        let total_lines = self.mem.total_lines();
        for line in 0..total_lines {
            let mut modified_in: Vec<usize> = Vec::new();
            for pe in 0..self.cfg.n_procs {
                match self.pes[pe].cache.state(line) {
                    Some(LineState::Modified) | Some(LineState::Exclusive) => {
                        modified_in.push(pe);
                        if self.dir.state(line) != DirState::Exclusive(pe as u16) {
                            errs.push(format!(
                                "line {line}: cached exclusively by pe {pe} but directory says {:?}",
                                self.dir.state(line)
                            ));
                        }
                    }
                    // `is_sharer` is the conservative (may-hold) membership
                    // test, so this invariant holds in every directory mode:
                    // a real copy outside the set the directory would
                    // invalidate is a protocol bug, full-map or not.
                    Some(LineState::Shared) if !self.dir.is_sharer(line, pe) => {
                        errs.push(format!(
                            "line {line}: cached Shared by pe {pe} but absent from sharer set"
                        ));
                    }
                    _ => {}
                }
            }
            if modified_in.len() > 1 {
                errs.push(format!("line {line}: owned exclusively by multiple PEs {modified_in:?}"));
            }
            if let DirState::Exclusive(owner) = self.dir.state(line) {
                let owner = owner as usize;
                if self.pes[owner].cache.state(line).is_none() {
                    errs.push(format!(
                        "line {line}: directory-exclusive at pe {owner} but not in its cache"
                    ));
                }
            }
            // L1 inclusion: anything in L1 must also be in L2, and an L1
            // copy must not claim more rights than the L2 copy.
            for pe in 0..self.cfg.n_procs {
                if let Some(l1s) = self.pes[pe].l1.state(line) {
                    match self.pes[pe].cache.state(line) {
                        None => errs.push(format!("line {line}: in pe {pe}'s L1 but not L2")),
                        Some(LineState::Shared)
                            if matches!(l1s, LineState::Modified | LineState::Exclusive) =>
                        {
                            errs.push(format!("line {line}: L1 exclusive but L2 shared at pe {pe}"))
                        }
                        _ => {}
                    }
                }
            }
        }
        errs
    }

    /// Full machine-invariant audit: every [`Machine::check_coherence`]
    /// invariant plus time-accounting and capacity invariants. Returns a
    /// list of violations (empty = healthy):
    ///
    /// * no time bucket (BUSY/LMEM/RMEM/SYNC) is negative, NaN or infinite,
    ///   and no processor clock is;
    /// * each processor's bucket total is at most the parallel time (the
    ///   slowest clock) and agrees with its own clock;
    /// * L1, L2 and TLB occupancy never exceed their configured capacity;
    /// * the directory never records sharers beyond the processor count.
    pub fn audit(&self) -> Vec<String> {
        let mut errs = self.check_coherence();
        let par = self.parallel_time();
        let tol = 1e-9 * par.abs().max(1.0);
        let l1_cap = self.cfg.l1.sets() * self.cfg.l1.assoc;
        let l2_cap = self.cfg.l2.sets() * self.cfg.l2.assoc;
        for pe in 0..self.cfg.n_procs {
            let s = &self.pes[pe];
            let b = &s.brk;
            for (name, v) in
                [("busy", b.busy), ("lmem", b.lmem), ("rmem", b.rmem), ("sync", b.sync)]
            {
                if !v.is_finite() || v < 0.0 {
                    errs.push(format!("pe {pe}: {name} bucket is {v}"));
                }
            }
            if !s.time.is_finite() || s.time < 0.0 {
                errs.push(format!("pe {pe}: clock is {}", s.time));
            }
            if b.total() > par + tol {
                errs.push(format!(
                    "pe {pe}: bucket total {} exceeds parallel time {par}",
                    b.total()
                ));
            }
            if (b.total() - s.time).abs() > tol {
                errs.push(format!(
                    "pe {pe}: bucket total {} drifted from clock {}",
                    b.total(),
                    s.time
                ));
            }
            if s.l1.resident() > l1_cap {
                errs.push(format!("pe {pe}: L1 holds {} lines, capacity {l1_cap}", s.l1.resident()));
            }
            if s.cache.resident() > l2_cap {
                errs.push(format!("pe {pe}: L2 holds {} lines, capacity {l2_cap}", s.cache.resident()));
            }
            if s.tlb.mapped() > self.cfg.tlb_entries {
                errs.push(format!(
                    "pe {pe}: TLB maps {} pages, capacity {}",
                    s.tlb.mapped(),
                    self.cfg.tlb_entries
                ));
            }
        }
        // Representation-level directory invariants (ghost bits / pointers
        // beyond the processor count, slot ordering, owner membership) —
        // checked per mode by the directory itself.
        for line in 0..self.mem.total_lines() {
            if let Some(err) = self.dir.audit_entry(line) {
                errs.push(err);
            }
        }
        errs
    }

    /// Opt in to (or out of) auditing at every [`Machine::section`]
    /// boundary: each phase transition runs [`Machine::audit`] and panics on
    /// the first violation, naming the section being left. Off by default —
    /// the audit walks the whole directory, so per-phase auditing is meant
    /// for tests and debugging, not timing runs.
    pub fn set_section_audit(&mut self, on: bool) {
        self.section_audit = on;
    }

    /// Deliberately corrupt coherence state: install the line holding
    /// `arr[idx]` as a Shared copy in `pe`'s L2 *without* telling the
    /// directory — exactly the stale copy a protocol bug that skips an
    /// invalidation (or drops a sharer-set update) would leave behind.
    /// Exists so tests can prove [`Machine::audit`] catches real protocol
    /// bugs; the simulator itself never calls it.
    pub fn inject_stale_sharer(&mut self, pe: usize, arr: ArrayId, idx: usize) {
        let line = self.mem.addr_of(arr, idx) >> self.line_shift;
        self.pes[pe].hint_line = u64::MAX;
        self.pes[pe].cache.install(line, LineState::Shared);
        #[cfg(debug_assertions)]
        self.debug_assert_hint(pe, "inject_stale_sharer exit");
    }

    /// Turn the happens-before race detector on or off mid-run. Turning it
    /// on starts from an empty happens-before history (all prior accesses
    /// are forgotten); turning it off discards any collected reports.
    pub fn set_race_detector(&mut self, on: bool) {
        if on {
            if self.race.is_none() {
                let mut det = RaceDetector::new(self.cfg.n_procs);
                det.set_batching(self.cfg.fast_path);
                self.race = Some(det);
            }
        } else {
            self.race = None;
        }
    }

    /// Whether the race detector is currently on.
    pub fn race_detector_on(&self) -> bool {
        self.race.is_some()
    }

    /// Races detected so far (empty when the detector is off). One report is
    /// recorded per (kind, PE pair, array) class; see
    /// [`Machine::race_suppressed`] for the overflow count.
    pub fn race_reports(&self) -> &[RaceReport] {
        self.race.as_ref().map(|det| det.reports()).unwrap_or(&[])
    }

    /// Racy accesses beyond the recorded reports.
    pub fn race_suppressed(&self) -> u64 {
        self.race.as_ref().map(|det| det.suppressed()).unwrap_or(0)
    }

    /// Deliberately skip the happens-before edge of the `nth` subsequent
    /// global barrier (1-based) — the *timing* side of that barrier is
    /// untouched, so the run's measurements and output are identical; only
    /// the detector sees the missing edge. Mirrors
    /// [`Machine::inject_stale_sharer`]: exists so tests can prove the race
    /// detector fires on a planted missing-barrier bug. Panics if the
    /// detector is off.
    pub fn inject_missing_barrier(&mut self, nth: usize) {
        self.race
            .as_mut()
            .expect("inject_missing_barrier requires the race detector to be on")
            .inject_missing_barrier(nth);
    }

    /// Sum of the per-processor breakdowns.
    pub fn total_breakdown(&self) -> TimeBreakdown {
        let mut t = TimeBreakdown::default();
        for pe in 0..self.cfg.n_procs {
            t.add(&self.pes[pe].brk);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_machine(n_procs: usize) -> Machine {
        let mut cfg = MachineConfig::origin2000(n_procs);
        cfg.l2 = crate::config::CacheGeom { size: 16 * 1024, assoc: 2, line: 128 };
        cfg.page_size = 4096;
        cfg.tlb_entries = 16;
        Machine::new(cfg)
    }

    #[test]
    fn read_write_roundtrip_charges_time() {
        let mut m = small_machine(2);
        let a = m.alloc(1024, Placement::Node(0), "a", );
        m.write_at(0, a, 5, 42);
        assert_eq!(m.read_at(0, a, 5), 42);
        assert!(m.now(0) > 0.0);
        assert_eq!(m.events(0).misses_local, 1); // write missed; read hit L1
        assert_eq!(m.events(0).l1_hits, 1);
        assert_eq!(m.now(1), 0.0);
    }

    #[test]
    fn remote_access_costs_more_and_buckets_rmem() {
        let mut m = small_machine(4);
        let local = m.alloc(64, Placement::Node(0), "l");
        let remote = m.alloc(64, Placement::Node(1), "r");
        m.read_at(0, local, 0);
        let t_local = m.now(0);
        m.read_at(0, remote, 0);
        let t_remote = m.now(0) - t_local;
        assert!(t_remote > t_local, "remote read ({t_remote}) should exceed local ({t_local})");
        let b = m.breakdown(0);
        assert!(b.lmem > 0.0 && b.rmem > 0.0);
        assert_eq!(m.events(0).misses_remote, 1);
    }

    #[test]
    fn write_invalidates_readers() {
        let mut m = small_machine(4);
        let a = m.alloc(64, Placement::Node(0), "a");
        // Three PEs read the same line; then PE 3 writes it.
        m.read_at(0, a, 0);
        m.read_at(1, a, 0);
        m.read_at(2, a, 0);
        m.write_at(3, a, 0, 7);
        assert!(m.events(3).invalidations >= 2, "writer must invalidate the sharers");
        // A subsequent read by PE 0 misses again (its copy is gone at every
        // level) and requires an intervention because PE 3 has it Modified.
        let hits_before = m.events(0).cache_hits + m.events(0).l1_hits;
        m.read_at(0, a, 0);
        assert_eq!(m.events(0).cache_hits + m.events(0).l1_hits, hits_before);
        assert_eq!(m.events(0).interventions, 1);
        assert_eq!(m.read_at(0, a, 0), 7);
    }

    #[test]
    fn first_read_installs_exclusive_second_reader_intervenes() {
        let mut m = small_machine(2);
        let a = m.alloc(64, Placement::Node(0), "a");
        m.read_at(0, a, 0);
        m.read_at(1, a, 0);
        assert_eq!(m.events(1).interventions, 1);
        // Both now Shared: a third read by either hits (in L1).
        let h0 = m.events(0).l1_hits;
        m.read_at(0, a, 0);
        assert_eq!(m.events(0).l1_hits, h0 + 1);
    }

    #[test]
    fn upgrade_on_shared_write_hit() {
        let mut m = small_machine(2);
        let a = m.alloc(64, Placement::Node(0), "a");
        m.read_at(0, a, 0);
        m.read_at(1, a, 0); // both Shared now
        m.write_at(0, a, 0, 1); // hit, but Shared -> upgrade
        assert_eq!(m.events(0).upgrades, 1);
        assert!(m.events(0).invalidations >= 1);
    }

    #[test]
    fn capacity_eviction_writes_back() {
        let mut m = small_machine(1);
        // Cache is 16 KB = 128 lines; write 256 distinct lines.
        let a = m.alloc(256 * 32, Placement::Node(0), "a");
        for i in 0..256 {
            m.write_at(0, a, i * 32, i as u32);
        }
        assert!(m.events(0).writebacks > 0, "dirty victims must write back");
        // Data survives eviction (memory holds it).
        for i in 0..256 {
            assert_eq!(m.raw(a)[i * 32], i as u32);
        }
    }

    #[test]
    fn run_ops_touch_once_per_line() {
        let mut m = small_machine(1);
        let a = m.alloc(1024, Placement::Node(0), "a");
        let src: Vec<u32> = (0..320).collect();
        m.write_run(0, a, 0, &src);
        // 320 elements * 4 B = 1280 B = 10 lines.
        assert_eq!(m.events(0).misses(), 10);
        let mut out = vec![0; 320];
        m.read_run(0, a, 0, &mut out);
        assert_eq!(out, src);
        assert_eq!(m.events(0).l1_hits, 10);
    }

    #[test]
    fn dma_copy_moves_data_and_invalidates() {
        let mut m = small_machine(4);
        let src = m.alloc(256, Placement::Node(0), "src");
        let dst = m.alloc(256, Placement::Node(1), "dst");
        // Writer caches the source; a future receiver caches stale dst.
        for i in 0..64 {
            m.write_at(0, src, i, i as u32 + 100);
        }
        m.read_at(2, dst, 0); // PE 2 holds a stale copy of dst line 0
        let t = m.dma_copy(0, src, 0, dst, 0, 64, false);
        assert!(t > 0.0);
        assert_eq!(m.raw(dst)[0], 100);
        assert_eq!(m.raw(dst)[63], 163);
        // PE 2's stale copy must be gone: a re-read misses.
        let misses = m.events(2).misses();
        m.read_at(2, dst, 0);
        assert_eq!(m.events(2).misses(), misses + 1);
        assert_eq!(m.read_at(2, dst, 0), 100);
    }

    #[test]
    fn dma_install_dst_gives_initiator_cache_hits() {
        let mut m = small_machine(2);
        let src = m.alloc(64, Placement::Node(0), "src");
        let dst = m.alloc(64, Placement::Node(0), "dst");
        m.raw_mut(src).iter_mut().enumerate().for_each(|(i, v)| *v = i as u32);
        m.dma_copy(1, src, 0, dst, 0, 32, true);
        let misses = m.events(1).misses();
        assert_eq!(m.read_at(1, dst, 0), 0);
        assert_eq!(m.read_at(1, dst, 31), 31);
        assert_eq!(m.events(1).misses(), misses, "get must leave data in the initiator's cache");
    }

    #[test]
    fn barrier_aligns_clocks_and_charges_sync() {
        let mut m = small_machine(4);
        m.charge(0, 1000.0, Bucket::Busy);
        m.charge(1, 400.0, Bucket::Busy);
        m.barrier();
        let t0 = m.now(0);
        for pe in 0..4 {
            assert!((m.now(pe) - t0).abs() < 1e-9, "clocks must align");
        }
        assert!(m.breakdown(1).sync >= 600.0);
        assert!(m.breakdown(0).sync > 0.0); // barrier cost itself
    }

    #[test]
    fn wait_until_only_moves_forward() {
        let mut m = small_machine(2);
        m.charge(0, 500.0, Bucket::Busy);
        m.wait_until(0, 300.0);
        assert_eq!(m.now(0), 500.0);
        m.wait_until(0, 800.0);
        assert_eq!(m.now(0), 800.0);
        assert_eq!(m.breakdown(0).sync, 300.0);
    }

    #[test]
    fn contention_resolution_charges_heavy_traffic() {
        let mut m = small_machine(4);
        let a = m.alloc(4096, Placement::Node(0), "hot");
        // All four PEs hammer node 0 with scattered writes.
        for pe in 0..4 {
            for i in 0..1024 {
                m.write_at(pe, a, (i * 32 + pe) % 4096, 1);
            }
        }
        let before: Vec<f64> = (0..4).map(|pe| m.now(pe)).collect();
        m.barrier();
        // Everyone should have been pushed past their uncontended time.
        let after = m.now(0);
        assert!(after > before.iter().cloned().fold(0.0, f64::max));
    }

    /// The streamed fast path (hint + per-page TLB batching) must be
    /// observationally identical to the per-line reference walk. Drive the
    /// same pseudo-random schedule — scattered reads/writes, streamed runs,
    /// DMA, barriers, so every hint-invalidation path fires — through a
    /// fast-path machine and a reference machine and require bit-identical
    /// clocks, breakdowns and event counters on every PE.
    #[test]
    fn fast_path_matches_reference_on_mixed_schedule() {
        let run = |fast: bool| {
            let mut cfg = MachineConfig::origin2000(4);
            cfg.l2 = crate::config::CacheGeom { size: 16 * 1024, assoc: 2, line: 128 };
            cfg.page_size = 4096;
            cfg.tlb_entries = 16;
            cfg.fast_path = fast;
            let mut m = Machine::new(cfg);
            let a = m.alloc(4096, Placement::Partitioned { parts: 4 }, "a");
            let b = m.alloc(1024, Placement::Node(1), "b");
            let mut x = 0x5EEDu64;
            let mut rng = |md: usize| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (x >> 33) as usize % md
            };
            for _ in 0..400 {
                let pe = rng(4);
                match rng(10) {
                    0 => m.barrier(),
                    1 => {
                        let t = m.dma_copy(pe, a, rng(3072), b, rng(500), 1 + rng(500), rng(2) == 0);
                        m.charge(pe, t, Bucket::Rmem);
                    }
                    2 | 3 => m.write_at(pe, a, rng(4096), 1),
                    4 | 5 => {
                        let _ = m.read_at(pe, a, rng(4096));
                    }
                    6 | 7 => {
                        let off = rng(3000);
                        m.touch_run(pe, a, off, 1 + rng(1000), true);
                    }
                    _ => {
                        let off = rng(3000);
                        m.touch_run(pe, a, off, 1 + rng(1000), false);
                    }
                }
            }
            m.barrier();
            (0..4).map(|pe| (m.now(pe), m.breakdown(pe), m.events(pe))).collect::<Vec<_>>()
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let mut m = small_machine(4);
            let a = m.alloc(2048, Placement::Partitioned { parts: 4 }, "a");
            for pe in 0..4 {
                for i in 0..512 {
                    m.write_at(pe, a, (pe * 512 + i * 7) % 2048, i as u32);
                }
            }
            m.barrier();
            (0..4).map(|pe| m.now(pe)).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}

#[cfg(test)]
mod scaling_tests {
    use super::*;
    use crate::config::MachineConfig;

    #[test]
    fn fixed_prefix_follows_scale() {
        let m1 = Machine::new(MachineConfig::origin2000(2));
        assert_eq!(m1.fixed_div(), 1.0);
        assert_eq!(m1.fixed_prefix(256), 256);
        let m16 = Machine::new(MachineConfig::origin2000(2).scaled_down(16));
        assert_eq!(m16.fixed_div(), 16.0);
        assert_eq!(m16.fixed_prefix(256), 16);
        assert_eq!(m16.fixed_prefix(1), 1, "never below one element");
        assert_eq!(m16.fixed_prefix(0), 1);
    }

    #[test]
    fn busy_cycles_fixed_is_discounted() {
        let mut m = Machine::new(MachineConfig::origin2000(2).scaled_down(16));
        m.busy_cycles(0, 1600.0);
        m.busy_cycles_fixed(1, 1600.0);
        assert!((m.breakdown(0).busy / m.breakdown(1).busy - 16.0).abs() < 1e-9);
    }

    #[test]
    fn dma_latency_term_scales_but_bandwidth_does_not() {
        let t_for = |denom: usize, len: usize| {
            let mut m = Machine::new(MachineConfig::origin2000(4).scaled_down(denom));
            let a = m.alloc(1 << 16, Placement::Node(0), "a");
            let b = m.alloc(1 << 16, Placement::Node(1), "b");
            m.dma_copy(0, a, 0, b, 0, len, false)
        };
        // Tiny transfer: latency-dominated, so deep scaling shrinks it.
        assert!(t_for(16, 8) < 0.5 * t_for(1, 8));
        // Large transfer: bandwidth-dominated, so scaling barely matters.
        let big_1 = t_for(1, 1 << 15);
        let big_16 = t_for(16, 1 << 15);
        assert!(big_16 > 0.9 * big_1, "bandwidth term must not scale: {big_16} vs {big_1}");
    }

    #[test]
    fn virtual_indexing_toggle_changes_cache_behaviour_only() {
        let mut cfg = MachineConfig::origin2000(1).scaled_down(16);
        cfg.physical_cache_indexing = false;
        let mut m = Machine::new(cfg);
        let a = m.alloc(1024, Placement::Node(0), "a");
        m.write_at(0, a, 0, 7);
        assert_eq!(m.read_at(0, a, 0), 7);
        assert!(m.now(0) > 0.0);
    }

    #[test]
    fn scattered_remote_writes_cost_more_than_streamed() {
        let mut m = Machine::new(MachineConfig::origin2000(4));
        let remote = m.alloc(1 << 14, Placement::Node(1), "r");
        // Scattered writes from PE 0 (node 0) to node-1-homed lines.
        for i in 0..64 {
            m.write_at(0, remote, i * 64, 1);
        }
        let t_scattered = m.now(0);
        // Same number of lines, streamed.
        m.touch_run(1, remote, 0, 64 * 64, true);
        let t_streamed = m.now(1);
        assert!(
            t_scattered > 2.0 * t_streamed,
            "scattered remote writes ({t_scattered}) must cost far more than streamed ({t_streamed})"
        );
    }
}

#[cfg(test)]
mod section_tests {
    use super::*;
    use crate::config::MachineConfig;

    #[test]
    fn sections_partition_the_total() {
        let mut m = Machine::new(MachineConfig::origin2000(2).scaled_down(64));
        let a = m.alloc(1024, Placement::Node(0), "a");
        m.section("alpha");
        m.busy_cycles(0, 100.0);
        m.write_at(0, a, 0, 1);
        m.section("beta");
        m.busy_cycles(1, 200.0);
        m.section("alpha"); // resumes the accumulator
        m.busy_cycles(0, 100.0);
        let profile = m.section_profile();
        let names: Vec<&str> = profile.iter().map(|(n, _)| *n).collect();
        assert_eq!(names, vec!["(untagged)", "alpha", "beta"]);
        // Sum over sections == sum over processors' breakdowns (per bucket).
        let total: f64 = profile.iter().map(|(_, t)| t.total()).sum::<f64>() * 2.0;
        let direct = m.breakdown(0).total() + m.breakdown(1).total();
        assert!((total - direct).abs() < 1e-6, "{total} vs {direct}");
        // alpha holds both busy charges for pe 0.
        let alpha = profile.iter().find(|(n, _)| *n == "alpha").unwrap().1;
        assert!((alpha.busy * 2.0 - 200.0 * m.cfg().cycle_ns).abs() < 1e-6);
    }

    #[test]
    fn l1_filters_repeated_touches() {
        let mut m = Machine::new(MachineConfig::origin2000(1).scaled_down(64));
        let a = m.alloc(64, Placement::Node(0), "a");
        m.write_at(0, a, 0, 1);
        let t_after_miss = m.now(0);
        for _ in 0..100 {
            m.write_at(0, a, 0, 2);
            m.read_at(0, a, 0);
        }
        // 200 L1 hits: free.
        assert_eq!(m.now(0), t_after_miss, "L1 hits must not advance the clock");
        assert_eq!(m.events(0).l1_hits, 200);
    }

    #[test]
    fn l2_hit_after_l1_eviction_costs_l2_latency() {
        let mut cfg = MachineConfig::origin2000(1);
        // Tiny L1 (4 lines), roomy L2.
        cfg.l1 = crate::config::CacheGeom { size: 4 * 128, assoc: 2, line: 128 };
        cfg.l2 = crate::config::CacheGeom { size: 64 * 1024, assoc: 2, line: 128 };
        cfg.page_size = 2048;
        let mut m = Machine::new(cfg);
        let a = m.alloc(2048, Placement::Node(0), "a");
        // Touch 16 distinct lines: all fit L2, L1 holds only the last few.
        for i in 0..16 {
            m.read_at(0, a, i * 32);
        }
        let t = m.now(0);
        m.read_at(0, a, 0); // long evicted from L1, still in L2
        assert_eq!(m.events(0).cache_hits, 1, "must be an L2 hit");
        assert!((m.now(0) - t - m.cfg().l2_hit_ns).abs() < 1e-9);
    }

    #[test]
    fn message_counters_accumulate() {
        let mut m = Machine::new(MachineConfig::origin2000(2));
        m.count_message(0, 1024);
        m.count_message(0, 16);
        assert_eq!(m.events(0).messages, 2);
        assert_eq!(m.events(0).message_bytes, 1040);
        assert_eq!(m.events(1).messages, 0);
    }
}

#[cfg(test)]
mod audit_tests {
    use super::*;

    fn small_machine(n_procs: usize) -> Machine {
        let mut cfg = MachineConfig::origin2000(n_procs);
        cfg.l2 = crate::config::CacheGeom { size: 16 * 1024, assoc: 2, line: 128 };
        cfg.page_size = 4096;
        cfg.tlb_entries = 16;
        Machine::new(cfg)
    }

    #[test]
    fn audit_clean_after_mixed_traffic() {
        let mut m = small_machine(4);
        let a = m.alloc(1024, Placement::Partitioned { parts: 4 }, "a");
        let b = m.alloc(1024, Placement::Partitioned { parts: 4 }, "b");
        for pe in 0..4 {
            for i in 0..64 {
                m.write_at(pe, a, (pe * 256 + i * 3) % 1024, i as u32);
                m.read_at(pe, a, (i * 7) % 1024);
            }
        }
        m.barrier();
        m.dma_copy(0, a, 0, b, 512, 256, true);
        m.barrier();
        assert_eq!(m.audit(), Vec::<String>::new());
    }

    #[test]
    fn audit_catches_skipped_invalidation() {
        let mut m = small_machine(4);
        let a = m.alloc(256, Placement::Node(0), "a");
        // PEs 1 and 2 read the line; PE 0's write invalidates them.
        m.read_at(1, a, 0);
        m.read_at(2, a, 0);
        m.write_at(0, a, 0, 9);
        assert!(m.audit().is_empty(), "protocol left a clean machine");
        // A buggy protocol that skipped PE 1's invalidation would leave this
        // exact state behind: a stale Shared copy the directory knows
        // nothing about, coexisting with PE 0's Modified line.
        m.inject_stale_sharer(1, a, 0);
        let errs = m.audit();
        assert!(
            errs.iter().any(|e| e.contains("absent from sharer set")),
            "audit must flag the stale sharer, got {errs:?}"
        );
    }

    #[test]
    #[should_panic(expected = "machine audit failed")]
    fn section_audit_panics_on_corruption() {
        let mut m = small_machine(2);
        m.set_section_audit(true);
        let a = m.alloc(256, Placement::Node(0), "a");
        m.section("phase-1");
        m.write_at(0, a, 0, 1);
        m.inject_stale_sharer(1, a, 0);
        m.section("phase-2"); // audit fires at the boundary
    }

    #[test]
    fn section_audit_is_silent_on_healthy_runs() {
        let mut m = small_machine(2);
        m.set_section_audit(true);
        let a = m.alloc(256, Placement::Node(0), "a");
        m.section("phase-1");
        m.write_at(0, a, 0, 1);
        m.read_at(1, a, 0);
        m.section("phase-2");
        m.barrier();
        assert!(m.audit().is_empty());
    }
}
