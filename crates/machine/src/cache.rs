//! Set-associative write-back cache model with MESI line states.
//!
//! The cache operates at line granularity: callers translate element
//! accesses to line touches. State is kept as one flat array of per-way
//! records (tag + LRU stamp + state together) so a probe touches a single
//! contiguous run of host memory — cheap enough to invoke hundreds of
//! millions of times in a simulation run, and friendly to the host's own
//! caches when the simulated access stream is scattered.

/// Coherence state of a line in a processor's cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineState {
    Invalid,
    Shared,
    /// Exclusive clean or dirty; `Modified` tracks dirtiness separately so
    /// eviction knows whether a writeback is needed.
    Exclusive,
    Modified,
}

/// Result of probing the cache for a line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Probe {
    /// Present with a state sufficient for the access; carries the line's
    /// state *after* the probe (a write hit on Exclusive is already
    /// promoted to Modified), so callers never need a second tag walk.
    Hit(LineState),
    /// Present in `Shared` state but the access is a write: needs an
    /// ownership upgrade (no data fetch).
    UpgradeNeeded,
    /// Not present: needs a fetch. If a valid line was evicted to make room,
    /// `victim` carries its line index and whether it was dirty.
    Miss { victim: Option<Victim> },
}

/// An evicted line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Victim {
    /// Global line index of the evicted line.
    pub line: u64,
    /// Whether the line was in `Modified` state (requires a writeback).
    pub dirty: bool,
}

/// One way of one set: tag, LRU stamp and MESI state packed into 16 bytes
/// so a probe's tag compare, stamp refresh and state transition all land on
/// the same host cache line, and a 4 MB simulated L2's metadata shrinks to
/// 512 KB per PE. (Three parallel arrays — the original layout — cost three
/// distinct host lines per probe, which dominated the simulator's hot loop
/// once the simulated access stream stopped being sequential.)
///
/// `meta` holds `stamp << 2 | state`. Every stamp is written right after a
/// private clock increment, so stamps of valid ways are pairwise distinct;
/// therefore comparing packed `meta` values orders ways exactly as
/// comparing bare stamps would — the state bits in the low two positions
/// can never decide — and the LRU victim choice is bit-identical to the
/// unpacked representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Way {
    /// Global line index + 1 (0 = empty).
    tag: u64,
    /// `stamp << 2 | state` (state: 0 = Invalid, 1 = Shared, 2 = Exclusive,
    /// 3 = Modified).
    meta: u64,
}

const ST_INVALID: u64 = 0;
const ST_SHARED: u64 = 1;
const ST_EXCLUSIVE: u64 = 2;
const ST_MODIFIED: u64 = 3;

impl Way {
    #[inline(always)]
    fn state(self) -> LineState {
        match self.meta & 3 {
            ST_SHARED => LineState::Shared,
            ST_EXCLUSIVE => LineState::Exclusive,
            ST_MODIFIED => LineState::Modified,
            _ => LineState::Invalid,
        }
    }

    #[inline(always)]
    fn valid(self) -> bool {
        self.meta & 3 != ST_INVALID
    }

    #[inline(always)]
    fn dirty(self) -> bool {
        self.meta & 3 == ST_MODIFIED
    }
}

#[inline(always)]
fn state_code(state: LineState) -> u64 {
    match state {
        LineState::Invalid => ST_INVALID,
        LineState::Shared => ST_SHARED,
        LineState::Exclusive => ST_EXCLUSIVE,
        LineState::Modified => ST_MODIFIED,
    }
}

const EMPTY_WAY: Way = Way { tag: 0, meta: 0 };

/// A set-associative cache indexed by global line number.
#[derive(Debug, Clone)]
pub struct Cache {
    assoc: usize,
    set_mask: u64,
    /// Log2 of lines per page, for physically-indexed set selection;
    /// `u32::MAX` disables page randomization (pure modulo indexing).
    page_lines_shift: u32,
    /// `ways[set * assoc + way]`.
    ways: Vec<Way>,
    clock: u64,
}

/// Odd multiplier for the page-frame hash (splitmix64's constant).
const PAGE_HASH_MULT: u64 = 0x9E37_79B9_7F4A_7C15;

impl Cache {
    /// Create a cache with pure modulo set indexing (sets must be a power
    /// of two).
    pub fn new(sets: usize, assoc: usize) -> Self {
        assert!(sets.is_power_of_two() && sets > 0);
        assert!(assoc > 0);
        Cache {
            assoc,
            set_mask: (sets - 1) as u64,
            page_lines_shift: u32::MAX,
            ways: vec![EMPTY_WAY; sets * assoc],
            clock: 0,
        }
    }

    /// Create a *physically indexed* cache: set selection hashes the page
    /// number (a deterministic stand-in for the OS's virtual→physical page
    /// mapping) while keeping within-page lines consecutive. Real machines
    /// behave this way — page-aligned data structures do not stay
    /// set-aligned in a physically indexed cache — and without it,
    /// power-of-two-strided structures (e.g. the digit segments of a radix
    /// sort's staging buffer) alias pathologically.
    pub fn physically_indexed(sets: usize, assoc: usize, lines_per_page: usize) -> Self {
        assert!(lines_per_page.is_power_of_two() && lines_per_page > 0);
        let mut c = Cache::new(sets, assoc);
        c.page_lines_shift = lines_per_page.trailing_zeros();
        c
    }

    #[inline]
    fn set_of(&self, line: u64) -> usize {
        if self.page_lines_shift == u32::MAX {
            return (line & self.set_mask) as usize;
        }
        let page = line >> self.page_lines_shift;
        // Hash the page frame and xor it across *all* set-index bits:
        // consecutive lines within a page stay in consecutive sets (good
        // for streams), while same-offset lines of different pages land in
        // unrelated sets — as they do under a real OS's scattered physical
        // page allocation.
        let frame = page.wrapping_mul(PAGE_HASH_MULT);
        let frame = frame ^ (frame >> 32);
        ((line ^ frame) & self.set_mask) as usize
    }

    /// Probe for `line`. On a hit the LRU stamp is refreshed and, for
    /// writes, the state is promoted to `Modified` (if it was Exclusive) or
    /// reported as `UpgradeNeeded` (if Shared). On a miss nothing is
    /// installed — call [`Cache::install`] after the directory transaction
    /// resolves.
    pub fn probe(&mut self, line: u64, write: bool) -> Probe {
        let set = self.set_of(line);
        let base = set * self.assoc;
        self.clock += 1;
        let tag = line + 1;
        for way in 0..self.assoc {
            let w = &mut self.ways[base + way];
            if w.tag == tag && w.valid() {
                if write {
                    return match w.meta & 3 {
                        ST_SHARED => {
                            w.meta = (self.clock << 2) | ST_SHARED;
                            Probe::UpgradeNeeded
                        }
                        _ => {
                            w.meta = (self.clock << 2) | ST_MODIFIED;
                            Probe::Hit(LineState::Modified)
                        }
                    };
                }
                w.meta = (self.clock << 2) | (w.meta & 3);
                return Probe::Hit(w.state());
            }
        }
        // Miss: choose a victim way (prefer an invalid one).
        let victim = self.pick_victim(set);
        Probe::Miss { victim }
    }

    /// The page-frame component of [`Cache::set_of`] for a physically
    /// indexed cache: every cache sharing the same `lines_per_page` maps
    /// `line` through the same frame hash, so the batched walk computes it
    /// once per element and feeds both the L1 and L2 probes.
    #[inline(always)]
    pub(crate) fn frame_of(page: u64) -> u64 {
        let frame = page.wrapping_mul(PAGE_HASH_MULT);
        frame ^ (frame >> 32)
    }

    /// Value-identical twin of [`Cache::probe`] for the batched scattered
    /// walk: the same algorithm and state evolution, but force-inlined,
    /// with the caller-precomputed page frame (see [`Cache::frame_of`])
    /// replacing the per-probe `set_of` hash, and with the two-way shape —
    /// both simulated levels are 2-way — laid out branch-minimally. A tag
    /// can match at most one way (installs only happen after a miss
    /// reported the line absent), so evaluating both ways and selecting is
    /// identical to the reference's first-match scan. `probe` itself is
    /// deliberately left semantically untouched — it is the per-element
    /// reference walk's cost model, frozen by the fast-path equivalence
    /// discipline — and the `probe_fast_matches_probe` differential test
    /// drives both through a randomized probe/install stream asserting
    /// identical results and identical final state.
    /// Test-only convenience wrapper over [`Cache::probe_fast_ext`] (the
    /// walk itself owns the clock for a whole batch; the differential tests
    /// drive single probes).
    #[cfg(test)]
    pub(crate) fn probe_fast(&mut self, line: u64, frame: u64, write: bool) -> Probe {
        let mut clock = self.clock;
        let r = self.probe_fast_ext(line, frame, write, &mut clock);
        self.clock = clock;
        r
    }

    /// [`Cache::probe_fast`] with the LRU clock held in a caller-owned
    /// local: the batched walk's data-move closure carries raw pointers, so
    /// a clock living inside `self` would be spilled and reloaded every
    /// element; a stack local the walk writes back once per batch stays in
    /// a register. `*clock` sees exactly the same increment sequence.
    #[inline(always)]
    pub(crate) fn probe_fast_ext(
        &mut self,
        line: u64,
        frame: u64,
        write: bool,
        clock: &mut u64,
    ) -> Probe {
        debug_assert_ne!(self.page_lines_shift, u32::MAX, "probe_fast needs physical indexing");
        debug_assert_eq!(frame, Self::frame_of(line >> self.page_lines_shift));
        let set = ((line ^ frame) & self.set_mask) as usize;
        let base = set * self.assoc;
        *clock += 1;
        let clock = *clock;
        let tag = line + 1;
        if self.assoc == 2 {
            // SAFETY: `set <= set_mask = sets - 1` by the mask above, so
            // `base + 2 = set * assoc + assoc <= sets * assoc = ways.len()`.
            let ways: &mut [Way] = unsafe { self.ways.get_unchecked_mut(base..base + 2) };
            let hit0 = ways[0].tag == tag && ways[0].valid();
            let hit1 = ways[1].tag == tag && ways[1].valid();
            if hit0 | hit1 {
                let w = &mut ways[usize::from(hit1)];
                if write {
                    return match w.meta & 3 {
                        ST_SHARED => {
                            w.meta = (clock << 2) | ST_SHARED;
                            Probe::UpgradeNeeded
                        }
                        _ => {
                            w.meta = (clock << 2) | ST_MODIFIED;
                            Probe::Hit(LineState::Modified)
                        }
                    };
                }
                w.meta = (clock << 2) | (w.meta & 3);
                return Probe::Hit(w.state());
            }
            // Miss: prefer an invalid way (reference scan order: way 0
            // first), else evict the way with the older stamp.
            if !ways[0].valid() || !ways[1].valid() {
                return Probe::Miss { victim: None };
            }
            let v = &ways[usize::from(ways[1].meta < ways[0].meta)];
            return Probe::Miss { victim: Some(Victim { line: v.tag - 1, dirty: v.dirty() }) };
        }
        let ways = &mut self.ways[base..base + self.assoc];
        for w in ways.iter_mut() {
            if w.tag == tag && w.valid() {
                if write {
                    return match w.meta & 3 {
                        ST_SHARED => {
                            w.meta = (clock << 2) | ST_SHARED;
                            Probe::UpgradeNeeded
                        }
                        _ => {
                            w.meta = (clock << 2) | ST_MODIFIED;
                            Probe::Hit(LineState::Modified)
                        }
                    };
                }
                w.meta = (clock << 2) | (w.meta & 3);
                return Probe::Hit(w.state());
            }
        }
        // Miss: choose a victim way (prefer an invalid one).
        let victim = self.pick_victim(set);
        Probe::Miss { victim }
    }

    fn pick_victim(&self, set: usize) -> Option<Victim> {
        let base = set * self.assoc;
        let mut lru_way = 0;
        let mut lru_meta = u64::MAX;
        for way in 0..self.assoc {
            let w = &self.ways[base + way];
            if !w.valid() {
                return None; // room available; nothing evicted
            }
            if w.meta < lru_meta {
                lru_meta = w.meta;
                lru_way = way;
            }
        }
        let w = &self.ways[base + lru_way];
        Some(Victim { line: w.tag - 1, dirty: w.dirty() })
    }

    /// Install `line` in `state`, evicting the LRU way if the set is full.
    /// Returns the evicted line (if any) so the caller can notify the
    /// directory and account a writeback — silently dropping a victim
    /// would leave the directory with ghost owners.
    pub fn install(&mut self, line: u64, state: LineState) -> Option<Victim> {
        debug_assert!(state != LineState::Invalid);
        let set = self.set_of(line);
        let base = set * self.assoc;
        self.clock += 1;
        // Prefer an invalid way, else evict LRU.
        let mut target = None;
        let mut lru_way = 0;
        let mut lru_meta = u64::MAX;
        for way in 0..self.assoc {
            let w = &self.ways[base + way];
            if !w.valid() {
                target = Some(way);
                break;
            }
            if w.meta < lru_meta {
                lru_meta = w.meta;
                lru_way = way;
            }
        }
        let way = target.unwrap_or(lru_way);
        let w = &mut self.ways[base + way];
        let victim = if target.is_none() {
            Some(Victim { line: w.tag - 1, dirty: w.dirty() })
        } else {
            None
        };
        w.tag = line + 1;
        w.meta = (self.clock << 2) | state_code(state);
        victim
    }

    /// Value-identical twin of [`Cache::install`] for the batched walk:
    /// caller-precomputed page frame, caller-owned LRU clock (see
    /// [`Cache::probe_fast_ext`]) and the two-way shape laid out directly.
    /// The reference scan prefers the first invalid way and way 0 is
    /// checked first, which the specialized arm reproduces. Kept in lock
    /// step with `install` by the `install_fast_matches_install`
    /// differential test.
    #[inline(always)]
    pub(crate) fn install_fast(
        &mut self,
        line: u64,
        frame: u64,
        state: LineState,
        clock: &mut u64,
    ) -> Option<Victim> {
        debug_assert!(state != LineState::Invalid);
        debug_assert_ne!(self.page_lines_shift, u32::MAX, "install_fast needs physical indexing");
        debug_assert_eq!(frame, Self::frame_of(line >> self.page_lines_shift));
        let set = ((line ^ frame) & self.set_mask) as usize;
        let base = set * self.assoc;
        *clock += 1;
        let clock = *clock;
        if self.assoc == 2 {
            // SAFETY: `set <= set_mask = sets - 1` by the mask above, so
            // `base + 2 = set * assoc + assoc <= sets * assoc = ways.len()`.
            let ways: &mut [Way] = unsafe { self.ways.get_unchecked_mut(base..base + 2) };
            let (way, evict) = if !ways[0].valid() {
                (0, false)
            } else if !ways[1].valid() {
                (1, false)
            } else {
                (usize::from(ways[1].meta < ways[0].meta), true)
            };
            let w = &mut ways[way];
            let victim =
                if evict { Some(Victim { line: w.tag - 1, dirty: w.dirty() }) } else { None };
            w.tag = line + 1;
            w.meta = (clock << 2) | state_code(state);
            return victim;
        }
        let mut target = None;
        let mut lru_way = 0;
        let mut lru_meta = u64::MAX;
        for way in 0..self.assoc {
            let w = &self.ways[base + way];
            if !w.valid() {
                target = Some(way);
                break;
            }
            if w.meta < lru_meta {
                lru_meta = w.meta;
                lru_way = way;
            }
        }
        let way = target.unwrap_or(lru_way);
        let w = &mut self.ways[base + way];
        let victim = if target.is_none() {
            Some(Victim { line: w.tag - 1, dirty: w.dirty() })
        } else {
            None
        };
        w.tag = line + 1;
        w.meta = (clock << 2) | state_code(state);
        victim
    }

    /// Read/write the LRU clock around a batched walk that runs it in a
    /// caller-owned local (see [`Cache::probe_fast_ext`]).
    #[inline(always)]
    pub(crate) fn walk_clock(&self) -> u64 {
        self.clock
    }

    #[inline(always)]
    pub(crate) fn set_walk_clock(&mut self, clock: u64) {
        debug_assert!(clock >= self.clock, "walk clock must not run backwards");
        self.clock = clock;
    }

    /// Bulk warm-sweep over the consecutive lines `[first, last]`: process
    /// the longest prefix whose lines all hit without leaving this cache
    /// level — exactly as the equivalent sequence of [`Cache::probe`] calls
    /// would (one clock tick and stamp refresh per hit line; write hits on
    /// Exclusive promote to Modified) — and return its length. Stops
    /// *before* the first line that would miss (or, for a write, sits in
    /// `Shared` and needs an upgrade), leaving that line and the clock
    /// untouched for the caller's full per-line path. This is the
    /// simulator's hottest loop: a streamed re-sweep of L1-resident data
    /// runs entirely inside this one function.
    pub fn sweep_hits(&mut self, first: u64, last: u64, write: bool) -> u64 {
        let mut line = first;
        'lines: while line <= last {
            let set = self.set_of(line);
            let base = set * self.assoc;
            let tag = line + 1;
            for way in 0..self.assoc {
                let w = &mut self.ways[base + way];
                if w.tag == tag && w.valid() {
                    let state = if write {
                        if w.meta & 3 == ST_SHARED {
                            break 'lines;
                        }
                        ST_MODIFIED
                    } else {
                        w.meta & 3
                    };
                    self.clock += 1;
                    w.meta = (self.clock << 2) | state;
                    line += 1;
                    continue 'lines;
                }
            }
            break;
        }
        line - first
    }

    /// Mirror of the per-line "keep L2 in step" write probes issued for an
    /// L1 write-hit sweep: one clock tick per line; present lines are
    /// re-stamped and Exclusive ones promoted to Modified. A Shared line
    /// merely re-stamps — the per-line path ignores the `UpgradeNeeded`
    /// such a probe reports — and a missing line ticks the clock only,
    /// exactly like the discarded `Miss` probe (L1 inclusion makes that
    /// case unreachable in practice).
    pub fn sweep_keep_in_step(&mut self, first: u64, last: u64) {
        for line in first..=last {
            self.clock += 1;
            let set = self.set_of(line);
            let base = set * self.assoc;
            let tag = line + 1;
            for way in 0..self.assoc {
                let w = &mut self.ways[base + way];
                if w.tag == tag && w.valid() {
                    let state = if w.meta & 3 == ST_EXCLUSIVE { ST_MODIFIED } else { w.meta & 3 };
                    w.meta = (self.clock << 2) | state;
                    break;
                }
            }
        }
    }

    /// Whether `line` is present in any valid state (pure; no stamp
    /// refresh). Used by the bulk sweeps to detect their stopping lines
    /// without perturbing LRU state.
    #[inline]
    pub fn contains(&self, line: u64) -> bool {
        self.find(line).is_some()
    }

    /// Promote a Shared line to Modified after an upgrade transaction.
    pub fn upgrade(&mut self, line: u64) {
        if let Some(i) = self.find(line) {
            debug_assert_eq!(self.ways[i].state(), LineState::Shared);
            self.ways[i].meta = (self.ways[i].meta & !3) | ST_MODIFIED;
        }
    }

    /// Remove `line` if present; returns whether it was dirty.
    pub fn invalidate(&mut self, line: u64) -> bool {
        if let Some(i) = self.find(line) {
            let dirty = self.ways[i].dirty();
            self.ways[i] = EMPTY_WAY;
            dirty
        } else {
            false
        }
    }

    /// Downgrade `line` to Shared (after a remote read intervention);
    /// returns whether it was dirty (data must be written back/forwarded).
    pub fn downgrade(&mut self, line: u64) -> bool {
        if let Some(i) = self.find(line) {
            let dirty = self.ways[i].dirty();
            self.ways[i].meta = (self.ways[i].meta & !3) | ST_SHARED;
            dirty
        } else {
            false
        }
    }

    /// Current state of `line`, if present.
    pub fn state(&self, line: u64) -> Option<LineState> {
        self.find(line).map(|i| self.ways[i].state())
    }

    fn find(&self, line: u64) -> Option<usize> {
        let set = self.set_of(line);
        let base = set * self.assoc;
        let tag = line + 1;
        (0..self.assoc)
            .map(|w| base + w)
            .find(|&i| self.ways[i].tag == tag && self.ways[i].valid())
    }

    /// Number of valid lines currently resident (diagnostics/tests).
    pub fn resident(&self) -> usize {
        self.ways.iter().filter(|w| w.valid()).count()
    }
}

/// Bulk streamed L2→L1 refill: process the longest prefix of consecutive
/// lines `[first, last]` that are absent from `l1` and hit in `l2` with a
/// state sufficient for the access, mirroring — clock tick for clock tick —
/// what the per-line walk does for each such line (L1 probe miss, L2 probe
/// hit with stamp refresh and write promotion, L1 install of the refilled
/// line, silently dropping any L1 victim under inclusion). Returns how many
/// lines were refilled; stops untouched *before* the first line that is L1
/// resident, misses L2, or needs an ownership upgrade (write on Shared) —
/// those belong to the caller's other paths. Together with
/// [`Cache::sweep_hits`] this keeps a warm streamed sweep of L2-resident
/// data out of the per-line protocol machinery entirely.
pub fn sweep_l2_refill(l1: &mut Cache, l2: &mut Cache, first: u64, last: u64, write: bool) -> u64 {
    let mut line = first;
    'lines: while line <= last {
        let tag = line + 1;
        // One L1 scan doubles as the presence check (all ways) and the
        // victim pick [`Cache::install`] would redo: first invalid way,
        // else the LRU way.
        let base1 = l1.set_of(line) * l1.assoc;
        let mut invalid_way = usize::MAX;
        let mut lru_way = base1;
        let mut lru_meta = u64::MAX;
        for way in 0..l1.assoc {
            let i = base1 + way;
            let w = &l1.ways[i];
            if w.tag == tag && w.valid() {
                break 'lines; // L1-resident: the hit sweep owns it
            }
            if !w.valid() {
                if invalid_way == usize::MAX {
                    invalid_way = i;
                }
            } else if w.meta < lru_meta {
                lru_meta = w.meta;
                lru_way = i;
            }
        }
        // Peek L2 without mutating: the stopping line must be left exactly
        // as the per-line path expects to find it.
        let base2 = l2.set_of(line) * l2.assoc;
        let mut found = usize::MAX;
        for way in 0..l2.assoc {
            let i = base2 + way;
            if l2.ways[i].tag == tag && l2.ways[i].valid() {
                found = i;
                break;
            }
        }
        if found == usize::MAX || (write && l2.ways[found].meta & 3 == ST_SHARED) {
            break;
        }
        // Commit in the per-line order: L1 probe tick, L2 probe tick +
        // stamp + promotion, L1 install tick + victim overwrite (the
        // victim is dropped silently, exactly as the per-line walk does
        // under inclusion).
        l1.clock += 1;
        l2.clock += 1;
        let state = if write { ST_MODIFIED } else { l2.ways[found].meta & 3 };
        l2.ways[found].meta = (l2.clock << 2) | state;
        let w = if invalid_way != usize::MAX { invalid_way } else { lru_way };
        l1.clock += 1;
        l1.ways[w] = Way { tag, meta: (l1.clock << 2) | state };
        line += 1;
    }
    line - first
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut c = Cache::new(4, 2);
        assert!(matches!(c.probe(10, false), Probe::Miss { victim: None }));
        c.install(10, LineState::Shared);
        assert_eq!(c.probe(10, false), Probe::Hit(LineState::Shared));
        assert_eq!(c.state(10), Some(LineState::Shared));
    }

    #[test]
    fn write_hit_on_shared_needs_upgrade() {
        let mut c = Cache::new(4, 2);
        c.install(10, LineState::Shared);
        assert_eq!(c.probe(10, true), Probe::UpgradeNeeded);
        c.upgrade(10);
        assert_eq!(c.state(10), Some(LineState::Modified));
        assert_eq!(c.probe(10, true), Probe::Hit(LineState::Modified));
    }

    #[test]
    fn write_hit_on_exclusive_promotes_silently() {
        let mut c = Cache::new(4, 2);
        c.install(10, LineState::Exclusive);
        assert_eq!(c.probe(10, true), Probe::Hit(LineState::Modified));
        assert_eq!(c.state(10), Some(LineState::Modified));
    }

    #[test]
    fn lru_eviction_reports_dirty_victim() {
        let mut c = Cache::new(1, 2); // one set, two ways
        c.install(0, LineState::Modified);
        c.install(1, LineState::Shared);
        // Touch line 0 so line 1 is LRU.
        assert_eq!(c.probe(0, false), Probe::Hit(LineState::Modified));
        match c.probe(2, false) {
            Probe::Miss { victim: Some(v) } => {
                assert_eq!(v.line, 1);
                assert!(!v.dirty);
            }
            other => panic!("unexpected {other:?}"),
        }
        c.install(2, LineState::Shared);
        // Now 0 (dirty) is LRU versus 2.
        match c.probe(3, false) {
            Probe::Miss { victim: Some(v) } => {
                assert_eq!(v.line, 0);
                assert!(v.dirty);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn invalidate_and_downgrade() {
        let mut c = Cache::new(4, 2);
        c.install(7, LineState::Modified);
        assert!(c.downgrade(7));
        assert_eq!(c.state(7), Some(LineState::Shared));
        assert!(!c.invalidate(7));
        assert_eq!(c.state(7), None);
        // Invalidate of a missing line is a no-op.
        assert!(!c.invalidate(123));
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut c = Cache::new(4, 1);
        for line in 0..4u64 {
            c.install(line, LineState::Shared);
        }
        for line in 0..4u64 {
            assert_eq!(c.probe(line, false), Probe::Hit(LineState::Shared), "line {line}");
        }
        assert_eq!(c.resident(), 4);
        // Line 4 maps to set 0 and evicts line 0 only.
        c.install(4, LineState::Shared);
        assert_eq!(c.state(0), None);
        assert_eq!(c.state(1), Some(LineState::Shared));
    }
}

#[cfg(test)]
mod physical_index_tests {
    use super::*;

    #[test]
    fn page_hash_breaks_page_stride_aliasing() {
        // 64 cursors striding at exactly page-multiples: pure modulo
        // indexing piles them into few sets; physical indexing spreads them.
        let lines_per_page = 32u64;
        let sets = 256;
        let resident_after = |mut c: Cache| {
            for cursor in 0..64u64 {
                c.install(cursor * 8 * lines_per_page, LineState::Modified);
            }
            c.resident()
        };
        let modulo = resident_after(Cache::new(sets, 2));
        let physical = resident_after(Cache::physically_indexed(sets, 2, lines_per_page as usize));
        assert!(physical > modulo, "physical indexing ({physical}) must keep more page-strided lines resident than modulo ({modulo})");
        assert!(physical >= 48, "expected most of the 64 strided lines resident, got {physical}");
    }

    #[test]
    fn consecutive_lines_mostly_avoid_self_conflict_under_hashing() {
        // A stream of consecutive lines fills half the slots of a 2-way
        // cache; hashed page placement loses only the occasional
        // triple-overlap (within-page lines stay consecutive, so there is
        // no systematic aliasing).
        let mut c = Cache::physically_indexed(1024, 2, 32);
        for line in 0..1024u64 {
            c.install(line, LineState::Shared);
        }
        assert!(c.resident() >= 850, "stream lost {} lines to conflicts", 1024 - c.resident());
    }

    #[test]
    fn hashing_is_consistent_probe_vs_install() {
        let mut c = Cache::physically_indexed(64, 2, 16);
        for line in [0u64, 12345, 999_999, 1 << 40] {
            assert!(matches!(c.probe(line, false), Probe::Miss { .. }));
            c.install(line, LineState::Exclusive);
            assert_eq!(c.probe(line, false), Probe::Hit(LineState::Exclusive), "line {line}");
        }
    }

    /// `probe_fast` is the batched walk's force-inlined twin of `probe`:
    /// drive both through the same randomized probe/install/invalidate
    /// stream and assert identical results and identical final state.
    /// Covered at both assoc = 2 (the specialized two-way shape the
    /// simulated caches actually use) and assoc = 4 (the generic fallback).
    #[test]
    fn probe_fast_matches_probe() {
        for assoc in [2, 4] {
            let mut a = Cache::physically_indexed(64, assoc, 16);
            let mut b = Cache::physically_indexed(64, assoc, 16);
            let mut x = 0x0DDB_1A5E_5BAD_5EEDu64;
            for step in 0..50_000 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let line = (x >> 33) % 200; // working set > capacity: misses churn
                let write = x & 1 == 1;
                let frame = Cache::frame_of(line >> b.page_lines_shift);
                let pa = a.probe(line, write);
                let pb = b.probe_fast(line, frame, write);
                assert_eq!(pa, pb, "step {step}: probe result diverged on line {line}");
                if let Probe::Miss { .. } = pa {
                    let state = if write { LineState::Modified } else { LineState::Shared };
                    assert_eq!(a.install(line, state), b.install(line, state), "step {step}");
                }
                if x & 0xF0 == 0 {
                    assert_eq!(a.invalidate(line), b.invalidate(line), "step {step}");
                }
            }
            assert_eq!(a.ways, b.ways, "assoc {assoc}");
            assert_eq!(a.clock, b.clock, "assoc {assoc}");
        }
    }

    /// Same discipline for `install_fast`: drive `install` and the batched
    /// walk's twin (external clock, precomputed frame) through the same
    /// randomized miss/install stream; results and final state must match.
    #[test]
    fn install_fast_matches_install() {
        for assoc in [2, 4] {
            let mut a = Cache::physically_indexed(64, assoc, 16);
            let mut b = Cache::physically_indexed(64, assoc, 16);
            let mut x = 0x1234_5678_9ABC_DEF0u64;
            for step in 0..50_000 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let line = (x >> 33) % 300;
                let write = x & 1 == 1;
                let frame = Cache::frame_of(line >> b.page_lines_shift);
                if let Probe::Miss { .. } = a.probe(line, write) {
                    let state = if write { LineState::Modified } else { LineState::Exclusive };
                    let va = a.install(line, state);
                    let mut clock = b.walk_clock();
                    // Keep b's clock in step with a's probe tick too.
                    b.probe_fast_ext(line, frame, write, &mut clock);
                    let vb = b.install_fast(line, frame, state, &mut clock);
                    b.set_walk_clock(clock);
                    assert_eq!(va, vb, "step {step}: victim diverged on line {line}");
                } else {
                    let mut clock = b.walk_clock();
                    b.probe_fast_ext(line, frame, write, &mut clock);
                    b.set_walk_clock(clock);
                }
            }
            assert_eq!(a.ways, b.ways, "assoc {assoc}");
            assert_eq!(a.clock, b.clock, "assoc {assoc}");
        }
    }
}
