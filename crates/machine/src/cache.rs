//! Set-associative write-back cache model with MESI line states.
//!
//! The cache operates at line granularity: callers translate element
//! accesses to line touches. State is kept in flat arrays (one tag, state
//! and LRU stamp per way) so a probe is a handful of array reads — cheap
//! enough to invoke hundreds of millions of times in a simulation run.

/// Coherence state of a line in a processor's cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineState {
    Invalid,
    Shared,
    /// Exclusive clean or dirty; `Modified` tracks dirtiness separately so
    /// eviction knows whether a writeback is needed.
    Exclusive,
    Modified,
}

/// Result of probing the cache for a line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Probe {
    /// Present with a state sufficient for the access; carries the line's
    /// state *after* the probe (a write hit on Exclusive is already
    /// promoted to Modified), so callers never need a second tag walk.
    Hit(LineState),
    /// Present in `Shared` state but the access is a write: needs an
    /// ownership upgrade (no data fetch).
    UpgradeNeeded,
    /// Not present: needs a fetch. If a valid line was evicted to make room,
    /// `victim` carries its line index and whether it was dirty.
    Miss { victim: Option<Victim> },
}

/// An evicted line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Victim {
    /// Global line index of the evicted line.
    pub line: u64,
    /// Whether the line was in `Modified` state (requires a writeback).
    pub dirty: bool,
}

/// A set-associative cache indexed by global line number.
#[derive(Debug, Clone)]
pub struct Cache {
    assoc: usize,
    set_mask: u64,
    /// Log2 of lines per page, for physically-indexed set selection;
    /// `u32::MAX` disables page randomization (pure modulo indexing).
    page_lines_shift: u32,
    /// `tags[set * assoc + way]` = global line index + 1 (0 = empty).
    tags: Vec<u64>,
    states: Vec<LineState>,
    /// LRU stamps; larger = more recent.
    stamps: Vec<u64>,
    clock: u64,
}

/// Odd multiplier for the page-frame hash (splitmix64's constant).
const PAGE_HASH_MULT: u64 = 0x9E37_79B9_7F4A_7C15;

impl Cache {
    /// Create a cache with pure modulo set indexing (sets must be a power
    /// of two).
    pub fn new(sets: usize, assoc: usize) -> Self {
        assert!(sets.is_power_of_two() && sets > 0);
        assert!(assoc > 0);
        Cache {
            assoc,
            set_mask: (sets - 1) as u64,
            page_lines_shift: u32::MAX,
            tags: vec![0; sets * assoc],
            states: vec![LineState::Invalid; sets * assoc],
            stamps: vec![0; sets * assoc],
            clock: 0,
        }
    }

    /// Create a *physically indexed* cache: set selection hashes the page
    /// number (a deterministic stand-in for the OS's virtual→physical page
    /// mapping) while keeping within-page lines consecutive. Real machines
    /// behave this way — page-aligned data structures do not stay
    /// set-aligned in a physically indexed cache — and without it,
    /// power-of-two-strided structures (e.g. the digit segments of a radix
    /// sort's staging buffer) alias pathologically.
    pub fn physically_indexed(sets: usize, assoc: usize, lines_per_page: usize) -> Self {
        assert!(lines_per_page.is_power_of_two() && lines_per_page > 0);
        let mut c = Cache::new(sets, assoc);
        c.page_lines_shift = lines_per_page.trailing_zeros();
        c
    }

    #[inline]
    fn set_of(&self, line: u64) -> usize {
        if self.page_lines_shift == u32::MAX {
            return (line & self.set_mask) as usize;
        }
        let page = line >> self.page_lines_shift;
        // Hash the page frame and xor it across *all* set-index bits:
        // consecutive lines within a page stay in consecutive sets (good
        // for streams), while same-offset lines of different pages land in
        // unrelated sets — as they do under a real OS's scattered physical
        // page allocation.
        let frame = page.wrapping_mul(PAGE_HASH_MULT);
        let frame = frame ^ (frame >> 32);
        ((line ^ frame) & self.set_mask) as usize
    }

    /// Probe for `line`. On a hit the LRU stamp is refreshed and, for
    /// writes, the state is promoted to `Modified` (if it was Exclusive) or
    /// reported as `UpgradeNeeded` (if Shared). On a miss nothing is
    /// installed — call [`Cache::install`] after the directory transaction
    /// resolves.
    pub fn probe(&mut self, line: u64, write: bool) -> Probe {
        let set = self.set_of(line);
        let base = set * self.assoc;
        self.clock += 1;
        let tag = line + 1;
        for way in 0..self.assoc {
            let i = base + way;
            if self.tags[i] == tag && self.states[i] != LineState::Invalid {
                self.stamps[i] = self.clock;
                if write {
                    match self.states[i] {
                        LineState::Shared => return Probe::UpgradeNeeded,
                        LineState::Exclusive | LineState::Modified => {
                            self.states[i] = LineState::Modified;
                            return Probe::Hit(LineState::Modified);
                        }
                        LineState::Invalid => unreachable!(),
                    }
                }
                return Probe::Hit(self.states[i]);
            }
        }
        // Miss: choose a victim way (prefer an invalid one).
        let victim = self.pick_victim(set);
        Probe::Miss { victim }
    }

    fn pick_victim(&self, set: usize) -> Option<Victim> {
        let base = set * self.assoc;
        let mut lru_way = 0;
        let mut lru_stamp = u64::MAX;
        for way in 0..self.assoc {
            let i = base + way;
            if self.states[i] == LineState::Invalid {
                return None; // room available; nothing evicted
            }
            if self.stamps[i] < lru_stamp {
                lru_stamp = self.stamps[i];
                lru_way = way;
            }
        }
        let i = base + lru_way;
        Some(Victim { line: self.tags[i] - 1, dirty: self.states[i] == LineState::Modified })
    }

    /// Install `line` in `state`, evicting the LRU way if the set is full.
    /// Returns the evicted line (if any) so the caller can notify the
    /// directory and account a writeback — silently dropping a victim
    /// would leave the directory with ghost owners.
    pub fn install(&mut self, line: u64, state: LineState) -> Option<Victim> {
        debug_assert!(state != LineState::Invalid);
        let set = self.set_of(line);
        let base = set * self.assoc;
        self.clock += 1;
        // Prefer an invalid way, else evict LRU.
        let mut target = None;
        let mut lru_way = 0;
        let mut lru_stamp = u64::MAX;
        for way in 0..self.assoc {
            let i = base + way;
            if self.states[i] == LineState::Invalid {
                target = Some(way);
                break;
            }
            if self.stamps[i] < lru_stamp {
                lru_stamp = self.stamps[i];
                lru_way = way;
            }
        }
        let way = target.unwrap_or(lru_way);
        let i = base + way;
        let victim = if target.is_none() {
            Some(Victim { line: self.tags[i] - 1, dirty: self.states[i] == LineState::Modified })
        } else {
            None
        };
        self.tags[i] = line + 1;
        self.states[i] = state;
        self.stamps[i] = self.clock;
        victim
    }

    /// Bulk warm-sweep over the consecutive lines `[first, last]`: process
    /// the longest prefix whose lines all hit without leaving this cache
    /// level — exactly as the equivalent sequence of [`Cache::probe`] calls
    /// would (one clock tick and stamp refresh per hit line; write hits on
    /// Exclusive promote to Modified) — and return its length. Stops
    /// *before* the first line that would miss (or, for a write, sits in
    /// `Shared` and needs an upgrade), leaving that line and the clock
    /// untouched for the caller's full per-line path. This is the
    /// simulator's hottest loop: a streamed re-sweep of L1-resident data
    /// runs entirely inside this one function.
    pub fn sweep_hits(&mut self, first: u64, last: u64, write: bool) -> u64 {
        let mut line = first;
        'lines: while line <= last {
            let set = self.set_of(line);
            let base = set * self.assoc;
            let tag = line + 1;
            for way in 0..self.assoc {
                let i = base + way;
                if self.tags[i] == tag && self.states[i] != LineState::Invalid {
                    if write {
                        match self.states[i] {
                            LineState::Shared => break 'lines,
                            LineState::Exclusive | LineState::Modified => {
                                self.states[i] = LineState::Modified;
                            }
                            LineState::Invalid => unreachable!(),
                        }
                    }
                    self.clock += 1;
                    self.stamps[i] = self.clock;
                    line += 1;
                    continue 'lines;
                }
            }
            break;
        }
        line - first
    }

    /// Mirror of the per-line "keep L2 in step" write probes issued for an
    /// L1 write-hit sweep: one clock tick per line; present lines are
    /// re-stamped and Exclusive ones promoted to Modified. A Shared line
    /// merely re-stamps — the per-line path ignores the `UpgradeNeeded`
    /// such a probe reports — and a missing line ticks the clock only,
    /// exactly like the discarded `Miss` probe (L1 inclusion makes that
    /// case unreachable in practice).
    pub fn sweep_keep_in_step(&mut self, first: u64, last: u64) {
        for line in first..=last {
            self.clock += 1;
            let set = self.set_of(line);
            let base = set * self.assoc;
            let tag = line + 1;
            for way in 0..self.assoc {
                let i = base + way;
                if self.tags[i] == tag && self.states[i] != LineState::Invalid {
                    self.stamps[i] = self.clock;
                    if self.states[i] == LineState::Exclusive {
                        self.states[i] = LineState::Modified;
                    }
                    break;
                }
            }
        }
    }

    /// Whether `line` is present in any valid state (pure; no stamp
    /// refresh). Used by the bulk sweeps to detect their stopping lines
    /// without perturbing LRU state.
    #[inline]
    pub fn contains(&self, line: u64) -> bool {
        self.find(line).is_some()
    }

    /// Promote a Shared line to Modified after an upgrade transaction.
    pub fn upgrade(&mut self, line: u64) {
        if let Some(i) = self.find(line) {
            debug_assert_eq!(self.states[i], LineState::Shared);
            self.states[i] = LineState::Modified;
        }
    }

    /// Remove `line` if present; returns whether it was dirty.
    pub fn invalidate(&mut self, line: u64) -> bool {
        if let Some(i) = self.find(line) {
            let dirty = self.states[i] == LineState::Modified;
            self.states[i] = LineState::Invalid;
            self.tags[i] = 0;
            dirty
        } else {
            false
        }
    }

    /// Downgrade `line` to Shared (after a remote read intervention);
    /// returns whether it was dirty (data must be written back/forwarded).
    pub fn downgrade(&mut self, line: u64) -> bool {
        if let Some(i) = self.find(line) {
            let dirty = self.states[i] == LineState::Modified;
            self.states[i] = LineState::Shared;
            dirty
        } else {
            false
        }
    }

    /// Current state of `line`, if present.
    pub fn state(&self, line: u64) -> Option<LineState> {
        self.find(line).map(|i| self.states[i])
    }

    fn find(&self, line: u64) -> Option<usize> {
        let set = self.set_of(line);
        let base = set * self.assoc;
        let tag = line + 1;
        (0..self.assoc).map(|w| base + w).find(|&i| self.tags[i] == tag && self.states[i] != LineState::Invalid)
    }

    /// Number of valid lines currently resident (diagnostics/tests).
    pub fn resident(&self) -> usize {
        self.states.iter().filter(|s| **s != LineState::Invalid).count()
    }
}

/// Bulk streamed L2→L1 refill: process the longest prefix of consecutive
/// lines `[first, last]` that are absent from `l1` and hit in `l2` with a
/// state sufficient for the access, mirroring — clock tick for clock tick —
/// what the per-line walk does for each such line (L1 probe miss, L2 probe
/// hit with stamp refresh and write promotion, L1 install of the refilled
/// line, silently dropping any L1 victim under inclusion). Returns how many
/// lines were refilled; stops untouched *before* the first line that is L1
/// resident, misses L2, or needs an ownership upgrade (write on Shared) —
/// those belong to the caller's other paths. Together with
/// [`Cache::sweep_hits`] this keeps a warm streamed sweep of L2-resident
/// data out of the per-line protocol machinery entirely.
pub fn sweep_l2_refill(l1: &mut Cache, l2: &mut Cache, first: u64, last: u64, write: bool) -> u64 {
    let mut line = first;
    'lines: while line <= last {
        let tag = line + 1;
        // One L1 scan doubles as the presence check (all ways) and the
        // victim pick [`Cache::install`] would redo: first invalid way,
        // else the LRU way.
        let base1 = l1.set_of(line) * l1.assoc;
        let mut invalid_way = usize::MAX;
        let mut lru_way = base1;
        let mut lru_stamp = u64::MAX;
        for way in 0..l1.assoc {
            let i = base1 + way;
            if l1.tags[i] == tag && l1.states[i] != LineState::Invalid {
                break 'lines; // L1-resident: the hit sweep owns it
            }
            if l1.states[i] == LineState::Invalid {
                if invalid_way == usize::MAX {
                    invalid_way = i;
                }
            } else if l1.stamps[i] < lru_stamp {
                lru_stamp = l1.stamps[i];
                lru_way = i;
            }
        }
        // Peek L2 without mutating: the stopping line must be left exactly
        // as the per-line path expects to find it.
        let base2 = l2.set_of(line) * l2.assoc;
        let mut found = usize::MAX;
        for way in 0..l2.assoc {
            let i = base2 + way;
            if l2.tags[i] == tag && l2.states[i] != LineState::Invalid {
                found = i;
                break;
            }
        }
        if found == usize::MAX || (write && l2.states[found] == LineState::Shared) {
            break;
        }
        // Commit in the per-line order: L1 probe tick, L2 probe tick +
        // stamp + promotion, L1 install tick + victim overwrite (the
        // victim is dropped silently, exactly as the per-line walk does
        // under inclusion).
        l1.clock += 1;
        l2.clock += 1;
        l2.stamps[found] = l2.clock;
        let state = if write {
            l2.states[found] = LineState::Modified;
            LineState::Modified
        } else {
            l2.states[found]
        };
        let w = if invalid_way != usize::MAX { invalid_way } else { lru_way };
        l1.clock += 1;
        l1.tags[w] = tag;
        l1.states[w] = state;
        l1.stamps[w] = l1.clock;
        line += 1;
    }
    line - first
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut c = Cache::new(4, 2);
        assert!(matches!(c.probe(10, false), Probe::Miss { victim: None }));
        c.install(10, LineState::Shared);
        assert_eq!(c.probe(10, false), Probe::Hit(LineState::Shared));
        assert_eq!(c.state(10), Some(LineState::Shared));
    }

    #[test]
    fn write_hit_on_shared_needs_upgrade() {
        let mut c = Cache::new(4, 2);
        c.install(10, LineState::Shared);
        assert_eq!(c.probe(10, true), Probe::UpgradeNeeded);
        c.upgrade(10);
        assert_eq!(c.state(10), Some(LineState::Modified));
        assert_eq!(c.probe(10, true), Probe::Hit(LineState::Modified));
    }

    #[test]
    fn write_hit_on_exclusive_promotes_silently() {
        let mut c = Cache::new(4, 2);
        c.install(10, LineState::Exclusive);
        assert_eq!(c.probe(10, true), Probe::Hit(LineState::Modified));
        assert_eq!(c.state(10), Some(LineState::Modified));
    }

    #[test]
    fn lru_eviction_reports_dirty_victim() {
        let mut c = Cache::new(1, 2); // one set, two ways
        c.install(0, LineState::Modified);
        c.install(1, LineState::Shared);
        // Touch line 0 so line 1 is LRU.
        assert_eq!(c.probe(0, false), Probe::Hit(LineState::Modified));
        match c.probe(2, false) {
            Probe::Miss { victim: Some(v) } => {
                assert_eq!(v.line, 1);
                assert!(!v.dirty);
            }
            other => panic!("unexpected {other:?}"),
        }
        c.install(2, LineState::Shared);
        // Now 0 (dirty) is LRU versus 2.
        match c.probe(3, false) {
            Probe::Miss { victim: Some(v) } => {
                assert_eq!(v.line, 0);
                assert!(v.dirty);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn invalidate_and_downgrade() {
        let mut c = Cache::new(4, 2);
        c.install(7, LineState::Modified);
        assert!(c.downgrade(7));
        assert_eq!(c.state(7), Some(LineState::Shared));
        assert!(!c.invalidate(7));
        assert_eq!(c.state(7), None);
        // Invalidate of a missing line is a no-op.
        assert!(!c.invalidate(123));
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut c = Cache::new(4, 1);
        for line in 0..4u64 {
            c.install(line, LineState::Shared);
        }
        for line in 0..4u64 {
            assert_eq!(c.probe(line, false), Probe::Hit(LineState::Shared), "line {line}");
        }
        assert_eq!(c.resident(), 4);
        // Line 4 maps to set 0 and evicts line 0 only.
        c.install(4, LineState::Shared);
        assert_eq!(c.state(0), None);
        assert_eq!(c.state(1), Some(LineState::Shared));
    }
}

#[cfg(test)]
mod physical_index_tests {
    use super::*;

    #[test]
    fn page_hash_breaks_page_stride_aliasing() {
        // 64 cursors striding at exactly page-multiples: pure modulo
        // indexing piles them into few sets; physical indexing spreads them.
        let lines_per_page = 32u64;
        let sets = 256;
        let resident_after = |mut c: Cache| {
            for cursor in 0..64u64 {
                c.install(cursor * 8 * lines_per_page, LineState::Modified);
            }
            c.resident()
        };
        let modulo = resident_after(Cache::new(sets, 2));
        let physical = resident_after(Cache::physically_indexed(sets, 2, lines_per_page as usize));
        assert!(physical > modulo, "physical indexing ({physical}) must keep more page-strided lines resident than modulo ({modulo})");
        assert!(physical >= 48, "expected most of the 64 strided lines resident, got {physical}");
    }

    #[test]
    fn consecutive_lines_mostly_avoid_self_conflict_under_hashing() {
        // A stream of consecutive lines fills half the slots of a 2-way
        // cache; hashed page placement loses only the occasional
        // triple-overlap (within-page lines stay consecutive, so there is
        // no systematic aliasing).
        let mut c = Cache::physically_indexed(1024, 2, 32);
        for line in 0..1024u64 {
            c.install(line, LineState::Shared);
        }
        assert!(c.resident() >= 850, "stream lost {} lines to conflicts", 1024 - c.resident());
    }

    #[test]
    fn hashing_is_consistent_probe_vs_install() {
        let mut c = Cache::physically_indexed(64, 2, 16);
        for line in [0u64, 12345, 999_999, 1 << 40] {
            assert!(matches!(c.probe(line, false), Probe::Miss { .. }));
            c.install(line, LineState::Exclusive);
            assert_eq!(c.probe(line, false), Probe::Hit(LineState::Exclusive), "line {line}");
        }
    }
}
