//! Phase-level memory-controller contention model.
//!
//! This is the mechanism behind the paper's central radix-sort observation:
//! the CC-SAS program's temporally scattered remote writes generate so many
//! coherence-protocol transactions (read-exclusive requests, invalidations,
//! acknowledgements, writebacks) that they "compete for communication
//! resources with data transfer" (Section 4.2) and the permutation phase
//! collapses — while the explicit bulk messages of the MPI and SHMEM
//! programs move the same bytes with far fewer protocol transactions.
//!
//! During a phase (the code between two barriers) every controller visit
//! deposits *occupancy* at its home node. Visits come in two classes:
//!
//! * **latency-bound** protocol transactions (cache-miss requests,
//!   upgrades, interventions): the processor waits for each one, so each
//!   is charged an M/D/1-style queueing delay once utilisation builds;
//! * **bandwidth** work (DMA'd message lines, writebacks): the processor
//!   does not wait per line — these only matter when a controller is
//!   *saturated*, which the bottleneck-stretch term captures.
//!
//! When the phase ends, each controller's utilisation is
//! `rho_h = occupancy_h / span` (span = longest uncontended processor time
//! in the phase). Latency transactions at node `h` are charged
//! `W_h = S_h * rho'_h / (2 (1 - rho'_h))` each, with `rho'` capped at
//! [`WAIT_RHO_CAP`] so the wait stays a queue delay rather than a
//! divergence. If `rho_h` exceeds the saturation cap the controller is the
//! bottleneck: the phase stretches so the controller runs at the cap, and
//! the stretch is distributed to processors in proportion to the occupancy
//! they deposited there. Deterministic, order-free, and it produces
//! utilisation collapse exactly where the paper reports it.

/// Utilisation cap for the per-transaction waiting-time formula. Above
/// this, extra delay is modelled as bottleneck stretch, not per-request
/// waiting (avoiding the 1/(1-rho) divergence double-counting the stretch).
pub const WAIT_RHO_CAP: f64 = 0.8;

/// Additional stall time assigned to one processor when a phase resolves,
/// split by whether the congested controller was on the processor's own
/// node (LMEM) or a remote one (RMEM).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Delay {
    pub lmem: f64,
    pub rmem: f64,
}

/// Traffic recorded during one phase.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseTraffic {
    n_nodes: usize,
    /// Occupancy demanded at each node controller, in ns.
    occupancy: Vec<f64>,
    /// Total controller visits per node (for the mean service time).
    events: Vec<u64>,
    /// Latency-bound transaction counts per (pe, node), row-major by pe.
    lat_counts: Vec<u64>,
    /// Occupancy contributed per (pe, node), row-major by pe.
    occ_share: Vec<f64>,
}

impl PhaseTraffic {
    pub fn new(n_procs: usize, n_nodes: usize) -> Self {
        PhaseTraffic {
            n_nodes,
            occupancy: vec![0.0; n_nodes],
            events: vec![0; n_nodes],
            lat_counts: vec![0; n_procs * n_nodes],
            occ_share: vec![0.0; n_procs * n_nodes],
        }
    }

    /// Record `occ_ns` of controller occupancy at `node`, caused by `pe`:
    /// `events` individual controller visits, of which `latency_events`
    /// are ones the processor waits on.
    #[inline]
    pub fn add(&mut self, pe: usize, node: usize, occ_ns: f64, events: u64, latency_events: u64) {
        self.occupancy[node] += occ_ns;
        self.events[node] += events;
        self.lat_counts[pe * self.n_nodes + node] += latency_events;
        self.occ_share[pe * self.n_nodes + node] += occ_ns;
    }

    /// Total occupancy demanded at `node` so far this phase.
    pub fn occupancy_at(&self, node: usize) -> f64 {
        self.occupancy[node]
    }

    /// Clear for the next phase.
    pub fn reset(&mut self) {
        self.occupancy.fill(0.0);
        self.events.fill(0);
        self.lat_counts.fill(0);
        self.occ_share.fill(0.0);
    }

    /// True if nothing was recorded (fast path for compute-only phases).
    pub fn is_empty(&self) -> bool {
        self.occupancy.iter().all(|&o| o == 0.0)
    }

    /// Resolve the phase: compute each processor's extra stall time.
    ///
    /// * `elapsed` — uncontended time each processor spent in the phase.
    /// * `node_of` — node of each processor.
    /// * `rho_cap` — saturation cap (e.g. 0.95).
    pub fn resolve(&self, elapsed: &[f64], node_of: &[usize], rho_cap: f64) -> Vec<Delay> {
        let mut delays = Vec::new();
        self.resolve_into(elapsed, node_of, rho_cap, &mut delays);
        delays
    }

    /// [`PhaseTraffic::resolve`] into a caller-owned buffer, so the
    /// per-phase hot path (`Machine::resolve_phase`) can reuse one scratch
    /// allocation for the whole run. `delays` is cleared and refilled.
    pub fn resolve_into(
        &self,
        elapsed: &[f64],
        node_of: &[usize],
        rho_cap: f64,
        delays: &mut Vec<Delay>,
    ) {
        let n_procs = elapsed.len();
        delays.clear();
        delays.resize(n_procs, Delay::default());
        if self.is_empty() {
            return;
        }
        let span = elapsed.iter().copied().fold(0.0_f64, f64::max).max(1e-9);

        for node in 0..self.n_nodes {
            let occ = self.occupancy[node];
            if occ <= 0.0 || self.events[node] == 0 {
                continue;
            }
            let service = occ / self.events[node] as f64;
            let rho = occ / span;
            let rho_w = rho.min(WAIT_RHO_CAP);
            // M/D/1 mean waiting time at utilisation rho_w.
            let wait = service * rho_w / (2.0 * (1.0 - rho_w));
            // Bottleneck stretch beyond the saturation cap, if any.
            let stretch = if rho > rho_cap { occ / rho_cap - span } else { 0.0 };

            for pe in 0..n_procs {
                let lat = self.lat_counts[pe * self.n_nodes + node];
                let share = self.occ_share[pe * self.n_nodes + node] / occ;
                let extra = wait * lat as f64 + stretch * share;
                if extra <= 0.0 {
                    continue;
                }
                if node_of[pe] == node {
                    delays[pe].lmem += extra;
                } else {
                    delays[pe].rmem += extra;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_phase_no_delay() {
        let t = PhaseTraffic::new(4, 2);
        let d = t.resolve(&[100.0; 4], &[0, 0, 1, 1], 0.95);
        assert!(d.iter().all(|d| d.lmem == 0.0 && d.rmem == 0.0));
    }

    #[test]
    fn light_load_small_delay() {
        let mut t = PhaseTraffic::new(2, 2);
        // 10 latency transactions of 10 ns at node 0 during a 1000 ns
        // phase: rho = 0.1.
        for _ in 0..10 {
            t.add(0, 0, 10.0, 1, 1);
        }
        let d = t.resolve(&[1000.0, 1000.0], &[0, 1], 0.95);
        // W = 10 * 0.1 / (2 * 0.9) = 0.555..; 10 transactions -> ~5.6 ns.
        assert!(d[0].lmem > 5.0 && d[0].lmem < 6.0, "{:?}", d[0]);
        assert_eq!(d[0].rmem, 0.0);
        assert_eq!(d[1].lmem, 0.0);
    }

    #[test]
    fn overload_stretches_phase() {
        let mut t = PhaseTraffic::new(2, 2);
        // 2000 ns of demanded occupancy in a 1000 ns phase: rho = 2.
        t.add(0, 1, 1000.0, 100, 100);
        t.add(1, 1, 1000.0, 100, 100);
        let d = t.resolve(&[1000.0, 1000.0], &[0, 1], 0.95);
        // Stretch = 2000/0.95 - 1000 ≈ 1105 ns split evenly, plus queueing.
        let total_extra = d[0].rmem + d[1].lmem;
        assert!(total_extra > 1100.0, "total extra {total_extra}");
        // pe 0 is remote from node 1, pe 1 is local to it.
        assert!(d[0].rmem > 0.0 && d[0].lmem == 0.0);
        assert!(d[1].lmem > 0.0 && d[1].rmem == 0.0);
        // Equal traffic -> equal shares.
        assert!((d[0].rmem - d[1].lmem).abs() < 1e-6);
    }

    #[test]
    fn bulk_traffic_at_moderate_load_is_nearly_free() {
        // Same occupancy, once as latency transactions and once as bulk:
        // below saturation the bulk variant must charge (almost) nothing.
        let span = [10_000.0, 10_000.0];
        let mut lat = PhaseTraffic::new(2, 1);
        lat.add(0, 0, 8_000.0, 80, 80); // rho = 0.8
        let d_lat = lat.resolve(&span, &[0, 0], 0.95);

        let mut bulk = PhaseTraffic::new(2, 1);
        bulk.add(0, 0, 8_000.0, 80, 0);
        let d_bulk = bulk.resolve(&span, &[0, 0], 0.95);

        assert!(d_lat[0].lmem > 100.0, "latency class must queue: {:?}", d_lat[0]);
        assert_eq!(d_bulk[0].lmem, 0.0, "bulk class below saturation is free");
    }

    #[test]
    fn bulk_traffic_still_causes_saturation_stretch() {
        let mut t = PhaseTraffic::new(2, 1);
        // rho = 3: saturated even though all traffic is bulk.
        t.add(0, 0, 3_000.0, 100, 0);
        let d = t.resolve(&[1000.0, 1000.0], &[0, 0], 0.95);
        assert!(d[0].lmem > 2000.0, "{:?}", d[0]);
    }

    #[test]
    fn delay_proportional_to_traffic_share() {
        let mut t = PhaseTraffic::new(2, 1);
        t.add(0, 0, 3000.0, 300, 300);
        t.add(1, 0, 1000.0, 100, 100);
        let d = t.resolve(&[1000.0, 1000.0], &[0, 0], 0.95);
        assert!(d[0].lmem > 2.9 * d[1].lmem && d[0].lmem < 3.1 * d[1].lmem);
    }

    #[test]
    fn reset_clears() {
        let mut t = PhaseTraffic::new(1, 1);
        t.add(0, 0, 100.0, 1, 1);
        assert!(!t.is_empty());
        t.reset();
        assert!(t.is_empty());
        assert_eq!(t.occupancy_at(0), 0.0);
    }
}
