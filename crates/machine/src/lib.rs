//! # ccsort-machine
//!
//! A deterministic, execution-driven simulator of a hardware cache-coherent
//! distributed-shared-memory (CC-NUMA) multiprocessor, preset to the
//! 64-processor SGI Origin 2000 studied in Shan & Singh, *Parallel Sorting
//! on Cache-coherent DSM Multiprocessors* (SC 1999).
//!
//! The simulator models, per processor, a set-associative write-back cache
//! ([`cache::Cache`]) and a TLB ([`tlb::Tlb`]); globally, a directory
//! invalidation protocol ([`directory::Directory`], full-map by default,
//! with limited-pointer and coarse-vector representations selectable via
//! [`config::DirectoryMode`]) over a paged,
//! placement-aware address space ([`memory::AddressSpace`]), a pluggable
//! interconnect ([`topology::Topology`]: hypercube by default, 2-D mesh and
//! fat-tree via [`config::InterconnectKind`]) and a phase-level controller
//! contention model ([`contention::PhaseTraffic`]). The directory's write
//! transitions are equally pluggable ([`protocol`]): MESI-style
//! invalidation by default, a Dragon-style update mode via
//! [`config::ProtocolMode`]. Programs running on the machine accumulate
//! virtual time split into the paper's four buckets — BUSY, LMEM, RMEM,
//! SYNC ([`stats::TimeBreakdown`]).
//!
//! Crucially, simulated arrays have *real* backing stores: algorithms
//! running on the machine genuinely sort data, and tests verify the output.
//! Time accounting cannot drift away from what the program actually did.
//!
//! ```
//! use ccsort_machine::{Machine, MachineConfig, Placement};
//!
//! let cfg = MachineConfig::origin2000(4).scaled_down(16);
//! let mut m = Machine::new(cfg);
//! let a = m.alloc(1024, Placement::Partitioned { parts: 4 }, "keys");
//! m.write_at(0, a, 0, 7);
//! assert_eq!(m.read_at(0, a, 0), 7);
//! m.busy_cycles(0, 100.0);
//! m.barrier();
//! assert!(m.breakdown(0).busy > 0.0);
//! ```

pub mod cache;
pub mod config;
pub mod contention;
pub mod directory;
pub mod machine;
pub mod memory;
pub mod protocol;
pub mod race;
pub mod stats;
pub mod tlb;
pub mod topology;

pub use config::{CacheGeom, DirectoryMode, InterconnectKind, MachineConfig, ProtocolMode, MAX_PROCS};
pub use directory::{DirState, Directory};
pub use machine::{Machine, Pattern};
pub use memory::{ArrayId, Placement};
pub use race::{MsgToken, RaceDetector, RaceKind, RaceReport};
pub use stats::{Bucket, EventCounters, TimeBreakdown};
pub use topology::Topology;
