//! Per-processor TLB model.
//!
//! The R10000 has a 64-entry software-refilled TLB. The paper attributes the
//! 256M-key behaviour of the `remote` and `local` distributions to TLB
//! misses during the local permutation (Section 4.2.2), so the TLB has to be
//! part of the model. We use a fully-associative table with a clock (second
//! chance) replacement policy — deterministic and a good stand-in for the
//! hardware's random replacement without introducing randomness.

/// A fully-associative TLB with clock replacement.
#[derive(Debug, Clone)]
pub struct Tlb {
    /// Page numbers currently mapped; `u64::MAX` = empty.
    pages: Vec<u64>,
    /// Reference bits for the clock policy.
    referenced: Vec<bool>,
    hand: usize,
    /// Fast path: the most recently touched page.
    last: u64,
}

impl Tlb {
    pub fn new(entries: usize) -> Self {
        assert!(entries > 0);
        Tlb {
            pages: vec![u64::MAX; entries],
            referenced: vec![false; entries],
            hand: 0,
            last: u64::MAX,
        }
    }

    /// Touch `page`; returns `true` on a hit, `false` on a miss (after which
    /// the page is mapped, evicting via clock if needed).
    pub fn access(&mut self, page: u64) -> bool {
        if page == self.last {
            return true;
        }
        self.last = page;
        for (i, p) in self.pages.iter().enumerate() {
            if *p == page {
                self.referenced[i] = true;
                return true;
            }
        }
        // Miss: find a slot with the clock hand.
        loop {
            let i = self.hand;
            self.hand = (self.hand + 1) % self.pages.len();
            if self.pages[i] == u64::MAX || !self.referenced[i] {
                self.pages[i] = page;
                self.referenced[i] = true;
                return false;
            }
            self.referenced[i] = false;
        }
    }

    /// Drop all mappings (e.g. between experiments).
    pub fn flush(&mut self) {
        self.pages.fill(u64::MAX);
        self.referenced.fill(false);
        self.hand = 0;
        self.last = u64::MAX;
    }

    /// Number of mapped entries (diagnostics/tests).
    pub fn mapped(&self) -> usize {
        self.pages.iter().filter(|p| **p != u64::MAX).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_after_fill() {
        let mut t = Tlb::new(4);
        for p in 0..4u64 {
            assert!(!t.access(p), "first touch of page {p} must miss");
        }
        for p in 0..4u64 {
            assert!(t.access(p), "page {p} should be resident");
        }
        assert_eq!(t.mapped(), 4);
    }

    #[test]
    fn working_set_larger_than_tlb_thrashes() {
        let mut t = Tlb::new(4);
        let mut misses = 0;
        // Cyclic sweep over 8 pages with 4 entries: clock degenerates to
        // FIFO and every access misses after warmup.
        for round in 0..4 {
            for p in 0..8u64 {
                if !t.access(p) {
                    misses += 1;
                }
                let _ = round;
            }
        }
        assert!(misses >= 8 + 3 * 8 - 4, "expected heavy thrashing, got {misses} misses");
    }

    #[test]
    fn last_page_fast_path() {
        let mut t = Tlb::new(2);
        assert!(!t.access(9));
        for _ in 0..100 {
            assert!(t.access(9));
        }
    }

    #[test]
    fn flush_empties() {
        let mut t = Tlb::new(4);
        t.access(1);
        t.access(2);
        t.flush();
        assert_eq!(t.mapped(), 0);
        assert!(!t.access(1));
    }
}
