//! Per-processor TLB model.
//!
//! The R10000 has a 64-entry software-refilled TLB. The paper attributes the
//! 256M-key behaviour of the `remote` and `local` distributions to TLB
//! misses during the local permutation (Section 4.2.2), so the TLB has to be
//! part of the model. We use a fully-associative table with a clock (second
//! chance) replacement policy — deterministic and a good stand-in for the
//! hardware's random replacement without introducing randomness.

// ccsort-lints: allow-file(nondeterministic_iteration) -- the page-index
// map is lookup/insert/remove only (never iterated), and its hasher is the
// deterministic multiplicative PageHasher below, not RandomState — same
// layout every run, on every machine. A BTreeMap here would put an O(log n)
// search on the simulator's hottest path for no determinism gain.
use std::collections::HashMap;
use std::hash::{BuildHasher, Hasher};

/// Multiplicative (Fibonacci) hasher for page numbers. The index map holds
/// at most a few dozen entries and sits on the simulator's hottest path;
/// the default SipHash dominates whole-run profiles if used here, while a
/// single multiply mixes page numbers more than well enough.
#[derive(Debug, Clone, Default)]
struct PageHasher(u64);

impl Hasher for PageHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, _: &[u8]) {
        unreachable!("page keys hash through write_u64");
    }
    #[inline]
    fn write_u64(&mut self, x: u64) {
        self.0 = x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

#[derive(Debug, Clone, Default)]
struct PageHashBuilder;

impl BuildHasher for PageHashBuilder {
    type Hasher = PageHasher;
    #[inline]
    fn build_hasher(&self) -> PageHasher {
        PageHasher(0)
    }
}

/// A fully-associative TLB with clock replacement.
#[derive(Debug, Clone)]
pub struct Tlb {
    /// Page numbers currently mapped; `u64::MAX` = empty.
    pages: Vec<u64>,
    /// Reference bits for the clock policy.
    referenced: Vec<bool>,
    hand: usize,
    /// Fast path: the most recently touched page.
    last: u64,
    /// Mirror of `pages` for O(1) lookup: page number -> slot. Pages are
    /// unique in the table (installs happen only on a miss), so the map is
    /// a bijection with the occupied slots.
    index: HashMap<u64, usize, PageHashBuilder>,
}

impl Tlb {
    pub fn new(entries: usize) -> Self {
        assert!(entries > 0);
        Tlb {
            pages: vec![u64::MAX; entries],
            referenced: vec![false; entries],
            hand: 0,
            last: u64::MAX,
            index: HashMap::with_capacity_and_hasher(entries, PageHashBuilder),
        }
    }

    /// Touch `page`; returns `true` on a hit, `false` on a miss (after which
    /// the page is mapped, evicting via clock if needed).
    pub fn access(&mut self, page: u64) -> bool {
        if page == self.last {
            return true;
        }
        self.last = page;
        if let Some(&i) = self.index.get(&page) {
            self.referenced[i] = true;
            return true;
        }
        // Miss: find a slot with the clock hand.
        loop {
            let i = self.hand;
            self.hand = (self.hand + 1) % self.pages.len();
            if self.pages[i] == u64::MAX || !self.referenced[i] {
                if self.pages[i] != u64::MAX {
                    self.index.remove(&self.pages[i]);
                }
                self.pages[i] = page;
                self.index.insert(page, i);
                self.referenced[i] = true;
                return false;
            }
            self.referenced[i] = false;
        }
    }

    /// Drop all mappings (e.g. between experiments).
    pub fn flush(&mut self) {
        self.pages.fill(u64::MAX);
        self.referenced.fill(false);
        self.hand = 0;
        self.last = u64::MAX;
        self.index.clear();
    }

    /// Number of mapped entries (diagnostics/tests).
    pub fn mapped(&self) -> usize {
        self.pages.iter().filter(|p| **p != u64::MAX).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_after_fill() {
        let mut t = Tlb::new(4);
        for p in 0..4u64 {
            assert!(!t.access(p), "first touch of page {p} must miss");
        }
        for p in 0..4u64 {
            assert!(t.access(p), "page {p} should be resident");
        }
        assert_eq!(t.mapped(), 4);
    }

    #[test]
    fn working_set_larger_than_tlb_thrashes() {
        let mut t = Tlb::new(4);
        let mut misses = 0;
        // Cyclic sweep over 8 pages with 4 entries: clock degenerates to
        // FIFO and every access misses after warmup.
        for round in 0..4 {
            for p in 0..8u64 {
                if !t.access(p) {
                    misses += 1;
                }
                let _ = round;
            }
        }
        assert!(misses >= 8 + 3 * 8 - 4, "expected heavy thrashing, got {misses} misses");
    }

    #[test]
    fn last_page_fast_path() {
        let mut t = Tlb::new(2);
        assert!(!t.access(9));
        for _ in 0..100 {
            assert!(t.access(9));
        }
    }

    /// The original linear-scan implementation, kept as a reference model:
    /// the `index` map is an invisible accelerator, so every access stream
    /// must produce the identical hit/miss sequence and table contents.
    struct RefTlb {
        pages: Vec<u64>,
        referenced: Vec<bool>,
        hand: usize,
        last: u64,
    }

    impl RefTlb {
        fn access(&mut self, page: u64) -> bool {
            if page == self.last {
                return true;
            }
            self.last = page;
            for (i, p) in self.pages.iter().enumerate() {
                if *p == page {
                    self.referenced[i] = true;
                    return true;
                }
            }
            loop {
                let i = self.hand;
                self.hand = (self.hand + 1) % self.pages.len();
                if self.pages[i] == u64::MAX || !self.referenced[i] {
                    self.pages[i] = page;
                    self.referenced[i] = true;
                    return false;
                }
                self.referenced[i] = false;
            }
        }
    }

    #[test]
    fn indexed_lookup_matches_linear_scan_reference() {
        let mut t = Tlb::new(8);
        let mut r = RefTlb {
            pages: vec![u64::MAX; 8],
            referenced: vec![false; 8],
            hand: 0,
            last: u64::MAX,
        };
        // Deterministic pseudo-random page stream with reuse (working set 13
        // pages > 8 entries, so the clock hand churns constantly).
        let mut x = 0x9E37_79B9u64;
        for _ in 0..10_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let page = (x >> 33) % 13;
            assert_eq!(t.access(page), r.access(page), "divergence at page {page}");
        }
        assert_eq!(t.pages, r.pages);
        assert_eq!(t.referenced, r.referenced);
        assert_eq!(t.hand, r.hand);
    }

    #[test]
    fn flush_empties() {
        let mut t = Tlb::new(4);
        t.access(1);
        t.access(2);
        t.flush();
        assert_eq!(t.mapped(), 0);
        assert!(!t.access(1));
    }
}
