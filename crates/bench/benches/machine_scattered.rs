//! Criterion benchmarks of the batched scattered coherence walk: the
//! scattered and permutation microprograms from [`ccsort_bench::hotpath`],
//! across race detector on/off and p ∈ {1, 16, 64}, each with the batched
//! fast path on and with the per-line reference walk (`fast_path = false`)
//! over the identical submitted batches. These are the scattered rows of
//! `BENCH_simulator.json` — `simbench` runs the identical cells once each;
//! this harness gives them criterion's repeated-sampling treatment when a
//! statistically careful comparison is needed.

use ccsort_bench::hotpath::{run_cell, Program, GRID_PROCS};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_scattered(c: &mut Criterion) {
    // Small enough that 10 samples of the slowest cell (permutation, race
    // on, p = 64, reference path) stay in seconds on one core.
    let n = 1 << 13;
    let passes = 2;
    for program in [Program::Scattered, Program::Permutation] {
        for race in [false, true] {
            let mut g = c.benchmark_group(format!(
                "scattered_{}_race_{}",
                program.name(),
                if race { "on" } else { "off" }
            ));
            g.sample_size(10);
            g.throughput(Throughput::Elements((n * passes) as u64));
            for p in GRID_PROCS {
                g.bench_function(format!("p{p}_batched"), |b| {
                    b.iter(|| run_cell(program, p, race, true, n, passes).simulated_ns)
                });
                g.bench_function(format!("p{p}_reference"), |b| {
                    b.iter(|| run_cell(program, p, race, false, n, passes).simulated_ns)
                });
            }
            g.finish();
        }
    }
}

criterion_group!(benches, bench_scattered);
criterion_main!(benches);
