//! Criterion benchmarks of the real threaded sorting library: parallel
//! radix sort, parallel sample sort, the sequential radix baseline and the
//! standard library, across sizes and key types.

use ccsort_parallel::{
    par_merge_sort, par_msd_radix_sort, par_radix_sort_with, par_sample_sort_with, seq_radix_sort,
    RadixSortConfig, SampleSortConfig,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn keys_u32(n: usize) -> Vec<u32> {
    (0..n as u64)
        .map(|i| {
            let x = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            (x >> 33) as u32
        })
        .collect()
}

fn bench_sorts_u32(c: &mut Criterion) {
    let mut g = c.benchmark_group("sort_u32");
    for shift in [14usize, 17, 20] {
        let n = 1 << shift;
        let input = keys_u32(n);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("std_sort_unstable", n), &input, |b, input| {
            b.iter_with_setup(|| input.clone(), |mut v| v.sort_unstable())
        });
        g.bench_with_input(BenchmarkId::new("seq_radix", n), &input, |b, input| {
            b.iter_with_setup(|| input.clone(), |mut v| seq_radix_sort(&mut v, 8))
        });
        g.bench_with_input(BenchmarkId::new("par_radix", n), &input, |b, input| {
            b.iter_with_setup(
                || input.clone(),
                |mut v| {
                    par_radix_sort_with(
                        &mut v,
                        &RadixSortConfig { sequential_cutoff: 0, ..Default::default() },
                    )
                },
            )
        });
        g.bench_with_input(BenchmarkId::new("par_sample", n), &input, |b, input| {
            b.iter_with_setup(
                || input.clone(),
                |mut v| {
                    par_sample_sort_with(
                        &mut v,
                        &SampleSortConfig { sequential_cutoff: 0, ..Default::default() },
                    )
                },
            )
        });
        g.bench_with_input(BenchmarkId::new("par_msd", n), &input, |b, input| {
            b.iter_with_setup(|| input.clone(), |mut v| par_msd_radix_sort(&mut v))
        });
        g.bench_with_input(BenchmarkId::new("par_merge", n), &input, |b, input| {
            b.iter_with_setup(|| input.clone(), |mut v| par_merge_sort(&mut v))
        });
    }
    g.finish();
}

fn bench_radix_bits(c: &mut Criterion) {
    let mut g = c.benchmark_group("radix_bits_u32");
    let n = 1 << 18;
    let input = keys_u32(n);
    g.throughput(Throughput::Elements(n as u64));
    for bits in [6u32, 8, 11, 12] {
        g.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |b, &bits| {
            b.iter_with_setup(|| input.clone(), |mut v| seq_radix_sort(&mut v, bits))
        });
    }
    g.finish();
}

fn bench_u64_keys(c: &mut Criterion) {
    let mut g = c.benchmark_group("sort_u64");
    let n = 1 << 18;
    let input: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15)).collect();
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("par_radix", |b| {
        b.iter_with_setup(
            || input.clone(),
            |mut v| {
                par_radix_sort_with(&mut v, &RadixSortConfig { sequential_cutoff: 0, ..Default::default() })
            },
        )
    });
    g.bench_function("par_sample", |b| {
        b.iter_with_setup(
            || input.clone(),
            |mut v| {
                par_sample_sort_with(&mut v, &SampleSortConfig { sequential_cutoff: 0, ..Default::default() })
            },
        )
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_sorts_u32, bench_radix_bits, bench_u64_keys
}
criterion_main!(benches);
