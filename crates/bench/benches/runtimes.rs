//! Criterion benchmarks of the in-process programming-model runtimes:
//! SPMD spawn cost, collectives, and the message-passing / symmetric-heap
//! radix sorts versus the shared-memory one.

use ccsort_parallel::msg::{radix_sort_msg, spawn_spmd};
use ccsort_parallel::sym::{radix_sort_shmem, SymHeap};
use ccsort_parallel::{par_radix_sort_with, RadixSortConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::sync::Arc;

fn keys(n: usize) -> Vec<u32> {
    (0..n as u64)
        .map(|i| {
            let x = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            (x >> 33) as u32
        })
        .collect()
}

fn bench_spmd_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("spmd");
    for ranks in [2usize, 4, 8] {
        g.bench_with_input(BenchmarkId::new("spawn_barrier", ranks), &ranks, |b, &ranks| {
            b.iter(|| {
                spawn_spmd::<(), _, _>(ranks, |comm| {
                    comm.barrier();
                    comm.rank()
                })
            })
        });
        g.bench_with_input(BenchmarkId::new("allgather_1k", ranks), &ranks, |b, &ranks| {
            let payload: Vec<u32> = (0..256).collect();
            b.iter(|| {
                spawn_spmd::<Vec<u32>, _, _>(ranks, |comm| comm.allgather(payload.clone()).len())
            })
        });
    }
    g.finish();
}

fn bench_symheap_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("symheap");
    g.bench_function("put_get_64k", |b| {
        b.iter(|| {
            let heap: Arc<SymHeap<u32>> = Arc::new(SymHeap::new(4, 1 << 14));
            heap.run(|ctx| {
                let right = (ctx.pe() + 1) % ctx.n_pes();
                let data: Vec<u32> = (0..4096).map(|i| (ctx.pe() * 10000 + i) as u32).collect();
                // SAFETY: disjoint destinations per PE, sealed by barriers.
                unsafe { ctx.put(&data, right, 0) };
                ctx.barrier();
                let mut buf = vec![0u32; 4096];
                unsafe { ctx.get(&mut buf, ctx.pe(), 0) };
                criterion::black_box(buf[0]);
            });
        })
    });
    g.finish();
}

fn bench_model_sorts(c: &mut Criterion) {
    let mut g = c.benchmark_group("model_sorts_256k");
    let n = 1 << 18;
    let input = keys(n);
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("shared_par_radix", |b| {
        b.iter_with_setup(
            || input.clone(),
            |mut v| par_radix_sort_with(&mut v, &RadixSortConfig { sequential_cutoff: 0, ..Default::default() }),
        )
    });
    g.bench_function("msg_radix_4ranks", |b| {
        b.iter_with_setup(|| input.clone(), |mut v| radix_sort_msg(&mut v, 4, 8))
    });
    g.bench_function("shmem_radix_4pes", |b| {
        b.iter_with_setup(|| input.clone(), |mut v| radix_sort_shmem(&mut v, 4, 8))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_spmd_overhead, bench_symheap_ops, bench_model_sorts
}
criterion_main!(benches);
