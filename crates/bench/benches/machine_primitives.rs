//! Criterion benchmarks of the simulator's primitives: how fast the host
//! can push simulated accesses through the cache/directory/TLB pipeline.
//! These bound how large a configuration the `repro` harness can run.

use ccsort_algos::dist::{generate, Dist};
use ccsort_machine::{Machine, MachineConfig, Placement};
use ccsort_models::PrefixTree;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn machine(p: usize) -> Machine {
    Machine::new(MachineConfig::origin2000(p).scaled_down(16))
}

fn bench_touches(c: &mut Criterion) {
    let mut g = c.benchmark_group("machine_touch");
    let n = 1 << 16;
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("scattered_writes", |b| {
        b.iter_with_setup(
            || {
                let mut m = machine(4);
                let a = m.alloc(n, Placement::Partitioned { parts: 4 }, "a");
                (m, a)
            },
            |(mut m, a)| {
                for i in 0..n {
                    m.write_at(0, a, (i * 769) % n, i as u32);
                }
                m.parallel_time()
            },
        )
    });
    g.bench_function("streamed_read_runs", |b| {
        b.iter_with_setup(
            || {
                let mut m = machine(4);
                let a = m.alloc(n, Placement::Partitioned { parts: 4 }, "a");
                (m, a, vec![0u32; 4096])
            },
            |(mut m, a, mut buf)| {
                let mut off = 0;
                while off < n {
                    m.read_run(0, a, off, &mut buf);
                    off += 4096;
                }
                m.parallel_time()
            },
        )
    });
    g.bench_function("dma_copy_64k", |b| {
        b.iter_with_setup(
            || {
                let mut m = machine(4);
                let a = m.alloc(n, Placement::Partitioned { parts: 4 }, "a");
                let d = m.alloc(n, Placement::Partitioned { parts: 4 }, "d");
                (m, a, d)
            },
            |(mut m, a, d)| {
                m.dma_copy(0, a, 0, d, 0, n, true);
                m.parallel_time()
            },
        )
    });
    g.finish();
}

fn bench_prefix_tree(c: &mut Criterion) {
    c.bench_function("prefix_tree_accumulate_64pe_256bins", |b| {
        b.iter_with_setup(
            || {
                let mut m = machine(64);
                let tree = PrefixTree::new(&mut m, 64, 256);
                (m, tree)
            },
            |(mut m, tree)| {
                let hist = vec![1u32; 256];
                for pe in 0..64 {
                    tree.set_local(&mut m, pe, &hist);
                }
                tree.accumulate(&mut m);
                m.parallel_time()
            },
        )
    });
}

fn bench_keygen(c: &mut Criterion) {
    let mut g = c.benchmark_group("keygen");
    let n = 1 << 18;
    g.throughput(Throughput::Elements(n as u64));
    for dist in [Dist::Gauss, Dist::Random, Dist::Remote] {
        g.bench_function(dist.name(), |b| b.iter(|| generate(dist, n, 16, 8, 1)));
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_touches, bench_prefix_tree, bench_keygen
}
criterion_main!(benches);
