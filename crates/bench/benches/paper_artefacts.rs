//! One criterion benchmark per paper artefact: each target regenerates one
//! of the tables/figures of Shan & Singh (SC 1999) at smoke-test scale, so
//! `cargo bench` exercises the entire reproduction pipeline end to end.
//! (The full-fidelity regeneration is the `repro` binary; see
//! EXPERIMENTS.md.)

use ccsort_bench::figures;
use ccsort_bench::runner::{Runner, RunnerOpts};
use criterion::{criterion_group, criterion_main, Criterion};
use std::io::Write;

/// Tiny grid: three sizes, 4/8 processors, 4K simulated keys max.
fn tiny_opts() -> RunnerOpts {
    RunnerOpts { max_sim_n: 1 << 12, sizes: vec![0, 1, 2], procs: vec![4, 8], seed: 1, verbose: false }
}

/// Silence the generators' stdout while benchmarking.
fn with_gag<F: FnOnce(&mut Runner)>(f: F) {
    let mut r = Runner::new(tiny_opts());
    // The generators print; that's part of the measured work (small).
    f(&mut r);
    std::io::stdout().flush().ok();
}

macro_rules! artefact_bench {
    ($fn_name:ident, $generator:path, $label:literal) => {
        fn $fn_name(c: &mut Criterion) {
            c.bench_function($label, |b| b.iter(|| with_gag(|r| $generator(r))));
        }
    };
}

artefact_bench!(bench_table1, figures::table1, "artefact/table1");
artefact_bench!(bench_fig1, figures::fig1, "artefact/fig1");
artefact_bench!(bench_fig2, figures::fig2, "artefact/fig2");
artefact_bench!(bench_fig3, figures::fig3, "artefact/fig3");
artefact_bench!(bench_fig4, figures::fig4, "artefact/fig4");
artefact_bench!(bench_fig5, figures::fig5, "artefact/fig5");
artefact_bench!(bench_fig6, figures::fig6, "artefact/fig6");
artefact_bench!(bench_fig7, figures::fig7, "artefact/fig7");
artefact_bench!(bench_fig8, figures::fig8, "artefact/fig8");
artefact_bench!(bench_fig9, figures::fig9, "artefact/fig9");
artefact_bench!(bench_fig10, figures::fig10, "artefact/fig10");
artefact_bench!(bench_table2, figures::table2_and_3, "artefact/table2_and_3");

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_table1, bench_fig1, bench_fig2, bench_fig3, bench_fig4, bench_fig5,
        bench_fig6, bench_fig7, bench_fig8, bench_fig9, bench_fig10, bench_table2
}
criterion_main!(benches);
