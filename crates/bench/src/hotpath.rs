//! Simulator hot-loop microprograms.
//!
//! Three access programs — a streamed sweep (`touch_run` over each PE's
//! partition), a scattered walk (`gather_run`/`scatter_run` batches at
//! pseudo-random indices inside each PE's partition) and a radix-style
//! permutation (streamed reads of the local chunk, batched scattered
//! writes across the whole output array) — parameterised by processor
//! count, race detector on/off and fast path on/off. They are the workload
//! behind both the `machine_hotpath`/`machine_scattered` criterion benches
//! and the `simbench` binary that emits `BENCH_simulator.json`, so they
//! always agree on what is being measured: *host* throughput of the
//! simulator itself, reported as simulated key touches per wall-clock
//! second.
//!
//! Everything here is deterministic: the scattered index stream is a fixed
//! LCG, the permutation's destination map is a fixed bijection, partitions
//! and destinations never overlap within a phase (so the race detector sees
//! a race-free program and pays only its bookkeeping), and
//! `fast_path = false` runs the per-line reference walk — the
//! pre-optimization cost model — on the same submitted batches, which is
//! what makes the before/after ratio in `BENCH_simulator.json` meaningful.

use std::time::Instant;

use ccsort_machine::{DirectoryMode, InterconnectKind, Machine, MachineConfig, Placement, ProtocolMode};

/// Which access pattern a microprogram exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Program {
    /// Each PE sweeps its partition with `touch_run`, alternating read and
    /// write passes — the streamed pattern the fast path targets.
    Streamed,
    /// Each PE submits `gather_run`/`scatter_run` batches of LCG-generated
    /// indices inside its partition — the batched scattered coherence walk.
    Scattered,
    /// The radix permutation shape: each PE streams its own chunk with
    /// `read_run`, then `scatter_run`s the block to bijectively-mapped
    /// destinations across the whole output array (mostly remote writes).
    Permutation,
}

impl Program {
    pub fn name(self) -> &'static str {
        match self {
            Program::Streamed => "streamed",
            Program::Scattered => "scattered",
            Program::Permutation => "permutation",
        }
    }
}

/// One measured cell of the hot-path grid.
#[derive(Debug, Clone)]
pub struct HotpathResult {
    pub program: Program,
    pub p: usize,
    pub race_detector: bool,
    pub fast_path: bool,
    /// Directory sharer-set representation the machine ran with.
    pub dir: DirectoryMode,
    /// Interconnect the machine ran with.
    pub topo: InterconnectKind,
    /// Coherence protocol the machine ran with.
    pub proto: ProtocolMode,
    /// Simulated element touches performed.
    pub keys: u64,
    /// Host wall-clock seconds for the touch loop (excludes machine setup).
    pub wall_s: f64,
    /// `keys / wall_s` — the trajectory metric.
    pub keys_per_sec: f64,
    /// Simulated parallel time, for sanity checks: it must not depend on
    /// `fast_path` (asserted by the equivalence tests) or host speed.
    pub simulated_ns: f64,
}

/// Processor counts the grid covers: 1, a mid point, the paper's full
/// machine, and one count past 64 so the multi-word full-map directory
/// (and the large-p coherence walk generally) shows up in the trajectory.
pub const GRID_PROCS: [usize; 4] = [1, 16, 64, 128];

fn build(
    p: usize,
    race: bool,
    fast: bool,
    dir: DirectoryMode,
    topo: InterconnectKind,
    proto: ProtocolMode,
) -> Machine {
    let mut cfg = MachineConfig::origin2000(p)
        .with_directory_mode(dir)
        .with_interconnect(topo)
        .with_protocol(proto);
    cfg.race_detector = race;
    cfg.fast_path = fast;
    Machine::new(cfg)
}

/// Run one microprogram cell: `n` total elements across `p` partitions,
/// swept `passes` times. Returns the measured throughput.
pub fn run_cell(
    program: Program,
    p: usize,
    race: bool,
    fast: bool,
    n: usize,
    passes: usize,
) -> HotpathResult {
    run_cell_dir(program, p, race, fast, n, passes, DirectoryMode::FullMap)
}

/// [`run_cell`] with an explicit directory sharer-set representation — the
/// large-p `simbench` rows run the permutation program under the imprecise
/// modes too, tracking the host-side cost of their entry bookkeeping in
/// the coherence walk (simulated time is unchanged there: the program's
/// writes hand off exclusive lines, which every mode targets precisely).
pub fn run_cell_dir(
    program: Program,
    p: usize,
    race: bool,
    fast: bool,
    n: usize,
    passes: usize,
    dir: DirectoryMode,
) -> HotpathResult {
    run_cell_modes(
        program,
        p,
        race,
        fast,
        n,
        passes,
        dir,
        InterconnectKind::Hypercube,
        ProtocolMode::Invalidate,
    )
}

/// [`run_cell_dir`] with the interconnect and coherence protocol explicit —
/// the topology × protocol `simbench` rows measure the host-side cost of
/// the alternative hop computations and the Dragon update walk on the same
/// microprograms.
#[allow(clippy::too_many_arguments)]
pub fn run_cell_modes(
    program: Program,
    p: usize,
    race: bool,
    fast: bool,
    n: usize,
    passes: usize,
    dir: DirectoryMode,
    topo: InterconnectKind,
    proto: ProtocolMode,
) -> HotpathResult {
    let mut m = build(p, race, fast, dir, topo, proto);
    let arr = m.alloc(n, Placement::Partitioned { parts: p }, "hotpath");
    let chunk = n / p;
    assert!(chunk > 0, "n must be >= p");
    let mut keys: u64 = 0;
    const BLK: usize = 4096;

    // The access schedules (LCG index streams, permutation destination
    // maps) are generated *before* the timer starts: the cell reports host
    // throughput of the simulator engine, and schedule generation is
    // driver work that would otherwise dilute the fast/reference ratio
    // equally on both sides.
    let wall_s = match program {
        Program::Streamed => {
            let t = Instant::now();
            for pass in 0..passes {
                let write = pass % 2 == 1;
                for pe in 0..p {
                    m.touch_run(pe, arr, pe * chunk, chunk, write);
                    keys += chunk as u64;
                }
                m.barrier();
            }
            m.resolve_phase();
            t.elapsed().as_secs_f64()
        }
        Program::Scattered => {
            // Fixed 64-bit LCG (Knuth's MMIX constants); each PE gets a
            // distinct stream but the whole schedule is deterministic.
            // Gather passes and scatter passes alternate so both batched
            // walks are exercised; a batch covers one block of indices.
            // (`% chunk` is a mask — chunk is a power of two in the grid —
            // so pre-generation stays cheap too.)
            assert!(chunk.is_power_of_two(), "scattered program needs power-of-two n/p");
            let mut idxs = vec![0usize; passes * n];
            let mut vals = vec![0u32; passes * n];
            for pass in 0..passes {
                for pe in 0..p {
                    let mut x = 0x9E37_79B9u64
                        .wrapping_add(pe as u64)
                        .wrapping_mul(0x2545_F491_4F6C_DD1D)
                        .wrapping_add(pass as u64);
                    let base = pass * n + pe * chunk;
                    for i in 0..chunk {
                        x = x
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        idxs[base + i] = pe * chunk + ((x >> 33) as usize & (chunk - 1));
                        vals[base + i] = x as u32;
                    }
                }
            }
            let mut buf = vec![0u32; BLK];
            let t = Instant::now();
            for pass in 0..passes {
                for pe in 0..p {
                    let base = pass * n + pe * chunk;
                    let mut done = 0;
                    while done < chunk {
                        let blk = BLK.min(chunk - done);
                        let ix = &idxs[base + done..base + done + blk];
                        if pass % 2 == 0 {
                            m.gather_run(pe, arr, ix, &mut buf[..blk]);
                        } else {
                            m.scatter_run(pe, arr, ix, &vals[base + done..base + done + blk]);
                        }
                        keys += blk as u64;
                        done += blk;
                    }
                }
                m.barrier();
            }
            m.resolve_phase();
            t.elapsed().as_secs_f64()
        }
        Program::Permutation => {
            // Radix CC-SAS permutation shape: each PE streams its chunk and
            // scatters it into per-digit output regions, one interleaved
            // sequential cursor per digit (32 digit streams — a 5-bit radix
            // pass), with each PE's sub-slot rotating every pass so a
            // line's first touch of a pass is a remote intervention against
            // last pass's writer, like the key handoff between radix
            // passes. Destinations within a pass form a bijection
            // (race-free across PEs) scattered across the whole output —
            // mostly remote under `Partitioned` placement. The digit count
            // keeps the destination page working set TLB-resident, so
            // these cells measure the batched coherence walk rather than
            // the TLB-thrash regime the paper's remote/local distribution
            // experiments (and the streamed rows) already cover.
            let out = m.alloc(n, Placement::Partitioned { parts: p }, "hotpath-out");
            let digits = 32.min(chunk);
            let region = n / digits; // output elements per digit
            let sub = chunk / digits; // elements per (pe, digit) per pass
            assert_eq!(digits * sub, chunk, "chunk must be divisible by the digit count");
            assert!(digits.is_power_of_two(), "permutation program needs power-of-two n/p");
            let dshift = digits.trailing_zeros();
            let dmask = digits - 1;
            // One destination map per rotation slot; slot = (pe + pass) % p,
            // and p * chunk = n, so the whole table is one n-element array.
            let mut dest_maps = vec![0usize; n];
            for slot in 0..p {
                for (k, d) in dest_maps[slot * chunk..(slot + 1) * chunk].iter_mut().enumerate() {
                    *d = (k & dmask) * region + slot * sub + (k >> dshift);
                }
            }
            let mut buf = vec![0u32; BLK];
            let t = Instant::now();
            for pass in 0..passes {
                for pe in 0..p {
                    let slot = (pe + pass) % p;
                    let start = pe * chunk;
                    let dests = &dest_maps[slot * chunk..(slot + 1) * chunk];
                    let mut pos = 0;
                    while pos < chunk {
                        let blk = BLK.min(chunk - pos);
                        m.read_run(pe, arr, start + pos, &mut buf[..blk]);
                        m.scatter_run(pe, out, &dests[pos..pos + blk], &buf[..blk]);
                        keys += blk as u64;
                        pos += blk;
                    }
                }
                m.barrier();
            }
            m.resolve_phase();
            t.elapsed().as_secs_f64()
        }
    };

    HotpathResult {
        program,
        p,
        race_detector: race,
        fast_path: fast,
        dir,
        topo,
        proto,
        keys,
        wall_s,
        keys_per_sec: keys as f64 / wall_s.max(1e-9),
        simulated_ns: m.parallel_time(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The microprograms must themselves be exact under the fast path:
    /// identical simulated time with `fast_path` on and off, for both
    /// programs, with and without the race detector.
    #[test]
    fn cells_are_fast_path_exact() {
        for program in [Program::Streamed, Program::Scattered, Program::Permutation] {
            for race in [false, true] {
                let fast = run_cell(program, 4, race, true, 1 << 12, 3);
                let slow = run_cell(program, 4, race, false, 1 << 12, 3);
                assert_eq!(
                    fast.simulated_ns, slow.simulated_ns,
                    "{program:?} race={race} diverged"
                );
                assert_eq!(fast.keys, slow.keys);
            }
        }
    }

    /// Fast-path exactness must also hold under the imprecise directory
    /// representations: limited-pointer overflow broadcasts and coarse
    /// group invalidations charge identical time on both walks.
    #[test]
    fn cells_are_fast_path_exact_in_imprecise_modes() {
        for dir in [DirectoryMode::LimitedPointer(2), DirectoryMode::CoarseVector(2)] {
            let fast = run_cell_dir(Program::Permutation, 4, false, true, 1 << 12, 2, dir);
            let slow = run_cell_dir(Program::Permutation, 4, false, false, 1 << 12, 2, dir);
            assert_eq!(fast.simulated_ns, slow.simulated_ns, "{dir} diverged");
            assert_eq!(fast.keys, slow.keys);
        }
    }

    /// ... and under the non-default topologies and the Dragon update
    /// protocol: the fast path carries no protocol- or topology-specific
    /// logic (Dragon's written-shared lines re-enter the slow path by
    /// construction), so simulated time must stay bit-identical between
    /// the batched and reference walks in every mode.
    #[test]
    fn cells_are_fast_path_exact_in_new_modes() {
        let combos = [
            (InterconnectKind::Mesh2D, ProtocolMode::Invalidate),
            (InterconnectKind::FatTree(4), ProtocolMode::Invalidate),
            (InterconnectKind::Hypercube, ProtocolMode::DragonUpdate),
            (InterconnectKind::Mesh2D, ProtocolMode::DragonUpdate),
        ];
        for (topo, proto) in combos {
            for program in [Program::Streamed, Program::Scattered, Program::Permutation] {
                let run = |fast| {
                    run_cell_modes(
                        program,
                        4,
                        false,
                        fast,
                        1 << 12,
                        2,
                        DirectoryMode::FullMap,
                        topo,
                        proto,
                    )
                };
                let fast = run(true);
                let slow = run(false);
                assert_eq!(
                    fast.simulated_ns, slow.simulated_ns,
                    "{program:?} {topo}/{proto} diverged"
                );
                assert_eq!(fast.keys, slow.keys);
            }
        }
    }

    /// Simulated time must not depend on the race detector either — the
    /// detector observes, it never charges time.
    #[test]
    fn race_detector_does_not_change_simulated_time() {
        for program in [Program::Streamed, Program::Scattered, Program::Permutation] {
            let off = run_cell(program, 4, false, true, 1 << 12, 2);
            let on = run_cell(program, 4, true, true, 1 << 12, 2);
            assert_eq!(off.simulated_ns, on.simulated_ns, "{program:?} diverged");
        }
    }
}
