//! Simulator hot-loop microprograms.
//!
//! Two access programs — a streamed sweep (`touch_run` over each PE's
//! partition) and a scattered walk (`read_at`/`write_at` at pseudo-random
//! indices inside each PE's partition) — parameterised by processor count,
//! race detector on/off and fast path on/off. They are the workload behind
//! both the `machine_hotpath` criterion bench and the `simbench` binary
//! that emits `BENCH_simulator.json`, so the two always agree on what is
//! being measured: *host* throughput of the simulator itself, reported as
//! simulated key touches per wall-clock second.
//!
//! Everything here is deterministic: the scattered index stream is a fixed
//! LCG, partitions never overlap (so the race detector sees a race-free
//! program and pays only its bookkeeping), and `fast_path = false` runs the
//! per-line reference walk — the pre-optimization cost model — on the same
//! program, which is what makes the before/after ratio in
//! `BENCH_simulator.json` meaningful.

use std::time::Instant;

use ccsort_machine::{Machine, MachineConfig, Placement};

/// Which access pattern a microprogram exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Program {
    /// Each PE sweeps its partition with `touch_run`, alternating read and
    /// write passes — the streamed pattern the fast path targets.
    Streamed,
    /// Each PE issues single-element `read_at`/`write_at` touches at
    /// LCG-generated indices inside its partition.
    Scattered,
}

impl Program {
    pub fn name(self) -> &'static str {
        match self {
            Program::Streamed => "streamed",
            Program::Scattered => "scattered",
        }
    }
}

/// One measured cell of the hot-path grid.
#[derive(Debug, Clone)]
pub struct HotpathResult {
    pub program: Program,
    pub p: usize,
    pub race_detector: bool,
    pub fast_path: bool,
    /// Simulated element touches performed.
    pub keys: u64,
    /// Host wall-clock seconds for the touch loop (excludes machine setup).
    pub wall_s: f64,
    /// `keys / wall_s` — the trajectory metric.
    pub keys_per_sec: f64,
    /// Simulated parallel time, for sanity checks: it must not depend on
    /// `fast_path` (asserted by the equivalence tests) or host speed.
    pub simulated_ns: f64,
}

/// Processor counts the grid covers (per the issue: 1, a mid point, full
/// machine).
pub const GRID_PROCS: [usize; 3] = [1, 16, 64];

fn build(p: usize, race: bool, fast: bool) -> Machine {
    let mut cfg = MachineConfig::origin2000(p);
    cfg.race_detector = race;
    cfg.fast_path = fast;
    Machine::new(cfg)
}

/// Run one microprogram cell: `n` total elements across `p` partitions,
/// swept `passes` times. Returns the measured throughput.
pub fn run_cell(
    program: Program,
    p: usize,
    race: bool,
    fast: bool,
    n: usize,
    passes: usize,
) -> HotpathResult {
    let mut m = build(p, race, fast);
    let arr = m.alloc(n, Placement::Partitioned { parts: p }, "hotpath");
    let chunk = n / p;
    assert!(chunk > 0, "n must be >= p");
    let mut keys: u64 = 0;

    let t = Instant::now();
    match program {
        Program::Streamed => {
            for pass in 0..passes {
                let write = pass % 2 == 1;
                for pe in 0..p {
                    m.touch_run(pe, arr, pe * chunk, chunk, write);
                    keys += chunk as u64;
                }
                m.barrier();
            }
        }
        Program::Scattered => {
            // Fixed 64-bit LCG (Knuth's MMIX constants); each PE gets a
            // distinct stream but the whole schedule is deterministic.
            for pass in 0..passes {
                for pe in 0..p {
                    let mut x = 0x9E37_79B9u64
                        .wrapping_add(pe as u64)
                        .wrapping_mul(0x2545_F491_4F6C_DD1D)
                        .wrapping_add(pass as u64);
                    for _ in 0..chunk {
                        x = x
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        let idx = pe * chunk + ((x >> 33) as usize % chunk);
                        if x & 1 == 0 {
                            m.read_at(pe, arr, idx);
                        } else {
                            m.write_at(pe, arr, idx, x as u32);
                        }
                        keys += 1;
                    }
                }
                m.barrier();
            }
        }
    }
    m.resolve_phase();
    let wall_s = t.elapsed().as_secs_f64();

    HotpathResult {
        program,
        p,
        race_detector: race,
        fast_path: fast,
        keys,
        wall_s,
        keys_per_sec: keys as f64 / wall_s.max(1e-9),
        simulated_ns: m.parallel_time(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The microprograms must themselves be exact under the fast path:
    /// identical simulated time with `fast_path` on and off, for both
    /// programs, with and without the race detector.
    #[test]
    fn cells_are_fast_path_exact() {
        for program in [Program::Streamed, Program::Scattered] {
            for race in [false, true] {
                let fast = run_cell(program, 4, race, true, 1 << 12, 3);
                let slow = run_cell(program, 4, race, false, 1 << 12, 3);
                assert_eq!(
                    fast.simulated_ns, slow.simulated_ns,
                    "{program:?} race={race} diverged"
                );
                assert_eq!(fast.keys, slow.keys);
            }
        }
    }

    /// Simulated time must not depend on the race detector either — the
    /// detector observes, it never charges time.
    #[test]
    fn race_detector_does_not_change_simulated_time() {
        for program in [Program::Streamed, Program::Scattered] {
            let off = run_cell(program, 4, false, true, 1 << 12, 2);
            let on = run_cell(program, 4, true, true, 1 << 12, 2);
            assert_eq!(off.simulated_ns, on.simulated_ns, "{program:?} diverged");
        }
    }
}
