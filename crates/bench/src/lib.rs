//! # ccsort-bench
//!
//! The reproduction harness for every table and figure in the evaluation
//! section of Shan & Singh (SC 1999), plus the criterion micro-benchmarks
//! for the real threaded library.
//!
//! The `repro` binary (`cargo run --release -p ccsort-bench --bin repro`)
//! exposes one subcommand per paper artefact (`table1`–`table3`,
//! `fig1`–`fig10`, `all`, `quick`). Each regenerates the corresponding
//! rows/series from simulation, prints them as aligned text and can dump
//! machine-readable JSON for EXPERIMENTS.md.

pub mod figures;
pub mod hotpath;
pub mod realbench;
pub mod runner;
pub mod svcbench;

pub use runner::{Runner, RunnerOpts, SIZE_LABELS};
