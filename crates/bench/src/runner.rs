//! Experiment runner with memoisation and the paper's size/processor grid.
//!
//! Grid cells are independent — each builds its own seeded `Machine` — so
//! the runner can fill its memo cache in parallel ([`Runner::prefetch`])
//! with results bit-identical to sequential execution.

// BTree collections, not Hash: these caches are lookup-only today, but the
// runner's whole contract is bit-identical output regardless of fill order
// (`crates/bench/tests/determinism.rs`), and a future iteration over a hash
// map would break that silently on another machine. Deterministic-by-type
// costs nothing at this size (`nondeterministic_iteration` lint).
use std::collections::{BTreeMap, BTreeSet};

use ccsort_algos::{run_experiment, run_sequential_baseline, Algorithm, Dist, ExpConfig, ExpResult};
use rayon::prelude::*;
use serde::Serialize;

/// The paper's data-set labels (key counts at full scale).
pub const SIZE_LABELS: [(&str, usize); 5] =
    [("1M", 1 << 20), ("4M", 1 << 22), ("16M", 1 << 24), ("64M", 1 << 26), ("256M", 1 << 28)];

/// Processor counts of the speedup figures. The paper's machine stops at
/// p = 64; 128 and 256 extrapolate past it to exercise the directory's
/// sharer-set representations at scale (see `DirectoryMode`).
pub const PROCS: [usize; 5] = [16, 32, 64, 128, 256];

/// Options shared by all figure generators.
#[derive(Debug, Clone)]
pub struct RunnerOpts {
    /// Cap on simulated keys per experiment. Each size label runs at the
    /// mildest machine scale that fits the cap: scale = label / max_sim_n
    /// (min 1), with machine capacities and fixed per-event costs scaled
    /// identically (`MachineConfig::scaled_down`). Small labels therefore
    /// run at *full* fidelity and only the largest are scaled — each
    /// column is self-consistent (its speedup baseline uses the same
    /// scale).
    pub max_sim_n: usize,
    /// Subset of size labels to run (indices into [`SIZE_LABELS`]).
    pub sizes: Vec<usize>,
    /// Processor counts to run.
    pub procs: Vec<usize>,
    /// Base RNG seed.
    pub seed: u64,
    /// Print per-processor detail where applicable.
    pub verbose: bool,
}

impl Default for RunnerOpts {
    fn default() -> Self {
        RunnerOpts {
            max_sim_n: 1 << 21,
            sizes: (0..SIZE_LABELS.len()).collect(),
            procs: PROCS.to_vec(),
            seed: 271828,
            verbose: false,
        }
    }
}

impl RunnerOpts {
    /// A fast configuration for smoke tests: tiny simulations, three
    /// sizes, small processor counts.
    pub fn quick() -> Self {
        RunnerOpts {
            max_sim_n: 1 << 14,
            sizes: vec![0, 1, 2],
            procs: vec![4, 8, 16],
            seed: 271828,
            verbose: false,
        }
    }

    /// Machine scale denominator for a size label index.
    pub fn scale_for(&self, size_idx: usize) -> usize {
        (SIZE_LABELS[size_idx].1 / self.max_sim_n).max(1)
    }

    /// Simulated key count for a size label index.
    pub fn n_for(&self, size_idx: usize) -> usize {
        SIZE_LABELS[size_idx].1 / self.scale_for(size_idx)
    }

    /// Human label for a size index.
    pub fn label_for(&self, size_idx: usize) -> &'static str {
        SIZE_LABELS[size_idx].0
    }
}

/// One emitted data point (serialised into the JSON dump).
#[derive(Debug, Clone, Serialize)]
pub struct Point {
    pub artefact: String,
    pub size_label: String,
    pub scale: usize,
    pub n: usize,
    pub p: usize,
    pub algorithm: String,
    pub radix_bits: u32,
    pub dist: String,
    /// Simulated parallel time, ns.
    pub time_ns: f64,
    /// Speedup over the sequential baseline (when meaningful).
    pub speedup: Option<f64>,
    /// Value relative to the figure's reference series (when meaningful).
    pub relative: Option<f64>,
    pub busy_ns: f64,
    pub lmem_ns: f64,
    pub rmem_ns: f64,
    pub sync_ns: f64,
    pub verified: bool,
}

/// Memo key of one experiment cell: `(algorithm, size index, p, radix
/// bits, distribution)`.
pub type ExpKey = (Algorithm, usize, usize, u32, Dist);

/// Page-size multiplier for a size label: the paper runs the 256M-key
/// configurations with 256 KB pages (4x the 64 KB used for 1M-64M) to
/// get the best performance.
fn page_mult_for(size_idx: usize) -> usize {
    if SIZE_LABELS[size_idx].1 >= SIZE_LABELS[4].1 {
        4
    } else {
        1
    }
}

/// Run one experiment cell. Panics if verification fails — a figure must
/// never be generated from an unsorted output.
fn run_cell(opts: &RunnerOpts, key: ExpKey) -> ExpResult {
    let (alg, size_idx, p, r, dist) = key;
    let n = opts.n_for(size_idx);
    let res = run_experiment(
        &ExpConfig::new(alg, n, p)
            .radix_bits(r)
            .dist(dist)
            .seed(opts.seed)
            .scale(opts.scale_for(size_idx))
            .page_mult(page_mult_for(size_idx)),
    );
    assert!(res.verified, "experiment {alg:?} n={n} p={p} r={r} {dist:?} produced unsorted output");
    res
}

/// Memoising experiment runner.
pub struct Runner {
    pub opts: RunnerOpts,
    cache: BTreeMap<ExpKey, ExpResult>,
    seq_cache: BTreeMap<(usize, u32, Dist), f64>,
    /// Every point emitted so far (for the JSON dump).
    pub points: Vec<Point>,
}

impl Runner {
    pub fn new(opts: RunnerOpts) -> Self {
        Runner { opts, cache: BTreeMap::new(), seq_cache: BTreeMap::new(), points: Vec::new() }
    }

    /// Run (or recall) one experiment at size label `size_idx`. Panics if
    /// verification fails — a figure must never be generated from an
    /// unsorted output.
    pub fn exp(&mut self, alg: Algorithm, size_idx: usize, p: usize, r: u32, dist: Dist) -> &ExpResult {
        let key = (alg, size_idx, p, r, dist);
        let opts = &self.opts;
        self.cache.entry(key).or_insert_with(|| run_cell(opts, key))
    }

    /// Run every not-yet-cached cell among `keys` in parallel and memoise
    /// the results. Each cell constructs its own seeded `Machine`, so a
    /// parallel fill is bit-identical to running the cells one by one;
    /// results are zipped back in `keys` order, keeping the cache fill
    /// deterministic regardless of worker count or scheduling.
    pub fn prefetch(&mut self, keys: &[ExpKey]) {
        let mut seen = BTreeSet::new();
        let todo: Vec<ExpKey> = keys
            .iter()
            .copied()
            .filter(|key| !self.cache.contains_key(key) && seen.insert(*key))
            .collect();
        if todo.is_empty() {
            return;
        }
        let opts = &self.opts;
        let results: Vec<ExpResult> = todo.par_iter().map(|&key| run_cell(opts, key)).collect();
        for (key, res) in todo.into_iter().zip(results) {
            self.cache.insert(key, res);
        }
    }

    /// Parallel fill of the sequential-baseline cache for `(size index,
    /// distribution)` pairs, mirroring [`Self::prefetch`].
    pub fn prefetch_seq(&mut self, cells: &[(usize, Dist)]) {
        let r = 8;
        let mut seen = BTreeSet::new();
        let todo: Vec<(usize, Dist)> = cells
            .iter()
            .copied()
            .filter(|&(si, d)| !self.seq_cache.contains_key(&(si, r, d)) && seen.insert((si, d)))
            .collect();
        if todo.is_empty() {
            return;
        }
        let opts = &self.opts;
        let times: Vec<f64> = todo
            .par_iter()
            .map(|&(si, dist)| {
                let res = run_sequential_baseline(
                    opts.n_for(si),
                    r,
                    dist,
                    opts.seed,
                    opts.scale_for(si),
                    page_mult_for(si),
                );
                assert!(res.verified);
                res.time_ns
            })
            .collect();
        for ((si, d), t) in todo.into_iter().zip(times) {
            self.seq_cache.insert((si, r, d), t);
        }
    }

    /// Sequential baseline time for size label `size_idx` (radix 8 — the
    /// pass count the paper calls "quite good across all the data set
    /// sizes"), at the same machine scale as the parallel runs of this
    /// size.
    pub fn seq_ns(&mut self, size_idx: usize, dist: Dist) -> f64 {
        let r = 8;
        let seed = self.opts.seed;
        let scale = self.opts.scale_for(size_idx);
        let n = self.opts.n_for(size_idx);
        let pm = page_mult_for(size_idx);
        *self.seq_cache.entry((size_idx, r, dist)).or_insert_with(|| {
            let res = run_sequential_baseline(n, r, dist, seed, scale, pm);
            assert!(res.verified);
            res.time_ns
        })
    }

    /// Record a point for an experiment already in the memo cache,
    /// avoiding the `ExpResult` clone that [`Self::record`] forces on
    /// callers holding only a cache reference.
    pub fn record_key(
        &mut self,
        artefact: &str,
        key: ExpKey,
        speedup: Option<f64>,
        relative: Option<f64>,
    ) {
        let res = self.cache.get(&key).expect("record_key: experiment not cached");
        let pt = make_point(&self.opts, artefact, key.1, res, speedup, relative);
        self.points.push(pt);
    }

    /// Record a point for the JSON dump.
    pub fn record(
        &mut self,
        artefact: &str,
        size_idx: usize,
        res: &ExpResult,
        speedup: Option<f64>,
        relative: Option<f64>,
    ) {
        let pt = make_point(&self.opts, artefact, size_idx, res, speedup, relative);
        self.points.push(pt);
    }
}

/// Build the serialisable [`Point`] for one recorded experiment.
fn make_point(
    opts: &RunnerOpts,
    artefact: &str,
    size_idx: usize,
    res: &ExpResult,
    speedup: Option<f64>,
    relative: Option<f64>,
) -> Point {
    let mean = res.mean_breakdown();
    Point {
        artefact: artefact.to_string(),
        size_label: opts.label_for(size_idx).to_string(),
        scale: opts.scale_for(size_idx),
        n: res.n,
        p: res.p,
        algorithm: res.algorithm.name().to_string(),
        radix_bits: res.radix_bits,
        dist: res.dist.name().to_string(),
        time_ns: res.parallel_ns,
        speedup,
        relative,
        busy_ns: mean.busy,
        lmem_ns: mean.lmem,
        rmem_ns: mean.rmem,
        sync_ns: mean.sync,
        verified: res.verified,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_scale_per_label() {
        let opts = RunnerOpts { max_sim_n: 1 << 21, ..Default::default() };
        // 1M and up: scale = label / 2M, min 1.
        assert_eq!(opts.scale_for(0), 1); // 1M
        assert_eq!(opts.scale_for(1), 2); // 4M
        assert_eq!(opts.scale_for(2), 8); // 16M
        assert_eq!(opts.scale_for(3), 32); // 64M
        assert_eq!(opts.scale_for(4), 128); // 256M
        // n * scale always reconstructs the label.
        for si in 0..SIZE_LABELS.len() {
            assert_eq!(opts.n_for(si) * opts.scale_for(si), SIZE_LABELS[si].1);
        }
    }

    #[test]
    fn quick_opts_are_small() {
        let q = RunnerOpts::quick();
        assert!(q.n_for(0) <= 1 << 14);
        assert!(q.procs.iter().all(|&p| p <= 16));
    }

    #[test]
    fn runner_memoizes_experiments() {
        let mut r = Runner::new(RunnerOpts {
            max_sim_n: 1 << 12,
            sizes: vec![0],
            procs: vec![4],
            seed: 7,
            verbose: false,
        });
        let t1 = r.exp(Algorithm::RadixShmem, 0, 4, 8, Dist::Gauss).parallel_ns;
        let t2 = r.exp(Algorithm::RadixShmem, 0, 4, 8, Dist::Gauss).parallel_ns;
        assert_eq!(t1, t2);
        // Different radix is a different experiment.
        let t3 = r.exp(Algorithm::RadixShmem, 0, 4, 11, Dist::Gauss).parallel_ns;
        assert_ne!(t1, t3);
    }

    #[test]
    fn seq_baseline_exceeds_parallel_time() {
        let mut r = Runner::new(RunnerOpts {
            max_sim_n: 1 << 13,
            sizes: vec![0],
            procs: vec![8],
            seed: 7,
            verbose: false,
        });
        let seq = r.seq_ns(0, Dist::Gauss);
        let par = r.exp(Algorithm::SampleShmem, 0, 8, 11, Dist::Gauss).parallel_ns;
        assert!(seq > par, "seq {seq} should exceed 8-way parallel {par}");
    }

    #[test]
    fn prefetch_matches_sequential_exp() {
        let opts = RunnerOpts {
            max_sim_n: 1 << 12,
            sizes: vec![0],
            procs: vec![4],
            seed: 7,
            verbose: false,
        };
        let keys: Vec<ExpKey> = vec![
            (Algorithm::RadixShmem, 0, 4, 8, Dist::Gauss),
            (Algorithm::SampleShmem, 0, 4, 11, Dist::Gauss),
            (Algorithm::RadixShmem, 0, 4, 8, Dist::Gauss), // duplicate: deduped
        ];
        let mut par = Runner::new(opts.clone());
        par.prefetch(&keys);
        par.prefetch_seq(&[(0, Dist::Gauss)]);
        let mut seq = Runner::new(opts);
        for &(alg, si, p, r, d) in &keys {
            assert_eq!(par.exp(alg, si, p, r, d).parallel_ns, seq.exp(alg, si, p, r, d).parallel_ns);
        }
        assert_eq!(par.seq_ns(0, Dist::Gauss), seq.seq_ns(0, Dist::Gauss));
    }

    #[test]
    fn record_key_matches_record() {
        let mut r = Runner::new(RunnerOpts {
            max_sim_n: 1 << 12,
            sizes: vec![0],
            procs: vec![4],
            seed: 7,
            verbose: false,
        });
        let key: ExpKey = (Algorithm::RadixShmem, 0, 4, 8, Dist::Gauss);
        let res = r.exp(key.0, key.1, key.2, key.3, key.4).clone();
        r.record("a", key.1, &res, Some(1.0), None);
        r.record_key("a", key, Some(1.0), None);
        let a = serde_json::to_string(&r.points[0]).unwrap();
        let b = serde_json::to_string(&r.points[1]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn record_captures_scale_and_label() {
        let mut r = Runner::new(RunnerOpts {
            max_sim_n: 1 << 12,
            sizes: vec![2],
            procs: vec![4],
            seed: 7,
            verbose: false,
        });
        let res = r.exp(Algorithm::RadixShmem, 2, 4, 8, Dist::Gauss).clone();
        r.record("test", 2, &res, Some(1.0), None);
        let pt = &r.points[0];
        assert_eq!(pt.size_label, "16M");
        assert_eq!(pt.scale, (1 << 24) / (1 << 12));
        assert_eq!(pt.n * pt.scale, 1 << 24);
        assert!(pt.verified);
    }
}
