//! `realbench` — head-to-head sorting benchmarks on the actual host, the
//! real-hardware counterpart of `BENCH_simulator.json`.
//!
//! The grid pits this library's parallel radix sorts against
//! `slice::sort_unstable` and rayon's `par_sort_unstable` across input
//! distributions (uniform, zipf-skewed, nearly-sorted, duplicate-heavy),
//! key kinds (u32, u64, key+payload pairs) and thread counts, with the
//! best-of-N discipline of `simbench`: every cell is measured `reps`
//! times interleaved and the fastest wall time wins, so turbo/thermal
//! drift cannot bias late-running variants.
//!
//! Three radix variants isolate the mechanisms this library stacks:
//!
//! * `radix_simple` — [`RadixSortConfig::simple`]: static partitioning,
//!   direct scatter, per-pass counting (the pre-optimization baseline);
//! * `radix_coalesced` — write-coalescing staging buffers + fused
//!   multi-digit histogramming, still statically partitioned;
//! * `radix_ws` — the default configuration: coalescing + fusion + the
//!   work-stealing chunk queue.
//!
//! `radix_ws` vs `radix_coalesced` therefore measures exactly the steal
//! scheduler, and `radix_coalesced` vs `radix_simple` exactly the memory
//! tricks. Every timed sort is verified (untimed) to be a sorted
//! permutation of its input — and bit-identical, stable order for pairs —
//! before its time is accepted.
//!
//! The JSON is written by hand (like `simbench`) so the format is
//! identical on every toolchain, and includes a `machine` block: thread
//! counts above the host's available cores are honest oversubscription,
//! not parallel speedup, and the file says so.

use std::collections::BTreeMap;
use std::time::Instant;

use ccsort_parallel::{
    histogram, is_sorted, multiset_fingerprint, par_radix_sort_pairs_with, par_radix_sort_with,
    RadixSortConfig,
};

/// Deterministic 64-bit generator (splitmix64) so every run of the bench
/// sorts the same arrays.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Input distribution of the keys to sort.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Dist {
    /// Independent uniform keys.
    Uniform,
    /// Zipf-skewed key popularity (YCSB-style, theta = 0.99): a handful of
    /// hot keys dominate, so a few radix buckets hold most of the input.
    Zipf,
    /// Ascending keys with 1% random swaps.
    NearlySorted,
    /// Sixteen distinct values.
    DupHeavy,
}

impl Dist {
    pub fn name(self) -> &'static str {
        match self {
            Dist::Uniform => "uniform",
            Dist::Zipf => "zipf",
            Dist::NearlySorted => "nearly_sorted",
            Dist::DupHeavy => "dup_heavy",
        }
    }
}

/// YCSB-style zipfian rank sampler over `0..n` with parameter `theta`.
pub struct Zipf {
    n: f64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl Zipf {
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 1 && theta > 0.0 && theta < 1.0);
        let mut zetan = 0.0f64;
        for i in 1..=n {
            zetan += 1.0 / (i as f64).powf(theta);
        }
        let zeta2 = 1.0 + 0.5f64.powf(theta);
        Zipf {
            n: n as f64,
            theta,
            alpha: 1.0 / (1.0 - theta),
            zetan,
            eta: (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan),
        }
    }

    /// Map a uniform sample in [0, 1) to a zipf-distributed rank (0 is the
    /// hottest).
    pub fn sample(&self, u: f64) -> usize {
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let r = (self.n * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as usize;
        r.min(self.n as usize - 1)
    }
}

/// Generate `n` keys of `dist` as u64 ranks/values; kind-specific widths
/// map these down.
fn gen_raw(n: usize, dist: Dist, seed: u64, zipf_cache: &mut BTreeMap<usize, Zipf>) -> Vec<u64> {
    let mut s = seed;
    match dist {
        Dist::Uniform => (0..n).map(|_| splitmix64(&mut s)).collect(),
        Dist::Zipf => {
            let z = zipf_cache.entry(n).or_insert_with(|| Zipf::new(n, 0.99));
            (0..n)
                .map(|_| {
                    let u = (splitmix64(&mut s) >> 11) as f64 / (1u64 << 53) as f64;
                    // Spread the rank over the key space with an odd
                    // multiplier: a bijection, so the popularity skew (and
                    // the huge radix buckets it creates) is preserved while
                    // every digit position still varies.
                    (z.sample(u) as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                })
                .collect()
        }
        Dist::NearlySorted => {
            let mut v: Vec<u64> = (0..n as u64).collect();
            let swaps = n / 100;
            for _ in 0..swaps {
                let i = (splitmix64(&mut s) as usize) % n;
                let j = (splitmix64(&mut s) as usize) % n;
                v.swap(i, j);
            }
            v
        }
        Dist::DupHeavy => {
            let pool: Vec<u64> = (0..16).map(|_| splitmix64(&mut s)).collect();
            (0..n).map(|_| pool[(splitmix64(&mut s) & 15) as usize]).collect()
        }
    }
}

/// The algorithms under test.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Algo {
    /// `slice::sort_unstable` — the single-threaded comparison baseline.
    Std,
    /// `rayon::par_sort_unstable` — the parallel comparison baseline.
    Rayon,
    /// [`RadixSortConfig::simple`]: the pre-optimization radix path.
    RadixSimple,
    /// Coalescing + fused histograms, static partitioning.
    RadixCoalesced,
    /// The default configuration: coalescing + fusion + work stealing.
    RadixWs,
}

impl Algo {
    pub fn name(self) -> &'static str {
        match self {
            Algo::Std => "std_sort_unstable",
            Algo::Rayon => "rayon_par_sort_unstable",
            Algo::RadixSimple => "radix_simple",
            Algo::RadixCoalesced => "radix_coalesced",
            Algo::RadixWs => "radix_ws",
        }
    }

    /// The radix configuration for this algorithm pinned to `threads`
    /// workers, or `None` for the comparison-sort baselines.
    fn radix_config(self, threads: usize) -> Option<RadixSortConfig> {
        let pinned = RadixSortConfig { chunks: Some(threads), ..RadixSortConfig::default() };
        match self {
            Algo::Std | Algo::Rayon => None,
            Algo::RadixSimple => {
                Some(RadixSortConfig { chunks: Some(threads), ..RadixSortConfig::simple() })
            }
            Algo::RadixCoalesced => Some(RadixSortConfig { work_stealing: false, ..pinned }),
            Algo::RadixWs => Some(pinned),
        }
    }
}

/// The parallel comparison baseline: `threads` sorted runs built with
/// `sort_unstable` in parallel, then pairwise parallel merges — the
/// algorithm behind rayon's `par_sort_unstable`. Implemented directly on
/// `std::thread` because the workspace's vendored rayon facade executes
/// sequentially; the JSON's `grid_note` records this.
pub fn par_sort_unstable_baseline<T: Copy + Ord + Default + Send + Sync>(
    v: &mut [T],
    threads: usize,
) {
    let n = v.len();
    let t = threads.clamp(1, n.max(1));
    if t <= 1 || n < 2 {
        v.sort_unstable();
        return;
    }
    let chunk = n.div_ceil(t);
    std::thread::scope(|s| {
        for part in v.chunks_mut(chunk) {
            s.spawn(move || part.sort_unstable());
        }
    });
    let mut runs: Vec<(usize, usize)> = (0..t)
        .map(|i| (i * chunk, ((i + 1) * chunk).min(n)))
        .filter(|r| r.0 < r.1)
        .collect();
    let mut scratch = vec![T::default(); n];
    let mut in_v = true;
    while runs.len() > 1 {
        let (src, dst): (&[T], &mut [T]) =
            if in_v { (&*v, &mut scratch) } else { (&*scratch, v) };
        let mut next_runs = Vec::with_capacity(runs.len().div_ceil(2));
        std::thread::scope(|s| {
            let mut tail = dst;
            for pair in runs.chunks(2) {
                let (start, end) = (pair[0].0, pair.last().unwrap().1);
                let (seg, rest) = tail.split_at_mut(end - start);
                tail = rest;
                next_runs.push((start, end));
                if let [a, b] = pair {
                    let (a, b) = (&src[a.0..a.1], &src[b.0..b.1]);
                    s.spawn(move || merge_into(a, b, seg));
                } else {
                    seg.copy_from_slice(&src[start..end]);
                }
            }
        });
        runs = next_runs;
        in_v = !in_v;
    }
    if !in_v {
        v.copy_from_slice(&scratch);
    }
}

fn merge_into<T: Copy + Ord>(a: &[T], b: &[T], out: &mut [T]) {
    debug_assert_eq!(a.len() + b.len(), out.len());
    let (mut i, mut j) = (0usize, 0usize);
    for slot in out.iter_mut() {
        *slot = if j >= b.len() || (i < a.len() && a[i] <= b[j]) {
            i += 1;
            a[i - 1]
        } else {
            j += 1;
            b[j - 1]
        };
    }
}

/// Key layout of a row.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Kind {
    U32,
    U64,
    /// u32 keys with u32 payloads (original index), sorted stably.
    PairsU32,
}

impl Kind {
    pub fn name(self) -> &'static str {
        match self {
            Kind::U32 => "u32",
            Kind::U64 => "u64",
            Kind::PairsU32 => "pairs_u32",
        }
    }
}

/// One measured grid cell.
#[derive(Clone, Debug)]
pub struct Row {
    pub kind: &'static str,
    pub algo: &'static str,
    pub dist: &'static str,
    pub n: usize,
    pub threads: usize,
    pub reps: usize,
    pub best_wall_s: f64,
    pub mkeys_per_sec: f64,
}

/// Bench options: the grid and the measurement discipline.
pub struct RealBenchOpts {
    /// Input sizes per combo (largest drives the headline assertions).
    pub sizes: Vec<usize>,
    /// Thread counts for the parallel algorithms.
    pub threads: Vec<usize>,
    /// Interleaved repetitions per cell; best (minimum) wall time wins.
    pub reps: usize,
}

impl RealBenchOpts {
    /// The committed-artifact grid: 1M and 16M keys, thread sweep to 8.
    pub fn full() -> Self {
        let mut threads = vec![1, 2, 4, 8];
        let avail = available_cores();
        if avail > 8 {
            threads.push(avail);
        }
        RealBenchOpts { sizes: vec![1 << 20, 1 << 24], threads, reps: 3 }
    }

    /// The CI grid: 16M keys (the size where the coalescing and stealing
    /// relations are out-of-cache and robust), {1, max} threads — minutes,
    /// not tens of them.
    pub fn quick() -> Self {
        RealBenchOpts { sizes: vec![1 << 24], threads: vec![1, available_cores().max(2)], reps: 3 }
    }
}

pub fn available_cores() -> usize {
    std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
}

/// Best-of-`reps` wall time for one closure over a cloneable input. The
/// clone and the verification run outside the timed region.
fn best_of<T: Clone, F: FnMut(&mut T)>(input: &T, reps: usize, mut sort: F, verify: impl Fn(&T)) -> f64 {
    let mut best = f64::INFINITY;
    for rep in 0..reps {
        let mut v = input.clone();
        let t0 = Instant::now();
        sort(&mut v);
        let dt = t0.elapsed().as_secs_f64();
        if rep == 0 {
            verify(&v);
        }
        best = best.min(dt);
    }
    best
}

/// Measure one `(kind, algo, dist, n, threads)` cell. `raw` is the
/// distribution sample as u64.
fn run_cell(kind: Kind, algo: Algo, raw: &[u64], threads: usize, reps: usize) -> f64 {
    let n = raw.len();
    match kind {
        Kind::U32 => {
            let input: Vec<u32> = raw.iter().map(|&x| x as u32).collect();
            let fp = multiset_fingerprint(&input);
            let verify = |v: &Vec<u32>| {
                assert!(is_sorted(v), "{} produced unsorted output", algo.name());
                assert_eq!(fp, multiset_fingerprint(v), "{} lost keys", algo.name());
            };
            match algo.radix_config(threads) {
                None => match algo {
                    Algo::Std => best_of(&input, reps, |v| v.sort_unstable(), verify),
                    _ => best_of(
                        &input,
                        reps,
                        |v| par_sort_unstable_baseline(v, threads),
                        verify,
                    ),
                },
                Some(cfg) => best_of(&input, reps, |v| par_radix_sort_with(v, &cfg), verify),
            }
        }
        Kind::U64 => {
            let input: Vec<u64> = raw.to_vec();
            let fp = multiset_fingerprint(&input);
            let verify = |v: &Vec<u64>| {
                assert!(is_sorted(v), "{} produced unsorted output", algo.name());
                assert_eq!(fp, multiset_fingerprint(v), "{} lost keys", algo.name());
            };
            match algo.radix_config(threads) {
                None => match algo {
                    Algo::Std => best_of(&input, reps, |v| v.sort_unstable(), verify),
                    _ => best_of(
                        &input,
                        reps,
                        |v| par_sort_unstable_baseline(v, threads),
                        verify,
                    ),
                },
                Some(cfg) => best_of(&input, reps, |v| par_radix_sort_with(v, &cfg), verify),
            }
        }
        Kind::PairsU32 => {
            let keys: Vec<u32> = raw.iter().map(|&x| x as u32).collect();
            // Payload = original index, so the stable order is unique and
            // equals the lexicographic tuple order.
            let mut reference: Vec<(u32, u32)> = keys.iter().copied().zip(0..n as u32).collect();
            reference.sort_unstable();
            match algo.radix_config(threads) {
                None => {
                    let tuples: Vec<(u32, u32)> = keys.iter().copied().zip(0..n as u32).collect();
                    let verify = |v: &Vec<(u32, u32)>| {
                        assert_eq!(v, &reference, "{} pairs order diverges", algo.name());
                    };
                    match algo {
                        Algo::Std => best_of(&tuples, reps, |v| v.sort_unstable(), verify),
                        _ => best_of(
                            &tuples,
                            reps,
                            |v| par_sort_unstable_baseline(v, threads),
                            verify,
                        ),
                    }
                }
                Some(cfg) => {
                    let vals: Vec<u32> = (0..n as u32).collect();
                    let input = (keys, vals);
                    let verify = |kv: &(Vec<u32>, Vec<u32>)| {
                        let got: Vec<(u32, u32)> =
                            kv.0.iter().copied().zip(kv.1.iter().copied()).collect();
                        assert_eq!(got, reference, "{} breaks stability", algo.name());
                    };
                    best_of(
                        &input,
                        reps,
                        |kv| par_radix_sort_pairs_with(&mut kv.0, &mut kv.1, &cfg),
                        verify,
                    )
                }
            }
        }
    }
}

/// Which (kind, dist) combos the grid covers. u32 takes the full
/// distribution sweep; u64 and pairs are pruned to the shapes that add
/// information (u64: bandwidth; pairs: payload movement + stability under
/// duplicates). The pruning is recorded in the JSON's `grid_note`.
pub const COMBOS: &[(Kind, Dist)] = &[
    (Kind::U32, Dist::Uniform),
    (Kind::U32, Dist::Zipf),
    (Kind::U32, Dist::NearlySorted),
    (Kind::U32, Dist::DupHeavy),
    (Kind::U64, Dist::Uniform),
    (Kind::U64, Dist::Zipf),
    (Kind::PairsU32, Dist::Uniform),
    (Kind::PairsU32, Dist::DupHeavy),
];

/// Run the whole grid and return the rows (sort rows plus the histogram
/// padding regression pair).
pub fn run_grid(opts: &RealBenchOpts, progress: bool) -> Vec<Row> {
    let mut rows = Vec::new();
    let mut zipf_cache = BTreeMap::new();
    for &(kind, dist) in COMBOS {
        for &n in &opts.sizes {
            let raw = gen_raw(n, dist, 0xC0FF_EE00 ^ n as u64, &mut zipf_cache);
            for algo in [Algo::Std, Algo::Rayon, Algo::RadixSimple, Algo::RadixCoalesced, Algo::RadixWs]
            {
                // std is single-threaded: one row, at threads = 1.
                let thread_list: &[usize] =
                    if algo == Algo::Std { &[1] } else { &opts.threads };
                for &t in thread_list {
                    let best = run_cell(kind, algo, &raw, t, opts.reps);
                    let row = Row {
                        kind: kind.name(),
                        algo: algo.name(),
                        dist: dist.name(),
                        n,
                        threads: t,
                        reps: opts.reps,
                        best_wall_s: best,
                        mkeys_per_sec: n as f64 / best / 1e6,
                    };
                    if progress {
                        println!(
                            "{:9} {:24} {:13} n={:<9} t={:<3} best {:>8.4}s  {:>8.2} Mkeys/s",
                            row.kind, row.algo, row.dist, row.n, row.threads,
                            row.best_wall_s, row.mkeys_per_sec
                        );
                    }
                    rows.push(row);
                }
            }
        }
    }
    rows.extend(histogram_padding_rows(opts, progress, &mut zipf_cache));
    rows
}

/// The false-sharing regression pair: `par_digit_histogram` with
/// cache-line-padded per-thread counters vs the unpadded fold it replaced,
/// same input. Measured, not assumed — reported at threads = 1 because the
/// fold runs through the (sequential in this build) rayon facade, so the
/// pair demonstrates the padding costs nothing even without contention;
/// under real contention it can only help more.
fn histogram_padding_rows(
    opts: &RealBenchOpts,
    progress: bool,
    zipf_cache: &mut BTreeMap<usize, Zipf>,
) -> Vec<Row> {
    let n = *opts.sizes.iter().max().expect("non-empty sizes");
    let keys: Vec<u32> =
        gen_raw(n, Dist::Uniform, 0xFEED, zipf_cache).iter().map(|&x| x as u32).collect();
    let expect = histogram::par_digit_histogram(&keys, 0, 8);
    let mut rows = Vec::new();
    for (name, padded) in [("hist_padded", true), ("hist_unpadded", false)] {
        let best = {
            let mut best = f64::INFINITY;
            for _ in 0..opts.reps.max(3) {
                let t0 = Instant::now();
                let h = if padded {
                    histogram::par_digit_histogram(&keys, 0, 8)
                } else {
                    histogram::par_digit_histogram_unpadded(&keys, 0, 8)
                };
                best = best.min(t0.elapsed().as_secs_f64());
                assert_eq!(h, expect, "padded and unpadded histograms must agree");
            }
            best
        };
        let row = Row {
            kind: "hist",
            algo: name,
            dist: Dist::Uniform.name(),
            n,
            threads: 1,
            reps: opts.reps.max(3),
            best_wall_s: best,
            mkeys_per_sec: n as f64 / best / 1e6,
        };
        if progress {
            println!(
                "{:9} {:24} {:13} n={:<9} t={:<3} best {:>8.4}s  {:>8.2} Mkeys/s",
                row.kind, row.algo, row.dist, row.n, row.threads, row.best_wall_s,
                row.mkeys_per_sec
            );
        }
        rows.push(row);
    }
    rows
}

fn find_row<'a>(rows: &'a [Row], kind: &str, algo: &str, dist: &str, n: usize, t: usize) -> &'a Row {
    rows.iter()
        .find(|r| r.kind == kind && r.algo == algo && r.dist == dist && r.n == n && r.threads == t)
        .unwrap_or_else(|| panic!("missing row {kind}/{algo}/{dist}/n={n}/t={t}"))
}

/// The internal relations the PR claims, checked at the grid's largest
/// size and thread count (machine-relative, so they are meaningful on any
/// host). `tol` > 1 loosens the comparisons for noisy CI runners; 1.0
/// demands strict wins. Returns human-readable failures.
pub fn check_assertions(rows: &[Row], opts: &RealBenchOpts, tol: f64) -> Vec<String> {
    let n = *opts.sizes.iter().max().expect("non-empty sizes");
    let t = *opts.threads.iter().max().expect("non-empty thread list");
    let mut failures = Vec::new();
    let mut require = |label: &str, lhs: &Row, rhs: &Row| {
        if lhs.best_wall_s > rhs.best_wall_s * tol {
            failures.push(format!(
                "{label}: {} {:.4}s vs {} {:.4}s (tol {tol})",
                lhs.algo, lhs.best_wall_s, rhs.algo, rhs.best_wall_s
            ));
        }
    };
    // Coalescing + fusion beat the pre-optimization path on uniform keys.
    require(
        "coalesced vs simple (uniform u32)",
        find_row(rows, "u32", "radix_coalesced", "uniform", n, t),
        find_row(rows, "u32", "radix_simple", "uniform", n, t),
    );
    // The full radix stack beats rayon's comparison sort on uniform u32.
    require(
        "radix_ws vs rayon (uniform u32)",
        find_row(rows, "u32", "radix_ws", "uniform", n, t),
        find_row(rows, "u32", "rayon_par_sort_unstable", "uniform", n, t),
    );
    // Work stealing beats static partitioning on the skewed row.
    require(
        "stealing vs static (zipf u32)",
        find_row(rows, "u32", "radix_ws", "zipf", n, t),
        find_row(rows, "u32", "radix_coalesced", "zipf", n, t),
    );
    // Padded per-thread counters are no slower than the unpadded fold.
    require(
        "padded vs unpadded histogram",
        find_row(rows, "hist", "hist_padded", "uniform", n, 1),
        find_row(rows, "hist", "hist_unpadded", "uniform", n, 1),
    );
    failures
}

/// One JSON number: plain decimal, never NaN/Inf.
fn num(x: f64) -> String {
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{:.1}", x)
    } else {
        format!("{:.6}", x)
    }
}

fn proc_field(path: &str, key: &str) -> Option<String> {
    let text = std::fs::read_to_string(path).ok()?;
    text.lines()
        .find(|l| l.starts_with(key))
        .and_then(|l| l.split(':').nth(1))
        .map(|v| v.trim().to_string())
}

/// Render the rows as the committed JSON artifact, with an honest machine
/// description (oversubscribed thread counts are called out, not hidden).
pub fn to_json(rows: &[Row], opts: &RealBenchOpts) -> String {
    let cores = available_cores();
    let cpu = proc_field("/proc/cpuinfo", "model name").unwrap_or_else(|| "unknown".to_string());
    let mem_kb: u64 = proc_field("/proc/meminfo", "MemTotal")
        .and_then(|v| v.split_whitespace().next().and_then(|x| x.parse().ok()))
        .unwrap_or(0);
    let max_t = opts.threads.iter().max().copied().unwrap_or(1);
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"real_sorts\",\n");
    json.push_str("  \"metric\": \"million keys sorted per wall-clock second (best of reps)\",\n");
    json.push_str("  \"machine\": {\n");
    json.push_str(&format!("    \"cpu\": \"{}\",\n", cpu.replace('"', "'")));
    json.push_str(&format!("    \"cores_available\": {},\n", cores));
    json.push_str(&format!("    \"mem_gb\": {},\n", mem_kb / (1 << 20)));
    if max_t > cores {
        json.push_str(&format!(
            "    \"note\": \"thread counts above {} are oversubscribed on this host: those rows measure scheduling robustness (work stealing vs static partitioning under timesharing), not parallel scaling\",\n",
            cores
        ));
    }
    json.push_str("    \"os\": \"linux\"\n  },\n");
    json.push_str(
        "  \"grid_note\": \"u32 runs all four distributions; u64 is pruned to uniform+zipf and pairs to uniform+dup_heavy (the shapes that add information); std_sort_unstable is single-threaded and reported once per combo; the rayon_par_sort_unstable row is implemented as rayon's algorithm (parallel sort_unstable runs + pairwise parallel merges) directly on std::thread because this build environment vendors a sequential rayon facade\",\n",
    );
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"kind\": \"{}\", \"algo\": \"{}\", \"dist\": \"{}\", \"n\": {}, \"threads\": {}, \"reps\": {}, \"best_wall_s\": {}, \"mkeys_per_sec\": {}}}{}\n",
            r.kind,
            r.algo,
            r.dist,
            r.n,
            r.threads,
            r.reps,
            num(r.best_wall_s),
            num(r.mkeys_per_sec),
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    json
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let z = Zipf::new(1000, 0.99);
        let mut s = 7u64;
        let mut counts = vec![0usize; 1000];
        for _ in 0..20_000 {
            let u = (splitmix64(&mut s) >> 11) as f64 / (1u64 << 53) as f64;
            counts[z.sample(u)] += 1;
        }
        // Rank 0 must dominate any mid-popularity rank by a wide margin.
        assert!(counts[0] > 20 * counts[500].max(1), "zipf not skewed: {:?}", &counts[..4]);
    }

    #[test]
    fn distributions_have_the_claimed_shape() {
        let mut cache = BTreeMap::new();
        let dup = gen_raw(10_000, Dist::DupHeavy, 1, &mut cache);
        let distinct: std::collections::BTreeSet<u64> = dup.iter().copied().collect();
        assert!(distinct.len() <= 16);
        let ns = gen_raw(10_000, Dist::NearlySorted, 1, &mut cache);
        let sorted_adjacent = ns.windows(2).filter(|w| w[0] <= w[1]).count();
        assert!(sorted_adjacent > 9_500, "nearly-sorted input too shuffled");
    }

    #[test]
    fn tiny_grid_produces_verified_rows_and_assertions_resolve() {
        let opts = RealBenchOpts { sizes: vec![1 << 14], threads: vec![1, 2], reps: 1 };
        let rows = run_grid(&opts, false);
        // std once + 4 parallel algos × 2 thread counts, per combo + 2 hist rows.
        assert_eq!(rows.len(), COMBOS.len() * (1 + 4 * 2) + 2);
        assert!(rows.iter().all(|r| r.best_wall_s > 0.0));
        // The relations must at least be *resolvable* (rows present); at
        // this toy size the timings themselves are noise, so use a huge
        // tolerance and only require that nothing is pathologically off.
        let failures = check_assertions(&rows, &opts, 1e6);
        assert!(failures.is_empty(), "{failures:?}");
        let json = to_json(&rows, &opts);
        assert!(json.contains("\"bench\": \"real_sorts\""));
        assert!(json.contains("radix_ws"));
    }
}
