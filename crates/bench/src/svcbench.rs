//! `svcbench` — sustained-load benchmark of the sorting service, the
//! service-layer counterpart of `realbench`.
//!
//! The grid drives the service with a deterministic open-loop load
//! generator across request-size mixes and measures the one claim the
//! coalescing batcher makes: merging many small concurrent sort requests
//! into shared batches amortises per-request fixed costs (executor
//! wake-ups, locking, histogram setup) and therefore raises sustained
//! throughput. Every cell is measured twice — `coalesced` (the batcher)
//! and `baseline` (coalescing off: one request per batch, served
//! immediately) — so the speedup is measured, not asserted.
//!
//! Two load shapes per mix:
//!
//! * `saturate` — submit the whole request set as fast as admission
//!   allows (queue sized to hold it) and time until the last reply; the
//!   peak-throughput cell. Latency percentiles in this shape are
//!   queue-depth-dominated and reported only for completeness.
//! * `rate:<R>` — arrivals on a fixed schedule of `R` requests/s with a
//!   bounded queue; rejected arrivals are load-shed (counted, not
//!   retried). Latency is measured from the *intended* arrival time, so
//!   coordinated omission cannot flatter a slow mode, and percentiles are
//!   reported in microseconds.
//!
//! Measurement discipline matches `realbench`: `reps` interleaved
//! repetitions per cell, best wall time wins, and on the first repetition
//! every request's reply is verified byte-identical to a solo
//! `ccsort-parallel` sort of the same input before any time is accepted.

use std::time::{Duration, Instant};

use ccsort_parallel::{par_radix_sort_pairs_with, par_radix_sort_with, RadixSortConfig};
use ccsort_service::{ServiceConfig, SortService, SubmitError, Ticket};

use crate::realbench::{available_cores, splitmix64};

/// Key/payload shape of a mix.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MixKind {
    /// Keys-only `u32` requests.
    U32,
    /// `u64` keys with `u64` payloads through the pairs lane.
    PairsU64,
}

/// A request-size mix: how large the individual sort requests are.
#[derive(Clone, Copy, Debug)]
pub struct Mix {
    pub name: &'static str,
    pub kind: MixKind,
    /// Request sizes are drawn deterministically from `min_keys..=max_keys`.
    pub min_keys: usize,
    pub max_keys: usize,
    /// Requests per repetition (full grid).
    pub requests: usize,
}

/// The mixes the committed artifact covers. `small` is the
/// high-concurrency/many-tiny-requests regime the batcher exists for;
/// `large` is its worst case (requests already amortise their own fixed
/// costs, and the tag lane is pure overhead) and is reported as the
/// honesty row, not asserted on.
pub const MIXES: &[Mix] = &[
    Mix {
        name: "small_u32",
        kind: MixKind::U32,
        min_keys: 16,
        max_keys: 128,
        requests: 8000,
    },
    Mix {
        name: "small_pairs",
        kind: MixKind::PairsU64,
        min_keys: 16,
        max_keys: 128,
        requests: 4000,
    },
    Mix {
        name: "medium_u32",
        kind: MixKind::U32,
        min_keys: 1024,
        max_keys: 4096,
        requests: 800,
    },
    Mix {
        name: "large_u32",
        kind: MixKind::U32,
        min_keys: 16384,
        max_keys: 65536,
        requests: 60,
    },
];

/// One measured grid cell.
#[derive(Clone, Debug)]
pub struct SvcRow {
    pub mix: &'static str,
    pub mode: &'static str,
    pub load: String,
    pub requests: usize,
    pub accepted: u64,
    pub rejected: u64,
    pub reps: usize,
    pub best_wall_s: f64,
    pub req_per_sec: f64,
    pub mkeys_per_sec: f64,
    pub p50_us: f64,
    pub p99_us: f64,
    pub p999_us: f64,
    pub mean_batch_requests: f64,
    pub scratch_reallocations: u64,
    pub verified: bool,
}

/// Bench options: the grid and the measurement discipline.
pub struct SvcBenchOpts {
    /// Scale factor applied to every mix's request count (1 = full grid).
    pub scale: usize,
    /// Interleaved repetitions per cell; best wall time wins.
    pub reps: usize,
    /// Fixed arrival rates (requests/s) for the small_u32 latency cells.
    pub rates: Vec<u64>,
}

impl SvcBenchOpts {
    /// The committed-artifact grid.
    pub fn full() -> Self {
        SvcBenchOpts {
            scale: 1,
            reps: 3,
            rates: vec![5_000, 20_000],
        }
    }

    /// The CI grid: quarter-size request sets, one latency rate.
    pub fn quick() -> Self {
        SvcBenchOpts {
            scale: 4,
            reps: 3,
            rates: vec![5_000],
        }
    }
}

/// The service configuration under test. One executor: on this grid the
/// engine parallelises inside each batch sort, so extra executors would
/// only oversubscribe; the mechanism being measured is batching, not
/// executor-pool scaling.
fn service_config(coalescing: bool, queue_limit: usize) -> ServiceConfig {
    // Coalesced batches get a wider digit: a multi-thousand-key batch
    // amortises the bigger histograms easily and saves a whole radix pass
    // (u32: 3 passes instead of 4), while solo sorts keep the default —
    // a 2048-bin histogram would swamp a 100-key request. The batch byte
    // cap keeps the working set cache-resident; past it, batch sorts go
    // memory-bound and per-key cost climbs back above the baseline's.
    let batch_sort = RadixSortConfig {
        radix_bits: 11,
        sequential_cutoff: 1 << 20,
        ..RadixSortConfig::default()
    };
    ServiceConfig {
        queue_limit,
        max_batch_bytes: 1 << 17,
        max_wait_us: 500,
        executors: 1,
        coalescing,
        sort: RadixSortConfig::default(),
        batch_sort: Some(batch_sort),
    }
}

/// Deterministic per-request spec: size and content seed.
fn request_specs(mix: &Mix, scale: usize) -> Vec<(usize, u64)> {
    let count = (mix.requests / scale).max(8);
    let mut s = 0x5EED_0000 ^ (mix.name.len() as u64) << 32 ^ mix.min_keys as u64;
    (0..count)
        .map(|_| {
            let span = (mix.max_keys - mix.min_keys + 1) as u64;
            let n = mix.min_keys + (splitmix64(&mut s) % span) as usize;
            (n, splitmix64(&mut s))
        })
        .collect()
}

fn gen_keys_u32(n: usize, seed: u64) -> Vec<u32> {
    let mut s = seed;
    (0..n).map(|_| splitmix64(&mut s) as u32).collect()
}

fn gen_pairs_u64(n: usize, seed: u64) -> (Vec<u64>, Vec<u64>) {
    let mut s = seed;
    let keys: Vec<u64> = (0..n).map(|_| splitmix64(&mut s)).collect();
    let vals: Vec<u64> = (0..n).map(|_| splitmix64(&mut s)).collect();
    (keys, vals)
}

/// Latency percentile (microseconds) over sorted u64 nanosecond samples.
fn pct_us(sorted_ns: &[u64], q: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() - 1) as f64 * q).round() as usize;
    sorted_ns[idx] as f64 / 1e3
}

/// What one repetition produced.
struct Rep {
    wall_s: f64,
    accepted: u64,
    rejected: u64,
    keys_completed: u64,
    /// Sorted request latencies, nanoseconds.
    latencies_ns: Vec<u64>,
}

/// The arrival schedule: `None` = saturate (submit as fast as admission
/// allows, retrying rejections), `Some(rate)` = fixed open-loop arrivals
/// with load shedding.
#[derive(Clone, Copy)]
enum Load {
    Saturate,
    Rate(u64),
}

impl Load {
    fn label(self) -> String {
        match self {
            Load::Saturate => "saturate".to_string(),
            Load::Rate(r) => format!("rate:{r}"),
        }
    }
}

/// Drive one repetition of one cell. `submit` hands a prebuilt request to
/// the service (retry/shed policy handled here via the returned ticket);
/// generic over lane shape so u32 and pairs cells share the loop.
fn drive<T, W>(
    specs: &[(usize, u64)],
    load: Load,
    mut submit: impl FnMut(usize) -> Result<T, ()>,
    mut wait: W,
) -> Rep
where
    W: FnMut(T) -> (Instant, u64),
{
    let start = Instant::now();
    let mut tickets: Vec<(Option<T>, Instant)> = Vec::with_capacity(specs.len());
    let mut rejected = 0u64;
    for i in 0..specs.len() {
        let intended = match load {
            Load::Saturate => Instant::now(),
            Load::Rate(r) => {
                let at = start + Duration::from_nanos(i as u64 * 1_000_000_000 / r);
                loop {
                    let now = Instant::now();
                    if now >= at {
                        break;
                    }
                    let gap = at - now;
                    if gap > Duration::from_micros(200) {
                        std::thread::sleep(gap - Duration::from_micros(100));
                    } else {
                        std::hint::spin_loop();
                    }
                }
                at
            }
        };
        match load {
            Load::Saturate => loop {
                match submit(i) {
                    Ok(t) => {
                        tickets.push((Some(t), intended));
                        break;
                    }
                    Err(()) => std::thread::sleep(Duration::from_micros(50)),
                }
            },
            Load::Rate(_) => match submit(i) {
                Ok(t) => tickets.push((Some(t), intended)),
                Err(()) => {
                    rejected += 1;
                    tickets.push((None, intended));
                }
            },
        }
    }
    let mut latencies_ns = Vec::with_capacity(tickets.len());
    let mut last_completed = start;
    let mut keys_completed = 0u64;
    let mut accepted = 0u64;
    for (t, intended) in tickets {
        let Some(t) = t else { continue };
        accepted += 1;
        let (completed, nkeys) = wait(t);
        keys_completed += nkeys;
        if completed > last_completed {
            last_completed = completed;
        }
        latencies_ns.push(completed.saturating_duration_since(intended).as_nanos() as u64);
    }
    latencies_ns.sort_unstable();
    Rep {
        wall_s: last_completed
            .saturating_duration_since(start)
            .as_secs_f64(),
        accepted,
        rejected,
        keys_completed,
        latencies_ns,
    }
}

/// Run one repetition of one (mix, mode, load) cell, with solo-sort
/// verification of every reply when `verify` is set.
fn run_rep(
    mix: &Mix,
    coalescing: bool,
    load: Load,
    specs: &[(usize, u64)],
    queue_limit: usize,
    verify: bool,
) -> (Rep, ccsort_service::ServiceStats) {
    let svc =
        SortService::start(service_config(coalescing, queue_limit)).expect("valid service config");
    let rep_out = match mix.kind {
        MixKind::U32 => {
            let inputs: Vec<Vec<u32>> = specs
                .iter()
                .map(|&(n, seed)| gen_keys_u32(n, seed))
                .collect();
            let mut pending: Vec<Option<Vec<u32>>> =
                inputs.iter().map(|v| Some(v.clone())).collect();
            let r = drive(
                specs,
                load,
                |i| {
                    let keys = pending[i].take().expect("submitted once");
                    svc.submit_u32(keys).map_err(|e| {
                        if let SubmitError::Rejected { keys, .. } = e {
                            pending[i] = Some(keys); // retry without realloc
                        }
                    })
                },
                |t: Ticket<u32>| {
                    let r = t.wait();
                    (r.completed, r.keys.len() as u64)
                },
            );
            if verify {
                // Byte-identity vs solo sorts, untimed: re-submit every
                // request and compare against the engine directly. Waves
                // sized under the queue limit so nothing is rejected,
                // but large enough that the batcher still coalesces.
                let cfg = service_config(coalescing, queue_limit).sort;
                for wave in inputs.chunks(queue_limit.min(512)) {
                    let tickets: Vec<_> = wave
                        .iter()
                        .map(|v| svc.submit_u32(v.clone()).unwrap())
                        .collect();
                    for (t, input) in tickets.into_iter().zip(wave) {
                        let mut solo = input.clone();
                        par_radix_sort_with(&mut solo, &cfg);
                        assert_eq!(t.wait().keys, solo, "service reply diverges from solo sort");
                    }
                }
            }
            r
        }
        MixKind::PairsU64 => {
            let inputs: Vec<(Vec<u64>, Vec<u64>)> = specs
                .iter()
                .map(|&(n, seed)| gen_pairs_u64(n, seed))
                .collect();
            let mut pending: Vec<Option<(Vec<u64>, Vec<u64>)>> =
                inputs.iter().map(|kv| Some(kv.clone())).collect();
            let r = drive(
                specs,
                load,
                |i| {
                    let (keys, vals) = pending[i].take().expect("submitted once");
                    svc.submit_pairs_u64(keys, vals).map_err(|e| {
                        if let SubmitError::Rejected { keys, vals, .. } = e {
                            pending[i] = Some((keys, vals));
                        }
                    })
                },
                |t: Ticket<u64, u64>| {
                    let r = t.wait();
                    (r.completed, r.keys.len() as u64)
                },
            );
            if verify {
                let cfg = service_config(coalescing, queue_limit).sort;
                for wave in inputs.chunks(queue_limit.min(512)) {
                    let tickets: Vec<_> = wave
                        .iter()
                        .map(|(k, v)| svc.submit_pairs_u64(k.clone(), v.clone()).unwrap())
                        .collect();
                    for (t, (k, v)) in tickets.into_iter().zip(wave) {
                        let (mut sk, mut sv) = (k.clone(), v.clone());
                        par_radix_sort_pairs_with(&mut sk, &mut sv, &cfg);
                        let reply = t.wait();
                        assert_eq!(
                            (reply.keys, reply.vals),
                            (sk, sv),
                            "service pairs reply diverges from solo sort"
                        );
                    }
                }
            }
            r
        }
    };
    let stats = svc.shutdown();
    (rep_out, stats)
}

/// Run one (mix, load) cell in both modes with *interleaved* repetitions
/// — coalesced rep 0, baseline rep 0, coalesced rep 1, ... — so a noise
/// burst on a timeshared host lands on both modes alike instead of
/// biasing whichever mode's block it hit. Best wall time per mode wins;
/// rep 0 of each mode verifies every reply against a solo engine sort.
/// Returns `[coalesced, baseline]`.
fn run_cell_pair(mix: &Mix, load: Load, opts: &SvcBenchOpts) -> [SvcRow; 2] {
    let specs = request_specs(mix, opts.scale);
    let queue_limit = match load {
        Load::Saturate => specs.len() + 8,
        Load::Rate(_) => 1024,
    };
    let mut best: [Option<Rep>; 2] = [None, None];
    let mut last_stats = [ccsort_service::ServiceStats::default(); 2];
    for rep in 0..opts.reps {
        for (slot, coalescing) in [true, false].into_iter().enumerate() {
            let (rep_out, stats) = run_rep(mix, coalescing, load, &specs, queue_limit, rep == 0);
            last_stats[slot] = stats;
            if best[slot]
                .as_ref()
                .is_none_or(|b| rep_out.wall_s < b.wall_s)
            {
                best[slot] = Some(rep_out);
            }
        }
    }
    [true, false].map(|coalescing| {
        let slot = if coalescing { 0 } else { 1 };
        let best = best[slot].take().expect("reps >= 1");
        let stats = last_stats[slot];
        let wall = best.wall_s.max(1e-9);
        SvcRow {
            mix: mix.name,
            mode: if coalescing { "coalesced" } else { "baseline" },
            load: load.label(),
            requests: specs.len(),
            accepted: best.accepted,
            rejected: best.rejected,
            reps: opts.reps,
            best_wall_s: best.wall_s,
            req_per_sec: best.accepted as f64 / wall,
            mkeys_per_sec: best.keys_completed as f64 / wall / 1e6,
            p50_us: pct_us(&best.latencies_ns, 0.50),
            p99_us: pct_us(&best.latencies_ns, 0.99),
            p999_us: pct_us(&best.latencies_ns, 0.999),
            mean_batch_requests: if stats.batches == 0 {
                0.0
            } else {
                stats.completed as f64 / stats.batches as f64
            },
            scratch_reallocations: stats.scratch_reallocations,
            verified: true, // run_rep asserts identity on rep 0, unconditionally
        }
    })
}

/// Run the whole grid: every mix × {coalesced, baseline} at saturation,
/// plus fixed-rate latency cells for the small_u32 mix.
pub fn run_grid(opts: &SvcBenchOpts, progress: bool) -> Vec<SvcRow> {
    let mut rows = Vec::new();
    let emit = |row: SvcRow, rows: &mut Vec<SvcRow>| {
        if progress {
            println!(
                "{:12} {:9} {:>10} req={:<5} acc={:<5} rej={:<4} best {:>8.4}s {:>9.0} req/s {:>8.2} Mkeys/s p50 {:>8.1}us p99 {:>9.1}us batch {:>6.1}",
                row.mix, row.mode, row.load, row.requests, row.accepted, row.rejected,
                row.best_wall_s, row.req_per_sec, row.mkeys_per_sec, row.p50_us, row.p99_us,
                row.mean_batch_requests
            );
        }
        rows.push(row);
    };
    for mix in MIXES {
        for row in run_cell_pair(mix, Load::Saturate, opts) {
            emit(row, &mut rows);
        }
    }
    let small = &MIXES[0];
    for &rate in &opts.rates {
        for row in run_cell_pair(small, Load::Rate(rate), opts) {
            emit(row, &mut rows);
        }
    }
    rows
}

fn find_row<'a>(rows: &'a [SvcRow], mix: &str, mode: &str, load: &str) -> &'a SvcRow {
    rows.iter()
        .find(|r| r.mix == mix && r.mode == mode && r.load == load)
        .unwrap_or_else(|| panic!("missing row {mix}/{mode}/{load}"))
}

/// The relations the PR claims, machine-relative. Coalescing must beat
/// the per-request baseline on sustained throughput for the small-request
/// mixes — the regime it exists for. (The large mix is reported but not
/// asserted: requests that big already amortise their own fixed costs.)
/// `tol` > 1 loosens the comparisons for noisy CI runners.
pub fn check_assertions(rows: &[SvcRow], tol: f64) -> Vec<String> {
    let mut failures = Vec::new();
    for mix in ["small_u32", "small_pairs"] {
        let co = find_row(rows, mix, "coalesced", "saturate");
        let ba = find_row(rows, mix, "baseline", "saturate");
        if co.req_per_sec * tol < ba.req_per_sec {
            failures.push(format!(
                "coalesced vs baseline throughput ({mix}): {:.0} req/s vs {:.0} req/s (tol {tol})",
                co.req_per_sec, ba.req_per_sec
            ));
        }
    }
    for r in rows {
        if r.requests > 0 && !r.verified {
            failures.push(format!(
                "row {}/{}/{} was never verified",
                r.mix, r.mode, r.load
            ));
        }
    }
    failures
}

/// One JSON number: plain decimal, never NaN/Inf.
fn num(x: f64) -> String {
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{:.1}", x)
    } else {
        format!("{:.6}", x)
    }
}

fn proc_field(path: &str, key: &str) -> Option<String> {
    let text = std::fs::read_to_string(path).ok()?;
    text.lines()
        .find(|l| l.starts_with(key))
        .and_then(|l| l.split(':').nth(1))
        .map(|v| v.trim().to_string())
}

/// Render the rows as the committed JSON artifact, with the same honest
/// machine block as `BENCH_real_sorts.json`.
pub fn to_json(rows: &[SvcRow], opts: &SvcBenchOpts) -> String {
    let cores = available_cores();
    let cpu = proc_field("/proc/cpuinfo", "model name").unwrap_or_else(|| "unknown".to_string());
    let mem_kb: u64 = proc_field("/proc/meminfo", "MemTotal")
        .and_then(|v| v.split_whitespace().next().and_then(|x| x.parse().ok()))
        .unwrap_or(0);
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"service\",\n");
    json.push_str("  \"metric\": \"sustained sort-service throughput (requests/s, best of reps) and completion latency (us, from intended arrival)\",\n");
    json.push_str("  \"machine\": {\n");
    json.push_str(&format!("    \"cpu\": \"{}\",\n", cpu.replace('"', "'")));
    json.push_str(&format!("    \"cores_available\": {},\n", cores));
    json.push_str(&format!("    \"mem_gb\": {},\n", mem_kb / (1 << 20)));
    if cores <= 2 {
        json.push_str(&format!(
            "    \"note\": \"{} core(s): the load generator, the executor, and the engine timeshare the same CPU, so the coalescing win measured here comes from amortised per-request fixed costs (executor wake-ups, locking, per-sort setup), not from parallel scaling\",\n",
            cores
        ));
    }
    json.push_str("    \"os\": \"linux\"\n  },\n");
    json.push_str(
        "  \"grid_note\": \"each mix runs coalesced (the batcher) and baseline (coalescing off: one request per batch, served immediately, no flush-window wait) through the identical service machinery; saturate rows submit the whole request set as fast as admission allows and their latency percentiles are queue-depth-dominated (reported for completeness only); rate rows use a fixed open-loop arrival schedule with load shedding and measure latency from intended arrival time; every request's reply on rep 0 is verified byte-identical to a solo ccsort-parallel sort; large_u32 is the batcher's honest worst case (big requests amortise their own fixed costs and the rid tag lane is pure overhead) and carries no assertion\",\n",
    );
    json.push_str(&format!("  \"reps\": {},\n", opts.reps));
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"mix\": \"{}\", \"mode\": \"{}\", \"load\": \"{}\", \"requests\": {}, \"accepted\": {}, \"rejected\": {}, \"reps\": {}, \"best_wall_s\": {}, \"req_per_sec\": {}, \"mkeys_per_sec\": {}, \"p50_us\": {}, \"p99_us\": {}, \"p999_us\": {}, \"mean_batch_requests\": {}, \"scratch_reallocations\": {}, \"verified\": {}}}{}\n",
            r.mix,
            r.mode,
            r.load,
            r.requests,
            r.accepted,
            r.rejected,
            r.reps,
            num(r.best_wall_s),
            num(r.req_per_sec),
            num(r.mkeys_per_sec),
            num(r.p50_us),
            num(r.p99_us),
            num(r.p999_us),
            num(r.mean_batch_requests),
            r.scratch_reallocations,
            r.verified,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    json
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_are_deterministic_and_in_range() {
        let mix = &MIXES[0];
        let a = request_specs(mix, 1);
        let b = request_specs(mix, 1);
        assert_eq!(a.len(), mix.requests);
        assert!(
            a.iter().zip(&b).all(|(x, y)| x == y),
            "specs must be deterministic"
        );
        assert!(a
            .iter()
            .all(|&(n, _)| (mix.min_keys..=mix.max_keys).contains(&n)));
    }

    #[test]
    fn percentiles_pick_the_right_samples() {
        let ns: Vec<u64> = (1..=1000).map(|i| i * 1000).collect();
        assert!((pct_us(&ns, 0.50) - 500.0).abs() < 2.0);
        assert!((pct_us(&ns, 0.99) - 990.0).abs() < 2.0);
        assert_eq!(pct_us(&[], 0.5), 0.0);
    }

    #[test]
    fn tiny_grid_rows_resolve_and_verify() {
        // A micro-grid: enough to exercise both modes, both load shapes,
        // and the rep-0 verification path end to end.
        let opts = SvcBenchOpts {
            scale: 100,
            reps: 1,
            rates: vec![50_000],
        };
        let rows = run_grid(&opts, false);
        assert_eq!(rows.len(), MIXES.len() * 2 + 2);
        assert!(
            rows.iter().all(|r| r.verified),
            "every cell must verify rep 0"
        );
        assert!(rows.iter().all(|r| r.accepted > 0));
        let failures = check_assertions(&rows, 1e6);
        assert!(failures.is_empty(), "{failures:?}");
        let json = to_json(&rows, &opts);
        assert!(json.contains("\"bench\": \"service\""));
        assert!(json.contains("small_pairs"));
    }
}
