//! `realbench` CLI — run the real-hardware sort grid and emit
//! `BENCH_real_sorts.json`. See [`ccsort_bench::realbench`] for the grid
//! and measurement discipline.
//!
//! ```text
//! realbench [--out <path>] [--quick] [--assert] [--tol <factor>]
//! ```
//!
//! `--quick` runs the pruned CI grid (1M keys, {1, max} threads);
//! `--assert` exits non-zero if the PR's internal performance relations do
//! not hold (coalescing beats the simple path, the full stack beats rayon
//! on uniform u32, stealing beats static partitioning on zipf, padded
//! histogram counters are no slower than unpadded); `--tol` loosens those
//! comparisons by a multiplicative factor for noisy CI runners.

use std::io::Write;
use std::time::Instant;

use ccsort_bench::realbench::{check_assertions, run_grid, to_json, RealBenchOpts};

fn usage() -> ! {
    eprintln!("usage: realbench [--out <path>] [--quick] [--assert] [--tol <factor>]");
    std::process::exit(2);
}

fn main() {
    let mut out_path = String::from("BENCH_real_sorts.json");
    let mut quick = false;
    let mut check = false;
    let mut tol = 1.0f64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out_path = args.next().unwrap_or_else(|| usage()),
            "--quick" => quick = true,
            "--assert" => check = true,
            "--tol" => {
                tol = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&t| t >= 1.0)
                    .unwrap_or_else(|| usage())
            }
            _ => usage(),
        }
    }

    let opts = if quick { RealBenchOpts::quick() } else { RealBenchOpts::full() };
    let t0 = Instant::now();
    let rows = run_grid(&opts, true);
    let json = to_json(&rows, &opts);
    let mut f = std::fs::File::create(&out_path)
        .unwrap_or_else(|e| panic!("cannot create {out_path}: {e}"));
    f.write_all(json.as_bytes()).expect("write json");
    println!("# wrote {} rows to {out_path} in {:.1}s", rows.len(), t0.elapsed().as_secs_f64());

    if check {
        let failures = check_assertions(&rows, &opts, tol);
        if failures.is_empty() {
            println!("# all performance relations hold (tol {tol})");
        } else {
            for f in &failures {
                eprintln!("ASSERTION FAILED: {f}");
            }
            std::process::exit(1);
        }
    }
}
