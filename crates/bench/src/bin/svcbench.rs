//! `svcbench` CLI — run the sorting-service load grid and emit
//! `BENCH_service.json`. See [`ccsort_bench::svcbench`] for the grid and
//! measurement discipline.
//!
//! ```text
//! svcbench [--out <path>] [--quick] [--assert] [--tol <factor>]
//!          [--rate <req_per_s>]... [--reps <n>]
//! ```
//!
//! `--quick` runs the CI grid (quarter-size request sets, one latency
//! rate); `--assert` exits non-zero if coalescing does not beat the
//! per-request baseline on sustained throughput for the small-request
//! mixes, or if any cell skipped verification; `--tol` loosens the
//! throughput comparison by a multiplicative factor for noisy CI runners;
//! `--rate` (repeatable) replaces the fixed-arrival latency rates.

use std::io::Write;
use std::time::Instant;

use ccsort_bench::svcbench::{check_assertions, run_grid, to_json, SvcBenchOpts};

fn usage() -> ! {
    eprintln!(
        "usage: svcbench [--out <path>] [--quick] [--assert] [--tol <factor>] \
         [--rate <req_per_s>]... [--reps <n>]"
    );
    std::process::exit(2);
}

fn main() {
    let mut out_path = String::from("BENCH_service.json");
    let mut quick = false;
    let mut check = false;
    let mut tol = 1.0f64;
    let mut rates: Vec<u64> = Vec::new();
    let mut reps: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out_path = args.next().unwrap_or_else(|| usage()),
            "--quick" => quick = true,
            "--assert" => check = true,
            "--tol" => {
                tol = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&t| t >= 1.0)
                    .unwrap_or_else(|| usage())
            }
            "--rate" => rates.push(
                args.next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&r| r > 0)
                    .unwrap_or_else(|| usage()),
            ),
            "--reps" => {
                reps = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&r| r >= 1)
                        .unwrap_or_else(|| usage()),
                )
            }
            _ => usage(),
        }
    }

    let mut opts = if quick {
        SvcBenchOpts::quick()
    } else {
        SvcBenchOpts::full()
    };
    if !rates.is_empty() {
        opts.rates = rates;
    }
    if let Some(r) = reps {
        opts.reps = r;
    }

    let t0 = Instant::now();
    let rows = run_grid(&opts, true);
    let json = to_json(&rows, &opts);
    let mut f = std::fs::File::create(&out_path)
        .unwrap_or_else(|e| panic!("cannot create {out_path}: {e}"));
    f.write_all(json.as_bytes()).expect("write json");
    println!(
        "# wrote {} rows to {out_path} in {:.1}s",
        rows.len(),
        t0.elapsed().as_secs_f64()
    );

    if check {
        let failures = check_assertions(&rows, tol);
        if failures.is_empty() {
            println!("# all service performance relations hold (tol {tol})");
        } else {
            for f in &failures {
                eprintln!("ASSERTION FAILED: {f}");
            }
            std::process::exit(1);
        }
    }
}
