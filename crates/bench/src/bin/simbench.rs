//! `simbench` — measure the simulator's own throughput and emit
//! `BENCH_simulator.json`, the perf trajectory future PRs regress against.
//!
//! ```text
//! simbench [--out <path>] [--quick]
//! ```
//!
//! The grid is the one behind the `machine_hotpath`/`machine_scattered`
//! criterion benches: {streamed, scattered, permutation} × race detector
//! {off, on} × p ∈ {1, 16, 64, 128}, each measured twice — with the fast
//! path on (current code: streamed runs plus the batched scattered walk)
//! and off (the per-line reference walk, i.e. the pre-optimization cost
//! model). The metric is simulated key touches per wall-clock second; the
//! `speedup` field of each fast-path row is its throughput over the
//! matching reference row, so the "≥ 2× on streamed-heavy programs" and
//! "≥ 2× on the batched scattered walk" claims are directly readable from
//! the file. A final pair of large-p rows re-runs the permutation program
//! at p = 128 under the imprecise directory representations
//! (limited-pointer and coarse-vector; see `DirectoryMode`). Their
//! simulated time matches full-map — the program's writes are
//! exclusive-owner handoffs, which every representation tracks precisely —
//! so the rows isolate the host-side cost of the representation's
//! bookkeeping in the hot loop. A final block of topology × protocol rows
//! re-runs the permutation program at p = 64 under the mesh and fat-tree
//! interconnects and the Dragon update protocol (`topology`/`protocol`
//! fields), tracking the host-side cost of the alternative hop
//! computations and the update walk.
//!
//! The JSON is written by hand rather than through serde so the format is
//! identical on every toolchain the repo builds against.

use std::io::Write;
use std::time::Instant;

use ccsort_bench::hotpath::{run_cell_modes, HotpathResult, Program, GRID_PROCS};
use ccsort_machine::{DirectoryMode, InterconnectKind, ProtocolMode};

fn usage() -> ! {
    eprintln!("usage: simbench [--out <path>] [--quick]");
    std::process::exit(2);
}

/// One JSON-escaped f64: plain decimal, never NaN/Inf (the inputs are
/// counts and positive wall-clock times).
fn num(x: f64) -> String {
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{:.1}", x)
    } else {
        format!("{:.6}", x)
    }
}

fn main() {
    let mut out_path = String::from("BENCH_simulator.json");
    let mut quick = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out_path = args.next().unwrap_or_else(|| usage()),
            "--quick" => quick = true,
            _ => usage(),
        }
    }

    // Sized so the full grid stays in the tens of seconds on one core while
    // each cell still runs long enough (tens of ms) to time reliably. The
    // streamed program simulates an order of magnitude more keys per host
    // second than the scattered one, so it gets proportionally more passes.
    let n = 1 << 18;

    let passes_for = |program: Program| match program {
        Program::Streamed => {
            if quick {
                64
            } else {
                256
            }
        }
        Program::Scattered | Program::Permutation => {
            if quick {
                4
            } else {
                16
            }
        }
    };

    let t0 = Instant::now();
    let mut rows: Vec<(HotpathResult, f64)> = Vec::new();
    // Measure one (program, p, race, dir) cell both ways and keep each
    // variant's best of three interleaved reps: single-core turbo/thermal
    // drift otherwise biases whichever variant happens to run later.
    let mut measure = |program: Program,
                       p: usize,
                       race: bool,
                       dir: DirectoryMode,
                       topo: InterconnectKind,
                       proto: ProtocolMode| {
        let passes = passes_for(program);
        let run =
            |fast: bool| run_cell_modes(program, p, race, fast, n, passes, dir, topo, proto);
        let mut slow = run(false);
        let mut fast = run(true);
        for _ in 0..2 {
            let s = run(false);
            if s.keys_per_sec > slow.keys_per_sec {
                slow = s;
            }
            let f = run(true);
            if f.keys_per_sec > fast.keys_per_sec {
                fast = f;
            }
        }
        assert_eq!(
            fast.simulated_ns, slow.simulated_ns,
            "fast path must be exact: {} race={race} p={p} dir={dir} topo={topo} proto={proto}",
            program.name()
        );
        let speedup = fast.keys_per_sec / slow.keys_per_sec.max(1e-9);
        println!(
            "{:9}  race={:5}  p={:3}  dir={:20}  topo={:12}  proto={:13}  ref {:>10.0} keys/s  fast {:>10.0} keys/s  speedup {:>5.2}x",
            program.name(),
            race,
            p,
            dir.to_string(),
            topo.to_string(),
            proto.to_string(),
            slow.keys_per_sec,
            fast.keys_per_sec,
            speedup
        );
        rows.push((slow, 0.0));
        rows.push((fast, speedup));
    };

    let (cube, inv) = (InterconnectKind::Hypercube, ProtocolMode::Invalidate);
    for program in [Program::Streamed, Program::Scattered, Program::Permutation] {
        for race in [false, true] {
            for p in GRID_PROCS {
                measure(program, p, race, DirectoryMode::FullMap, cube, inv);
            }
        }
    }
    // Large-p directory rows: the scattered-write-heavy program under the
    // imprecise sharer-set representations.
    for dir in [DirectoryMode::LimitedPointer(8), DirectoryMode::CoarseVector(8)] {
        measure(Program::Permutation, 128, false, dir, cube, inv);
    }
    // Topology × protocol rows: the same scattered-write-heavy program at
    // the paper machine's p = 64 under the alternative interconnects and
    // the Dragon update protocol. Simulated time differs from the default
    // rows here (that is the point); the fast/reference exactness assert
    // still holds within each row pair.
    for (topo, proto) in [
        (InterconnectKind::Mesh2D, ProtocolMode::Invalidate),
        (InterconnectKind::FatTree(4), ProtocolMode::Invalidate),
        (InterconnectKind::Hypercube, ProtocolMode::DragonUpdate),
        (InterconnectKind::Mesh2D, ProtocolMode::DragonUpdate),
    ] {
        measure(Program::Permutation, 64, false, DirectoryMode::FullMap, topo, proto);
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"simulator\",\n");
    json.push_str("  \"metric\": \"simulated key touches per wall-clock second\",\n");
    json.push_str(&format!("  \"elements_per_cell\": {},\n", n));
    json.push_str("  \"results\": [\n");
    for (i, (r, speedup)) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"program\": \"{}\", \"race_detector\": {}, \"p\": {}, \"directory\": \"{}\", \"topology\": \"{}\", \"protocol\": \"{}\", \"fast_path\": {}, \"keys\": {}, \"wall_s\": {}, \"keys_per_sec\": {}, \"simulated_ns\": {}{}}}{}\n",
            r.program.name(),
            r.race_detector,
            r.p,
            r.dir,
            r.topo,
            r.proto,
            r.fast_path,
            r.keys,
            num(r.wall_s),
            num(r.keys_per_sec),
            num(r.simulated_ns),
            if r.fast_path { format!(", \"speedup_vs_reference\": {}", num(*speedup)) } else { String::new() },
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");

    let mut f = std::fs::File::create(&out_path)
        .unwrap_or_else(|e| panic!("cannot create {out_path}: {e}"));
    f.write_all(json.as_bytes()).expect("write json");
    println!("# wrote {} rows to {out_path} in {:.1}s", rows.len(), t0.elapsed().as_secs_f64());
}
