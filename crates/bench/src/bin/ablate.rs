//! `ablate` — mechanism on/off studies for the simulator's design choices.
//!
//! ```text
//! cargo run --release -p ccsort-bench --bin ablate [-- n p scale]
//! ```
//!
//! DESIGN.md attributes each of the paper's headline effects to a specific
//! modelled mechanism. This binary re-runs five radix-sort variants
//! (the most mechanism-sensitive programs) with one mechanism disabled at a
//! time and prints how each variant's time moves — evidence that the
//! reproduced shapes come from the intended causes and not from tuning
//! accidents:
//!
//! * **no-retry** — scattered remote writes pay the plain scattered stall
//!   instead of the NACK/retry storm (`write_stall_scattered_remote`);
//!   expected: original CC-SAS recovers, others unchanged.
//! * **no-contention** — controller occupancy priced at zero; expected:
//!   CC-SAS recovers further, bulk-transfer models barely move.
//! * **no-tlb** — TLB refills free; expected: CC-SAS (whose permutation
//!   walks 2^r scattered pages) speeds up most.
//! * **virtual-cache** — disable physically-indexed set selection;
//!   expected: staging-buffer cursors alias on scaled machines
//!   (pathological slowdowns that a real OS's page scatter prevents).
//! * **free-messages** — software overheads of MPI/SHMEM set to zero;
//!   expected: MPI/SHMEM gain, CC-SAS untouched, small sizes most of all.
//!
//! A second table swaps the machine's *mode* axes instead of zeroing a
//! mechanism: interconnect topology (hypercube → 2-D mesh → fat-tree) and
//! coherence protocol (invalidate → Dragon update), against the same
//! (hypercube, invalidate) baseline. The hypercube-vs-mesh column pair and
//! the invalidate-vs-update row pair put both headline comparisons side by
//! side in one artefact.

use ccsort_algos::dist::{generate, Dist, KEY_BITS};
use ccsort_algos::radix;
use ccsort_machine::{InterconnectKind, Machine, MachineConfig, Placement, ProtocolMode};
use ccsort_models::MpiMode;

#[derive(Clone, Copy)]
enum Variant {
    Ccsas,
    CcsasNew,
    Mpi,
    Shmem,
    ShmemPut,
}

const VARIANTS: [(Variant, &str); 5] = [
    (Variant::Ccsas, "CC-SAS"),
    (Variant::CcsasNew, "CC-SAS-NEW"),
    (Variant::Mpi, "MPI(NEW)"),
    (Variant::Shmem, "SHMEM"),
    (Variant::ShmemPut, "SHMEM(PUT)"),
];

fn run(cfg: MachineConfig, variant: Variant, n: usize, p: usize, r: u32) -> f64 {
    let mut m = Machine::new(cfg);
    let a = m.alloc(n, Placement::Partitioned { parts: p }, "k0");
    let b = m.alloc(n, Placement::Partitioned { parts: p }, "k1");
    let input = generate(Dist::Gauss, n, p, r, 271828);
    m.raw_mut(a).copy_from_slice(&input);
    let out = match variant {
        Variant::Ccsas => radix::ccsas::sort(&mut m, [a, b], n, r, KEY_BITS),
        Variant::CcsasNew => radix::ccsas_new::sort(&mut m, [a, b], n, r, KEY_BITS),
        Variant::Mpi => radix::mpi::sort(&mut m, MpiMode::Direct, [a, b], n, r, KEY_BITS),
        Variant::Shmem => radix::shmem::sort(&mut m, [a, b], n, r, KEY_BITS),
        Variant::ShmemPut => radix::shmem_put::sort(&mut m, [a, b], n, r, KEY_BITS),
    };
    let mut expect = input;
    expect.sort_unstable();
    assert_eq!(m.raw(out), &expect[..], "ablated run must still sort");
    m.parallel_time()
}

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(1 << 19);
    let p: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(32);
    let scale: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    let r = 8;

    let base_cfg = || MachineConfig::origin2000(p).scaled_down(scale);

    let ablations: Vec<(&str, MachineConfig)> = vec![
        ("baseline", base_cfg()),
        ("no-retry", {
            let mut c = base_cfg();
            c.write_stall_scattered_remote = c.write_stall_scattered;
            c
        }),
        ("no-contention", {
            let mut c = base_cfg();
            c.ctrl_occ_ns = 0.0;
            c.data_occ_ns = 0.0;
            c
        }),
        ("no-tlb", {
            let mut c = base_cfg();
            c.tlb_miss_ns = 0.0;
            c
        }),
        ("virtual-cache", {
            let mut c = base_cfg();
            c.physical_cache_indexing = false;
            c
        }),
        ("free-messages", {
            let mut c = base_cfg();
            c.mpi_send_overhead_ns = 0.0;
            c.mpi_recv_overhead_ns = 0.0;
            c.mpi_staged_extra_ns = 0.0;
            c.shmem_overhead_ns = 0.0;
            c
        }),
    ];

    println!("radix sort ablations: n = {n}, p = {p}, machine scale 1/{scale}, radix {r}");
    println!("(cell = time relative to that variant's baseline; < 1.0 means the mechanism was costing time)\n");
    print!("{:>16}", "ablation");
    for (_, name) in VARIANTS {
        print!(" {name:>12}");
    }
    println!();

    let baselines: Vec<f64> =
        VARIANTS.iter().map(|&(v, _)| run(base_cfg(), v, n, p, r)).collect();
    for (label, cfg) in &ablations {
        print!("{label:>16}");
        for (k, &(v, _)) in VARIANTS.iter().enumerate() {
            let t = run(cfg.clone(), v, n, p, r);
            print!(" {:>12.3}", t / baselines[k]);
        }
        println!();
    }

    println!("\nabsolute baseline times (ms):");
    for (k, (_, name)) in VARIANTS.iter().enumerate() {
        println!("{name:>12}: {:>10.2}", baselines[k] / 1e6);
    }

    // Mode ablations: swap the interconnect / coherence-protocol layer
    // instead of zeroing a cost. Baseline row is (hypercube, invalidate) —
    // the default machine above — so every cell reads as "time under this
    // mode relative to the paper machine".
    let modes: [(&str, InterconnectKind, ProtocolMode); 5] = [
        ("hypercube+inv", InterconnectKind::Hypercube, ProtocolMode::Invalidate),
        ("mesh+inv", InterconnectKind::Mesh2D, ProtocolMode::Invalidate),
        ("fat-tree:4+inv", InterconnectKind::FatTree(4), ProtocolMode::Invalidate),
        ("hypercube+upd", InterconnectKind::Hypercube, ProtocolMode::DragonUpdate),
        ("mesh+upd", InterconnectKind::Mesh2D, ProtocolMode::DragonUpdate),
    ];
    println!("\ntopology x protocol modes (same relative-to-baseline cells):");
    print!("{:>16}", "mode");
    for (_, name) in VARIANTS {
        print!(" {name:>12}");
    }
    println!();
    for (label, topo, proto) in modes {
        let cfg = base_cfg().with_interconnect(topo).with_protocol(proto);
        print!("{label:>16}");
        for (k, &(v, _)) in VARIANTS.iter().enumerate() {
            let t = run(cfg.clone(), v, n, p, r);
            print!(" {:>12.3}", t / baselines[k]);
        }
        println!();
    }
}
