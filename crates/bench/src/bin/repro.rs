//! `repro` — regenerate every table and figure of Shan & Singh (SC 1999).
//!
//! ```text
//! repro [OPTIONS] <ARTEFACT>...
//!
//! ARTEFACT: table1 | fig1 | fig2 | fig3 | fig4 | fig5 | fig6 | fig7 |
//!           fig8 | fig9 | fig10 | table2 | predict | tradeoff | putget |
//!           phases | sampling | p1024 | all | quick
//!
//! `p1024` is a post-paper artefact (ROADMAP item 2): the streamed program
//! set at p = 1024. It is not part of `all`/`quick`, keeping the golden
//! byte-diff over the default artefact set unchanged.
//!
//! OPTIONS:
//!   --simkeys N      cap on simulated keys per run (default 2097152); each
//!                    size label runs at scale = label/N (min 1)
//!   --sizes A,B,..   size labels to run (subset of 1M,4M,16M,64M,256M)
//!   --procs A,B,..   processor counts (default 16,32,64,128,256)
//!   --seed N         RNG seed (default 271828)
//!   --json FILE      dump all generated points as JSON
//!   --verbose        per-processor detail in breakdown figures
//! ```
//!
//! Default scale 16 simulates 64K–16M keys on a 1/16-capacity machine,
//! preserving every dataset-to-capacity ratio of the full-size runs.

use std::io::Write;

use ccsort_bench::figures;
use ccsort_bench::runner::{Runner, RunnerOpts, SIZE_LABELS};

fn usage() -> ! {
    eprintln!(
        "usage: repro [--simkeys N] [--sizes 1M,4M,...] [--procs 16,32,64] [--seed N] \
         [--json FILE] [--verbose] <table1|fig1..fig10|table2|tradeoff|putget|p1024|all|quick>..."
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }

    let mut opts = RunnerOpts::default();
    let mut artefacts: Vec<String> = Vec::new();
    let mut json_path: Option<String> = None;

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--simkeys" => {
                let v = it.next().unwrap_or_else(|| usage());
                opts.max_sim_n = v.parse().unwrap_or_else(|_| usage());
                assert!(opts.max_sim_n.is_power_of_two(), "--simkeys must be a power of two");
            }
            "--seed" => {
                let v = it.next().unwrap_or_else(|| usage());
                opts.seed = v.parse().unwrap_or_else(|_| usage());
            }
            "--sizes" => {
                let v = it.next().unwrap_or_else(|| usage());
                opts.sizes = v
                    .split(',')
                    .map(|s| {
                        SIZE_LABELS.iter().position(|(l, _)| *l == s).unwrap_or_else(|| {
                            eprintln!("unknown size label {s}");
                            usage()
                        })
                    })
                    .collect();
            }
            "--procs" => {
                let v = it.next().unwrap_or_else(|| usage());
                opts.procs = v.split(',').map(|s| s.parse().unwrap_or_else(|_| usage())).collect();
            }
            "--json" => {
                json_path = Some(it.next().unwrap_or_else(|| usage()));
            }
            "--verbose" => opts.verbose = true,
            a if a.starts_with("--") => usage(),
            a => artefacts.push(a.to_string()),
        }
    }
    if artefacts.is_empty() {
        usage();
    }
    if artefacts.iter().any(|a| a == "quick") {
        let v = opts.verbose;
        opts = RunnerOpts::quick();
        opts.verbose = v;
    }
    assert!(
        opts.procs.iter().all(|&p| (1..=ccsort_machine::MAX_PROCS).contains(&p)),
        "processor counts must be in 1..={}",
        ccsort_machine::MAX_PROCS
    );

    println!(
        "# machine: Origin 2000 preset; per-size scale = label/{} (min 1); sizes {:?}; procs {:?}",
        opts.max_sim_n,
        opts.sizes.iter().map(|&i| SIZE_LABELS[i].0).collect::<Vec<_>>(),
        opts.procs
    );

    let mut r = Runner::new(opts);
    for artefact in &artefacts {
        match artefact.as_str() {
            "table1" => figures::table1(&mut r),
            "fig1" => figures::fig1(&mut r),
            "fig2" => figures::fig2(&mut r),
            "fig3" => figures::fig3(&mut r),
            "fig4" => figures::fig4(&mut r),
            "fig5" => figures::fig5(&mut r),
            "fig6" => figures::fig6(&mut r),
            "fig7" => figures::fig7(&mut r),
            "fig8" => figures::fig8(&mut r),
            "fig9" => figures::fig9(&mut r),
            "fig10" => figures::fig10(&mut r),
            "table2" | "table3" => figures::table2_and_3(&mut r),
            "predict" => figures::predict(&mut r),
            "tradeoff" => figures::tradeoff(&mut r),
            "putget" => figures::putget(&mut r),
            "phases" => figures::phases(&mut r),
            "sampling" => figures::sampling(&mut r),
            // New artefact, not in `all`/`quick` (golden stays byte-stable).
            "p1024" => figures::p1024(&mut r),
            "all" | "quick" => {
                figures::table1(&mut r);
                figures::fig1(&mut r);
                figures::fig2(&mut r);
                figures::fig3(&mut r);
                figures::fig4(&mut r);
                figures::fig5(&mut r);
                figures::fig6(&mut r);
                figures::fig7(&mut r);
                figures::fig8(&mut r);
                figures::fig9(&mut r);
                figures::fig10(&mut r);
                figures::table2_and_3(&mut r);
                figures::predict(&mut r);
                figures::tradeoff(&mut r);
                figures::phases(&mut r);
                figures::sampling(&mut r);
            }
            other => {
                eprintln!("unknown artefact {other}");
                usage();
            }
        }
    }

    if let Some(path) = json_path {
        let mut f = std::fs::File::create(&path).expect("create json output");
        serde_json::to_writer_pretty(&mut f, &r.points).expect("serialise points");
        writeln!(f).ok();
        println!("\n# wrote {} points to {path}", r.points.len());
    }
}
