//! `sortbench` — generate, sort and verify files of binary u32/u64 keys
//! with the real threaded library. A self-contained driver for wall-clock
//! benchmarking (e.g. under `hyperfine`) and for sanity-checking the sorts
//! on data that lives outside the process.
//!
//! ```text
//! sortbench gen <file> <n> [dist] [seed]     # write n little-endian u32 keys
//! sortbench sort <file> [algo]               # sort the file in place
//! sortbench check <file>                     # verify the file is sorted
//!
//! dist: gauss | random | zero | bucket | stagger | half | remote | local
//! algo: par-radix | par-sample | msd | merge | seq-radix | msg | shmem | std
//! ```

use std::io::{Read, Write};
use std::time::Instant;

use ccsort_algos::dist::{generate, Dist};
use ccsort_parallel::msg::radix_sort_msg;
use ccsort_parallel::sym::radix_sort_shmem;
use ccsort_parallel::{
    par_merge_sort, par_msd_radix_sort, par_radix_sort, par_sample_sort, seq_radix_sort,
};

fn usage() -> ! {
    eprintln!(
        "usage:\n  sortbench gen <file> <n> [dist] [seed]\n  sortbench sort <file> [algo]\n  sortbench check <file>\n\
         \nalgo: par-radix | par-sample | msd | merge | seq-radix | msg | shmem | std"
    );
    std::process::exit(2);
}

fn read_keys(path: &str) -> Vec<u32> {
    let mut bytes = Vec::new();
    std::fs::File::open(path)
        .unwrap_or_else(|e| {
            eprintln!("cannot open {path}: {e}");
            std::process::exit(1);
        })
        .read_to_end(&mut bytes)
        .expect("read file");
    assert!(bytes.len() % 4 == 0, "file length must be a multiple of 4 bytes");
    bytes.chunks_exact(4).map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect()
}

fn write_keys(path: &str, keys: &[u32]) {
    let mut bytes = Vec::with_capacity(keys.len() * 4);
    for k in keys {
        bytes.extend_from_slice(&k.to_le_bytes());
    }
    std::fs::File::create(path).expect("create file").write_all(&bytes).expect("write file");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("gen") => {
            let path = args.get(1).unwrap_or_else(|| usage());
            let n: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage());
            let dist = args
                .get(3)
                .map(|s| Dist::parse(s).unwrap_or_else(|| usage()))
                .unwrap_or(Dist::Random);
            let seed: u64 = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(271828);
            let t = Instant::now();
            let keys = generate(dist, n, 1, 8, seed);
            write_keys(path, &keys);
            println!(
                "wrote {n} {} keys to {path} in {:.1} ms",
                dist.name(),
                t.elapsed().as_secs_f64() * 1e3
            );
        }
        Some("sort") => {
            let path = args.get(1).unwrap_or_else(|| usage());
            let algo = args.get(2).map(String::as_str).unwrap_or("par-radix");
            let mut keys = read_keys(path);
            let t = Instant::now();
            match algo {
                "par-radix" => par_radix_sort(&mut keys),
                "par-sample" => par_sample_sort(&mut keys),
                "msd" => par_msd_radix_sort(&mut keys),
                "merge" => par_merge_sort(&mut keys),
                "seq-radix" => seq_radix_sort(&mut keys, 8),
                "msg" => radix_sort_msg(&mut keys, rayon::current_num_threads().max(2), 8),
                "shmem" => radix_sort_shmem(&mut keys, rayon::current_num_threads().max(2), 8),
                "std" => keys.sort_unstable(),
                other => {
                    eprintln!("unknown algorithm {other}");
                    usage();
                }
            }
            let elapsed = t.elapsed().as_secs_f64();
            write_keys(path, &keys);
            println!(
                "sorted {} keys with {algo} in {:.1} ms ({:.1} Mkeys/s)",
                keys.len(),
                elapsed * 1e3,
                keys.len() as f64 / elapsed / 1e6
            );
        }
        Some("check") => {
            let path = args.get(1).unwrap_or_else(|| usage());
            let keys = read_keys(path);
            match keys.windows(2).position(|w| w[0] > w[1]) {
                None => println!("{path}: sorted ({} keys)", keys.len()),
                Some(i) => {
                    eprintln!("{path}: NOT sorted at index {i}: {} > {}", keys[i], keys[i + 1]);
                    std::process::exit(1);
                }
            }
        }
        _ => usage(),
    }
}
