//! Generators for every table and figure of the paper's evaluation section.
//!
//! Each function reruns the corresponding experiment grid on the simulator,
//! prints the same rows/series the paper reports and records the points in
//! the [`Runner`] for the JSON dump. The speedup figures use radix 8 for
//! radix sort and radix 11 for sample sort — the sizes the paper identifies
//! as good defaults — and measure speedup against the shared sequential
//! radix-sort baseline, exactly as the paper does.

//! Each grid's cells are mutually independent, so every generator first
//! *prefetches* its full experiment grid through [`Runner::prefetch`] —
//! filling the memo cache on a rayon pool — and then prints from the cache
//! in the original sequential order. Output (stdout and recorded JSON
//! points) is byte-identical to sequential execution.

use ccsort_algos::{Algorithm, Dist};
use rayon::prelude::*;

use crate::runner::{ExpKey, Runner};

/// Radix size used for radix-sort speedup figures.
const RADIX_R: u32 = 8;
/// Radix size used for sample-sort speedup figures (best for sample sort,
/// Section 4.3.2).
const SAMPLE_R: u32 = 11;

fn print_header(title: &str) {
    println!();
    println!("== {title} ==");
}

/// Generic speedup grid: one column per algorithm.
fn speedup_grid(r: &mut Runner, artefact: &str, title: &str, algs: &[(Algorithm, u32, &str)]) {
    print_header(title);
    print!("{:>6} {:>4}", "size", "P");
    for (_, _, name) in algs {
        print!(" {name:>12}");
    }
    println!();
    let sizes = r.opts.sizes.clone();
    let procs = r.opts.procs.clone();
    let seq_cells: Vec<(usize, Dist)> = sizes.iter().map(|&si| (si, Dist::Gauss)).collect();
    r.prefetch_seq(&seq_cells);
    let keys: Vec<ExpKey> = sizes
        .iter()
        .flat_map(|&si| {
            procs.iter().flat_map(move |&p| {
                algs.iter().map(move |&(alg, rad, _)| (alg, si, p, rad, Dist::Gauss))
            })
        })
        .collect();
    r.prefetch(&keys);
    for &si in &sizes {
        let label = r.opts.label_for(si);
        let seq = r.seq_ns(si, Dist::Gauss);
        for &p in &procs {
            print!("{label:>6} {p:>4}");
            for &(alg, rad, _) in algs {
                let speedup = seq / r.exp(alg, si, p, rad, Dist::Gauss).parallel_ns;
                r.record_key(artefact, (alg, si, p, rad, Dist::Gauss), Some(speedup), None);
                print!(" {speedup:>12.1}");
            }
            println!();
        }
    }
}

/// Table 1: sequential radix-sort execution time, Gauss keys.
pub fn table1(r: &mut Runner) {
    print_header("Table 1: sequential radix sort time (Gauss), simulated");
    println!("{:>6} {:>12} {:>8} {:>14} {:>18}", "size", "n (simulated)", "scale", "time (us)", "x scale (us)");
    let seq_cells: Vec<(usize, Dist)> = r.opts.sizes.iter().map(|&si| (si, Dist::Gauss)).collect();
    r.prefetch_seq(&seq_cells);
    for &si in &r.opts.sizes.clone() {
        let n = r.opts.n_for(si);
        let scale = r.opts.scale_for(si);
        let label = r.opts.label_for(si);
        let t = r.seq_ns(si, Dist::Gauss);
        println!("{:>6} {:>12} {:>8} {:>14.0} {:>18.0}", label, n, scale, t / 1e3, t * scale as f64 / 1e3);
    }
}

/// Figure 1: radix-sort speedups, SGI (staged) vs NEW (direct) MPI.
pub fn fig1(r: &mut Runner) {
    speedup_grid(
        r,
        "fig1",
        "Figure 1: radix sort speedups for the two MPI implementations",
        &[(Algorithm::RadixMpiStaged, RADIX_R, "SGI"), (Algorithm::RadixMpiDirect, RADIX_R, "NEW")],
    );
}

/// Figure 2: sample-sort speedups, SGI vs NEW MPI.
pub fn fig2(r: &mut Runner) {
    speedup_grid(
        r,
        "fig2",
        "Figure 2: sample sort speedups for the two MPI implementations",
        &[(Algorithm::SampleMpiStaged, SAMPLE_R, "SGI"), (Algorithm::SampleMpiDirect, SAMPLE_R, "NEW")],
    );
}

/// Figure 3: radix-sort speedups for the three models (+ CC-SAS-NEW).
pub fn fig3(r: &mut Runner) {
    speedup_grid(
        r,
        "fig3",
        "Figure 3: radix sort speedups for the three models",
        &[
            (Algorithm::RadixShmem, RADIX_R, "SHMEM"),
            (Algorithm::RadixCcsas, RADIX_R, "CC-SAS"),
            (Algorithm::RadixMpiDirect, RADIX_R, "MPI"),
            (Algorithm::RadixCcsasNew, RADIX_R, "CC-SAS-NEW"),
        ],
    );
}

/// Per-processor time breakdown printer (Figures 4 and 8). Prints the mean
/// across processors plus min/max of the totals.
fn breakdown_grid(r: &mut Runner, artefact: &str, title: &str, size_idx: usize, p: usize, algs: &[(Algorithm, u32, &str)]) {
    print_header(title);
    let label = r.opts.label_for(size_idx);
    println!("(size {label}, {p} processors; mean per-processor time, us)");
    println!(
        "{:>12} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "variant", "BUSY", "LMEM", "RMEM", "SYNC", "TOTAL"
    );
    let keys: Vec<ExpKey> =
        algs.iter().map(|&(alg, rad, _)| (alg, size_idx, p, rad, Dist::Gauss)).collect();
    r.prefetch(&keys);
    for &(alg, rad, name) in algs {
        let m = r.exp(alg, size_idx, p, rad, Dist::Gauss).mean_breakdown();
        println!(
            "{:>12} {:>10.0} {:>10.0} {:>10.0} {:>10.0} {:>10.0}",
            name,
            m.busy / 1e3,
            m.lmem / 1e3,
            m.rmem / 1e3,
            m.sync / 1e3,
            m.total() / 1e3
        );
        r.record_key(artefact, (alg, size_idx, p, rad, Dist::Gauss), None, None);
        if r.opts.verbose {
            let res = r.exp(alg, size_idx, p, rad, Dist::Gauss);
            for (pe, b) in res.per_pe.iter().enumerate() {
                println!(
                    "    pe{pe:<3} busy {:>9.0} lmem {:>9.0} rmem {:>9.0} sync {:>9.0}",
                    b.busy / 1e3,
                    b.lmem / 1e3,
                    b.rmem / 1e3,
                    b.sync / 1e3
                );
            }
        }
    }
}

/// Figure 4: radix-sort per-processor time breakdown (64M keys, 64 procs).
pub fn fig4(r: &mut Runner) {
    let si = breakdown_size(r);
    let p = breakdown_procs(r);
    breakdown_grid(
        r,
        "fig4",
        "Figure 4: time breakdown for radix sort",
        si,
        p,
        &[
            (Algorithm::RadixCcsas, RADIX_R, "CC-SAS"),
            (Algorithm::RadixCcsasNew, RADIX_R, "CC-SAS-NEW"),
            (Algorithm::RadixMpiDirect, RADIX_R, "MPI"),
            (Algorithm::RadixShmem, RADIX_R, "SHMEM"),
        ],
    );
}

/// Figure 8: sample-sort per-processor time breakdown (64M keys, 64 procs).
pub fn fig8(r: &mut Runner) {
    let si = breakdown_size(r);
    let p = breakdown_procs(r);
    breakdown_grid(
        r,
        "fig8",
        "Figure 8: time breakdown for sample sort",
        si,
        p,
        &[
            (Algorithm::SampleCcsas, SAMPLE_R, "CC-SAS"),
            (Algorithm::SampleMpiDirect, SAMPLE_R, "MPI"),
            (Algorithm::SampleShmem, SAMPLE_R, "SHMEM"),
        ],
    );
}

/// The 64M-key size index if available in the configured size set, else
/// the largest configured size.
fn breakdown_size(r: &Runner) -> usize {
    r.opts.sizes.iter().copied().find(|&i| i == 3).unwrap_or_else(|| *r.opts.sizes.last().unwrap())
}

/// The paper's breakdown figures are drawn at 64 processors; with the
/// default grid now extending past the real machine (128, 256 for the
/// directory-scaling runs), pick the largest configured count that is
/// still within the paper's machine, falling back to the last entry when
/// the user configured only larger counts.
fn breakdown_procs(r: &Runner) -> usize {
    r.opts
        .procs
        .iter()
        .copied()
        .filter(|&p| p <= 64)
        .max()
        .unwrap_or_else(|| *r.opts.procs.last().unwrap())
}

/// Relative-time-by-distribution grid (Figures 5 and 9).
fn dist_grid(r: &mut Runner, artefact: &str, title: &str, alg: Algorithm, rad: u32) {
    print_header(title);
    let p = breakdown_procs(r);
    println!("({} on {p} processors; execution time relative to gauss)", alg.name());
    let sizes = r.opts.sizes.clone();
    print!("{:>8}", "dist");
    for &si in &sizes {
        print!(" {:>8}", r.opts.label_for(si));
    }
    println!();
    let keys: Vec<ExpKey> = Dist::ALL
        .iter()
        .flat_map(|&dist| sizes.iter().map(move |&si| (alg, si, p, rad, dist)))
        .collect();
    r.prefetch(&keys);
    let base: Vec<f64> =
        sizes.iter().map(|&si| r.exp(alg, si, p, rad, Dist::Gauss).parallel_ns).collect();
    for dist in Dist::ALL {
        print!("{:>8}", dist.name());
        for (k, &si) in sizes.iter().enumerate() {
            let rel = r.exp(alg, si, p, rad, dist).parallel_ns / base[k];
            r.record_key(artefact, (alg, si, p, rad, dist), None, Some(rel));
            print!(" {rel:>8.2}");
        }
        println!();
    }
}

/// Figure 5: radix sort, SHMEM, 64 procs — effect of key distribution.
pub fn fig5(r: &mut Runner) {
    dist_grid(
        r,
        "fig5",
        "Figure 5: effect of key distribution on radix sort (SHMEM)",
        Algorithm::RadixShmem,
        RADIX_R,
    );
}

/// Figure 9: sample sort, CC-SAS, 64 procs — effect of key distribution.
pub fn fig9(r: &mut Runner) {
    dist_grid(
        r,
        "fig9",
        "Figure 9: effect of key distribution on sample sort (CC-SAS)",
        Algorithm::SampleCcsas,
        SAMPLE_R,
    );
}

/// Radix-size sweep grid (Figures 6 and 10): time relative to radix 8.
fn radix_size_grid(r: &mut Runner, artefact: &str, title: &str, alg: Algorithm) {
    print_header(title);
    let p = breakdown_procs(r);
    println!("({} on {p} processors; time relative to radix 8)", alg.name());
    let sizes = r.opts.sizes.clone();
    print!("{:>6}", "r");
    for &si in &sizes {
        print!(" {:>8}", r.opts.label_for(si));
    }
    println!();
    let keys: Vec<ExpKey> = (6..=12u32)
        .flat_map(|rad| sizes.iter().map(move |&si| (alg, si, p, rad, Dist::Gauss)))
        .collect();
    r.prefetch(&keys);
    let base: Vec<f64> =
        sizes.iter().map(|&si| r.exp(alg, si, p, 8, Dist::Gauss).parallel_ns).collect();
    for rad in 6..=12u32 {
        print!("{rad:>6}");
        for (k, &si) in sizes.iter().enumerate() {
            let rel = r.exp(alg, si, p, rad, Dist::Gauss).parallel_ns / base[k];
            r.record_key(artefact, (alg, si, p, rad, Dist::Gauss), None, Some(rel));
            print!(" {rel:>8.2}");
        }
        println!();
    }
}

/// Figure 6: effect of radix size on radix sort (SHMEM, 64 procs).
pub fn fig6(r: &mut Runner) {
    radix_size_grid(r, "fig6", "Figure 6: effect of radix size on radix sort (SHMEM)", Algorithm::RadixShmem);
}

/// Figure 10: effect of radix size on sample sort (CC-SAS, 64 procs).
pub fn fig10(r: &mut Runner) {
    radix_size_grid(r, "fig10", "Figure 10: effect of radix size on sample sort (CC-SAS)", Algorithm::SampleCcsas);
}

/// Figure 7: sample-sort speedups for the three models.
pub fn fig7(r: &mut Runner) {
    speedup_grid(
        r,
        "fig7",
        "Figure 7: sample sort speedups for the three models",
        &[
            (Algorithm::SampleShmem, SAMPLE_R, "SHMEM"),
            (Algorithm::SampleCcsas, SAMPLE_R, "CC-SAS"),
            (Algorithm::SampleMpiDirect, SAMPLE_R, "MPI"),
        ],
    );
}

/// ROADMAP item 2's p = 1024 cell — a **new artefact**, not one of the
/// paper's grids, and deliberately excluded from `all`/`quick` so the
/// golden byte-diff over the default artefact set is untouched. Runs the
/// streamed-dominated program set — the variants whose touches the batched
/// walk engine turns into streamed runs, which is what makes this scale
/// feasible — at p = 1024 on the largest configured size.
pub fn p1024(r: &mut Runner) {
    let (saved_sizes, saved_procs) = (r.opts.sizes.clone(), r.opts.procs.clone());
    r.opts.sizes = vec![*saved_sizes.last().expect("at least one size")];
    r.opts.procs = vec![1024];
    speedup_grid(
        r,
        "p1024",
        "ROADMAP item 2: p = 1024 cell, streamed program set",
        &[
            (Algorithm::RadixCcsasNew, RADIX_R, "CC-SAS-NEW"),
            (Algorithm::RadixShmem, RADIX_R, "SHMEM"),
            (Algorithm::RadixMpiDirect, RADIX_R, "MPI"),
        ],
    );
    r.opts.sizes = saved_sizes;
    r.opts.procs = saved_procs;
}

/// Section 3.2's sampling-strategy space: the paper notes that how samples
/// and splitters are chosen "affect\[s\] load balance and program complexity"
/// and picks 128 regular samples per process as best on its system. This
/// artefact compares strategies by time and by load imbalance.
pub fn sampling(r: &mut Runner) {
    use ccsort_algos::sample::SamplingStrategy;
    use ccsort_algos::{run_experiment, ExpConfig};
    print_header("Section 3.2: sampling strategies for sample sort (SHMEM)");
    let si = breakdown_size(r);
    let p = breakdown_procs(r);
    let n = r.opts.n_for(si);
    let scale = r.opts.scale_for(si);
    let seed = r.opts.seed;
    println!("(size {}, {p} processors; zero distribution stresses balance)", r.opts.label_for(si));
    println!("{:>24} {:>12} {:>12} {:>12} {:>12}", "strategy", "gauss ms", "imbalance", "zero ms", "imbalance");
    let strategies: [(&str, SamplingStrategy); 5] = [
        ("regular 32/pe", SamplingStrategy::Regular { per_pe: 32 }),
        ("regular 128/pe (paper)", SamplingStrategy::Regular { per_pe: 128 }),
        ("regular 512/pe", SamplingStrategy::Regular { per_pe: 512 }),
        ("random 128/pe", SamplingStrategy::Random { per_pe: 128, seed: 7 }),
        ("oversample 8p/pe", SamplingStrategy::Oversample { factor: 8 }),
    ];
    // Sampling strategies are not part of the runner's memo key, so this
    // grid parallelizes its independent cells directly; results are
    // collected in configuration order before printing.
    let cfgs: Vec<ExpConfig> = strategies
        .iter()
        .flat_map(|&(_, strat)| {
            [Dist::Gauss, Dist::Zero].into_iter().map(move |dist| {
                ExpConfig::new(Algorithm::SampleShmem, n, p)
                    .radix_bits(SAMPLE_R)
                    .dist(dist)
                    .seed(seed)
                    .scale(scale)
                    .sampling(strat)
            })
        })
        .collect();
    let results: Vec<_> = cfgs.par_iter().map(run_experiment).collect();
    let mut cells = results.iter();
    for (name, _) in strategies {
        print!("{name:>24}");
        for _ in [Dist::Gauss, Dist::Zero] {
            let res = cells.next().unwrap();
            assert!(res.verified);
            print!(" {:>12.1} {:>12.3}", res.parallel_ns / 1e6, res.imbalance());
        }
        println!();
    }
}

/// Per-phase profiles (the paper's instrumentation view): where each
/// program spends its time, phase by phase.
pub fn phases(r: &mut Runner) {
    print_header("Per-phase profiles (mean per-processor time, us)");
    let si = breakdown_size(r);
    let p = breakdown_procs(r);
    println!("(size {}, {p} processors)", r.opts.label_for(si));
    let algs =
        [(Algorithm::RadixCcsas, RADIX_R), (Algorithm::RadixShmem, RADIX_R), (Algorithm::SampleShmem, SAMPLE_R)];
    let keys: Vec<ExpKey> = algs.iter().map(|&(alg, rad)| (alg, si, p, rad, Dist::Gauss)).collect();
    r.prefetch(&keys);
    for (alg, rad) in algs {
        let res = r.exp(alg, si, p, rad, Dist::Gauss);
        println!("\n{}:", alg.name());
        println!("{:>14} {:>10} {:>10} {:>10} {:>10} {:>10}", "phase", "BUSY", "LMEM", "RMEM", "SYNC", "TOTAL");
        for (name, t) in &res.sections {
            if t.total() < 1.0 {
                continue;
            }
            println!(
                "{:>14} {:>10.0} {:>10.0} {:>10.0} {:>10.0} {:>10.0}",
                name,
                t.busy / 1e3,
                t.lmem / 1e3,
                t.rmem / 1e3,
                t.sync / 1e3,
                t.total() / 1e3
            );
        }
    }
}

/// The Section-3.1 implementation tradeoff: one message per
/// contiguously-destined chunk (the paper's choice) versus one coalesced
/// IS-style message per destination with receiver-side reorganization.
pub fn tradeoff(r: &mut Runner) {
    speedup_grid(
        r,
        "tradeoff",
        "Section 3.1 tradeoff: chunk-per-message vs coalesced MPI radix sort",
        &[
            (Algorithm::RadixMpiDirect, RADIX_R, "per-chunk"),
            (Algorithm::RadixMpiCoalesced, RADIX_R, "coalesced"),
        ],
    );
}

/// The Section-2 get-vs-put experiment the paper argues from but does not
/// plot: SHMEM radix sort with receiver-initiated `get` (the paper's
/// program) against sender-initiated `put`. A `get` deposits the exchanged
/// keys in the destination cache, so the exchange pays remote time the next
/// pass never repays; a `put` charges the exchange less but leaves the
/// destination cold, shifting the cost into the next histogram sweep's
/// local misses. The per-phase rows make the shift visible.
pub fn putget(r: &mut Runner) {
    print_header("Section 2 get vs put: SHMEM radix-sort exchange direction");
    let si = breakdown_size(r);
    let p = breakdown_procs(r);
    println!("(size {}, {p} processors; mean per-processor phase time, us)", r.opts.label_for(si));
    let algs = [
        (Algorithm::RadixShmem, "get (shmem)"),
        (Algorithm::RadixShmemPut, "put (shmem-put)"),
    ];
    let keys: Vec<ExpKey> =
        algs.iter().map(|&(alg, _)| (alg, si, p, RADIX_R, Dist::Gauss)).collect();
    r.prefetch(&keys);
    for (alg, name) in algs {
        let res = r.exp(alg, si, p, RADIX_R, Dist::Gauss).clone();
        r.record_key("putget", (alg, si, p, RADIX_R, Dist::Gauss), None, None);
        println!("\n{name}: total {:.2} ms", res.parallel_ns / 1e6);
        println!("{:>14} {:>10} {:>10} {:>10} {:>10} {:>10}", "phase", "BUSY", "LMEM", "RMEM", "SYNC", "TOTAL");
        for (phase, t) in &res.sections {
            if t.total() < 1.0 {
                continue;
            }
            println!(
                "{:>14} {:>10.0} {:>10.0} {:>10.0} {:>10.0} {:>10.0}",
                phase,
                t.busy / 1e3,
                t.lmem / 1e3,
                t.rmem / 1e3,
                t.sync / 1e3,
                t.total() / 1e3
            );
        }
    }
}

/// The future-work artefact: the closed-form prediction formula versus the
/// simulator, per model and size (radix sort, largest configured processor
/// count).
pub fn predict(r: &mut Runner) {
    use ccsort_algos::predict::{predict_radix, PredictModel};
    use ccsort_machine::MachineConfig;
    print_header("Prediction: closed-form formula vs simulation (radix sort)");
    let p = breakdown_procs(r);
    println!("({p} processors; cell = predicted ms / simulated ms)");
    print!("{:>6}", "size");
    for m in PredictModel::ALL {
        print!(" {:>22}", m.name());
    }
    println!();
    let alg_of = |model: PredictModel| match model {
        PredictModel::Ccsas => Algorithm::RadixCcsas,
        PredictModel::CcsasNew => Algorithm::RadixCcsasNew,
        PredictModel::Mpi => Algorithm::RadixMpiDirect,
        PredictModel::Shmem => Algorithm::RadixShmem,
    };
    let keys: Vec<ExpKey> = r
        .opts
        .sizes
        .iter()
        .flat_map(|&si| {
            PredictModel::ALL.iter().map(move |&m| (alg_of(m), si, p, RADIX_R, Dist::Gauss))
        })
        .collect();
    r.prefetch(&keys);
    for &si in &r.opts.sizes.clone() {
        let n = r.opts.n_for(si);
        let scale = r.opts.scale_for(si);
        let label = r.opts.label_for(si);
        print!("{label:>6}");
        for model in PredictModel::ALL {
            let alg = alg_of(model);
            let cfg = MachineConfig::origin2000(p).scaled_down(scale);
            let predicted = predict_radix(&cfg, model, n, p, RADIX_R).total();
            let simulated = r.exp(alg, si, p, RADIX_R, Dist::Gauss).parallel_ns;
            print!(" {:>10.1} /{:>9.1}", predicted / 1e6, simulated / 1e6);
        }
        println!();
    }
}

/// Radix sizes searched when computing "best" times (Tables 2 and 3). The
/// paper's own best sizes all fall in this set.
const BEST_RADIX_SET: [u32; 4] = [8, 10, 11, 12];

const RADIX_MODELS: [(Algorithm, &str); 4] = [
    (Algorithm::RadixCcsas, "CC-SAS"),
    (Algorithm::RadixCcsasNew, "CC-SAS"),
    (Algorithm::RadixMpiDirect, "MPI"),
    (Algorithm::RadixShmem, "SHMEM"),
];

const SAMPLE_MODELS: [(Algorithm, &str); 3] = [
    (Algorithm::SampleCcsas, "CC-SAS"),
    (Algorithm::SampleMpiDirect, "MPI"),
    (Algorithm::SampleShmem, "SHMEM"),
];

fn best_of(r: &mut Runner, models: &[(Algorithm, &'static str)], si: usize, p: usize) -> (f64, Algorithm, &'static str, u32) {
    let mut best: Option<(f64, Algorithm, &'static str, u32)> = None;
    for &(alg, model_name) in models {
        for &rad in &BEST_RADIX_SET {
            let t = r.exp(alg, si, p, rad, Dist::Gauss).parallel_ns;
            if best.is_none_or(|(bt, _, _, _)| t < bt) {
                best = Some((t, alg, model_name, rad));
            }
        }
    }
    best.unwrap()
}

/// Tables 2 and 3: best execution time per (size, procs) for each
/// algorithm, and the (model, radix) combination that achieves it.
pub fn table2_and_3(r: &mut Runner) {
    print_header("Table 2: best execution time (us) with Gauss keys");
    println!(
        "{:>6} {:>4} | {:>12} {:>18} | {:>12} {:>18}",
        "size", "P", "radix (us)", "radix best", "sample (us)", "sample best"
    );
    let sizes = r.opts.sizes.clone();
    let procs = r.opts.procs.clone();
    let keys: Vec<ExpKey> = sizes
        .iter()
        .flat_map(|&si| {
            procs.iter().flat_map(move |&p| {
                RADIX_MODELS.iter().chain(SAMPLE_MODELS.iter()).flat_map(move |&(alg, _)| {
                    BEST_RADIX_SET.iter().map(move |&rad| (alg, si, p, rad, Dist::Gauss))
                })
            })
        })
        .collect();
    r.prefetch(&keys);
    for &si in &sizes {
        let label = r.opts.label_for(si);
        for &p in &procs {
            let (rt, ralg, rmodel, rr) = best_of(r, &RADIX_MODELS, si, p);
            let (st, salg, smodel, sr) = best_of(r, &SAMPLE_MODELS, si, p);
            r.record_key("table2-radix", (ralg, si, p, rr, Dist::Gauss), None, None);
            r.record_key("table2-sample", (salg, si, p, sr, Dist::Gauss), None, None);
            println!(
                "{:>6} {:>4} | {:>12.0} {:>12} r={:<3} | {:>12.0} {:>12} r={:<3}",
                label,
                p,
                rt / 1e3,
                rmodel,
                rr,
                st / 1e3,
                smodel,
                sr
            );
        }
    }
    println!();
    println!("(Table 3 is the 'best' columns above: winning model and radix size per cell.)");
}
