//! Golden-output guard for `repro quick`.
//!
//! The quick reproduction is the repo's public face: its numbers are quoted
//! in the README and its JSON feeds the plots. The communicator refactor's
//! contract is that restructuring the programs must not move a single
//! digit, so the committed transcript (`results/golden_quick.txt`) is the
//! regression oracle: this test reruns `repro quick` and byte-compares
//! stdout against it. A legitimate model change must regenerate the golden
//! file in the same commit — the diff then documents exactly which numbers
//! moved.
//!
//! Only meaningful in release mode: the simulation is deterministic either
//! way, but a debug-profile run takes long enough to stall `cargo test`,
//! so the test is a no-op unless compiled with optimisations
//! (`cargo test --release -p ccsort-bench --test golden_quick`).

use std::process::Command;

#[test]
fn repro_quick_matches_committed_golden_output() {
    if cfg!(debug_assertions) {
        eprintln!("golden_quick: skipped in debug profile (run with --release)");
        return;
    }
    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/golden_quick.txt");
    let golden = std::fs::read_to_string(golden_path).expect("read results/golden_quick.txt");

    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .arg("quick")
        .output()
        .expect("run repro quick");
    assert!(out.status.success(), "repro quick failed: {}", String::from_utf8_lossy(&out.stderr));
    let actual = String::from_utf8(out.stdout).expect("repro output is UTF-8");

    if actual != golden {
        let (line, (want, got)) = golden
            .lines()
            .zip(actual.lines())
            .enumerate()
            .find(|(_, (w, g))| w != g)
            .map(|(i, (w, g))| (i + 1, (w.to_string(), g.to_string())))
            .unwrap_or_else(|| {
                (
                    golden.lines().count().min(actual.lines().count()) + 1,
                    ("<end of shorter output>".into(), "<end of shorter output>".into()),
                )
            });
        panic!(
            "repro quick diverged from results/golden_quick.txt at line {line}:\n  \
             golden: {want}\n  actual: {got}\n\
             ({} golden bytes, {} actual bytes). If the model intentionally \
             changed, regenerate the golden file with:\n  \
             cargo run --release -p ccsort-bench --bin repro -- quick > results/golden_quick.txt",
            golden.len(),
            actual.len()
        );
    }
}
