//! The parallel experiment grid must be a pure performance feature: for a
//! fixed configuration and seed, every simulated observable — parallel
//! time, per-PE breakdowns, event counters, per-phase sections — must be
//! bit-identical however the cells are scheduled.
//!
//! Coverage: [`Runner::prefetch`] fills the memo cache on rayon's default
//! worker pool (genuinely multi-threaded under real rayon; the offline
//! stub executes sequentially), while plain `exp()` never touches rayon at
//! all. Comparing the two run-to-run, against each other, and across
//! submission orders pins the "worker count and scheduling change nothing"
//! contract from every side we can observe in-process.

use ccsort_algos::{Algorithm, Dist};
use ccsort_bench::runner::{ExpKey, Runner, RunnerOpts};

/// Exact fingerprint of one experiment: every f64 via `to_bits`, every
/// counter verbatim, phase names included. Two results compare equal here
/// iff they are observably bit-identical.
fn fingerprint(runner: &mut Runner, key: ExpKey) -> Vec<u64> {
    let res = runner.exp(key.0, key.1, key.2, key.3, key.4);
    let mut fp = vec![res.parallel_ns.to_bits(), res.n as u64, res.p as u64, res.verified as u64];
    for b in &res.per_pe {
        fp.extend([b.busy.to_bits(), b.lmem.to_bits(), b.rmem.to_bits(), b.sync.to_bits()]);
    }
    for ev in &res.events {
        fp.extend([
            ev.l1_hits,
            ev.cache_hits,
            ev.misses_local,
            ev.misses_remote,
            ev.interventions,
            ev.invalidations,
            ev.upgrades,
            ev.writebacks,
        ]);
    }
    for (name, b) in &res.sections {
        fp.push(name.len() as u64);
        fp.extend(name.bytes().map(u64::from));
        fp.extend([b.busy.to_bits(), b.lmem.to_bits(), b.rmem.to_bits(), b.sync.to_bits()]);
    }
    fp
}

fn small_opts() -> RunnerOpts {
    RunnerOpts {
        max_sim_n: 1 << 12,
        sizes: vec![0],
        procs: vec![4, 8],
        seed: 271828,
        verbose: false,
    }
}

fn grid() -> Vec<ExpKey> {
    let mut keys = Vec::new();
    for alg in [Algorithm::RadixCcsas, Algorithm::SampleCcsas] {
        for p in [4usize, 8] {
            for dist in [Dist::Random, Dist::Gauss] {
                keys.push((alg, 0, p, 6, dist));
            }
        }
    }
    keys
}

/// Fill the memo cache through `Runner::prefetch` (default rayon pool)
/// with the keys submitted in the given order, then fingerprint every cell
/// in canonical grid order.
fn run_prefetched(submit: &[ExpKey]) -> Vec<Vec<u64>> {
    let mut runner = Runner::new(small_opts());
    runner.prefetch(submit);
    grid().iter().map(|&k| fingerprint(&mut runner, k)).collect()
}

/// Same config + seed, repeated parallel fills: bit-identical observables.
#[test]
fn repeated_runs_are_bit_identical() {
    let a = run_prefetched(&grid());
    let b = run_prefetched(&grid());
    assert_eq!(a, b, "two identical prefetch runs disagreed");
}

/// The parallel fill must agree with the plain sequential `exp()` path (no
/// rayon involvement at all) — this is the one-worker vs many-workers
/// comparison: under real rayon, `prefetch` schedules cells across the
/// default pool while `exp()` runs them one by one on the test thread.
#[test]
fn prefetch_agrees_with_sequential_exp() {
    let mut seq_runner = Runner::new(small_opts());
    let direct: Vec<Vec<u64>> =
        grid().iter().map(|&k| fingerprint(&mut seq_runner, k)).collect();
    let prefetched = run_prefetched(&grid());
    assert_eq!(direct, prefetched, "prefetch path disagreed with sequential exp()");
}

/// Submission order (and duplicate submissions) must not matter: each cell
/// builds its own seeded machine, so any schedule of independent cells
/// yields the same per-cell bits.
#[test]
fn submission_order_does_not_change_results() {
    let canonical = run_prefetched(&grid());
    let mut reversed = grid();
    reversed.reverse();
    // Duplicates exercise the dedup filter in front of the parallel fill.
    let doubled: Vec<ExpKey> = reversed.iter().chain(grid().iter()).copied().collect();
    let shuffled = run_prefetched(&doubled);
    assert_eq!(canonical, shuffled, "submission order changed simulated results");
}
