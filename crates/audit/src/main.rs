//! `ccsort-audit` — conformance sweeps and failure replay.
//!
//! ```text
//! cargo run -p ccsort-audit -- sweep [--quick] [--seed S] [--races]
//! cargo run -p ccsort-audit -- races [--quick] [--seed S]
//! cargo run -p ccsort-audit -- replay --alg NAME|all --dist NAME \
//!     --n N --p P --r R --seed S [--scale K] [--dir full-map|lp:N|cv:N] \
//!     [--topo hypercube|mesh|fat-tree:K] [--proto inv|upd]
//! ```
//!
//! `sweep` exits non-zero if any point fails; every failure line embeds the
//! exact `replay` invocation that reproduces it. `races` (equivalently
//! `sweep --races`) restricts the grid to the eleven simulator programs and
//! runs them with the happens-before race detector on, asserting every
//! point is race-free — the simulator-only half of the sweep, so it skips
//! the threaded sorts and the distribution validator.

use ccsort_audit::{audit_point, audit_simulated, validate_dist, Point};
use ccsort_algos::{Algorithm, DirectoryMode, Dist, InterconnectKind, ProtocolMode};
use rayon::prelude::*;

/// Expand the (points × processor counts × distributions) grid in the
/// canonical print order. Cells are independent — each audit builds its own
/// seeded machine — so the sweeps evaluate them with rayon and print the
/// collected results sequentially, keeping stdout byte-identical to the old
/// sequential loop regardless of worker count.
fn grid(points: &[(usize, u32, u64)], ps: &[usize]) -> Vec<Point> {
    let mut cells = Vec::new();
    for &(n, r, seed) in points {
        for &p in ps {
            for dist in Dist::ALL {
                cells.push(Point { dist, n, p, r, seed, ..default_point() });
            }
        }
    }
    cells
}

/// The all-defaults point the grids specialise: full-map directory on the
/// hypercube with the invalidate protocol, at the sweeps' standard scale.
fn default_point() -> Point {
    Point {
        dist: Dist::Random,
        n: 1 << 10,
        p: 8,
        r: 6,
        seed: 0,
        scale: 256,
        dir: DirectoryMode::FullMap,
        topo: InterconnectKind::Hypercube,
        proto: ProtocolMode::Invalidate,
    }
}

/// Directory-scaling cells past the real machine's 64 processors: the three
/// sharer-set representations at large p, one distribution each (the audit
/// checks invariants and output, not statistics, so one dist suffices per
/// mode). `--quick` keeps only the p = 128 limited-pointer cell CI runs.
fn large_p_cells(quick: bool, seed: u64) -> Vec<Point> {
    let base = Point { seed, ..default_point() };
    let mut cells =
        vec![Point { p: 128, dir: DirectoryMode::LimitedPointer(8), ..base }];
    if !quick {
        cells.push(Point { p: 128, ..base });
        cells.push(Point {
            dist: Dist::Stagger,
            p: 256,
            dir: DirectoryMode::CoarseVector(8),
            ..base
        });
        cells.push(Point { dist: Dist::Stagger, p: 256, ..base });
    }
    cells
}

/// Topology × protocol cells: the non-default interconnects and the Dragon
/// update mode, through the same oracle as everything else. `--quick` keeps
/// one cell per new axis value (mesh, fat-tree, Dragon — and one combined
/// cell, since the layers must compose); the full sweep adds odd processor
/// counts, a second arity, an imprecise-directory combination and the
/// machine-sized p = 64 cells.
fn mode_cells(quick: bool, seed: u64) -> Vec<Point> {
    let base = Point { seed, ..default_point() };
    let mut cells = vec![
        Point { topo: InterconnectKind::Mesh2D, ..base },
        Point { topo: InterconnectKind::FatTree(4), ..base },
        Point { proto: ProtocolMode::DragonUpdate, ..base },
        Point {
            topo: InterconnectKind::Mesh2D,
            proto: ProtocolMode::DragonUpdate,
            ..base
        },
    ];
    if !quick {
        cells.push(Point { dist: Dist::Stagger, p: 7, topo: InterconnectKind::FatTree(2), ..base });
        cells.push(Point {
            dist: Dist::Stagger,
            p: 7,
            proto: ProtocolMode::DragonUpdate,
            ..base
        });
        cells.push(Point {
            p: 16,
            topo: InterconnectKind::FatTree(4),
            proto: ProtocolMode::DragonUpdate,
            dir: DirectoryMode::LimitedPointer(8),
            ..base
        });
        cells.push(Point { p: 64, topo: InterconnectKind::Mesh2D, ..base });
        cells.push(Point { p: 64, proto: ProtocolMode::DragonUpdate, ..base });
    }
    cells
}

/// Run `audit` over every cell in parallel, then print the per-cell status
/// lines in grid order and return the flattened failure list.
fn run_grid<F>(cells: &[Point], audit: F) -> Vec<String>
where
    F: Fn(&Point) -> Vec<String> + Sync,
{
    let results: Vec<Vec<String>> = cells.par_iter().map(&audit).collect();
    let mut failures = Vec::new();
    for (pt, errs) in cells.iter().zip(&results) {
        let status = if errs.is_empty() { "ok" } else { "FAIL" };
        let mut modes = String::new();
        if pt.dir != DirectoryMode::FullMap {
            modes.push_str(&format!(" dir={}", Point::dir_flag(pt.dir)));
        }
        if pt.topo != InterconnectKind::Hypercube {
            modes.push_str(&format!(" topo={}", Point::topo_flag(pt.topo)));
        }
        if pt.proto != ProtocolMode::Invalidate {
            modes.push_str(&format!(" proto={}", Point::proto_flag(pt.proto)));
        }
        println!(
            "{status:>4}  {} n={} p={} r={} seed={}{modes}",
            pt.dist.name(),
            pt.n,
            pt.p,
            pt.r,
            pt.seed
        );
        failures.extend(errs.iter().cloned());
    }
    failures
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("sweep") if args[1..].iter().any(|a| a == "--races") => races(&args[1..]),
        Some("sweep") => sweep(&args[1..]),
        Some("races") => races(&args[1..]),
        Some("replay") => replay(&args[1..]),
        _ => {
            eprintln!(
                "usage:\n  ccsort-audit sweep [--quick] [--seed S] [--races]\n  \
                 ccsort-audit races [--quick] [--seed S]\n  \
                 ccsort-audit replay --alg NAME|all --dist NAME --n N --p P --r R --seed S \
                 [--scale K] [--dir full-map|lp:N|cv:N] \
                 [--topo hypercube|mesh|fat-tree:K] [--proto inv|upd]"
            );
            2
        }
    };
    std::process::exit(code);
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).map(String::as_str)
}

fn parse_or_exit<T: std::str::FromStr>(args: &[String], name: &str, default: Option<T>) -> T {
    match flag_value(args, name) {
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("bad value for {name}: {v}");
            std::process::exit(2);
        }),
        None => default.unwrap_or_else(|| {
            eprintln!("missing required flag {name}");
            std::process::exit(2);
        }),
    }
}

/// The acceptance grid: every algorithm, every distribution, power-of-two
/// and odd processor counts. `--quick` keeps one (n, r) point per cell;
/// the full sweep adds a larger n, a wider radix and a second seed.
fn sweep(args: &[String]) -> i32 {
    let quick = args.iter().any(|a| a == "--quick");
    let seed: u64 = parse_or_exit(args, "--seed", Some(0));
    let ps = [1usize, 3, 4, 7, 8, 16];
    let points: Vec<(usize, u32, u64)> = if quick {
        vec![(1 << 10, 6, seed)]
    } else {
        vec![(1 << 10, 6, seed), (1 << 12, 8, seed), (1 << 10, 6, seed.wrapping_add(271828))]
    };

    let cells = grid(&points, &ps);
    let mut checked = cells.len();
    let mut failures = run_grid(&cells, |pt| {
        let mut errs = validate_dist(pt.dist, pt.n, pt.p, pt.r, pt.seed);
        // The old zero-fill bug only bit when p ∤ n; always probe a
        // small non-divisible companion point too.
        if pt.n % pt.p == 0 && pt.p > 1 {
            errs.extend(validate_dist(pt.dist, pt.n + pt.p / 2, pt.p, pt.r, pt.seed));
        }
        errs.extend(audit_point(pt, &Algorithm::ALL));
        errs
    });

    // Directory-scaling cells (p > 64): simulator-only — the threaded sorts
    // have no directory, and one radix + one sample program exercise every
    // sharer-set path the full program matrix would.
    let large = large_p_cells(quick, seed);
    checked += large.len();
    failures.extend(run_grid(&large, |pt| {
        audit_simulated(pt, &[Algorithm::RadixCcsas, Algorithm::SampleCcsas])
    }));

    // Topology × protocol cells: all eleven programs under the non-default
    // interconnects and the Dragon update mode (the threaded sorts ride
    // along — they ignore the machine axes, but their outputs still
    // cross-check the simulated ones).
    let modes = mode_cells(quick, seed);
    checked += modes.len();
    failures.extend(run_grid(&modes, |pt| audit_point(pt, &Algorithm::ALL)));

    if failures.is_empty() {
        println!("sweep clean: {checked} points, all implementations agree, all invariants hold");
        0
    } else {
        eprintln!("\n{} violation(s):", failures.len());
        for f in &failures {
            eprintln!("  {f}");
        }
        1
    }
}

/// The race matrix: every simulator program, every distribution, every
/// processor count, with the happens-before detector on (it is part of
/// `run_experiment_audited`, so [`audit_simulated`] already collects race
/// reports as violations). Asserting zero races here is what lets the
/// timing model trust its bulk-synchronous schedule: a racy program would
/// still sort correctly under the deterministic interleaving, but its
/// phase times would be fiction.
fn races(args: &[String]) -> i32 {
    let quick = args.iter().any(|a| a == "--quick");
    let seed: u64 = parse_or_exit(args, "--seed", Some(0));
    let ps = [1usize, 3, 4, 7, 8, 16];
    let points: Vec<(usize, u32, u64)> = if quick {
        vec![(1 << 10, 6, seed)]
    } else {
        vec![(1 << 10, 6, seed), (1 << 12, 8, seed), (1 << 10, 6, seed.wrapping_add(271828))]
    };

    let cells = grid(&points, &ps);
    let mut checked = cells.len();
    let mut failures = run_grid(&cells, |pt| audit_simulated(pt, &Algorithm::ALL));

    // The race matrix also covers the imprecise directory modes at large p:
    // over-targeted invalidations must not introduce (or mask) races.
    let large = large_p_cells(quick, seed);
    checked += large.len();
    failures.extend(run_grid(&large, |pt| {
        audit_simulated(pt, &[Algorithm::RadixCcsas, Algorithm::SampleCcsas])
    }));

    // ... and the topology × protocol cells: Dragon's update multicasts and
    // the new hop patterns must neither introduce nor mask races.
    let modes = mode_cells(quick, seed);
    checked += modes.len();
    failures.extend(run_grid(&modes, |pt| audit_simulated(pt, &Algorithm::ALL)));

    if failures.is_empty() {
        println!("race sweep clean: {checked} points, all simulator programs race-free");
        0
    } else {
        eprintln!("\n{} violation(s):", failures.len());
        for f in &failures {
            eprintln!("  {f}");
        }
        1
    }
}

/// Re-run one point from a failure artifact.
fn replay(args: &[String]) -> i32 {
    let alg_name = flag_value(args, "--alg").unwrap_or("all");
    let dist_name = flag_value(args, "--dist").unwrap_or_else(|| {
        eprintln!("missing required flag --dist");
        std::process::exit(2);
    });
    let Some(dist) = Dist::parse(dist_name) else {
        eprintln!("unknown distribution {dist_name}");
        return 2;
    };
    let algs: Vec<Algorithm> = if alg_name == "all" {
        Algorithm::ALL.to_vec()
    } else {
        match Algorithm::parse(alg_name) {
            Ok(a) => vec![a],
            Err(e) => {
                eprintln!("{e}");
                return 2;
            }
        }
    };
    let dir = match flag_value(args, "--dir").map(Point::parse_dir_flag).transpose() {
        Ok(d) => d.unwrap_or_default(),
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let topo = match flag_value(args, "--topo").map(Point::parse_topo_flag).transpose() {
        Ok(t) => t.unwrap_or_default(),
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let proto = match flag_value(args, "--proto").map(Point::parse_proto_flag).transpose() {
        Ok(pr) => pr.unwrap_or_default(),
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let pt = Point {
        dist,
        n: parse_or_exit(args, "--n", None),
        p: parse_or_exit(args, "--p", None),
        r: parse_or_exit(args, "--r", None),
        seed: parse_or_exit(args, "--seed", None),
        scale: parse_or_exit(args, "--scale", Some(256)),
        dir,
        topo,
        proto,
    };
    if pt.p < 1 || pt.n < pt.p {
        eprintln!("need --p >= 1 and --n >= --p (got n={} p={})", pt.n, pt.p);
        return 2;
    }
    if pt.r < 1 || pt.r > 31 {
        eprintln!("need --r in 1..=31 (got {})", pt.r);
        return 2;
    }
    // Route the full config validation (machine caps, per-mode directory
    // constraints) through the Result path so a bad replay invocation is a
    // usage error (exit 2) with the offending field named, not a panic.
    if let Err(e) = ccsort_algos::ExpConfig::new(algs[0], pt.n, pt.p)
        .radix_bits(pt.r)
        .directory_mode(pt.dir)
        .interconnect(pt.topo)
        .protocol(pt.proto)
        .validate()
    {
        eprintln!("invalid replay point: {e}");
        return 2;
    }

    let mut errs = validate_dist(pt.dist, pt.n, pt.p, pt.r, pt.seed);
    errs.extend(audit_point(&pt, &algs));
    if errs.is_empty() {
        println!("replay clean: {}", pt.replay_command(None));
        0
    } else {
        eprintln!("{} violation(s):", errs.len());
        for e in &errs {
            eprintln!("  {e}");
        }
        1
    }
}
