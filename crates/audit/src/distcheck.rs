//! Distribution validator: every [`Dist`] has documented shape properties
//! (module docs of `ccsort_algos::dist`); this module checks them on the
//! actual generated keys, slot by slot, so a generator bug (a window
//! collision, a degenerate range, a zero-filled remainder when `p ∤ n`)
//! is caught directly instead of surfacing later as a mis-shaped figure.

use ccsort_algos::common::{owner_of, part_range};
use ccsort_algos::dist::{generate, stagger_window, Dist, KEY_BITS, MAX_KEY};

/// Validate the keys `generate(dist, n, p, r, seed)` produces. Returns a
/// list of violations (empty = the distribution has its documented shape).
pub fn validate_dist(dist: Dist, n: usize, p: usize, r: u32, seed: u64) -> Vec<String> {
    let mut errs = Vec::new();
    let tag = |msg: String| format!("{}/n={n}/p={p}/r={r}/seed={seed}: {msg}", dist.name());
    let keys = generate(dist, n, p, r, seed);

    if keys.len() != n {
        errs.push(tag(format!("generated {} keys, expected {n}", keys.len())));
        return errs;
    }
    if let Some((i, &k)) = keys.iter().enumerate().find(|&(_, &k)| (k as u64) >= MAX_KEY) {
        errs.push(tag(format!("key {k} at slot {i} outside the 31-bit range")));
    }
    if generate(dist, n, p, r, seed) != keys {
        errs.push(tag("generation is not deterministic".into()));
    }
    // The per-process partitions must tile 0..n exactly — the structural
    // guarantee that no slot is silently left at its zero fill.
    let covered: usize = (0..p).map(|i| part_range(n, p, i).len()).sum();
    if covered != n || part_range(n, p, p - 1).end != n {
        errs.push(tag(format!("partitions cover {covered} of {n} slots")));
    }

    let radix = 1u64 << r;
    match dist {
        Dist::Gauss | Dist::Half => {
            if dist == Dist::Half {
                if let Some((i, &k)) = keys.iter().enumerate().find(|&(_, &k)| k % 2 != 0) {
                    errs.push(tag(format!("odd key {k} at slot {i}")));
                }
            }
            // Average-of-four-uniforms is bell shaped: at usable sizes the
            // middle half of the key range holds the clear majority.
            if n >= 4096 {
                let mid = keys
                    .iter()
                    .filter(|&&k| (k as u64) > MAX_KEY / 4 && (k as u64) < 3 * MAX_KEY / 4)
                    .count();
                if (mid as f64) < 0.75 * n as f64 {
                    errs.push(tag(format!(
                        "not bell-shaped: middle-half fraction {:.3}",
                        mid as f64 / n as f64
                    )));
                }
            }
        }
        Dist::Random => {}
        Dist::Zero => {
            if let Some(i) = (0..n).filter(|i| i % 10 == 9).find(|&i| keys[i] != 0) {
                errs.push(tag(format!("slot {i} should be zero, holds {}", keys[i])));
            }
        }
        Dist::Bucket => {
            for i in 0..p {
                let range = part_range(n, p, i);
                let block = range.len().div_ceil(p).max(1);
                for (idx, slot) in range.enumerate() {
                    let j = (idx / block).min(p - 1) as u64;
                    let lo = j * MAX_KEY / p as u64;
                    let hi = ((j + 1) * MAX_KEY / p as u64).max(lo + 1);
                    let k = keys[slot] as u64;
                    if k < lo || k >= hi {
                        errs.push(tag(format!(
                            "proc {i} block {j} slot {slot}: key {k} outside [{lo},{hi})"
                        )));
                        break;
                    }
                }
            }
        }
        Dist::Stagger => {
            // The p windows must be a permutation of the p key ranges…
            let mut windows: Vec<usize> = (0..p).map(|i| stagger_window(p, i)).collect();
            windows.sort_unstable();
            if windows != (0..p).collect::<Vec<_>>() {
                errs.push(tag(format!("windows are not a permutation of 0..{p}: {windows:?}")));
            }
            // …and every key must sit inside its process's window.
            for i in 0..p {
                let w = stagger_window(p, i) as u64;
                let lo = w * MAX_KEY / p as u64;
                let hi = (w + 1) * MAX_KEY / p as u64;
                for slot in part_range(n, p, i) {
                    let k = keys[slot] as u64;
                    if k < lo || k >= hi {
                        errs.push(tag(format!(
                            "proc {i} slot {slot}: key {k} outside window {w} = [{lo},{hi})"
                        )));
                        break;
                    }
                }
            }
        }
        Dist::Local if (radix as usize) >= p => {
            // Zero communication: every full r-bit digit of every key keeps
            // it on its own process — the per-process locality fraction is
            // exactly 1.
            'outer_local: for i in 0..p {
                for slot in part_range(n, p, i) {
                    let k = keys[slot] as u64;
                    let mut shift = 0;
                    while shift + r <= KEY_BITS {
                        let d = (k >> shift) & (radix - 1);
                        if owner_of(radix as usize, p, d as usize) != i {
                            errs.push(tag(format!(
                                "proc {i} slot {slot}: digit {d} at bit {shift} leaves its process"
                            )));
                            break 'outer_local;
                        }
                        shift += r;
                    }
                }
            }
        }
        Dist::Remote if p > 1 && (radix as usize) >= p => {
            // Maximal communication: the first digit always leaves the home
            // process (locality fraction 0), the second always returns.
            'outer_remote: for i in 0..p {
                for slot in part_range(n, p, i) {
                    let k = keys[slot] as u64;
                    let d0 = k & (radix - 1);
                    let d1 = (k >> r) & (radix - 1);
                    if owner_of(radix as usize, p, d0 as usize) == i {
                        errs.push(tag(format!(
                            "proc {i} slot {slot}: first digit {d0} stays home"
                        )));
                        break 'outer_remote;
                    }
                    if owner_of(radix as usize, p, d1 as usize) != i {
                        errs.push(tag(format!(
                            "proc {i} slot {slot}: second digit {d1} does not return home"
                        )));
                        break 'outer_remote;
                    }
                }
            }
        }
        Dist::Local | Dist::Remote => {} // fewer digits than processes: shape undefined
    }
    errs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_distributions_validate_on_a_grid() {
        for d in Dist::ALL {
            for &(n, p) in &[(64usize, 7usize), (1 << 10, 3), (1 << 10, 8), (100, 5)] {
                let errs = validate_dist(d, n, p, 6, 0);
                assert!(errs.is_empty(), "{errs:?}");
            }
        }
    }

    #[test]
    fn validator_catches_zero_fill() {
        // A truncated Stagger generator (the pre-fix bug) left the tail of
        // the key array zero-filled; synthesize that state and confirm the
        // window check would flag it. We can't call the buggy generator any
        // more, so check the property directly: 0 is not in process 2's
        // stagger window for p=3.
        let p = 3;
        let w = stagger_window(p, p - 1) as u64;
        let lo = w * MAX_KEY / p as u64;
        assert!(lo > 0, "window {w} must not contain the zero fill");
    }
}
