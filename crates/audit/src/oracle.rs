//! Differential oracle: one parameter point, every implementation.
//!
//! A point `(Dist, n, p, r, seed)` is pushed through all eleven simulator
//! programs (with the machine-invariant audit enabled, so protocol bugs
//! panic at the phase boundary where they appear) and through the real
//! threaded sorts of `ccsort-parallel`. Every output is cross-checked
//! against `sort_unstable` on the same input and, transitively, against
//! every other implementation; the threaded outputs are additionally
//! compared pairwise so a disagreement names both parties. Each violation
//! message starts with a one-line replay command — the minimized failure
//! artifact.

use std::panic::{catch_unwind, AssertUnwindSafe};

use ccsort_algos::dist::generate;
use ccsort_algos::{
    run_experiment_audited, Algorithm, Dist, DirectoryMode, ExpConfig, InterconnectKind,
    ProtocolMode,
};
use ccsort_parallel::msg::{radix_sort_msg, sample_sort_msg};
use ccsort_parallel::sym::radix_sort_shmem;
use ccsort_parallel::{
    par_radix_sort_with, par_sample_sort_with, RadixSortConfig, SampleSortConfig,
};

/// One parameter point of the differential oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Point {
    pub dist: Dist,
    pub n: usize,
    pub p: usize,
    pub r: u32,
    pub seed: u64,
    /// Machine scale denominator for the simulator runs.
    pub scale: usize,
    /// Directory sharer-set representation for the simulator runs
    /// (the threaded sorts have no directory; they ignore it).
    pub dir: DirectoryMode,
    /// Interconnect wiring for the simulator runs (ignored by the threaded
    /// sorts, like `dir`).
    pub topo: InterconnectKind,
    /// Coherence protocol for the simulator runs (ignored by the threaded
    /// sorts, like `dir`).
    pub proto: ProtocolMode,
}

impl Point {
    /// Spell a [`DirectoryMode`] as a `--dir` flag value.
    pub fn dir_flag(mode: DirectoryMode) -> String {
        match mode {
            DirectoryMode::FullMap => "full-map".to_string(),
            DirectoryMode::LimitedPointer(i) => format!("lp:{i}"),
            DirectoryMode::CoarseVector(k) => format!("cv:{k}"),
        }
    }

    /// Parse a `--dir` flag value (`full-map`, `lp:N`, `cv:N`).
    pub fn parse_dir_flag(s: &str) -> Result<DirectoryMode, String> {
        if s == "full-map" {
            return Ok(DirectoryMode::FullMap);
        }
        let parse_n = |rest: &str| {
            rest.parse::<usize>().map_err(|_| format!("bad --dir parameter in {s:?}"))
        };
        if let Some(rest) = s.strip_prefix("lp:") {
            return Ok(DirectoryMode::LimitedPointer(parse_n(rest)?));
        }
        if let Some(rest) = s.strip_prefix("cv:") {
            return Ok(DirectoryMode::CoarseVector(parse_n(rest)?));
        }
        Err(format!("unknown directory mode {s:?}; expected full-map, lp:N or cv:N"))
    }

    /// Spell an [`InterconnectKind`] as a `--topo` flag value.
    pub fn topo_flag(kind: InterconnectKind) -> String {
        match kind {
            InterconnectKind::Hypercube => "hypercube".to_string(),
            InterconnectKind::Mesh2D => "mesh".to_string(),
            InterconnectKind::FatTree(k) => format!("fat-tree:{k}"),
        }
    }

    /// Parse a `--topo` flag value (`hypercube`, `mesh`, `fat-tree:K`).
    pub fn parse_topo_flag(s: &str) -> Result<InterconnectKind, String> {
        match s {
            "hypercube" => Ok(InterconnectKind::Hypercube),
            "mesh" => Ok(InterconnectKind::Mesh2D),
            _ => {
                if let Some(rest) = s.strip_prefix("fat-tree:") {
                    let k = rest
                        .parse::<usize>()
                        .map_err(|_| format!("bad --topo fat-tree arity in {s:?}"))?;
                    return Ok(InterconnectKind::FatTree(k));
                }
                Err(format!(
                    "unknown interconnect {s:?}; expected hypercube, mesh or fat-tree:K"
                ))
            }
        }
    }

    /// Spell a [`ProtocolMode`] as a `--proto` flag value.
    pub fn proto_flag(proto: ProtocolMode) -> String {
        match proto {
            ProtocolMode::Invalidate => "inv".to_string(),
            ProtocolMode::DragonUpdate => "upd".to_string(),
        }
    }

    /// Parse a `--proto` flag value (`inv`, `upd`).
    pub fn parse_proto_flag(s: &str) -> Result<ProtocolMode, String> {
        match s {
            "inv" => Ok(ProtocolMode::Invalidate),
            "upd" => Ok(ProtocolMode::DragonUpdate),
            _ => Err(format!("unknown protocol {s:?}; expected inv or upd")),
        }
    }

    /// The replayable failure artifact: a command that re-runs exactly this
    /// point (optionally restricted to one simulator program).
    pub fn replay_command(&self, alg: Option<Algorithm>) -> String {
        let mut cmd = format!(
            "cargo run -p ccsort-audit -- replay --alg {} --dist {} --n {} --p {} --r {} --seed {} --scale {}",
            alg.map(|a| a.name()).unwrap_or("all"),
            self.dist.name(),
            self.n,
            self.p,
            self.r,
            self.seed,
            self.scale
        );
        if self.dir != DirectoryMode::FullMap {
            cmd.push_str(&format!(" --dir {}", Point::dir_flag(self.dir)));
        }
        if self.topo != InterconnectKind::Hypercube {
            cmd.push_str(&format!(" --topo {}", Point::topo_flag(self.topo)));
        }
        if self.proto != ProtocolMode::Invalidate {
            cmd.push_str(&format!(" --proto {}", Point::proto_flag(self.proto)));
        }
        cmd
    }

    fn fail(&self, alg: Option<Algorithm>, msg: &str) -> String {
        format!("[{}] {msg}", self.replay_command(alg))
    }

    fn config(&self, alg: Algorithm) -> ExpConfig {
        ExpConfig::new(alg, self.n, self.p)
            .radix_bits(self.r)
            .dist(self.dist)
            .seed(self.seed)
            .scale(self.scale)
            .directory_mode(self.dir)
            .interconnect(self.topo)
            .protocol(self.proto)
    }
}

fn panic_msg(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_else(|| "non-string panic payload".into())
}

/// Run the full differential oracle on one point: the given simulator
/// programs (audited) plus every threaded sort. Returns all violations.
pub fn audit_point(pt: &Point, algs: &[Algorithm]) -> Vec<String> {
    let mut errs = audit_simulated(pt, algs);
    errs.extend(audit_threaded(pt));
    errs
}

/// The simulator half of the oracle. Each program runs with the per-section
/// machine audit on; a mid-run invariant violation panics (and is reported
/// with its replay command), and the end-of-run audit's findings are
/// reported individually. `verified == false` — the output not being a
/// sorted permutation of the input — is the differential failure: every
/// program is checked against `sort_unstable` on the same input, so any two
/// verified programs agree with each other.
pub fn audit_simulated(pt: &Point, algs: &[Algorithm]) -> Vec<String> {
    let mut errs = Vec::new();
    for &alg in algs {
        let cfg = pt.config(alg);
        match catch_unwind(AssertUnwindSafe(|| run_experiment_audited(&cfg))) {
            Ok((res, violations)) => {
                if !res.verified {
                    errs.push(pt.fail(
                        Some(alg),
                        "output is not a sorted permutation of the input",
                    ));
                }
                for v in violations {
                    errs.push(pt.fail(Some(alg), &format!("machine audit: {v}")));
                }
            }
            Err(payload) => {
                errs.push(pt.fail(Some(alg), &format!("panicked: {}", panic_msg(&*payload))));
            }
        }
    }
    errs
}

/// The real-thread half of the oracle: the rayon, message-passing and
/// symmetric-heap sorts all run on the same generated input; each output is
/// checked against `sort_unstable` and all outputs are compared pairwise.
pub fn audit_threaded(pt: &Point) -> Vec<String> {
    let mut errs = Vec::new();
    let input = generate(pt.dist, pt.n, pt.p, pt.r, pt.seed);
    let mut expect = input.clone();
    expect.sort_unstable();

    let p = pt.p;
    let r = pt.r;
    type NamedSort = (&'static str, Box<dyn Fn(&mut Vec<u32>) + Send>);
    let runs: Vec<NamedSort> = vec![
        (
            "par-radix",
            Box::new(move |v: &mut Vec<u32>| {
                par_radix_sort_with(
                    v,
                    &RadixSortConfig {
                        radix_bits: r,
                        chunks: Some(p),
                        sequential_cutoff: 0,
                        ..Default::default()
                    },
                )
            }),
        ),
        (
            "par-sample",
            Box::new(move |v: &mut Vec<u32>| {
                par_sample_sort_with(
                    v,
                    &SampleSortConfig {
                        parts: Some(p),
                        sequential_cutoff: 0,
                        ..Default::default()
                    },
                )
            }),
        ),
        ("msg-radix", Box::new(move |v: &mut Vec<u32>| radix_sort_msg(v, p, r))),
        ("msg-sample", Box::new(move |v: &mut Vec<u32>| sample_sort_msg(v, p, r))),
        ("shmem-radix", Box::new(move |v: &mut Vec<u32>| radix_sort_shmem(v, p, r))),
    ];

    let mut outputs: Vec<(&str, Vec<u32>)> = Vec::new();
    for (name, sort) in &runs {
        let mut v = input.clone();
        match catch_unwind(AssertUnwindSafe(|| {
            sort(&mut v);
            v
        })) {
            Ok(out) => {
                if out != expect {
                    errs.push(pt.fail(None, &format!("{name} disagrees with sort_unstable")));
                }
                outputs.push((name, out));
            }
            Err(payload) => {
                errs.push(pt.fail(None, &format!("{name} panicked: {}", panic_msg(&*payload))));
            }
        }
    }
    for i in 0..outputs.len() {
        for j in i + 1..outputs.len() {
            if outputs[i].1 != outputs[j].1 {
                errs.push(pt.fail(
                    None,
                    &format!("{} and {} disagree with each other", outputs[i].0, outputs[j].0),
                ));
            }
        }
    }
    errs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regression_points_pass_the_full_oracle() {
        // The two checked-in proptest counterexamples, end to end.
        for &(n, p) in &[(1usize << 10, 3usize), (64, 7)] {
            let pt = Point {
                dist: Dist::Stagger,
                n,
                p,
                r: 6,
                seed: 0,
                scale: 256,
                dir: DirectoryMode::FullMap,
                topo: InterconnectKind::Hypercube,
                proto: ProtocolMode::Invalidate,
            };
            let errs = audit_point(&pt, &Algorithm::ALL);
            assert!(errs.is_empty(), "{errs:?}");
        }
    }

    #[test]
    fn replay_command_is_parseable_shape() {
        let mut pt = Point {
            dist: Dist::Stagger,
            n: 1024,
            p: 3,
            r: 6,
            seed: 0,
            scale: 256,
            dir: DirectoryMode::FullMap,
            topo: InterconnectKind::Hypercube,
            proto: ProtocolMode::Invalidate,
        };
        let cmd = pt.replay_command(Some(Algorithm::RadixCcsas));
        assert!(cmd.contains("--alg radix-ccsas"));
        assert!(cmd.contains("--dist stagger"));
        assert!(cmd.contains("--n 1024"));
        assert!(cmd.contains("--p 3"));
        // Full-map is the default and stays implicit; other modes round-trip
        // through the --dir flag.
        assert!(!cmd.contains("--dir"));
        pt.dir = DirectoryMode::LimitedPointer(8);
        let cmd = pt.replay_command(None);
        assert!(cmd.contains("--dir lp:8"), "{cmd}");
        assert_eq!(Point::parse_dir_flag("lp:8"), Ok(DirectoryMode::LimitedPointer(8)));
        assert_eq!(Point::parse_dir_flag("cv:4"), Ok(DirectoryMode::CoarseVector(4)));
        assert_eq!(Point::parse_dir_flag("full-map"), Ok(DirectoryMode::FullMap));
        assert!(Point::parse_dir_flag("bogus").is_err());
        // Hypercube + invalidate are the defaults and stay implicit; other
        // modes round-trip through --topo/--proto.
        assert!(!cmd.contains("--topo") && !cmd.contains("--proto"), "{cmd}");
        pt.topo = InterconnectKind::FatTree(4);
        pt.proto = ProtocolMode::DragonUpdate;
        let cmd = pt.replay_command(None);
        assert!(cmd.contains("--topo fat-tree:4"), "{cmd}");
        assert!(cmd.contains("--proto upd"), "{cmd}");
    }

    #[test]
    fn topo_and_proto_flags_round_trip() {
        for kind in
            [InterconnectKind::Hypercube, InterconnectKind::Mesh2D, InterconnectKind::FatTree(7)]
        {
            assert_eq!(Point::parse_topo_flag(&Point::topo_flag(kind)), Ok(kind));
        }
        for proto in [ProtocolMode::Invalidate, ProtocolMode::DragonUpdate] {
            assert_eq!(Point::parse_proto_flag(&Point::proto_flag(proto)), Ok(proto));
        }
    }

    /// Every malformed spelling is rejected with a message naming what was
    /// expected (the satellite requirement: the CLI names the offending
    /// field on error).
    #[test]
    fn malformed_topo_and_proto_flags_are_rejected() {
        for bad in ["cube", "Mesh", "fat-tree", "fat-tree:", "fat-tree:x", "fat-tree:-1", ""] {
            let err = Point::parse_topo_flag(bad).unwrap_err();
            assert!(
                err.contains("--topo") || err.contains("interconnect"),
                "{bad:?} -> {err}"
            );
        }
        for bad in ["invalidate", "dragon", "update", "INV", ""] {
            let err = Point::parse_proto_flag(bad).unwrap_err();
            assert!(err.contains("protocol"), "{bad:?} -> {err}");
        }
        // A well-formed but out-of-range arity is caught by config
        // validation, which names the field.
        let kind = Point::parse_topo_flag("fat-tree:1").unwrap();
        let err = ccsort_algos::ExpConfig::new(Algorithm::RadixCcsas, 1024, 64)
            .interconnect(kind)
            .validate()
            .unwrap_err();
        assert!(err.contains("interconnect"), "{err}");
    }
}
