//! # ccsort-audit
//!
//! Differential-conformance and invariant-auditing layer for the whole
//! workspace. Three parts:
//!
//! * [`oracle`] — the differential oracle: runs one `(Dist, n, p, r, seed)`
//!   point through every applicable implementation (all eleven simulator
//!   programs via `run_experiment_audited`, plus the real threaded sorts in
//!   `ccsort-parallel`), cross-checks every output against `sort_unstable`
//!   and against each other, and collects machine-invariant violations.
//!   Every failure message carries a one-line replay command.
//! * [`distcheck`] — the distribution validator: asserts each [`Dist`]'s
//!   documented shape properties (window permutation and coverage for
//!   `Stagger`, per-process digit locality for `Local`/`Remote`, block
//!   structure for `Bucket`, the zero fraction for `Zero`, evenness for
//!   `Half`) and that no slot is ever silently left zero-filled when
//!   `p ∤ n`.
//! * the machine-invariant auditor itself lives in `ccsort-machine`
//!   (`Machine::audit` and the opt-in per-`section()` audit mode); the
//!   oracle turns it on for every run it makes.
//!
//! The `ccsort-audit` binary exposes the entry points used by CI:
//! `sweep [--quick]` over a parameter grid, `races` (= `sweep --races`)
//! for the simulator-only happens-before race matrix, and `replay …` for
//! a single point reproduced from a failure artifact.
//!
//! [`Dist`]: ccsort_algos::Dist

pub mod distcheck;
pub mod oracle;

pub use distcheck::validate_dist;
pub use oracle::{audit_point, audit_simulated, audit_threaded, Point};
