//! Output-verification utilities: sortedness and permutation checks.
//!
//! Every claim this workspace makes rests on outputs being *sorted
//! permutations* of inputs; these helpers make that check cheap and
//! reusable (`sortbench check`, tests, downstream users). The permutation
//! check is O(n) with an order-independent multiset fingerprint plus exact
//! per-byte counting — no sorting of the reference copy required.

use crate::key::RadixKey;

/// Is the slice non-decreasing?
pub fn is_sorted<T: Ord>(data: &[T]) -> bool {
    data.windows(2).all(|w| w[0] <= w[1])
}

/// First index `i` with `data[i] > data[i+1]`, if any — for diagnostics.
pub fn first_unsorted_at<T: Ord>(data: &[T]) -> Option<usize> {
    data.windows(2).position(|w| w[0] > w[1])
}

/// Order-independent multiset fingerprint: sum and xor of a per-element
/// hash. Two slices with different fingerprints are definitely not
/// permutations of each other; collisions are astronomically unlikely for
/// accidental corruption (2^-64-ish per component).
pub fn multiset_fingerprint<K: RadixKey>(data: &[K]) -> (u64, u64, usize) {
    let mut sum = 0u64;
    let mut xor = 0u64;
    for k in data {
        let mut x = k.to_bits().wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        sum = sum.wrapping_add(x);
        xor ^= x.rotate_left((k.to_bits() & 63) as u32);
    }
    (sum, xor, data.len())
}

/// Are `a` and `b` permutations of each other (by fingerprint)?
pub fn is_permutation_of<K: RadixKey>(a: &[K], b: &[K]) -> bool {
    multiset_fingerprint(a) == multiset_fingerprint(b)
}

/// The full check: `output` is a sorted permutation of `input`.
pub fn is_sorted_permutation_of<K: RadixKey>(output: &[K], input: &[K]) -> bool {
    is_sorted(output) && is_permutation_of(output, input)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn sortedness_checks() {
        assert!(is_sorted(&[1u32, 2, 2, 3]));
        assert!(is_sorted::<u32>(&[]));
        assert!(is_sorted(&[5u32]));
        assert!(!is_sorted(&[2u32, 1]));
        assert_eq!(first_unsorted_at(&[1u32, 3, 2, 4]), Some(1));
        assert_eq!(first_unsorted_at(&[1u32, 2, 3]), None);
    }

    #[test]
    fn permutation_detects_reorderings_and_corruption() {
        let mut rng = StdRng::seed_from_u64(1);
        let a: Vec<u32> = (0..10_000).map(|_| rng.random()).collect();
        let mut b = a.clone();
        b.reverse();
        assert!(is_permutation_of(&a, &b));
        b.swap(0, 9_999);
        assert!(is_permutation_of(&a, &b));
        // Corrupt one element: caught.
        b[5] ^= 1;
        assert!(!is_permutation_of(&a, &b));
        // Duplicate one element over another: caught (sum/xor change).
        let mut c = a.clone();
        c[7] = c[8];
        assert!(!is_permutation_of(&a, &c) || a[7] == a[8]);
        // Length changes: caught.
        assert!(!is_permutation_of(&a, &a[1..]));
    }

    #[test]
    fn full_check_validates_real_sorts() {
        let mut rng = StdRng::seed_from_u64(2);
        let input: Vec<i64> = (0..50_000).map(|_| rng.random()).collect();
        let mut sorted = input.clone();
        crate::radix::par_radix_sort(&mut sorted);
        assert!(is_sorted_permutation_of(&sorted, &input));
        // A sorted but non-permutation output fails.
        let fake: Vec<i64> = (0..50_000).collect();
        assert!(is_sorted(&fake));
        assert!(!is_sorted_permutation_of(&fake, &input));
    }

    #[test]
    fn fingerprint_is_order_independent_but_value_sensitive() {
        let a = vec![1u32, 2, 3, 4];
        let b = vec![4u32, 3, 2, 1];
        assert_eq!(multiset_fingerprint(&a), multiset_fingerprint(&b));
        let c = vec![1u32, 2, 3, 5];
        assert_ne!(multiset_fingerprint(&a), multiset_fingerprint(&c));
    }
}
