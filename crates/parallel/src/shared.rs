//! [`SharedSlice`]: a `Sync` view of a mutable slice for disjoint parallel
//! writes.
//!
//! The parallel permutation phase of radix sort writes every key to a
//! position computed from the global histogram: positions written by
//! different threads are provably disjoint, but they interleave arbitrarily
//! within the output array, so `split_at_mut` cannot express the partition.
//! `SharedSlice` carries the raw pointer across threads; each `write` is
//! `unsafe` with the documented contract that no two concurrent writers
//! target the same index — exactly the invariant the histogram arithmetic
//! guarantees (and which the test suite checks by validating every sorted
//! output).

use std::marker::PhantomData;

/// A shareable pointer to a mutable slice, for disjoint concurrent writes.
pub struct SharedSlice<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

unsafe impl<T: Send> Send for SharedSlice<'_, T> {}
unsafe impl<T: Send> Sync for SharedSlice<'_, T> {}

impl<'a, T> SharedSlice<'a, T> {
    /// Wrap a mutable slice. The borrow keeps the underlying storage alive
    /// and exclusive for `'a`.
    pub fn new(slice: &'a mut [T]) -> Self {
        SharedSlice { ptr: slice.as_mut_ptr(), len: slice.len(), _marker: PhantomData }
    }

    /// Length of the underlying slice.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the underlying slice is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Write `value` at `index`.
    ///
    /// # Safety
    ///
    /// * `index < len()` (checked in debug builds), and
    /// * no other thread reads or writes `index` concurrently.
    #[inline]
    pub unsafe fn write(&self, index: usize, value: T) {
        debug_assert!(index < self.len, "SharedSlice write out of bounds: {index} >= {}", self.len);
        unsafe { self.ptr.add(index).write(value) };
    }

    /// Write `src` contiguously starting at `index` — the coalesced-flush
    /// primitive: one bounds-checked `copy_nonoverlapping` emits a full
    /// staged block as consecutive stores instead of scattered single
    /// writes.
    ///
    /// # Safety
    ///
    /// * `index + src.len() <= len()` (checked in debug builds), and
    /// * no other thread reads or writes `index..index + src.len()`
    ///   concurrently.
    #[inline]
    pub unsafe fn write_slice(&self, index: usize, src: &[T])
    where
        T: Copy,
    {
        debug_assert!(
            index + src.len() <= self.len,
            "SharedSlice block write out of bounds: {index}+{} > {}",
            src.len(),
            self.len
        );
        unsafe { std::ptr::copy_nonoverlapping(src.as_ptr(), self.ptr.add(index), src.len()) };
    }

    /// Read the value at `index`.
    ///
    /// # Safety
    ///
    /// * `index < len()` (checked in debug builds), and
    /// * no other thread writes `index` concurrently.
    #[inline]
    pub unsafe fn read(&self, index: usize) -> T
    where
        T: Copy,
    {
        debug_assert!(index < self.len);
        unsafe { self.ptr.add(index).read() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjoint_parallel_writes() {
        let n = 1 << 14;
        let mut out = vec![0u32; n];
        let shared = SharedSlice::new(&mut out);
        let threads = 8;
        std::thread::scope(|s| {
            for t in 0..threads {
                let shared = &shared;
                s.spawn(move || {
                    // Thread t writes the strided positions i ≡ t (mod 8):
                    // disjoint across threads, interleaved in memory.
                    let mut i = t;
                    while i < n {
                        unsafe { shared.write(i, i as u32) };
                        i += threads;
                    }
                });
            }
        });
        assert!(out.iter().enumerate().all(|(i, &v)| v == i as u32));
    }

    #[test]
    fn block_writes_land_contiguously() {
        let n = 1024;
        let mut out = vec![0u32; n];
        let shared = SharedSlice::new(&mut out);
        std::thread::scope(|s| {
            for t in 0..4 {
                let shared = &shared;
                s.spawn(move || {
                    // Thread t owns [t*256, (t+1)*256), written as 8 blocks.
                    for b in 0..8 {
                        let base = t * 256 + b * 32;
                        let block: Vec<u32> = (base..base + 32).map(|i| i as u32).collect();
                        unsafe { shared.write_slice(base, &block) };
                    }
                });
            }
        });
        assert!(out.iter().enumerate().all(|(i, &v)| v == i as u32));
    }

    #[test]
    fn read_back() {
        let mut data = vec![7u32; 4];
        let s = SharedSlice::new(&mut data);
        unsafe {
            s.write(2, 42);
            assert_eq!(s.read(2), 42);
            assert_eq!(s.read(0), 7);
        }
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Any permutation written through disjoint SharedSlice writes in
        /// parallel lands exactly.
        #[test]
        fn arbitrary_disjoint_permutation(n in 1usize..2000, seed in any::<u64>()) {
            // Deterministic permutation from the seed.
            let mut perm: Vec<usize> = (0..n).collect();
            let mut state = seed | 1;
            for i in (1..n).rev() {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let j = (state >> 33) as usize % (i + 1);
                perm.swap(i, j);
            }
            let mut out = vec![u32::MAX; n];
            let shared = SharedSlice::new(&mut out);
            let threads = 4.min(n);
            std::thread::scope(|s| {
                for t in 0..threads {
                    let shared = &shared;
                    let perm = &perm;
                    s.spawn(move || {
                        let mut i = t;
                        while i < n {
                            // SAFETY: perm is a bijection and the strided
                            // sources are disjoint, so targets are disjoint.
                            unsafe { shared.write(perm[i], i as u32) };
                            i += threads;
                        }
                    });
                }
            });
            for (i, &p) in perm.iter().enumerate() {
                prop_assert_eq!(out[p], i as u32);
            }
        }
    }
}
