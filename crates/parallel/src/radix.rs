//! Thread-parallel LSD radix sort, speed-grade.
//!
//! The structure mirrors the paper's parallel radix sort — per-chunk
//! histograms, global ranks (`offset[chunk][digit]`), disjoint parallel
//! permutation through a [`SharedSlice`] — with the paper's communication
//! tricks ported to real cores:
//!
//! * **Write coalescing** ([`RadixSortConfig::coalesce_bytes`]): each
//!   worker stages keys in small per-bucket buffers and flushes a full
//!   buffer with one contiguous block store into the shared output. The
//!   scattered single-element remote writes that dominate the paper's
//!   permutation phase become full-cache-line bursts — the paper's message
//!   coalescing, lifted to shared memory.
//! * **Work stealing** ([`RadixSortConfig::work_stealing`]): the input is
//!   over-partitioned into more chunks than workers and both the counting
//!   and permute phases drain a [`ChunkQueue`], so a straggling worker (or
//!   a skew-slowed chunk) never serializes a phase. Output is independent
//!   of the steal schedule: every element's destination is fixed by the
//!   rank arithmetic before the phase starts.
//! * **Fused multi-digit histogramming**
//!   ([`RadixSortConfig::fused_histogram`]): one unrolled read pass counts
//!   every pass's digits at once (global counts are permutation-invariant),
//!   which both discovers trivial passes to skip outright and seeds the
//!   first per-chunk histogram; each permute then counts the *next* pass's
//!   per-chunk digits while the keys are already in registers, eliminating
//!   the per-pass re-read of the whole array.
//!
//! All count matrices are cache-line padded ([`PaddedCounts`]), so no two
//! workers' counters ever share a line. The pre-optimization behaviour is
//! preserved behind [`RadixSortConfig::simple`]; every configuration
//! produces bit-identical sorted output (and identical stable order in the
//! pairs sorts), which the property suite checks against `sort_unstable`.

use std::ops::Range;

use crate::histogram::{count_digits_into, PaddedCounts};
use crate::key::RadixKey;
use crate::seq::{passes_for, DEFAULT_RADIX_BITS};
use crate::shared::SharedSlice;
use crate::steal::ChunkQueue;

/// Digit widths above this skip the fused-histogram path: the per-worker
/// next-pass count matrices stop fitting in cache and the fused read's
/// global rows stop paying for themselves.
const MAX_FUSED_RADIX_BITS: u32 = 12;

/// Per-worker next-pass count matrices larger than this many counters fall
/// back to per-pass counting even when fusion is on.
const MAX_FUSED_NH_WORDS: usize = 1 << 18;

/// Largest accepted per-bucket staging buffer. Buffers beyond this stop
/// fitting in cache, which defeats write coalescing.
pub const MAX_COALESCE_BYTES: usize = 1 << 20;

/// Configuration for [`par_radix_sort_with`] and
/// [`crate::pairs::par_radix_sort_pairs_with`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RadixSortConfig {
    /// Digit width in bits (1..=16).
    pub radix_bits: u32,
    /// Number of parallel workers; `None` = number of rayon threads.
    pub chunks: Option<usize>,
    /// Below this length, fall back to the sequential sort (parallel
    /// overhead doesn't pay off).
    pub sequential_cutoff: usize,
    /// Per-bucket staging-buffer size in bytes for the write-coalescing
    /// permute; `None` selects the direct-scatter permute (one write per
    /// element, the pre-coalescing behaviour).
    pub coalesce_bytes: Option<usize>,
    /// Drain the counting and permute phases through a work-stealing chunk
    /// queue instead of static partitioning.
    pub work_stealing: bool,
    /// Chunks per worker when `work_stealing` is on: the over-partitioning
    /// factor that gives thieves something to take.
    pub steal_granularity: usize,
    /// Count all passes' digits in one fused read pass (enables trivial
    /// pass skipping) and count the next pass's digits during each permute
    /// (eliminates per-pass re-reads).
    pub fused_histogram: bool,
}

impl Default for RadixSortConfig {
    fn default() -> Self {
        RadixSortConfig {
            radix_bits: DEFAULT_RADIX_BITS,
            chunks: None,
            sequential_cutoff: 1 << 13,
            coalesce_bytes: Some(1024),
            work_stealing: true,
            steal_granularity: 4,
            fused_histogram: true,
        }
    }
}

impl RadixSortConfig {
    /// The correctness-grade configuration this library shipped before the
    /// speed work: static partitioning, direct scatter, one counting pass
    /// per digit. Kept selectable as the baseline the benchmarks compare
    /// against.
    pub fn simple() -> Self {
        RadixSortConfig {
            coalesce_bytes: None,
            work_stealing: false,
            steal_granularity: 1,
            fused_histogram: false,
            ..RadixSortConfig::default()
        }
    }

    /// Check the configuration before any thread or buffer is created,
    /// naming the offending field — mirrors `ExpConfig::validate` on the
    /// simulator side. A valid configuration sorts identically with or
    /// without the check.
    pub fn validate(&self) -> Result<(), String> {
        if self.radix_bits == 0 {
            return Err("radix_bits = 0: each pass must consume at least one bit".to_string());
        }
        if self.radix_bits > 16 {
            return Err(format!(
                "radix_bits = {}: digit widths above 16 need histograms past the \
                 L2-resident sizes this sort is tuned for",
                self.radix_bits
            ));
        }
        if self.chunks == Some(0) {
            return Err("chunks = 0: at least one worker is required (None = one \
                        per rayon thread)"
                .to_string());
        }
        match self.coalesce_bytes {
            Some(0) => {
                return Err("coalesce_bytes = 0: a zero-sized staging buffer cannot \
                            hold a key; use None for the direct-scatter permute"
                    .to_string())
            }
            Some(b) if b > MAX_COALESCE_BYTES => {
                return Err(format!(
                    "coalesce_bytes = {b}: staging buffers above {MAX_COALESCE_BYTES} \
                     bytes per bucket stop fitting in cache, which defeats write \
                     coalescing"
                ))
            }
            _ => {}
        }
        if self.steal_granularity == 0 {
            return Err("steal_granularity = 0: the work-stealing queue needs at \
                        least one chunk per worker"
                .to_string());
        }
        Ok(())
    }
}

/// Sort `keys` in parallel with the default configuration.
pub fn par_radix_sort<K: RadixKey + Default>(keys: &mut [K]) {
    par_radix_sort_with(keys, &RadixSortConfig::default());
}

/// Sort `keys` in parallel with an explicit configuration.
pub fn par_radix_sort_with<K: RadixKey + Default>(keys: &mut [K], cfg: &RadixSortConfig) {
    if let Err(e) = cfg.validate() {
        panic!("invalid RadixSortConfig: {e}");
    }
    if keys.len() <= cfg.sequential_cutoff.max(1) {
        crate::seq::radix_sort(keys, cfg.radix_bits);
        return;
    }
    let mut scratch = SortScratch::new();
    sort_engine::<K, (), false>(keys, &mut [], cfg, &mut scratch);
}

/// Sort `keys` in parallel, reusing `scratch` across calls.
///
/// Identical output to [`par_radix_sort_with`] (bit for bit, every
/// configuration), but every buffer the engine needs — the flip buffer,
/// the count matrices, and each worker's write-coalescing staging blocks —
/// lives in the caller-owned [`SortScratch`] and is reused on the next
/// call. A long-running caller (the sorting service) that sorts a steady
/// stream of same-shaped inputs therefore allocates nothing per sort after
/// the first: [`SortScratch::reallocations`] counts the growths so tests
/// can prove it. Inputs at or below `sequential_cutoff` run the sequential
/// fallback through the same scratch (no per-call histogram or flip-buffer
/// allocation either).
///
/// `V` is the payload type the scratch is shared with (`()` when the
/// scratch only ever sorts bare keys); one scratch may serve both the
/// keys-only and the pairs entry points of the same `K`/`V` pair.
pub fn par_radix_sort_with_scratch<K, V>(
    keys: &mut [K],
    cfg: &RadixSortConfig,
    scratch: &mut SortScratch<K, V>,
) where
    K: RadixKey + Default,
    V: Copy + Send + Sync + Default,
{
    if let Err(e) = cfg.validate() {
        panic!("invalid RadixSortConfig: {e}");
    }
    if keys.len() <= cfg.sequential_cutoff.max(1) {
        seq_fallback::<K, V, false>(keys, &mut [], cfg.radix_bits, scratch);
        return;
    }
    sort_engine::<K, V, false>(keys, &mut [], cfg, scratch);
}

/// Fixed-stride chunk geometry: stride is a power of two so the permute can
/// map an output position to its destination chunk with one shift (the
/// fused next-pass counters are indexed by destination chunk).
#[derive(Clone, Copy)]
struct ChunkGeom {
    q_shift: u32,
    m: usize,
    n: usize,
}

impl ChunkGeom {
    fn new(n: usize, target_chunks: usize) -> Self {
        let q = n.div_ceil(target_chunks.max(1)).next_power_of_two().max(1);
        ChunkGeom { q_shift: q.trailing_zeros(), m: n.div_ceil(q).max(1), n }
    }

    fn chunks(&self) -> usize {
        self.m
    }

    #[inline]
    fn range(&self, c: usize) -> Range<usize> {
        (c << self.q_shift)..self.end_of(c)
    }

    #[inline]
    fn chunk_of(&self, pos: usize) -> usize {
        pos >> self.q_shift
    }

    #[inline]
    fn end_of(&self, c: usize) -> usize {
        ((c + 1) << self.q_shift).min(self.n)
    }
}

/// How a phase runs: chunk geometry, worker count, steal or static.
#[derive(Clone, Copy)]
struct Exec {
    geom: ChunkGeom,
    workers: usize,
    steal: bool,
}

/// Everything a permute worker needs, shared read-only across workers.
struct PermuteCtx<'a, K, V> {
    src_k: &'a [K],
    src_v: &'a [V],
    out_k: SharedSlice<'a, K>,
    out_v: SharedSlice<'a, V>,
    geom: ChunkGeom,
    shift: u32,
    mask: u64,
    bins: usize,
    /// Shift of the next executed pass whose per-chunk histograms this
    /// permute computes on the fly; `None` = don't count during permute.
    next_shift: Option<u32>,
}

/// Per-worker write-coalescing staging: `elems` keys (and payloads) per
/// bucket, flushed as one contiguous block when full and at chunk ends.
struct Stage<K, V> {
    kbuf: Vec<K>,
    vbuf: Vec<V>,
    fill: Vec<u32>,
    elems: usize,
}

impl<K: Copy + Default, V: Copy + Default> Stage<K, V> {
    fn empty() -> Self {
        Stage { kbuf: Vec::new(), vbuf: Vec::new(), fill: Vec::new(), elems: 0 }
    }

    /// Shape the buffers for `bins` buckets of `elems` elements, reusing
    /// the existing allocations when they are large enough. Returns `true`
    /// when any backing buffer had to grow. Staged contents are governed
    /// entirely by `fill`, so a same-shape reset only zeroes the (tiny)
    /// fill array — the steady-state path writes nothing else.
    fn reset(&mut self, bins: usize, elems: usize, with_vals: bool) -> bool {
        let kn = bins * elems;
        let vn = if with_vals { kn } else { 0 };
        let same_shape =
            self.kbuf.len() == kn && self.vbuf.len() == vn && self.fill.len() == bins;
        if same_shape {
            self.fill.fill(0);
            self.elems = elems;
            return false;
        }
        let grew =
            kn > self.kbuf.capacity() || vn > self.vbuf.capacity() || bins > self.fill.capacity();
        self.kbuf.clear();
        self.kbuf.resize(kn, K::default());
        self.vbuf.clear();
        self.vbuf.resize(vn, V::default());
        self.fill.clear();
        self.fill.resize(bins, 0);
        self.elems = elems;
        grew
    }
}

/// One worker's private reusable buffers: the coalescing stage, the
/// next-pass count matrix the fused permute fills, and the fused read's
/// per-pass global counts. Handed to exactly one worker thread per phase
/// (disjoint `&mut` via `iter_mut`), so no synchronization is needed.
struct WorkerScratch<K, V> {
    stage: Stage<K, V>,
    nh: PaddedCounts,
    fused: PaddedCounts,
    reallocations: u64,
}

impl<K: Copy + Default, V: Copy + Default> WorkerScratch<K, V> {
    fn new() -> Self {
        WorkerScratch {
            stage: Stage::empty(),
            nh: PaddedCounts::new(0, 0),
            fused: PaddedCounts::new(0, 0),
            reallocations: 0,
        }
    }
}

/// Caller-owned reusable buffers for [`par_radix_sort_with_scratch`] and
/// [`crate::pairs::par_radix_sort_pairs_with_scratch`]: the flip buffers,
/// the per-chunk count matrices, the sequential-fallback histogram, and
/// one `WorkerScratch` per worker. Everything is reshaped (never shrunk)
/// on each call, so a steady stream of same-shaped sorts touches only
/// buffers allocated by the first call.
///
/// `V = ()` for keys-only scratches. A scratch may be reused freely across
/// input lengths, digit widths, and configurations — it grows to the
/// high-water mark and stays there.
pub struct SortScratch<K, V = ()> {
    keys: Vec<K>,
    vals: Vec<V>,
    hist: Vec<usize>,
    chunk_hists: PaddedCounts,
    offsets: PaddedCounts,
    workers: Vec<WorkerScratch<K, V>>,
    reallocations: u64,
}

impl<K: Copy + Default, V: Copy + Default> Default for SortScratch<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Copy + Default, V: Copy + Default> SortScratch<K, V> {
    /// An empty scratch; the first sort through it sizes every buffer.
    pub fn new() -> Self {
        SortScratch {
            keys: Vec::new(),
            vals: Vec::new(),
            hist: Vec::new(),
            chunk_hists: PaddedCounts::new(0, 0),
            offsets: PaddedCounts::new(0, 0),
            workers: Vec::new(),
            reallocations: 0,
        }
    }

    /// How many times any backing buffer has grown since construction.
    /// Two identically-shaped sorts in a row leave this unchanged across
    /// the second — the steady-state allocation-free property the service
    /// tests assert.
    pub fn reallocations(&self) -> u64 {
        let mut total = self.reallocations;
        for w in &self.workers {
            total += w.reallocations;
        }
        total
    }

    /// Shape every engine buffer for one sort. Counts growths in
    /// `reallocations`; reuse is the common case.
    #[allow(clippy::too_many_arguments)]
    fn ensure(
        &mut self,
        n: usize,
        with_vals: bool,
        m: usize,
        bins: usize,
        workers: usize,
        buf_elems: Option<usize>,
        fused_rows: usize,
    ) {
        // The flip buffers are fully written before they are read (every
        // permute pass writes all n destination slots), so a same-length
        // reuse skips the default-fill entirely.
        let vn = if with_vals { n } else { 0 };
        let mut grew = false;
        if self.keys.len() != n {
            grew |= n > self.keys.capacity();
            self.keys.clear();
            self.keys.resize(n, K::default());
        }
        if self.vals.len() != vn {
            grew |= vn > self.vals.capacity();
            self.vals.clear();
            self.vals.resize(vn, V::default());
        }
        grew |= self.chunk_hists.reset(m, bins);
        grew |= self.offsets.reset(m, bins);
        if workers > self.workers.len() {
            grew = true;
            self.workers.resize_with(workers, WorkerScratch::new);
        }
        for w in &mut self.workers[..workers] {
            if let Some(e) = buf_elems {
                w.reallocations += w.stage.reset(bins, e, with_vals) as u64;
            }
            if fused_rows > 0 {
                w.reallocations += w.fused.reset(fused_rows, bins) as u64;
            }
        }
        self.reallocations += grew as u64;
    }

    /// Shape the sequential-fallback buffers (flip buffer + histogram).
    /// The histogram is zeroed at the start of every pass, so its contents
    /// don't matter here either.
    fn ensure_seq(&mut self, n: usize, with_vals: bool, bins: usize) {
        let vn = if with_vals { n } else { 0 };
        let mut grew = false;
        if self.keys.len() != n {
            grew |= n > self.keys.capacity();
            self.keys.clear();
            self.keys.resize(n, K::default());
        }
        if self.vals.len() != vn {
            grew |= vn > self.vals.capacity();
            self.vals.clear();
            self.vals.resize(vn, V::default());
        }
        if self.hist.len() != bins {
            grew |= bins > self.hist.capacity();
            self.hist.clear();
            self.hist.resize(bins, 0);
        }
        self.reallocations += grew as u64;
    }
}

/// The sequential fallback of the scratch entry points: the exact
/// algorithm of [`crate::seq::radix_sort_with_scratch`] /
/// [`crate::pairs::radix_sort_pairs`] (same pass structure, same stable
/// permutation, so identical output), run through the caller's scratch so
/// sub-cutoff sorts allocate nothing at steady state either.
pub(crate) fn seq_fallback<K, V, const WITH_VALS: bool>(
    keys: &mut [K],
    vals: &mut [V],
    radix_bits: u32,
    scratch: &mut SortScratch<K, V>,
) where
    K: RadixKey + Default,
    V: Copy + Default,
{
    let n = keys.len();
    if n <= 1 {
        return;
    }
    let bins = 1usize << radix_bits;
    let mask = (bins - 1) as u64;
    let passes = passes_for::<K>(radix_bits);
    scratch.ensure_seq(n, WITH_VALS, bins);
    let SortScratch { keys: kbuf, vals: vbuf, hist, .. } = scratch;
    let (kbuf, vbuf) = (&mut kbuf[..], &mut vbuf[..]);

    let mut flipped = false;
    for pass in 0..passes {
        let shift = pass * radix_bits;
        let (ks, vs, kd, vd): (&[K], &[V], &mut [K], &mut [V]) = if flipped {
            (&*kbuf, &*vbuf, &mut *keys, &mut *vals)
        } else {
            (&*keys, &*vals, &mut *kbuf, &mut *vbuf)
        };
        hist.fill(0);
        for k in ks.iter() {
            hist[k.digit(shift, mask)] += 1;
        }
        let mut acc = 0usize;
        for h in hist.iter_mut() {
            let c = *h;
            *h = acc;
            acc += c;
        }
        for (i, &k) in ks.iter().enumerate() {
            let d = k.digit(shift, mask);
            kd[hist[d]] = k;
            if WITH_VALS {
                vd[hist[d]] = vs[i];
            }
            hist[d] += 1;
        }
        flipped = !flipped;
    }
    if flipped {
        keys.copy_from_slice(&kbuf[..n]);
        if WITH_VALS {
            vals.copy_from_slice(&vbuf[..n]);
        }
    }
}

/// The shared engine behind [`par_radix_sort_with`] (V = `()`, no payload
/// lane) and `par_radix_sort_pairs_with` (`WITH_VALS = true`). Stable for
/// any configuration: within a chunk, keys are staged and flushed in input
/// order to consecutive positions; across chunks, the digit-major rank
/// construction orders lower chunk ids first.
pub(crate) fn sort_engine<K, V, const WITH_VALS: bool>(
    keys: &mut [K],
    vals: &mut [V],
    cfg: &RadixSortConfig,
    scratch: &mut SortScratch<K, V>,
) where
    K: RadixKey + Default,
    V: Copy + Send + Sync + Default,
{
    let n = keys.len();
    debug_assert!(n > 1, "engine callers handle the trivial sizes");
    let bins = 1usize << cfg.radix_bits;
    let mask = (bins - 1) as u64;
    let total_passes = passes_for::<K>(cfg.radix_bits) as usize;
    let workers = cfg.chunks.unwrap_or_else(default_workers).clamp(1, n);
    let target_chunks =
        if cfg.work_stealing { workers.saturating_mul(cfg.steal_granularity) } else { workers };
    let exec = Exec { geom: ChunkGeom::new(n, target_chunks), workers, steal: cfg.work_stealing };
    let m = exec.geom.chunks();

    let fused = cfg.fused_histogram && cfg.radix_bits <= MAX_FUSED_RADIX_BITS;
    // Counting the next pass during a permute needs one m × bins matrix per
    // worker; past the cache budget the re-read is cheaper than the misses.
    // It also needs the staging buffers: counting at flush time walks keys
    // that are already cache-hot in blocks, whereas counting inside the
    // direct scatter loop adds a row lookup to every single element.
    let count_during_permute =
        fused && cfg.coalesce_bytes.is_some() && m * bins <= MAX_FUSED_NH_WORDS;
    let buf_elems = cfg.coalesce_bytes.map(|b| (b / std::mem::size_of::<K>()).max(1));

    scratch.ensure(
        n,
        WITH_VALS,
        m,
        bins,
        workers,
        buf_elems,
        if fused { total_passes.saturating_sub(1) } else { 0 },
    );
    let SortScratch { keys: key_scratch, vals: val_scratch, chunk_hists, offsets, workers: ws, .. } =
        scratch;
    let (key_scratch, val_scratch) = (&mut key_scratch[..], &mut val_scratch[..]);
    let ws = &mut ws[..workers];

    // Pass schedule. In fused mode one read pass yields every pass's global
    // histogram (permutation-invariant, so valid for the whole sort): a
    // pass whose keys all share one digit is an identity permutation and is
    // skipped without ever being read again. The same read fills the
    // per-chunk histograms for pass 0, valid while no permute has moved
    // anything.
    let mut skip = vec![false; total_passes];
    let mut have_hists: Option<usize> = None;
    if fused {
        let globals = run_fused_count(keys, exec, cfg.radix_bits, total_passes, chunk_hists, ws);
        for (pass, hist) in globals.iter().enumerate() {
            skip[pass] = hist.contains(&n);
        }
        if !skip[0] {
            have_hists = Some(0);
        }
    }

    let mut flipped = false;
    for pass in 0..total_passes {
        if skip[pass] {
            continue;
        }
        let shift = pass as u32 * cfg.radix_bits;
        let (src_k, dst_k): (&[K], &mut [K]) =
            if flipped { (&*key_scratch, &mut *keys) } else { (&*keys, &mut *key_scratch) };
        let (src_v, dst_v): (&[V], &mut [V]) =
            if flipped { (&*val_scratch, &mut *vals) } else { (&*vals, &mut *val_scratch) };

        if have_hists != Some(pass) {
            run_count(src_k, exec, shift, mask, chunk_hists);
            have_hists = Some(pass);
        }
        let trivial = build_offsets(chunk_hists, offsets, n);
        if trivial {
            // Identity permutation discovered from the counts alone (only
            // reachable without fusion; the fused schedule skips these
            // before counting). Data stays in place; no flip.
            debug_assert!(!fused);
            continue;
        }

        let next_exec = if count_during_permute {
            ((pass + 1)..total_passes).find(|&p| !skip[p])
        } else {
            None
        };
        let ctx = PermuteCtx {
            src_k,
            src_v,
            out_k: SharedSlice::new(dst_k),
            out_v: SharedSlice::new(dst_v),
            geom: exec.geom,
            shift,
            mask,
            bins,
            next_shift: next_exec.map(|p| p as u32 * cfg.radix_bits),
        };
        run_permute::<K, V, WITH_VALS>(&ctx, exec, buf_elems, offsets, chunk_hists, ws);
        if let Some(np) = next_exec {
            have_hists = Some(np);
        }
        flipped = !flipped;
    }

    if flipped {
        keys.copy_from_slice(&key_scratch[..n]);
        if WITH_VALS {
            vals.copy_from_slice(&val_scratch[..n]);
        }
    }
}

/// Worker count when the configuration leaves it to the machine.
fn default_workers() -> usize {
    std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
}

/// Run `f(0..workers)` on real OS threads and collect the results in
/// worker order. `workers == 1` runs inline — the single-threaded
/// configurations pay no spawn cost. The scope join is the fork/join
/// barrier the `ChunkQueue` memory-ordering argument relies on.
fn run_workers<T, F>(workers: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if workers == 1 {
        return vec![f(0)];
    }
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let f = &f;
                s.spawn(move || f(w))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("sort worker panicked")).collect()
    })
}

/// Like [`run_workers`], but hands each worker exclusive `&mut` access to
/// its own [`WorkerScratch`] (disjoint by `iter_mut`) so per-worker staging
/// and count buffers survive across phases and across sorts instead of
/// being allocated per pass.
fn run_workers_scratch<K, V, F>(workers: usize, ws: &mut [WorkerScratch<K, V>], f: F)
where
    K: Send,
    V: Send,
    F: Fn(usize, &mut WorkerScratch<K, V>) + Sync,
{
    debug_assert_eq!(ws.len(), workers);
    if workers == 1 {
        f(0, &mut ws[0]);
        return;
    }
    std::thread::scope(|s| {
        for (w, slot) in ws.iter_mut().enumerate() {
            let f = &f;
            s.spawn(move || f(w, slot));
        }
    });
}

/// Per-chunk digit counts for one pass, in parallel over the chunk queue.
fn run_count<K: RadixKey>(
    src: &[K],
    exec: Exec,
    shift: u32,
    mask: u64,
    chunk_hists: &mut PaddedCounts,
) {
    let shared = chunk_hists.shared();
    let queue = ChunkQueue::new(exec.workers, exec.geom.chunks(), exec.steal);
    run_workers(exec.workers, |w| {
        while let Some(c) = queue.claim(w) {
            // SAFETY: chunk ids are claimed exactly once per phase, so row
            // `c` is touched by this worker only.
            let row = unsafe { shared.row_mut(c) };
            row.fill(0);
            count_digits_into(&src[exec.geom.range(c)], shift, mask, row);
        }
    });
}

/// The fused read: per-chunk counts for pass 0 into `chunk_hists`, plus
/// per-worker padded global counts for every later pass (each worker's
/// reusable `fused` matrix, zeroed by `ensure`), reduced and returned as
/// one global histogram per pass.
fn run_fused_count<K, V>(
    src: &[K],
    exec: Exec,
    radix_bits: u32,
    passes: usize,
    chunk_hists: &mut PaddedCounts,
    ws: &mut [WorkerScratch<K, V>],
) -> Vec<Vec<usize>>
where
    K: RadixKey + Send,
    V: Send,
{
    let bins = 1usize << radix_bits;
    let mask = (bins - 1) as u64;
    let shared = chunk_hists.shared();
    let queue = ChunkQueue::new(exec.workers, exec.geom.chunks(), exec.steal);
    // L1-blocked, pass-major: each block is counted once per pass through
    // the unrolled counter while it is still cache-hot, so the fused read
    // costs the same instructions as `passes` separate count loops but
    // makes only one trip through memory.
    const FUSED_BLOCK: usize = 2048;
    run_workers_scratch(exec.workers, ws, |w, wsc| {
        let high = &mut wsc.fused;
        while let Some(c) = queue.claim(w) {
            // SAFETY: chunk ids are claimed exactly once per phase.
            let row0 = unsafe { shared.row_mut(c) };
            row0.fill(0);
            for block in src[exec.geom.range(c)].chunks(FUSED_BLOCK) {
                count_digits_into(block, 0, mask, row0);
                for p in 1..passes {
                    count_digits_into(block, p as u32 * radix_bits, mask, high.row_mut(p - 1));
                }
            }
        }
    });

    let mut globals = vec![vec![0usize; bins]; passes];
    for c in 0..exec.geom.chunks() {
        for (g, h) in globals[0].iter_mut().zip(chunk_hists.row(c)) {
            *g += h;
        }
    }
    for part in ws.iter() {
        for (p, global) in globals.iter_mut().enumerate().skip(1) {
            for (g, h) in global.iter_mut().zip(part.fused.row(p - 1)) {
                *g += h;
            }
        }
    }
    globals
}

/// Global ranks from per-chunk counts, digit-major: `offset[c][d]` = keys
/// of smaller digits anywhere + digit-`d` keys of chunks before `c`.
/// Returns true when one digit holds every key (identity permutation).
fn build_offsets(chunk_hists: &PaddedCounts, offsets: &mut PaddedCounts, n: usize) -> bool {
    let m = chunk_hists.rows();
    let bins = chunk_hists.bins();
    let mut acc = 0usize;
    let mut trivial = false;
    for d in 0..bins {
        let before = acc;
        for c in 0..m {
            offsets.row_mut(c)[d] = acc;
            acc += chunk_hists.row(c)[d];
        }
        if acc - before == n {
            trivial = true;
        }
    }
    debug_assert_eq!(acc, n);
    trivial
}

/// One parallel permute pass over the chunk queue. When
/// `ctx.next_shift` is set, each worker also histograms the next pass's
/// digits of every key it writes — by *destination* chunk, so the counts
/// describe the array layout the next pass will read — and the per-worker
/// matrices are reduced into `chunk_hists`.
fn run_permute<K, V, const WITH_VALS: bool>(
    ctx: &PermuteCtx<'_, K, V>,
    exec: Exec,
    buf_elems: Option<usize>,
    offsets: &mut PaddedCounts,
    chunk_hists: &mut PaddedCounts,
    ws: &mut [WorkerScratch<K, V>],
) where
    K: RadixKey + Default,
    V: Copy + Send + Sync + Default,
{
    let m = ctx.geom.chunks();
    let off_shared = offsets.shared();
    let queue = ChunkQueue::new(exec.workers, m, exec.steal);
    run_workers_scratch(exec.workers, ws, |w, wsc| {
        // The next-pass count matrix is reshaped (reusing its buffer) at
        // the start of every permute pass that fuses counting; zeroing it
        // here replaces the per-pass allocation the first version paid.
        if ctx.next_shift.is_some() {
            wsc.reallocations += wsc.nh.reset(m, ctx.bins) as u64;
        }
        let nh = &mut wsc.nh;
        while let Some(c) = queue.claim(w) {
            // SAFETY: chunk ids are claimed exactly once per phase, so
            // offset row `c` is touched by this worker only.
            let off = unsafe { off_shared.row_mut(c) };
            match buf_elems {
                Some(_) => permute_chunk_coalesced::<K, V, WITH_VALS>(
                    ctx,
                    ctx.geom.range(c),
                    off,
                    &mut wsc.stage,
                    nh,
                ),
                None => permute_chunk_direct::<K, V, WITH_VALS>(ctx, ctx.geom.range(c), off, nh),
            }
        }
    });

    if ctx.next_shift.is_some() {
        chunk_hists.clear();
        for part in ws.iter() {
            chunk_hists.accumulate(&part.nh);
        }
    }
}

/// Permute one chunk through the write-coalescing stage.
fn permute_chunk_coalesced<K, V, const WITH_VALS: bool>(
    ctx: &PermuteCtx<'_, K, V>,
    range: Range<usize>,
    off: &mut [usize],
    stage: &mut Stage<K, V>,
    nh: &mut PaddedCounts,
) where
    K: RadixKey,
    V: Copy,
{
    let e = stage.elems;
    let start = range.start;
    for (j, k) in ctx.src_k[range].iter().copied().enumerate() {
        let d = k.digit(ctx.shift, ctx.mask);
        // SAFETY: `d <= mask < bins`, `fill.len() == bins`, and the
        // invariant `fill[d] < elems` (restored by the flush below the
        // moment a bucket becomes full) keeps `d * e + f` inside the
        // `bins * elems` buffers.
        let f = unsafe {
            let f = *stage.fill.get_unchecked(d) as usize;
            *stage.kbuf.get_unchecked_mut(d * e + f) = k;
            if WITH_VALS {
                *stage.vbuf.get_unchecked_mut(d * e + f) = ctx.src_v[start + j];
            }
            *stage.fill.get_unchecked_mut(d) = (f + 1) as u32;
            f
        };
        if f + 1 == e {
            flush_digit::<K, V, WITH_VALS>(ctx, stage, d, off, nh);
        }
    }
    // Chunk boundary: later chunks' digit ranks follow this chunk's, so
    // every partial buffer must land before another chunk's permute may
    // claim those positions — and the stage is reused for the next chunk,
    // whose offset row differs.
    for d in 0..ctx.bins {
        if stage.fill[d] > 0 {
            flush_digit::<K, V, WITH_VALS>(ctx, stage, d, off, nh);
        }
    }
}

/// Flush bucket `d`: one contiguous block store of the staged keys (and
/// payloads), plus the next-pass digit counts of the flushed elements,
/// binned by destination chunk.
#[inline]
fn flush_digit<K, V, const WITH_VALS: bool>(
    ctx: &PermuteCtx<'_, K, V>,
    stage: &mut Stage<K, V>,
    d: usize,
    off: &mut [usize],
    nh: &mut PaddedCounts,
) where
    K: RadixKey,
    V: Copy,
{
    let len = stage.fill[d] as usize;
    let e = stage.elems;
    let base = off[d];
    let kseg = &stage.kbuf[d * e..d * e + len];
    // SAFETY: [base, base + len) lies inside this chunk's digit-d rank
    // interval; the intervals are pairwise disjoint across (chunk, digit)
    // by construction of the prefix sums in `build_offsets`.
    unsafe { ctx.out_k.write_slice(base, kseg) };
    if WITH_VALS {
        unsafe { ctx.out_v.write_slice(base, &stage.vbuf[d * e..d * e + len]) };
    }
    if let Some(next_shift) = ctx.next_shift {
        // A flushed block spans at most a few destination chunks; count
        // each contiguous segment into its chunk's row.
        let mut idx = 0usize;
        while idx < len {
            let c = ctx.geom.chunk_of(base + idx);
            let seg_end = len.min(ctx.geom.end_of(c) - base);
            count_digits_into(&kseg[idx..seg_end], next_shift, ctx.mask, nh.row_mut(c));
            idx = seg_end;
        }
    }
    off[d] = base + len;
    stage.fill[d] = 0;
}

/// Permute one chunk with one write per element — the pre-coalescing
/// behaviour, kept selectable (`coalesce_bytes: None`) as the measured
/// baseline.
fn permute_chunk_direct<K, V, const WITH_VALS: bool>(
    ctx: &PermuteCtx<'_, K, V>,
    range: Range<usize>,
    off: &mut [usize],
    nh: &mut PaddedCounts,
) where
    K: RadixKey,
    V: Copy,
{
    for i in range {
        let k = ctx.src_k[i];
        let d = k.digit(ctx.shift, ctx.mask);
        let pos = off[d];
        // SAFETY: ranks partition [0, n) disjointly across (chunk, digit);
        // see `build_offsets`.
        unsafe {
            ctx.out_k.write(pos, k);
            if WITH_VALS {
                ctx.out_v.write(pos, ctx.src_v[i]);
            }
        }
        off[d] = pos + 1;
        if let Some(next_shift) = ctx.next_shift {
            nh.row_mut(ctx.geom.chunk_of(pos))[k.digit(next_shift, ctx.mask)] += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn check_sort<K: RadixKey + Default + std::fmt::Debug>(mut v: Vec<K>, cfg: &RadixSortConfig) {
        let mut expect = v.clone();
        expect.sort_unstable();
        par_radix_sort_with(&mut v, cfg);
        assert_eq!(v, expect);
    }

    /// Every mechanism toggle, for the cross-config sweeps below.
    fn all_configs() -> Vec<RadixSortConfig> {
        let base = RadixSortConfig { sequential_cutoff: 0, ..RadixSortConfig::default() };
        vec![
            RadixSortConfig { sequential_cutoff: 0, ..RadixSortConfig::simple() },
            RadixSortConfig { coalesce_bytes: None, work_stealing: true, ..base.clone() },
            RadixSortConfig { coalesce_bytes: Some(64), work_stealing: false, ..base.clone() },
            RadixSortConfig { coalesce_bytes: Some(4), fused_histogram: false, ..base.clone() },
            RadixSortConfig { coalesce_bytes: Some(1024), steal_granularity: 3, ..base.clone() },
            base,
        ]
    }

    #[test]
    fn sorts_large_u32() {
        let mut rng = StdRng::seed_from_u64(1);
        let v: Vec<u32> = (0..200_000).map(|_| rng.random()).collect();
        check_sort(v, &RadixSortConfig::default());
    }

    #[test]
    fn sorts_with_many_chunks() {
        let mut rng = StdRng::seed_from_u64(2);
        let v: Vec<u32> = (0..50_000).map(|_| rng.random()).collect();
        check_sort(
            v,
            &RadixSortConfig { chunks: Some(13), sequential_cutoff: 0, ..Default::default() },
        );
    }

    #[test]
    fn sorts_i64_and_u64() {
        let mut rng = StdRng::seed_from_u64(3);
        let v: Vec<i64> = (0..60_000).map(|_| rng.random()).collect();
        check_sort(v, &RadixSortConfig { sequential_cutoff: 0, ..Default::default() });
        let w: Vec<u64> = (0..60_000).map(|_| rng.random()).collect();
        check_sort(w, &RadixSortConfig { radix_bits: 11, sequential_cutoff: 0, ..Default::default() });
    }

    #[test]
    fn small_inputs_take_sequential_path() {
        let mut rng = StdRng::seed_from_u64(4);
        let v: Vec<u32> = (0..100).map(|_| rng.random()).collect();
        check_sort(v, &RadixSortConfig::default());
        check_sort(Vec::<u32>::new(), &RadixSortConfig::default());
        check_sort(vec![9u32], &RadixSortConfig::default());
    }

    #[test]
    fn sorts_skewed_inputs() {
        // All equal: with fusion every pass is trivial and skipped.
        check_sort(vec![42u32; 30_000], &RadixSortConfig { sequential_cutoff: 0, ..Default::default() });
        // Already sorted / reversed.
        check_sort((0..30_000u32).collect(), &RadixSortConfig { sequential_cutoff: 0, ..Default::default() });
        check_sort((0..30_000u32).rev().collect(), &RadixSortConfig { sequential_cutoff: 0, ..Default::default() });
        // Low cardinality.
        let mut rng = StdRng::seed_from_u64(5);
        let v: Vec<u32> = (0..30_000).map(|_| rng.random_range(0..4u32)).collect();
        check_sort(v, &RadixSortConfig { sequential_cutoff: 0, ..Default::default() });
    }

    #[test]
    fn more_chunks_than_keys_is_fine() {
        let mut rng = StdRng::seed_from_u64(6);
        let v: Vec<u32> = (0..64).map(|_| rng.random()).collect();
        check_sort(
            v,
            &RadixSortConfig { chunks: Some(1000), sequential_cutoff: 0, ..Default::default() },
        );
    }

    #[test]
    fn every_config_sorts_every_shape() {
        let mut rng = StdRng::seed_from_u64(7);
        let shapes: Vec<Vec<u32>> = vec![
            (0..40_000).map(|_| rng.random()).collect(),
            (0..40_000).map(|_| rng.random_range(0..8u32)).collect(),
            (0..40_000u32).collect(),
            // Keys confined to the low 16 bits: the two high passes are
            // trivial and the fused path must skip them.
            (0..40_000).map(|_| rng.random_range(0..u16::MAX as u32)).collect(),
        ];
        for cfg in all_configs() {
            for shape in &shapes {
                check_sort(shape.clone(), &cfg);
            }
        }
    }

    #[test]
    fn simple_and_default_agree_bit_for_bit() {
        let mut rng = StdRng::seed_from_u64(8);
        let v: Vec<u64> = (0..50_000).map(|_| rng.random::<u64>() & 0xFFFF_FFFF).collect();
        let mut a = v.clone();
        let mut b = v;
        par_radix_sort_with(&mut a, &RadixSortConfig { sequential_cutoff: 0, ..RadixSortConfig::simple() });
        par_radix_sort_with(&mut b, &RadixSortConfig { sequential_cutoff: 0, ..Default::default() });
        assert_eq!(a, b);
    }

    #[test]
    fn validation_names_the_offending_field() {
        let ok = RadixSortConfig::default();
        assert!(ok.validate().is_ok());
        assert!(RadixSortConfig::simple().validate().is_ok());
        let cases: Vec<(RadixSortConfig, &str)> = vec![
            (RadixSortConfig { radix_bits: 0, ..ok.clone() }, "radix_bits = 0"),
            (RadixSortConfig { radix_bits: 17, ..ok.clone() }, "radix_bits = 17"),
            (RadixSortConfig { chunks: Some(0), ..ok.clone() }, "chunks = 0"),
            (RadixSortConfig { coalesce_bytes: Some(0), ..ok.clone() }, "coalesce_bytes = 0"),
            (
                RadixSortConfig { coalesce_bytes: Some(MAX_COALESCE_BYTES + 1), ..ok.clone() },
                "coalesce_bytes =",
            ),
            (RadixSortConfig { steal_granularity: 0, ..ok.clone() }, "steal_granularity = 0"),
        ];
        for (cfg, needle) in cases {
            let err = cfg.validate().expect_err("config must be rejected");
            assert!(err.contains(needle), "error {err:?} does not name {needle:?}");
        }
    }

    #[test]
    #[should_panic(expected = "invalid RadixSortConfig")]
    fn sort_rejects_degenerate_config() {
        let mut v = vec![3u32, 1, 2];
        par_radix_sort_with(
            &mut v,
            &RadixSortConfig { coalesce_bytes: Some(0), ..Default::default() },
        );
    }

    #[test]
    fn scratch_path_matches_fresh_path() {
        let mut rng = StdRng::seed_from_u64(31);
        let mut scratch: SortScratch<u64> = SortScratch::new();
        for cfg in all_configs() {
            for n in [0usize, 1, 7, 300, 40_000] {
                let input: Vec<u64> = (0..n as u64).map(|_| rng.random()).collect();
                let mut fresh = input.clone();
                let mut reused = input;
                par_radix_sort_with(&mut fresh, &cfg);
                par_radix_sort_with_scratch(&mut reused, &cfg, &mut scratch);
                assert_eq!(fresh, reused, "scratch path diverges for n={n} under {cfg:?}");
            }
        }
    }

    #[test]
    fn steady_state_reuses_scratch_without_reallocating() {
        let mut rng = StdRng::seed_from_u64(32);
        let cfg = RadixSortConfig::default();
        let mut scratch: SortScratch<u32> = SortScratch::new();
        let n = 60_000;
        // Warm-up sort shapes every buffer for (n, cfg).
        let mut v: Vec<u32> = (0..n).map(|_| rng.random()).collect();
        par_radix_sort_with_scratch(&mut v, &cfg, &mut scratch);
        let warm = scratch.reallocations();
        // Same-shaped sorts afterwards must not grow any buffer.
        for _ in 0..3 {
            let mut v: Vec<u32> = (0..n).map(|_| rng.random()).collect();
            par_radix_sort_with_scratch(&mut v, &cfg, &mut scratch);
            assert!(v.windows(2).all(|w| w[0] <= w[1]));
        }
        assert_eq!(
            scratch.reallocations(),
            warm,
            "same-shape resort reallocated scratch buffers"
        );
        // A smaller sort also fits in the warmed buffers.
        let mut v: Vec<u32> = (0..n / 2).map(|_| rng.random()).collect();
        par_radix_sort_with_scratch(&mut v, &cfg, &mut scratch);
        assert_eq!(scratch.reallocations(), warm, "shrinking resort reallocated");
    }

    #[test]
    fn seq_fallback_through_scratch_is_stable_and_reuses() {
        let mut scratch: SortScratch<u16, u32> = SortScratch::new();
        let cfg = RadixSortConfig::default(); // cutoff leaves small inputs sequential
        let n = 512usize;
        assert!(n <= cfg.sequential_cutoff);
        let mut warm = 0;
        for round in 0..3u32 {
            let mut keys: Vec<u16> = (0..n as u32).map(|i| (i % 7) as u16).collect();
            let mut vals: Vec<u32> = (0..n as u32).map(|i| i * 10 + round).collect();
            let mut expect: Vec<(u16, u32)> =
                keys.iter().copied().zip(vals.iter().copied()).collect();
            expect.sort_by_key(|p| p.0); // sort_by_key is stable
            crate::pairs::par_radix_sort_pairs_with_scratch(&mut keys, &mut vals, &cfg, &mut scratch);
            let got: Vec<(u16, u32)> = keys.into_iter().zip(vals).collect();
            assert_eq!(got, expect, "sequential fallback not stable (round {round})");
            if round == 0 {
                warm = scratch.reallocations();
            } else {
                assert_eq!(scratch.reallocations(), warm, "seq fallback reallocated");
            }
        }
    }

    #[test]
    fn chunk_geometry_partitions_exactly() {
        for (n, target) in [(10usize, 3usize), (1, 1), (100, 7), (1 << 16, 64), (65, 64), (7, 100)]
        {
            let g = ChunkGeom::new(n, target);
            let mut covered = 0usize;
            for c in 0..g.chunks() {
                let r = g.range(c);
                assert_eq!(r.start, covered, "n={n} target={target} chunk={c}");
                assert!(!r.is_empty(), "empty chunk {c} for n={n} target={target}");
                for pos in r.clone() {
                    assert_eq!(g.chunk_of(pos), c);
                }
                covered = r.end;
            }
            assert_eq!(covered, n);
        }
    }
}
