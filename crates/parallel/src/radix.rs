//! Thread-parallel LSD radix sort.
//!
//! The structure mirrors the paper's parallel radix sort: each pass builds
//! per-chunk histograms in parallel, combines them into global ranks
//! (`offset[chunk][digit]`), and permutes keys directly to their final
//! positions. On a shared-memory machine the permutation is the "CC-SAS"
//! flavour — every worker writes straight into the shared output through a
//! [`SharedSlice`], with disjointness guaranteed by the rank arithmetic.

use rayon::prelude::*;

use crate::key::RadixKey;
use crate::seq::{passes_for, DEFAULT_RADIX_BITS};
use crate::shared::SharedSlice;

/// Configuration for [`par_radix_sort_with`].
#[derive(Debug, Clone)]
pub struct RadixSortConfig {
    /// Digit width in bits (1..=16).
    pub radix_bits: u32,
    /// Number of parallel chunks; `None` = number of rayon threads.
    pub chunks: Option<usize>,
    /// Below this length, fall back to the sequential sort (parallel
    /// overhead doesn't pay off).
    pub sequential_cutoff: usize,
}

impl Default for RadixSortConfig {
    fn default() -> Self {
        RadixSortConfig { radix_bits: DEFAULT_RADIX_BITS, chunks: None, sequential_cutoff: 1 << 13 }
    }
}

/// Half-open range of chunk `i` when `n` elements are split into `t` chunks.
#[inline]
fn chunk_range(n: usize, t: usize, i: usize) -> std::ops::Range<usize> {
    (i * n / t)..((i + 1) * n / t)
}

/// Sort `keys` in parallel with the default configuration.
pub fn par_radix_sort<K: RadixKey + Default>(keys: &mut [K]) {
    par_radix_sort_with(keys, &RadixSortConfig::default());
}

/// Sort `keys` in parallel with an explicit configuration.
pub fn par_radix_sort_with<K: RadixKey + Default>(keys: &mut [K], cfg: &RadixSortConfig) {
    assert!((1..=16).contains(&cfg.radix_bits), "radix_bits out of range");
    let n = keys.len();
    if n <= cfg.sequential_cutoff.max(1) {
        crate::seq::radix_sort(keys, cfg.radix_bits);
        return;
    }
    let t = cfg.chunks.unwrap_or_else(rayon::current_num_threads).clamp(1, n);
    let bins = 1usize << cfg.radix_bits;
    let mask = (bins - 1) as u64;
    let passes = passes_for::<K>(cfg.radix_bits);
    let mut scratch = vec![K::default(); n];

    let mut flipped = false;
    for pass in 0..passes {
        let shift = pass * cfg.radix_bits;
        let (src, dst): (&[K], &mut [K]) =
            if flipped { (&*scratch, &mut *keys) } else { (&*keys, &mut *scratch) };

        // Phase 1: per-chunk histograms, in parallel.
        let hists: Vec<Vec<usize>> = (0..t)
            .into_par_iter()
            .map(|c| {
                let mut h = vec![0usize; bins];
                for k in &src[chunk_range(n, t, c)] {
                    h[k.digit(shift, mask)] += 1;
                }
                h
            })
            .collect();

        // Phase 2: global ranks. offset[c][d] = start of chunk c's digit-d
        // keys in the output = (total of smaller digits) + (digit-d keys of
        // earlier chunks).
        let mut offsets = vec![vec![0usize; bins]; t];
        {
            let mut acc = 0usize;
            for d in 0..bins {
                for c in 0..t {
                    offsets[c][d] = acc;
                    acc += hists[c][d];
                }
            }
            debug_assert_eq!(acc, n);
        }

        // Phase 3: parallel permutation through disjoint ranks.
        let out = SharedSlice::new(dst);
        offsets.par_iter_mut().enumerate().for_each(|(c, off)| {
            for &k in &src[chunk_range(n, t, c)] {
                let d = k.digit(shift, mask);
                // SAFETY: ranks partition [0, n): chunk c's digit-d keys
                // occupy [offset[c][d], offset[c][d] + hist[c][d]), and these
                // intervals are pairwise disjoint across (c, d) by
                // construction of the prefix sums above.
                unsafe { out.write(off[d], k) };
                off[d] += 1;
            }
        });

        flipped = !flipped;
    }
    if flipped {
        keys.copy_from_slice(&scratch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn check_sort<K: RadixKey + Default + std::fmt::Debug>(mut v: Vec<K>, cfg: &RadixSortConfig) {
        let mut expect = v.clone();
        expect.sort_unstable();
        par_radix_sort_with(&mut v, cfg);
        assert_eq!(v, expect);
    }

    #[test]
    fn sorts_large_u32() {
        let mut rng = StdRng::seed_from_u64(1);
        let v: Vec<u32> = (0..200_000).map(|_| rng.random()).collect();
        check_sort(v, &RadixSortConfig::default());
    }

    #[test]
    fn sorts_with_many_chunks() {
        let mut rng = StdRng::seed_from_u64(2);
        let v: Vec<u32> = (0..50_000).map(|_| rng.random()).collect();
        check_sort(
            v,
            &RadixSortConfig { chunks: Some(13), sequential_cutoff: 0, ..Default::default() },
        );
    }

    #[test]
    fn sorts_i64_and_u64() {
        let mut rng = StdRng::seed_from_u64(3);
        let v: Vec<i64> = (0..60_000).map(|_| rng.random()).collect();
        check_sort(v, &RadixSortConfig { sequential_cutoff: 0, ..Default::default() });
        let w: Vec<u64> = (0..60_000).map(|_| rng.random()).collect();
        check_sort(w, &RadixSortConfig { radix_bits: 11, sequential_cutoff: 0, ..Default::default() });
    }

    #[test]
    fn small_inputs_take_sequential_path() {
        let mut rng = StdRng::seed_from_u64(4);
        let v: Vec<u32> = (0..100).map(|_| rng.random()).collect();
        check_sort(v, &RadixSortConfig::default());
        check_sort(Vec::<u32>::new(), &RadixSortConfig::default());
        check_sort(vec![9u32], &RadixSortConfig::default());
    }

    #[test]
    fn sorts_skewed_inputs() {
        // All equal.
        check_sort(vec![42u32; 30_000], &RadixSortConfig { sequential_cutoff: 0, ..Default::default() });
        // Already sorted / reversed.
        check_sort((0..30_000u32).collect(), &RadixSortConfig { sequential_cutoff: 0, ..Default::default() });
        check_sort((0..30_000u32).rev().collect(), &RadixSortConfig { sequential_cutoff: 0, ..Default::default() });
        // Low cardinality.
        let mut rng = StdRng::seed_from_u64(5);
        let v: Vec<u32> = (0..30_000).map(|_| rng.random_range(0..4u32)).collect();
        check_sort(v, &RadixSortConfig { sequential_cutoff: 0, ..Default::default() });
    }

    #[test]
    fn more_chunks_than_keys_is_fine() {
        let mut rng = StdRng::seed_from_u64(6);
        let v: Vec<u32> = (0..64).map(|_| rng.random()).collect();
        check_sort(
            v,
            &RadixSortConfig { chunks: Some(1000), sequential_cutoff: 0, ..Default::default() },
        );
    }
}
