//! MSD (most-significant-digit-first) radix sort — in-place, with parallel
//! recursion over buckets.
//!
//! The paper's algorithms are LSD; MSD is the classic alternative with a
//! different trade-off: no scratch array (American-flag permutation cycles
//! in place), early termination on short buckets, and natural parallelism
//! across disjoint buckets instead of across passes. Included so downstream
//! users can pick per workload; the test suite cross-checks it against the
//! LSD sorts.

use rayon::prelude::*;

use crate::key::RadixKey;

/// Buckets shorter than this use insertion sort (standard MSD cutoff).
const INSERTION_CUTOFF: usize = 48;
/// Buckets shorter than this sort sequentially rather than spawning.
const PARALLEL_CUTOFF: usize = 1 << 13;
/// Digit width (8 keeps the 256-counter histogram cheap per level).
const MSD_BITS: u32 = 8;

/// Sort `keys` in place with a parallel MSD radix sort.
pub fn par_msd_radix_sort<K: RadixKey>(keys: &mut [K]) {
    if keys.len() <= 1 {
        return;
    }
    let top_shift = K::BITS.saturating_sub(MSD_BITS);
    msd_recurse(keys, top_shift, true);
}

/// Sort `keys` in place with the sequential MSD radix sort.
pub fn msd_radix_sort<K: RadixKey>(keys: &mut [K]) {
    if keys.len() <= 1 {
        return;
    }
    let top_shift = K::BITS.saturating_sub(MSD_BITS);
    msd_recurse(keys, top_shift, false);
}

fn insertion_sort<K: RadixKey>(keys: &mut [K]) {
    for i in 1..keys.len() {
        let mut j = i;
        while j > 0 && keys[j - 1] > keys[j] {
            keys.swap(j - 1, j);
            j -= 1;
        }
    }
}

fn msd_recurse<K: RadixKey>(keys: &mut [K], shift: u32, parallel: bool) {
    if keys.len() <= INSERTION_CUTOFF {
        insertion_sort(keys);
        return;
    }
    let bins = 1usize << MSD_BITS;
    let mask = (bins - 1) as u64;

    // Histogram of the current digit.
    let mut counts = vec![0usize; bins];
    for k in keys.iter() {
        counts[k.digit(shift, mask)] += 1;
    }
    // Bucket start/end cursors.
    let mut starts = vec![0usize; bins + 1];
    for d in 0..bins {
        starts[d + 1] = starts[d] + counts[d];
    }

    // American-flag in-place permutation: walk each bucket's head cursor,
    // swapping misplaced keys into their home buckets.
    let mut heads = starts.clone();
    for d in 0..bins {
        let end = starts[d + 1];
        while heads[d] < end {
            let k = keys[heads[d]];
            let home = k.digit(shift, mask);
            if home == d {
                heads[d] += 1;
            } else {
                keys.swap(heads[d], heads[home]);
                heads[home] += 1;
            }
        }
    }

    if shift == 0 {
        return; // last digit: buckets are fully sorted
    }
    let next_shift = shift.saturating_sub(MSD_BITS);

    // Recurse into buckets — disjoint slices, so this parallelizes with
    // ordinary split borrows (no unsafe needed).
    let mut rest: &mut [K] = keys;
    let mut buckets: Vec<&mut [K]> = Vec::new();
    for d in 0..bins {
        let (head, tail) = rest.split_at_mut(starts[d + 1] - starts[d]);
        buckets.push(head);
        rest = tail;
    }
    if parallel {
        buckets.into_par_iter().for_each(|b| {
            if b.len() > 1 {
                msd_recurse(b, next_shift, b.len() >= PARALLEL_CUTOFF);
            }
        });
    } else {
        for b in buckets {
            if b.len() > 1 {
                msd_recurse(b, next_shift, false);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn check<K: RadixKey + std::fmt::Debug>(mut v: Vec<K>, parallel: bool) {
        let mut expect = v.clone();
        expect.sort_unstable();
        if parallel {
            par_msd_radix_sort(&mut v);
        } else {
            msd_radix_sort(&mut v);
        }
        assert_eq!(v, expect);
    }

    #[test]
    fn msd_sorts_u32() {
        let mut rng = StdRng::seed_from_u64(1);
        check((0..50_000).map(|_| rng.random::<u32>()).collect(), false);
        check((0..50_000).map(|_| rng.random::<u32>()).collect(), true);
    }

    #[test]
    fn msd_sorts_signed_and_wide() {
        let mut rng = StdRng::seed_from_u64(2);
        check((0..30_000).map(|_| rng.random::<i64>()).collect(), true);
        check((0..30_000).map(|_| rng.random::<u64>()).collect(), true);
        check((0..30_000).map(|_| rng.random::<i8>()).collect(), true);
    }

    #[test]
    fn msd_edge_cases() {
        check(Vec::<u32>::new(), true);
        check(vec![1u32], true);
        check(vec![5u32; 10_000], true);
        check((0..10_000u32).collect(), true);
        check((0..10_000u32).rev().collect(), true);
        // Low cardinality (deep equal-prefix recursion).
        let mut rng = StdRng::seed_from_u64(3);
        check((0..30_000).map(|_| rng.random_range(0..3u32)).collect(), true);
    }

    #[test]
    fn msd_matches_lsd() {
        let mut rng = StdRng::seed_from_u64(4);
        let v: Vec<u32> = (0..40_000).map(|_| rng.random()).collect();
        let mut a = v.clone();
        let mut b = v;
        par_msd_radix_sort(&mut a);
        crate::radix::par_radix_sort(&mut b);
        assert_eq!(a, b);
    }
}
