//! In-process symmetric-heap (SHMEM-style) runtime and a radix sort written
//! against it.
//!
//! SHMEM's defining features, reproduced over threads: every PE owns a
//! same-sized segment of a *symmetric heap*, and one-sided `put`/`get`
//! operations name remote data by (PE, offset) — no receiver involvement.
//! Synchronization is by barrier epochs, exactly as on the SGI library: a
//! PE may `get` a remote region only after the barrier that follows the
//! writes to it, and no PE may write a region another PE reads in the same
//! epoch. The radix sort here is the paper's SHMEM program: publish
//! histograms, collect them, permute locally into a staged region, then
//! *receiver-initiated* `get`s pull each chunk into place.
//!
//! ## Debug-build epoch-protocol checker
//!
//! The aliasing contract above is exactly what each `unsafe` block's
//! SAFETY comment argues — and comments don't fail tests. In debug builds
//! the heap therefore *checks* the contract: every `local`/`local_mut`/
//! `get`/`put` records an access claim `(pe, segment, range, read|write)`
//! in a shared log, each new claim is checked for an overlap with another
//! PE's claim on the same segment where either side writes, and
//! [`Pe::barrier`] clears the log (the epoch boundary). A violation —
//! e.g. a `get` from a segment its owner is mutating in the same epoch —
//! panics with both parties named, instead of being silent UB. Release
//! builds compile all of it away. (A model checker exploring thread
//! interleavings would be stronger still, but the bulk-synchronous
//! discipline makes the per-epoch claim-set interleaving-independent:
//! whatever order threads reach the log, the same claims meet the same
//! epoch, so this check is exhaustive for the property it states.)

use std::cell::UnsafeCell;
use std::sync::{Arc, Barrier};
#[cfg(debug_assertions)]
use std::sync::Mutex;

use crate::key::RadixKey;
use crate::seq::passes_for;

struct Segment<K> {
    data: UnsafeCell<Vec<K>>,
}

// SAFETY: cross-segment access is coordinated by barrier epochs; the unsafe
// `put`/`get`/`local_mut` APIs carry the aliasing contract.
unsafe impl<K: Send> Sync for Segment<K> {}

/// One access claim of the debug-build epoch checker: `pe` accessed
/// `[lo, hi)` of `seg`'s segment this epoch, through `op`.
#[cfg(debug_assertions)]
#[derive(Debug, Clone, Copy)]
struct Claim {
    pe: usize,
    seg: usize,
    lo: usize,
    hi: usize,
    write: bool,
    op: &'static str,
}

/// The symmetric heap: one equally-sized segment per PE.
pub struct SymHeap<K> {
    segs: Vec<Segment<K>>,
    seg_len: usize,
    barrier: Barrier,
    /// Per-epoch access claims (debug builds only; see the module docs).
    #[cfg(debug_assertions)]
    claims: Mutex<Vec<Claim>>,
}

impl<K: RadixKey + Default> SymHeap<K> {
    /// Create a heap of `npes` segments of `seg_len` elements each.
    pub fn new(npes: usize, seg_len: usize) -> Self {
        assert!(npes >= 1);
        SymHeap {
            segs: (0..npes).map(|_| Segment { data: UnsafeCell::new(vec![K::default(); seg_len]) }).collect(),
            seg_len,
            barrier: Barrier::new(npes),
            #[cfg(debug_assertions)]
            claims: Mutex::new(Vec::new()),
        }
    }

    /// Record one epoch claim and panic on a conflict with an existing one
    /// (debug builds; the release build has no checker and no log).
    #[cfg(debug_assertions)]
    fn record_claim(&self, claim: Claim) {
        let mut log = self.claims.lock().unwrap();
        for prev in log.iter() {
            if prev.seg == claim.seg
                && prev.pe != claim.pe
                && (prev.write || claim.write)
                && prev.lo < claim.hi
                && claim.lo < prev.hi
            {
                panic!(
                    "symmetric-heap epoch protocol violated on segment {}: \
                     pe {} {} [{}, {}) and pe {} {} [{}, {}) in the same barrier epoch",
                    claim.seg, prev.pe, prev.op, prev.lo, prev.hi, claim.pe, claim.op, claim.lo,
                    claim.hi
                );
            }
        }
        log.push(claim);
    }

    /// Number of PEs.
    pub fn n_pes(&self) -> usize {
        self.segs.len()
    }

    /// Segment length (elements).
    pub fn seg_len(&self) -> usize {
        self.seg_len
    }

    /// Run `f` as an SPMD program, one thread per PE.
    pub fn run<F>(self: &Arc<Self>, f: F)
    where
        F: Fn(Pe<K>) + Sync,
        K: Send,
    {
        std::thread::scope(|s| {
            for pe in 0..self.n_pes() {
                let heap = Arc::clone(self);
                let f = &f;
                s.spawn(move || f(Pe { pe, heap }));
            }
        });
    }

    /// Read a segment after all threads have finished (safe: exclusive
    /// access through `&mut self`).
    pub fn segment_mut(&mut self, pe: usize) -> &mut Vec<K> {
        self.segs[pe].data.get_mut()
    }
}

/// A PE's handle onto the symmetric heap.
pub struct Pe<K: RadixKey + Default> {
    pe: usize,
    heap: Arc<SymHeap<K>>,
}

impl<K: RadixKey + Default> Pe<K> {
    /// This PE's id.
    pub fn pe(&self) -> usize {
        self.pe
    }

    /// Number of PEs.
    pub fn n_pes(&self) -> usize {
        self.heap.n_pes()
    }

    /// Barrier across all PEs (the epoch boundary of the aliasing rules).
    pub fn barrier(&self) {
        #[cfg(debug_assertions)]
        {
            // Two waits so the leader can clear the claim log while every
            // other thread is parked between them: no claim of the new
            // epoch can be recorded before the old ones are gone.
            if self.heap.barrier.wait().is_leader() {
                self.heap.claims.lock().unwrap().clear();
            }
            self.heap.barrier.wait();
        }
        #[cfg(not(debug_assertions))]
        self.heap.barrier.wait();
    }

    /// Mutable view of this PE's own segment.
    ///
    /// # Safety
    ///
    /// Within the current barrier epoch, no other PE may `get` from or
    /// `put` into any part of this segment that is accessed through the
    /// returned slice. (Debug builds check the stronger whole-segment
    /// claim: use [`Pe::local`] in epochs that only read.)
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn local_mut(&self) -> &mut [K] {
        #[cfg(debug_assertions)]
        self.heap.record_claim(Claim {
            pe: self.pe,
            seg: self.pe,
            lo: 0,
            hi: self.heap.seg_len,
            write: true,
            op: "local_mut",
        });
        unsafe { &mut *self.heap.segs[self.pe].data.get() }
    }

    /// Shared view of this PE's own segment, for epochs that only read it
    /// (remote PEs may concurrently `get` from it).
    ///
    /// # Safety
    ///
    /// Within the current barrier epoch, no PE may `put` into this
    /// segment, and this PE must not hold a live [`Pe::local_mut`] borrow.
    pub unsafe fn local(&self) -> &[K] {
        #[cfg(debug_assertions)]
        self.heap.record_claim(Claim {
            pe: self.pe,
            seg: self.pe,
            lo: 0,
            hi: self.heap.seg_len,
            write: false,
            op: "local",
        });
        unsafe { &*self.heap.segs[self.pe].data.get() }
    }

    /// One-sided `get`: copy `dst.len()` elements from `(src_pe, src_off)`
    /// into `dst`.
    ///
    /// # Safety
    ///
    /// No PE (including `src_pe` itself) may write
    /// `[src_off, src_off + dst.len())` of `src_pe`'s segment in the
    /// current barrier epoch.
    pub unsafe fn get(&self, dst: &mut [K], src_pe: usize, src_off: usize) {
        #[cfg(debug_assertions)]
        self.heap.record_claim(Claim {
            pe: self.pe,
            seg: src_pe,
            lo: src_off,
            hi: src_off + dst.len(),
            write: false,
            op: "get",
        });
        let src = unsafe { &*self.heap.segs[src_pe].data.get() };
        dst.copy_from_slice(&src[src_off..src_off + dst.len()]);
    }

    /// One-sided `put`: copy `src` into `(dst_pe, dst_off)`.
    ///
    /// # Safety
    ///
    /// No PE may read or write `[dst_off, dst_off + src.len())` of
    /// `dst_pe`'s segment in the current barrier epoch, other than through
    /// this call.
    pub unsafe fn put(&self, src: &[K], dst_pe: usize, dst_off: usize) {
        #[cfg(debug_assertions)]
        self.heap.record_claim(Claim {
            pe: self.pe,
            seg: dst_pe,
            lo: dst_off,
            hi: dst_off + src.len(),
            write: true,
            op: "put",
        });
        let dst = unsafe { &mut *self.heap.segs[dst_pe].data.get() };
        dst[dst_off..dst_off + src.len()].copy_from_slice(src);
    }
}

/// Sort `keys` with the paper's SHMEM radix-sort algorithm over `p`
/// in-process PEs (receiver-initiated `get`s for the key exchange).
pub fn radix_sort_shmem<K: RadixKey + Default + Send>(keys: &mut [K], p: usize, radix_bits: u32) {
    let n = keys.len();
    if n == 0 || p <= 1 {
        crate::seq::radix_sort(keys, radix_bits.clamp(1, 16));
        return;
    }
    let p = p.min(n);
    assert!((1..=16).contains(&radix_bits));
    let bins = 1usize << radix_bits;
    let mask = (bins - 1) as u64;
    let passes = passes_for::<K>(radix_bits);
    let part_start = |i: usize| i * n / p;
    let max_part = (0..p).map(|i| part_start(i + 1) - part_start(i)).max().unwrap();

    // Segment layout: [0, max_part) current keys; [max_part, 2*max_part)
    // staged chunks. Histograms travel through a separate symmetric array,
    // here simply a second heap region: [2*max_part, 2*max_part + bins).
    let seg_len = 2 * max_part + bins;
    let heap: Arc<SymHeap<K>> = Arc::new(SymHeap::new(p, seg_len));
    // K may be narrower than the counts need; publish counts via a shared
    // side table instead of squeezing them into K. (A real SHMEM program
    // would use a symmetric integer array; this plays that role.)
    let hist_table: Vec<UnsafeCell<Vec<usize>>> =
        (0..p).map(|_| UnsafeCell::new(vec![0usize; bins])).collect();
    struct Table<'a>(&'a [UnsafeCell<Vec<usize>>]);
    unsafe impl Sync for Table<'_> {}
    let hist_table_ref = Table(&hist_table);

    let input = &*keys;
    heap.run(|ctx: Pe<K>| {
        let me = ctx.pe();
        let base = part_start(me);
        let len = part_start(me + 1) - base;
        // SAFETY: each PE writes only its own segment before the barrier.
        let local = unsafe { ctx.local_mut() };
        local[..len].copy_from_slice(&input[base..base + len]);
        ctx.barrier();

        let table = &hist_table_ref;
        for pass in 0..passes {
            let shift = pass * radix_bits;
            // Phase 1: local histogram, published to the table.
            let mut hist = vec![0usize; bins];
            // SAFETY: reading our own keys region; nobody writes it this epoch.
            let local = unsafe { ctx.local() };
            for k in &local[..len] {
                hist[k.digit(shift, mask)] += 1;
            }
            // SAFETY: slot `me` written only by this PE this epoch.
            unsafe { (*table.0[me].get()).copy_from_slice(&hist) };
            ctx.barrier();

            // Phase 2: collect everyone's histogram; compute ranks.
            // SAFETY: all slots were published before the barrier; this
            // epoch only reads them.
            let all_hists: Vec<Vec<usize>> =
                (0..ctx.n_pes()).map(|j| unsafe { (*table.0[j].get()).clone() }).collect();
            let mut offsets = vec![vec![0usize; bins]; ctx.n_pes()];
            let mut acc = 0usize;
            for d in 0..bins {
                for (j, h) in all_hists.iter().enumerate() {
                    offsets[j][d] = acc;
                    acc += h[d];
                }
            }
            let lscans: Vec<Vec<usize>> = all_hists
                .iter()
                .map(|h| {
                    let mut scan = Vec::with_capacity(bins);
                    let mut a = 0;
                    for &c in h {
                        scan.push(a);
                        a += c;
                    }
                    scan
                })
                .collect();

            // Phase 3: permute own keys into the staged region.
            let mut cursors = lscans[me].clone();
            // SAFETY: writing only our own staged region this epoch.
            let local = unsafe { ctx.local_mut() };
            for i in 0..len {
                let k = local[i];
                let d = k.digit(shift, mask);
                local[max_part + cursors[d]] = k;
                cursors[d] += 1;
            }
            ctx.barrier();

            // Phase 4: receiver-initiated gets — pull every chunk piece
            // that lands in our partition.
            let my_lo = base;
            let my_hi = base + len;
            let mut incoming: Vec<K> = vec![K::default(); len];
            for j in 0..ctx.n_pes() {
                for d in 0..bins {
                    let clen = all_hists[j][d];
                    if clen == 0 {
                        continue;
                    }
                    let goff = offsets[j][d];
                    let s = goff.max(my_lo);
                    let e = (goff + clen).min(my_hi);
                    if s >= e {
                        continue;
                    }
                    let src_off = max_part + lscans[j][d] + (s - goff);
                    // SAFETY: staged regions were sealed by the barrier
                    // above and are read-only this epoch.
                    unsafe { ctx.get(&mut incoming[s - my_lo..e - my_lo], j, src_off) };
                }
            }
            ctx.barrier();
            // SAFETY: writing only our own keys region; the epoch that read
            // the *staged* region is over, and nobody reads keys regions
            // until after the next barrier.
            let local = unsafe { ctx.local_mut() };
            local[..len].copy_from_slice(&incoming);
            ctx.barrier();
        }
    });

    // Collect the sorted partitions.
    let mut heap = Arc::try_unwrap(heap).unwrap_or_else(|_| panic!("heap still shared"));
    for i in 0..p {
        let base = part_start(i);
        let len = part_start(i + 1) - base;
        let seg = heap.segment_mut(i);
        keys[base..base + len].copy_from_slice(&seg[..len]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn put_get_roundtrip() {
        let heap: Arc<SymHeap<u32>> = Arc::new(SymHeap::new(4, 64));
        heap.run(|ctx| {
            let me = ctx.pe() as u32;
            // Everyone fills its own segment, barrier, then reads the right
            // neighbour's.
            unsafe {
                let local = ctx.local_mut();
                for (i, v) in local.iter_mut().enumerate() {
                    *v = me * 1000 + i as u32;
                }
            }
            ctx.barrier();
            let right = (ctx.pe() + 1) % ctx.n_pes();
            let mut buf = vec![0u32; 8];
            unsafe { ctx.get(&mut buf, right, 8) };
            for (i, &v) in buf.iter().enumerate() {
                assert_eq!(v, right as u32 * 1000 + (8 + i) as u32);
            }
        });
    }

    #[test]
    fn put_writes_remote() {
        let heap: Arc<SymHeap<u32>> = Arc::new(SymHeap::new(3, 16));
        heap.run(|ctx| {
            // Each PE puts its id into a distinct slot of PE 0's segment.
            let me = ctx.pe();
            unsafe { ctx.put(&[me as u32 + 100], 0, me) };
            ctx.barrier();
            if me == 0 {
                let mut buf = vec![0u32; 3];
                unsafe { ctx.get(&mut buf, 0, 0) };
                assert_eq!(buf, vec![100, 101, 102]);
            }
        });
    }

    fn check_shmem_sort(n: usize, p: usize, r: u32, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut v: Vec<u32> = (0..n).map(|_| rng.random()).collect();
        let mut expect = v.clone();
        expect.sort_unstable();
        radix_sort_shmem(&mut v, p, r);
        assert_eq!(v, expect, "n={n} p={p} r={r}");
    }

    #[test]
    fn shmem_radix_sorts() {
        check_shmem_sort(50_000, 4, 8, 1);
        check_shmem_sort(10_000, 7, 8, 2);
        check_shmem_sort(10_000, 3, 11, 3);
        check_shmem_sort(64, 8, 8, 4);
    }

    #[test]
    fn shmem_radix_degenerate() {
        let mut empty: Vec<u32> = vec![];
        radix_sort_shmem(&mut empty, 4, 8);
        let mut same = vec![5u32; 3000];
        radix_sort_shmem(&mut same, 4, 8);
        assert!(same.iter().all(|&x| x == 5));
    }

    // The epoch-protocol checker's own acceptance tests: the aliasing
    // contract the unsafe API documents must be enforced, not just argued,
    // in debug builds. (The checker compiles away in release, so these
    // only exist where it exists.)
    #[cfg(debug_assertions)]
    mod checker {
        use super::*;
        use std::panic::{catch_unwind, AssertUnwindSafe};

        #[test]
        fn catches_get_during_remote_mutation() {
            let result = catch_unwind(AssertUnwindSafe(|| {
                let heap: Arc<SymHeap<u32>> = Arc::new(SymHeap::new(2, 64));
                heap.run(|ctx| {
                    // The bug this simulates: PE 1 pulls from PE 0's
                    // segment with no barrier after PE 0's writes.
                    if ctx.pe() == 0 {
                        unsafe { ctx.local_mut()[0] = 1 };
                    } else {
                        let mut buf = [0u32; 4];
                        unsafe { ctx.get(&mut buf, 0, 0) };
                    }
                });
            }));
            assert!(result.is_err(), "missing-barrier get must panic in debug builds");
        }

        #[test]
        fn catches_overlapping_puts() {
            let result = catch_unwind(AssertUnwindSafe(|| {
                let heap: Arc<SymHeap<u32>> = Arc::new(SymHeap::new(3, 16));
                heap.run(|ctx| {
                    if ctx.pe() > 0 {
                        // Both writers target element 0 of PE 0's segment.
                        unsafe { ctx.put(&[ctx.pe() as u32], 0, 0) };
                    }
                });
            }));
            assert!(result.is_err(), "overlapping same-epoch puts must panic");
        }

        #[test]
        fn allows_barrier_separated_reuse_and_concurrent_reads() {
            let heap: Arc<SymHeap<u32>> = Arc::new(SymHeap::new(2, 64));
            heap.run(|ctx| {
                unsafe { ctx.local_mut()[0] = ctx.pe() as u32 };
                ctx.barrier();
                // Everyone reads everyone (including the owner's own
                // read-only view) in one epoch: all claims are reads.
                let _own = unsafe { ctx.local()[0] };
                let mut buf = [0u32; 1];
                unsafe { ctx.get(&mut buf, 1 - ctx.pe(), 0) };
                assert_eq!(buf[0], (1 - ctx.pe()) as u32);
                ctx.barrier();
                // Fresh epoch: owners may mutate again.
                unsafe { ctx.local_mut()[0] = 9 };
            });
        }
    }

    #[test]
    fn shmem_matches_msg_sort() {
        let mut rng = StdRng::seed_from_u64(9);
        let v: Vec<u32> = (0..30_000).map(|_| rng.random()).collect();
        let mut a = v.clone();
        let mut b = v;
        radix_sort_shmem(&mut a, 6, 8);
        crate::msg::radix_sort_msg(&mut b, 6, 8);
        assert_eq!(a, b);
    }
}

/// Sort `keys` with the paper's SHMEM **sample sort** over `p` in-process
/// PEs: local radix sort, samples published to a symmetric region and
/// collected one-sidedly, redundant splitter selection, counts published
/// symmetrically, then each PE `get`s its splitter bucket from every
/// other PE's sorted segment and sorts it locally.
pub fn sample_sort_shmem<K: RadixKey + Default + Send>(keys: &mut [K], p: usize, radix_bits: u32) {
    let n = keys.len();
    if n == 0 || p <= 1 {
        crate::seq::radix_sort(keys, radix_bits.clamp(1, 16));
        return;
    }
    let p = p.min(n);
    let s = 128usize.min(n / p).max(1);
    let part_start = |i: usize| i * n / p;
    let max_part = (0..p).map(|i| part_start(i + 1) - part_start(i)).max().unwrap();

    // Segment layout: [0, max_part) sorted keys; [max_part, max_part + s)
    // samples. Counts travel through a side table (a symmetric integer
    // array in a real SHMEM program).
    let seg_len = max_part + s;
    let heap: Arc<SymHeap<K>> = Arc::new(SymHeap::new(p, seg_len));
    let counts_table: Vec<UnsafeCell<Vec<usize>>> =
        (0..p).map(|_| UnsafeCell::new(vec![0usize; p])).collect();
    struct Table<'a>(&'a [UnsafeCell<Vec<usize>>]);
    unsafe impl Sync for Table<'_> {}
    let table = Table(&counts_table);
    let out = std::sync::Mutex::new(vec![Vec::<K>::new(); p]);

    let input = &*keys;
    heap.run(|ctx: Pe<K>| {
        // Capture the Sync wrapper whole (edition-2021 disjoint capture
        // would otherwise capture the raw `.0` field, which isn't Sync).
        let table = &table;
        let me = ctx.pe();
        let base = part_start(me);
        let len = part_start(me + 1) - base;

        // Phase 1: local sort of own segment.
        // SAFETY: each PE touches only its own segment before the barrier.
        let local = unsafe { ctx.local_mut() };
        local[..len].copy_from_slice(&input[base..base + len]);
        crate::seq::radix_sort(&mut local[..len], radix_bits);
        // Phase 2: publish regular samples.
        for k in 0..s {
            local[max_part + k] = local[k * len / s];
        }
        ctx.barrier();

        // Phase 3: collect all samples one-sidedly; redundant splitters.
        let mut all = vec![K::default(); p * s];
        for j in 0..ctx.n_pes() {
            // SAFETY: sample regions were sealed by the barrier above.
            unsafe { ctx.get(&mut all[j * s..(j + 1) * s], j, max_part) };
        }
        all.sort_unstable();
        let splitters: Vec<K> = (1..p).map(|k| all[k * all.len() / p]).collect();

        // Phase 4: bucket boundaries (ties spread) + publish counts. In
        // this epoch other PEs `get` our sample region, so the read-only
        // view matters: a `local_mut` claim here would (rightly) trip the
        // debug checker.
        // SAFETY: reading only our own sorted keys region.
        let local = unsafe { ctx.local() };
        let sorted = &local[..len];
        let mut bounds = vec![0usize; p + 1];
        bounds[p] = len;
        let mut j = 0usize;
        while j < splitters.len() {
            let v = &splitters[j];
            let mut jl = j;
            while jl + 1 < splitters.len() && splitters[jl + 1] == *v {
                jl += 1;
            }
            if jl == j {
                bounds[j + 1] = sorted.partition_point(|x| x < v);
                j += 1;
                continue;
            }
            let lower = sorted.partition_point(|x| x < v);
            let upper = sorted.partition_point(|x| x <= v);
            let run = upper - lower;
            let slots = jl - j + 2;
            for (k, cut) in (j + 1..=jl + 1).enumerate() {
                bounds[cut] = lower + (k + 1) * run / slots;
            }
            j = jl + 1;
        }
        // SAFETY: slot `me` written only by this PE this epoch.
        unsafe {
            (*table.0[me].get()).copy_from_slice(
                &(0..p).map(|b| bounds[b + 1] - bounds[b]).collect::<Vec<_>>(),
            );
        }
        ctx.barrier();

        // Phase 5: get our bucket from every PE, sort, stash.
        // SAFETY: counts were all published before the barrier.
        let all_counts: Vec<Vec<usize>> =
            (0..p).map(|i| unsafe { (*table.0[i].get()).clone() }).collect();
        let all_bounds: Vec<Vec<usize>> = all_counts
            .iter()
            .map(|c| {
                let mut b = vec![0usize; p + 1];
                for (k, &cnt) in c.iter().enumerate() {
                    b[k + 1] = b[k] + cnt;
                }
                b
            })
            .collect();
        let inbound: usize = (0..p).map(|i| all_counts[i][me]).sum();
        let mut region = vec![K::default(); inbound];
        let mut off = 0;
        for i in 0..p {
            let cnt = all_counts[i][me];
            if cnt > 0 {
                // SAFETY: sorted key regions are read-only this epoch.
                unsafe { ctx.get(&mut region[off..off + cnt], i, all_bounds[i][me]) };
                off += cnt;
            }
        }
        crate::seq::radix_sort(&mut region, radix_bits);
        out.lock().unwrap()[me] = region;
    });

    let regions = out.into_inner().unwrap();
    let mut off = 0;
    for region in regions {
        keys[off..off + region.len()].copy_from_slice(&region);
        off += region.len();
    }
    assert_eq!(off, n);
}

#[cfg(test)]
mod sample_tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn check(n: usize, p: usize, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut v: Vec<u32> = (0..n).map(|_| rng.random()).collect();
        let mut expect = v.clone();
        expect.sort_unstable();
        sample_sort_shmem(&mut v, p, 11);
        assert_eq!(v, expect, "n={n} p={p}");
    }

    #[test]
    fn sample_sort_shmem_sorts() {
        check(50_000, 4, 1);
        check(10_000, 7, 2);
        check(1000, 3, 3);
    }

    #[test]
    fn sample_sort_shmem_duplicates() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> =
            (0..20_000).map(|_| if rng.random_range(0..10u32) < 3 { 7 } else { rng.random() }).collect();
        let mut expect = v.clone();
        expect.sort_unstable();
        sample_sort_shmem(&mut v, 6, 8);
        assert_eq!(v, expect);
    }

    #[test]
    fn sample_sort_shmem_matches_msg_version() {
        let mut rng = StdRng::seed_from_u64(5);
        let v: Vec<u32> = (0..30_000).map(|_| rng.random()).collect();
        let mut a = v.clone();
        let mut b = v;
        sample_sort_shmem(&mut a, 5, 8);
        crate::msg::sample_sort_msg(&mut b, 5, 8);
        assert_eq!(a, b);
    }
}
