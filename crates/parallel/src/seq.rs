//! Sequential LSD radix sort — the building block for the parallel sorts
//! and the single-thread baseline for speedup measurements.

use crate::key::RadixKey;

/// Default digit width in bits. 8 keeps the histogram (256 counters) in L1
/// and needs 4 passes for 32-bit keys — the paper found radix 8 "quite good
/// across all the data set sizes".
pub const DEFAULT_RADIX_BITS: u32 = 8;

/// Number of LSD passes for a key type at a digit width.
pub fn passes_for<K: RadixKey>(radix_bits: u32) -> u32 {
    K::BITS.div_ceil(radix_bits)
}

/// Sort `keys` with an LSD radix sort using `radix_bits`-bit digits and the
/// provided scratch buffer (`scratch.len() == keys.len()`). After return the
/// sorted data is in `keys`.
pub fn radix_sort_with_scratch<K: RadixKey>(keys: &mut [K], scratch: &mut [K], radix_bits: u32) {
    assert!((1..=16).contains(&radix_bits), "radix_bits out of range");
    assert_eq!(keys.len(), scratch.len());
    if keys.len() <= 1 {
        return;
    }
    let bins = 1usize << radix_bits;
    let mask = (bins - 1) as u64;
    let passes = passes_for::<K>(radix_bits);
    let mut hist = vec![0usize; bins];

    // src/dst flip each pass; `flipped` tracks where the data currently is.
    let mut flipped = false;
    for pass in 0..passes {
        let shift = pass * radix_bits;
        let (src, dst): (&[K], &mut [K]) =
            if flipped { (&*scratch, &mut *keys) } else { (&*keys, &mut *scratch) };

        hist.fill(0);
        for k in src.iter() {
            hist[k.digit(shift, mask)] += 1;
        }
        // Exclusive prefix sum -> starting offsets.
        let mut acc = 0usize;
        for h in hist.iter_mut() {
            let c = *h;
            *h = acc;
            acc += c;
        }
        for &k in src.iter() {
            let d = k.digit(shift, mask);
            dst[hist[d]] = k;
            hist[d] += 1;
        }
        flipped = !flipped;
    }
    if flipped {
        keys.copy_from_slice(scratch);
    }
}

/// Sort `keys` with an LSD radix sort (allocates one scratch buffer).
pub fn radix_sort<K: RadixKey + Default>(keys: &mut [K], radix_bits: u32) {
    let mut scratch = vec![K::default(); keys.len()];
    radix_sort_with_scratch(keys, &mut scratch, radix_bits);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn sorts_u32() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..10_000).map(|_| rng.random()).collect();
        let mut expect = v.clone();
        expect.sort_unstable();
        radix_sort(&mut v, 8);
        assert_eq!(v, expect);
    }

    #[test]
    fn sorts_with_odd_radix_widths() {
        let mut rng = StdRng::seed_from_u64(2);
        for bits in [1u32, 3, 7, 11, 16] {
            let mut v: Vec<u32> = (0..5_000).map(|_| rng.random()).collect();
            let mut expect = v.clone();
            expect.sort_unstable();
            radix_sort(&mut v, bits);
            assert_eq!(v, expect, "radix_bits={bits}");
        }
    }

    #[test]
    fn sorts_signed_keys() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<i64> = (0..10_000).map(|_| rng.random()).collect();
        let mut expect = v.clone();
        expect.sort_unstable();
        radix_sort(&mut v, 8);
        assert_eq!(v, expect);
    }

    #[test]
    fn sorts_small_types() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u8> = (0..4_000).map(|_| rng.random()).collect();
        let mut expect = v.clone();
        expect.sort_unstable();
        radix_sort(&mut v, 8); // exactly one pass
        assert_eq!(v, expect);

        let mut w: Vec<i16> = (0..4_000).map(|_| rng.random()).collect();
        let mut expect = w.clone();
        expect.sort_unstable();
        radix_sort(&mut w, 11);
        assert_eq!(w, expect);
    }

    #[test]
    fn edge_cases() {
        let mut empty: Vec<u32> = vec![];
        radix_sort(&mut empty, 8);
        assert!(empty.is_empty());

        let mut one = vec![5u32];
        radix_sort(&mut one, 8);
        assert_eq!(one, vec![5]);

        let mut dup = vec![3u32; 1000];
        radix_sort(&mut dup, 8);
        assert!(dup.iter().all(|&x| x == 3));

        let mut rev: Vec<u32> = (0..1000).rev().collect();
        radix_sort(&mut rev, 8);
        assert!(rev.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn pass_count() {
        assert_eq!(passes_for::<u32>(8), 4);
        assert_eq!(passes_for::<u32>(11), 3);
        assert_eq!(passes_for::<u64>(8), 8);
        assert_eq!(passes_for::<u8>(8), 1);
    }

    #[test]
    fn stable_within_equal_bits() {
        // Radix sort is stable; for plain integers stability is invisible,
        // but an odd pass count must still land data back in `keys`.
        let mut v: Vec<u32> = (0..100).map(|i| (100 - i) % 7).collect();
        radix_sort(&mut v, 11); // 3 passes: ends in scratch, copied back
        assert!(v.windows(2).all(|w| w[0] <= w[1]));
    }
}
