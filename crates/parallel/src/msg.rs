//! In-process message-passing runtime and a radix sort written against it.
//!
//! A small "mini-MPI" over OS threads: ranks communicate through per-pair
//! channels (send/recv, allgather, alltoallv) and synchronize with
//! barriers. This is the message-passing programming model of the paper on
//! a shared-memory host — useful both as a runtime for SPMD-style code and
//! as the substrate for [`radix_sort_msg`], which follows the paper's MPI
//! radix sort: Allgather the histograms, permute locally into contiguous
//! chunks, send every contiguously-destined chunk to its owner.

use std::sync::{Arc, Barrier};

use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::key::RadixKey;
use crate::seq::passes_for;

/// A rank's endpoint in an SPMD communicator of `size` ranks.
pub struct Comm<M: Send> {
    rank: usize,
    size: usize,
    /// `out[dst]`: channel into rank `dst`'s inbox from this rank.
    out: Vec<Sender<M>>,
    /// `inbox[src]`: this rank's inbox from rank `src`.
    inbox: Vec<Receiver<M>>,
    barrier: Arc<Barrier>,
}

impl<M: Send> Comm<M> {
    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Send a message to `dst` (buffered, never blocks).
    pub fn send(&self, dst: usize, msg: M) {
        self.out[dst].send(msg).expect("receiver hung up");
    }

    /// Receive the next message from `src` (blocks until it arrives).
    pub fn recv(&self, src: usize) -> M {
        self.inbox[src].recv().expect("sender hung up")
    }

    /// Block until every rank has reached the barrier.
    pub fn barrier(&self) {
        self.barrier.wait();
    }

    /// Gather one message from every rank (including a self-copy):
    /// `allgather(m)[j]` is rank `j`'s contribution.
    pub fn allgather(&self, mine: M) -> Vec<M>
    where
        M: Clone,
    {
        for dst in 0..self.size {
            if dst != self.rank {
                self.send(dst, mine.clone());
            }
        }
        (0..self.size)
            .map(|src| if src == self.rank { mine.clone() } else { self.recv(src) })
            .collect()
    }

    /// Personalized all-to-all: element `j` of `outbound` goes to rank `j`;
    /// the result's element `i` came from rank `i`.
    pub fn alltoallv(&self, mut outbound: Vec<M>) -> Vec<M> {
        assert_eq!(outbound.len(), self.size);
        // Send in rank order starting after self to spread load.
        let mut keep: Option<M> = None;
        for (dst, msg) in outbound.drain(..).enumerate() {
            if dst == self.rank {
                keep = Some(msg);
            } else {
                self.send(dst, msg);
            }
        }
        (0..self.size)
            .map(|src| if src == self.rank { keep.take().expect("self message") } else { self.recv(src) })
            .collect()
    }
}

/// Run `f` as an SPMD program over `size` ranks (one OS thread each) and
/// return each rank's result, in rank order.
pub fn spawn_spmd<M, R, F>(size: usize, f: F) -> Vec<R>
where
    M: Send,
    R: Send,
    F: Fn(Comm<M>) -> R + Sync,
{
    assert!(size >= 1);
    // channel[src][dst]
    let mut senders: Vec<Vec<Option<Sender<M>>>> = (0..size).map(|_| Vec::new()).collect();
    let mut inboxes: Vec<Vec<Option<Receiver<M>>>> =
        (0..size).map(|_| (0..size).map(|_| None).collect()).collect();
    for src in 0..size {
        for (dst, inbox) in inboxes.iter_mut().enumerate() {
            let (tx, rx) = unbounded();
            senders[src].push(Some(tx));
            inbox[src] = Some(rx);
            let _ = dst;
        }
    }
    let barrier = Arc::new(Barrier::new(size));

    let comms: Vec<Comm<M>> = senders
        .into_iter()
        .zip(inboxes)
        .enumerate()
        .map(|(rank, (out, inbox))| Comm {
            rank,
            size,
            out: out.into_iter().map(Option::unwrap).collect(),
            inbox: inbox.into_iter().map(Option::unwrap).collect(),
            barrier: Arc::clone(&barrier),
        })
        .collect();

    std::thread::scope(|s| {
        let handles: Vec<_> = comms
            .into_iter()
            .map(|comm| {
                let f = &f;
                s.spawn(move || f(comm))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("rank panicked")).collect()
    })
}

/// A chunk of keys with its destination offset in the receiver's partition
/// coordinate space.
#[derive(Debug, Clone)]
pub struct PlacedChunk<K> {
    /// Global element offset of this chunk in the (conceptual) output array.
    pub global_off: usize,
    pub keys: Vec<K>,
}

/// Message type of the message-passing radix sort: one bundle of placed
/// chunks per (source, destination) pair per pass.
type RadixMsg<K> = Vec<PlacedChunk<K>>;

/// Internal: messages exchanged by `radix_sort_msg` — either a histogram
/// (phase 2) or a chunk bundle (phase 3).
#[derive(Clone)]
enum MsgKind<K: Clone> {
    Hist(Vec<usize>),
    Chunks(RadixMsg<K>),
}

/// Sort `keys` with the paper's MPI radix-sort algorithm over `p` in-process
/// ranks. Intended as a faithful message-passing implementation rather than
/// the fastest shared-memory sort (use [`crate::par_radix_sort`] for that).
pub fn radix_sort_msg<K: RadixKey + Default>(keys: &mut [K], p: usize, radix_bits: u32) {
    let n = keys.len();
    if n == 0 || p <= 1 {
        crate::seq::radix_sort(keys, radix_bits.clamp(1, 16));
        return;
    }
    let p = p.min(n);
    assert!((1..=16).contains(&radix_bits));
    let bins = 1usize << radix_bits;
    let mask = (bins - 1) as u64;
    let passes = passes_for::<K>(radix_bits);
    let part_start = |i: usize| i * n / p;

    // Each rank starts with its partition.
    let parts: Vec<Vec<K>> = (0..p).map(|i| keys[part_start(i)..part_start(i + 1)].to_vec()).collect();
    let parts = std::sync::Mutex::new(parts.into_iter().map(Some).collect::<Vec<_>>());

    let results: Vec<(usize, Vec<K>)> = spawn_spmd::<MsgKind<K>, _, _>(p, |comm| {
        let me = comm.rank();
        let my_base = part_start(me);
        let mut mine: Vec<K> = parts.lock().unwrap()[me].take().expect("partition taken once");

        for pass in 0..passes {
            let shift = pass * radix_bits;
            // Phase 1: local histogram.
            let mut hist = vec![0usize; bins];
            for k in &mine {
                hist[k.digit(shift, mask)] += 1;
            }
            // Phase 2: allgather histograms; compute global ranks locally.
            let all_hists: Vec<Vec<usize>> = comm
                .allgather(MsgKind::Hist(hist.clone()))
                .into_iter()
                .map(|m| match m {
                    MsgKind::Hist(h) => h,
                    _ => unreachable!("protocol: histogram phase"),
                })
                .collect();
            let mut offsets = vec![vec![0usize; bins]; p];
            {
                let mut acc = 0usize;
                for d in 0..bins {
                    for (i, h) in all_hists.iter().enumerate() {
                        offsets[i][d] = acc;
                        acc += h[d];
                    }
                }
            }

            // Phase 3: local permutation into digit-contiguous chunks.
            let mut staged = vec![K::default(); mine.len()];
            let mut cursors = {
                let mut scan = vec![0usize; bins];
                let mut acc = 0;
                for d in 0..bins {
                    scan[d] = acc;
                    acc += all_hists[me][d];
                }
                scan
            };
            let lscan = cursors.clone();
            for &k in &mine {
                let d = k.digit(shift, mask);
                staged[cursors[d]] = k;
                cursors[d] += 1;
            }

            // One bundle of contiguously-destined chunk pieces per owner.
            let mut bundles: Vec<RadixMsg<K>> = (0..p).map(|_| Vec::new()).collect();
            for d in 0..bins {
                let len = all_hists[me][d];
                if len == 0 {
                    continue;
                }
                let goff = offsets[me][d];
                let chunk = &staged[lscan[d]..lscan[d] + len];
                let mut start = goff;
                while start < goff + len {
                    // Owner of global index `start` under i*n/p partitioning.
                    let mut owner = (start * p) / n;
                    while owner + 1 < p && part_start(owner + 1) <= start {
                        owner += 1;
                    }
                    while part_start(owner) > start {
                        owner -= 1;
                    }
                    let end = (goff + len).min(part_start(owner + 1));
                    bundles[owner].push(PlacedChunk {
                        global_off: start,
                        keys: chunk[start - goff..end - goff].to_vec(),
                    });
                    start = end;
                }
            }
            let inbound = comm.alltoallv(bundles.into_iter().map(MsgKind::Chunks).collect());

            // Place received chunks into the partition for the next pass.
            let my_len = part_start(me + 1) - my_base;
            let mut next = vec![K::default(); my_len];
            for msg in inbound {
                let chunks = match msg {
                    MsgKind::Chunks(c) => c,
                    _ => unreachable!("protocol: chunk phase"),
                };
                for c in chunks {
                    let off = c.global_off - my_base;
                    next[off..off + c.keys.len()].copy_from_slice(&c.keys);
                }
            }
            mine = next;
        }
        (me, mine)
    });

    // Reassemble in rank order.
    for (rank, part) in results {
        let base = part_start(rank);
        keys[base..base + part.len()].copy_from_slice(&part);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn spmd_barrier_and_allgather() {
        let results = spawn_spmd::<Vec<usize>, _, _>(4, |comm| {
            comm.barrier();
            let gathered = comm.allgather(vec![comm.rank() * 10]);
            comm.barrier();
            gathered
        });
        for r in &results {
            assert_eq!(*r, vec![vec![0], vec![10], vec![20], vec![30]]);
        }
    }

    #[test]
    fn alltoallv_routes_correctly() {
        let results = spawn_spmd::<(usize, usize), _, _>(3, |comm| {
            let outbound: Vec<(usize, usize)> = (0..3).map(|dst| (comm.rank(), dst)).collect();
            comm.alltoallv(outbound)
        });
        for (me, inbound) in results.iter().enumerate() {
            for (src, msg) in inbound.iter().enumerate() {
                assert_eq!(*msg, (src, me));
            }
        }
    }

    #[test]
    fn send_recv_preserve_pairwise_order() {
        let results = spawn_spmd::<u32, _, _>(2, |comm| {
            if comm.rank() == 0 {
                for i in 0..100 {
                    comm.send(1, i);
                }
                Vec::new()
            } else {
                (0..100).map(|_| comm.recv(0)).collect::<Vec<u32>>()
            }
        });
        assert_eq!(results[1], (0..100).collect::<Vec<u32>>());
    }

    fn check_msg_sort(n: usize, p: usize, r: u32, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut v: Vec<u32> = (0..n).map(|_| rng.random()).collect();
        let mut expect = v.clone();
        expect.sort_unstable();
        radix_sort_msg(&mut v, p, r);
        assert_eq!(v, expect, "n={n} p={p} r={r}");
    }

    #[test]
    fn msg_radix_sorts() {
        check_msg_sort(50_000, 4, 8, 1);
        check_msg_sort(10_000, 7, 8, 2);
        check_msg_sort(10_000, 3, 11, 3);
        check_msg_sort(100, 4, 8, 4);
        check_msg_sort(8, 8, 8, 5);
    }

    #[test]
    fn msg_radix_handles_degenerate() {
        let mut empty: Vec<u32> = vec![];
        radix_sort_msg(&mut empty, 4, 8);
        let mut one = vec![1u32];
        radix_sort_msg(&mut one, 4, 8);
        assert_eq!(one, vec![1]);
        let mut same = vec![9u32; 5000];
        radix_sort_msg(&mut same, 4, 8);
        assert!(same.iter().all(|&x| x == 9));
    }

    #[test]
    fn msg_radix_sorts_signed() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut v: Vec<i32> = (0..20_000).map(|_| rng.random()).collect();
        let mut expect = v.clone();
        expect.sort_unstable();
        radix_sort_msg(&mut v, 5, 8);
        assert_eq!(v, expect);
    }
}

/// Internal message type of [`sample_sort_msg`].
#[derive(Clone)]
enum SampleMsg<K: Clone> {
    Samples(Vec<K>),
    Counts(Vec<usize>),
    Keys(Vec<K>),
}

/// Sort `keys` with the paper's MPI sample-sort algorithm over `p`
/// in-process ranks: local radix sort, allgather of 128 regular samples per
/// rank, redundant splitter selection, a one-message-per-pair all-to-all of
/// splitter buckets, and a final local sort of the received keys.
pub fn sample_sort_msg<K: RadixKey + Default>(keys: &mut [K], p: usize, radix_bits: u32) {
    let n = keys.len();
    if n == 0 || p <= 1 {
        crate::seq::radix_sort(keys, radix_bits.clamp(1, 16));
        return;
    }
    let p = p.min(n);
    let s = 128usize.min(n / p).max(1);
    let part_start = |i: usize| i * n / p;

    let parts: Vec<Vec<K>> = (0..p).map(|i| keys[part_start(i)..part_start(i + 1)].to_vec()).collect();
    let parts = std::sync::Mutex::new(parts.into_iter().map(Some).collect::<Vec<_>>());

    let mut results: Vec<(usize, Vec<K>)> = spawn_spmd::<SampleMsg<K>, _, _>(p, |comm| {
        let me = comm.rank();
        let mut mine: Vec<K> = parts.lock().unwrap()[me].take().expect("partition taken once");
        // Phase 1: local sort.
        crate::seq::radix_sort(&mut mine, radix_bits);
        // Phase 2+3: allgather regular samples; everyone picks splitters.
        let samples: Vec<K> = (0..s).map(|k| mine[k * mine.len() / s]).collect();
        let mut all: Vec<K> = comm
            .allgather(SampleMsg::Samples(samples))
            .into_iter()
            .flat_map(|m| match m {
                SampleMsg::Samples(v) => v,
                _ => unreachable!("protocol: sample phase"),
            })
            .collect();
        all.sort_unstable();
        let splitters: Vec<K> = (1..p).map(|k| all[k * all.len() / p]).collect();

        // Phase 4: bucket boundaries (ties spread across tied buckets) and
        // the two all-to-alls: counts, then keys.
        let mut bounds = vec![0usize; p + 1];
        bounds[p] = mine.len();
        let mut j = 0usize;
        while j < splitters.len() {
            let v = &splitters[j];
            let mut jl = j;
            while jl + 1 < splitters.len() && splitters[jl + 1] == *v {
                jl += 1;
            }
            if jl == j {
                bounds[j + 1] = mine.partition_point(|x| x < v);
                j += 1;
                continue;
            }
            let lower = mine.partition_point(|x| x < v);
            let upper = mine.partition_point(|x| x <= v);
            let run = upper - lower;
            let slots = jl - j + 2;
            for (k, cut) in (j + 1..=jl + 1).enumerate() {
                bounds[cut] = lower + (k + 1) * run / slots;
            }
            j = jl + 1;
        }
        let counts: Vec<usize> = (0..p).map(|b| bounds[b + 1] - bounds[b]).collect();
        let all_counts = comm.alltoallv(
            (0..p).map(|_| SampleMsg::Counts(counts.clone())).collect::<Vec<_>>(),
        );
        let expected: Vec<usize> = all_counts
            .into_iter()
            .map(|m| match m {
                SampleMsg::Counts(c) => c[me],
                _ => unreachable!("protocol: count phase"),
            })
            .collect();
        let inbound = comm.alltoallv(
            (0..p)
                .map(|b| SampleMsg::Keys(mine[bounds[b]..bounds[b + 1]].to_vec()))
                .collect::<Vec<_>>(),
        );
        // Phase 5: local sort of the received region (the count exchange
        // cross-checks the key exchange, as the real program's receive
        // sizes would).
        let mut region: Vec<K> = Vec::with_capacity(expected.iter().sum());
        for (src, m) in inbound.into_iter().enumerate() {
            match m {
                SampleMsg::Keys(v) => {
                    assert_eq!(v.len(), expected[src], "count/key exchange mismatch from rank {src}");
                    region.extend(v);
                }
                _ => unreachable!("protocol: key phase"),
            }
        }
        crate::seq::radix_sort(&mut region, radix_bits);
        (me, region)
    });

    // Regions concatenated in rank order are the sorted output.
    results.sort_by_key(|(rank, _)| *rank);
    let mut off = 0;
    for (_, region) in results {
        keys[off..off + region.len()].copy_from_slice(&region);
        off += region.len();
    }
    assert_eq!(off, n);
}

#[cfg(test)]
mod sample_tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn check(n: usize, p: usize, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut v: Vec<u32> = (0..n).map(|_| rng.random()).collect();
        let mut expect = v.clone();
        expect.sort_unstable();
        sample_sort_msg(&mut v, p, 11);
        assert_eq!(v, expect, "n={n} p={p}");
    }

    #[test]
    fn sample_sort_msg_sorts() {
        check(50_000, 4, 1);
        check(10_000, 7, 2);
        check(999, 3, 3);
    }

    #[test]
    fn sample_sort_msg_heavy_duplicates() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..20_000).map(|_| if rng.random_range(0..10u32) < 3 { 0 } else { rng.random() }).collect();
        let mut expect = v.clone();
        expect.sort_unstable();
        sample_sort_msg(&mut v, 6, 8);
        assert_eq!(v, expect);
    }

    #[test]
    fn sample_sort_msg_matches_radix_msg() {
        let mut rng = StdRng::seed_from_u64(5);
        let v: Vec<i32> = (0..30_000).map(|_| rng.random()).collect();
        let mut a = v.clone();
        let mut b = v;
        sample_sort_msg(&mut a, 5, 8);
        radix_sort_msg(&mut b, 5, 8);
        assert_eq!(a, b);
    }

    #[test]
    fn sample_sort_msg_degenerate() {
        let mut empty: Vec<u32> = vec![];
        sample_sort_msg(&mut empty, 4, 8);
        let mut tiny = vec![2u32, 1];
        sample_sort_msg(&mut tiny, 8, 8);
        assert_eq!(tiny, vec![1, 2]);
    }
}

/// Collective operations beyond allgather/alltoallv, provided for SPMD
/// programs written against [`Comm`].
impl<M: Send> Comm<M> {
    /// Broadcast from `root`: the root's `msg` is delivered to every rank
    /// (including back to the root). Implemented as a binomial tree, the
    /// standard O(log p) algorithm.
    pub fn broadcast(&self, root: usize, msg: Option<M>) -> M
    where
        M: Clone,
    {
        // Re-index ranks so the root is rank 0 of the tree.
        let vrank = (self.rank + self.size - root) % self.size;
        let unvrank = |v: usize| (v + root) % self.size;
        let mut have: Option<M> = if vrank == 0 {
            Some(msg.expect("root must supply the message"))
        } else {
            None
        };
        // Round k: ranks < 2^k that hold the message send to rank + 2^k.
        let mut step = 1usize;
        while step < self.size {
            if vrank < step && vrank + step < self.size {
                self.send(unvrank(vrank + step), have.clone().expect("holder has msg"));
            } else if vrank >= step && vrank < 2 * step {
                have = Some(self.recv(unvrank(vrank - step)));
            }
            step *= 2;
        }
        have.expect("every rank holds the message after log2(p) rounds")
    }

    /// Reduce-to-all: combine every rank's contribution with `op` (which
    /// must be associative and commutative) and return the result on every
    /// rank. Implemented as allgather + local fold — simple and correct;
    /// the recursive-doubling version is unnecessary at in-process scale.
    pub fn allreduce<F>(&self, mine: M, op: F) -> M
    where
        M: Clone,
        F: Fn(M, M) -> M,
    {
        let mut all = self.allgather(mine);
        let first = all.remove(0);
        all.into_iter().fold(first, op)
    }
}

#[cfg(test)]
mod collective_tests {
    use super::*;

    #[test]
    fn broadcast_from_every_root() {
        for root in 0..5 {
            let results = spawn_spmd::<String, _, _>(5, |comm| {
                let msg = if comm.rank() == root { Some(format!("from {root}")) } else { None };
                comm.broadcast(root, msg)
            });
            assert!(results.iter().all(|r| *r == format!("from {root}")), "root {root}");
        }
    }

    #[test]
    fn broadcast_single_rank() {
        let results = spawn_spmd::<u32, _, _>(1, |comm| comm.broadcast(0, Some(99)));
        assert_eq!(results, vec![99]);
    }

    #[test]
    fn allreduce_sums() {
        let results = spawn_spmd::<u64, _, _>(6, |comm| comm.allreduce(comm.rank() as u64 + 1, |a, b| a + b));
        assert!(results.iter().all(|&r| r == 21));
    }

    #[test]
    fn allreduce_max_vectors() {
        let results = spawn_spmd::<Vec<u32>, _, _>(4, |comm| {
            let mine = vec![comm.rank() as u32, 10 - comm.rank() as u32];
            comm.allreduce(mine, |a, b| a.iter().zip(&b).map(|(&x, &y)| x.max(y)).collect())
        });
        assert!(results.iter().all(|r| *r == vec![3, 10]));
    }
}
