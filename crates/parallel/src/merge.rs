//! Parallel stable merge sort — the comparison-based counterpart to the
//! radix sorts, for keys without a radix decomposition (or as a baseline).
//!
//! Classic structure: sort chunks in parallel, then merge pairs of sorted
//! runs with parallel splitting (each merge recursively halves at the
//! median of the larger run and binary-searches the partner, giving two
//! independent sub-merges — Θ(log² n) span).

use rayon::prelude::*;

/// Below this length a sub-merge runs sequentially.
const SEQ_MERGE_CUTOFF: usize = 1 << 12;
/// Below this length the whole sort runs sequentially.
const SEQ_SORT_CUTOFF: usize = 1 << 13;

/// Sort `data` with a parallel stable merge sort.
pub fn par_merge_sort<T: Ord + Copy + Send + Sync>(data: &mut [T]) {
    let n = data.len();
    if n <= SEQ_SORT_CUTOFF {
        data.sort();
        return;
    }
    let chunks = rayon::current_num_threads().max(2).next_power_of_two();
    let bounds: Vec<usize> = (0..=chunks).map(|c| c * n / chunks).collect();

    // Phase 1: sort chunks in parallel (stable within each chunk).
    {
        let mut rest: &mut [T] = data;
        let mut parts = Vec::with_capacity(chunks);
        for c in 0..chunks {
            let (head, tail) = rest.split_at_mut(bounds[c + 1] - bounds[c]);
            parts.push(head);
            rest = tail;
        }
        parts.into_par_iter().for_each(|p| p.sort());
    }

    // Phase 2: log2(chunks) rounds of pairwise merges, ping-ponging with a
    // scratch buffer.
    let mut scratch: Vec<T> = data.to_vec();
    let mut runs: Vec<usize> = bounds;
    let mut src_is_data = true;
    while runs.len() > 2 {
        // `chunks` is a power of two, so the run-boundary list always has
        // an odd length and pairs tile it exactly.
        debug_assert!(runs.len() % 2 == 1);
        let merged_runs: Vec<usize> = runs.iter().step_by(2).copied().collect();
        {
            let (src, dst): (&[T], &mut [T]) =
                if src_is_data { (&*data, &mut scratch) } else { (&*scratch, &mut *data) };
            // Merge run pairs into dst, in parallel over pairs.
            let pairs: Vec<(usize, usize, usize)> =
                runs.windows(3).step_by(2).map(|w| (w[0], w[1], w[2])).collect();
            let dst_cell = crate::shared::SharedSlice::new(dst);
            pairs.par_iter().for_each(|&(lo, mid, hi)| {
                // SAFETY: pair output ranges [lo, hi) are disjoint.
                unsafe { par_merge_into(&src[lo..mid], &src[mid..hi], &dst_cell, lo) };
            });
        }
        runs = merged_runs;
        src_is_data = !src_is_data;
    }
    if !src_is_data {
        data.copy_from_slice(&scratch);
    }
}

/// Merge two sorted runs into `out[out_off..]`, splitting recursively for
/// parallelism.
///
/// # Safety
///
/// The output range `[out_off, out_off + a.len() + b.len())` must not be
/// accessed concurrently by anyone else.
unsafe fn par_merge_into<T: Ord + Copy + Send + Sync>(
    a: &[T],
    b: &[T],
    out: &crate::shared::SharedSlice<'_, T>,
    out_off: usize,
) {
    if a.len() + b.len() <= SEQ_MERGE_CUTOFF {
        let (mut i, mut j, mut k) = (0, 0, out_off);
        while i < a.len() && j < b.len() {
            // `<=` keeps the merge stable (a's elements first on ties).
            let v = if a[i] <= b[j] {
                i += 1;
                a[i - 1]
            } else {
                j += 1;
                b[j - 1]
            };
            unsafe { out.write(k, v) };
            k += 1;
        }
        for &v in &a[i..] {
            unsafe { out.write(k, v) };
            k += 1;
        }
        for &v in &b[j..] {
            unsafe { out.write(k, v) };
            k += 1;
        }
        return;
    }
    // Split at the median of the longer run; partition the other by binary
    // search. partition_point keeps stability: equal elements of `b` stay
    // after equal elements of `a`.
    if a.len() >= b.len() {
        let am = a.len() / 2;
        let bm = b.partition_point(|x| *x < a[am]);
        rayon::join(
            || unsafe { par_merge_into(&a[..am], &b[..bm], out, out_off) },
            || unsafe { par_merge_into(&a[am..], &b[bm..], out, out_off + am + bm) },
        );
    } else {
        let bm = b.len() / 2;
        let am = a.partition_point(|x| *x <= b[bm]);
        rayon::join(
            || unsafe { par_merge_into(&a[..am], &b[..bm], out, out_off) },
            || unsafe { par_merge_into(&a[am..], &b[bm..], out, out_off + am + bm) },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn check<T: Ord + Copy + Send + Sync + std::fmt::Debug>(mut v: Vec<T>) {
        let mut expect = v.clone();
        expect.sort();
        par_merge_sort(&mut v);
        assert_eq!(v, expect);
    }

    #[test]
    fn sorts_large_random() {
        let mut rng = StdRng::seed_from_u64(1);
        check((0..300_000).map(|_| rng.random::<u64>()).collect::<Vec<_>>());
        check((0..300_000).map(|_| rng.random::<i32>()).collect::<Vec<_>>());
    }

    #[test]
    fn sorts_adversarial_shapes() {
        check((0..100_000u32).collect::<Vec<_>>());
        check((0..100_000u32).rev().collect::<Vec<_>>());
        check(vec![7u32; 100_000]);
        let mut rng = StdRng::seed_from_u64(2);
        check((0..100_000).map(|_| rng.random_range(0..4u32)).collect::<Vec<_>>());
        check(Vec::<u32>::new());
        check(vec![1u32]);
    }

    #[test]
    fn stability_observed_through_pairs() {
        // Sort (key, original_index) pairs by key only via Ord on tuples
        // would use the index; instead check stability with a wrapper that
        // compares only the key.
        #[derive(Clone, Copy, Debug)]
        struct Rec(u8, u32);
        impl PartialEq for Rec {
            fn eq(&self, o: &Self) -> bool {
                self.0 == o.0 // key only, consistent with Ord
            }
        }
        impl Eq for Rec {}
        impl PartialOrd for Rec {
            fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(o))
            }
        }
        impl Ord for Rec {
            fn cmp(&self, o: &Self) -> std::cmp::Ordering {
                self.0.cmp(&o.0)
            }
        }
        let mut v: Vec<Rec> = (0..120_000u32).map(|i| Rec((i % 3) as u8, i)).collect();
        par_merge_sort(&mut v);
        for w in v.windows(2) {
            if w[0].0 == w[1].0 {
                assert!(w[0].1 < w[1].1, "stability violated: {w:?}");
            }
        }
    }

    #[test]
    fn matches_radix_on_integers() {
        let mut rng = StdRng::seed_from_u64(3);
        let v: Vec<u32> = (0..150_000).map(|_| rng.random()).collect();
        let mut a = v.clone();
        let mut b = v;
        par_merge_sort(&mut a);
        crate::radix::par_radix_sort(&mut b);
        assert_eq!(a, b);
    }
}
