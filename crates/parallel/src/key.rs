//! The [`RadixKey`] trait: integer key types sortable by LSD radix sort.

/// A fixed-width integer key with extractable radix digits.
///
/// The digit extraction must be order-preserving: sorting by digits from
/// least to most significant (a stable LSD pass per digit) must yield the
/// same order as `Ord`. For signed integers this is achieved by flipping
/// the sign bit before extracting digits.
pub trait RadixKey: Copy + Send + Sync + Ord {
    /// Number of significant bits (the number of LSD passes is
    /// `ceil(BITS / radix_bits)`).
    const BITS: u32;

    /// The unsigned, order-preserving image of the key.
    fn to_bits(self) -> u64;

    /// Extract the digit of `radix_bits` starting at `shift`.
    #[inline]
    fn digit(self, shift: u32, mask: u64) -> usize {
        ((self.to_bits() >> shift) & mask) as usize
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl RadixKey for $t {
            const BITS: u32 = <$t>::BITS;
            #[inline]
            fn to_bits(self) -> u64 {
                self as u64
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl RadixKey for $t {
            const BITS: u32 = <$t>::BITS;
            #[inline]
            fn to_bits(self) -> u64 {
                // Flip the sign bit: maps the signed order onto the
                // unsigned order.
                ((self as $u) ^ (1 << (<$t>::BITS - 1))) as u64
            }
        }
    )*};
}

impl_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

#[cfg(test)]
mod tests {
    use super::*;

    fn order_preserved<K: RadixKey>(vals: &[K]) {
        for w in vals.windows(2) {
            assert_eq!(w[0].cmp(&w[1]), w[0].to_bits().cmp(&w[1].to_bits()));
        }
    }

    #[test]
    fn unsigned_bits_are_identity() {
        assert_eq!(42u32.to_bits(), 42);
        assert_eq!(u64::MAX.to_bits(), u64::MAX);
        order_preserved(&[0u32, 1, 2, 1000, u32::MAX]);
    }

    #[test]
    fn signed_bits_preserve_order() {
        order_preserved(&[i32::MIN, -1000, -1, 0, 1, 1000, i32::MAX]);
        order_preserved(&[i64::MIN, -1, 0, i64::MAX]);
        order_preserved(&[i8::MIN, -1, 0, i8::MAX]);
    }

    #[test]
    fn digit_extraction() {
        let k = 0xABCD_1234u32;
        assert_eq!(k.digit(0, 0xFF), 0x34);
        assert_eq!(k.digit(8, 0xFF), 0x12);
        assert_eq!(k.digit(16, 0xFF), 0xCD);
        assert_eq!(k.digit(24, 0xFF), 0xAB);
        // Signed: -1i32 has all bits set except the flipped sign bit image.
        assert_eq!((-1i32).digit(0, 0xFF), 0xFF);
        assert_eq!((-1i32).digit(24, 0xFF), 0x7F);
    }
}
