//! # ccsort-parallel
//!
//! Real threaded parallel sorting for shared-memory machines — the
//! "adoptable library" counterpart of the simulated study in
//! `ccsort-algos`. Three programming styles, mirroring the paper's three
//! models:
//!
//! * **Shared address space** (the CC-SAS analogue): [`par_radix_sort`] and
//!   [`par_sample_sort`] — rayon data-parallel sorts whose permutation
//!   phase writes directly into the shared output through disjoint ranks.
//!   These are the fast paths for `&mut [K]` sorting.
//! * **Message passing** ([`msg`]): an in-process mini-MPI (per-pair
//!   channels, barriers, allgather, alltoallv) plus [`msg::radix_sort_msg`],
//!   the paper's MPI radix sort over it.
//! * **Symmetric heap** ([`sym`]): an in-process mini-SHMEM (one-sided
//!   `put`/`get` on per-PE segments with barrier epochs) plus
//!   [`sym::radix_sort_shmem`], the paper's receiver-initiated SHMEM radix
//!   sort.
//!
//! ```
//! use ccsort_parallel::par_radix_sort;
//!
//! let mut keys: Vec<u32> = (0..10_000u32).rev().map(|x| x.wrapping_mul(2654435761)).collect();
//! par_radix_sort(&mut keys);
//! assert!(keys.windows(2).all(|w| w[0] <= w[1]));
//! ```
//!
//! All sorts work for any [`RadixKey`] (unsigned and signed fixed-width
//! integers) and are validated against `sort_unstable` by the test suite,
//! including property-based tests.

pub mod histogram;
pub mod key;
pub mod merge;
pub mod msd;
pub mod msg;
pub mod pairs;
pub mod radix;
pub mod sample;
pub mod seq;
pub mod shared;
pub mod steal;
pub mod sym;
pub mod verify;

pub use histogram::{
    counting_sort, exclusive_prefix_sum, par_digit_histogram, par_multi_digit_histogram,
    PaddedCounts,
};
pub use key::RadixKey;
pub use merge::par_merge_sort;
pub use msd::{msd_radix_sort, par_msd_radix_sort};
pub use pairs::{
    par_radix_sort_by_key, par_radix_sort_pairs, par_radix_sort_pairs_with,
    par_radix_sort_pairs_with_scratch, radix_sort_pairs,
};
pub use radix::{
    par_radix_sort, par_radix_sort_with, par_radix_sort_with_scratch, RadixSortConfig, SortScratch,
    MAX_COALESCE_BYTES,
};
pub use sample::{par_sample_sort, par_sample_sort_with, SampleSortConfig, SAMPLES_PER_PART};
pub use seq::{radix_sort as seq_radix_sort, radix_sort_with_scratch, DEFAULT_RADIX_BITS};
pub use shared::SharedSlice;
pub use steal::ChunkQueue;
pub use verify::{is_sorted, is_sorted_permutation_of, multiset_fingerprint};
