//! Parallel histogram and counting-sort utilities.
//!
//! The building blocks of every sort in this workspace, exposed for
//! standalone use: a rayon-parallel digit histogram (fold-reduce over
//! chunks) and a counting sort for small-range keys.

use rayon::prelude::*;

use crate::key::RadixKey;

/// Count the occurrences of the `radix_bits`-wide digit at `shift` across
/// `keys`, in parallel.
pub fn par_digit_histogram<K: RadixKey>(keys: &[K], shift: u32, radix_bits: u32) -> Vec<usize> {
    assert!((1..=16).contains(&radix_bits));
    let bins = 1usize << radix_bits;
    let mask = (bins - 1) as u64;
    keys.par_chunks(64 * 1024)
        .fold(
            || vec![0usize; bins],
            |mut h, chunk| {
                for k in chunk {
                    h[k.digit(shift, mask)] += 1;
                }
                h
            },
        )
        .reduce(
            || vec![0usize; bins],
            |mut a, b| {
                for (x, y) in a.iter_mut().zip(b) {
                    *x += y;
                }
                a
            },
        )
}

/// Exclusive prefix sum, returning the total.
pub fn exclusive_prefix_sum(counts: &mut [usize]) -> usize {
    let mut acc = 0usize;
    for c in counts.iter_mut() {
        let v = *c;
        *c = acc;
        acc += v;
    }
    acc
}

/// Counting sort for keys known to lie in `[0, max_value]`. O(n + max),
/// stable, allocation = one count array plus the output.
pub fn counting_sort(keys: &mut [u32], max_value: u32) {
    let range = max_value as usize + 1;
    assert!(range <= 1 << 26, "counting_sort range too large; use a radix sort");
    let mut counts = vec![0usize; range];
    for &k in keys.iter() {
        assert!(k <= max_value, "key {k} exceeds declared max {max_value}");
        counts[k as usize] += 1;
    }
    let mut out = 0usize;
    for (v, &c) in counts.iter().enumerate() {
        keys[out..out + c].fill(v as u32);
        out += c;
    }
    debug_assert_eq!(out, keys.len());
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn par_histogram_matches_serial() {
        let mut rng = StdRng::seed_from_u64(1);
        let keys: Vec<u32> = (0..200_000).map(|_| rng.random()).collect();
        for (shift, bits) in [(0u32, 8u32), (8, 8), (24, 8), (0, 11)] {
            let par = par_digit_histogram(&keys, shift, bits);
            let mut ser = vec![0usize; 1 << bits];
            let mask = (1u64 << bits) - 1;
            for k in &keys {
                ser[((*k as u64) >> shift & mask) as usize] += 1;
            }
            assert_eq!(par, ser, "shift={shift} bits={bits}");
            assert_eq!(par.iter().sum::<usize>(), keys.len());
        }
    }

    #[test]
    fn prefix_sum_is_exclusive_and_totals() {
        let mut v = vec![3usize, 0, 2, 5];
        let total = exclusive_prefix_sum(&mut v);
        assert_eq!(v, vec![0, 3, 3, 5]);
        assert_eq!(total, 10);
        let mut empty: Vec<usize> = vec![];
        assert_eq!(exclusive_prefix_sum(&mut empty), 0);
    }

    #[test]
    fn counting_sort_sorts_small_ranges() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut v: Vec<u32> = (0..50_000).map(|_| rng.random_range(0..1000u32)).collect();
        let mut expect = v.clone();
        expect.sort_unstable();
        counting_sort(&mut v, 999);
        assert_eq!(v, expect);
    }

    #[test]
    fn counting_sort_edge_cases() {
        let mut empty: Vec<u32> = vec![];
        counting_sort(&mut empty, 10);
        let mut same = vec![4u32; 100];
        counting_sort(&mut same, 4);
        assert!(same.iter().all(|&x| x == 4));
    }

    #[test]
    #[should_panic(expected = "exceeds declared max")]
    fn counting_sort_rejects_out_of_range() {
        let mut v = vec![5u32];
        counting_sort(&mut v, 4);
    }
}
