//! Parallel histogram and counting-sort utilities.
//!
//! The building blocks of every sort in this workspace, exposed for
//! standalone use: a rayon-parallel digit histogram whose per-thread count
//! arrays are cache-line padded (no false sharing between accumulators), a
//! fused multi-digit histogram that counts every pass's digits in one read,
//! and a counting sort for small-range keys. [`PaddedCounts`] is the
//! padded count-matrix storage the radix-sort engine builds its per-chunk
//! histograms and offsets in.

use rayon::prelude::*;

use crate::key::RadixKey;
use crate::seq::passes_for;

/// Words per 64-byte cache line (`usize` is 8 bytes on every target this
/// library supports).
const LINE_WORDS: usize = 8;

/// One 64-byte-aligned cache line of counters. The `#[repr(align(64))]`
/// wrapper is what keeps two threads' count arrays from ever sharing a
/// line: a `Vec<CacheLine>` is aligned storage whose rows can be handed to
/// different threads without write-write line ping-pong at the edges.
#[repr(C, align(64))]
#[derive(Clone, Copy, Default)]
struct CacheLine([usize; LINE_WORDS]);

/// A rows × bins count matrix in which every row starts on a 64-byte cache
/// line boundary and is padded to a whole number of lines. Rows are the
/// per-thread (or per-chunk) accumulators of the parallel sorts; the
/// padding means two workers incrementing counts in different rows never
/// write the same cache line.
pub struct PaddedCounts {
    lines: Vec<CacheLine>,
    stride: usize, // words per row, multiple of LINE_WORDS
    bins: usize,
    rows: usize,
}

impl PaddedCounts {
    /// A zeroed matrix with `rows` padded rows of `bins` counters each.
    pub fn new(rows: usize, bins: usize) -> Self {
        let stride = bins.div_ceil(LINE_WORDS).max(1) * LINE_WORDS;
        let lines = vec![CacheLine::default(); rows * stride / LINE_WORDS];
        PaddedCounts { lines, stride, bins, rows }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of counters per row.
    pub fn bins(&self) -> usize {
        self.bins
    }

    fn flat(&self) -> &[usize] {
        // SAFETY: `CacheLine` is `#[repr(C)]` over `[usize; LINE_WORDS]`,
        // so the line buffer is exactly `lines.len() * LINE_WORDS`
        // contiguous initialized words.
        unsafe {
            std::slice::from_raw_parts(
                self.lines.as_ptr().cast::<usize>(),
                self.lines.len() * LINE_WORDS,
            )
        }
    }

    fn flat_mut(&mut self) -> &mut [usize] {
        // SAFETY: as in `flat`, plus we hold `&mut self`.
        unsafe {
            std::slice::from_raw_parts_mut(
                self.lines.as_mut_ptr().cast::<usize>(),
                self.lines.len() * LINE_WORDS,
            )
        }
    }

    /// Row `r` as a `bins`-long slice.
    pub fn row(&self, r: usize) -> &[usize] {
        let start = r * self.stride;
        &self.flat()[start..start + self.bins]
    }

    /// Row `r`, mutable.
    pub fn row_mut(&mut self, r: usize) -> &mut [usize] {
        let start = r * self.stride;
        let bins = self.bins;
        &mut self.flat_mut()[start..start + bins]
    }

    /// Zero every counter.
    pub fn clear(&mut self) {
        self.lines.fill(CacheLine::default());
    }

    /// Reshape to `rows` × `bins` and zero every counter, reusing the
    /// existing line buffer whenever it is large enough. Returns `true`
    /// when the backing storage had to grow — the scratch-reuse entry
    /// points count these to prove steady-state sorting allocates nothing.
    pub fn reset(&mut self, rows: usize, bins: usize) -> bool {
        let stride = bins.div_ceil(LINE_WORDS).max(1) * LINE_WORDS;
        let need = rows * stride / LINE_WORDS;
        let grew = need > self.lines.capacity();
        self.lines.clear();
        self.lines.resize(need, CacheLine::default());
        self.stride = stride;
        self.bins = bins;
        self.rows = rows;
        grew
    }

    /// Add every counter of `other` (same shape) into `self`.
    pub fn accumulate(&mut self, other: &PaddedCounts) {
        assert_eq!((self.rows, self.bins), (other.rows, other.bins));
        for r in 0..self.rows {
            let start = r * self.stride;
            let bins = self.bins;
            let dst = &mut self.flat_mut()[start..start + bins];
            let src = &other.flat()[start..start + bins];
            for (a, b) in dst.iter_mut().zip(src) {
                *a += b;
            }
        }
    }

    /// A `Send + Sync` view for phases in which each row is written by at
    /// most one worker at a time (workers claim disjoint chunk ids and
    /// touch only their claimed chunks' rows).
    pub fn shared(&mut self) -> SharedCounts<'_> {
        SharedCounts {
            ptr: self.flat_mut().as_mut_ptr(),
            stride: self.stride,
            bins: self.bins,
            rows: self.rows,
            _marker: std::marker::PhantomData,
        }
    }
}

/// Shared view of a [`PaddedCounts`] for disjoint-row parallel access; the
/// count-matrix analogue of [`crate::SharedSlice`].
pub struct SharedCounts<'a> {
    ptr: *mut usize,
    stride: usize,
    bins: usize,
    rows: usize,
    _marker: std::marker::PhantomData<&'a mut [usize]>,
}

unsafe impl Send for SharedCounts<'_> {}
unsafe impl Sync for SharedCounts<'_> {}

impl SharedCounts<'_> {
    /// Row `r`, mutable.
    ///
    /// # Safety
    ///
    /// No other thread may access row `r` for the lifetime of the returned
    /// slice. The sorts guarantee this by claiming each chunk id exactly
    /// once per phase ([`crate::steal::ChunkQueue`]).
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn row_mut(&self, r: usize) -> &mut [usize] {
        debug_assert!(r < self.rows, "SharedCounts row out of bounds: {r} >= {}", self.rows);
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(r * self.stride), self.bins) }
    }
}

/// Count `keys`' digits at `shift` into `row`, 4-way unrolled: the four
/// independent extractions per iteration give the core ILP that a single
/// load → increment dependency chain denies it.
pub(crate) fn count_digits_into<K: RadixKey>(keys: &[K], shift: u32, mask: u64, row: &mut [usize]) {
    let mut quads = keys.chunks_exact(4);
    for q in quads.by_ref() {
        let d0 = q[0].digit(shift, mask);
        let d1 = q[1].digit(shift, mask);
        let d2 = q[2].digit(shift, mask);
        let d3 = q[3].digit(shift, mask);
        row[d0] += 1;
        row[d1] += 1;
        row[d2] += 1;
        row[d3] += 1;
    }
    for k in quads.remainder() {
        row[k.digit(shift, mask)] += 1;
    }
}

/// Count the occurrences of the `radix_bits`-wide digit at `shift` across
/// `keys`, in parallel. Per-thread accumulators are cache-line padded
/// ([`PaddedCounts`]), so concurrent counting never false-shares.
pub fn par_digit_histogram<K: RadixKey>(keys: &[K], shift: u32, radix_bits: u32) -> Vec<usize> {
    assert!((1..=16).contains(&radix_bits));
    let bins = 1usize << radix_bits;
    let mask = (bins - 1) as u64;
    keys.par_chunks(64 * 1024)
        .fold(
            || PaddedCounts::new(1, bins),
            |mut h, chunk| {
                count_digits_into(chunk, shift, mask, h.row_mut(0));
                h
            },
        )
        .reduce(
            || PaddedCounts::new(1, bins),
            |mut a, b| {
                a.accumulate(&b);
                a
            },
        )
        .row(0)
        .to_vec()
}

/// The pre-padding histogram: per-thread accumulators are plain `Vec`s
/// whose allocations can share cache lines at the edges. Kept only so
/// `realbench` can *measure* the padding effect (a regression row in
/// `BENCH_real_sorts.json`) instead of assuming it.
#[doc(hidden)]
pub fn par_digit_histogram_unpadded<K: RadixKey>(
    keys: &[K],
    shift: u32,
    radix_bits: u32,
) -> Vec<usize> {
    assert!((1..=16).contains(&radix_bits));
    let bins = 1usize << radix_bits;
    let mask = (bins - 1) as u64;
    keys.par_chunks(64 * 1024)
        .fold(
            || vec![0usize; bins],
            |mut h, chunk| {
                for k in chunk {
                    h[k.digit(shift, mask)] += 1;
                }
                h
            },
        )
        .reduce(
            || vec![0usize; bins],
            |mut a, b| {
                for (x, y) in a.iter_mut().zip(b) {
                    *x += y;
                }
                a
            },
        )
}

/// Fused multi-digit histogram: one parallel read of `keys` counting every
/// LSD pass's digit at once. Returns `passes_for::<K>(radix_bits)` rows of
/// `1 << radix_bits` global counts — row `p` is the histogram of the digit
/// at shift `p * radix_bits`.
///
/// Global digit counts are permutation-invariant, so the rows stay valid
/// across every pass of an LSD sort no matter how the data moves; the
/// radix engine uses exactly this to decide up front which passes are
/// trivial (all keys in one bin ⇒ identity permutation ⇒ skippable).
pub fn par_multi_digit_histogram<K: RadixKey>(keys: &[K], radix_bits: u32) -> Vec<Vec<usize>> {
    assert!((1..=16).contains(&radix_bits));
    let bins = 1usize << radix_bits;
    let mask = (bins - 1) as u64;
    let passes = passes_for::<K>(radix_bits) as usize;
    let counts = keys
        .par_chunks(64 * 1024)
        .fold(
            || PaddedCounts::new(passes, bins),
            |mut h, chunk| {
                for k in chunk {
                    let bits = k.to_bits();
                    for p in 0..passes {
                        h.row_mut(p)[((bits >> (p as u32 * radix_bits)) & mask) as usize] += 1;
                    }
                }
                h
            },
        )
        .reduce(
            || PaddedCounts::new(passes, bins),
            |mut a, b| {
                a.accumulate(&b);
                a
            },
        );
    (0..passes).map(|p| counts.row(p).to_vec()).collect()
}

/// Exclusive prefix sum, returning the total.
pub fn exclusive_prefix_sum(counts: &mut [usize]) -> usize {
    let mut acc = 0usize;
    for c in counts.iter_mut() {
        let v = *c;
        *c = acc;
        acc += v;
    }
    acc
}

/// Counting sort for keys known to lie in `[0, max_value]`. O(n + max),
/// stable, allocation = one count array plus the output.
pub fn counting_sort(keys: &mut [u32], max_value: u32) {
    let range = max_value as usize + 1;
    assert!(range <= 1 << 26, "counting_sort range too large; use a radix sort");
    let mut counts = vec![0usize; range];
    for &k in keys.iter() {
        assert!(k <= max_value, "key {k} exceeds declared max {max_value}");
        counts[k as usize] += 1;
    }
    let mut out = 0usize;
    for (v, &c) in counts.iter().enumerate() {
        keys[out..out + c].fill(v as u32);
        out += c;
    }
    debug_assert_eq!(out, keys.len());
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn par_histogram_matches_serial() {
        let mut rng = StdRng::seed_from_u64(1);
        let keys: Vec<u32> = (0..200_000).map(|_| rng.random()).collect();
        for (shift, bits) in [(0u32, 8u32), (8, 8), (24, 8), (0, 11)] {
            let par = par_digit_histogram(&keys, shift, bits);
            let mut ser = vec![0usize; 1 << bits];
            let mask = (1u64 << bits) - 1;
            for k in &keys {
                ser[((*k as u64) >> shift & mask) as usize] += 1;
            }
            assert_eq!(par, ser, "shift={shift} bits={bits}");
            assert_eq!(par.iter().sum::<usize>(), keys.len());
            assert_eq!(par_digit_histogram_unpadded(&keys, shift, bits), ser);
        }
    }

    #[test]
    fn multi_digit_histogram_matches_per_pass() {
        let mut rng = StdRng::seed_from_u64(7);
        let keys: Vec<u32> = (0..100_000).map(|_| rng.random()).collect();
        for bits in [8u32, 11] {
            let fused = par_multi_digit_histogram(&keys, bits);
            assert_eq!(fused.len(), passes_for::<u32>(bits) as usize);
            for (p, row) in fused.iter().enumerate() {
                assert_eq!(
                    row,
                    &par_digit_histogram(&keys, p as u32 * bits, bits),
                    "pass {p} bits {bits}"
                );
            }
        }
        // u64 keys: 8 passes at radix 8.
        let wide: Vec<u64> = (0..50_000).map(|_| rng.random()).collect();
        let fused = par_multi_digit_histogram(&wide, 8);
        assert_eq!(fused.len(), 8);
        for (p, row) in fused.iter().enumerate() {
            assert_eq!(row, &par_digit_histogram(&wide, p as u32 * 8, 8));
        }
    }

    #[test]
    fn padded_counts_rows_are_line_aligned_and_disjoint() {
        let mut m = PaddedCounts::new(5, 11);
        assert_eq!(m.rows(), 5);
        assert_eq!(m.bins(), 11);
        for r in 0..5 {
            assert_eq!(m.row(r).as_ptr() as usize % 64, 0, "row {r} not 64B-aligned");
            for (d, slot) in m.row_mut(r).iter_mut().enumerate() {
                *slot = r * 100 + d;
            }
        }
        for r in 0..5 {
            for d in 0..11 {
                assert_eq!(m.row(r)[d], r * 100 + d);
            }
        }
        let mut other = PaddedCounts::new(5, 11);
        other.row_mut(2)[3] = 7;
        m.accumulate(&other);
        assert_eq!(m.row(2)[3], 203 + 7);
        m.clear();
        assert!((0..5).all(|r| m.row(r).iter().all(|&c| c == 0)));
    }

    #[test]
    fn shared_counts_parallel_disjoint_rows() {
        let rows = 8;
        let mut m = PaddedCounts::new(rows, 16);
        let shared = m.shared();
        std::thread::scope(|s| {
            for r in 0..rows {
                let shared = &shared;
                s.spawn(move || {
                    // SAFETY: each thread touches exactly one row.
                    let row = unsafe { shared.row_mut(r) };
                    for (d, slot) in row.iter_mut().enumerate() {
                        *slot = r * 1000 + d;
                    }
                });
            }
        });
        for r in 0..rows {
            assert!(m.row(r).iter().enumerate().all(|(d, &v)| v == r * 1000 + d));
        }
    }

    #[test]
    fn unrolled_counting_matches_naive() {
        let mut rng = StdRng::seed_from_u64(3);
        for n in [0usize, 1, 3, 4, 5, 1023] {
            let keys: Vec<u32> = (0..n).map(|_| rng.random()).collect();
            let mut unrolled = vec![0usize; 256];
            count_digits_into(&keys, 8, 0xFF, &mut unrolled);
            let mut naive = vec![0usize; 256];
            for k in &keys {
                naive[k.digit(8, 0xFF)] += 1;
            }
            assert_eq!(unrolled, naive, "n={n}");
        }
    }

    #[test]
    fn prefix_sum_is_exclusive_and_totals() {
        let mut v = vec![3usize, 0, 2, 5];
        let total = exclusive_prefix_sum(&mut v);
        assert_eq!(v, vec![0, 3, 3, 5]);
        assert_eq!(total, 10);
        let mut empty: Vec<usize> = vec![];
        assert_eq!(exclusive_prefix_sum(&mut empty), 0);
    }

    #[test]
    fn counting_sort_sorts_small_ranges() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut v: Vec<u32> = (0..50_000).map(|_| rng.random_range(0..1000u32)).collect();
        let mut expect = v.clone();
        expect.sort_unstable();
        counting_sort(&mut v, 999);
        assert_eq!(v, expect);
    }

    #[test]
    fn counting_sort_edge_cases() {
        let mut empty: Vec<u32> = vec![];
        counting_sort(&mut empty, 10);
        let mut same = vec![4u32; 100];
        counting_sort(&mut same, 4);
        assert!(same.iter().all(|&x| x == 4));
    }

    #[test]
    #[should_panic(expected = "exceeds declared max")]
    fn counting_sort_rejects_out_of_range() {
        let mut v = vec![5u32];
        counting_sort(&mut v, 4);
    }
}
