//! Thread-parallel sample sort with regular sampling.
//!
//! The five phases of the paper's program (Section 3.2), on threads:
//! parallel local radix sorts, regular sampling (128 samples per part),
//! splitter selection, a splitter-partitioned all-to-all into a scratch
//! buffer, and parallel local sorts of the received regions. Compared to
//! radix sort it does two local sorts but the data movement is one
//! contiguous block per (source, destination) pair.

use rayon::prelude::*;

use crate::key::RadixKey;
use crate::seq::radix_sort_with_scratch;
use crate::shared::SharedSlice;

/// Samples taken per part (the paper's choice).
pub const SAMPLES_PER_PART: usize = 128;

/// Configuration for [`par_sample_sort_with`].
#[derive(Debug, Clone)]
pub struct SampleSortConfig {
    /// Digit width for the local radix sorts.
    pub radix_bits: u32,
    /// Number of parts; `None` = number of rayon threads.
    pub parts: Option<usize>,
    /// Below this length, fall back to the sequential sort.
    pub sequential_cutoff: usize,
}

impl Default for SampleSortConfig {
    fn default() -> Self {
        SampleSortConfig {
            // The paper finds radix 11 best for sample sort's local sorts.
            radix_bits: 11,
            parts: None,
            sequential_cutoff: 1 << 13,
        }
    }
}

/// Sort `keys` in parallel with the default configuration.
pub fn par_sample_sort<K: RadixKey + Default>(keys: &mut [K]) {
    par_sample_sort_with(keys, &SampleSortConfig::default());
}

/// Split `slice` into mutable sub-slices at the given boundaries
/// (`bounds[0] == 0`, `bounds.last() == slice.len()`).
fn split_at_bounds<'a, K>(mut slice: &'a mut [K], bounds: &[usize]) -> Vec<&'a mut [K]> {
    let mut out = Vec::with_capacity(bounds.len().saturating_sub(1));
    let mut prev = 0;
    for &b in &bounds[1..] {
        let (head, tail) = slice.split_at_mut(b - prev);
        out.push(head);
        slice = tail;
        prev = b;
    }
    out
}

/// Bucket cut points of a sorted `part` under `splitters`, spreading keys
/// equal to tied splitter values evenly over the tied buckets (any of which
/// may legally hold them; the local sorts of phase 5 restore order).
fn splitter_bounds<K: Ord>(part: &[K], splitters: &[K]) -> Vec<usize> {
    let p = splitters.len() + 1;
    let mut b = vec![0usize; p + 1];
    b[p] = part.len();
    let mut j = 0usize;
    while j < splitters.len() {
        let v = &splitters[j];
        let mut jl = j;
        while jl + 1 < splitters.len() && splitters[jl + 1] == *v {
            jl += 1;
        }
        if jl == j {
            b[j + 1] = part.partition_point(|x| x < v);
            j += 1;
            continue;
        }
        let lower = part.partition_point(|x| x < v);
        let upper = part.partition_point(|x| x <= v);
        let run = upper - lower;
        let slots = jl - j + 2;
        for (k, cut) in (j + 1..=jl + 1).enumerate() {
            b[cut] = lower + (k + 1) * run / slots;
        }
        j = jl + 1;
    }
    b
}

/// Sort `keys` in parallel with an explicit configuration.
pub fn par_sample_sort_with<K: RadixKey + Default>(keys: &mut [K], cfg: &SampleSortConfig) {
    let n = keys.len();
    if n <= cfg.sequential_cutoff.max(1) {
        crate::seq::radix_sort(keys, cfg.radix_bits.min(K::BITS.max(1)).max(1));
        return;
    }
    let p = cfg.parts.unwrap_or_else(rayon::current_num_threads).clamp(1, n);
    let part_bounds: Vec<usize> = (0..=p).map(|i| i * n / p).collect();
    let s = SAMPLES_PER_PART.min(n / p).max(1);

    // Phase 1: parallel local sorts.
    {
        let parts = split_at_bounds(keys, &part_bounds);
        parts.into_par_iter().for_each(|part| {
            let mut scratch = vec![K::default(); part.len()];
            radix_sort_with_scratch(part, &mut scratch, cfg.radix_bits);
        });
    }

    // Phase 2 + 3: regular sampling and splitter selection.
    let mut samples: Vec<K> = Vec::with_capacity(p * s);
    for i in 0..p {
        let part = &keys[part_bounds[i]..part_bounds[i + 1]];
        for k in 0..s {
            samples.push(part[k * part.len() / s]);
        }
    }
    samples.sort_unstable();
    let splitters: Vec<K> = (1..p).map(|k| samples[k * samples.len() / p]).collect();

    // Phase 4: bucket boundaries per part (each part is sorted, so the
    // boundaries are binary searches), then the all-to-all scatter. Keys
    // equal to a run of tied splitters are spread over the tied buckets so
    // heavy duplication cannot overload one region.
    let bounds: Vec<Vec<usize>> = (0..p)
        .into_par_iter()
        .map(|i| {
            let part = &keys[part_bounds[i]..part_bounds[i + 1]];
            splitter_bounds(part, &splitters)
        })
        .collect();

    // Destination layout: region j holds, in source order, every part's
    // bucket j.
    let mut region_bounds = vec![0usize; p + 1];
    for j in 0..p {
        let inbound: usize = (0..p).map(|i| bounds[i][j + 1] - bounds[i][j]).sum();
        region_bounds[j + 1] = region_bounds[j] + inbound;
    }
    debug_assert_eq!(region_bounds[p], n);
    let dst_off = |i: usize, j: usize| -> usize {
        region_bounds[j] + (0..i).map(|i2| bounds[i2][j + 1] - bounds[i2][j]).sum::<usize>()
    };

    let mut scratch = vec![K::default(); n];
    {
        let out = SharedSlice::new(&mut scratch);
        (0..p).into_par_iter().for_each(|i| {
            let part = &keys[part_bounds[i]..part_bounds[i + 1]];
            for j in 0..p {
                let bucket = &part[bounds[i][j]..bounds[i][j + 1]];
                let base = dst_off(i, j);
                for (k, &key) in bucket.iter().enumerate() {
                    // SAFETY: regions [dst_off(i,j), dst_off(i,j)+len) are
                    // pairwise disjoint across (i, j) and tile [0, n).
                    unsafe { out.write(base + k, key) };
                }
            }
        });
    }

    // Phase 5: parallel local sorts of the received regions, then copy back.
    {
        let regions = split_at_bounds(&mut scratch, &region_bounds);
        regions.into_par_iter().for_each(|region| {
            let mut tmp = vec![K::default(); region.len()];
            radix_sort_with_scratch(region, &mut tmp, cfg.radix_bits);
        });
    }
    keys.par_chunks_mut(64 * 1024)
        .zip(scratch.par_chunks(64 * 1024))
        .for_each(|(dst, src)| dst.copy_from_slice(src));
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn check<K: RadixKey + Default + std::fmt::Debug>(mut v: Vec<K>, cfg: &SampleSortConfig) {
        let mut expect = v.clone();
        expect.sort_unstable();
        par_sample_sort_with(&mut v, cfg);
        assert_eq!(v, expect);
    }

    #[test]
    fn sorts_large_u32() {
        let mut rng = StdRng::seed_from_u64(1);
        let v: Vec<u32> = (0..200_000).map(|_| rng.random()).collect();
        check(v, &SampleSortConfig::default());
    }

    #[test]
    fn sorts_with_explicit_parts() {
        let mut rng = StdRng::seed_from_u64(2);
        for parts in [1usize, 2, 3, 7, 16] {
            let v: Vec<u32> = (0..40_000).map(|_| rng.random()).collect();
            check(
                v,
                &SampleSortConfig { parts: Some(parts), sequential_cutoff: 0, ..Default::default() },
            );
        }
    }

    #[test]
    fn heavy_duplicates_and_skew() {
        let mut rng = StdRng::seed_from_u64(3);
        // 30% zeros (worse than the paper's zero distribution).
        let v: Vec<u32> = (0..60_000)
            .map(|_| if rng.random_range(0..10u32) < 3 { 0 } else { rng.random() })
            .collect();
        check(v, &SampleSortConfig { sequential_cutoff: 0, ..Default::default() });
        // Single value: every key lands in one bucket.
        check(vec![7u32; 30_000], &SampleSortConfig { sequential_cutoff: 0, ..Default::default() });
        // Sorted input: maximally imbalanced sampling is still correct.
        check((0..30_000u32).collect(), &SampleSortConfig { sequential_cutoff: 0, ..Default::default() });
    }

    #[test]
    fn sorts_signed() {
        let mut rng = StdRng::seed_from_u64(4);
        let v: Vec<i32> = (0..60_000).map(|_| rng.random()).collect();
        check(v, &SampleSortConfig { sequential_cutoff: 0, ..Default::default() });
    }

    #[test]
    fn small_inputs() {
        check(Vec::<u32>::new(), &SampleSortConfig::default());
        check(vec![3u32, 1, 2], &SampleSortConfig::default());
        let mut rng = StdRng::seed_from_u64(5);
        let v: Vec<u32> = (0..257).map(|_| rng.random()).collect();
        check(v, &SampleSortConfig { parts: Some(4), sequential_cutoff: 0, ..Default::default() });
    }

    #[test]
    fn agrees_with_par_radix() {
        let mut rng = StdRng::seed_from_u64(6);
        let v: Vec<u64> = (0..50_000).map(|_| rng.random()).collect();
        let mut a = v.clone();
        let mut b = v;
        par_sample_sort_with(&mut a, &SampleSortConfig { sequential_cutoff: 0, ..Default::default() });
        crate::radix::par_radix_sort_with(
            &mut b,
            &crate::radix::RadixSortConfig { sequential_cutoff: 0, ..Default::default() },
        );
        assert_eq!(a, b);
    }
}
